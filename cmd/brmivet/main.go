// Command brmivet runs the brmi static analyzer suite over Go packages:
//
//	brmivet ./...
//
// It checks the batching programming model's usage rules (see DESIGN.md
// "Static analysis"): pre-flush future reads (futurederef), batches that
// leak without a Flush (unflushed), //brmi:readonly implementations that
// mutate state (readonlypure), transport buffer pool pairing (poolcheck),
// and unregistered wire types (wireregister).
//
// Diagnostics are suppressed with a comment on or directly above the
// flagged line:
//
//	//brmivet:ignore <analyzer> <reason>
//
// Malformed and stale ignore directives are themselves reported. Exit
// codes: 0 no findings, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/checks"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("brmivet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	only := fs.String("run", "", "comma-separated subset of analyzers to run")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := checks.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "brmivet: unknown analyzer %q (see brmivet -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "brmivet:", err)
		return 2
	}
	prog, diags, err := analysis.Run(cwd, suite, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "brmivet:", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	analysis.Print(stdout, prog.Fset, diags)
	return 1
}
