package main

import (
	"strings"
	"testing"

	"repro/internal/analysis/checks"
)

// TestSuitePinned asserts cmd/brmivet registers exactly the documented
// analyzer set, in order. Adding an analyzer means updating this list, the
// command doc, and DESIGN.md together.
func TestSuitePinned(t *testing.T) {
	want := []string{"futurederef", "unflushed", "readonlypure", "poolcheck", "wireregister"}
	suite := checks.Suite()
	if len(suite) != len(want) {
		t.Fatalf("checks.Suite() has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}

func TestListFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("brmivet -list exited %d: %s", code, errOut.String())
	}
	for _, a := range checks.Suite() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("brmivet -list output is missing %s:\n%s", a.Name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "nosuch", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("brmivet -run nosuch exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", errOut.String())
	}
}
