// Command fsd runs the remote file server over real TCP — the deployment
// shape of the paper's Remote File Server case study (§5.1): a daemon
// exporting a directory plus a client mode that lists it via plain RMI or
// via one BRMI batch.
//
// Server:
//
//	fsd -serve -addr 127.0.0.1:7099 [-files 10] [-bytes 102400]
//
// Client:
//
//	fsd -addr 127.0.0.1:7099              # BRMI: one round trip
//	fsd -addr 127.0.0.1:7099 -rmi         # plain RMI: 1+4n round trips
//	fsd -addr 127.0.0.1:7099 -delete-days 4   # chained-batch deletion
//
// The -addr must be the externally dialable address: it travels inside
// remote references.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/examples/fileserver/remotefs"
	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	serve := flag.Bool("serve", false, "run the server daemon")
	addr := flag.String("addr", "127.0.0.1:7099", "TCP address to serve on / connect to")
	files := flag.Int("files", 10, "server: number of files")
	bytes := flag.Int("bytes", 100<<10, "server: total bytes across files")
	useRMI := flag.Bool("rmi", false, "client: use plain RMI instead of one batch")
	deleteDays := flag.Int("delete-days", 0, "client: delete files older than N days after the first (chained batch)")
	flag.Parse()

	var err error
	if *serve {
		err = runServer(*addr, *files, *bytes)
	} else {
		err = runClient(*addr, *useRMI, *deleteDays)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsd:", err)
		os.Exit(1)
	}
}

func runServer(addr string, files, totalBytes int) error {
	server := rmi.NewPeer(transport.TCPNetwork{})
	if err := server.Serve(addr); err != nil {
		return err
	}
	defer server.Close()
	exec, err := core.Install(server)
	if err != nil {
		return err
	}
	defer exec.Stop()
	if _, err := registry.Start(server); err != nil {
		return err
	}
	dir := remotefs.NewMemDirectory(files, totalBytes, time.Now().AddDate(0, 0, -files))
	ref, err := server.Export(dir, remotefs.DirectoryIfaceName)
	if err != nil {
		return err
	}
	if err := registry.Bind(context.Background(), server, addr, "root", ref); err != nil {
		return err
	}
	fmt.Printf("fsd: serving %d files (%d bytes) at %s; ctrl-c to stop\n", files, totalBytes, addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Println("fsd: shutting down")
	return nil
}

func runClient(addr string, useRMI bool, deleteDays int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := rmi.NewPeer(transport.TCPNetwork{})
	defer client.Close()

	ref, err := registry.Lookup(ctx, client, addr, "root")
	if err != nil {
		return fmt.Errorf("lookup (is the server running at %s?): %w", addr, err)
	}

	if deleteDays > 0 {
		return deleteOld(ctx, client, ref, deleteDays)
	}

	start := time.Now()
	before := client.CallCount()
	if useRMI {
		dir := remotefs.NewDirectoryStub(client.Deref(ref))
		listed, err := dir.ListFiles()
		if err != nil {
			return err
		}
		for _, f := range listed {
			if err := printFileRMI(f); err != nil {
				return err
			}
		}
	} else {
		bdir, _ := remotefs.NewBatchDirectory(client, ref)
		cursor := bdir.ListFiles()
		name := cursor.GetName()
		modified := cursor.LastModified()
		length := cursor.Length()
		if err := bdir.Flush(ctx); err != nil {
			return err
		}
		for cursor.Next() {
			n, err := name.Get()
			if err != nil {
				return err
			}
			m, err := modified.Get()
			if err != nil {
				return err
			}
			l, err := length.Get()
			if err != nil {
				return err
			}
			fmt.Printf("%s: lastModified=%s; length=%d\n", n, m.Format("2006-01-02"), l)
		}
	}
	fmt.Printf("%d round trips, %v\n", client.CallCount()-before, time.Since(start).Round(time.Microsecond))
	return nil
}

func printFileRMI(f remotefs.File) error {
	n, err := f.GetName()
	if err != nil {
		return err
	}
	m, err := f.LastModified()
	if err != nil {
		return err
	}
	l, err := f.Length()
	if err != nil {
		return err
	}
	fmt.Printf("%s: lastModified=%s; length=%d\n", n, m.Format("2006-01-02"), l)
	return nil
}

func deleteOld(ctx context.Context, client *rmi.Peer, ref wire.Ref, days int) error {
	bdir, _ := remotefs.NewBatchDirectory(client, ref)
	cursor := bdir.ListFiles()
	name := cursor.GetName()
	modified := cursor.LastModified()
	if err := bdir.FlushAndContinue(ctx); err != nil {
		return err
	}
	var cutoff time.Time
	first := true
	deleted := 0
	for cursor.Next() {
		n, err := name.Get()
		if err != nil {
			return err
		}
		m, err := modified.Get()
		if err != nil {
			return err
		}
		if first {
			cutoff = m.AddDate(0, 0, days)
			first = false
		}
		if m.Before(cutoff) {
			fmt.Printf("deleting %s (%s)\n", n, m.Format("2006-01-02"))
			_ = cursor.Delete()
			deleted++
		}
	}
	count := bdir.Count()
	if err := bdir.Flush(ctx); err != nil {
		return err
	}
	left, err := count.Get()
	if err != nil {
		return err
	}
	fmt.Printf("deleted %d, %d remain (2 round trips)\n", deleted, left)
	return nil
}
