// Command brmitop is the live cluster ops view: it scrapes every server's
// stats.Node service — ONE cluster batch flush per refresh, so a scrape
// costs a single parallel round-trip wave regardless of cluster size — and
// renders a per-server table of executed-call rate, executor wave latency
// quantiles, transport buffer-pool and wire codec reuse rates, readonly
// lease-cache hit rate, migration progress, and ring epoch (with skew
// markers). Cache counters live client-side, so in -sim mode the view adds
// the client's own registry as a pseudo-row.
//
// Usage:
//
//	brmitop -endpoints host:port,host:port[,...]   # live TCP cluster
//	brmitop -sim                                   # self-contained demo:
//	                                               # 3 netsim servers under
//	                                               # synthetic batch load
//	brmitop -sim -once                             # one render, then exit
//	brmitop -endpoints ... -interval 5s            # refresh cadence
//
// In the refreshing view the QPS column is the executed-call delta over the
// last interval; -once takes two samples one second apart so rates are
// still meaningful.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/stats"
	"repro/internal/statsnode"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	var (
		endpoints = flag.String("endpoints", "", "comma-separated server endpoints (host:port) to scrape")
		interval  = flag.Duration("interval", 2*time.Second, "refresh interval")
		once      = flag.Bool("once", false, "render one table and exit (two samples, 1s apart)")
		sim       = flag.Bool("sim", false, "run a self-contained netsim cluster under synthetic load")
		simN      = flag.Int("sim.servers", 3, "server count for -sim")
	)
	flag.Parse()
	if err := run(*endpoints, *interval, *once, *sim, *simN); err != nil {
		fmt.Fprintln(os.Stderr, "brmitop:", err)
		os.Exit(1)
	}
}

func run(endpoints string, interval time.Duration, once, sim bool, simN int) error {
	ctx := context.Background()
	var (
		client *rmi.Peer
		eps    []string
		local  func() *stats.Snapshot
	)
	switch {
	case sim:
		demo, err := startSim(simN)
		if err != nil {
			return err
		}
		defer demo.stop()
		client, eps, local = demo.client, demo.endpoints, demo.local
	case endpoints != "":
		for _, ep := range strings.Split(endpoints, ",") {
			if ep = strings.TrimSpace(ep); ep != "" {
				eps = append(eps, ep)
			}
		}
		if len(eps) == 0 {
			return fmt.Errorf("-endpoints lists no servers")
		}
		client = rmi.NewPeer(transport.TCPNetwork{}, rmi.WithLogf(func(string, ...any) {}))
		defer client.Close()
	default:
		return fmt.Errorf("nothing to watch: pass -endpoints or -sim")
	}

	// addLocal appends the client's own registry as a pseudo-row: the
	// lease-cache counters the CACHE column reads live in the client process,
	// not on any scraped server.
	addLocal := func(cur map[string]*stats.Snapshot) {
		if local != nil && cur != nil {
			cur["client (local)"] = local()
		}
	}

	if once {
		prev, err := statsnode.ScrapeCluster(ctx, client, eps)
		if err != nil {
			return err
		}
		addLocal(prev)
		const sample = time.Second
		time.Sleep(sample)
		cur, err := statsnode.ScrapeCluster(ctx, client, eps)
		if err != nil {
			return err
		}
		addLocal(cur)
		statsnode.RenderTable(os.Stdout, statsnode.BuildRows(cur, prev, sample))
		return nil
	}

	var prev map[string]*stats.Snapshot
	last := time.Now()
	for {
		cur, err := statsnode.ScrapeCluster(ctx, client, eps)
		now := time.Now()
		if err != nil && len(cur) == 0 {
			return err
		}
		scraped := len(cur)
		addLocal(cur)
		rows := statsnode.BuildRows(cur, prev, now.Sub(last))
		fmt.Print("\x1b[H\x1b[2J") // home + clear: redraw in place
		fmt.Printf("brmitop — %d/%d servers — %s (refresh %s, ctrl-c to quit)\n\n",
			scraped, len(eps), now.Format("15:04:05"), interval)
		statsnode.RenderTable(os.Stdout, rows)
		if err != nil {
			fmt.Printf("\npartial scrape: %v\n", err)
		}
		prev, last = cur, now
		time.Sleep(interval)
	}
}

// --- -sim: self-contained demo cluster ---------------------------------------

// simCounter is the synthetic-load workload object.
type simCounter struct {
	rmi.RemoteBase
	v atomic.Int64
}

// Add increments the counter and returns the new value.
func (c *simCounter) Add(n int64) int64 { return c.v.Add(n) }

// Get reads the counter; the sim issues it through CallRO so the client's
// lease cache (and the CACHE column) has traffic.
func (c *simCounter) Get() int64 { return c.v.Load() }

const simIface = "brmitop.Counter"

type simDemo struct {
	client    *rmi.Peer
	endpoints []string
	// local snapshots the client peer's own registry: cache hit/miss
	// counters live client-side, so the view shows them as a pseudo-row.
	local func() *stats.Snapshot
	stop  func()
}

// startSim brings up n full servers (executor + registry + node + stats
// scrape service) on a simulated LAN and drives continuous batched load
// against them from a background goroutine, so the view has live numbers.
func startSim(n int) (*simDemo, error) {
	if n < 1 {
		return nil, fmt.Errorf("-sim.servers must be >= 1, got %d", n)
	}
	network := netsim.New(netsim.LAN)
	silent := rmi.WithLogf(func(string, ...any) {})
	var cleanup []func()
	shutdown := func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}
	cleanup = append(cleanup, func() { _ = network.Close() })

	eps := make([]string, n)
	refs := make([]wire.Ref, n)
	for i := range eps {
		eps[i] = fmt.Sprintf("server-%d", i)
		srv := rmi.NewPeer(network, silent, rmi.WithStatsRegistry(stats.New()))
		if err := srv.Serve(eps[i]); err != nil {
			shutdown()
			return nil, err
		}
		cleanup = append(cleanup, func() { _ = srv.Close() })
		exec, err := core.Install(srv)
		if err != nil {
			shutdown()
			return nil, err
		}
		cleanup = append(cleanup, exec.Stop)
		reg, err := registry.Start(srv)
		if err != nil {
			shutdown()
			return nil, err
		}
		if _, err := cluster.StartNode(srv, reg, nil); err != nil {
			shutdown()
			return nil, err
		}
		if _, err := statsnode.Start(srv); err != nil {
			shutdown()
			return nil, err
		}
		refs[i], err = srv.Export(&simCounter{}, simIface)
		if err != nil {
			shutdown()
			return nil, err
		}
	}

	client := rmi.NewPeer(network, silent, rmi.WithStatsRegistry(stats.New()))
	cleanup = append(cleanup, func() { _ = client.Close() })
	cache := cluster.NewCache(client, nil)

	// Synthetic load: every tick a cached-read batch (CallRO on each root —
	// mostly lease hits), and every fourth tick a write batch that
	// invalidates the leases, so the hit rate hovers rather than pinning at
	// 100%. Writes are one multi-root cluster batch, a few calls per root.
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			fctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if i%4 == 0 {
				b := cluster.New(client, cluster.WithCache(cache))
				for _, ref := range refs {
					p := b.Root(ref)
					for j := 0; j < 3; j++ {
						p.Call("Add", int64(1))
					}
				}
				_ = b.Flush(fctx) // faults are impossible on a clean netsim LAN
			}
			rb := cluster.New(client, cluster.WithCache(cache))
			for _, ref := range refs {
				rb.Root(ref).CallRO("Get")
			}
			_ = rb.Flush(fctx)
			cancel()
		}
	}()

	stopLoad := func() { close(done) }
	return &simDemo{
		client:    client,
		endpoints: eps,
		local:     client.Stats().Snapshot,
		stop: func() {
			stopLoad()
			shutdown()
		},
	}, nil
}
