// Command benchfig regenerates the paper's evaluation: every figure of
// §5.2-§5.4 (Figures 5-13), the ablations called out in DESIGN.md, and the
// cluster fan-out benchmark, in the same rows/series layout the paper plots.
//
// Usage:
//
//	benchfig -all                  # every figure and ablation
//	benchfig -fig 5 -fig 12        # selected figures
//	benchfig -fig a1               # ablations (a1, a2, a3)
//	benchfig -fig cluster          # multi-server fan-out (internal/cluster)
//	benchfig -fig pipeline         # staged cross-server dataflow (internal/cluster)
//	benchfig -fig rebalance        # live re-sharding during scale-out (internal/cluster)
//	benchfig -scale 1 -reps 10     # full-fidelity wireless latency (slow)
//	benchfig -csv out/             # additionally write CSV per figure
//	benchfig -json out/            # additionally write BENCH_<fig>.json series
//
// Absolute milliseconds depend on the simulated-link scale (-scale divides
// the wireless RTT; see netsim.Profile.Scaled); shapes are scale-invariant.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/netsim"
)

type figSpec struct {
	id   string
	run  func(cfg config) (*bench.Table, error)
	note string
}

type config struct {
	lan      bench.Config
	wireless bench.Config
	wan      bench.Config
	instant  bench.Config
}

var figures = []figSpec{
	{"5", func(c config) (*bench.Table, error) { return bench.RunNoop(c.lan, seq(1, 5)) },
		"no-op micro benchmark, LAN"},
	{"6", func(c config) (*bench.Table, error) { return bench.RunNoop(c.wireless, seq(1, 5)) },
		"no-op micro benchmark, wireless"},
	{"7", func(c config) (*bench.Table, error) { return bench.RunList(c.lan, seq(1, 5)) },
		"linked list traversal, LAN"},
	{"8", func(c config) (*bench.Table, error) { return bench.RunList(c.wireless, seq(1, 5)) },
		"linked list traversal, wireless"},
	{"9", func(c config) (*bench.Table, error) { return bench.RunListNoBatch(c.lan, seq(1, 5)) },
		"linked list traversal with batches of size 1, LAN"},
	{"10", func(c config) (*bench.Table, error) { return bench.RunSimulation(c.lan, steps()) },
		"remote simulation, LAN"},
	{"11", func(c config) (*bench.Table, error) { return bench.RunSimulation(c.wireless, steps()) },
		"remote simulation, wireless"},
	{"12", func(c config) (*bench.Table, error) { return bench.RunFileServer(c.lan, seq(1, 10)) },
		"remote file server macro benchmark, LAN"},
	{"13", func(c config) (*bench.Table, error) { return bench.RunFileServer(c.wireless, seq(1, 10)) },
		"remote file server macro benchmark, wireless"},
	{"a1", func(c config) (*bench.Table, error) { return bench.RunAblationIdentity(c.lan, []int{5, 10, 20, 40}) },
		"ablation: reference identity (RMI vs RMI+shortcut vs BRMI)"},
	{"a2", func(c config) (*bench.Table, error) {
		return bench.RunAblationStubs(c.instant, []int{10, 100, 1000})
	}, "ablation: dynamic vs generated stub recording overhead"},
	{"a3", func(c config) (*bench.Table, error) {
		return bench.RunAblationBatchSize(c.lan, 40, []int{1, 2, 4, 8, 20, 40})
	},
		"ablation: flush granularity"},
	{"cluster", func(c config) (*bench.Table, error) {
		return bench.RunFanout(c.wan, 64, []int{1, 2, 4, 8})
	},
		"cluster fan-out: 64 calls over K servers, WAN (internal/cluster)"},
	{"pipeline", func(c config) (*bench.Table, error) {
		return bench.RunPipeline(c.wan, 4, 16, []int{1, 2, 3, 4})
	},
		"staged cross-server pipeline: 16 chains of depth D over 4 servers, WAN (internal/cluster)"},
	{"rebalance", func(c config) (*bench.Table, error) {
		return bench.RunRebalance(c.wan, []int{4, 16, 64})
	},
		"live re-sharding: scale-out 3 -> 4 servers, batched vs per-object migration, WAN (internal/cluster)"},
	{"replication", func(c config) (*bench.Table, error) {
		return bench.RunReplication(c.wan, []int{1, 2, 3})
	},
		"replicated flush latency: acked-at-quorum writes vs replication degree R, WAN (internal/cluster)"},
	{"throughput", func(c config) (*bench.Table, error) {
		return bench.RunThroughput(c.instant, []int{1, 4, 16}, 1200)
	},
		"hot-path throughput: C client goroutines over 4 sharded servers, mixed flush sizes, instant network"},
	{"cache", func(c config) (*bench.Table, error) {
		return bench.RunCache(c.wan, bench.CacheReadObjects, []int{0, 25, 50, 75, 90, 100})
	},
		"readonly lease cache: batched cached reads at swept hit rates vs the uncached PR4 path, WAN"},
	{"getbatch", func(c config) (*bench.Table, error) {
		return bench.RunGetBatch(c.wan, []int{1, 4, 16, 64})
	},
		"streaming get-batch: N ordered bulk reads over 4 servers vs per-call round trips, WAN (internal/cluster)"},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }
func (f *figList) Set(v string) error {
	*f = append(*f, strings.ToLower(strings.TrimSpace(v)))
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchfig", flag.ContinueOnError)
	var figs figList
	fs.Var(&figs, "fig", "figure to run: 5-13, a1, a2, a3 (repeatable)")
	all := fs.Bool("all", false, "run every figure and ablation")
	scale := fs.Int("scale", 20, "wireless latency scale divisor (1 = paper-faithful 252 ms RTT, slow)")
	reps := fs.Int("reps", 5, "measured repetitions per point")
	warmup := fs.Int("warmup", 1, "warm-up runs per point")
	csvDir := fs.String("csv", "", "directory to write per-figure CSV files")
	jsonDir := fs.String("json", "", "directory to write per-figure BENCH_<fig>.json series")
	list := fs.Bool("list", false, "list available figures and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, f := range figures {
			fmt.Printf("%-4s %s\n", f.id, f.note)
		}
		return nil
	}
	if *all {
		figs = nil
		for _, f := range figures {
			figs = append(figs, f.id)
		}
	}
	if len(figs) == 0 {
		return fmt.Errorf("nothing to run: pass -all or -fig N (see -list)")
	}

	cfg := config{
		lan:      bench.Config{Profile: netsim.LAN, Warmup: *warmup, Reps: *reps},
		wireless: bench.Config{Profile: netsim.Wireless.Scaled(*scale), Warmup: *warmup, Reps: *reps},
		wan:      bench.Config{Profile: netsim.WAN.Scaled(*scale), Warmup: *warmup, Reps: *reps},
		instant:  bench.Config{Profile: netsim.Instant, Warmup: *warmup + 1, Reps: *reps + 5},
	}

	fmt.Printf("BRMI evaluation reproduction — profiles: %s (RTT %v), %s (RTT %v)\n",
		cfg.lan.Profile.Name, cfg.lan.Profile.RTT,
		cfg.wireless.Profile.Name, cfg.wireless.Profile.RTT)
	if *scale > 1 {
		fmt.Printf("note: wireless latency scaled down %dx (shape-preserving); -scale 1 for paper-faithful timing\n", *scale)
	}
	fmt.Println()

	for _, id := range figs {
		spec, ok := findFig(id)
		if !ok {
			return fmt.Errorf("unknown figure %q (see -list)", id)
		}
		table, err := spec.run(cfg)
		if err != nil {
			return fmt.Errorf("fig %s: %w", id, err)
		}
		table.Print(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, table); err != nil {
				return err
			}
		}
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, id, table); err != nil {
				return err
			}
		}
	}
	return nil
}

func findFig(id string) (figSpec, bool) {
	for _, f := range figures {
		if f.id == id {
			return f, true
		}
	}
	return figSpec{}, false
}

func writeCSV(dir, id string, table *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "fig"+id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	table.CSV(f)
	return f.Close()
}

// writeJSON emits the machine-readable series file (BENCH_<fig>.json) used
// to track perf trajectories across PRs, e.g. BENCH_cluster.json for the
// fan-out figure.
func writeJSON(dir, id string, table *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+id+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := table.JSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// seq returns lo..hi inclusive.
func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

// steps returns the paper's 5..40 step-5 x-axis for the simulation figures.
func steps() []int {
	return []int{5, 10, 15, 20, 25, 30, 35, 40}
}
