// Command brmigen generates typed batch interfaces and RMI client stubs
// from Go remote interface declarations — the equivalent of the paper's
// "rmic -batch" tool (§4).
//
// Usage:
//
//	brmigen -in ./path/to/pkg [-out brmi_gen.go] [-prefix name] [-all]
//
// Interfaces annotated with a "//brmi:remote" comment are roots; interfaces
// they reference are generated transitively. For each remote interface X the
// tool emits XStub (typed RMI stub), BX (batch interface), and CX (cursor
// interface), plus the registration glue.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/codegen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "brmigen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("brmigen", flag.ContinueOnError)
	in := fs.String("in", ".", "directory of the package declaring remote interfaces")
	out := fs.String("out", "", "output file (default <in>/brmi_gen.go)")
	prefix := fs.String("prefix", "", "interface registration prefix (default package name)")
	pkgName := fs.String("pkg", "", "output package name (default source package name)")
	module := fs.String("module", "repro", "module path providing the BRMI runtime packages")
	all := fs.Bool("all", false, "generate for all interfaces, not only //brmi:remote ones")
	if err := fs.Parse(args); err != nil {
		return err
	}
	output := *out
	if output == "" {
		output = filepath.Join(*in, "brmi_gen.go")
	}
	opts := codegen.Options{
		All:        *all,
		Prefix:     *prefix,
		PkgName:    *pkgName,
		ModulePath: *module,
	}
	if err := codegen.GenerateToFile(*in, output, opts); err != nil {
		return err
	}
	fmt.Printf("brmigen: wrote %s\n", output)
	return nil
}
