// Rebalance: live re-sharding under in-flight traffic.
//
// Three servers shard a fleet of movable counters; a fourth server joins
// while a cluster batch recorded against the OLD shard map is still
// unflushed. The rebalancer migrates the moved counters (bindings + state)
// to the newcomer in batched round trips — one multi-root BRMI batch per
// (source, destination) pair — and leaves wrong-home tombstones behind.
// When the stale batch finally flushes, the old home rejects its wave with
// rmi.WrongHomeError; the flush refreshes the shard map, re-partitions the
// affected calls to the new home, and completes after a single retry.
//
//	go run ./examples/rebalance
package main

import (
	"context"
	"fmt"
	"os"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
)

// Account is a movable remote object: its balance follows it to a new home
// server when the ring changes.
type Account struct {
	rmi.RemoteBase
	mu      sync.Mutex
	balance int64
}

const accountIface = "example.Account"

func init() {
	cluster.RegisterMovable(accountIface, func() rmi.Remote { return &Account{} })
}

// Deposit adds to the balance and returns the new total.
func (a *Account) Deposit(n int64) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance += n
	return a.balance
}

// Balance returns the current balance.
func (a *Account) Balance() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance
}

// Snapshot and Restore implement cluster.Movable.
func (a *Account) Snapshot() (any, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance, nil
}

func (a *Account) Restore(state any) error {
	n, ok := state.(int64)
	if !ok {
		return fmt.Errorf("unexpected snapshot %T", state)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance = n
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rebalance:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	network := netsim.New(netsim.LAN)
	defer network.Close()

	// --- four full nodes; only three start in the ring ---------------------
	const baseServers, totalServers = 3, 4
	endpoints := make([]string, totalServers)
	servers := make(map[string]*rmi.Peer, totalServers)
	for i := 0; i < totalServers; i++ {
		endpoints[i] = fmt.Sprintf("shard-%d", i)
		server := rmi.NewPeer(network, rmi.WithLogf(func(string, ...any) {}))
		if err := server.Serve(endpoints[i]); err != nil {
			return err
		}
		defer server.Close()
		exec, err := core.Install(server)
		if err != nil {
			return err
		}
		defer exec.Stop()
		reg, err := registry.Start(server)
		if err != nil {
			return err
		}
		if _, err := cluster.StartNode(server, reg, nil); err != nil {
			return err
		}
		servers[endpoints[i]] = server
	}
	newcomer := endpoints[baseServers]

	client := rmi.NewPeer(network, rmi.WithLogf(func(string, ...any) {}))
	defer client.Close()
	dir := cluster.NewDirectory(client, endpoints[:baseServers])

	// --- open sharded accounts ---------------------------------------------
	accounts := []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}
	for i, name := range accounts {
		home, err := dir.Home(name)
		if err != nil {
			return err
		}
		ref, err := servers[home].Export(&Account{balance: int64(1000 * (i + 1))}, accountIface)
		if err != nil {
			return err
		}
		if err := dir.Bind(ctx, name, ref); err != nil {
			return err
		}
		fmt.Printf("%-6s opened at %s with balance %5d\n", name, home, 1000*(i+1))
	}

	// --- record a batch against the CURRENT (soon stale) shard map ---------
	batch := cluster.New(client, cluster.WithDirectory(dir))
	deposits := make(map[string]cluster.TypedFuture[int64], len(accounts))
	for _, name := range accounts {
		acct, err := batch.RootNamed(ctx, name)
		if err != nil {
			return err
		}
		deposits[name] = cluster.Typed[int64](acct.Call("Deposit", int64(50)))
	}
	fmt.Printf("\nrecorded %d deposits against the %d-server ring (epoch %d)\n",
		batch.PendingCalls(), len(dir.Servers()), dir.Epoch())

	// --- the cluster grows while the batch is unflushed ---------------------
	stats, err := cluster.NewRebalancer(dir).AddServer(ctx, newcomer)
	if err != nil {
		return err
	}
	fmt.Printf("%s joined: epoch %d, %d accounts migrated in %d batched flows\n",
		newcomer, stats.Epoch, stats.Moved, stats.Pairs)

	// --- the stale flush survives via one wrong-home retry ------------------
	if err := batch.Flush(ctx); err != nil {
		return err
	}
	fmt.Printf("stale flush completed in %d waves (1 wave + %d retry)\n\n", batch.Waves(), batch.Waves()-1)

	for _, name := range accounts {
		home, err := dir.Home(name)
		if err != nil {
			return err
		}
		balance, err := deposits[name].Get()
		if err != nil {
			return fmt.Errorf("%s: deposit: %w", name, err)
		}
		marker := ""
		if home == newcomer {
			marker = "  <- migrated live, state intact"
		}
		fmt.Printf("%-6s balance %5d at %s%s\n", name, balance, home, marker)
	}
	return nil
}
