// Package credit declares the remote interfaces of the paper's Bank case
// study (§5.1): a credit-card management system whose account lookup and
// purchases batch into a single round trip under BRMI. brmi_gen.go is
// generated:
//
//	go run ./cmd/brmigen -in examples/bank/credit
package credit

// CreditManager creates and looks up credit card accounts.
//
//brmi:remote
type CreditManager interface {
	// CreateAccount opens an account with a credit limit.
	CreateAccount(customer string, limit float64) (CreditCard, error)
	// FindCreditAccount resolves a customer's account; it fails with
	// *AccountNotFoundError for unknown customers.
	FindCreditAccount(customer string) (CreditCard, error)
}

// CreditCard makes purchases and tracks the remaining balance; included
// transitively by the generator.
type CreditCard interface {
	// GetCreditLine returns the remaining credit.
	GetCreditLine() (float64, error)
	// MakePurchase charges the card; it fails with
	// *InsufficientCreditError when the credit line is exceeded.
	MakePurchase(amount float64) error
}
