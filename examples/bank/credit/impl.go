package credit

import (
	"fmt"
	"sync"

	"repro/internal/rmi"
	"repro/internal/wire"
)

// AccountNotFoundError reports an unknown customer. Exception policies
// match it by its registered wire name, AccountNotFoundErrName.
type AccountNotFoundError struct {
	Customer string
}

func (e *AccountNotFoundError) Error() string {
	return "credit: no account for " + e.Customer
}

// InsufficientCreditError reports a purchase beyond the credit line.
type InsufficientCreditError struct {
	Requested, Available float64
}

func (e *InsufficientCreditError) Error() string {
	return fmt.Sprintf("credit: purchase of %.2f exceeds credit line %.2f", e.Requested, e.Available)
}

// Wire names of the error types, used in exception-policy rules.
const (
	AccountNotFoundErrName    = "credit.AccountNotFound"
	InsufficientCreditErrName = "credit.InsufficientCredit"
)

// Card is the server-side CreditCard.
type Card struct {
	rmi.RemoteBase
	mu       sync.Mutex
	customer string
	line     float64
}

var _ CreditCard = (*Card)(nil)

// GetCreditLine implements CreditCard.
func (c *Card) GetCreditLine() (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.line, nil
}

// MakePurchase implements CreditCard.
func (c *Card) MakePurchase(amount float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if amount > c.line {
		return &InsufficientCreditError{Requested: amount, Available: c.line}
	}
	c.line -= amount
	return nil
}

// Manager is the server-side CreditManager: the bank.
type Manager struct {
	rmi.RemoteBase
	mu       sync.Mutex
	accounts map[string]*Card
}

var _ CreditManager = (*Manager)(nil)

// NewManager creates an empty bank.
func NewManager() *Manager {
	return &Manager{accounts: make(map[string]*Card)}
}

// CreateAccount implements CreditManager.
func (m *Manager) CreateAccount(customer string, limit float64) (CreditCard, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	card := &Card{customer: customer, line: limit}
	m.accounts[customer] = card
	return card, nil
}

// FindCreditAccount implements CreditManager.
func (m *Manager) FindCreditAccount(customer string) (CreditCard, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	card, ok := m.accounts[customer]
	if !ok {
		return nil, &AccountNotFoundError{Customer: customer}
	}
	return card, nil
}

func init() {
	wire.MustRegisterError(AccountNotFoundErrName, &AccountNotFoundError{})
	wire.MustRegisterError(InsufficientCreditErrName, &InsufficientCreditError{})
	RegisterCreditManagerImpl(&Manager{})
	RegisterCreditCardImpl(&Card{})
}
