package credit

import (
	"errors"
	"testing"
)

func TestCreateAndFind(t *testing.T) {
	m := NewManager()
	card, err := m.CreateAccount("alice", 500)
	if err != nil {
		t.Fatal(err)
	}
	found, err := m.FindCreditAccount("alice")
	if err != nil {
		t.Fatal(err)
	}
	if found != card {
		t.Fatal("find returned a different card object")
	}
}

func TestFindUnknown(t *testing.T) {
	m := NewManager()
	_, err := m.FindCreditAccount("nobody")
	var nf *AccountNotFoundError
	if !errors.As(err, &nf) || nf.Customer != "nobody" {
		t.Fatalf("got %v, want AccountNotFoundError{nobody}", err)
	}
}

func TestPurchasesReduceCreditLine(t *testing.T) {
	m := NewManager()
	card, _ := m.CreateAccount("bob", 100)
	if err := card.MakePurchase(40); err != nil {
		t.Fatal(err)
	}
	if err := card.MakePurchase(60); err != nil {
		t.Fatal(err)
	}
	line, err := card.GetCreditLine()
	if err != nil || line != 0 {
		t.Fatalf("line %v %v", line, err)
	}
}

func TestOverdraftRejected(t *testing.T) {
	m := NewManager()
	card, _ := m.CreateAccount("carol", 50)
	err := card.MakePurchase(51)
	var ic *InsufficientCreditError
	if !errors.As(err, &ic) {
		t.Fatalf("got %v, want InsufficientCreditError", err)
	}
	if ic.Requested != 51 || ic.Available != 50 {
		t.Fatalf("got %+v", ic)
	}
	// The failed purchase must not change the balance.
	if line, _ := card.GetCreditLine(); line != 50 {
		t.Fatalf("line %v after rejected purchase", line)
	}
}
