// Bank: the paper's credit-card case study (§5.1), demonstrating custom
// exception policies.
//
// The account lookup and the purchases batch into a single round trip. If
// the lookup throws, the batch must stop — purchases on a missing account
// are meaningless — so the client attaches a CustomPolicy that Breaks on
// AccountNotFound from FindCreditAccount and Continues otherwise (the
// paper's exact policy). A second run shows the failure path: the policy
// stops the batch and every dependent future rethrows the lookup error.
//
//	go run ./examples/bank
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/examples/bank/credit"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bank:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	network := netsim.New(netsim.LAN)
	defer network.Close()
	server := rmi.NewPeer(network)
	if err := server.Serve("bank"); err != nil {
		return err
	}
	defer server.Close()
	exec, err := core.Install(server)
	if err != nil {
		return err
	}
	defer exec.Stop()
	if _, err := registry.Start(server); err != nil {
		return err
	}

	bank := credit.NewManager()
	if _, err := bank.CreateAccount("alice", 1000); err != nil {
		return err
	}
	ref, err := server.Export(bank, credit.CreditManagerIfaceName)
	if err != nil {
		return err
	}
	if err := registry.Bind(ctx, server, "bank", "manager", ref); err != nil {
		return err
	}

	client := rmi.NewPeer(network)
	defer client.Close()
	managerRef, err := registry.Lookup(ctx, client, "bank", "manager")
	if err != nil {
		return err
	}

	// The paper's policy: break the batch when the account lookup fails,
	// continue past anything else (§5.1).
	policy := core.CustomPolicy().
		SetDefaultAction(core.ActionContinue).
		SetAction(credit.AccountNotFoundErrName, "FindCreditAccount", 0, core.ActionBreak)

	// --- happy path: lookup + 2 purchases + credit line, one round trip ----
	before, start := client.CallCount(), time.Now()
	manager, batch := credit.NewBatchCreditManager(client, managerRef, core.WithPolicy(policy))
	account := manager.FindCreditAccount("alice")
	p1 := account.MakePurchase(123.00)
	p2 := account.MakePurchase(456.00)
	creditLine := account.GetCreditLine()
	if err := batch.Flush(ctx); err != nil {
		return err
	}
	for i, p := range []*core.Future{p1, p2} {
		if err := p.Err(); err != nil {
			return fmt.Errorf("purchase %d: %w", i+1, err)
		}
	}
	line, err := creditLine.Get()
	if err != nil {
		return err
	}
	fmt.Printf("alice: 2 purchases accepted, credit line now %.2f (%d round trips, %v)\n",
		line, client.CallCount()-before, time.Since(start).Round(time.Microsecond))

	// --- failure path: unknown account breaks the batch ---------------------
	manager2, batch2 := credit.NewBatchCreditManager(client, managerRef, core.WithPolicy(policy))
	ghost := manager2.FindCreditAccount("mallory")
	gp := ghost.MakePurchase(9999)
	gline := ghost.GetCreditLine()
	if err := batch2.Flush(ctx); err != nil {
		return err
	}
	var notFound *credit.AccountNotFoundError
	if err := gp.Err(); errors.As(err, &notFound) {
		fmt.Printf("mallory: purchase blocked, batch broken by lookup error: %v\n", err)
	} else {
		return fmt.Errorf("expected AccountNotFoundError, got %v", gp.Err())
	}
	if _, err := gline.Get(); !errors.As(err, &notFound) {
		return fmt.Errorf("credit line future should rethrow lookup error, got %v", err)
	}

	// --- overdraft: default Continue lets later purchases proceed -----------
	manager3, batch3 := credit.NewBatchCreditManager(client, managerRef, core.WithPolicy(policy))
	acct := manager3.FindCreditAccount("alice")
	big := acct.MakePurchase(100_000) // exceeds the line: InsufficientCredit
	small := acct.MakePurchase(10)    // policy continues: still executes
	if err := batch3.Flush(ctx); err != nil {
		return err
	}
	var insufficient *credit.InsufficientCreditError
	if err := big.Err(); errors.As(err, &insufficient) {
		fmt.Printf("alice: big purchase rejected (%v)\n", err)
	}
	if err := small.Err(); err != nil {
		return fmt.Errorf("small purchase should survive the continue policy: %w", err)
	}
	fmt.Println("alice: small purchase after the rejected one still went through (ContinuePolicy)")
	return nil
}
