// Quickstart: the paper's running example (§3.1-§3.2) end to end.
//
// A remote directory serves files; the client fetches one file's name and
// size. Plain RMI needs three round trips (getFile, getName, getSize);
// BRMI records the same three calls into one explicit batch and flushes
// them in a single round trip.
//
// Everything runs in this process over a simulated 1 Gbps / 1 ms LAN, so
// the output shows real latency differences:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// file is the server-side remote object. Embedding rmi.RemoteBase marks it
// pass-by-reference (the Go analogue of extending java.rmi.Remote).
type file struct {
	rmi.RemoteBase
	name string
	size int
}

func (f *file) GetName() string { return f.name }
func (f *file) GetSize() int    { return f.size }

type directory struct {
	rmi.RemoteBase
	files map[string]*file
}

func (d *directory) GetFile(name string) (*file, error) {
	f, ok := d.files[name]
	if !ok {
		return nil, &wire.RemoteError{TypeName: "quickstart.NotFound", Message: "no file " + name}
	}
	return f, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	// --- server side --------------------------------------------------------
	network := netsim.New(netsim.LAN)
	defer network.Close()

	server := rmi.NewPeer(network)
	if err := server.Serve("fileserver"); err != nil {
		return err
	}
	defer server.Close()
	exec, err := core.Install(server) // makes every exported object batch-callable
	if err != nil {
		return err
	}
	defer exec.Stop()
	if _, err := registry.Start(server); err != nil {
		return err
	}

	root := &directory{files: map[string]*file{
		"index.html": {name: "index.html", size: 1024},
		"paper.pdf":  {name: "paper.pdf", size: 287_000},
	}}
	rootRef, err := server.Export(root, "quickstart.Directory")
	if err != nil {
		return err
	}
	if err := registry.Bind(ctx, server, "fileserver", "root", rootRef); err != nil {
		return err
	}

	// --- client side ----------------------------------------------------------
	client := rmi.NewPeer(network)
	defer client.Close()

	// Naming.lookup("url") equivalent.
	ref, err := registry.Lookup(ctx, client, "fileserver", "root")
	if err != nil {
		return err
	}

	// Plain RMI: three round trips.
	before, start := client.CallCount(), time.Now()
	res, err := client.Call(ctx, ref, "GetFile", "index.html")
	if err != nil {
		return err
	}
	index := res[0].(rmi.Invoker)
	name, err := index.Invoke(ctx, "GetName")
	if err != nil {
		return err
	}
	size, err := index.Invoke(ctx, "GetSize")
	if err != nil {
		return err
	}
	fmt.Printf("RMI : File %s size: %d  (%d round trips, %v)\n",
		name[0], size[0], client.CallCount()-before, time.Since(start).Round(time.Microsecond))

	// BRMI: record the same calls, flush once (§3.2).
	before, start = client.CallCount(), time.Now()
	batch := core.New(client, ref)
	bRoot := batch.Root()
	bIndex := bRoot.CallBatch("GetFile", "index.html")
	fName := bIndex.Call("GetName")
	fSize := bIndex.Call("GetSize")
	if err := bRoot.Flush(ctx); err != nil {
		return err
	}
	gotName, err := core.Typed[string](fName).Get()
	if err != nil {
		return err
	}
	gotSize, err := core.Typed[int](fSize).Get()
	if err != nil {
		return err
	}
	fmt.Printf("BRMI: File %s size: %d  (%d round trips, %v)\n",
		gotName, gotSize, client.CallCount()-before, time.Since(start).Round(time.Microsecond))

	// Exception handling happens when reading futures, after flush (§3.3).
	batch2 := core.New(client, ref)
	ghost := batch2.Root().CallBatch("GetFile", "missing.txt")
	ghostName := ghost.Call("GetName")
	if err := batch2.Flush(ctx); err != nil {
		return err
	}
	if _, err := ghostName.Get(); err != nil {
		fmt.Printf("BRMI: dependent future rethrows: %v\n", err)
	}
	return nil
}
