// Ops: the live observability plane — ROADMAP's "live ops view" demo.
//
// Three servers run under synthetic batched load while the monitoring
// plane scrapes them the same way the workload talks to them: one cluster
// Batch whose roots are each server's stats.Node system object, flushed as
// a single parallel wave. The scraped snapshots render the brmitop table
// (QPS, executor wave latency quantiles, pool/codec reuse, migration,
// epoch). Then a fourth server joins mid-load, and the next scrape shows
// the rebalance happening: migration counters move and the ring epoch
// bumps. Finally one server's snapshot is re-exported in Prometheus text
// format — the bridge to off-the-shelf dashboards.
//
//	go run ./examples/ops
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/stats"
	"repro/internal/statsnode"
)

// Meter is a movable counter: its total follows it when the ring grows.
type Meter struct {
	rmi.RemoteBase
	mu    sync.Mutex
	total int64
}

const meterIface = "example.Meter"

func init() {
	cluster.RegisterMovable(meterIface, func() rmi.Remote { return &Meter{} })
}

// Record adds a reading and returns the running total.
func (m *Meter) Record(n int64) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total += n
	return m.total
}

// Snapshot and Restore implement cluster.Movable.
func (m *Meter) Snapshot() (any, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total, nil
}

func (m *Meter) Restore(state any) error {
	n, ok := state.(int64)
	if !ok {
		return fmt.Errorf("unexpected snapshot %T", state)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total = n
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ops:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	network := netsim.New(netsim.LAN)
	defer network.Close()
	silent := rmi.WithLogf(func(string, ...any) {})

	// --- four full nodes, each with a stats registry and a stats.Node ------
	// scrape service; only three start in the ring.
	const baseServers, totalServers = 3, 4
	endpoints := make([]string, totalServers)
	servers := make(map[string]*rmi.Peer, totalServers)
	for i := 0; i < totalServers; i++ {
		endpoints[i] = fmt.Sprintf("server-%d", i)
		server := rmi.NewPeer(network, silent,
			rmi.WithStatsRegistry(stats.New()))
		if err := server.Serve(endpoints[i]); err != nil {
			return err
		}
		defer server.Close()
		exec, err := core.Install(server)
		if err != nil {
			return err
		}
		defer exec.Stop()
		reg, err := registry.Start(server)
		if err != nil {
			return err
		}
		if _, err := cluster.StartNode(server, reg, nil); err != nil {
			return err
		}
		if _, err := statsnode.Start(server); err != nil {
			return err
		}
		servers[endpoints[i]] = server
	}
	newcomer := endpoints[baseServers]

	client := rmi.NewPeer(network, silent, rmi.WithStatsRegistry(stats.New()))
	defer client.Close()
	dir := cluster.NewDirectory(client, endpoints[:baseServers])

	// --- sharded meters + synthetic load ------------------------------------
	meters := []string{"api", "auth", "billing", "cart", "search", "mail", "feed", "jobs"}
	for _, name := range meters {
		home, err := dir.Home(name)
		if err != nil {
			return err
		}
		ref, err := servers[home].Export(&Meter{}, meterIface)
		if err != nil {
			return err
		}
		if err := dir.Bind(ctx, name, ref); err != nil {
			return err
		}
	}
	load := func(rounds int) error {
		for i := 0; i < rounds; i++ {
			b := cluster.New(client, cluster.WithDirectory(dir))
			for _, name := range meters {
				m, err := b.RootNamed(ctx, name)
				if err != nil {
					return err
				}
				m.Call("Record", int64(1))
			}
			if err := b.Flush(ctx); err != nil {
				return err
			}
		}
		return nil
	}

	// --- scrape 1+2: the brmitop view under steady load ---------------------
	// A scrape is ONE cluster batch flush: every server's Scrape() rides the
	// same parallel wave, so monitoring cost does not grow with cluster size.
	if err := load(40); err != nil {
		return err
	}
	prev, err := statsnode.ScrapeCluster(ctx, client, dir.Servers())
	if err != nil {
		return err
	}
	start := time.Now()
	if err := load(40); err != nil {
		return err
	}
	cur, err := statsnode.ScrapeCluster(ctx, client, dir.Servers())
	if err != nil {
		return err
	}
	fmt.Printf("steady state: %d servers, one scrape wave each refresh\n\n", baseServers)
	statsnode.RenderTable(os.Stdout, statsnode.BuildRows(cur, prev, time.Since(start)))

	// --- the cluster grows; the next scrape shows the rebalance -------------
	if _, err := cluster.NewRebalancer(dir).AddServer(ctx, newcomer); err != nil {
		return err
	}
	if err := load(40); err != nil {
		return err
	}
	grown, err := statsnode.ScrapeCluster(ctx, client, dir.Servers())
	if err != nil {
		return err
	}
	fmt.Printf("\nafter %s joined: migration and epoch columns move\n\n", newcomer)
	statsnode.RenderTable(os.Stdout, statsnode.BuildRows(grown, cur, time.Since(start)))

	// --- Prometheus bridge ---------------------------------------------------
	fmt.Printf("\nPrometheus text format (excerpt, %s):\n\n", endpoints[0])
	return writePromExcerpt(os.Stdout, endpoints[0], grown[endpoints[0]])
}

// writePromExcerpt exports one server's snapshot in Prometheus text format
// and prints a representative slice (full output is several hundred lines).
func writePromExcerpt(w io.Writer, endpoint string, snap *stats.Snapshot) error {
	var buf strings.Builder
	if err := stats.WritePrometheus(&buf, map[string]*stats.Snapshot{endpoint: snap}); err != nil {
		return err
	}
	shown := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.Contains(line, "core_calls_executed"),
			strings.Contains(line, "cluster_ring_epoch"),
			strings.Contains(line, "transport_pool_hit"),
			strings.Contains(line, "core_wave_ns"):
			fmt.Fprintln(w, line)
			shown++
		}
		if shown >= 12 {
			break
		}
	}
	return nil
}
