// Pipeline: staged cross-server dataflow in one cluster batch.
//
// Three servers play extract / transform / load. The whole pipeline —
// extract a dataset on the first server, transform it on the second
// (reading the dataset BY REFERENCE, server to server), load the summary
// on the third — is recorded into a single cluster.Batch. The flush plans
// the dependency DAG into stages and executes one parallel round-trip wave
// per stage:
//
//	wave 0  extract.Snapshot()            -> remote Dataset on etl-extract
//	wave 1  transform.Normalize(dataset)  -> the dataset ref was pinned and
//	                                         forwarded; transform pulls the
//	                                         rows server-to-server
//	wave 2  load.Store(total)             -> the normalized total, spliced
//	                                         by value from wave 1's future
//
// PR 1 rejected this recording outright (ErrCrossServer); the staged
// planner turned the rejection into D+1 round-trip waves. Strict callers
// can still opt back into the old guarantee with cluster.WithSingleStage.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// Dataset is a remote collection of samples living on the extract server.
// Forwarded consumers receive a stub and read it remotely.
type Dataset struct {
	rmi.RemoteBase
	Samples []int64
}

// Rows returns the raw samples.
func (d *Dataset) Rows() []int64 { return d.Samples }

// Extractor produces datasets.
type Extractor struct {
	rmi.RemoteBase
}

// Snapshot captures the current raw data as a new remote Dataset.
func (e *Extractor) Snapshot() *Dataset {
	return &Dataset{Samples: []int64{3, 1, 4, 1, 5, 9, 2, 6}}
}

// Transformer normalizes datasets it is handed — typically a stub to a
// dataset living on another server.
type Transformer struct {
	rmi.RemoteBase
}

// Normalize pulls the dataset's rows (a server-to-server call when src is
// a forwarded stub) and returns their sum.
func (t *Transformer) Normalize(ctx context.Context, src rmi.Invoker) (int64, error) {
	res, err := src.Invoke(ctx, "Rows")
	if err != nil {
		return 0, err
	}
	rows, ok := res[0].([]any)
	if !ok {
		return 0, fmt.Errorf("Rows returned %T", res[0])
	}
	var sum int64
	for _, r := range rows {
		sum += r.(int64)
	}
	return sum, nil
}

// Loader stores final results.
type Loader struct {
	rmi.RemoteBase
	stored []int64
}

// Store records a summary value and returns the number stored so far.
func (l *Loader) Store(v int64) int64 {
	l.stored = append(l.stored, v)
	return int64(len(l.stored))
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	network := netsim.New(netsim.LAN)
	defer network.Close()

	// --- three single-role servers -----------------------------------------
	var refs []wire.Ref
	for _, node := range []struct {
		endpoint string
		obj      rmi.Remote
		iface    string
	}{
		{"etl-extract", &Extractor{}, "etl.Extractor"},
		{"etl-transform", &Transformer{}, "etl.Transformer"},
		{"etl-load", &Loader{}, "etl.Loader"},
	} {
		server := rmi.NewPeer(network, rmi.WithLogf(func(string, ...any) {}))
		if err := server.Serve(node.endpoint); err != nil {
			return err
		}
		defer server.Close()
		exec, err := core.Install(server)
		if err != nil {
			return err
		}
		defer exec.Stop()
		ref, err := server.Export(node.obj, node.iface)
		if err != nil {
			return err
		}
		refs = append(refs, ref)
	}

	client := rmi.NewPeer(network, rmi.WithLogf(func(string, ...any) {}))
	defer client.Close()

	// --- the whole pipeline, one recording ---------------------------------
	batch := cluster.New(client)
	extract := batch.Root(refs[0])
	transform := batch.Root(refs[1])
	load := batch.Root(refs[2])

	dataset := extract.CallBatch("Snapshot")      // wave 0, stays remote
	total := transform.Call("Normalize", dataset) // wave 1, dataset by ref
	count := load.Call("Store", total)            // wave 2, total by value

	before, start := client.CallCount(), time.Now()
	if err := batch.Flush(ctx); err != nil {
		return err
	}
	elapsed := time.Since(start)

	sum, err := cluster.Typed[int64](total).Get()
	if err != nil {
		return err
	}
	n, err := cluster.Typed[int64](count).Get()
	if err != nil {
		return err
	}
	fmt.Printf("normalized total %d, %d summary row(s) stored\n", sum, n)
	fmt.Printf("depth-2 pipeline across 3 servers: %d waves, %d client round trips, %v\n",
		batch.Waves(), client.CallCount()-before, elapsed.Round(time.Microsecond))
	return nil
}
