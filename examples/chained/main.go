// Chained: chained batches and cursors (§3.5) — delete every file older
// than a cutoff date in exactly two round trips, no matter how many files
// the directory holds.
//
// The first batch lists the files with a cursor and fetches each date; the
// client then decides which files to delete (a client-side decision the
// server cannot make without mobile code) and records the deletions against
// the cursor's current elements, which the retained server session still
// addresses. The second flush executes them.
//
//	go run ./examples/chained [-files 8] [-cutoff-days 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/examples/fileserver/remotefs"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
)

func main() {
	files := flag.Int("files", 8, "number of files on the server")
	cutoffDays := flag.Int("cutoff-days", 4, "delete files older than this many days after the first")
	flag.Parse()
	if err := run(*files, *cutoffDays); err != nil {
		fmt.Fprintln(os.Stderr, "chained:", err)
		os.Exit(1)
	}
}

func run(files, cutoffDays int) error {
	ctx := context.Background()
	start := time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)
	cutoff := start.AddDate(0, 0, cutoffDays)

	network := netsim.New(netsim.LAN)
	defer network.Close()
	server := rmi.NewPeer(network)
	if err := server.Serve("fs"); err != nil {
		return err
	}
	defer server.Close()
	exec, err := core.Install(server)
	if err != nil {
		return err
	}
	defer exec.Stop()
	if _, err := registry.Start(server); err != nil {
		return err
	}
	dir := remotefs.NewMemDirectory(files, files*512, start)
	dirRef, err := server.Export(dir, remotefs.DirectoryIfaceName)
	if err != nil {
		return err
	}
	if err := registry.Bind(ctx, server, "fs", "root", dirRef); err != nil {
		return err
	}

	client := rmi.NewPeer(network)
	defer client.Close()
	ref, err := registry.Lookup(ctx, client, "fs", "root")
	if err != nil {
		return err
	}

	before := client.CallCount()
	bDir, _ := remotefs.NewBatchDirectory(client, ref)

	// First batch: list the files and fetch every date (§3.5's example).
	cursor := bDir.ListFiles()
	name := cursor.GetName()
	date := cursor.LastModified()
	if err := bDir.FlushAndContinue(ctx); err != nil {
		return err
	}

	// Client-side decision; deletions recorded against the cursor's
	// current element join the second, chained batch.
	deleted := 0
	for cursor.Next() {
		n, err := name.Get()
		if err != nil {
			return err
		}
		d, err := date.Get()
		if err != nil {
			return err
		}
		if d.Before(cutoff) {
			fmt.Printf("deleting %s (modified %s)\n", n, d.Format("2006-01-02"))
			_ = cursor.Delete()
			deleted++
		} else {
			fmt.Printf("keeping  %s (modified %s)\n", n, d.Format("2006-01-02"))
		}
	}

	// Second batch: the deletions, plus a count to confirm, in one flush.
	count := bDir.Count()
	if err := bDir.Flush(ctx); err != nil {
		return err
	}
	remaining, err := count.Get()
	if err != nil {
		return err
	}
	fmt.Printf("deleted %d of %d files, %d remain — %d round trips total\n",
		deleted, files, remaining, client.CallCount()-before)
	if remaining != files-deleted {
		return fmt.Errorf("server reports %d files, expected %d", remaining, files-deleted)
	}
	return nil
}
