package remotefs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/rmi"
	"repro/internal/wire"
)

// NotFoundError reports a missing file.
type NotFoundError struct {
	Name string
}

func (e *NotFoundError) Error() string { return "remotefs: no such file: " + e.Name }

// MemFile is an in-memory File implementation (the paper's server loads all
// files into memory to keep disk access out of the measurements, §5.4).
type MemFile struct {
	rmi.RemoteBase
	dir      *MemDirectory
	name     string
	modified time.Time
	body     []byte
}

var _ File = (*MemFile)(nil)

// GetName implements File.
func (f *MemFile) GetName() (string, error) { return f.name, nil }

// IsDirectory implements File; MemFiles are always plain files.
func (f *MemFile) IsDirectory() (bool, error) { return false, nil }

// LastModified implements File.
func (f *MemFile) LastModified() (time.Time, error) { return f.modified, nil }

// Length implements File.
func (f *MemFile) Length() (int64, error) { return int64(len(f.body)), nil }

// Contents implements File.
func (f *MemFile) Contents() ([]byte, error) {
	out := make([]byte, len(f.body))
	copy(out, f.body)
	return out, nil
}

// Delete implements File.
func (f *MemFile) Delete() error {
	f.dir.remove(f.name)
	return nil
}

// MemDirectory is an in-memory Directory implementation.
type MemDirectory struct {
	rmi.RemoteBase
	mu    sync.Mutex
	files []*MemFile
}

var _ Directory = (*MemDirectory)(nil)

// NewMemDirectory creates a directory with n files whose sizes sum to
// totalBytes, timestamped a day apart starting at start.
func NewMemDirectory(n, totalBytes int, start time.Time) *MemDirectory {
	d := &MemDirectory{}
	if n <= 0 {
		return d
	}
	per := totalBytes / n
	for i := 0; i < n; i++ {
		body := make([]byte, per)
		for j := range body {
			body[j] = byte('a' + (i+j)%26)
		}
		d.files = append(d.files, &MemFile{
			dir:      d,
			name:     fmt.Sprintf("file-%02d.txt", i),
			modified: start.AddDate(0, 0, i),
			body:     body,
		})
	}
	return d
}

// Add appends a file.
func (d *MemDirectory) Add(name string, modified time.Time, body []byte) *MemFile {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := &MemFile{dir: d, name: name, modified: modified, body: body}
	d.files = append(d.files, f)
	return f
}

// GetFile implements Directory.
func (d *MemDirectory) GetFile(name string) (File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range d.files {
		if f.name == name {
			return f, nil
		}
	}
	return nil, &NotFoundError{Name: name}
}

// ListFiles implements Directory.
func (d *MemDirectory) ListFiles() ([]File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]File, len(d.files))
	for i, f := range d.files {
		out[i] = f
	}
	return out, nil
}

// Count implements Directory.
func (d *MemDirectory) Count() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files), nil
}

func (d *MemDirectory) remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, f := range d.files {
		if f.name == name {
			d.files = append(d.files[:i], d.files[i+1:]...)
			return
		}
	}
}

func init() {
	wire.MustRegisterError("remotefs.NotFound", &NotFoundError{})
	RegisterDirectoryImpl(&MemDirectory{})
	RegisterFileImpl(&MemFile{})
}
