// Package remotefs declares the remote file-server interfaces of the
// paper's Remote File Server case study (§5.1) and running example (§3.1),
// implements them in memory, and carries the brmigen-generated typed batch
// interfaces (brmi_gen.go) used by the fileserver and chained examples.
//
// Regenerate with:
//
//	go run ./cmd/brmigen -in examples/fileserver/remotefs
package remotefs

import "time"

// Directory is a remote directory of files.
//
//brmi:remote
type Directory interface {
	// GetFile resolves a file by name.
	GetFile(name string) (File, error)
	// ListFiles returns every file in the directory.
	ListFiles() ([]File, error)
	// Count returns the number of files.
	Count() (int, error)
}

// File is one remote file; included transitively by the generator.
type File interface {
	// GetName returns the file name.
	GetName() (string, error)
	// IsDirectory reports whether the entry is a directory.
	IsDirectory() (bool, error)
	// LastModified returns the modification time.
	LastModified() (time.Time, error)
	// Length returns the content size in bytes.
	Length() (int64, error)
	// Contents returns the file body.
	Contents() ([]byte, error)
	// Delete removes the file from its directory.
	Delete() error
}
