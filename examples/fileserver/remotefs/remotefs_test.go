package remotefs

import (
	"errors"
	"testing"
	"time"
)

func start() time.Time { return time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC) }

func TestNewMemDirectoryLayout(t *testing.T) {
	d := NewMemDirectory(4, 4000, start())
	files, err := d.ListFiles()
	if err != nil || len(files) != 4 {
		t.Fatalf("list: %v %d", err, len(files))
	}
	var total int64
	for i, f := range files {
		name, _ := f.GetName()
		if name == "" {
			t.Errorf("file %d has empty name", i)
		}
		isDir, _ := f.IsDirectory()
		if isDir {
			t.Errorf("file %d claims to be a directory", i)
		}
		n, _ := f.Length()
		total += n
		m, _ := f.LastModified()
		want := start().AddDate(0, 0, i)
		if !m.Equal(want) {
			t.Errorf("file %d modified %v, want %v", i, m, want)
		}
	}
	if total != 4000 {
		t.Errorf("total bytes %d, want 4000", total)
	}
	if n, _ := d.Count(); n != 4 {
		t.Errorf("count %d", n)
	}
}

func TestNewMemDirectoryEmpty(t *testing.T) {
	d := NewMemDirectory(0, 100, start())
	if n, _ := d.Count(); n != 0 {
		t.Fatalf("count %d", n)
	}
	files, err := d.ListFiles()
	if err != nil || len(files) != 0 {
		t.Fatalf("list: %v %d", err, len(files))
	}
}

func TestGetFileAndNotFound(t *testing.T) {
	d := NewMemDirectory(2, 200, start())
	f, err := d.GetFile("file-01.txt")
	if err != nil {
		t.Fatal(err)
	}
	if name, _ := f.GetName(); name != "file-01.txt" {
		t.Fatalf("name %q", name)
	}
	_, err = d.GetFile("nope")
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.Name != "nope" {
		t.Fatalf("got %v, want NotFoundError{nope}", err)
	}
}

func TestDeleteRemovesFromDirectory(t *testing.T) {
	d := NewMemDirectory(3, 300, start())
	f, err := d.GetFile("file-01.txt")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Count(); n != 2 {
		t.Fatalf("count after delete %d", n)
	}
	if _, err := d.GetFile("file-01.txt"); err == nil {
		t.Fatal("deleted file still resolvable")
	}
	// Deleting twice is a no-op at the directory level.
	if err := f.Delete(); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Count(); n != 2 {
		t.Fatalf("double delete changed count: %d", n)
	}
}

func TestContentsIsACopy(t *testing.T) {
	d := NewMemDirectory(1, 64, start())
	f, _ := d.GetFile("file-00.txt")
	body1, _ := f.Contents()
	body1[0] = 0xFF
	body2, _ := f.Contents()
	if body2[0] == 0xFF {
		t.Fatal("Contents exposes internal buffer")
	}
}

func TestAdd(t *testing.T) {
	d := NewMemDirectory(0, 0, start())
	d.Add("manual.txt", start(), []byte("hello"))
	f, err := d.GetFile("manual.txt")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Length(); n != 5 {
		t.Fatalf("length %d", n)
	}
}
