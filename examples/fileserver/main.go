// Fileserver: the paper's Remote File Server case study (§5.1) with
// generated typed batch interfaces.
//
// The server holds n in-memory files; the client prints the listing the
// paper's code prints (name, isDirectory, lastModified, length). Plain RMI
// needs 1 + 4n round trips; BRMI does the whole listing — including file
// contents — in one round trip using a CFile cursor over ListFiles.
//
//	go run ./examples/fileserver [-files 10] [-bytes 102400] [-network lan|wireless|instant]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/examples/fileserver/remotefs"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
)

func main() {
	files := flag.Int("files", 10, "number of files on the server")
	bytes := flag.Int("bytes", 100<<10, "total bytes across all files")
	network := flag.String("network", "lan", "link profile: lan, wireless, instant")
	flag.Parse()
	if err := run(*files, *bytes, *network); err != nil {
		fmt.Fprintln(os.Stderr, "fileserver:", err)
		os.Exit(1)
	}
}

func profileByName(name string) (netsim.Profile, error) {
	switch name {
	case "lan":
		return netsim.LAN, nil
	case "wireless":
		return netsim.Wireless, nil
	case "instant":
		return netsim.Instant, nil
	default:
		return netsim.Profile{}, fmt.Errorf("unknown network %q", name)
	}
}

func run(files, totalBytes int, networkName string) error {
	ctx := context.Background()
	profile, err := profileByName(networkName)
	if err != nil {
		return err
	}

	// Server: an in-memory directory, batch-callable.
	network := netsim.New(profile)
	defer network.Close()
	server := rmi.NewPeer(network)
	if err := server.Serve("fs"); err != nil {
		return err
	}
	defer server.Close()
	exec, err := core.Install(server)
	if err != nil {
		return err
	}
	defer exec.Stop()
	if _, err := registry.Start(server); err != nil {
		return err
	}
	dir := remotefs.NewMemDirectory(files, totalBytes, time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC))
	dirRef, err := server.Export(dir, remotefs.DirectoryIfaceName)
	if err != nil {
		return err
	}
	if err := registry.Bind(ctx, server, "fs", "root", dirRef); err != nil {
		return err
	}

	client := rmi.NewPeer(network)
	defer client.Close()
	ref, err := registry.Lookup(ctx, client, "fs", "root")
	if err != nil {
		return err
	}

	// --- plain RMI: 1 + 4n round trips (paper §5.1) --------------------------
	before, start := client.CallCount(), time.Now()
	dirStub := remotefs.NewDirectoryStub(client.Deref(ref))
	remoteFiles, err := dirStub.ListFiles()
	if err != nil {
		return err
	}
	for _, f := range remoteFiles {
		name, err := f.GetName()
		if err != nil {
			return err
		}
		isDir, err := f.IsDirectory()
		if err != nil {
			return err
		}
		modified, err := f.LastModified()
		if err != nil {
			return err
		}
		length, err := f.Length()
		if err != nil {
			return err
		}
		fmt.Printf("%s: isDirectory=%v; lastModified=%s; length=%d\n",
			name, isDir, modified.Format("2006-01-02"), length)
	}
	fmt.Printf("RMI : %d files in %d round trips, %v\n\n",
		len(remoteFiles), client.CallCount()-before, time.Since(start).Round(time.Microsecond))

	// --- BRMI: one round trip with a cursor (§3.4, §5.1) ----------------------
	before, start = client.CallCount(), time.Now()
	bDir, _ := remotefs.NewBatchDirectory(client, ref)
	cursor := bDir.ListFiles()
	fName := cursor.GetName()
	fIsDir := cursor.IsDirectory()
	fModified := cursor.LastModified()
	fLength := cursor.Length()
	fContents := cursor.Contents()
	if err := bDir.Flush(ctx); err != nil {
		return err
	}
	var transferred int64
	for cursor.Next() {
		name, err := fName.Get()
		if err != nil {
			return err
		}
		isDir, err := fIsDir.Get()
		if err != nil {
			return err
		}
		modified, err := fModified.Get()
		if err != nil {
			return err
		}
		length, err := fLength.Get()
		if err != nil {
			return err
		}
		body, err := fContents.Get()
		if err != nil {
			return err
		}
		transferred += int64(len(body))
		fmt.Printf("%s: isDirectory=%v; lastModified=%s; length=%d\n",
			name, isDir, modified.Format("2006-01-02"), length)
	}
	n, err := cursor.Len()
	if err != nil {
		return err
	}
	fmt.Printf("BRMI: %d files (+%d content bytes) in %d round trips, %v\n",
		n, transferred, client.CallCount()-before, time.Since(start).Round(time.Microsecond))
	return nil
}
