// Translator: the paper's translation-service case study (§5.1).
//
// The service translates one Word per request and was "built to handle one
// translation request at a time". BRMI batches any number of requests —
// chosen at runtime from the command line — into one round trip, with no
// change to the server design: the client builds a dynamic slice of
// futures, exactly as the paper's code does with its Future<Word>[] array.
//
//	go run ./examples/translator hello world paper batch
package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// Word is the request/response value object, passed by copy (it does not
// embed rmi.RemoteBase), like the paper's serializable Word class.
type Word struct {
	Text     string
	Language string
}

// translator is the server: a tiny English-to-Latin dictionary.
type translator struct {
	rmi.RemoteBase
	dict map[string]string
}

// Translate handles exactly one word per call, like the original service.
func (t *translator) Translate(w Word) (Word, error) {
	translated, ok := t.dict[strings.ToLower(w.Text)]
	if !ok {
		return Word{}, &wire.RemoteError{TypeName: "translator.Unknown", Message: "no translation for " + w.Text}
	}
	return Word{Text: translated, Language: "la"}, nil
}

func init() {
	wire.MustRegister("translator.Word", Word{})
}

func main() {
	words := os.Args[1:]
	if len(words) == 0 {
		words = []string{"hello", "world", "file", "batch", "future"}
	}
	if err := run(words); err != nil {
		fmt.Fprintln(os.Stderr, "translator:", err)
		os.Exit(1)
	}
}

func run(words []string) error {
	ctx := context.Background()

	network := netsim.New(netsim.LAN)
	defer network.Close()
	server := rmi.NewPeer(network)
	if err := server.Serve("translator"); err != nil {
		return err
	}
	defer server.Close()
	exec, err := core.Install(server)
	if err != nil {
		return err
	}
	defer exec.Stop()
	if _, err := registry.Start(server); err != nil {
		return err
	}

	svc := &translator{dict: map[string]string{
		"hello": "salve", "world": "mundus", "file": "scapus",
		"batch": "acervus", "future": "futurum", "paper": "charta",
	}}
	ref, err := server.Export(svc, "translator.Translator")
	if err != nil {
		return err
	}
	if err := registry.Bind(ctx, server, "translator", "svc", ref); err != nil {
		return err
	}

	client := rmi.NewPeer(network)
	defer client.Close()
	svcRef, err := registry.Lookup(ctx, client, "translator", "svc")
	if err != nil {
		return err
	}

	// The size and composition of the batch is decided at runtime (§5.1):
	// one recorded call per input word, one flush for all of them. An
	// unknown word must not spoil the other translations, so the batch
	// continues past exceptions (§3.3).
	before, start := client.CallCount(), time.Now()
	batch := core.New(client, svcRef, core.WithPolicy(core.ContinuePolicy()))
	root := batch.Root()
	responses := make([]core.TypedFuture[Word], len(words))
	for i, w := range words {
		responses[i] = core.Typed[Word](root.Call("Translate", Word{Text: w, Language: "en"}))
	}
	if err := root.Flush(ctx); err != nil {
		return err
	}
	for i, f := range responses {
		w, err := f.Get()
		if err != nil {
			fmt.Printf("result %d: %q -> error: %v\n", i, words[i], err)
			continue
		}
		fmt.Printf("result %d: %q -> %q (%s)\n", i, words[i], w.Text, w.Language)
	}
	fmt.Printf("%d translations in %d round trip(s), %v\n",
		len(words), client.CallCount()-before, time.Since(start).Round(time.Microsecond))
	return nil
}
