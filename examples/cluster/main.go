// Cluster: the bank from examples/bank, sharded across three servers.
//
// Each server runs its own registry, BRMI executor, and credit.Manager; the
// cluster.Directory's consistent-hash ring decides which server is home to
// each customer, and account refs are bound in the home server's registry.
// A single cluster.Batch then records purchases for customers living on
// different servers and flushes once: the recording is partitioned into one
// sub-batch per server and executed in parallel, so the whole multi-server
// workload costs one round trip of wall-clock time instead of one per
// server.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/examples/bank/credit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/wire"
)

const servers = 3

var customers = []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", "ivan"}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	network := netsim.New(netsim.LAN)
	defer network.Close()

	// --- the cluster: 3 bank servers, each a full BRMI node ----------------
	endpoints := make([]string, servers)
	managers := make([]*credit.Manager, servers)
	for i := 0; i < servers; i++ {
		endpoints[i] = fmt.Sprintf("bank-%d", i)
		server := rmi.NewPeer(network, rmi.WithLogf(func(string, ...any) {}))
		if err := server.Serve(endpoints[i]); err != nil {
			return err
		}
		defer server.Close()
		exec, err := core.Install(server)
		if err != nil {
			return err
		}
		defer exec.Stop()
		if _, err := registry.Start(server); err != nil {
			return err
		}
		managers[i] = credit.NewManager()
		ref, err := server.Export(managers[i], credit.CreditManagerIfaceName)
		if err != nil {
			return err
		}
		// Every server binds its manager under the same well-known name in
		// its own registry; the directory routes customers on top of that.
		if err := registry.Bind(ctx, server, endpoints[i], "manager", ref); err != nil {
			return err
		}
	}

	client := rmi.NewPeer(network, rmi.WithLogf(func(string, ...any) {}))
	defer client.Close()
	dir := cluster.NewDirectory(client, endpoints)

	// --- shard the accounts: each customer opens at their home server ------
	perServer := make(map[string][]string)
	for _, customer := range customers {
		home, err := dir.Home(customer)
		if err != nil {
			return err
		}
		perServer[home] = append(perServer[home], customer)
		managerRef, err := registry.Lookup(ctx, client, home, "manager")
		if err != nil {
			return err
		}
		stub := credit.NewCreditManagerStub(client.Deref(managerRef))
		card, err := stub.CreateAccount(customer, 1000)
		if err != nil {
			return err
		}
		cardRef, err := refOf(card)
		if err != nil {
			return err
		}
		// The account's name is cluster-wide: bound at its home registry.
		if err := dir.Bind(ctx, customer, cardRef); err != nil {
			return err
		}
	}
	for _, ep := range dir.Servers() {
		names := perServer[ep]
		sort.Strings(names)
		fmt.Printf("%s is home to %v\n", ep, names)
	}

	// --- one batch spanning all three servers ------------------------------
	// For every customer: a purchase plus a credit-line read, recorded into
	// a single cluster.Batch regardless of which server the account lives on.
	batch := cluster.New(client)
	type result struct {
		customer string
		purchase *cluster.Future
		line     cluster.TypedFuture[float64]
	}
	var results []result
	for i, customer := range customers {
		ref, err := dir.Lookup(ctx, customer)
		if err != nil {
			return err
		}
		account := batch.Root(ref)
		results = append(results, result{
			customer: customer,
			purchase: account.Call("MakePurchase", float64(100+10*i)),
			line:     cluster.Typed[float64](account.Call("GetCreditLine")),
		})
	}

	dests := batch.Destinations()
	before, start := client.CallCount(), time.Now()
	if err := batch.Flush(ctx); err != nil {
		return err
	}
	elapsed := time.Since(start)

	for _, r := range results {
		if err := r.purchase.Err(); err != nil {
			return fmt.Errorf("%s: purchase: %w", r.customer, err)
		}
		line, err := r.line.Get()
		if err != nil {
			return fmt.Errorf("%s: credit line: %w", r.customer, err)
		}
		fmt.Printf("%-6s purchase accepted, credit line now %7.2f\n", r.customer, line)
	}
	fmt.Printf("flushed %d customers across %d servers: %d round trips in %v (parallel fan-out ≈ one RTT)\n",
		len(customers), len(dests), client.CallCount()-before, elapsed.Round(time.Microsecond))
	return nil
}

// refOf extracts the remote reference behind a client-side stub.
func refOf(v any) (wire.Ref, error) {
	if h, ok := v.(rmi.RefHolder); ok {
		return h.Ref(), nil
	}
	return wire.Ref{}, fmt.Errorf("%T carries no remote reference", v)
}
