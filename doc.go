// Package repro is a from-scratch Go reproduction of "Explicit Batching for
// Distributed Objects" (Tilevich & Cook, ICDCS 2009): BRMI — explicit
// batching of remote method invocations — together with every substrate the
// paper depends on (an RMI-like distributed object runtime, serialization,
// transport, naming, distributed GC, and a latency/bandwidth-simulated
// network standing in for the paper's two physical testbeds).
//
// Layout:
//
//   - internal/core      BRMI: batches, futures, cursors, policies, chaining,
//     and export-pinned batch results for cross-server forwarding
//   - internal/cluster   multi-server sharding: epoch-versioned
//     consistent-hash shard map, cluster naming, staged cluster batches —
//     one recording spanning many servers, planned into dependency stages
//     and executed as one parallel round-trip wave per stage, forwarding
//     results between servers by reference (pinned refs) or by value
//     (spliced futures) — and elastic membership: servers join and leave
//     under live traffic, moved objects migrate in batched round trips
//     (Movable snapshot/restore), and stale routes fail with a typed
//     wrong-home error that epoch-aware lookups and flushes retry once
//   - internal/rmi       distributed object runtime (the "Java RMI" role)
//   - internal/wire      value serialization and remote references
//   - internal/transport framed, multiplexed request/response transport
//   - internal/netsim    simulated LAN and wireless links
//   - internal/registry  naming service (the "RMI Registry" role)
//   - internal/dgc       lease-based distributed garbage collection
//   - internal/codegen   "rmic -batch" equivalent (typed stubs; cmd/brmigen)
//   - internal/bench     harness regenerating the paper's Figures 5-13
//   - cmd/benchfig       prints every figure's series; cmd/brmigen generates
//   - examples/          runnable applications (quickstart, file server,
//     bank, translator, chained batches, sharded multi-server cluster,
//     staged cross-server pipeline, live re-sharding under traffic)
//
// The benchmarks in bench_test.go reproduce each figure as a testing.B
// benchmark; `go run ./cmd/benchfig -all` prints the full evaluation.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper.
package repro
