// Package integration_test exercises the full stack end to end: registry
// bootstrap, generated typed stubs, batching with cursors and chained
// sessions — over both the simulated wireless link and the operating
// system's real TCP loopback.
package integration_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/examples/fileserver/remotefs"
	"repro/internal/codegen/fstest"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/transport"
)

func silentLogf(string, ...any) {}

// startFileServer exports a MemDirectory on a serving peer with registry
// and batch executor installed.
func startFileServer(t *testing.T, network transport.Network, endpoint string, files int) *rmi.Peer {
	t.Helper()
	server := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	if err := server.Serve(endpoint); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	exec, err := core.Install(server)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Stop)
	if _, err := registry.Start(server); err != nil {
		t.Fatal(err)
	}
	dir := remotefs.NewMemDirectory(files, files*1024, time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC))
	ref, err := server.Export(dir, remotefs.DirectoryIfaceName)
	if err != nil {
		t.Fatal(err)
	}
	if err := registry.Bind(context.Background(), server, endpoint, "root", ref); err != nil {
		t.Fatal(err)
	}
	return server
}

// fullScenario is the complete client workflow: lookup, typed RMI listing,
// batched cursor listing, chained deletion — asserting round-trip budgets.
func fullScenario(t *testing.T, network transport.Network, endpoint string) {
	t.Helper()
	ctx := context.Background()
	const files = 6
	startFileServer(t, network, endpoint, files)

	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	t.Cleanup(func() { _ = client.Close() })

	ref, err := registry.Lookup(ctx, client, endpoint, "root")
	if err != nil {
		t.Fatal(err)
	}

	// Typed RMI: 1 + n round trips for names.
	before := client.CallCount()
	dir := remotefs.NewDirectoryStub(client.Deref(ref))
	listed, err := dir.ListFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != files {
		t.Fatalf("listed %d files", len(listed))
	}
	for _, f := range listed {
		if _, err := f.GetName(); err != nil {
			t.Fatal(err)
		}
	}
	if got := client.CallCount() - before; got != 1+files {
		t.Fatalf("RMI listing used %d round trips, want %d", got, 1+files)
	}

	// BRMI cursor: everything in one round trip.
	before = client.CallCount()
	bdir, _ := remotefs.NewBatchDirectory(client, ref)
	cursor := bdir.ListFiles()
	names := cursor.GetName()
	lengths := cursor.Length()
	if err := bdir.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	count := 0
	for cursor.Next() {
		if _, err := names.Get(); err != nil {
			t.Fatal(err)
		}
		if v, err := lengths.Get(); err != nil || v != 1024 {
			t.Fatalf("length: %v %d", err, v)
		}
		count++
	}
	if count != files {
		t.Fatalf("cursor iterated %d", count)
	}
	if got := client.CallCount() - before; got != 1 {
		t.Fatalf("BRMI listing used %d round trips, want 1", got)
	}

	// Chained deletion: two round trips, decided client-side.
	before = client.CallCount()
	bdir2, _ := remotefs.NewBatchDirectory(client, ref)
	cursor2 := bdir2.ListFiles()
	date := cursor2.LastModified()
	if err := bdir2.FlushAndContinue(ctx); err != nil {
		t.Fatal(err)
	}
	cutoff := time.Date(2009, 6, 24, 0, 0, 0, 0, time.UTC)
	deleted := 0
	for cursor2.Next() {
		d, err := date.Get()
		if err != nil {
			t.Fatal(err)
		}
		if d.Before(cutoff) {
			_ = cursor2.Delete()
			deleted++
		}
	}
	remaining := bdir2.Count()
	if err := bdir2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	left, err := remaining.Get()
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 2 || left != files-deleted {
		t.Fatalf("deleted=%d left=%d", deleted, left)
	}
	if got := client.CallCount() - before; got != 2 {
		t.Fatalf("chained deletion used %d round trips, want 2", got)
	}
}

func TestFullScenarioWirelessProfile(t *testing.T) {
	// Scaled wireless keeps the test fast while exercising real latency.
	network := netsim.New(netsim.Wireless.Scaled(100))
	defer network.Close()
	fullScenario(t, network, "fs")
}

func TestFullScenarioRealTCP(t *testing.T) {
	// Reserve a loopback port, then serve on it: TCP endpoints must be
	// dialable addresses since they travel inside remote references.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	fullScenario(t, transport.TCPNetwork{}, addr)
}

// TestTwoServersOneClient: refs from different servers keep their own
// endpoints; batches go to the right executor.
func TestTwoServersOneClient(t *testing.T) {
	network := netsim.New(netsim.Instant)
	defer network.Close()
	startFileServer(t, network, "alpha", 2)
	startFileServer(t, network, "beta", 5)

	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	defer client.Close()
	ctx := context.Background()

	for _, tc := range []struct {
		endpoint string
		want     int
	}{{"alpha", 2}, {"beta", 5}} {
		ref, err := registry.Lookup(ctx, client, tc.endpoint, "root")
		if err != nil {
			t.Fatal(err)
		}
		bdir, _ := remotefs.NewBatchDirectory(client, ref)
		count := bdir.Count()
		if err := bdir.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		if v, err := count.Get(); err != nil || v != tc.want {
			t.Fatalf("%s: %v %d want %d", tc.endpoint, err, v, tc.want)
		}
	}
}

// TestCrossPackageIfaceIsolation: two generated packages (remotefs and
// fstest) coexist in one process: their stub factories are registered under
// distinct interface names.
func TestCrossPackageIfaceIsolation(t *testing.T) {
	if remotefs.DirectoryIfaceName == fstest.DirectoryIfaceName {
		t.Fatalf("interface names collide: %q", remotefs.DirectoryIfaceName)
	}
}

// TestServerRestartInvalidatesSessions: a chained batch across a server
// restart fails with a session error rather than corrupting state.
func TestServerRestartInvalidatesSessions(t *testing.T) {
	network := netsim.New(netsim.Instant)
	defer network.Close()
	server := startFileServer(t, network, "fs", 3)

	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	defer client.Close()
	ctx := context.Background()
	ref, err := registry.Lookup(ctx, client, "fs", "root")
	if err != nil {
		t.Fatal(err)
	}
	bdir, _ := remotefs.NewBatchDirectory(client, ref)
	f := bdir.GetFile("file-00.txt")
	if err := bdir.FlushAndContinue(ctx); err != nil {
		t.Fatal(err)
	}

	_ = server.Close()
	startFileServer(t, network, "fs", 3) // fresh server, fresh sessions

	_ = f.GetName()
	err = bdir.Flush(ctx)
	if err == nil {
		t.Fatal("chained flush across restart succeeded")
	}
	var se *core.SessionExpiredError
	var be *core.BatchError
	if !errors.As(err, &se) && !errors.As(err, &be) {
		t.Fatalf("got %v, want session/batch error", err)
	}
}
