package cluster_test

// Goroutine-leak regression for the replication ship fan-out: a quorum-
// early flush returns while stragglers are still shipping, and a straggler
// stuck on a wedged destination connection must expire on shipTimeout
// instead of outliving the flush forever.

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/clustertest"
	"repro/internal/netsim"
)

// assertGoroutinesReturn polls until the process goroutine count falls back
// to (near) baseline, dumping all stacks on timeout. The small slack
// absorbs runtime/test-framework churn; a leaked ship goroutine per flush
// blows well past it.
func assertGoroutinesReturn(t *testing.T, baseline int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	n := 0
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutine count stuck at %d (baseline %d); leaked stacks:\n%s", n, baseline, buf)
}

// TestShipStragglerDoesNotLeak: under WithQuorum(1) a replicated flush acks
// off the primary alone, and the follower ship runs on past replicate's
// return. With the follower's response path wedged (huge injected latency —
// the connection is alive, the Append answer just never arrives), the ship
// goroutine must exit when shipTimeout expires rather than leak.
func TestShipStragglerDoesNotLeak(t *testing.T) {
	restore := cluster.SetShipTimeoutForTest(250 * time.Millisecond)
	defer restore()

	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, ec.Endpoints(), cluster.WithReplication(2))
	ec.BindCounter(dir, "obj-0", 100)
	if _, err := cluster.NewRebalancer(dir).AddServer(ctx, ec.Endpoints()[0]); err != nil {
		t.Fatalf("placement rebalance: %v", err)
	}
	owners, _ := dir.Owners("obj-0")
	follower := owners[1]

	flush := func(want int64) {
		t.Helper()
		b := cluster.New(ec.Client, cluster.WithDirectory(dir), cluster.WithQuorum(1))
		p, err := b.RootNamed(ctx, "obj-0")
		if err != nil {
			t.Fatal(err)
		}
		f := p.Call("Add", int64(1))
		if err := b.Flush(ctx); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if v, err := cluster.Typed[int64](f).Get(); err != nil || v != want {
			t.Fatalf("Add = %v, %v; want %d", v, err, want)
		}
	}

	// First flush on a healthy network establishes every connection the
	// ship path uses, so its readLoops land in the baseline.
	flush(101)
	assertGoroutinesReturn(t, runtime.NumGoroutine(), 2*time.Second)
	baseline := runtime.NumGoroutine()

	// Wedge the follower's response path and keep flushing: quorum W=1
	// acks each wave immediately, and every straggler ship hangs on the
	// silent connection. Eight wedged flushes put any leak far outside the
	// poll's churn slack. The hour-late responses stay queued on the link
	// (graceful close drains in-flight data), so teardown must reset those
	// connections abortively — registered before clustertest's own cleanup
	// so it runs first.
	ec.Network.SetLinkFaults(follower, clustertest.ClientHost, netsim.LinkFaults{ExtraLatency: time.Hour})
	t.Cleanup(func() { ec.Network.KillConns(follower) })
	for i := int64(0); i < 8; i++ {
		flush(102 + i)
	}

	// The fix: each ship's own deadline reaps it. Without shipTimeout the
	// goroutines block in Call for as long as the flush ctx lives — here,
	// forever — and this poll times out.
	assertGoroutinesReturn(t, baseline, 5*time.Second)
}
