package cluster_test

// Fault-injection tests for migration retry idempotence: the rebalancer's
// MigrationProbe cuts a flow immediately before a chosen batched trip,
// leaving exactly the partial state a real fault there would, and a retried
// AddServer must converge — every moved name resolves at its ring home
// exactly once, with its state intact, and appears in exactly one member's
// manifest (nothing lost, nothing duplicated).

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/clustertest"
	"repro/internal/rmi"
)

var errInjected = errors.New("injected migration fault")

// failAtStage returns a probe failing every flow at the given stage.
func failAtStage(stage cluster.MigrationStage) cluster.MigrationProbe {
	return func(s cluster.MigrationStage, src, dst string, names []string) error {
		if s == stage {
			return fmt.Errorf("%w: %s %s->%s %v", errInjected, s, src, dst, names)
		}
		return nil
	}
}

// checkConverged asserts the cluster-wide post-rebalance invariant for the
// given names: resolvable at the ring-assigned home, expected state, and
// exactly one manifest entry across the cluster.
func checkConverged(t *testing.T, ec *clustertest.Cluster, dir *cluster.Directory, seeds map[string]int64) {
	t.Helper()
	ctx := context.Background()
	for name, seed := range seeds {
		home, err := dir.Home(name)
		if err != nil {
			t.Fatalf("home %s: %v", name, err)
		}
		ref, err := dir.Lookup(ctx, name)
		if err != nil {
			t.Fatalf("lookup %s after retry: %v", name, err)
		}
		if ref.Endpoint != home {
			t.Errorf("%s resolves to %s, want ring home %s", name, ref.Endpoint, home)
		}
		res, err := ec.Client.Call(ctx, ref, "Get")
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if got := res[0].(int64); got != seed {
			t.Errorf("%s state = %d, want %d (lost or doubly-restored)", name, got, seed)
		}
		// Exactly one member's manifest carries the name.
		holders := 0
		for _, s := range ec.Servers {
			for _, b := range s.Node.Manifest() {
				if b.Name == name {
					holders++
				}
			}
		}
		if holders != 1 {
			t.Errorf("%s appears in %d manifests, want exactly 1", name, holders)
		}
	}
}

// TestAddServerRetryConvergesAfterInjectedFault runs the scale-out with the
// migration cut before each of its three trips in turn. Whatever partial
// state the cut leaves — nothing copied, copies adopted but the old home
// not tombstoned — a plain retried AddServer converges.
func TestAddServerRetryConvergesAfterInjectedFault(t *testing.T) {
	for _, stage := range []cluster.MigrationStage{cluster.StageSnapshot, cluster.StageArrive, cluster.StageDepart} {
		t.Run(string(stage), func(t *testing.T) {
			ec := clustertest.New(t, 3)
			ctx := context.Background()
			dir := cluster.NewDirectory(ec.Client, []string{"server-0", "server-1"})
			grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})

			moving := clustertest.PickNames(dir.Ring(), grown, "server-0", "server-2", 2)
			moving = append(moving, clustertest.PickNames(dir.Ring(), grown, "server-1", "server-2", 1)...)
			seeds := map[string]int64{}
			for i, name := range moving {
				seeds[name] = int64(100 * (i + 1))
				ec.BindCounter(dir, name, seeds[name])
			}

			// First attempt: every flow dies right before `stage`.
			faulty := cluster.NewRebalancer(dir, cluster.WithMigrationProbe(failAtStage(stage)))
			if _, err := faulty.AddServer(ctx, "server-2"); !errors.Is(err, errInjected) {
				t.Fatalf("faulted AddServer error = %v, want the injected fault", err)
			}

			// The state must never be lost mid-way: every name still reads
			// back its seed from wherever it currently lives (old home, or
			// both homes during the arrive/depart window).
			for name, seed := range seeds {
				ref, err := dir.Lookup(ctx, name)
				if err != nil {
					t.Fatalf("lookup %s after fault: %v", name, err)
				}
				res, err := ec.Client.Call(ctx, ref, "Get")
				if err != nil {
					t.Fatalf("read %s after fault: %v", name, err)
				}
				if got := res[0].(int64); got != seed {
					t.Errorf("%s = %d after faulted run, want %d", name, got, seed)
				}
			}

			// Retry without the fault: must converge, moving exactly the
			// leftovers.
			stats, err := cluster.NewRebalancer(dir).AddServer(ctx, "server-2")
			if err != nil {
				t.Fatalf("retried AddServer: %v", err)
			}
			if stage == cluster.StageDepart && stats.Moved != len(moving) {
				// The copies arrived but the sources never tombstoned: the
				// retry still sees every name mis-homed and must re-run the
				// (idempotent) flows.
				t.Errorf("retry after depart-cut moved %d, want %d leftovers", stats.Moved, len(moving))
			}
			checkConverged(t, ec, dir, seeds)

			// A further retry is a clean no-op.
			if again, err := cluster.NewRebalancer(dir).AddServer(ctx, "server-2"); err != nil || again.Moved != 0 {
				t.Errorf("third AddServer = %+v, %v; want converged no-op", again, err)
			}
		})
	}
}

// TestRemoveServerRetryConvergesAfterInjectedArriveFault: same property for
// the drain direction — a RemoveServer cut before its arrive trip is
// completed by a retry, and the drained names land on the survivors exactly
// once.
func TestRemoveServerRetryConvergesAfterInjectedArriveFault(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, []string{"server-0", "server-1", "server-2"})

	seeds := map[string]int64{}
	for i := 0; len(seeds) < 2; i++ {
		name := fmt.Sprintf("drain-%d", i)
		if home, _ := dir.Home(name); home == "server-2" {
			seeds[name] = int64(10 + i)
			ec.BindCounter(dir, name, seeds[name])
		}
	}

	faulty := cluster.NewRebalancer(dir, cluster.WithMigrationProbe(failAtStage(cluster.StageArrive)))
	if _, err := faulty.RemoveServer(ctx, "server-2"); !errors.Is(err, errInjected) {
		t.Fatalf("faulted RemoveServer error = %v, want the injected fault", err)
	}

	if _, err := cluster.NewRebalancer(dir).RemoveServer(ctx, "server-2"); err != nil {
		t.Fatalf("retried RemoveServer: %v", err)
	}
	if dir.Ring().Contains("server-2") {
		t.Fatal("victim still in the ring after retried remove")
	}
	checkConverged(t, ec, dir, seeds)
	for name := range seeds {
		if ref, err := dir.Lookup(ctx, name); err != nil || ref.Endpoint == "server-2" {
			t.Errorf("%s still resolves to the removed server (ref %v, err %v)", name, ref, err)
		}
	}
	// The departed copies on the victim answer wrong-home, not stale data.
	for i, s := range ec.Servers {
		if s.Endpoint != "server-2" {
			continue
		}
		for name := range seeds {
			if _, err := s.Reg.Lookup(name); err == nil {
				t.Errorf("server %d still binds %s cleanly after drain", i, name)
			} else {
				var wrong *rmi.WrongHomeError
				if !errors.As(err, &wrong) {
					t.Errorf("drained binding %s error = %v, want WrongHomeError", name, err)
				}
			}
		}
	}
}
