// Package cluster layers multi-server sharding on top of the single-server
// BRMI core: a consistent-hash shard map that routes object names to peer
// endpoints, a cluster-aware naming layer over internal/registry, and a
// cluster Batch whose one recording session may span proxies living on
// different servers. At flush the recording is partitioned into
// per-destination sub-batches (per-server program order preserved) and
// executed as one core.Batch per peer in parallel, so a cluster flush costs
// roughly the slowest server's round trip instead of the sum of all of them.
//
// Cross-server data dependencies — a result recorded on server A used as the
// target or argument of a call on server B — cannot be replayed server-side
// without an extra hop, so this version detects them at record time and
// rejects them with ErrCrossServer (see DESIGN.md, "Cluster partitioning
// rules").
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is how many points each endpoint occupies on the ring.
// More points smooth the key distribution at the cost of a larger sorted
// table; 128 keeps the imbalance across a handful of servers within a few
// percent.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash shard map over peer endpoints. Keys (object
// names) are routed to the endpoint owning the first ring point at or after
// the key's hash. Adding an endpoint moves only the keys that land on the
// new endpoint; every other key keeps its home, which is the property that
// makes incremental cluster growth cheap.
//
// Ring is safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	vnodes   int
	points   []uint64          // sorted hash points
	owners   map[uint64]string // point -> endpoint
	members  map[string]bool
	endpoint []string // sorted member list, kept for Endpoints
}

// RingOption configures a Ring.
type RingOption func(*Ring)

// WithVirtualNodes sets the points per endpoint (default
// DefaultVirtualNodes).
func WithVirtualNodes(n int) RingOption {
	return func(r *Ring) {
		if n > 0 {
			r.vnodes = n
		}
	}
}

// NewRing creates a ring containing the given endpoints.
func NewRing(endpoints []string, opts ...RingOption) *Ring {
	r := &Ring{
		vnodes:  DefaultVirtualNodes,
		owners:  make(map[uint64]string),
		members: make(map[string]bool),
	}
	for _, o := range opts {
		o(r)
	}
	for _, ep := range endpoints {
		r.add(ep)
	}
	return r
}

// Add inserts an endpoint into the ring. Adding an existing member is a
// no-op.
func (r *Ring) Add(endpoint string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.add(endpoint)
}

func (r *Ring) add(endpoint string) {
	if r.members[endpoint] {
		return
	}
	r.members[endpoint] = true
	for i := 0; i < r.vnodes; i++ {
		h := hashKey(fmt.Sprintf("%s#%d", endpoint, i))
		// Collisions across 64-bit FNV points are vanishingly rare; if one
		// happens the first owner keeps the point, which only skews the
		// distribution by one vnode.
		if _, taken := r.owners[h]; taken {
			continue
		}
		r.owners[h] = endpoint
		r.points = append(r.points, h)
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i] < r.points[j] })
	r.endpoint = append(r.endpoint, endpoint)
	sort.Strings(r.endpoint)
}

// Remove deletes an endpoint from the ring. Keys it owned redistribute to
// the remaining members.
func (r *Ring) Remove(endpoint string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[endpoint] {
		return
	}
	delete(r.members, endpoint)
	kept := r.points[:0]
	for _, h := range r.points {
		if r.owners[h] == endpoint {
			delete(r.owners, h)
			continue
		}
		kept = append(kept, h)
	}
	r.points = kept
	for i, ep := range r.endpoint {
		if ep == endpoint {
			r.endpoint = append(r.endpoint[:i], r.endpoint[i+1:]...)
			break
		}
	}
}

// Route returns the endpoint owning key, or "" for an empty ring.
func (r *Ring) Route(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.owners[r.points[i]]
}

// Endpoints returns the current members, sorted.
func (r *Ring) Endpoints() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.endpoint))
	copy(out, r.endpoint)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// hashKey is 64-bit FNV-1a with a murmur-style finalizer. FNV alone leaves
// keys that differ only in trailing characters (obj-00, obj-01, ...) in a
// narrow band of the 64-bit space, which parks whole key families on one
// ring arc; the finalizer's avalanche spreads them. Deterministic across
// processes, unlike Go's map hash.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
