// Package cluster layers multi-server sharding on top of the single-server
// BRMI core: a consistent-hash shard map that routes object names to peer
// endpoints, a cluster-aware naming layer over internal/registry, and a
// cluster Batch whose one recording session may span proxies living on
// different servers. A flush is a record → plan → execute pipeline:
// recording accepts cross-server dataflow (a result produced on server A may
// feed a call bound for server B), the planner schedules the dependency DAG
// into stages, and the executor runs one parallel per-destination fan-out
// per stage — so a dependency-free recording costs one round-trip wave and a
// depth-D pipeline costs D+1 waves, never one trip per call. Results cross
// servers by reference (exported refs pinned between waves) or by value
// (settled futures spliced into the next wave). Callers that want the strict
// one-wave guarantee back opt in with WithSingleStage, which rejects staged
// dataflow at record time with ErrCrossServer (see DESIGN.md, "Cluster
// staging rules").
//
// Membership is elastic: the shard map carries a monotonically increasing
// epoch bumped on every Add/Remove, and a Rebalancer migrates the moved
// objects (bindings, plus snapshot/restore state for Movable types) between
// homes in batched round trips. Calls routed with a stale epoch fail with
// rmi.WrongHomeError and epoch-aware flushes re-route and retry once (see
// DESIGN.md, "Elastic membership").
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is how many points each endpoint occupies on the ring.
// More points smooth the key distribution at the cost of a larger sorted
// table; 128 keeps the imbalance across a handful of servers within a few
// percent.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash shard map over peer endpoints. Keys (object
// names) are routed to the endpoint owning the first ring point at or after
// the key's hash. Adding an endpoint moves only the keys that land on the
// new endpoint; every other key keeps its home, which is the property that
// makes incremental cluster growth cheap.
//
// The point table is a pure function of the member set: every membership
// change rebuilds it canonically (members in sorted order), so any sequence
// of Add/Remove calls ending at member set S routes exactly like a fresh
// NewRing(S) — point-hash collisions can never skew the table based on the
// order members happened to arrive.
//
// Every membership change also bumps the ring's epoch, the version number
// the cluster's re-sharding protocol uses to detect stale routing.
//
// Ring is safe for concurrent use.
type Ring struct {
	mu          sync.RWMutex
	vnodes      int
	replication int
	epoch       uint64
	points      []uint64          // sorted hash points
	owners      map[uint64]string // point -> endpoint
	members     map[string]bool
	endpoint    []string // sorted member list, kept for Endpoints
}

// RingOption configures a Ring.
type RingOption func(*Ring)

// WithVirtualNodes sets the points per endpoint (default
// DefaultVirtualNodes).
func WithVirtualNodes(n int) RingOption {
	return func(r *Ring) {
		if n > 0 {
			r.vnodes = n
		}
	}
}

// WithReplication sets the replication degree R: Owners returns the primary
// plus up to R-1 distinct followers per key (default 1, no replication).
func WithReplication(r int) RingOption {
	return func(rg *Ring) {
		if r > 0 {
			rg.replication = r
		}
	}
}

// NewRing creates a ring containing the given endpoints, at epoch 0.
func NewRing(endpoints []string, opts ...RingOption) *Ring {
	r := &Ring{
		vnodes:      DefaultVirtualNodes,
		replication: 1,
		members:     make(map[string]bool),
	}
	for _, o := range opts {
		o(r)
	}
	for _, ep := range endpoints {
		r.members[ep] = true
	}
	r.rebuild()
	return r
}

// Add inserts an endpoint into the ring and bumps the epoch. Adding an
// existing member is a no-op (the epoch does not move).
func (r *Ring) Add(endpoint string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[endpoint] {
		return
	}
	r.members[endpoint] = true
	r.rebuild()
	r.epoch++
}

// Remove deletes an endpoint from the ring and bumps the epoch. Keys it
// owned redistribute to the remaining members; points other members lost to
// hash collisions against the removed endpoint are restored by the rebuild.
// Removing a non-member is a no-op.
func (r *Ring) Remove(endpoint string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[endpoint] {
		return
	}
	delete(r.members, endpoint)
	r.rebuild()
	r.epoch++
}

// Reset replaces the member set and adopts the given epoch, used when a
// stale client refreshes its shard map from a cluster node's authoritative
// ring state. The adoption is atomic and monotonic: a snapshot at or below
// the ring's current epoch is ignored, so concurrent refreshes that raced
// to different nodes can never regress the ring to older membership.
func (r *Ring) Reset(endpoints []string, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch <= r.epoch {
		return
	}
	r.members = make(map[string]bool, len(endpoints))
	for _, ep := range endpoints {
		r.members[ep] = true
	}
	r.rebuild()
	r.epoch = epoch
}

// Epoch returns the ring's membership version: 0 at construction, +1 per
// Add/Remove that changed the member set.
func (r *Ring) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// vnodeHash computes a point from a "endpoint#i" vnode label. It is a
// package variable only so tests can substitute a colliding hash and
// exercise the rebuild's canonical collision resolution.
var vnodeHash = hashKey

// rebuild recomputes the point table from the member set. Members are
// processed in sorted order and a collided point stays with its first
// claimant, so the result depends only on the set — never on the Add/Remove
// history. Caller holds r.mu.
func (r *Ring) rebuild() {
	r.endpoint = make([]string, 0, len(r.members))
	for ep := range r.members {
		r.endpoint = append(r.endpoint, ep)
	}
	sort.Strings(r.endpoint)
	r.points = r.points[:0]
	r.owners = make(map[uint64]string, len(r.members)*r.vnodes)
	for _, ep := range r.endpoint {
		for i := 0; i < r.vnodes; i++ {
			h := vnodeHash(fmt.Sprintf("%s#%d", ep, i))
			// Collisions across 64-bit points are vanishingly rare; when one
			// happens the first owner in canonical order keeps the point,
			// which only skews the distribution by one vnode.
			if _, taken := r.owners[h]; taken {
				continue
			}
			r.owners[h] = ep
			r.points = append(r.points, h)
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i] < r.points[j] })
}

// Route returns the endpoint owning key, or "" for an empty ring.
func (r *Ring) Route(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.owners[r.points[i]]
}

// Replication returns the configured replication degree R (≥1).
func (r *Ring) Replication() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.replication
}

// VirtualNodes returns the configured points per endpoint.
func (r *Ring) VirtualNodes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.vnodes
}

// Owners returns the ordered owner list for key — the primary (identical to
// Route) followed by up to R-1 distinct followers, collected by walking the
// ring clockwise from the key's hash point — and the ring epoch the list was
// read at (atomically, so a concurrent Reset cannot pair a new owner list
// with an old epoch). Fewer than R members yields one entry per member. An
// empty ring yields nil.
func (r *Ring) Owners(key string) ([]string, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil, r.epoch
	}
	want := r.replication
	if n := len(r.members); want > n {
		want = n
	}
	out := make([]string, 0, want)
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	for scanned := 0; scanned < len(r.points) && len(out) < want; scanned++ {
		if i == len(r.points) {
			i = 0 // wrap around
		}
		ep := r.owners[r.points[i]]
		if !contains(out, ep) {
			out = append(out, ep)
		}
		i++
	}
	return out, r.epoch
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// Contains reports whether endpoint is a current member.
func (r *Ring) Contains(endpoint string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[endpoint]
}

// Endpoints returns the current members, sorted.
func (r *Ring) Endpoints() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.endpoint))
	copy(out, r.endpoint)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// hashKey is 64-bit FNV-1a with a murmur-style finalizer. FNV alone leaves
// keys that differ only in trailing characters (obj-00, obj-01, ...) in a
// narrow band of the 64-bit space, which parks whole key families on one
// ring arc; the finalizer's avalanche spreads them. Deterministic across
// processes, unlike Go's map hash.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
