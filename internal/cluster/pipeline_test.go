package cluster_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/clustertest"
	"repro/internal/rmi"
)

// --- staged cross-server dataflow --------------------------------------------

// TestPipelineValueSplice is the acceptance case: a two-stage A→B pipeline
// (produce on server A, consume on server B — dependency depth 1 in
// DESIGN.md's terms) recorded in one cluster.Batch flushes in exactly 2
// round-trip waves, with the value spliced between them. Server B also has
// a dependency-free call, which rides wave 0.
func TestPipelineValueSplice(t *testing.T) {
	tc := clustertest.New(t, 2)
	ctx := context.Background()

	b := cluster.New(tc.Client)
	a := b.Root(tc.Servers[0].Ref)
	bb := b.Root(tc.Servers[1].Ref)

	b0 := bb.Call("Add", int64(1)) // stage 0: no staged inputs
	fa := a.Call("Add", int64(5))  // stage 0: produces the spliced value
	fb := bb.Call("Add", fa)       // stage 1: consumes A's result on B

	before := tc.Client.CallCount()
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Trips: A once (stage 0) + B twice (stages 0 and 1). Waves: 2.
	if rt := tc.Client.CallCount() - before; rt != 3 {
		t.Errorf("flush used %d round trips, want 3", rt)
	}
	if w := b.Waves(); w != 2 {
		t.Errorf("two-stage A→B pipeline took %d waves, want 2", w)
	}
	for _, c := range []struct {
		name string
		f    *cluster.Future
		want int64
	}{{"B.Add(1)", b0, 1}, {"A.Add(5)", fa, 5}, {"B.Add(<-A)", fb, 6}} {
		if got, err := cluster.Typed[int64](c.f).Get(); err != nil || got != c.want {
			t.Errorf("%s = %d, %v; want %d", c.name, got, err, c.want)
		}
	}
	// B executed [1, 5] in stage order.
	if h := tc.Servers[1].Counter.History(); len(h) != 2 || h[0] != 1 || h[1] != 5 {
		t.Errorf("server-1 executed %v, want [1 5]", h)
	}
}

// TestPipelineRemoteForward checks true dataflow forwarding: a remote
// result produced on server A is pinned as an exported ref and passed BY
// REFERENCE into server B's wave — the client never sees the value, and B
// receives a stub it can call.
func TestPipelineRemoteForward(t *testing.T) {
	tc := clustertest.New(t, 2)
	ctx := context.Background()

	b := cluster.New(tc.Client)
	a := b.Root(tc.Servers[0].Ref)
	bb := b.Root(tc.Servers[1].Ref)

	fork := a.CallBatch("Fork", int64(42)) // fresh remote object on server-0
	fb := bb.Call("AddRemote", fork)       // forwarded to server-1 as a stub

	before := tc.Client.CallCount()
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// 2 client trips: the fork's value itself never travels through the
	// client, only its pinned ref does (deterministic export behaviour is
	// covered by the core-level TestCallBatchExport tests).
	if rt := tc.Client.CallCount() - before; rt != 2 {
		t.Errorf("flush used %d client round trips, want 2 (forwarding is not value round-tripping)", rt)
	}
	if w := b.Waves(); w != 2 {
		t.Errorf("remote-forward pipeline took %d waves, want 2", w)
	}
	if got, err := cluster.Typed[int64](fb).Get(); err != nil || got != 42 {
		t.Errorf("AddRemote(fork(42)) = %d, %v; want 42", got, err)
	}
	if err := fork.Ok(); err != nil {
		t.Errorf("forwarded proxy Ok = %v", err)
	}
}

// TestPipelineThreeStages chains A -> B -> C by value (dependency depth 2):
// stage count tracks dependency depth, three waves total.
func TestPipelineThreeStages(t *testing.T) {
	tc := clustertest.New(t, 3)
	ctx := context.Background()

	b := cluster.New(tc.Client)
	fa := b.Root(tc.Servers[0].Ref).Call("Add", int64(2))
	fb := b.Root(tc.Servers[1].Ref).Call("Add", fa)
	fc := b.Root(tc.Servers[2].Ref).Call("Add", fb)

	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if w := b.Waves(); w != 3 {
		t.Errorf("depth-2 A→B→C chain took %d waves, want 3", w)
	}
	for i, f := range []*cluster.Future{fa, fb, fc} {
		if got, err := cluster.Typed[int64](f).Get(); err != nil || got != 2 {
			t.Errorf("stage %d future = %d, %v; want 2", i, got, err)
		}
	}
}

// TestPipelineSameServerCrossStage: a future spliced back into its OWN
// server still needs a second wave, and the chained session keeps earlier
// same-server results addressable across waves.
func TestPipelineSameServerCrossStage(t *testing.T) {
	tc := clustertest.New(t, 1)
	ctx := context.Background()

	b := cluster.New(tc.Client)
	r := b.Root(tc.Servers[0].Ref)
	f0 := r.Call("Add", int64(3)) // stage 0
	f1 := r.Call("Add", f0)       // stage 1: value splices back to the same server
	self := r.CallBatch("Self")   // stage 0 (no staged inputs)
	f2 := r.Call("Absorb", self)  // hangs off stage-0 proxy: stage 0, same session

	before := tc.Client.CallCount()
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if rt := tc.Client.CallCount() - before; rt != 2 {
		t.Errorf("flush used %d round trips, want 2", rt)
	}
	if w := b.Waves(); w != 2 {
		t.Errorf("same-server cross-stage flush took %d waves, want 2", w)
	}
	if got, err := cluster.Typed[int64](f0).Get(); err != nil || got != 3 {
		t.Errorf("f0 = %d, %v; want 3", got, err)
	}
	if got, err := cluster.Typed[int64](f2).Get(); err != nil || got != 6 {
		t.Errorf("f2 (self absorb) = %d, %v; want 6", got, err)
	}
	if got, err := cluster.Typed[int64](f1).Get(); err != nil || got != 9 {
		t.Errorf("f1 (spliced) = %d, %v; want 9", got, err)
	}
}

// --- failure isolation across stages -----------------------------------------

// TestStagedFailureIsolation: a destination failure in wave 0 fails only
// the futures that (transitively) depend on it. Independent wave-0 calls on
// healthy servers settle, and so do independent calls on servers that ALSO
// host dependent calls.
func TestStagedFailureIsolation(t *testing.T) {
	tc := clustertest.New(t, 3)
	ctx := context.Background()

	b := cluster.New(tc.Client)
	good0 := b.Root(tc.Servers[0].Ref)
	// A root object id server-1 never exported: its whole sub-batch fails
	// at session creation in wave 0.
	badRef := tc.Servers[1].Ref
	badRef.ObjID = 12345
	bad := b.Root(badRef)
	good2 := b.Root(tc.Servers[2].Ref)

	gf := good0.Call("Add", int64(7))    // server-0, stage 0: healthy
	bp := bad.CallBatch("Self")          // server-1, stage 0: destination fails
	indep := good2.Call("Add", int64(3)) // server-2, stage 0: independent, healthy
	dep := good2.Call("AddRemote", bp)   // server-2, stage 1: depends on server-1
	trans := good0.Call("Add", dep)      // server-0, stage 2: transitively dependent

	err := b.Flush(ctx)
	var fe *cluster.FlushError
	if !errors.As(err, &fe) {
		t.Fatalf("flush error = %T %v, want *FlushError", err, err)
	}
	if len(fe.Failures) != 1 || fe.Servers != 3 {
		t.Fatalf("FlushError = %+v, want 1 failure of 3 servers", fe)
	}
	if f := fe.Failures[0]; f.Endpoint != badRef.Endpoint || f.Stage != 0 {
		t.Errorf("failure = %s stage %d, want %s stage 0", f.Endpoint, f.Stage, badRef.Endpoint)
	}

	// Independent calls settled on both healthy servers.
	if v, err := cluster.Typed[int64](gf).Get(); err != nil || v != 7 {
		t.Errorf("server-0 independent future = %v, %v; want 7", v, err)
	}
	if v, err := cluster.Typed[int64](indep).Get(); err != nil || v != 3 {
		t.Errorf("server-2 independent future = %v, %v; want 3", v, err)
	}

	// Dependent futures — direct and transitive — rethrow server-1's error.
	var nso *rmi.NoSuchObjectError
	if _, derr := dep.Get(); !errors.As(derr, &nso) {
		t.Errorf("dependent future error = %v, want NoSuchObjectError", derr)
	}
	if _, terr := trans.Get(); !errors.As(terr, &nso) {
		t.Errorf("transitive future error = %v, want NoSuchObjectError", terr)
	}

	// The dependent calls never executed.
	if got := tc.Servers[2].Counter.Get(); got != 3 {
		t.Errorf("server-2 counter = %d, want 3 (AddRemote must not run)", got)
	}
	if got := tc.Servers[0].Counter.Get(); got != 7 {
		t.Errorf("server-0 counter = %d, want 7 (transitive Add must not run)", got)
	}
}
