package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/stats"
	"repro/internal/wire"
)

// ReplRecord is one replicated flush wave: the primary's already-serialized
// batch command, re-addressed by root NAME so a follower can replay it
// against shadow state. The staged executor ships one record per successful
// per-destination wave to each follower of the destination's shards, before
// the flush acks to the client (see DESIGN.md, "Replication & failover").
type ReplRecord struct {
	// ID uniquely identifies this wave for idempotent appends.
	ID string
	// Chain identifies the (client batch, destination) pipeline so a
	// follower chains consecutive waves through one shadow session, exactly
	// like the primary's KeepSession chain.
	Chain string
	// Primary is the destination endpoint the wave executed on — the shard
	// the record belongs to.
	Primary string
	// Epoch is the client's ring epoch when the wave shipped. Followers
	// reject records older than their own ring epoch: a stale owner list
	// must not smuggle writes into a shard that was re-placed since.
	Epoch uint64
	// Names and Ifaces describe the wave's batch roots in payload order:
	// Names[0] is the primary root, Names[1+i] is extra root i.
	Names  []string
	Ifaces []string
	// Payload is the wire form of the executed core batch (*brmi.req),
	// forwarded verbatim.
	Payload any
}

// ShardInfo summarizes one follower's replica of a shard, reported during
// failover so the rebalancer can pick the promotion source per name: the
// seeded shadow at the newest epoch with the most applied records wins.
type ShardInfo struct {
	Primary string
	Epoch   uint64 // newest epoch at which the shard accepted a record or install
	Len     int64  // records appended to the shard's ordered log
	Names   []NameInfo
}

// NameInfo is one shadow's promotion credentials. Election is per NAME, not
// per shard, because a replicated record ships to the union of its roots'
// followers: a follower holding a name's shadow only because the name shared
// a destination batch with a key it does follow may have created that shadow
// lazily mid-stream (Seeded false, Applied low) and must lose the election
// to the name's true follower, whose shadow was snapshot-installed at
// placement and replayed every record since.
type NameInfo struct {
	Name string
	// Seeded is true when the shadow was installed from an authoritative
	// snapshot (replica placement), not created lazily at first replay.
	Seeded bool
	// SeedEpoch is the ring epoch of the newest authoritative install. It
	// outranks Epoch in the election: a shadow last snapshot-seeded at epoch
	// 1 that later catches a single union-shipped record at epoch 6 reports
	// Epoch 6 but missed every epoch-2..5 wave the name's true follower
	// replayed — only the install epoch proves the baseline is current.
	SeedEpoch uint64
	// Epoch is the newest ring epoch of any install or record applied to
	// this shadow.
	Epoch uint64
	// Applied counts the records replayed onto this shadow since its last
	// install — its position past the snapshot in the shard's per-name log.
	Applied int64
}

// StaleShipError reports a replicated record or install carrying a ring
// epoch older than the follower already knows: the sender's owner list is
// stale. The shipping flush fails (no ack) rather than retrying — the wave
// already executed on the primary, so a re-send could double-apply.
type StaleShipError struct {
	RecordEpoch uint64
	NodeEpoch   uint64
}

func (e *StaleShipError) Error() string {
	return fmt.Sprintf("cluster: stale replication ship: record epoch %d behind node epoch %d", e.RecordEpoch, e.NodeEpoch)
}

func init() {
	wire.MustRegister("cluster.replRecord", &ReplRecord{})
	wire.MustRegister("cluster.shardInfo", &ShardInfo{})
	wire.MustRegister("cluster.nameInfo", &NameInfo{})
	wire.MustRegisterError("cluster.StaleShip", &StaleShipError{})
}

// ReplicaRef builds the well-known reference of the replication service at
// endpoint.
func ReplicaRef(endpoint string) wire.Ref {
	return rmi.SystemRef(endpoint, rmi.ReplicaObjID, rmi.ReplicaIface)
}

// shadowObj is one name's shadow copy on a follower: a movable instance
// kept out of the registry (invisible to lookups and manifests) that
// replays the primary's batch log. seeded/epoch/applied are the promotion
// credentials reported by ShardInfo (see NameInfo).
type shadowObj struct {
	obj   rmi.Remote
	ref   wire.Ref
	iface string

	seeded    bool
	seedEpoch uint64
	epoch     uint64
	applied   int64
}

// shard is the ordered replication log of one primary endpoint as seen by
// this follower: applied record count, idempotence set, and the shadow
// objects the log applies to.
type shard struct {
	epoch   uint64
	length  int64
	seen    map[string]bool
	shadows map[string]*shadowObj
}

// Replica is the per-server shard replication service, exported at the
// reserved rmi.ReplicaObjID. Append is the log-shipping path: it appends a
// shipped batch command to the per-shard ordered log and applies it to
// shadow state through the local batch executor (shadow replay — same
// order, dependency propagation, and exception policy as the primary run).
// Install seeds or overwrites one name's shadow from a snapshot — replica
// (re)placement, driven by the rebalancer's migration machinery. Promote
// turns shadow state authoritative after the primary died: the chosen
// names are exported into the local registry, from where the ordinary
// copy-then-tombstone migration moves each to its ring home.
type Replica struct {
	rmi.RemoteBase

	peer *rmi.Peer
	reg  *registry.Service
	node *Node
	exec *core.Executor

	appends    *stats.Counter // cluster.replica_appends
	installs   *stats.Counter // cluster.replica_installs
	promotions *stats.Counter // cluster.promotions

	mu     sync.Mutex
	shards map[string]*shard
	chains map[string]uint64 // chain id -> open shadow session
}

// StartReplica exports a shard replication service on p at the reserved
// replica id. It needs the node (for the epoch fence), the registry (for
// promotion), and the local batch executor (for shadow replay).
func StartReplica(p *rmi.Peer, reg *registry.Service, node *Node, exec *core.Executor) (*Replica, error) {
	if reg == nil || node == nil || exec == nil {
		return nil, errors.New("cluster: replica requires registry, node, and executor")
	}
	r := &Replica{
		peer:   p,
		reg:    reg,
		node:   node,
		exec:   exec,
		shards: make(map[string]*shard),
		chains: make(map[string]uint64),
	}
	if s := p.Stats(); s != nil {
		r.appends = s.Counter("cluster.replica_appends")
		r.installs = s.Counter("cluster.replica_installs")
		r.promotions = s.Counter("cluster.promotions")
	}
	if _, err := p.ExportSystem(rmi.ReplicaObjID, r, rmi.ReplicaIface); err != nil {
		return nil, fmt.Errorf("cluster: start replica: %w", err)
	}
	return r, nil
}

func (r *Replica) shardFor(primary string) *shard {
	sh := r.shards[primary]
	if sh == nil {
		sh = &shard{seen: make(map[string]bool), shadows: make(map[string]*shadowObj)}
		r.shards[primary] = sh
	}
	return sh
}

// shadowFor returns name's shadow under sh, constructing a zero-state
// instance on first sight. A shadow whose export id is no longer live is
// discarded first: promotion hands the shadow object to the registry, and
// the ordinary migration that then homes the name elsewhere unexports it
// and leaves a wrong-home tombstone — replaying into that tombstone would
// fail every later ship for the name. Caller holds r.mu.
func (r *Replica) shadowFor(sh *shard, name, iface string) (*shadowObj, error) {
	if sd := sh.shadows[name]; sd != nil {
		if _, live := r.peer.LocalObject(sd.ref.ObjID); live {
			return sd, nil
		}
		delete(sh.shadows, name)
	}
	factory, ok := movableFactory(iface)
	if !ok {
		return nil, fmt.Errorf("cluster: replicate %q: no movable factory registered for %q", name, iface)
	}
	obj := factory()
	ref, err := r.peer.Export(obj, iface)
	if err != nil {
		return nil, fmt.Errorf("cluster: replicate %q: export shadow: %w", name, err)
	}
	sd := &shadowObj{obj: obj, ref: ref, iface: iface}
	sh.shadows[name] = sd
	return sd, nil
}

// Append appends one shipped wave to the record's shard log and applies it
// to shadow state. Records are idempotent by ID; a record whose epoch is
// behind this node's ring epoch is rejected with StaleShipError (the owner
// list that routed it is stale).
func (r *Replica) Append(ctx context.Context, rec *ReplRecord) error {
	if rec == nil || rec.Primary == "" || len(rec.Names) == 0 {
		return errors.New("cluster: replica append: malformed record")
	}
	if cur := r.node.Epoch(); rec.Epoch < cur {
		return &StaleShipError{RecordEpoch: rec.Epoch, NodeEpoch: cur}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shardFor(rec.Primary)
	if sh.seen[rec.ID] {
		return nil
	}
	if len(rec.Ifaces) != len(rec.Names) {
		return errors.New("cluster: replica append: names/ifaces length mismatch")
	}
	shadows := make([]*shadowObj, len(rec.Names))
	for i, name := range rec.Names {
		sd, err := r.shadowFor(sh, name, rec.Ifaces[i])
		if err != nil {
			return err
		}
		shadows[i] = sd
	}
	extras := make([]uint64, 0, len(shadows)-1)
	for _, sd := range shadows[1:] {
		extras = append(extras, sd.ref.ObjID)
	}
	sess, _, err := r.exec.ReplayShadow(ctx, rec.Payload, shadows[0].ref.ObjID, extras, r.chains[rec.Chain])
	if err != nil {
		return fmt.Errorf("cluster: replica append %q: %w", rec.ID, err)
	}
	if sess == 0 {
		delete(r.chains, rec.Chain)
	} else {
		r.chains[rec.Chain] = sess
	}
	sh.seen[rec.ID] = true
	sh.length++
	if rec.Epoch > sh.epoch {
		sh.epoch = rec.Epoch
	}
	for _, sd := range shadows {
		sd.applied++
		if rec.Epoch > sd.epoch {
			sd.epoch = rec.Epoch
		}
	}
	r.appends.Inc()
	return nil
}

// Install seeds (or overwrites) name's shadow under primary's shard from an
// authoritative snapshot — replica placement. The rebalancer calls it after
// every membership change, re-seeding each name's followers from its
// primary, which is what keeps a freshly responsible follower's shadow
// complete (a lazily created zero-state shadow would silently miss history
// written before this follower owned the key). Name moves between shards
// atomically: an install under one primary drops the name's shadow under
// every other.
func (r *Replica) Install(name, iface string, state any, primary string, epoch uint64) error {
	if name == "" || primary == "" {
		return errors.New("cluster: replica install: malformed request")
	}
	if cur := r.node.Epoch(); epoch < cur {
		return &StaleShipError{RecordEpoch: epoch, NodeEpoch: cur}
	}
	factory, ok := movableFactory(iface)
	if !ok {
		return fmt.Errorf("cluster: install %q: no movable factory registered for %q", name, iface)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for p, sh := range r.shards {
		if p != primary {
			delete(sh.shadows, name)
		}
	}
	sh := r.shardFor(primary)
	sd := sh.shadows[name]
	if sd != nil {
		// A promoted-then-migrated shadow's export died with the move (see
		// shadowFor); restoring onto it would re-seed a tombstoned id.
		if _, live := r.peer.LocalObject(sd.ref.ObjID); !live {
			sd = nil
		}
	}
	if sd != nil && sd.iface == iface && sd.seeded && sd.seedEpoch >= epoch {
		// Already seeded at this epoch (or newer) and kept current by
		// appends since. Overwriting it would race in-flight ships: the
		// snapshot is read from the primary AFTER it applied a wave, so it
		// can subsume a record that has not reached this follower yet —
		// replaying that record on top of the snapshot double-applies it,
		// and the seen-set can't help on a first arrival. Only stale seeds
		// (older epoch) carry history this shadow may have missed.
		if epoch > sh.epoch {
			sh.epoch = epoch
		}
		return nil
	}
	if sd == nil || sd.iface != iface {
		obj := factory()
		ref, err := r.peer.Export(obj, iface)
		if err != nil {
			return fmt.Errorf("cluster: install %q: export shadow: %w", name, err)
		}
		sd = &shadowObj{obj: obj, ref: ref, iface: iface}
	}
	m, ok := sd.obj.(Movable)
	if !ok {
		return fmt.Errorf("cluster: install %q: %q built a non-Movable %T", name, iface, sd.obj)
	}
	if err := m.Restore(state); err != nil {
		return fmt.Errorf("cluster: install %q: restore: %w", name, err)
	}
	sd.seeded = true
	if epoch > sd.seedEpoch {
		sd.seedEpoch = epoch
	}
	if epoch > sd.epoch {
		sd.epoch = epoch
	}
	// The snapshot supersedes everything replayed before it: applied now
	// counts the shadow's position PAST this install, so a stale follower
	// re-seeded at the same epoch as the true follower still loses to the
	// one that replayed more records since.
	sd.applied = 0
	sh.shadows[name] = sd
	if epoch > sh.epoch {
		sh.epoch = epoch
	}
	r.installs.Inc()
	return nil
}

// Shards lists the primaries of every shard on this follower that still
// holds shadow state. The rebalancer's removal guard uses it to spot
// orphaned shards — replicas of a primary no longer in the ring — before a
// planned removal discards them (see Rebalancer.RemoveServer).
func (r *Replica) Shards() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.shards))
	for p, sh := range r.shards {
		if len(sh.shadows) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ShardInfo reports this follower's replica of primary's shard: log epoch,
// log length, and the shadowed names. The rebalancer's failover compares
// these across survivors to pick the promotion source.
func (r *Replica) ShardInfo(primary string) *ShardInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	info := &ShardInfo{Primary: primary}
	sh := r.shards[primary]
	if sh == nil {
		return info
	}
	info.Epoch = sh.epoch
	info.Len = sh.length
	info.Names = make([]NameInfo, 0, len(sh.shadows))
	for name, sd := range sh.shadows {
		info.Names = append(info.Names, NameInfo{
			Name:      name,
			Seeded:    sd.seeded,
			SeedEpoch: sd.seedEpoch,
			Epoch:     sd.epoch,
			Applied:   sd.applied,
		})
	}
	sort.Slice(info.Names, func(i, j int) bool { return info.Names[i].Name < info.Names[j].Name })
	return info
}

// Promote turns the named shadows of primary's shard authoritative: each is
// bound into the local registry (overwriting any wrong-home forward), from
// where the ordinary migration flow moves it to its ring home. Promotion is
// idempotent per name — a name already resolving to a local object is left
// alone, so a failover retried after a partial run neither loses nor
// duplicates state. Returns the names promoted by THIS call.
func (r *Replica) Promote(primary string, names []string, epoch uint64) ([]string, error) {
	if cur := r.node.Epoch(); epoch < cur {
		return nil, &StaleShipError{RecordEpoch: epoch, NodeEpoch: cur}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shards[primary]
	if sh == nil {
		return nil, nil
	}
	var promoted []string
	for _, name := range names {
		sd := sh.shadows[name]
		if sd == nil {
			continue
		}
		if existing, err := r.reg.Lookup(name); err == nil && existing.Endpoint == r.peer.Endpoint() {
			continue // already promoted by an earlier (partially failed) run
		}
		r.reg.Rebind(name, sd.ref)
		promoted = append(promoted, name)
		r.promotions.Inc()
	}
	sort.Strings(promoted)
	return promoted, nil
}

// ShadowIDs reports, for each requested name under primary's shard, the
// exported object id of a locally readable shadow — one seeded by an
// Install and still live — or zero when this follower cannot serve the
// name (the bulk-read planner then falls back to the primary). A follower
// whose ring epoch is behind minEpoch rejects wholesale with
// StaleShipError: its shard map may predate the membership the caller
// planned against.
func (r *Replica) ShadowIDs(primary string, names []string, minEpoch uint64) ([]uint64, error) {
	if cur := r.node.Epoch(); cur < minEpoch {
		return nil, &StaleShipError{RecordEpoch: minEpoch, NodeEpoch: cur}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]uint64, len(names))
	sh := r.shards[primary]
	if sh == nil {
		return ids, nil
	}
	for i, name := range names {
		sd := sh.shadows[name]
		if sd == nil || !sd.seeded {
			continue
		}
		if _, live := r.peer.LocalObject(sd.ref.ObjID); !live {
			continue
		}
		ids[i] = sd.ref.ObjID
	}
	return ids, nil
}

// ShardNames returns the shadowed names of primary's shard (test helper).
func (r *Replica) ShardNames(primary string) []string {
	infos := r.ShardInfo(primary).Names
	names := make([]string, len(infos))
	for i, ni := range infos {
		names[i] = ni.Name
	}
	return names
}
