package cluster

import "fmt"

// plan.go is the "plan" phase of the cluster flush pipeline: it turns the
// global recording log into a stage schedule. Stage 0 holds every call
// whose inputs are all immediate (roots, plain values, same-server
// proxies); stage k holds the calls whose staged inputs settle in waves
// < k. Each stage is then partitioned per destination exactly like a
// single-stage flush, so a stage costs one parallel fan-out.

// input is one resolved dependency (an edge of the dataflow DAG): the call
// that produces a value this call consumes.
type input struct {
	producer *recordedCall
	// staged is true when the consumer can only run in a wave after the
	// producer's: the producer's result has to cross the network between
	// stages (a proxy forwarded to a different server, or a future's value
	// spliced back through the client).
	staged bool
	// export is true when the producer's result must be pinned as an
	// exported reference so the next wave can forward it by reference.
	export bool
}

// inputs enumerates c's dependencies: the call that created its target
// proxy, plus every proxy or future argument. Root proxies contribute
// nothing — their refs exist before the batch does.
func (c *recordedCall) inputs() []input {
	var in []input
	if o := c.target.origin; o != nil {
		// The target is always on the call's own server: same-stage
		// sub-batches resolve it by sequence number, chained sessions
		// across stages too, so the edge is never staged.
		in = append(in, input{producer: o})
	}
	for _, a := range c.args {
		switch x := a.(type) {
		case *Proxy:
			if x.origin == nil {
				continue
			}
			cross := x.group != c.group
			in = append(in, input{producer: x.origin, staged: cross, export: cross})
		case *Future:
			if x.origin == nil {
				continue
			}
			// A spliced value settles at the client only after the
			// producer's wave returns, whichever server it came from.
			in = append(in, input{producer: x.origin, staged: true})
		}
	}
	return in
}

// planStages assigns every call its execution stage and returns the stage
// count — the number of round-trip waves the flush needs:
//
//	stage(c) = max over inputs i of stage(i.producer) + (1 if i.staged)
//
// (0 with no inputs). It also marks producers whose results must be pinned
// server-side for cross-server forwarding (recordedCall.export).
//
// Recording order is necessarily a topological order of the dependency
// DAG — a proxy or future must be returned by a recording call before it
// can be passed as a target or argument — so a cyclic recording is
// impossible by construction and one forward pass settles every stage.
// planStages asserts the invariant and reports an internal error rather
// than scheduling nonsense if a caller ever violates it.
func planStages(calls []*recordedCall) (int, error) {
	stages := 0
	for i, c := range calls {
		if c.index != i {
			return 0, fmt.Errorf("cluster: internal: call %s has log index %d, expected %d",
				c.method, c.index, i)
		}
		s := 0
		for _, in := range c.inputs() {
			if in.producer.index >= c.index {
				return 0, fmt.Errorf("cluster: internal: recording is not topologically ordered: "+
					"%s (call %d) consumes the result of %s (call %d)",
					c.method, c.index, in.producer.method, in.producer.index)
			}
			if in.export {
				in.producer.export = true
			}
			earliest := in.producer.stage
			if in.staged {
				earliest++
			}
			if earliest > s {
				s = earliest
			}
		}
		c.stage = s
		if s+1 > stages {
			stages = s + 1
		}
	}
	return stages, nil
}

// buildStages groups the recording by stage, preserving global recording
// order within each stage, and partitions every stage per destination.
func buildStages(calls []*recordedCall, stages int) [][]*subBatch {
	byStage := make([][]*recordedCall, stages)
	for _, c := range calls {
		byStage[c.stage] = append(byStage[c.stage], c)
	}
	out := make([][]*subBatch, stages)
	for s, cs := range byStage {
		out[s] = partition(cs)
	}
	return out
}
