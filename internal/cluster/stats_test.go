package cluster_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/clustertest"
)

// Satellite regression tests for PR 6: the flush executor's wrong-home
// retry and the directory's lookup retry used to recover SILENTLY — no
// counter moved and the caller could not tell a clean flush from one that
// burned its retry. These pin the new surfacing: the stats counters, the
// Batch.StaleRetried accessor, and FlushError.Retries.

// TestStaleFlushRetrySurfacesCount: a recovered wrong-home retry is visible
// on the batch accessor and the client's stats registry.
func TestStaleFlushRetrySurfacesCount(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, []string{"server-0", "server-1"})
	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})
	name := clustertest.PickNames(dir.Ring(), grown, "server-0", "server-2", 1)[0]
	ec.BindCounter(dir, name, 10)

	b := cluster.New(ec.Client, cluster.WithDirectory(dir))
	p, err := b.RootNamed(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Call("Add", int64(5))

	if _, err := cluster.NewRebalancer(dir).AddServer(ctx, "server-2"); err != nil {
		t.Fatal(err)
	}

	if err := b.Flush(ctx); err != nil {
		t.Fatalf("stale flush did not recover: %v", err)
	}
	if v, err := cluster.Typed[int64](f).Get(); err != nil || v != 15 {
		t.Fatalf("retried call = %v, %v; want 15", v, err)
	}
	if !b.StaleRetried() {
		t.Error("StaleRetried() = false after a recovered wrong-home retry")
	}
	snap := ec.ClientStats.Snapshot()
	if got := snap.Counter("cluster.wrong_home_retries"); got != 1 {
		t.Errorf("cluster.wrong_home_retries = %d, want 1", got)
	}
	if got, want := snap.Counter("cluster.flush_waves"), int64(b.Waves()); got != want {
		t.Errorf("cluster.flush_waves = %d, want %d (Waves())", got, want)
	}
}

// TestFlushErrorCarriesRetryCount: when the single retry is spent and the
// flush still fails, FlushError.Retries reports it — the caller knows the
// failure is final, not first-attempt. An un-named root cannot be
// re-resolved, so its retried wave fails wrong-home a second time.
func TestFlushErrorCarriesRetryCount(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, []string{"server-0", "server-1"})
	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})
	name := clustertest.PickNames(dir.Ring(), grown, "server-0", "server-2", 1)[0]
	ec.BindCounter(dir, name, 10)
	ref, err := dir.Lookup(ctx, name)
	if err != nil {
		t.Fatal(err)
	}

	// Epoch-aware batch, but the root is addressed by raw ref: the retry
	// fires (and is counted) yet cannot re-home the object.
	b := cluster.New(ec.Client, cluster.WithDirectory(dir))
	b.Root(ref).Call("Get")

	if _, err := cluster.NewRebalancer(dir).AddServer(ctx, "server-2"); err != nil {
		t.Fatal(err)
	}

	err = b.Flush(ctx)
	var fe *cluster.FlushError
	if !errors.As(err, &fe) {
		t.Fatalf("flush error = %T %v, want *FlushError", err, err)
	}
	if fe.Retries != 1 {
		t.Errorf("FlushError.Retries = %d, want 1", fe.Retries)
	}
	if !b.StaleRetried() {
		t.Error("StaleRetried() = false after a spent retry")
	}
	if got := ec.ClientStats.Snapshot().Counter("cluster.wrong_home_retries"); got != 1 {
		t.Errorf("cluster.wrong_home_retries = %d, want 1", got)
	}
}

// TestFlushErrorWithoutRetryReportsZero: a first-attempt failure (no
// directory, so no retry is possible) reports Retries == 0.
func TestFlushErrorWithoutRetryReportsZero(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, []string{"server-0", "server-1"})
	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})
	name := clustertest.PickNames(dir.Ring(), grown, "server-0", "server-2", 1)[0]
	ec.BindCounter(dir, name, 10)
	ref, err := dir.Lookup(ctx, name)
	if err != nil {
		t.Fatal(err)
	}

	b := cluster.New(ec.Client)
	b.Root(ref).Call("Get")
	if _, err := cluster.NewRebalancer(dir).AddServer(ctx, "server-2"); err != nil {
		t.Fatal(err)
	}

	err = b.Flush(ctx)
	var fe *cluster.FlushError
	if !errors.As(err, &fe) {
		t.Fatalf("flush error = %T %v, want *FlushError", err, err)
	}
	if fe.Retries != 0 {
		t.Errorf("FlushError.Retries = %d, want 0", fe.Retries)
	}
}

// TestFlushErrorCarriesQuorum mirrors the Retries tests for the replication
// quorum: when the primary applies a wave but its follower cannot be
// reached, the flush fails with FlushError.Quorum reporting how many
// replicas acked vs required, the futures rethrow rather than surfacing the
// non-durable values, and NO stale retry is spent (a re-send could
// double-apply the wave the primary already ran).
func TestFlushErrorCarriesQuorum(t *testing.T) {
	ec := clustertest.New(t, 2)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, []string{"server-0", "server-1"}, cluster.WithReplication(2))
	name := "obj-0"
	owners, _ := dir.Owners(name)
	primary, follower := owners[0], owners[1]
	ec.BindCounter(dir, name, 10)

	// The client can reach the primary but not the follower: the wave
	// executes, the ship is refused.
	ec.Network.Partition(clustertest.ClientHost, follower)
	defer ec.Network.HealAll()

	b := cluster.New(ec.Client, cluster.WithDirectory(dir))
	p, err := b.RootNamed(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Call("Add", int64(5))

	err = b.Flush(ctx)
	var fe *cluster.FlushError
	if !errors.As(err, &fe) {
		t.Fatalf("flush error = %T %v, want *FlushError", err, err)
	}
	if fe.Quorum == nil {
		t.Fatal("FlushError.Quorum = nil, want the quorum miss")
	}
	if fe.Quorum.Acked != 1 || fe.Quorum.Required != 2 {
		t.Errorf("quorum = %d/%d acked, want 1/2", fe.Quorum.Acked, fe.Quorum.Required)
	}
	if fe.Quorum.Name != name {
		t.Errorf("quorum miss names %q, want %q", fe.Quorum.Name, name)
	}
	if fe.Retries != 0 || b.StaleRetried() {
		t.Errorf("quorum miss spent the stale retry (Retries=%d, StaleRetried=%v); it must not", fe.Retries, b.StaleRetried())
	}
	var qe *cluster.QuorumError
	if !errors.As(err, &qe) {
		t.Error("errors.As cannot reach the *QuorumError through the flush error")
	}
	if _, err := cluster.Typed[int64](f).Get(); err == nil {
		t.Error("future of a non-durable wave settled with a value, want the quorum error")
	}
	if got := ec.ClientStats.Snapshot().Counter("cluster.quorum_waits"); got != 1 {
		t.Errorf("cluster.quorum_waits = %d, want 1", got)
	}

	// The primary DID apply the wave — the error reports lost durability,
	// not a lost write. A healed read observes it.
	ec.Network.HealAll()
	ref, err := dir.Lookup(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Endpoint != primary {
		t.Fatalf("%s resolves to %s, want primary %s", name, ref.Endpoint, primary)
	}
	res, err := ec.Client.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(int64); got != 15 {
		t.Errorf("primary state = %d, want 15 (the wave applied before the quorum miss)", got)
	}
}

// TestStaleLookupRetrySurfacesCount: the directory's transparent
// lookup-retry now moves cluster.lookup_retries and cluster.dir_refreshes.
func TestStaleLookupRetrySurfacesCount(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	base := []string{"server-0", "server-1"}
	admin := cluster.NewDirectory(ec.Client, base)
	stale := cluster.NewDirectory(ec.Client, base)

	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})
	name := clustertest.PickNames(admin.Ring(), grown, "server-0", "server-2", 1)[0]
	ec.BindCounter(admin, name, 7)
	if _, err := cluster.NewRebalancer(admin).AddServer(ctx, "server-2"); err != nil {
		t.Fatal(err)
	}
	before := ec.ClientStats.Snapshot()

	if _, err := stale.Lookup(ctx, name); err != nil {
		t.Fatalf("stale lookup: %v", err)
	}
	snap := ec.ClientStats.Snapshot()
	if got := snap.Counter("cluster.lookup_retries") - before.Counter("cluster.lookup_retries"); got != 1 {
		t.Errorf("cluster.lookup_retries moved by %d, want 1", got)
	}
	if got := snap.Counter("cluster.dir_refreshes") - before.Counter("cluster.dir_refreshes"); got != 1 {
		t.Errorf("cluster.dir_refreshes moved by %d, want 1", got)
	}
}
