package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/rmi"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Rebalancer re-shards a live cluster when its membership changes: after an
// Add it drains the keys the new ring routes to the new server, after a
// Remove it drains everything off the departing server, migrating bindings
// (and object state, for Movable types) from old home to new home.
//
// The moves themselves are batched through BRMI: per (source, destination)
// pair one multi-root core.Batch snapshots every moving object in a single
// round trip, one batch restores them all at the destination, and one batch
// departs every moving name at the source — K objects move in 3 round
// trips, not 3K, in copy-then-tombstone order so a partial failure never
// loses state and a retried rebalance converges. Old homes are left with
// wrong-home tombstones (registry forwards + export tombstones) carrying
// the new epoch, so stale callers fail with rmi.WrongHomeError, refresh
// their shard map, and re-route.
//
// The rebalancer assumes every name in each member's registry is
// directory-routed (bound via Directory.Bind); names bound outside the ring
// discipline would be relocated like any other.
type Rebalancer struct {
	dir       *Directory
	perObject bool
	probe     MigrationProbe

	// Migration progress metrics (nil no-ops when uninstrumented).
	migMoved     *stats.Counter // cluster.migration_moved
	migRemaining *stats.Gauge   // cluster.migration_remaining
}

// RebalanceOption configures a Rebalancer.
type RebalanceOption func(*Rebalancer)

// MigrationStage identifies one batched trip of a (source, destination)
// migration flow, in execution order: snapshot (read the moving state off
// the source), arrive (adopt copies at the destination), depart (install
// the tombstones at the source).
type MigrationStage string

// The three trips of a migration flow, plus the two replication flows: a
// promote trip turns a follower's shadows authoritative during failover
// (src is the dead primary, dst the promoting survivor), and a place trip
// (re)installs one primary's snapshots at one follower after a membership
// change (src is the primary, dst the follower).
const (
	StageSnapshot MigrationStage = "snapshot"
	StageArrive   MigrationStage = "arrive"
	StageDepart   MigrationStage = "depart"
	StagePromote  MigrationStage = "promote"
	StagePlace    MigrationStage = "place"
)

// MigrationProbe observes a migration flow immediately before each of its
// batched trips. Returning an error aborts the flow at exactly that point,
// leaving the same partial state a real fault there would — which is what
// fault-injection tests and the chaos harness use it for: cutting a
// migration between its copy and tombstone trips and asserting that a
// retried AddServer/RemoveServer converges with no lost or duplicated
// objects. names lists every name of the flow, non-movable bindings
// included (under WithPerObjectMigration the probe fires per object with a
// single-name slice).
type MigrationProbe func(stage MigrationStage, src, dst string, names []string) error

// WithMigrationProbe installs a probe on every migration flow the
// rebalancer runs.
func WithMigrationProbe(p MigrationProbe) RebalanceOption {
	return func(r *Rebalancer) { r.probe = p }
}

// probeStage consults the installed probe, if any.
func (r *Rebalancer) probeStage(stage MigrationStage, src, dst string, moves []move) error {
	if r.probe == nil {
		return nil
	}
	names := make([]string, len(moves))
	for i, m := range moves {
		names[i] = m.name
	}
	return r.probe(stage, src, dst, names)
}

// probeNames is probeStage for flows that carry bare names (promotion and
// replica placement).
func (r *Rebalancer) probeNames(stage MigrationStage, src, dst string, names []string) error {
	if r.probe == nil {
		return nil
	}
	return r.probe(stage, src, dst, names)
}

// WithPerObjectMigration disables migration batching: every moving object
// pays its own snapshot/depart/arrive round trips. This is the ablation
// baseline the rebalance benchmark measures BRMI-batched migration against;
// production callers should never want it.
func WithPerObjectMigration() RebalanceOption {
	return func(r *Rebalancer) { r.perObject = true }
}

// NewRebalancer creates a rebalancer over the directory's ring and servers.
func NewRebalancer(dir *Directory, opts ...RebalanceOption) *Rebalancer {
	r := &Rebalancer{dir: dir}
	for _, o := range opts {
		o(r)
	}
	if reg := dir.peer.Stats(); reg != nil {
		r.migMoved = reg.Counter("cluster.migration_moved")
		r.migRemaining = reg.Gauge("cluster.migration_remaining")
	}
	return r
}

// RebalanceStats summarizes one membership change.
type RebalanceStats struct {
	// Epoch is the ring epoch after the change.
	Epoch uint64
	// Moved is how many names changed home.
	Moved int
	// Pairs is how many (source, destination) migration flows ran.
	Pairs int
	// Promoted is how many names were recovered from follower shadows:
	// failover elections (FailoverServer) and orphan rescues (AddServer).
	Promoted int
}

// move is one name leaving its old home, with the reference it was bound to.
type move struct {
	name string
	ref  wire.Ref
}

// pairKey identifies one migration flow.
type pairKey struct{ src, dst string }

// AddServer grows the cluster: the endpoint joins the ring (bumping the
// epoch), the new membership is broadcast to every node, and the keys the
// new ring routes to the new server are migrated there. The endpoint must
// already be serving with a registry, a BRMI executor, and a cluster node
// service.
//
// AddServer is idempotent and retryable: calling it for an existing member
// does not bump the epoch but still re-broadcasts the ring state and
// migrates any keys not yet at their ring-assigned home — so a run that
// failed partway (a node transiently unreachable, say) is completed by
// simply calling it again.
func (r *Rebalancer) AddServer(ctx context.Context, endpoint string) (*RebalanceStats, error) {
	// Adopt the cluster's authoritative epoch before minting the next one:
	// a rebalancer whose directory was built fresh against a long-lived
	// cluster would otherwise broadcast an epoch every node rejects.
	if err := r.dir.Refresh(ctx); err != nil {
		return nil, err
	}
	ring := r.dir.Ring()
	joined := ring.Contains(endpoint)
	// Plan and migrate against the grown target ring while the live ring
	// keeps serving the old routes (mirroring RemoveServer's drain): with
	// copy-then-tombstone migration, a name stays reachable at its old home
	// until its new home holds it, so clients on the old ring never hit a
	// NotBound window. (A client that explicitly refreshes mid-migration
	// adopts the broadcast grown ring early and can transiently see
	// NotBound for a not-yet-arrived name — see DESIGN.md, "In-flight
	// windows".) The live ring adopts the new membership only after the
	// migration lands.
	target := ring
	epoch := ring.Epoch()
	if !joined {
		target = NewRing(append(ring.Endpoints(), endpoint),
			WithVirtualNodes(ring.vnodes), WithReplication(ring.Replication()))
		epoch++
	}
	members := target.Endpoints()
	// Seed the target ring's follower sets BEFORE the membership broadcast
	// flips routing: a membership change can reassign a key's follower slot,
	// and until the new follower holds a seeded shadow the key's primary is
	// a single point of state loss — exactly in the window where the change
	// itself may die. Non-moving names are still serving at their current
	// primaries here, so their new followers install cleanly; moving names
	// are seeded by their migration flow (placeMoves). Stamped with the
	// CURRENT epoch: an aborted change must not leave future-stamped shadows
	// that could outrank a live follower in a later election.
	if err := r.placeReplicas(ctx, ring.Endpoints(), target, ring.Epoch()); err != nil {
		return nil, err
	}
	// Broadcast before migrating: the tombstones the migration leaves behind
	// point stale callers at the nodes for a fresh ring, so the nodes must
	// know the new membership by the time the first tombstone exists.
	if err := r.broadcast(ctx, members, members, epoch); err != nil {
		return nil, err
	}
	// Names may survive only as replica shadows — their primary was killed
	// while every seeded follower was outside the ring (a failover election
	// consults ring survivors only), and this very call may be re-admitting
	// the holder. Re-bind them at their best shadow before planning, so the
	// migration below drains them to their ring homes like any other name.
	rescued, err := r.rescueOrphans(ctx, members, epoch)
	if err != nil {
		return nil, err
	}
	// Scan every member (not just the pre-change set): on a retry, the plan
	// is whatever is still mis-homed.
	plan, moved, err := r.plan(ctx, members, target)
	if err != nil {
		return nil, err
	}
	if err := r.migrate(ctx, plan, target, epoch); err != nil {
		return nil, err
	}
	if err := r.placeReplicas(ctx, members, target, epoch); err != nil {
		return nil, err
	}
	if !joined {
		ring.Add(endpoint)
	}
	return &RebalanceStats{Epoch: epoch, Moved: moved, Pairs: len(plan), Promoted: rescued}, nil
}

// RemoveServer shrinks the cluster: every name homed on the endpoint is
// migrated to its new home under the shrunken ring, then the endpoint
// leaves the ring. The new membership is broadcast — to the departing
// server too, so it can still point stragglers at the survivors — BEFORE
// the first tombstone exists, like AddServer, so wrong-home retries during
// the drain find a node that already knows the new epoch. Removing a
// non-member is a no-op once the server is confirmed drained (its manifest
// must be readable and empty of mis-homed names); a run that failed partway
// is completed by calling RemoveServer again — whether the endpoint is
// still a member (already-departed names are no longer in its manifest) or
// already out of the ring (the leftover drain below).
func (r *Rebalancer) RemoveServer(ctx context.Context, endpoint string) (*RebalanceStats, error) {
	// Adopt the cluster's authoritative epoch first, like AddServer.
	if err := r.dir.Refresh(ctx); err != nil {
		return nil, err
	}
	ring := r.dir.Ring()
	if !ring.Contains(endpoint) {
		// Not a member: nothing to remove. A prior RemoveServer may still
		// have failed after the membership broadcast was adopted, so finish
		// draining any names left on the endpoint. The manifest check must
		// surface failures rather than assume the server is gone: a
		// transient error here could hide stranded, tombstone-less names
		// behind a success return.
		epoch := ring.Epoch()
		plan, moved, err := r.plan(ctx, []string{endpoint}, ring)
		if err != nil {
			return nil, fmt.Errorf("cluster: remove %s: cannot confirm the server is drained: %w", endpoint, err)
		}
		if len(plan) == 0 {
			// Still re-run replica placement: a prior run may have migrated
			// everything and died before seeding the followers.
			if err := r.placeReplicas(ctx, ring.Endpoints(), ring, epoch); err != nil {
				return nil, err
			}
			return &RebalanceStats{Epoch: epoch}, nil
		}
		if err := r.migrate(ctx, plan, ring, epoch); err != nil {
			return nil, err
		}
		if err := r.placeReplicas(ctx, ring.Endpoints(), ring, epoch); err != nil {
			return nil, err
		}
		return &RebalanceStats{Epoch: epoch, Moved: moved, Pairs: len(plan)}, nil
	}
	if ring.Size() == 1 {
		return nil, errors.New("cluster: cannot remove the last server")
	}
	if err := r.guardOrphanedReplicas(ctx, endpoint, ring); err != nil {
		return nil, err
	}
	// Route against the shrunken ring before mutating the live one, so the
	// directory keeps serving lookups for not-yet-moved names during the
	// drain. The epoch of the move is what Remove will bump to.
	var survivors []string
	for _, ep := range ring.Endpoints() {
		if ep != endpoint {
			survivors = append(survivors, ep)
		}
	}
	target := NewRing(survivors, WithVirtualNodes(ring.vnodes), WithReplication(ring.Replication()))
	epoch := ring.Epoch() + 1
	// Seed the survivor ring's follower sets before the broadcast flips
	// routing, at the current epoch — see AddServer for why this must come
	// first and must not carry the next epoch.
	if err := r.placeReplicas(ctx, ring.Endpoints(), target, ring.Epoch()); err != nil {
		return nil, err
	}
	if err := r.broadcast(ctx, append(survivors, endpoint), survivors, epoch); err != nil {
		return nil, err
	}
	plan, moved, err := r.plan(ctx, []string{endpoint}, target)
	if err != nil {
		return nil, err
	}
	if err := r.migrate(ctx, plan, target, epoch); err != nil {
		return nil, err
	}
	if err := r.placeReplicas(ctx, survivors, target, epoch); err != nil {
		return nil, err
	}
	ring.Remove(endpoint)
	return &RebalanceStats{Epoch: epoch, Moved: moved, Pairs: len(plan)}, nil
}

// OrphanedShardError refuses a planned removal that would discard the last
// in-ring replicas of a dead shard. The removal is unsafe, not merely
// inconvenient: the departing member holds shadow copies of names whose
// primary already left the ring without failing over, and once the member
// is out the failover election (which consults ring survivors only) can no
// longer see those copies — an acked flush would be lost. Fail over the
// dead primary first, then retry the removal.
type OrphanedShardError struct {
	Endpoint string   // the member whose removal was refused
	Primary  string   // the dead shard whose replicas it holds
	Names    []string // shadowed names with no live binding in the ring
}

func (e *OrphanedShardError) Error() string {
	return fmt.Sprintf("cluster: cannot remove %s: it holds the only in-ring replicas of dead shard %s (%v); fail over %s first",
		e.Endpoint, e.Primary, e.Names, e.Primary)
}

func init() {
	wire.MustRegisterError("cluster.OrphanedShard", &OrphanedShardError{})
}

// guardOrphanedReplicas aborts the removal of endpoint while it shadows a
// shard whose primary is gone from the ring and whose names are not bound
// on any member — un-failed-over state this member may be the last in-ring
// holder of (see OrphanedShardError). Names that ARE bound somewhere are
// stale leftovers of an already-recovered shard and never block removal,
// so a guard trip always clears once the owed failover promotes and
// re-homes the shard's names.
func (r *Rebalancer) guardOrphanedReplicas(ctx context.Context, endpoint string, ring *Ring) error {
	shards, err := r.replicaShards(ctx, endpoint)
	if err != nil {
		return fmt.Errorf("cluster: remove %s: list replica shards: %w", endpoint, err)
	}
	var orphaned []string
	for _, p := range shards {
		if p != endpoint && !ring.Contains(p) {
			orphaned = append(orphaned, p)
		}
	}
	if len(orphaned) == 0 {
		return nil
	}
	names := make(map[string]string) // shadowed name -> its dead primary
	for _, p := range orphaned {
		si, err := r.shardInfoAt(ctx, endpoint, p)
		if err != nil {
			return fmt.Errorf("cluster: remove %s: inspect shard %s: %w", endpoint, p, err)
		}
		for _, ni := range si.Names {
			names[ni.Name] = p
		}
	}
	if len(names) == 0 {
		return nil
	}
	// A binding anywhere in the ring — including on the departing member
	// itself, whose bound names this removal migrates off — means the name
	// is alive and the shadow is a stale leftover.
	members := ring.Endpoints()
	manifests := make([][]Binding, len(members))
	if err := eachEndpoint(members, func(i int, ep string) error {
		var ferr error
		manifests[i], ferr = fetchManifest(ctx, r.dir.peer, ep)
		return ferr
	}); err != nil {
		return fmt.Errorf("cluster: remove %s: check orphaned shards: %w", endpoint, err)
	}
	for _, m := range manifests {
		for _, b := range m {
			delete(names, b.Name)
		}
	}
	if len(names) == 0 {
		return nil
	}
	oerr := &OrphanedShardError{Endpoint: endpoint}
	for _, p := range names {
		if oerr.Primary == "" || p < oerr.Primary {
			oerr.Primary = p
		}
	}
	for name, p := range names {
		if p == oerr.Primary {
			oerr.Names = append(oerr.Names, name)
		}
	}
	sort.Strings(oerr.Names)
	return oerr
}

// replicaShards lists the non-empty replica shards held at endpoint, by
// their primary endpoints.
func (r *Rebalancer) replicaShards(ctx context.Context, endpoint string) ([]string, error) {
	res, err := r.dir.peer.Call(ctx, ReplicaRef(endpoint), "Shards")
	if err != nil {
		return nil, err
	}
	var shards []string
	if len(res) == 1 {
		// The wire layer decodes a []string result as []any of strings.
		switch v := res[0].(type) {
		case []string:
			shards = v
		case []any:
			for _, e := range v {
				if s, ok := e.(string); ok {
					shards = append(shards, s)
				}
			}
		}
	}
	return shards, nil
}

// shardInfoAt reads endpoint's view of primary's shard. Never nil on a nil
// error.
func (r *Rebalancer) shardInfoAt(ctx context.Context, endpoint, primary string) (*ShardInfo, error) {
	res, err := r.dir.peer.Call(ctx, ReplicaRef(endpoint), "ShardInfo", primary)
	if err != nil {
		return nil, err
	}
	if len(res) == 1 {
		if si, ok := res[0].(*ShardInfo); ok && si != nil {
			return si, nil
		}
	}
	return &ShardInfo{Primary: primary}, nil
}

// plan reads each source server's name table (one Manifest round trip per
// server, in parallel) and groups the names the routing ring sends
// elsewhere into per-(source, destination) move lists.
func (r *Rebalancer) plan(ctx context.Context, sources []string, routing *Ring) (map[pairKey][]move, int, error) {
	manifests := make([][]Binding, len(sources))
	err := eachEndpoint(sources, func(i int, src string) error {
		var ferr error
		manifests[i], ferr = fetchManifest(ctx, r.dir.peer, src)
		return ferr
	})
	if err != nil {
		return nil, 0, err
	}
	plan := make(map[pairKey][]move)
	moved := 0
	for i, src := range sources {
		for _, b := range manifests[i] {
			dst := routing.Route(b.Name)
			if dst == "" || dst == src {
				continue
			}
			plan[pairKey{src, dst}] = append(plan[pairKey{src, dst}], move{name: b.Name, ref: b.Ref})
			moved++
		}
	}
	return plan, moved, nil
}

// fetchManifest calls Node.Manifest on endpoint and decodes the table.
func fetchManifest(ctx context.Context, peer *rmi.Peer, endpoint string) ([]Binding, error) {
	res, err := peer.Call(ctx, NodeRef(endpoint), "Manifest")
	if err != nil {
		return nil, fmt.Errorf("cluster: manifest %s: %w", endpoint, err)
	}
	if len(res) == 0 || res[0] == nil {
		return nil, nil
	}
	generic, ok := res[0].([]any)
	if !ok {
		return nil, fmt.Errorf("cluster: manifest %s: unexpected result %T", endpoint, res[0])
	}
	out := make([]Binding, 0, len(generic))
	for _, v := range generic {
		b, ok := v.(*Binding)
		if !ok {
			return nil, fmt.Errorf("cluster: manifest %s: unexpected element %T", endpoint, v)
		}
		out = append(out, *b)
	}
	return out, nil
}

// migrate runs every (source, destination) flow of the plan, flows in
// parallel. routing is the target ring the plan was computed against: when
// it replicates, each flow seeds its names' new followers before the source
// is tombstoned (see migratePair).
func (r *Rebalancer) migrate(ctx context.Context, plan map[pairKey][]move, routing *Ring, epoch uint64) error {
	if len(plan) == 0 {
		return nil
	}
	// Migration progress: the remaining gauge counts down as flows land, so
	// an ops view polled mid-rebalance sees the drain advance; the moved
	// counter accumulates across rebalances.
	for _, moves := range plan {
		r.migRemaining.Add(int64(len(moves)))
	}
	errs := make([]error, 0, len(plan))
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for pair, moves := range plan {
		wg.Add(1)
		go func(pair pairKey, moves []move) {
			defer wg.Done()
			var err error
			if r.perObject {
				err = r.migratePairPerObject(ctx, pair.src, pair.dst, moves, routing, epoch)
			} else {
				err = r.migratePair(ctx, pair.src, pair.dst, moves, routing, epoch)
			}
			r.migRemaining.Add(-int64(len(moves)))
			if err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("cluster: migrate %s -> %s: %w", pair.src, pair.dst, err))
				mu.Unlock()
			} else {
				r.migMoved.Add(uint64(len(moves)))
			}
		}(pair, moves)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// migratePair moves one (source, destination) flow in three batched round
// trips, ordered copy-then-tombstone so a failure at any point is
// recoverable by retrying AddServer/RemoveServer:
//
//  1. a multi-root core.Batch on the source — one root per moving Movable
//     object — records every Snapshot;
//  2. a batch on the destination node records an Arrive per name, splicing
//     in the snapshot values (idempotent: an already-adopted copy is kept);
//  3. when the ring replicates, the same snapshots are installed at each
//     name's new followers (placeMoves) — the destination's shard must have
//     seeded replicas BEFORE the source copy is destroyed, or a state-loss
//     kill of the destination in the window before the rebalance's final
//     placement pass would hold the only copy of every moved name;
//  4. a batch on the source node records a Depart per name, installing the
//     wrong-home forwards and export tombstones.
//
// K objects move in three round trips (plus one per follower), not 3K.
// Until the depart lands both homes hold the name — stale-ring writes in
// that window land on the old copy and are superseded by the tombstone —
// whereas tombstoning first would destroy the only copy of the state if the
// arrive trip failed.
func (r *Rebalancer) migratePair(ctx context.Context, src, dst string, moves []move, routing *Ring, epoch uint64) error {
	peer := r.dir.peer

	if err := r.probeStage(StageSnapshot, src, dst, moves); err != nil {
		return err
	}
	movable := make([]bool, len(moves))
	states := make([]*core.Future, len(moves))
	var sb *core.Batch
	for i, m := range moves {
		if !movableAt(m.ref, src) {
			continue
		}
		movable[i] = true
		if sb == nil {
			// The K snapshot roots are independent objects; the executor may
			// replay them concurrently (per-root order preserved).
			//brmivet:ignore unflushed sb is flushed below under the same sb != nil guard that created it
			sb = core.New(peer, NodeRef(src), core.WithParallelRoots())
		}
		p, err := sb.AddRoot(m.ref)
		if err != nil {
			return err
		}
		states[i] = p.Call("Snapshot")
	}
	if sb != nil {
		if err := sb.Flush(ctx); err != nil {
			return fmt.Errorf("snapshot batch: %w", err)
		}
	}

	if err := r.probeStage(StageArrive, src, dst, moves); err != nil {
		return err
	}
	ab := core.New(peer, NodeRef(dst))
	anode := ab.Root()
	arrives := make([]*core.Future, len(moves))
	for i, m := range moves {
		var state any
		if states[i] != nil {
			v, err := states[i].Get()
			if err != nil {
				return fmt.Errorf("snapshot %q: %w", m.name, err)
			}
			state = v
		}
		arrives[i] = anode.Call("Arrive", m.name, m.ref.Iface, movable[i], state, m.ref)
	}
	if err := ab.Flush(ctx); err != nil {
		return fmt.Errorf("arrive batch: %w", err)
	}
	for i, m := range moves {
		if err := arrives[i].Err(); err != nil {
			return fmt.Errorf("arrive %q: %w", m.name, err)
		}
	}

	if err := r.placeMoves(ctx, dst, moves, movable, states, routing, epoch); err != nil {
		return err
	}

	if err := r.probeStage(StageDepart, src, dst, moves); err != nil {
		return err
	}
	db := core.New(peer, NodeRef(src))
	dnode := db.Root()
	departs := make([]*core.Future, len(moves))
	for i, m := range moves {
		departs[i] = dnode.Call("Depart", m.name, epoch)
	}
	if err := db.Flush(ctx); err != nil {
		return fmt.Errorf("depart batch: %w", err)
	}
	for i, m := range moves {
		if err := departs[i].Err(); err != nil {
			return fmt.Errorf("depart %q: %w", m.name, err)
		}
	}
	return nil
}

// migratePairPerObject is the unbatched ablation: every moving object pays
// its own snapshot, arrive, follower-install, and depart round trips,
// sequentially, in the same copy-then-tombstone order as the batched flow.
func (r *Rebalancer) migratePairPerObject(ctx context.Context, src, dst string, moves []move, routing *Ring, epoch uint64) error {
	peer := r.dir.peer
	for _, m := range moves {
		one := []move{m}
		var state any
		movable := movableAt(m.ref, src)
		// Probe the snapshot stage for non-movable objects too: the batched
		// path fires it once per flow regardless of movability, and a probe
		// cutting "the flow containing name X" must behave the same under
		// the per-object ablation.
		if err := r.probeStage(StageSnapshot, src, dst, one); err != nil {
			return err
		}
		if movable {
			res, err := peer.Call(ctx, m.ref, "Snapshot")
			if err != nil {
				return fmt.Errorf("snapshot %q: %w", m.name, err)
			}
			if len(res) > 0 {
				state = res[0]
			}
		}
		if err := r.probeStage(StageArrive, src, dst, one); err != nil {
			return err
		}
		if _, err := peer.Call(ctx, NodeRef(dst), "Arrive", m.name, m.ref.Iface, movable, state, m.ref); err != nil {
			return fmt.Errorf("arrive %q: %w", m.name, err)
		}
		if movable && routing.Replication() > 1 {
			if owners, _ := routing.Owners(m.name); len(owners) >= 2 && owners[0] == dst {
				for _, f := range owners[1:] {
					if err := r.probeNames(StagePlace, dst, f, []string{m.name}); err != nil {
						return err
					}
					if _, err := peer.Call(ctx, ReplicaRef(f), "Install", m.name, m.ref.Iface, state, dst, epoch); err != nil {
						return fmt.Errorf("install %q at %s: %w", m.name, f, err)
					}
				}
			}
		}
		if err := r.probeStage(StageDepart, src, dst, one); err != nil {
			return err
		}
		if _, err := peer.Call(ctx, NodeRef(src), "Depart", m.name, epoch); err != nil {
			return fmt.Errorf("depart %q: %w", m.name, err)
		}
	}
	return nil
}

// movableAt reports whether ref is a user object hosted on endpoint whose
// type has a registered movable factory — i.e. its state can be snapshotted
// off that server.
func movableAt(ref wire.Ref, endpoint string) bool {
	if ref.Endpoint != endpoint || ref.ObjID < rmi.FirstUserObjID {
		return false
	}
	_, ok := movableFactory(ref.Iface)
	return ok
}

// broadcast pushes the ring state (members at epoch) to every recipient
// node in parallel. Recipients may include servers outside the new
// membership — a removed server keeps answering stragglers, so it needs the
// fresh state too.
func (r *Rebalancer) broadcast(ctx context.Context, recipients, members []string, epoch uint64) error {
	snap := &RingSnapshot{Members: members, Epoch: epoch}
	return eachEndpoint(recipients, func(_ int, ep string) error {
		if _, err := r.dir.peer.Call(ctx, NodeRef(ep), "SetRing", snap); err != nil {
			return fmt.Errorf("cluster: set ring on %s: %w", ep, err)
		}
		return nil
	})
}
