package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/wire"
)

// refDepth is an independent reference implementation of the stage
// recurrence: recursive with memoization, instead of the planner's single
// forward pass, so the two can cross-check each other.
func refDepth(c *recordedCall, memo map[*recordedCall]int) int {
	if s, ok := memo[c]; ok {
		return s
	}
	s := 0
	for _, in := range c.inputs() {
		d := refDepth(in.producer, memo)
		if in.staged {
			d++
		}
		if d > s {
			s = d
		}
	}
	memo[c] = s
	return s
}

// randomRecording records a random multi-server dataflow into a fresh
// batch: each call targets a root or an earlier proxy and consumes a
// random set of earlier proxies and futures as arguments. Recording never
// touches the network, so no servers are needed.
func randomRecording(rng *rand.Rand, servers, calls int) *Batch {
	b := New(nil)
	proxies := make([]*Proxy, 0, servers+calls)
	for i := 0; i < servers; i++ {
		proxies = append(proxies, b.Root(wire.Ref{
			Endpoint: fmt.Sprintf("server-%d", i),
			ObjID:    uint64(100 + i),
			Iface:    "plan.Test",
		}))
	}
	var futures []*Future
	for i := 0; i < calls; i++ {
		target := proxies[rng.Intn(len(proxies))]
		var args []any
		for n := rng.Intn(3); n > 0; n-- {
			if len(futures) > 0 && rng.Intn(2) == 0 {
				args = append(args, futures[rng.Intn(len(futures))])
			} else {
				args = append(args, proxies[rng.Intn(len(proxies))])
			}
		}
		args = append(args, int64(i)) // plain values never create edges
		if rng.Intn(2) == 0 {
			proxies = append(proxies, target.CallBatch("m", args...))
		} else {
			futures = append(futures, target.Call("m", args...))
		}
	}
	return b
}

// TestPlannerRandomRecordings is the property-style planner test: for
// random multi-server recordings the stage schedule must respect the
// dependency DAG, preserve per-server per-stage program order, and use
// exactly as many stages as the recording's dependency depth.
func TestPlannerRandomRecordings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		servers := 1 + rng.Intn(4)
		n := 1 + rng.Intn(40)
		//brmivet:ignore unflushed the planner is tested on the raw recording; nothing executes
		b := randomRecording(rng, servers, n)
		if b.recErr != nil {
			t.Fatalf("trial %d: recording violation %v", trial, b.recErr)
		}
		calls := b.calls
		stages, err := planStages(calls)
		if err != nil {
			t.Fatalf("trial %d: planStages: %v", trial, err)
		}

		// Stage count equals dependency depth (independent recursion).
		memo := make(map[*recordedCall]int)
		depth := 0
		for _, c := range calls {
			if d := refDepth(c, memo); d+1 > depth {
				depth = d + 1
			}
		}
		if stages != depth {
			t.Fatalf("trial %d: %d stages, dependency depth %d", trial, stages, depth)
		}

		// The schedule respects the DAG: staged inputs settle in a strictly
		// earlier wave; immediate inputs no later than their consumer, and
		// earlier in recording order when sharing its stage.
		for _, c := range calls {
			for _, in := range c.inputs() {
				p := in.producer
				if in.staged {
					if p.stage >= c.stage {
						t.Fatalf("trial %d: staged input %d (stage %d) not before consumer %d (stage %d)",
							trial, p.index, p.stage, c.index, c.stage)
					}
					continue
				}
				if p.stage > c.stage || (p.stage == c.stage && p.index >= c.index) {
					t.Fatalf("trial %d: immediate input %d (stage %d) unavailable to consumer %d (stage %d)",
						trial, p.index, p.stage, c.index, c.stage)
				}
			}
		}

		// Per-server per-stage program order: within every sub-batch of
		// every stage, calls appear in global recording order.
		for s, subs := range buildStages(calls, stages) {
			for _, sb := range subs {
				last := -1
				for _, c := range sb.calls {
					if c.stage != s {
						t.Fatalf("trial %d: call %d (stage %d) scheduled in stage %d", trial, c.index, c.stage, s)
					}
					if c.index <= last {
						t.Fatalf("trial %d: stage %d %s out of recording order (%d after %d)",
							trial, s, sb.group.endpoint, c.index, last)
					}
					last = c.index
				}
			}
		}
	}
}

// TestPlannerDependencyFreeIsOneStage: recordings without staged inputs —
// any mix of servers, any same-server proxy chains — plan to exactly one
// stage, preserving the PR-1 single-wave behaviour.
func TestPlannerDependencyFreeIsOneStage(t *testing.T) {
	b := New(nil)
	r0 := b.Root(wire.Ref{Endpoint: "a", ObjID: 1, Iface: "t"})
	r1 := b.Root(wire.Ref{Endpoint: "b", ObjID: 2, Iface: "t"})
	p := r0.CallBatch("Chain")
	p2 := p.CallBatch("Chain")
	p2.Call("Leaf", p)   // same-server proxy args are immediate
	r1.Call("Other", r0) // cross-server ROOT arg: ref known statically
	stages, err := planStages(b.calls)
	if err != nil {
		t.Fatal(err)
	}
	if stages != 1 {
		t.Fatalf("dependency-free recording planned %d stages, want 1", stages)
	}
}

// TestPlannerMarksExports: only cross-server non-root proxy arguments force
// an export pin on their producer.
func TestPlannerMarksExports(t *testing.T) {
	b := New(nil)
	r0 := b.Root(wire.Ref{Endpoint: "a", ObjID: 1, Iface: "t"})
	r1 := b.Root(wire.Ref{Endpoint: "b", ObjID: 2, Iface: "t"})
	local := r0.CallBatch("Local")
	r0.Call("SameServer", local)
	forwarded := r0.CallBatch("Forwarded")
	r1.Call("CrossServer", forwarded)
	f := r0.Call("Value")
	r1.Call("Splice", f)
	if _, err := planStages(b.calls); err != nil {
		t.Fatal(err)
	}
	if local.origin.export {
		t.Error("same-server proxy arg must not force an export")
	}
	if !forwarded.origin.export {
		t.Error("cross-server proxy arg must force an export")
	}
	if f.origin.export {
		t.Error("future splice must not force an export (value travels via client)")
	}
}

// TestPlannerAssertsTopologicalOrder: a cyclic (or misordered) recording is
// impossible through the public API — recording order is a topological
// order — and the planner refuses hand-built violations instead of
// scheduling nonsense.
func TestPlannerAssertsTopologicalOrder(t *testing.T) {
	g := &group{endpoint: "x"}
	root := &Proxy{group: g, isRoot: true}
	c0 := &recordedCall{index: 0, group: g, target: root, method: "consume"}
	c1 := &recordedCall{index: 1, group: g, target: root, method: "produce"}
	// c0 consumes c1's result although c1 was recorded later: a forward
	// reference the record API cannot produce.
	c0.args = []any{&Proxy{group: g, origin: c1}}
	if _, err := planStages([]*recordedCall{c0, c1}); err == nil {
		t.Fatal("planner accepted a non-topological recording")
	}
	// Index bookkeeping violations are caught too.
	c2 := &recordedCall{index: 5, group: g, target: root, method: "misindexed"}
	if _, err := planStages([]*recordedCall{c2}); err == nil {
		t.Fatal("planner accepted a misindexed log")
	}
}
