package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// failover.go is the availability half of shard replication (replica.go is
// the durability half): replica placement after every membership change, and
// epoch-bump failover of a dead primary. Both reuse the rebalancer's batched
// fan-out machinery — placement is "migration to a shadow", failover is
// "promotion, then ordinary migration".

// replicaPlacement is one name to (re)seed at its followers: the name's
// authoritative ref on its primary and the follower endpoints owed a shadow.
type replicaPlacement struct {
	name      string
	ref       wire.Ref
	followers []string
}

// placeReplicas (re)seeds every movable name's followers from its primary
// under the routing ring. The rebalancer runs it after every membership
// change, and it is NOT an optimization: a follower that became responsible
// for a key it never followed would otherwise build its shadow lazily from
// a zero-state instance at the next shipped record, silently missing all
// history written before the change. Placement is a full, idempotent
// re-install — one snapshot batch per primary, one install batch per
// (primary, follower) pair, K names per trip — so a retried rebalance
// converges just like migration does. Names whose type has no movable
// factory cannot be snapshotted and are skipped: they are not replicated
// (the staged executor skips them symmetrically, see armReplication).
func (r *Rebalancer) placeReplicas(ctx context.Context, members []string, routing *Ring, epoch uint64) error {
	if routing.Replication() <= 1 {
		return nil
	}
	manifests := make([][]Binding, len(members))
	if err := eachEndpoint(members, func(i int, ep string) error {
		var ferr error
		manifests[i], ferr = fetchManifest(ctx, r.dir.peer, ep)
		return ferr
	}); err != nil {
		return err
	}
	bySrc := make(map[string][]replicaPlacement)
	for i, src := range members {
		for _, b := range manifests[i] {
			owners, _ := routing.Owners(b.Name)
			// Only names homed where the routing ring wants them are placed:
			// a mis-homed name (mid-migration on a retry) is seeded by the
			// rebalance run that finally homes it.
			if len(owners) < 2 || owners[0] != src || !movableAt(b.Ref, src) {
				continue
			}
			bySrc[src] = append(bySrc[src], replicaPlacement{name: b.Name, ref: b.Ref, followers: append([]string(nil), owners[1:]...)})
		}
	}
	errs := make([]error, 0, len(bySrc))
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for src, places := range bySrc {
		wg.Add(1)
		go func(src string, places []replicaPlacement) {
			defer wg.Done()
			if err := r.placeFrom(ctx, src, places, epoch); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("cluster: place replicas of %s: %w", src, err))
				mu.Unlock()
			}
		}(src, places)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// placeFrom snapshots one primary's placed names in a single multi-root
// batch and installs the snapshots at each follower, one batch per
// follower, followers in parallel.
func (r *Rebalancer) placeFrom(ctx context.Context, src string, places []replicaPlacement, epoch uint64) error {
	peer := r.dir.peer
	sb := core.New(peer, NodeRef(src), core.WithParallelRoots())
	states := make([]*core.Future, len(places))
	for i, pl := range places {
		p, err := sb.AddRoot(pl.ref)
		if err != nil {
			return err
		}
		states[i] = p.Call("Snapshot")
	}
	if err := sb.Flush(ctx); err != nil {
		return fmt.Errorf("snapshot batch: %w", err)
	}
	byFollower := make(map[string][]int)
	for i, pl := range places {
		for _, f := range pl.followers {
			byFollower[f] = append(byFollower[f], i)
		}
	}
	followers := make([]string, 0, len(byFollower))
	for f := range byFollower {
		followers = append(followers, f)
	}
	sort.Strings(followers)
	return eachEndpoint(followers, func(_ int, f string) error {
		idx := byFollower[f]
		names := make([]string, len(idx))
		for j, i := range idx {
			names[j] = places[i].name
		}
		if err := r.probeNames(StagePlace, src, f, names); err != nil {
			return err
		}
		ib := core.New(peer, ReplicaRef(f))
		rep := ib.Root()
		futs := make([]*core.Future, len(idx))
		for j, i := range idx {
			v, err := states[i].Get()
			if err != nil {
				return fmt.Errorf("snapshot %q: %w", places[i].name, err)
			}
			futs[j] = rep.Call("Install", places[i].name, places[i].ref.Iface, v, src, epoch)
		}
		if err := ib.Flush(ctx); err != nil {
			return fmt.Errorf("install batch at %s: %w", f, err)
		}
		for j, i := range idx {
			if err := futs[j].Err(); err != nil {
				return fmt.Errorf("install %q at %s: %w", places[i].name, f, err)
			}
		}
		return nil
	})
}

// placeMoves seeds the new followers of a migration flow's names from the
// snapshots the flow just adopted at dst, BEFORE the source copies are
// tombstoned. Without it, a state-loss kill of the destination between a
// flow's depart trip and the rebalance's final placeReplicas pass would
// destroy the only copy of every moved name: the old shard's shadows are
// keyed under the old primary and invisible to the new primary's failover
// election. One install batch per follower, mirroring placeFrom.
func (r *Rebalancer) placeMoves(ctx context.Context, dst string, moves []move, movable []bool, states []*core.Future, routing *Ring, epoch uint64) error {
	if routing.Replication() <= 1 {
		return nil
	}
	byFollower := make(map[string][]int)
	for i, m := range moves {
		if !movable[i] {
			continue
		}
		owners, _ := routing.Owners(m.name)
		if len(owners) < 2 || owners[0] != dst {
			continue
		}
		for _, f := range owners[1:] {
			byFollower[f] = append(byFollower[f], i)
		}
	}
	if len(byFollower) == 0 {
		return nil
	}
	followers := make([]string, 0, len(byFollower))
	for f := range byFollower {
		followers = append(followers, f)
	}
	sort.Strings(followers)
	return eachEndpoint(followers, func(_ int, f string) error {
		idx := byFollower[f]
		names := make([]string, len(idx))
		for j, i := range idx {
			names[j] = moves[i].name
		}
		if err := r.probeNames(StagePlace, dst, f, names); err != nil {
			return err
		}
		ib := core.New(r.dir.peer, ReplicaRef(f))
		rep := ib.Root()
		futs := make([]*core.Future, len(idx))
		for j, i := range idx {
			v, err := states[i].Get()
			if err != nil {
				return fmt.Errorf("snapshot %q: %w", moves[i].name, err)
			}
			futs[j] = rep.Call("Install", moves[i].name, moves[i].ref.Iface, v, dst, epoch)
		}
		if err := ib.Flush(ctx); err != nil {
			return fmt.Errorf("install batch at %s: %w", f, err)
		}
		for j, i := range idx {
			if err := futs[j].Err(); err != nil {
				return fmt.Errorf("install %q at %s: %w", moves[i].name, f, err)
			}
		}
		return nil
	})
}

// FailoverServer removes a DEAD member from the cluster, recovering its
// shards from the survivors' replicas. It is the state-loss counterpart of
// RemoveServer, which drains a live member and must be preferred whenever
// the server still answers. The flow is an epoch bump:
//
//  1. fence — the shrunken membership is broadcast to the survivors at
//     epoch+1 BEFORE anything else, so an in-flight replication ship routed
//     by the old owner list is rejected (StaleShipError) instead of racing
//     the election below;
//  2. elect — every survivor reports its replica of the dead server's shard
//     (ShardInfo) and each name is won by the best candidate: seeded
//     shadows (snapshot-installed at placement) beat lazy ones, then newest
//     epoch, then most applied records, then lowest endpoint. Names already
//     bound on a survivor — migrated away before the crash, or promoted by
//     an earlier partial failover — are filtered out, so stale shadows are
//     never resurrected and retries converge;
//  3. promote — each winning survivor binds its shadows into its registry
//     (Replica.Promote, idempotent per name);
//  4. migrate — the ordinary copy-then-tombstone migration moves every
//     promoted name from its promoting survivor to its ring home, and
//     replica placement re-seeds the new followers.
//
// Every step is idempotent or fenced, so a failover that dies at any point
// is completed by calling FailoverServer again (the promotion-idempotence
// test retries it from every probe cut). Acked waves survive under W=all:
// an acked wave is on every follower of its keys, placement snapshots are
// taken only after the fence broadcast completed, so whichever candidate
// wins the election holds the wave. Under WithQuorum(W<R) the guarantee
// weakens to "survives while at least one of the W acking holders does" —
// the election still picks the longest seeded log, which holds every acked
// wave whenever any surviving follower does.
func (r *Rebalancer) FailoverServer(ctx context.Context, dead string) (*RebalanceStats, error) {
	// Adopt the cluster's authoritative epoch first, like AddServer; the
	// poll tolerates the dead member (it fails only when NO node answers).
	if err := r.dir.Refresh(ctx); err != nil {
		return nil, err
	}
	ring := r.dir.Ring()
	epoch := ring.Epoch()
	var survivors []string
	contained := ring.Contains(dead)
	if contained {
		if ring.Size() == 1 {
			return nil, errors.New("cluster: cannot fail over the last server")
		}
		for _, ep := range ring.Endpoints() {
			if ep != dead {
				survivors = append(survivors, ep)
			}
		}
		epoch++
	} else {
		// Already out of the ring: a prior failover got at least as far as
		// the broadcast. Re-run the remaining steps at the current epoch to
		// converge whatever is left (promotion, migration, placement are all
		// idempotent).
		survivors = ring.Endpoints()
		if len(survivors) == 0 {
			return nil, ErrNoServers
		}
	}
	target := NewRing(survivors, WithVirtualNodes(ring.vnodes), WithReplication(ring.Replication()))
	if err := r.broadcast(ctx, survivors, survivors, epoch); err != nil {
		return nil, err
	}

	// Election: collect every survivor's view of the dead server's shard.
	infos := make([]*ShardInfo, len(survivors))
	if err := eachEndpoint(survivors, func(i int, ep string) error {
		res, err := r.dir.peer.Call(ctx, ReplicaRef(ep), "ShardInfo", dead)
		if err != nil {
			return fmt.Errorf("cluster: shard info from %s: %w", ep, err)
		}
		if len(res) == 1 {
			if si, ok := res[0].(*ShardInfo); ok {
				infos[i] = si
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	type candidate struct {
		ep string
		ni NameInfo
	}
	best := make(map[string]candidate)
	for i, si := range infos {
		if si == nil {
			continue
		}
		for _, ni := range si.Names {
			cur, ok := best[ni.Name]
			if !ok || betterCandidate(survivors[i], ni, cur.ep, cur.ni) {
				best[ni.Name] = candidate{ep: survivors[i], ni: ni}
			}
		}
	}

	promoted := 0
	if len(best) > 0 {
		// Filter: a name already bound on a survivor is alive — promotion
		// would overwrite fresher authoritative state with a shadow.
		bound := make(map[string]bool)
		manifests := make([][]Binding, len(survivors))
		if err := eachEndpoint(survivors, func(i int, ep string) error {
			var ferr error
			manifests[i], ferr = fetchManifest(ctx, r.dir.peer, ep)
			return ferr
		}); err != nil {
			return nil, err
		}
		for _, m := range manifests {
			for _, b := range m {
				bound[b.Name] = true
			}
		}
		byWinner := make(map[string][]string)
		for name, c := range best {
			if !bound[name] {
				byWinner[c.ep] = append(byWinner[c.ep], name)
				promoted++
			}
		}
		winners := make([]string, 0, len(byWinner))
		for ep := range byWinner {
			winners = append(winners, ep)
		}
		sort.Strings(winners)
		if err := eachEndpoint(winners, func(_ int, ep string) error {
			names := byWinner[ep]
			sort.Strings(names)
			if err := r.probeNames(StagePromote, dead, ep, names); err != nil {
				return err
			}
			if _, err := r.dir.peer.Call(ctx, ReplicaRef(ep), "Promote", dead, names, epoch); err != nil {
				return fmt.Errorf("cluster: promote on %s: %w", ep, err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// The promoted names now sit in their promoting survivors' registries;
	// the ordinary migration flow homes them under the shrunken ring, and
	// placement re-seeds every key's followers.
	plan, moved, err := r.plan(ctx, survivors, target)
	if err != nil {
		return nil, err
	}
	if err := r.migrate(ctx, plan, target, epoch); err != nil {
		return nil, err
	}
	if err := r.placeReplicas(ctx, survivors, target, epoch); err != nil {
		return nil, err
	}
	if contained {
		ring.Remove(dead)
	}
	return &RebalanceStats{Epoch: epoch, Moved: moved, Pairs: len(plan), Promoted: promoted}, nil
}

// betterCandidate reports whether candidate (ep, ni) beats (curEp, cur) in
// the per-name promotion election: seeded first (a snapshot-installed
// shadow holds the name's full pre-replication history; a lazily created
// one starts from zero state mid-stream), then newest SEED epoch — the
// record epoch alone can lie: a shadow seeded long ago catches a stray
// union-shipped record at the current epoch and would tie the true
// follower while missing every wave in between. Then most records applied
// since that seed, then newest record epoch, then lowest endpoint for
// determinism.
// rescueOrphans re-binds names that survive only as replica shadows: their
// binding died with a primary that was never failed over — killed while its
// seeded followers were out of the ring (where the failover election cannot
// see them), or stranded by a partially failed rebalance — and no member's
// registry resolves them anymore. For every such name the best-credentialed
// in-ring holder (same election order as FailoverServer) promotes its
// shadow, and the caller's migration pass then drains the name to its ring
// home and re-seeds its followers. Healthy clusters pay one Shards round
// trip per member and promote nothing: every shadowed name is bound at its
// primary. Returns how many names were rescued.
func (r *Rebalancer) rescueOrphans(ctx context.Context, members []string, epoch uint64) (int, error) {
	if r.dir.Ring().Replication() <= 1 {
		return 0, nil // no shadows exist, and members need not serve a Replica
	}
	manifests := make([][]Binding, len(members))
	if err := eachEndpoint(members, func(i int, ep string) error {
		var ferr error
		manifests[i], ferr = fetchManifest(ctx, r.dir.peer, ep)
		return ferr
	}); err != nil {
		return 0, fmt.Errorf("cluster: rescue orphans: %w", err)
	}
	bound := make(map[string]bool)
	for _, m := range manifests {
		for _, b := range m {
			bound[b.Name] = true
		}
	}
	type candidate struct {
		ep, primary string
		ni          NameInfo
	}
	best := make(map[string]candidate)
	var mu sync.Mutex
	if err := eachEndpoint(members, func(_ int, ep string) error {
		shards, err := r.replicaShards(ctx, ep)
		if err != nil {
			return fmt.Errorf("cluster: rescue orphans: shards at %s: %w", ep, err)
		}
		for _, primary := range shards {
			si, err := r.shardInfoAt(ctx, ep, primary)
			if err != nil {
				return fmt.Errorf("cluster: rescue orphans: shard %s at %s: %w", primary, ep, err)
			}
			mu.Lock()
			for _, ni := range si.Names {
				if bound[ni.Name] {
					continue
				}
				cur, ok := best[ni.Name]
				if !ok || betterCandidate(ep, ni, cur.ep, cur.ni) {
					best[ni.Name] = candidate{ep: ep, primary: primary, ni: ni}
				}
			}
			mu.Unlock()
		}
		return nil
	}); err != nil {
		return 0, err
	}
	if len(best) == 0 {
		return 0, nil
	}
	byWinner := make(map[pairKey][]string) // (holder, shard primary) -> names
	for name, c := range best {
		k := pairKey{c.ep, c.primary}
		byWinner[k] = append(byWinner[k], name)
	}
	rescued := 0
	for k, names := range byWinner {
		sort.Strings(names)
		if _, err := r.dir.peer.Call(ctx, ReplicaRef(k.src), "Promote", k.dst, names, epoch); err != nil {
			return rescued, fmt.Errorf("cluster: rescue orphans: promote on %s: %w", k.src, err)
		}
		rescued += len(names)
	}
	return rescued, nil
}

func betterCandidate(ep string, ni NameInfo, curEp string, cur NameInfo) bool {
	if ni.Seeded != cur.Seeded {
		return ni.Seeded
	}
	if ni.SeedEpoch != cur.SeedEpoch {
		return ni.SeedEpoch > cur.SeedEpoch
	}
	if ni.Applied != cur.Applied {
		return ni.Applied > cur.Applied
	}
	if ni.Epoch != cur.Epoch {
		return ni.Epoch > cur.Epoch
	}
	return ep < curEp
}
