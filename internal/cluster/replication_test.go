package cluster_test

// End-to-end tests for shard replication and epoch-bump failover: owner
// lists, batch-log shipping to followers, promotion of the best replica
// after a primary dies with its state, and the headline durability claim —
// an acked flush survives the primary's crash, and an in-flight flush
// recorded against the dead primary recovers with exactly one retry wave.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/clustertest"
)

// TestRingOwners pins the owner-list contract: owners[0] is Route(key), the
// list holds min(R, size) distinct members, and the epoch is read atomically
// with the list.
func TestRingOwners(t *testing.T) {
	eps := []string{"server-0", "server-1", "server-2"}
	ring := cluster.NewRing(eps, cluster.WithReplication(2))
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("obj-%d", i)
		owners, epoch := ring.Owners(key)
		if len(owners) != 2 {
			t.Fatalf("Owners(%s) = %v, want 2 owners", key, owners)
		}
		if owners[0] != ring.Route(key) {
			t.Errorf("Owners(%s)[0] = %s, want Route's pick %s", key, owners[0], ring.Route(key))
		}
		if owners[0] == owners[1] {
			t.Errorf("Owners(%s) = %v, owners not distinct", key, owners)
		}
		if epoch != ring.Epoch() {
			t.Errorf("Owners(%s) epoch = %d, want %d", key, epoch, ring.Epoch())
		}
	}

	// R larger than the membership: capped, never padded.
	wide := cluster.NewRing([]string{"a", "b"}, cluster.WithReplication(5))
	if owners, _ := wide.Owners("k"); len(owners) != 2 {
		t.Errorf("R=5 over 2 members: owners = %v, want both members", owners)
	}
	// Default ring: replication off, single owner.
	single := cluster.NewRing(eps)
	if owners, _ := single.Owners("k"); len(owners) != 1 {
		t.Errorf("default ring owners = %v, want exactly the home", owners)
	}
}

// placedDirectory builds a replicated directory over the cluster and runs
// the idempotent member re-add that seeds every bound name's followers
// (replica placement piggybacks on the rebalance flow).
func placedDirectory(t *testing.T, ec *clustertest.Cluster, seeds map[string]int64) *cluster.Directory {
	t.Helper()
	dir := cluster.NewDirectory(ec.Client, ec.Endpoints(), cluster.WithReplication(2))
	for name, seed := range seeds {
		ec.BindCounter(dir, name, seed)
	}
	if _, err := cluster.NewRebalancer(dir).AddServer(context.Background(), ec.Endpoints()[0]); err != nil {
		t.Fatalf("placement rebalance: %v", err)
	}
	return dir
}

// TestReplicatedFlushShipsToFollower: a flush against a replicated directory
// lands on the primary AND its follower — the follower's shard log grows, a
// seeded shadow applies the record, and the client observed one quorum wait.
func TestReplicatedFlushShipsToFollower(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := placedDirectory(t, ec, map[string]int64{"obj-0": 100})

	owners, _ := dir.Owners("obj-0")
	primary, follower := owners[0], owners[1]

	b := cluster.New(ec.Client, cluster.WithDirectory(dir))
	p, err := b.RootNamed(ctx, "obj-0")
	if err != nil {
		t.Fatal(err)
	}
	f := p.Call("Add", int64(5))
	if err := b.Flush(ctx); err != nil {
		t.Fatalf("replicated flush: %v", err)
	}
	if v, err := cluster.Typed[int64](f).Get(); err != nil || v != 105 {
		t.Fatalf("Add = %v, %v; want 105", v, err)
	}

	si := ec.Server(follower).Replica.ShardInfo(primary)
	var found bool
	for _, ni := range si.Names {
		if ni.Name == "obj-0" {
			found = true
			if !ni.Seeded {
				t.Error("follower shadow not seeded; placement did not run")
			}
			if ni.Applied != 1 {
				t.Errorf("follower applied %d records, want 1", ni.Applied)
			}
		}
	}
	if !found {
		t.Fatalf("follower %s holds no shadow of obj-0 (shard info %+v)", follower, si)
	}
	if got := ec.Server(follower).Stats.Snapshot().Counter("cluster.replica_appends"); got != 1 {
		t.Errorf("follower cluster.replica_appends = %d, want 1", got)
	}
	if got := ec.ClientStats.Snapshot().Counter("cluster.quorum_waits"); got != 1 {
		t.Errorf("client cluster.quorum_waits = %d, want 1", got)
	}
}

// TestFailoverRecoversAckedFlush: the primary crashes with its state after
// acking a replicated flush; FailoverServer promotes the follower's shadow
// and the acked write is still there. A second failover call is a converged
// no-op.
func TestFailoverRecoversAckedFlush(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := placedDirectory(t, ec, map[string]int64{"obj-0": 100})
	owners, _ := dir.Owners("obj-0")
	primary := owners[0]

	b := cluster.New(ec.Client, cluster.WithDirectory(dir))
	p, err := b.RootNamed(ctx, "obj-0")
	if err != nil {
		t.Fatal(err)
	}
	f := p.Call("Add", int64(7))
	if err := b.Flush(ctx); err != nil {
		t.Fatalf("acked flush: %v", err)
	}
	if v, _ := cluster.Typed[int64](f).Get(); v != 107 {
		t.Fatalf("acked flush value = %d, want 107", v)
	}

	ec.CrashServer(primary)
	stats, err := cluster.NewRebalancer(dir).FailoverServer(ctx, primary)
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if stats.Promoted < 1 {
		t.Errorf("failover promoted %d names, want at least obj-0", stats.Promoted)
	}
	if dir.Ring().Contains(primary) {
		t.Error("dead primary still in the ring after failover")
	}

	ref, err := dir.Lookup(ctx, "obj-0")
	if err != nil {
		t.Fatalf("lookup after failover: %v", err)
	}
	if ref.Endpoint == primary {
		t.Fatalf("obj-0 still resolves to the dead primary %s", primary)
	}
	res, err := ec.Client.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	if got := res[0].(int64); got != 107 {
		t.Errorf("recovered state = %d, want 107 (the acked flush was lost)", got)
	}
	checkConverged(t, ec, dir, map[string]int64{"obj-0": 107})

	again, err := cluster.NewRebalancer(dir).FailoverServer(ctx, primary)
	if err != nil {
		t.Fatalf("repeated failover: %v", err)
	}
	if again.Promoted != 0 || again.Moved != 0 {
		t.Errorf("repeated failover = %+v, want converged no-op", again)
	}
}

// TestInFlightFlushSurvivesPrimaryCrash is the acceptance criterion pinned
// deterministically: a client records a flush against the primary, the
// primary dies with its state and is failed over, and the flush — whose
// first wave cannot even dial the dead endpoint — recovers at the promoted
// home with EXACTLY one extra retry wave. The earlier acked write is part of
// the recovered state.
func TestInFlightFlushSurvivesPrimaryCrash(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	admin := placedDirectory(t, ec, map[string]int64{"obj-0": 100})
	owners, _ := admin.Owners("obj-0")
	primary := owners[0]

	// An acked write before the crash — it must be in the recovered state.
	wb := cluster.New(ec.Client, cluster.WithDirectory(admin))
	wp, err := wb.RootNamed(ctx, "obj-0")
	if err != nil {
		t.Fatal(err)
	}
	wp.Call("Add", int64(7))
	if err := wb.Flush(ctx); err != nil {
		t.Fatalf("pre-crash acked flush: %v", err)
	}

	// A second client with its own (soon stale) shard map records in-flight
	// work against the primary.
	stale := cluster.NewDirectory(ec.Client, ec.Endpoints(), cluster.WithReplication(2))
	b := cluster.New(ec.Client, cluster.WithDirectory(stale))
	p, err := b.RootNamed(ctx, "obj-0")
	if err != nil {
		t.Fatal(err)
	}
	f := p.Call("Add", int64(5))

	ec.CrashServer(primary)
	if _, err := cluster.NewRebalancer(admin).FailoverServer(ctx, primary); err != nil {
		t.Fatalf("failover: %v", err)
	}

	// The flush's first wave dials the dead primary (refused), classifying
	// as retry-safe; the single stale retry re-resolves the root through the
	// refreshed ring and lands at the promoted home.
	if err := b.Flush(ctx); err != nil {
		t.Fatalf("in-flight flush did not survive the crash: %v", err)
	}
	if v, err := cluster.Typed[int64](f).Get(); err != nil || v != 112 {
		t.Fatalf("in-flight call = %v, %v; want 112 (100 seed + 7 acked + 5 in-flight)", v, err)
	}
	if !b.StaleRetried() {
		t.Error("StaleRetried() = false; the flush did not take the retry path")
	}
	if b.Waves() != 2 {
		t.Errorf("flush took %d waves, want exactly 2 (the dead wave + one retry)", b.Waves())
	}

	// The retried wave replicated like any other: the promoted home's new
	// follower holds the record under the bumped epoch.
	newOwners, _ := stale.Owners("obj-0")
	if len(newOwners) < 2 {
		t.Fatalf("post-failover owners = %v, want primary + follower", newOwners)
	}
	si := ec.Server(newOwners[1]).Replica.ShardInfo(newOwners[0])
	var applied int64
	for _, ni := range si.Names {
		if ni.Name == "obj-0" {
			applied = ni.Applied
		}
	}
	if applied < 1 {
		t.Errorf("retried wave did not replicate to the new follower %s (shard info %+v)", newOwners[1], si)
	}
	checkConverged(t, ec, admin, map[string]int64{"obj-0": 112})
}

// TestFailoverRetryConvergesAfterInjectedFault is the promotion-idempotence
// satellite: FailoverServer is cut immediately before each of its batched
// trips in turn — promotion, the three migration trips, replica placement —
// and a plain retried FailoverServer must converge from whatever partial
// state the cut left: every name resolves at its ring home exactly once with
// the acked state intact.
func TestFailoverRetryConvergesAfterInjectedFault(t *testing.T) {
	stages := []cluster.MigrationStage{
		cluster.StagePromote, cluster.StageSnapshot, cluster.StageArrive,
		cluster.StageDepart, cluster.StagePlace,
	}
	for _, stage := range stages {
		t.Run(string(stage), func(t *testing.T) {
			ec := clustertest.New(t, 4)
			ctx := context.Background()
			dir := cluster.NewDirectory(ec.Client, ec.Endpoints(), cluster.WithReplication(3))

			// Election geometry that forces a post-promotion migration (by
			// consistent hashing, the FIRST follower is always the new home,
			// so a 2-owner shard never migrates after promotion): with
			// owners [server-0, server-2, server-1], both followers hold
			// equally-credentialed seeded shadows and the election tie-break
			// promotes the lexically-lowest — server-1 — while the survivor
			// ring homes the name at server-2. The failover then promotes at
			// server-1 AND migrates to server-2, so every probed stage is
			// reachable.
			var moving string
			for i := 0; moving == ""; i++ {
				name := fmt.Sprintf("obj-%d", i)
				owners, _ := dir.Owners(name)
				if owners[0] == "server-0" && owners[1] == "server-2" && owners[2] == "server-1" {
					moving = name
				}
				if i > 100000 {
					t.Fatal("no name with the required owner geometry")
				}
			}
			seeds := map[string]int64{moving: 500}
			ec.BindCounter(dir, moving, seeds[moving])
			if _, err := cluster.NewRebalancer(dir).AddServer(ctx, "server-0"); err != nil {
				t.Fatalf("placement rebalance: %v", err)
			}

			// One acked write on top of the seed: the converged state must
			// carry it through every cut.
			b := cluster.New(ec.Client, cluster.WithDirectory(dir))
			p, err := b.RootNamed(ctx, moving)
			if err != nil {
				t.Fatal(err)
			}
			p.Call("Add", int64(1))
			if err := b.Flush(ctx); err != nil {
				t.Fatalf("acked flush: %v", err)
			}
			want := map[string]int64{moving: 501}

			ec.CrashServer("server-0")
			faulty := cluster.NewRebalancer(dir, cluster.WithMigrationProbe(failAtStage(stage)))
			if _, err := faulty.FailoverServer(ctx, "server-0"); !errors.Is(err, errInjected) {
				t.Fatalf("faulted failover error = %v, want the injected fault", err)
			}

			if _, err := cluster.NewRebalancer(dir).FailoverServer(ctx, "server-0"); err != nil {
				t.Fatalf("retried failover: %v", err)
			}
			if dir.Ring().Contains("server-0") {
				t.Error("dead server still in the ring after retried failover")
			}
			checkConverged(t, ec, dir, want)

			// A further retry is a clean no-op.
			if again, err := cluster.NewRebalancer(dir).FailoverServer(ctx, "server-0"); err != nil || again.Promoted != 0 || again.Moved != 0 {
				t.Errorf("third failover = %+v, %v; want converged no-op", again, err)
			}
		})
	}
}
