package cluster

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Movable is implemented by remote object types whose state can migrate
// between servers when the cluster membership changes. Snapshot returns a
// wire-encodable value capturing the object's state; Restore applies a
// snapshot to a freshly constructed instance on the new home server. Both
// are ordinary remote methods, so the rebalancer moves K objects in one
// batched round trip per direction instead of one per object.
//
// Types that do not implement Movable (or whose factory is not registered,
// see RegisterMovable) still participate in re-sharding: their binding moves
// to the new home server while the object itself stays where it was
// exported, so lookups keep resolving — only locality is lost.
type Movable interface {
	Snapshot() (any, error)
	Restore(state any) error
}

// movableFactories maps interface names to constructors for migrated
// instances. It is process-global, like the wire type registry: every node
// of a deployment registers the same set at init time, so any server can
// reconstruct any movable type.
var (
	movableMu        sync.RWMutex
	movableFactories = make(map[string]func() rmi.Remote)
)

// RegisterMovable associates an interface name with a constructor used to
// rebuild migrated objects of that type on their new home server. The
// constructed object must implement Movable. Registering the same interface
// again replaces the factory.
func RegisterMovable(iface string, factory func() rmi.Remote) {
	movableMu.Lock()
	defer movableMu.Unlock()
	movableFactories[iface] = factory
}

func movableFactory(iface string) (func() rmi.Remote, bool) {
	movableMu.RLock()
	defer movableMu.RUnlock()
	f, ok := movableFactories[iface]
	return f, ok
}

// RingSnapshot is a node's view of the cluster membership: the member
// endpoints and the epoch they correspond to.
type RingSnapshot struct {
	Members []string
	Epoch   uint64
}

// Binding is one entry of a node's local name table, as reported by
// Node.Manifest.
type Binding struct {
	Name string
	Ref  wire.Ref
}

func init() {
	wire.MustRegister("cluster.ringSnapshot", &RingSnapshot{})
	wire.MustRegister("cluster.binding", &Binding{})
}

// NodeRef builds the well-known reference of the cluster node service at
// endpoint.
func NodeRef(endpoint string) wire.Ref {
	return rmi.SystemRef(endpoint, rmi.NodeObjID, rmi.NodeIface)
}

// Node is the per-server cluster membership and migration service, exported
// at the reserved rmi.NodeObjID. It carries the server's authoritative copy
// of the ring state (refreshed by the rebalancer's broadcast after every
// membership change, queried by stale clients re-routing after a
// WrongHomeError) and the server side of object migration: Manifest lists
// the local name table, Depart releases objects moving away, Arrive adopts
// objects moving in.
type Node struct {
	rmi.RemoteBase

	peer *rmi.Peer
	reg  *registry.Service

	mu      sync.Mutex
	members []string
	epoch   uint64

	// Migration traffic counters (nil no-ops when uninstrumented).
	arrivals *stats.Counter // cluster.arrivals
	departs  *stats.Counter // cluster.departs
}

// StartNode exports a cluster node service on p at the reserved node id.
// members seeds the node's view of the cluster (epoch 0); the rebalancer's
// SetRing broadcast keeps it current afterwards.
func StartNode(p *rmi.Peer, reg *registry.Service, members []string) (*Node, error) {
	if reg == nil {
		return nil, errors.New("cluster: node requires a registry service")
	}
	n := &Node{peer: p, reg: reg, members: append([]string(nil), members...)}
	sort.Strings(n.members)
	if r := p.Stats(); r != nil {
		n.arrivals = r.Counter("cluster.arrivals")
		n.departs = r.Counter("cluster.departs")
		r.Func("cluster.ring_epoch", func() int64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return int64(n.epoch)
		})
	}
	if _, err := p.ExportSystem(rmi.NodeObjID, n, rmi.NodeIface); err != nil {
		return nil, fmt.Errorf("cluster: start node: %w", err)
	}
	return n, nil
}

// Epoch returns the node's current ring epoch. The replication service uses
// it as the fence rejecting stale-owner-list ships.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// RingState returns this node's view of the cluster membership.
func (n *Node) RingState() *RingSnapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	return &RingSnapshot{Members: append([]string(nil), n.members...), Epoch: n.epoch}
}

// SetRing adopts a newer ring state. A broadcast behind this node's epoch
// is rejected LOUDLY — a silent drop would let a rebalancer with a stale
// directory believe its membership change propagated when every node
// ignored it. Re-broadcasts of the current epoch with identical membership
// are accepted (rebalance retries); a conflicting member set at the same
// epoch is an error.
func (n *Node) SetRing(s *RingSnapshot) error {
	if s == nil {
		return errors.New("cluster: set ring: nil snapshot")
	}
	members := append([]string(nil), s.Members...)
	sort.Strings(members)
	n.mu.Lock()
	defer n.mu.Unlock()
	switch {
	case s.Epoch < n.epoch:
		return fmt.Errorf("cluster: stale ring broadcast: epoch %d is behind this node's epoch %d — refresh the directory before rebalancing", s.Epoch, n.epoch)
	case s.Epoch == n.epoch && len(n.members) > 0:
		if !slices.Equal(members, n.members) {
			return fmt.Errorf("cluster: conflicting ring broadcast at epoch %d: %v here vs %v offered", s.Epoch, n.members, members)
		}
		return nil
	}
	n.members = members
	n.epoch = s.Epoch
	return nil
}

// Manifest returns the node's local name table: every name bound in this
// server's registry with the reference it resolves to. The rebalancer reads
// it to compute the moved key set in one round trip per server.
func (n *Node) Manifest() []Binding {
	bindings := n.reg.Snapshot()
	names := make([]string, 0, len(bindings))
	for name := range bindings {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Binding, len(names))
	for i, name := range names {
		out[i] = Binding{Name: name, Ref: bindings[name]}
	}
	return out
}

// Depart releases name from this server because the ring at epoch routes it
// elsewhere: the local binding is replaced by a wrong-home forward, and if
// the bound object is migrating — it lives on this very server and its type
// is movable, so a restored copy supersedes it at the new home — its export
// is replaced by a tombstone (rmi.Peer.ForwardObject), so calls routed here
// with a stale shard map fail with rmi.WrongHomeError instead of a dangling
// success. A non-movable object keeps its export: only its binding moves,
// and the reference re-bound at the new home still points here. Departing a
// name that already left is a no-op, making migration retries idempotent.
func (n *Node) Depart(name string, epoch uint64) error {
	ref, err := n.reg.Lookup(name)
	if err != nil {
		var wrong *rmi.WrongHomeError
		if errors.As(err, &wrong) {
			return nil // already departed
		}
		return err
	}
	n.departs.Inc()
	n.reg.Forward(name, epoch)
	// An export aliased by several names is tombstoned only when the last
	// of them departs: until then the staying names must keep resolving to
	// a live object (the migrated copy and the original fork in that case —
	// aliasing movable objects across ring keys is inherently ambiguous,
	// see DESIGN.md).
	if movableAt(ref, n.peer.Endpoint()) && !n.reg.Bound(ref) {
		n.peer.ForwardObject(ref.ObjID, name, epoch)
	}
	return nil
}

// Arrive adopts name on this server. For a movable object (the rebalancer
// decided movability explicitly; state is whatever Snapshot returned, nil
// included) a fresh instance is constructed, restored from the snapshot,
// and exported here; otherwise the existing reference is re-bound as-is —
// the binding migrates, the object stays put. Either way the local registry
// becomes name's authoritative home.
//
// A movable arrival for a name already bound to a local object is a no-op:
// the migration runs copy-then-tombstone, so a retried flow must not
// overwrite an adopted copy (possibly already mutated by routed traffic)
// with a re-read of the old home's stale state.
func (n *Node) Arrive(name string, iface string, movable bool, state any, ref wire.Ref) error {
	n.arrivals.Inc()
	if movable {
		if existing, err := n.reg.Lookup(name); err == nil && existing.Endpoint == n.peer.Endpoint() {
			return nil // already adopted by an earlier (partially failed) run
		}
		factory, ok := movableFactory(iface)
		if !ok {
			return fmt.Errorf("cluster: arrive %q: no movable factory registered for %q", name, iface)
		}
		obj := factory()
		m, ok := obj.(Movable)
		if !ok {
			return fmt.Errorf("cluster: arrive %q: factory for %q built a non-Movable %T", name, iface, obj)
		}
		if err := m.Restore(state); err != nil {
			return fmt.Errorf("cluster: arrive %q: restore: %w", name, err)
		}
		newRef, err := n.peer.Export(obj, iface)
		if err != nil {
			return fmt.Errorf("cluster: arrive %q: export: %w", name, err)
		}
		n.reg.Rebind(name, newRef)
		return nil
	}
	if ref.IsZero() {
		return fmt.Errorf("cluster: arrive %q: no state and no reference", name)
	}
	n.reg.Rebind(name, ref)
	return nil
}
