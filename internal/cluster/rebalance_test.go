package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/clustertest"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// --- migration on membership change ------------------------------------------

func TestAddServerMigratesStateAndBindings(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	base := []string{"server-0", "server-1"}
	dir := cluster.NewDirectory(ec.Client, base)
	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})

	// Three names that will move to the newcomer, one that stays.
	moving := clustertest.PickNames(dir.Ring(), grown, "server-0", "server-2", 2)
	moving = append(moving, clustertest.PickNames(dir.Ring(), grown, "server-1", "server-2", 1)...)
	staying := clustertest.PickNames(dir.Ring(), grown, "server-1", "server-1", 1)[0]

	seeds := map[string]int64{staying: 99}
	oldRefs := map[string]wire.Ref{}
	for i, name := range moving {
		seeds[name] = int64(10 * (i + 1))
		oldRefs[name] = ec.BindCounter(dir, name, seeds[name])
	}
	ec.BindCounter(dir, staying, seeds[staying])

	reb := cluster.NewRebalancer(dir)
	stats, err := reb.AddServer(ctx, "server-2")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moved != len(moving) {
		t.Errorf("moved %d names, want %d", stats.Moved, len(moving))
	}
	if stats.Epoch != 1 || dir.Epoch() != 1 {
		t.Errorf("epoch after scale-out = %d (dir %d), want 1", stats.Epoch, dir.Epoch())
	}

	// Every moved name resolves at the newcomer with its state intact, and
	// keeps working.
	for _, name := range moving {
		ref, err := dir.Lookup(ctx, name)
		if err != nil {
			t.Fatalf("lookup %s after scale-out: %v", name, err)
		}
		if ref.Endpoint != "server-2" {
			t.Errorf("%s resolves to %s, want server-2", name, ref.Endpoint)
		}
		res, err := ec.Client.Call(ctx, ref, "Get")
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if got := res[0].(int64); got != seeds[name] {
			t.Errorf("%s lost state: got %d, want %d", name, got, seeds[name])
		}
	}
	// The staying name is untouched.
	if ref, err := dir.Lookup(ctx, staying); err != nil || ref.Endpoint != "server-1" {
		t.Errorf("staying name: ref %v err %v, want home server-1", ref, err)
	}

	// Stale direct references to moved objects fail with the typed
	// wrong-home error carrying the name and new epoch.
	var wrong *rmi.WrongHomeError
	name := moving[0]
	if _, err := ec.Client.Call(ctx, oldRefs[name], "Get"); !errors.As(err, &wrong) {
		t.Fatalf("stale ref error = %v, want *WrongHomeError", err)
	} else if wrong.Key != name || wrong.NewEpoch != 1 {
		t.Errorf("WrongHomeError = %+v, want key %s epoch 1", wrong, name)
	}

	// Every node learned the new membership.
	for i, s := range ec.Servers {
		snap := s.Node.RingState()
		if snap.Epoch != 1 || len(snap.Members) != 3 {
			t.Errorf("node %d ring state = %+v, want 3 members at epoch 1", i, snap)
		}
	}

	// Re-adding is a no-op.
	if again, err := reb.AddServer(ctx, "server-2"); err != nil || again.Moved != 0 {
		t.Errorf("second AddServer: %+v, %v; want no-op", again, err)
	}
}

func TestRemoveServerDrains(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, []string{"server-0", "server-1", "server-2"})

	seeds := map[string]int64{}
	var onVictim int
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("drain-%d", i)
		seeds[name] = int64(100 + i)
		ec.BindCounter(dir, name, seeds[name])
		if home, _ := dir.Home(name); home == "server-1" {
			onVictim++
		}
	}
	if onVictim == 0 {
		t.Fatal("test needs at least one name homed on the victim server")
	}

	reb := cluster.NewRebalancer(dir)
	stats, err := reb.RemoveServer(ctx, "server-1")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moved != onVictim {
		t.Errorf("moved %d names, want %d", stats.Moved, onVictim)
	}
	if got := dir.Servers(); len(got) != 2 {
		t.Fatalf("servers after remove = %v", got)
	}
	for name, seed := range seeds {
		ref, err := dir.Lookup(ctx, name)
		if err != nil {
			t.Fatalf("lookup %s after drain: %v", name, err)
		}
		if ref.Endpoint == "server-1" {
			t.Errorf("%s still resolves to the removed server", name)
		}
		res, err := ec.Client.Call(ctx, ref, "Get")
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if got := res[0].(int64); got != seed {
			t.Errorf("%s lost state: got %d, want %d", name, got, seed)
		}
	}

	// Removing the last member is refused.
	if _, err := reb.RemoveServer(ctx, "server-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := reb.RemoveServer(ctx, "server-2"); err == nil {
		t.Error("removing the last server succeeded, want error")
	}
}

// TestStaleDirectoryLookupRetries: a directory that did not witness the
// membership change follows the wrong-home error to the nodes, refreshes
// its ring, and retries the lookup at the new home — transparently.
func TestStaleDirectoryLookupRetries(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	base := []string{"server-0", "server-1"}
	admin := cluster.NewDirectory(ec.Client, base)
	stale := cluster.NewDirectory(ec.Client, base)

	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})
	name := clustertest.PickNames(admin.Ring(), grown, "server-0", "server-2", 1)[0]
	ec.BindCounter(admin, name, 7)

	if _, err := cluster.NewRebalancer(admin).AddServer(ctx, "server-2"); err != nil {
		t.Fatal(err)
	}

	ref, err := stale.Lookup(ctx, name)
	if err != nil {
		t.Fatalf("stale lookup: %v", err)
	}
	if ref.Endpoint != "server-2" {
		t.Errorf("stale lookup resolved to %s, want server-2", ref.Endpoint)
	}
	if e := stale.Epoch(); e != 1 {
		t.Errorf("stale directory epoch after retry = %d, want 1", e)
	}
}

// --- epoch-aware flushes -------------------------------------------------------

// TestStaleFlushRetry is the acceptance scenario: a cluster batch recorded
// BEFORE a scale-out flushes AFTER it — the old home rejects the wave with
// wrong-home, the flush refreshes the ring, re-partitions the affected
// calls to the objects' new homes, and completes in a single retry.
func TestStaleFlushRetry(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, []string{"server-0", "server-1"})
	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})

	moving := clustertest.PickNames(dir.Ring(), grown, "server-0", "server-2", 2)
	staying := clustertest.PickNames(dir.Ring(), grown, "server-1", "server-1", 1)[0]
	ec.BindCounter(dir, moving[0], 10)
	ec.BindCounter(dir, moving[1], 20)
	ec.BindCounter(dir, staying, 30)

	// Record before the membership change: the roots resolve to the OLD
	// homes.
	b := cluster.New(ec.Client, cluster.WithDirectory(dir))
	p0, err := b.RootNamed(ctx, moving[0])
	if err != nil {
		t.Fatal(err)
	}
	p1, err := b.RootNamed(ctx, moving[1])
	if err != nil {
		t.Fatal(err)
	}
	ps, err := b.RootNamed(ctx, staying)
	if err != nil {
		t.Fatal(err)
	}
	f0 := p0.Call("Add", int64(5))
	f1 := p1.Call("Get")
	fs := ps.Call("Add", int64(1))

	// The cluster grows while the batch is in flight.
	stats, err := cluster.NewRebalancer(dir).AddServer(ctx, "server-2")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moved != 2 {
		t.Fatalf("moved %d names, want 2", stats.Moved)
	}

	if err := b.Flush(ctx); err != nil {
		t.Fatalf("stale flush did not recover: %v", err)
	}
	if v, err := cluster.Typed[int64](f0).Get(); err != nil || v != 15 {
		t.Errorf("moved counter add = %v, %v; want 15", v, err)
	}
	if v, err := cluster.Typed[int64](f1).Get(); err != nil || v != 20 {
		t.Errorf("moved counter get = %v, %v; want 20", v, err)
	}
	if v, err := cluster.Typed[int64](fs).Get(); err != nil || v != 31 {
		t.Errorf("staying counter add = %v, %v; want 31", v, err)
	}
	// One regular wave plus exactly one retry wave.
	if w := b.Waves(); w != 2 {
		t.Errorf("flush took %d waves, want 2 (wave + single retry)", w)
	}

	// The retried calls really executed at the new home: read back there.
	ref, err := dir.Lookup(ctx, moving[0])
	if err != nil {
		t.Fatal(err)
	}
	if ref.Endpoint != "server-2" {
		t.Fatalf("%s not homed on server-2 after flush", moving[0])
	}
	res, err := ec.Client.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(int64); got != 15 {
		t.Errorf("counter at new home = %d, want 15", got)
	}
}

// Without a directory the batch has no way to re-route, so the wrong-home
// rejection surfaces as a per-destination flush failure.
func TestStaleFlushWithoutDirectoryFails(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, []string{"server-0", "server-1"})
	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})
	name := clustertest.PickNames(dir.Ring(), grown, "server-0", "server-2", 1)[0]
	ec.BindCounter(dir, name, 10)
	ref, err := dir.Lookup(ctx, name)
	if err != nil {
		t.Fatal(err)
	}

	b := cluster.New(ec.Client)
	f := b.Root(ref).Call("Get")

	if _, err := cluster.NewRebalancer(dir).AddServer(ctx, "server-2"); err != nil {
		t.Fatal(err)
	}

	err = b.Flush(ctx)
	var fe *cluster.FlushError
	if !errors.As(err, &fe) {
		t.Fatalf("flush error = %T %v, want *FlushError", err, err)
	}
	var wrong *rmi.WrongHomeError
	if !errors.As(err, &wrong) {
		t.Fatalf("flush error %v does not wrap *WrongHomeError", err)
	}
	if wrong.Key != name {
		t.Errorf("wrong-home key = %q, want %q", wrong.Key, name)
	}
	if _, err := f.Get(); err == nil {
		t.Error("future on stale destination settled, want error")
	}
}

// --- session close on canceled context ----------------------------------------

// boom is a remote object whose method cancels the flush's context before
// failing, simulating a pipeline abort mid-flush.
type boom struct {
	rmi.RemoteBase
	fire func()
}

func (b *boom) Boom() (int64, error) {
	// Let the other stage-0 destinations finish their waves first, so the
	// cancellation deterministically lands between stage 0 and stage 1.
	time.Sleep(100 * time.Millisecond)
	if b.fire != nil {
		b.fire()
	}
	return 0, errors.New("boom")
}

// TestSessionCloseSurvivesCancel is the regression test for the chained
// session leak: when every stage-1 call of a destination settles locally
// (its dependency failed) and the flush's context is already canceled, the
// pure session close must still reach the server — otherwise the session
// leaks until its TTL.
func TestSessionCloseSurvivesCancel(t *testing.T) {
	tc := clustertest.New(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	boomRef, err := tc.Servers[1].Peer.Export(&boom{fire: cancel}, "cluster.Boom")
	if err != nil {
		t.Fatal(err)
	}

	b := cluster.New(tc.Client)
	a := b.Root(tc.Servers[0].Ref)
	bp := b.Root(boomRef)
	a.Call("Add", int64(1)) // server-0, stage 0: opens the chained session
	g := bp.Call("Boom")    // server-1, stage 0: cancels ctx, then fails
	dep := a.Call("Add", g) // server-0, stage 1: settles locally (dep failed)
	err = b.Flush(ctx)      // stage 1 on server-0 is a pure session close

	// The dependent call never ran.
	if _, derr := dep.Get(); derr == nil {
		t.Error("dependent future settled, want the boom/cancel error")
	}
	// server-0 must not appear among the failures: its close succeeded even
	// though ctx was canceled by then.
	var fe *cluster.FlushError
	if errors.As(err, &fe) {
		for _, f := range fe.Failures {
			if f.Endpoint == "server-0" {
				t.Errorf("server-0 failed (%v): the session close used the canceled context", f.Err)
			}
		}
	}
	// The regression: no chained session may leak on server-0.
	if n := tc.Servers[0].Exec.NumSessions(); n != 0 {
		t.Errorf("server-0 leaked %d chained sessions after canceled flush", n)
	}
}

// anchored is a non-movable remote object: no factory is registered for its
// interface, so re-sharding moves only its binding while the object stays
// on the server that exported it.
type anchored struct {
	rmi.RemoteBase
	v int64
}

func (a *anchored) Get() int64 { return a.v }

// TestAddServerNonMovableKeepsObjectCallable: migrating a non-movable name
// must not tombstone its export — the re-bound reference still points at
// the original server, and calls through it keep working.
func TestAddServerNonMovableKeepsObjectCallable(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	base := []string{"server-0", "server-1"}
	dir := cluster.NewDirectory(ec.Client, base)
	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})
	name := clustertest.PickNames(dir.Ring(), grown, "server-0", "server-2", 1)[0]

	ref, err := ec.Server("server-0").Peer.Export(&anchored{v: 41}, "cluster.Anchored")
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Bind(ctx, name, ref); err != nil {
		t.Fatal(err)
	}

	if _, err := cluster.NewRebalancer(dir).AddServer(ctx, "server-2"); err != nil {
		t.Fatal(err)
	}

	// The binding moved to the newcomer but still points at server-0...
	got, err := dir.Lookup(ctx, name)
	if err != nil {
		t.Fatalf("lookup after scale-out: %v", err)
	}
	if got != ref {
		t.Errorf("non-movable binding re-resolved to %+v, want the original %+v", got, ref)
	}
	// ...and the object is still callable, both via the fresh lookup and
	// via a stale direct reference.
	res, err := ec.Client.Call(ctx, got, "Get")
	if err != nil {
		t.Fatalf("call after scale-out: %v", err)
	}
	if res[0].(int64) != 41 {
		t.Errorf("value = %v, want 41", res[0])
	}
	if _, err := ec.Client.Call(ctx, ref, "Get"); err != nil {
		t.Errorf("stale direct ref to non-movable object failed: %v", err)
	}
}

// TestAddServerRetryCompletesPartialMigration: a prior AddServer that grew
// the ring but died before migrating (simulated by mutating the ring
// directly) is completed by calling AddServer again — it must not
// short-circuit on existing membership.
func TestAddServerRetryCompletesPartialMigration(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, []string{"server-0", "server-1"})
	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})
	name := clustertest.PickNames(dir.Ring(), grown, "server-0", "server-2", 1)[0]
	ec.BindCounter(dir, name, 77)

	// Simulate the failed first attempt: membership changed, nothing moved.
	dir.Ring().Add("server-2")

	stats, err := cluster.NewRebalancer(dir).AddServer(ctx, "server-2")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moved != 1 {
		t.Fatalf("retry moved %d names, want 1", stats.Moved)
	}
	ref, err := dir.Lookup(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Endpoint != "server-2" {
		t.Errorf("%s resolves to %s after retry, want server-2", name, ref.Endpoint)
	}
	res, err := ec.Client.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 77 {
		t.Errorf("value after retried migration = %v, want 77", res[0])
	}
}

// TestRemoveServerStaleLookupRetries: the membership broadcast must land
// before the drain's tombstones, so a directory that routes a drained name
// to the removed server recovers via refresh + retry.
func TestRemoveServerStaleLookupRetries(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	all := []string{"server-0", "server-1", "server-2"}
	admin := cluster.NewDirectory(ec.Client, all)
	stale := cluster.NewDirectory(ec.Client, all)

	// A name homed on the victim.
	var victimName string
	for i := 0; ; i++ {
		n := fmt.Sprintf("vic-%d", i)
		if admin.Ring().Route(n) == "server-2" {
			victimName = n
			break
		}
	}
	ec.BindCounter(admin, victimName, 13)

	if _, err := cluster.NewRebalancer(admin).RemoveServer(ctx, "server-2"); err != nil {
		t.Fatal(err)
	}

	// The stale directory still routes to the removed server; the forward
	// there must carry it to the survivors.
	ref, err := stale.Lookup(ctx, victimName)
	if err != nil {
		t.Fatalf("stale lookup after remove: %v", err)
	}
	if ref.Endpoint == "server-2" {
		t.Errorf("stale lookup still resolves to the removed server")
	}
	if e := stale.Epoch(); e != 1 {
		t.Errorf("stale directory epoch after retry = %d, want 1", e)
	}
	res, err := ec.Client.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 13 {
		t.Errorf("value after drain = %v, want 13", res[0])
	}
}

// TestAddServerRetryAfterPartialArrive: the migration is copy-then-
// tombstone, so a run that died between the arrive and depart trips leaves
// the name live at BOTH homes. The retry must depart the old copy without
// overwriting the adopted one — even after routed traffic has mutated it.
func TestAddServerRetryAfterPartialArrive(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, []string{"server-0", "server-1"})
	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})
	name := clustertest.PickNames(dir.Ring(), grown, "server-0", "server-2", 1)[0]
	oldRef := ec.BindCounter(dir, name, 5)

	// Simulate the partial first run: ring grown, snapshot taken, copy
	// adopted at the newcomer — but the depart trip never landed.
	dir.Ring().Add("server-2")
	state := &clustertest.CounterState{N: 5}
	if err := ec.Servers[2].Node.Arrive(name, clustertest.CounterIface, true, state, wire.Ref{}); err != nil {
		t.Fatal(err)
	}
	// New-ring traffic mutates the adopted copy before the retry.
	adopted, err := registry.Lookup(ctx, ec.Client, "server-2", name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ec.Client.Call(ctx, adopted, "Add", int64(10)); err != nil {
		t.Fatal(err)
	}

	stats, err := cluster.NewRebalancer(dir).AddServer(ctx, "server-2")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moved != 1 {
		t.Fatalf("retry moved %d names, want 1 (the leftover on server-0)", stats.Moved)
	}

	// The adopted, mutated copy survived — the retry did not overwrite it
	// with the old home's stale state.
	ref, err := dir.Lookup(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Endpoint != "server-2" {
		t.Fatalf("%s resolves to %s, want server-2", name, ref.Endpoint)
	}
	res, err := ec.Client.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(int64); got != 15 {
		t.Errorf("adopted copy = %d after retry, want 15 (5 restored + 10 routed write)", got)
	}
	// The old copy is tombstoned now.
	var wrong *rmi.WrongHomeError
	if _, err := ec.Client.Call(ctx, oldRef, "Get"); !errors.As(err, &wrong) {
		t.Errorf("old copy error = %v, want *WrongHomeError", err)
	}
}

// TestStaleFlushRetrySplitDependency: when re-sharding moves one of two
// co-located roots, cross-root dataflow recorded between them can no longer
// replay on a single server. The retry must settle exactly those calls with
// a clear error carrying the wrong-home cause — and still execute the rest
// of the sub-batch at the new homes.
func TestStaleFlushRetrySplitDependency(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, []string{"server-0", "server-1"})
	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})

	// Two names on server-0; the first moves to the newcomer, the second
	// stays.
	movingName := clustertest.PickNames(dir.Ring(), grown, "server-0", "server-2", 1)[0]
	stayingName := clustertest.PickNames(dir.Ring(), grown, "server-0", "server-0", 1)[0]
	ec.BindCounter(dir, movingName, 10)
	ec.BindCounter(dir, stayingName, 100)

	b := cluster.New(ec.Client, cluster.WithDirectory(dir))
	pm, err := b.RootNamed(ctx, movingName)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := b.RootNamed(ctx, stayingName)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-root dataflow within what is, at record time, one server: the
	// staying counter absorbs the moving one's result object.
	self := pm.CallBatch("Self")
	absorbed := ps.Call("Absorb", self)
	independent := ps.Call("Add", int64(1))

	if _, err := cluster.NewRebalancer(dir).AddServer(ctx, "server-2"); err != nil {
		t.Fatal(err)
	}

	if err := b.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// The split call settled with a clear, typed-cause error.
	_, aerr := absorbed.Get()
	if aerr == nil {
		t.Fatal("split-dependency call settled, want error")
	}
	var wrong *rmi.WrongHomeError
	if !errors.As(aerr, &wrong) {
		t.Errorf("split-dependency error %v does not carry the wrong-home cause", aerr)
	}
	// The independent call on the same (staying) root executed at its home.
	if v, err := cluster.Typed[int64](independent).Get(); err != nil || v != 101 {
		t.Errorf("independent call = %v, %v; want 101", v, err)
	}
	// The moved root's producing call replayed at the new home.
	if err := self.Ok(); err != nil {
		t.Errorf("moved root's producing call failed: %v", err)
	}
}

// TestFailedDestinationSessionReaped: a destination that fails mid-pipeline
// with a chained session open drops out of the flush, so no later wave will
// close its session — the executor must reap it in the background instead
// of leaking it until the server TTL.
func TestFailedDestinationSessionReaped(t *testing.T) {
	tc := clustertest.New(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	boomRef, err := tc.Servers[1].Peer.Export(&boom{fire: cancel}, "cluster.Boom2")
	if err != nil {
		t.Fatal(err)
	}

	b := cluster.New(tc.Client)
	a := b.Root(tc.Servers[0].Ref)
	bp := b.Root(boomRef)
	f0 := a.Call("Add", int64(1)) // server-0, stage 0: opens the chained session
	bp.Call("Boom")               // server-1, stage 0: cancels ctx after a delay
	a.Call("Add", f0)             // server-0, stage 1: REAL pending call under canceled ctx

	err = b.Flush(ctx)
	var fe *cluster.FlushError
	if !errors.As(err, &fe) {
		t.Fatalf("flush error = %T %v, want *FlushError (server-0's stage-1 flush ran under a canceled context)", err, err)
	}

	// The orphaned session on server-0 is reaped in the background.
	deadline := time.Now().Add(2 * time.Second)
	for tc.Servers[0].Exec.NumSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server-0 still holds %d chained sessions after failed flush", tc.Servers[0].Exec.NumSessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
