package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rmi"
	"repro/internal/transport"
	"repro/internal/wire"
)

// stage.go is the "execute" phase of the cluster flush pipeline: it runs
// the planned stages in order. Each destination keeps ONE core.Batch across
// all its stages, flushed with FlushAndContinue between stages and Flush on
// its last — the chained-batch session (§3.5) is what lets a later stage
// reference a same-server result from an earlier one by sequence number,
// with no extra traffic. Between stages the executor materializes staged
// inputs: exported refs of remote results are pulled from the response and
// forwarded by reference; future values are spliced in by value.

// shipTimeout bounds one replication ship (the Append call carrying a wave
// to a follower). Ships past the quorum ack keep running after replicate
// returns, so they must have a deadline of their own — the flush's ctx may
// never cancel. Variable so tests can shrink it.
var shipTimeout = 30 * time.Second

// destState is one destination's execution state across stages.
type destState struct {
	group *group
	cb    *core.Batch
	// lastStage is the last stage this destination participates in; its
	// flush there closes the server session.
	lastStage int
	// sessionOpen is true after a FlushAndContinue left a server session
	// behind.
	sessionOpen bool
	// failed poisons the destination: every call of its later stages
	// settles locally with this error.
	failed error
	// repl is the destination's replication pipeline, armed by open when
	// the batch is epoch-aware over a replicated ring and every root is a
	// named movable; nil otherwise.
	repl *replState
}

// replState is one replicated destination's shipping identity: the chain id
// linking its waves through one shadow session on each follower, the root
// names/interfaces in payload order, and the payload of the wave just
// executed (captured by the core batch's OnShip hook, consumed by
// Batch.replicate on the wave goroutine).
type replState struct {
	chain   string
	names   []string
	ifaces  []string
	seq     int
	payload any
}

// chainSeq disambiguates replication chains minted by one client process;
// combined with the peer's DGC client id the chain is globally unique.
var chainSeq atomic.Uint64

// open creates the destination's multi-root core.Batch and rewires the
// group's root proxies onto it. Caller holds b.mu.
func (ds *destState) open(b *Batch) error {
	var opts []core.Option
	if b.policy != nil {
		opts = append(opts, core.WithPolicy(b.policy))
	}
	if b.parallelRoots {
		opts = append(opts, core.WithParallelRoots())
	}
	cb := core.New(b.peer, ds.group.roots[0], opts...)
	ds.group.rootProxies[ds.group.roots[0]].core = cb.Root()
	for _, ref := range ds.group.roots[1:] {
		cp, err := cb.AddRoot(ref)
		if err != nil {
			// Unreachable: every root in a group shares its endpoint.
			return err
		}
		ds.group.rootProxies[ref].core = cp
	}
	ds.cb = cb
	b.armReplication(ds)
	return nil
}

// armReplication decides whether ds's waves replicate and, if so, wires the
// payload capture. Replication applies only when the batch is epoch-aware
// (WithDirectory) over a replicated ring (R > 1) and every root of the
// destination is addressed by cluster-wide name (RootNamed) with a
// registered movable factory — an anonymous or system root has no shard
// identity to replicate under, so its destination flushes unreplicated.
// Caller holds b.mu.
func (b *Batch) armReplication(ds *destState) {
	if b.dir == nil || b.dir.Replication() <= 1 {
		return
	}
	names := make([]string, len(ds.group.roots))
	ifaces := make([]string, len(ds.group.roots))
	for i, ref := range ds.group.roots {
		p := ds.group.rootProxies[ref]
		if p.key == "" {
			return
		}
		if _, ok := movableFactory(ref.Iface); !ok {
			return
		}
		names[i] = p.key
		ifaces[i] = ref.Iface
	}
	rs := &replState{
		chain:  fmt.Sprintf("%s#%d", b.peer.ClientID(), chainSeq.Add(1)),
		names:  names,
		ifaces: ifaces,
	}
	ds.repl = rs
	ds.cb.OnShip(func(req any, _ bool) { rs.payload = req })
}

// replicate ships the wave that just executed on ds's primary to every
// follower of its roots' shards and blocks until the write quorum holds it.
// It runs on the wave goroutine, after the primary flush succeeded and
// before the stage barrier, so the ack a caller observes — Flush returning,
// futures settling — implies the wave survives the primary's death.
//
// The shipped record is fenced by the ring epoch read together with the
// owner lists: a follower whose node adopted a newer ring rejects it
// (StaleShipError), failing the flush rather than letting a stale owner
// list smuggle a write into a re-placed shard. A returned *QuorumError
// fails the destination WITHOUT the stale-route retry: the primary already
// applied the wave, so a re-send could double-apply.
func (b *Batch) replicate(ctx context.Context, ds *destState) error {
	rs := ds.repl
	if rs == nil || rs.payload == nil {
		return nil // unreplicated destination, or a wave with no wire work
	}
	payload := rs.payload
	rs.payload = nil
	primary := ds.group.endpoint

	owners := make([][]string, len(rs.names))
	var epoch uint64
	followers := make(map[string]bool)
	for i, name := range rs.names {
		owners[i], epoch = b.dir.Owners(name)
		for _, ep := range owners[i] {
			if ep != primary {
				followers[ep] = true
			}
		}
	}
	if len(followers) == 0 {
		return nil
	}
	rec := &ReplRecord{
		ID:      fmt.Sprintf("%s/%d", rs.chain, rs.seq),
		Chain:   rs.chain,
		Primary: primary,
		Epoch:   epoch,
		Names:   rs.names,
		Ifaces:  rs.ifaces,
		Payload: payload,
	}
	rs.seq++
	b.quorumWaits.Inc()
	var start time.Time
	if b.reg != nil {
		start = b.reg.Now()
	}
	type shipAck struct {
		ep  string
		err error
	}
	// Buffered to the fan-out so stragglers past the quorum ack never block.
	// Each ship is bounded by shipTimeout: once quorum acks, replicate
	// returns and the stragglers run on detached — a straggler stuck on a
	// wedged destination's connection (killed mid-ship, partitioned with the
	// frames in flight) would otherwise block in Call for as long as the
	// flush's ctx lives, and every quorum-early flush past that follower
	// leaks a goroutine.
	results := make(chan shipAck, len(followers))
	// Read the timeout once at spawn: a detached straggler outlives
	// replicate, and the package var is only synchronized up to the flush's
	// return.
	timeout := shipTimeout
	for ep := range followers {
		go func(ep string) {
			sctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			_, err := b.peer.Call(sctx, ReplicaRef(ep), "Append", rec)
			results <- shipAck{ep: ep, err: err}
		}(ep)
	}
	// Quorum is judged per NAME over that name's own owner list — the wave
	// spans every root of the destination, and each root's shard must hold
	// it. The wait returns as soon as every name is at quorum: under
	// WithQuorum(W<R) the slowest followers keep replicating in the
	// background while the flush acks.
	required := make([]int, len(rs.names))
	acked := make([]int, len(rs.names))
	unsatisfied := 0
	for i := range rs.names {
		required[i] = len(owners[i])
		if b.quorum > 0 && b.quorum < required[i] {
			required[i] = b.quorum
		}
		acked[i] = 1 // the primary holds the wave: its flush succeeded
		if acked[i] < required[i] {
			unsatisfied++
		}
	}
	acks := make(map[string]error, len(followers))
	for n := 0; n < len(followers) && unsatisfied > 0; n++ {
		a := <-results
		acks[a.ep] = a.err
		if a.err != nil {
			continue
		}
		for i := range rs.names {
			if acked[i] >= required[i] {
				continue
			}
			for _, ep := range owners[i] {
				if ep == a.ep {
					acked[i]++
					if acked[i] >= required[i] {
						unsatisfied--
					}
					break
				}
			}
		}
	}
	if b.reg != nil {
		b.replLag.Observe(b.reg.Now().Sub(start).Nanoseconds())
	}
	if unsatisfied == 0 {
		return nil
	}
	// Every follower answered and some name still missed its quorum:
	// report the worst miss.
	var worst *QuorumError
	for i, name := range rs.names {
		if acked[i] >= required[i] {
			continue
		}
		var ferrs []error
		for _, ep := range owners[i] {
			if ep == primary {
				continue
			}
			if err, ok := acks[ep]; ok && err != nil {
				ferrs = append(ferrs, fmt.Errorf("%s: %w", ep, err))
			}
		}
		qe := &QuorumError{Name: name, Acked: acked[i], Required: required[i], Err: errors.Join(ferrs...)}
		if worst == nil || qe.Required-qe.Acked > worst.Required-worst.Acked {
			worst = qe
		}
	}
	return worst
}

// execute runs the stage schedule. Per stage: translate each destination's
// sub-batch into its core.Batch (resolving staged inputs from earlier
// waves), fan the destinations out in parallel, then harvest exported
// result refs for the next wave. Wall-clock cost per stage is the slowest
// destination's round trip; total cost is one wave per stage.
func (b *Batch) execute(ctx context.Context, stages [][]*subBatch) error {
	dests := make(map[*group]*destState)
	for s, subs := range stages {
		for _, sb := range subs {
			ds := dests[sb.group]
			if ds == nil {
				ds = &destState{group: sb.group}
				dests[sb.group] = ds
			}
			ds.lastStage = s
		}
	}

	var flushErr *FlushError
	reportFailure := func(ds *destState, stage int, err error) {
		ds.failed = err
		if flushErr == nil {
			flushErr = &FlushError{Servers: len(dests)}
		}
		var qe *QuorumError
		if errors.As(err, &qe) && flushErr.Quorum == nil {
			flushErr.Quorum = qe
		}
		flushErr.Failures = append(flushErr.Failures, ServerError{
			Endpoint: ds.group.endpoint,
			Stage:    stage,
			Err:      err,
		})
	}

	for s, subs := range stages {
		// Translate this stage under the batch lock, so concurrent readers
		// of futures and proxies observe a consistent rewiring.
		b.mu.Lock()
		var wave []*destState
		keep := make(map[*destState]bool)
		for _, sb := range subs {
			ds := dests[sb.group]
			if ds.failed != nil {
				settleSub(sb, ds.failed)
				continue
			}
			if ds.cb == nil {
				if err := ds.open(b); err != nil {
					reportFailure(ds, s, err)
					settleSub(sb, err)
					continue
				}
			}
			b.translate(ds, sb)
			// Flush when the stage recorded calls for this destination, or
			// when an earlier wave left a session open and this is the
			// destination's last chance to close it.
			if ds.cb.PendingCalls() > 0 || (s == ds.lastStage && ds.sessionOpen) {
				keep[ds] = s < ds.lastStage
				wave = append(wave, ds)
			}
		}
		b.mu.Unlock()
		if len(wave) == 0 {
			// No wire work of our own, but this stage may hold readonly
			// followers joined to flights that other batches lead; they must
			// still settle.
			b.resolveFlights(ctx, subs)
			continue
		}

		// Fan out: one flush per destination, concurrently; barrier before
		// the next stage may consume this one's results.
		var waveStart time.Time
		if b.reg != nil {
			waveStart = b.reg.Now()
		}
		errs := make([]error, len(wave))
		var wg sync.WaitGroup
		for i, ds := range wave {
			wg.Add(1)
			go func(i int, ds *destState) {
				defer wg.Done()
				if keep[ds] {
					if errs[i] = ds.cb.FlushAndContinue(ctx); errs[i] == nil {
						errs[i] = b.replicate(ctx, ds)
					}
					return
				}
				fctx := ctx
				if ds.cb.PendingCalls() == 0 {
					// A pure session close (every call of the last stage
					// settled locally): attempt it even when the pipeline's
					// own context is already canceled, like the lease-release
					// wave below — otherwise the server-side chained session
					// leaks until its TTL.
					fctx = context.WithoutCancel(ctx)
				}
				if errs[i] = ds.cb.Flush(fctx); errs[i] == nil {
					errs[i] = b.replicate(ctx, ds)
				}
			}(i, ds)
		}
		wg.Wait()
		if b.reg != nil {
			b.stageNs.Observe(b.reg.Now().Sub(waveStart).Nanoseconds())
		}

		b.mu.Lock()
		b.waves++
		b.flushWaves.Inc()
		var retries []*staleRetry
		for i, ds := range wave {
			if errs[i] != nil {
				if sb := stageSub(subs, ds); sb != nil && b.canRetryStale(ds, s, errs[i]) {
					retries = append(retries, &staleRetry{ds: ds, sb: sb, cause: errs[i]})
					continue
				}
				reportFailure(ds, s, errs[i])
				// A quorum miss needs explicit local settlement: the wave
				// DID execute on the primary, so this stage's core futures
				// hold values — but the flush must not surface them as if
				// the wave were durable.
				var qe *QuorumError
				if errors.As(errs[i], &qe) {
					if sb := stageSub(subs, ds); sb != nil {
						settleSub(sb, errs[i])
					}
				}
				// A failed destination drops out of the pipeline here, so no
				// later flush will release the chained session an earlier
				// wave may have opened; reap it best-effort in the
				// background (detached from the flush's own context, which
				// may be what just failed).
				if sess := ds.cb.Session(); sess != 0 {
					go func(endpoint string, sess uint64) {
						cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), core.DefaultSessionTTL/4)
						defer cancel()
						_ = core.ReleaseSession(cctx, b.peer, endpoint, sess)
					}(ds.group.endpoint, sess)
				}
				continue
			}
			ds.sessionOpen = keep[ds]
		}
		b.mu.Unlock()
		if len(retries) > 0 {
			// Stale routes: the destination rejected the wave because one of
			// its roots migrated to a new home. Refresh the shard map,
			// re-partition the affected calls, and retry once — before the
			// next stage, whose sub-batches may consume these results.
			b.retryStale(ctx, s, retries, reportFailure)
		}
		// Settle the stage's singleflight traffic: leaders publish their
		// outcome (filling the cache on success), followers adopt it. This
		// runs after the stale retry so a retried leader publishes its final
		// outcome, not the transient wrong-home rejection.
		b.resolveFlights(ctx, subs)
		b.mu.Lock()
		// Harvest the refs of results pinned in this wave and lease them
		// (rmi.Peer.HoldRef) so they outlive the server's marshal grace for
		// as long as the pipeline still needs them.
		for _, sb := range subs {
			if dests[sb.group].failed != nil {
				continue
			}
			for _, c := range sb.calls {
				if !c.export || c.failed != nil || c.proxy == nil || c.proxy.core == nil {
					continue
				}
				ref, err := c.proxy.core.ExportedRef()
				if err != nil {
					continue // the call itself failed; consumers settle with its error
				}
				b.peer.HoldRef(ref)
				b.held = append(b.held, ref)
			}
		}
		b.mu.Unlock()
	}

	// The pipeline is done: drop the bridging leases in one batched DGC
	// wave (one Clean per endpoint, endpoints in parallel). Destinations
	// that received a forwarded ref hold their own lease while they retain
	// the stub, and the lease-holder chain unwinds through DGC. Cleanup
	// must outlive the flush's own context: a cancellation that aborted
	// the waves is exactly when prompt lease release matters most.
	b.mu.Lock()
	held := b.held
	b.held = nil
	b.mu.Unlock()
	if len(held) > 0 {
		b.peer.ReleaseRefs(context.WithoutCancel(ctx), held)
	}

	if flushErr != nil {
		b.mu.Lock()
		if b.retried {
			flushErr.Retries = 1
		}
		b.mu.Unlock()
		return flushErr
	}
	return nil
}

// translate records one sub-batch's calls into the destination's
// core.Batch, resolving staged inputs settled by earlier waves. A call
// whose input failed settles locally with that error — the failure
// propagates through the dataflow without aborting independent calls.
// Caller holds b.mu.
func (b *Batch) translate(ds *destState, sb *subBatch) {
	for _, c := range sb.calls {
		if c.failed != nil {
			continue // settled earlier (e.g. a split dependency in a retry)
		}
		// A cacheable readonly call joins the cache's singleflight table
		// here, at the edge of the wire: a fill that landed since record
		// time settles it outright, the first call per key leads (executes
		// and publishes), and every duplicate — in this batch or any other
		// sharing the cache — becomes a follower that records nothing and
		// settles from the leader's flight in resolveFlights. On a stale
		// retry the call is re-translated; the flight guard keeps its role.
		if c.kind == kindValue && c.ckey != "" {
			if c.flight == nil {
				if v, ok := b.cache.Get(c.ckey); ok {
					settleValue(c, v)
					continue
				}
				c.flight, c.leader = b.cache.Begin(c.ckey)
			}
			if !c.leader {
				continue
			}
		}
		args, err := b.resolveInputs(c)
		if err != nil {
			settleLocal(c, err)
			continue
		}
		switch c.kind {
		case kindRemote:
			if c.export {
				c.proxy.core = c.target.core.CallBatchExport(c.method, args...)
			} else {
				c.proxy.core = c.target.core.CallBatch(c.method, args...)
			}
		default: // kindValue
			c.future.inner = c.target.core.Call(c.method, args...)
		}
	}
}

// resolveInputs materializes c's arguments for its core.Batch:
//
//   - same-server proxies pass through as core proxies (the server resolves
//     them by sequence number, across stages via the chained session);
//   - cross-server root proxies pass as their refs (known statically);
//   - cross-server result proxies pass as the exported ref pinned by the
//     producer's wave — forwarded by reference, the destination sees a stub;
//   - futures pass as their settled values — spliced by value.
//
// An error means a dependency failed and c must settle locally with it.
func (b *Batch) resolveInputs(c *recordedCall) ([]any, error) {
	if o := c.target.origin; o != nil && o.failed != nil {
		return nil, o.failed
	}
	args := make([]any, len(c.args))
	for i, a := range c.args {
		switch x := a.(type) {
		case *Proxy:
			if x.origin != nil && x.origin.failed != nil {
				return nil, x.origin.failed
			}
			if x.group == c.group {
				args[i] = x.core
				continue
			}
			if x.origin == nil {
				args[i] = x.rootRef
				continue
			}
			if x.core == nil {
				return nil, fmt.Errorf("cluster: internal: argument %d of %s references an untranslated call", i, c.method)
			}
			ref, err := x.core.ExportedRef()
			if err != nil {
				return nil, err
			}
			args[i] = ref
		case *Future:
			if x.settled {
				args[i] = x.val // cache hit or coalesced value, known statically
				continue
			}
			if x.origin != nil && x.origin.failed != nil {
				return nil, x.origin.failed
			}
			v, err := x.inner.Get()
			if err != nil {
				return nil, err
			}
			args[i] = v
		default:
			args[i] = a
		}
	}
	return args, nil
}

// staleRetry is one destination whose wave was rejected with a wrong-home
// error and qualifies for the single stale-route retry.
type staleRetry struct {
	ds    *destState
	sb    *subBatch
	cause error
}

// stageSub finds the sub-batch of this stage belonging to ds, if any.
func stageSub(subs []*subBatch, ds *destState) *subBatch {
	for _, sb := range subs {
		if sb.group == ds.group {
			return sb
		}
	}
	return nil
}

// canRetryStale decides whether a failed destination wave may be retried
// against a refreshed shard map. Caller holds b.mu.
//
// The retry re-resolves the destination's named roots (Proxy.key, set by
// RootNamed) and replays this stage's calls against fresh core batches at
// the new homes, so it is only sound when (a) nothing server-side is lost
// with the old session — the batch must be epoch-aware (WithDirectory),
// this must be the destination's last stage, and no earlier wave may have
// left a chained session open (earlier results live only in that session
// and cannot follow the object to its new home) — and (b) the wave is
// known NOT to have executed. Two failure classes qualify: a wrong-home
// rejection (the server refused the wave before running it) and a dial
// failure (transport.DialError: the request never left the client — the
// shape a crashed primary produces after failover re-homed its shards). A
// mid-call connection loss does NOT qualify: the server may have executed
// the wave before the response was lost. Neither does a quorum miss: the
// primary applied the wave, a re-send could double-apply. One retry per
// flush.
func (b *Batch) canRetryStale(ds *destState, stage int, err error) bool {
	if b.dir == nil || b.retried || ds.sessionOpen || stage != ds.lastStage {
		return false
	}
	var qe *QuorumError
	if errors.As(err, &qe) {
		return false
	}
	var wrong *rmi.WrongHomeError
	if errors.As(err, &wrong) {
		return true
	}
	var dial *transport.DialError
	return errors.As(err, &dial)
}

// retryStale performs the stale-route retry: refresh the shard map once,
// then re-partition and re-flush each rejected sub-batch at the roots' new
// homes — rejected destinations retry concurrently, like any other wave.
// Failures here are final: the retry is spent.
func (b *Batch) retryStale(ctx context.Context, stage int, retries []*staleRetry, reportFailure func(*destState, int, error)) {
	b.mu.Lock()
	b.retried = true
	b.wrongHome.Inc()
	b.mu.Unlock()

	if err := b.dir.Refresh(ctx); err != nil {
		b.mu.Lock()
		for _, r := range retries {
			reportFailure(r.ds, stage, fmt.Errorf("%w (ring refresh failed: %v)", r.cause, err))
			settleSub(r.sb, r.ds.failed)
		}
		b.mu.Unlock()
		return
	}
	var waveStart time.Time
	if b.reg != nil {
		waveStart = b.reg.Now()
	}
	flushed := make([]bool, len(retries))
	var wg sync.WaitGroup
	for i, r := range retries {
		wg.Add(1)
		go func(i int, r *staleRetry) {
			defer wg.Done()
			flushed[i] = b.retryOne(ctx, stage, r, reportFailure)
		}(i, r)
	}
	wg.Wait()
	b.mu.Lock()
	for _, f := range flushed {
		if f {
			b.waves++
			b.flushWaves.Inc()
			if b.reg != nil {
				b.stageNs.Observe(b.reg.Now().Sub(waveStart).Nanoseconds())
			}
			break
		}
	}
	b.mu.Unlock()
}

// retryOne re-resolves one rejected sub-batch's named roots through the
// refreshed directory, rewires its calls into per-new-home groups, and
// flushes them as a fresh parallel wave. It reports whether anything was
// actually flushed (the caller counts the retry pass as one wave).
func (b *Batch) retryOne(ctx context.Context, stage int, r *staleRetry, reportFailure func(*destState, int, error)) bool {
	// Re-resolve the named roots first, outside the batch lock — lookups
	// are network calls and independent per root, so they fan out in
	// parallel like every other cluster-wide control path. Un-named roots
	// keep their recorded ref: if one of them was the migrated object there
	// is no key to re-resolve it by, and the retried wave will fail
	// wrong-home again, this time finally.
	roots := r.sb.group.roots
	resolved := make([]wire.Ref, len(roots))
	lerrs := make([]error, len(roots))
	var lwg sync.WaitGroup
	for i, ref := range roots {
		p := r.sb.group.rootProxies[ref]
		if p.key == "" {
			resolved[i] = ref
			continue
		}
		lwg.Add(1)
		go func(i int, key string) {
			defer lwg.Done()
			nr, err := b.dir.Lookup(ctx, key)
			if err != nil {
				lerrs[i] = fmt.Errorf("stale-route retry: re-resolve %q: %w", key, err)
				return
			}
			resolved[i] = nr
		}(i, p.key)
	}
	lwg.Wait()
	if lerr := errors.Join(lerrs...); lerr != nil {
		b.mu.Lock()
		reportFailure(r.ds, stage, lerr)
		settleSub(r.sb, r.ds.failed)
		b.mu.Unlock()
		return false
	}
	newRefs := make(map[*Proxy]wire.Ref, len(roots))
	for i, ref := range roots {
		newRefs[r.sb.group.rootProxies[ref]] = resolved[i]
	}

	b.mu.Lock()
	// Rewire the roots into one fresh group per new home, then re-home every
	// call (and the proxies it settles) to its root's group, so partition
	// and translate see a consistent recording again.
	groups := make(map[string]*group)
	for _, ref := range r.sb.group.roots {
		p := r.sb.group.rootProxies[ref]
		nr := newRefs[p]
		g, ok := groups[nr.Endpoint]
		if !ok {
			g = &group{endpoint: nr.Endpoint, rootProxies: make(map[wire.Ref]*Proxy)}
			groups[nr.Endpoint] = g
		}
		g.roots = append(g.roots, nr)
		g.rootProxies[nr] = p
		p.rootRef = nr
		p.group = g
		p.core = nil
	}
	newGroups := make(map[*group]bool, len(groups))
	for _, g := range groups {
		newGroups[g] = true
	}
	for _, c := range r.sb.calls {
		g := rootOf(c.target).group
		c.group = g
		c.target.group = g
		if c.proxy != nil {
			c.proxy.group = g
		}
	}
	// Cross-root dataflow that the re-sharding split across homes cannot be
	// replayed by this retry: the producer's result would now have to cross
	// the network mid-wave. Settle those calls with a clear error carrying
	// the original wrong-home cause instead of an internal failure.
	for _, c := range r.sb.calls {
		if c.failed != nil {
			continue
		}
		for _, a := range c.args {
			x, ok := a.(*Proxy)
			if !ok || x.origin == nil || x.group == c.group || !newGroups[x.group] {
				continue
			}
			settleLocal(c, fmt.Errorf(
				"stale-route retry: %s consumes a result the re-sharding moved to %q while the call now targets %q: %w",
				c.method, x.group.endpoint, c.group.endpoint, r.cause))
			break
		}
	}
	subs := partition(r.sb.calls)
	type retryDest struct {
		ds *destState
		sb *subBatch
	}
	var wave []retryDest
	for _, sb := range subs {
		ds := &destState{group: sb.group, lastStage: stage}
		if sb.group.endpoint == "" {
			err := fmt.Errorf("stale-route retry: %w", ErrNoEndpoint)
			reportFailure(ds, stage, err)
			settleSub(sb, err)
			continue
		}
		if err := ds.open(b); err != nil {
			reportFailure(ds, stage, err)
			settleSub(sb, err)
			continue
		}
		b.translate(ds, sb)
		if ds.cb.PendingCalls() > 0 {
			wave = append(wave, retryDest{ds: ds, sb: sb})
		}
	}
	b.mu.Unlock()
	if len(wave) == 0 {
		return false
	}

	errs := make([]error, len(wave))
	var wg sync.WaitGroup
	for i, rd := range wave {
		wg.Add(1)
		go func(i int, rd retryDest) {
			defer wg.Done()
			// A retried wave replicates like any other: its destinations
			// were re-opened against the refreshed ring, so the record
			// ships to the new homes' followers under the new epoch.
			if errs[i] = rd.ds.cb.Flush(ctx); errs[i] == nil {
				errs[i] = b.replicate(ctx, rd.ds)
			}
		}(i, rd)
	}
	wg.Wait()

	b.mu.Lock()
	for i, rd := range wave {
		if errs[i] != nil {
			reportFailure(rd.ds, stage, errs[i])
			settleSub(rd.sb, errs[i])
		}
	}
	b.mu.Unlock()
	return true
}

// resolveFlights settles the singleflight state of a stage's readonly
// calls once its waves (including any stale retry) ran. Leaders publish
// first — their outcome is already decided, either a local settlement
// (c.failed) or their core future — so same-batch followers can never
// deadlock waiting below; a successful leader also fills the cache,
// generation-guarded against writes that raced the flush. Followers then
// adopt their flight's outcome. Flight hygiene: every flight Begin'd in
// translate is Finished (leaders) or Waited (followers) exactly once here,
// on every path, including waves that failed wholesale.
func (b *Batch) resolveFlights(ctx context.Context, subs []*subBatch) {
	b.mu.Lock()
	var leaders, followers []*recordedCall
	for _, sb := range subs {
		for _, c := range sb.calls {
			if c.flight == nil {
				continue
			}
			if c.leader {
				leaders = append(leaders, c)
			} else {
				followers = append(followers, c)
			}
		}
	}
	for _, c := range leaders {
		var v any
		var err error
		switch {
		case c.failed != nil:
			err = c.failed
		case c.future == nil || c.future.inner == nil:
			err = fmt.Errorf("cluster: internal: readonly call %s left untranslated", c.method)
		default:
			v, err = c.future.inner.Get()
		}
		if err == nil {
			b.cache.Put(c.ckey, c.cobj, v, c.cgen, c.cepoch)
		}
		b.cache.Finish(c.ckey, c.flight, v, err)
		c.flight = nil
	}
	b.mu.Unlock()

	for _, c := range followers {
		v, err := c.flight.Wait(ctx)
		b.mu.Lock()
		if err != nil {
			settleLocal(c, err)
		} else {
			settleValue(c, v)
		}
		c.flight = nil
		b.mu.Unlock()
	}
}

// settleLocal marks one call as settled client-side with err: its future
// or proxy rethrows err, and calls consuming it settle the same way.
// Caller holds b.mu.
func settleLocal(c *recordedCall, err error) {
	c.failed = err
	if c.future != nil {
		c.future.err = err
	}
	if c.proxy != nil {
		c.proxy.failedLocal = err
	}
}

// settleValue settles a readonly call client-side with a cached or
// coalesced value. Caller holds b.mu.
func settleValue(c *recordedCall, v any) {
	if c.future != nil {
		c.future.settled = true
		c.future.val = v
	}
}

// settleSub settles every call of a sub-batch locally (its destination
// failed in an earlier stage). Caller holds b.mu.
func settleSub(sb *subBatch, err error) {
	for _, c := range sb.calls {
		settleLocal(c, err)
	}
}
