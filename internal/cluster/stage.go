package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
)

// stage.go is the "execute" phase of the cluster flush pipeline: it runs
// the planned stages in order. Each destination keeps ONE core.Batch across
// all its stages, flushed with FlushAndContinue between stages and Flush on
// its last — the chained-batch session (§3.5) is what lets a later stage
// reference a same-server result from an earlier one by sequence number,
// with no extra traffic. Between stages the executor materializes staged
// inputs: exported refs of remote results are pulled from the response and
// forwarded by reference; future values are spliced in by value.

// destState is one destination's execution state across stages.
type destState struct {
	group *group
	cb    *core.Batch
	// lastStage is the last stage this destination participates in; its
	// flush there closes the server session.
	lastStage int
	// sessionOpen is true after a FlushAndContinue left a server session
	// behind.
	sessionOpen bool
	// failed poisons the destination: every call of its later stages
	// settles locally with this error.
	failed error
}

// open creates the destination's multi-root core.Batch and rewires the
// group's root proxies onto it. Caller holds b.mu.
func (ds *destState) open(b *Batch) error {
	var opts []core.Option
	if b.policy != nil {
		opts = append(opts, core.WithPolicy(b.policy))
	}
	cb := core.New(b.peer, ds.group.roots[0], opts...)
	ds.group.rootProxies[ds.group.roots[0]].core = cb.Root()
	for _, ref := range ds.group.roots[1:] {
		cp, err := cb.AddRoot(ref)
		if err != nil {
			// Unreachable: every root in a group shares its endpoint.
			return err
		}
		ds.group.rootProxies[ref].core = cp
	}
	ds.cb = cb
	return nil
}

// execute runs the stage schedule. Per stage: translate each destination's
// sub-batch into its core.Batch (resolving staged inputs from earlier
// waves), fan the destinations out in parallel, then harvest exported
// result refs for the next wave. Wall-clock cost per stage is the slowest
// destination's round trip; total cost is one wave per stage.
func (b *Batch) execute(ctx context.Context, stages [][]*subBatch) error {
	dests := make(map[*group]*destState)
	for s, subs := range stages {
		for _, sb := range subs {
			ds := dests[sb.group]
			if ds == nil {
				ds = &destState{group: sb.group}
				dests[sb.group] = ds
			}
			ds.lastStage = s
		}
	}

	var flushErr *FlushError
	reportFailure := func(ds *destState, stage int, err error) {
		ds.failed = err
		if flushErr == nil {
			flushErr = &FlushError{Servers: len(dests)}
		}
		flushErr.Failures = append(flushErr.Failures, ServerError{
			Endpoint: ds.group.endpoint,
			Stage:    stage,
			Err:      err,
		})
	}

	for s, subs := range stages {
		// Translate this stage under the batch lock, so concurrent readers
		// of futures and proxies observe a consistent rewiring.
		b.mu.Lock()
		var wave []*destState
		keep := make(map[*destState]bool)
		for _, sb := range subs {
			ds := dests[sb.group]
			if ds.failed != nil {
				settleSub(sb, ds.failed)
				continue
			}
			if ds.cb == nil {
				if err := ds.open(b); err != nil {
					reportFailure(ds, s, err)
					settleSub(sb, err)
					continue
				}
			}
			b.translate(ds, sb)
			// Flush when the stage recorded calls for this destination, or
			// when an earlier wave left a session open and this is the
			// destination's last chance to close it.
			if ds.cb.PendingCalls() > 0 || (s == ds.lastStage && ds.sessionOpen) {
				keep[ds] = s < ds.lastStage
				wave = append(wave, ds)
			}
		}
		b.mu.Unlock()
		if len(wave) == 0 {
			continue
		}

		// Fan out: one flush per destination, concurrently; barrier before
		// the next stage may consume this one's results.
		errs := make([]error, len(wave))
		var wg sync.WaitGroup
		for i, ds := range wave {
			wg.Add(1)
			go func(i int, ds *destState) {
				defer wg.Done()
				if keep[ds] {
					errs[i] = ds.cb.FlushAndContinue(ctx)
				} else {
					errs[i] = ds.cb.Flush(ctx)
				}
			}(i, ds)
		}
		wg.Wait()

		b.mu.Lock()
		b.waves++
		for i, ds := range wave {
			if errs[i] != nil {
				reportFailure(ds, s, errs[i])
				continue
			}
			ds.sessionOpen = keep[ds]
		}
		// Harvest the refs of results pinned in this wave and lease them
		// (rmi.Peer.HoldRef) so they outlive the server's marshal grace for
		// as long as the pipeline still needs them.
		for _, sb := range subs {
			if dests[sb.group].failed != nil {
				continue
			}
			for _, c := range sb.calls {
				if !c.export || c.failed != nil || c.proxy == nil || c.proxy.core == nil {
					continue
				}
				ref, err := c.proxy.core.ExportedRef()
				if err != nil {
					continue // the call itself failed; consumers settle with its error
				}
				b.peer.HoldRef(ref)
				b.held = append(b.held, ref)
			}
		}
		b.mu.Unlock()
	}

	// The pipeline is done: drop the bridging leases in one batched DGC
	// wave (one Clean per endpoint, endpoints in parallel). Destinations
	// that received a forwarded ref hold their own lease while they retain
	// the stub, and the lease-holder chain unwinds through DGC. Cleanup
	// must outlive the flush's own context: a cancellation that aborted
	// the waves is exactly when prompt lease release matters most.
	b.mu.Lock()
	held := b.held
	b.held = nil
	b.mu.Unlock()
	if len(held) > 0 {
		b.peer.ReleaseRefs(context.WithoutCancel(ctx), held)
	}

	if flushErr != nil {
		return flushErr
	}
	return nil
}

// translate records one sub-batch's calls into the destination's
// core.Batch, resolving staged inputs settled by earlier waves. A call
// whose input failed settles locally with that error — the failure
// propagates through the dataflow without aborting independent calls.
// Caller holds b.mu.
func (b *Batch) translate(ds *destState, sb *subBatch) {
	for _, c := range sb.calls {
		args, err := b.resolveInputs(c)
		if err != nil {
			settleLocal(c, err)
			continue
		}
		switch c.kind {
		case kindRemote:
			if c.export {
				c.proxy.core = c.target.core.CallBatchExport(c.method, args...)
			} else {
				c.proxy.core = c.target.core.CallBatch(c.method, args...)
			}
		default: // kindValue
			c.future.inner = c.target.core.Call(c.method, args...)
		}
	}
}

// resolveInputs materializes c's arguments for its core.Batch:
//
//   - same-server proxies pass through as core proxies (the server resolves
//     them by sequence number, across stages via the chained session);
//   - cross-server root proxies pass as their refs (known statically);
//   - cross-server result proxies pass as the exported ref pinned by the
//     producer's wave — forwarded by reference, the destination sees a stub;
//   - futures pass as their settled values — spliced by value.
//
// An error means a dependency failed and c must settle locally with it.
func (b *Batch) resolveInputs(c *recordedCall) ([]any, error) {
	if o := c.target.origin; o != nil && o.failed != nil {
		return nil, o.failed
	}
	args := make([]any, len(c.args))
	for i, a := range c.args {
		switch x := a.(type) {
		case *Proxy:
			if x.origin != nil && x.origin.failed != nil {
				return nil, x.origin.failed
			}
			if x.group == c.group {
				args[i] = x.core
				continue
			}
			if x.origin == nil {
				args[i] = x.rootRef
				continue
			}
			if x.core == nil {
				return nil, fmt.Errorf("cluster: internal: argument %d of %s references an untranslated call", i, c.method)
			}
			ref, err := x.core.ExportedRef()
			if err != nil {
				return nil, err
			}
			args[i] = ref
		case *Future:
			if x.origin != nil && x.origin.failed != nil {
				return nil, x.origin.failed
			}
			v, err := x.inner.Get()
			if err != nil {
				return nil, err
			}
			args[i] = v
		default:
			args[i] = a
		}
	}
	return args, nil
}

// settleLocal marks one call as settled client-side with err: its future
// or proxy rethrows err, and calls consuming it settle the same way.
// Caller holds b.mu.
func settleLocal(c *recordedCall, err error) {
	c.failed = err
	if c.future != nil {
		c.future.err = err
	}
	if c.proxy != nil {
		c.proxy.failedLocal = err
	}
}

// settleSub settles every call of a sub-batch locally (its destination
// failed in an earlier stage). Caller holds b.mu.
func settleSub(sb *subBatch, err error) {
	for _, c := range sb.calls {
		settleLocal(c, err)
	}
}
