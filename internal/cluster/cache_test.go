package cluster_test

// Tests of the lease-backed result cache and singleflight coalescing layer:
// zero-round-trip full-hit flushes, record-time invalidation on write,
// epoch-bump lease drops, the true-concurrency rendezvous proving one wire
// call per coalesced group, and Directory.Refresh coalescing.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/clustertest"
	"repro/internal/netsim"
	"repro/internal/rcache"
	"repro/internal/rmi"
)

func clientCounter(ec *clustertest.Cluster, name string) int64 {
	return ec.ClientStats.Snapshot().Counter(name)
}

// TestClusterCacheFullHitFlushIsZeroRoundTrips is the acceptance pin: after
// one filling flush, an identical batch spanning two servers settles every
// call from the lease cache, records nothing, executes zero waves, and
// writes zero transport frames.
func TestClusterCacheFullHitFlushIsZeroRoundTrips(t *testing.T) {
	ec := clustertest.New(t, 2)
	ctx := context.Background()
	cache := cluster.NewCache(ec.Client, nil, rcache.WithTTL(time.Minute))

	b1 := cluster.New(ec.Client, cluster.WithCache(cache))
	f0 := b1.Root(ec.Servers[0].Ref).CallRO("Get")
	f1 := b1.Root(ec.Servers[1].Ref).CallRO("Get")
	if err := b1.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	for _, f := range []*cluster.Future{f0, f1} {
		if v, err := cluster.Typed[int64](f).Get(); err != nil || v != 0 {
			t.Fatalf("filling read = (%d, %v), want (0, nil)", v, err)
		}
	}
	if b1.Waves() != 1 {
		t.Fatalf("filling flush ran %d waves, want 1", b1.Waves())
	}

	frames := clientCounter(ec, "transport.frames_out")
	b2 := cluster.New(ec.Client, cluster.WithCache(cache))
	g0 := b2.Root(ec.Servers[0].Ref).CallRO("Get")
	g1 := b2.Root(ec.Servers[1].Ref).CallRO("Get")
	// Hits settle at record time: readable before the flush.
	for _, f := range []*cluster.Future{g0, g1} {
		if v, err := cluster.Typed[int64](f).Get(); err != nil || v != 0 {
			t.Fatalf("pre-flush cached read = (%d, %v), want (0, nil)", v, err)
		}
	}
	if n := b2.PendingCalls(); n != 0 {
		t.Fatalf("full-hit batch recorded %d calls, want 0", n)
	}
	if err := b2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if b2.Waves() != 0 {
		t.Fatalf("full-hit flush ran %d waves, want 0", b2.Waves())
	}
	if d := clientCounter(ec, "transport.frames_out") - frames; d != 0 {
		t.Fatalf("full-hit flush wrote %d frames, want 0", d)
	}
	if hits := clientCounter(ec, "cache.hits"); hits != 2 {
		t.Fatalf("cache.hits = %d, want 2", hits)
	}
}

// TestClusterCacheWriteInvalidatesOnlyItsObject: a write recorded against
// one root drops that object's leases at record time, leaving the other
// server's entries servable.
func TestClusterCacheWriteInvalidatesOnlyItsObject(t *testing.T) {
	ec := clustertest.New(t, 2)
	ctx := context.Background()
	cache := cluster.NewCache(ec.Client, nil, rcache.WithTTL(time.Minute))

	b1 := cluster.New(ec.Client, cluster.WithCache(cache))
	_ = b1.Root(ec.Servers[0].Ref).CallRO("Get")
	_ = b1.Root(ec.Servers[1].Ref).CallRO("Get")
	if err := b1.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if n := cache.Len(); n != 2 {
		t.Fatalf("cache has %d entries after fills, want 2", n)
	}

	bw := cluster.New(ec.Client, cluster.WithCache(cache))
	_ = bw.Root(ec.Servers[0].Ref).Call("Add", int64(5))
	if n := cache.Len(); n != 1 {
		t.Fatalf("write recorded but %d leases live, want 1 (other object's)", n)
	}
	if err := bw.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	b2 := cluster.New(ec.Client, cluster.WithCache(cache))
	f0 := b2.Root(ec.Servers[0].Ref).CallRO("Get") // invalidated: re-fetches
	f1 := b2.Root(ec.Servers[1].Ref).CallRO("Get") // untouched: still a hit
	if err := b2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if v, err := cluster.Typed[int64](f0).Get(); err != nil || v != 5 {
		t.Fatalf("post-write read = (%d, %v), want (5, nil)", v, err)
	}
	if v, err := cluster.Typed[int64](f1).Get(); err != nil || v != 0 {
		t.Fatalf("unrelated read = (%d, %v), want (0, nil)", v, err)
	}
	if invs := clientCounter(ec, "cache.invalidations"); invs == 0 {
		t.Fatal("cache.invalidations not counted")
	}
}

// TestClusterCacheEpochBumpDropsLeases: a ring-epoch bump (membership
// change / migration) makes every older lease unservable.
func TestClusterCacheEpochBumpDropsLeases(t *testing.T) {
	ec := clustertest.New(t, 2)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, ec.Endpoints())
	cache := cluster.NewCache(ec.Client, dir, rcache.WithTTL(time.Minute))

	b1 := cluster.New(ec.Client, cluster.WithCache(cache))
	_ = b1.Root(ec.Servers[0].Ref).CallRO("Get")
	if err := b1.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	dir.Ring().Reset(dir.Servers(), dir.Epoch()+1)

	b2 := cluster.New(ec.Client, cluster.WithCache(cache))
	f := b2.Root(ec.Servers[0].Ref).CallRO("Get")
	//brmivet:ignore futurederef asserts the stale-epoch lease is NOT served before flush
	if _, err := f.Get(); err == nil {
		t.Fatal("stale-epoch lease served before flush")
	}
	if err := b2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if v, err := cluster.Typed[int64](f).Get(); err != nil || v != 0 {
		t.Fatalf("re-fetched read = (%d, %v), want (0, nil)", v, err)
	}
	// The stale-epoch lease must never be served: no hit anywhere.
	if hits := clientCounter(ec, "cache.hits"); hits != 0 {
		t.Fatalf("cache.hits = %d, want 0 (stale-epoch lease served)", hits)
	}
}

// gatedCounter blocks Get until its gate opens, so concurrent flushes can
// be held in flight deterministically; it counts invocations.
type gatedCounter struct {
	rmi.RemoteBase
	mu    sync.Mutex
	calls int
	gate  chan struct{}
}

func (g *gatedCounter) Get() int64 {
	g.mu.Lock()
	g.calls++
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return 42
}

func (g *gatedCounter) Calls() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls
}

// TestClusterCoalesceRendezvous is the true-concurrency rendezvous: N
// batches sharing one cache flush the same readonly call while the leader's
// wave is held server-side. Every other flush must coalesce onto the
// leader's flight — exactly one wire invocation for the whole group.
func TestClusterCoalesceRendezvous(t *testing.T) {
	ec := clustertest.New(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	gc := &gatedCounter{gate: make(chan struct{})}
	ref, err := ec.Servers[0].Peer.Export(gc, "cachetest.GatedCounter")
	if err != nil {
		t.Fatal(err)
	}
	cache := cluster.NewCache(ec.Client, nil, rcache.WithTTL(time.Minute))

	const n = 4
	values := make([]int64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := cluster.New(ec.Client, cluster.WithCache(cache))
			f := b.Root(ref).CallRO("Get")
			if errs[i] = b.Flush(ctx); errs[i] != nil {
				return
			}
			values[i], errs[i] = cluster.Typed[int64](f).Get()
		}(i)
	}

	// Rendezvous: the leader's wave is blocked inside Get; wait until every
	// other flush has joined its flight, then release.
	deadline := time.Now().Add(20 * time.Second)
	for clientCounter(ec, "cache.coalesced") < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d flushes coalesced before the deadline",
				clientCounter(ec, "cache.coalesced"), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gc.gate)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("flush %d: %v", i, errs[i])
		}
		if values[i] != 42 {
			t.Fatalf("flush %d read %d, want 42", i, values[i])
		}
	}
	if calls := gc.Calls(); calls != 1 {
		t.Fatalf("coalesced group invoked the server %d times, want exactly 1", calls)
	}
	// The leader's fill serves later batches without any flight.
	b := cluster.New(ec.Client, cluster.WithCache(cache))
	f := b.Root(ref).CallRO("Get")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := cluster.Typed[int64](f).Get(); v != 42 {
		t.Fatalf("post-rendezvous read %d, want 42", v)
	}
	if calls := gc.Calls(); calls != 1 {
		t.Fatalf("cached read re-invoked the server (%d calls)", calls)
	}
}

// TestDirectoryRefreshCoalesces: concurrent Refresh calls share one node
// poll. The leader is held in flight by link latency; followers join it.
func TestDirectoryRefreshCoalesces(t *testing.T) {
	ec := clustertest.New(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, ep := range ec.Endpoints() {
		ec.Network.SetLinkFaults(clustertest.ClientHost, ep,
			netsim.LinkFaults{ExtraLatency: 150 * time.Millisecond})
	}
	dir := cluster.NewDirectory(ec.Client, ec.Endpoints())

	const n = 6
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); errs[0] = dir.Refresh(ctx) }()
	// Wait for the leader to be inside the poll (it counts on entry), then
	// pile the followers on.
	deadline := time.Now().Add(20 * time.Second)
	for clientCounter(ec, "cluster.dir_refreshes") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader refresh never started")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); errs[i] = dir.Refresh(ctx) }(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("refresh %d: %v", i, err)
		}
	}
	if polls := clientCounter(ec, "cluster.dir_refreshes"); polls > 2 {
		t.Fatalf("%d concurrent refreshes ran %d polls, want coalescing (<= 2)", n, polls)
	}
	if clientCounter(ec, "cluster.dir_refresh_coalesced") == 0 {
		t.Fatal("no refresh reported as coalesced")
	}
}

// TestDirectoryStaleLookupsCoalesceRefresh: N goroutines hitting the same
// wrong-home rejection share the refresh poll instead of issuing N
// identical fan-outs, and every lookup still resolves at the new home.
func TestDirectoryStaleLookupsCoalesceRefresh(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	base := []string{"server-0", "server-1"}
	admin := cluster.NewDirectory(ec.Client, base)
	stale := cluster.NewDirectory(ec.Client, base)

	grown := cluster.NewRing([]string{"server-0", "server-1", "server-2"})
	name := clustertest.PickNames(admin.Ring(), grown, "server-0", "server-2", 1)[0]
	ec.BindCounter(admin, name, 7)
	if _, err := cluster.NewRebalancer(admin).AddServer(ctx, "server-2"); err != nil {
		t.Fatal(err)
	}

	// Slow the client's links so the stale lookups overlap: they all fail
	// wrong-home around the same instant and their refreshes coalesce.
	for _, ep := range []string{"server-0", "server-1", "server-2"} {
		ec.Network.SetLinkFaults(clustertest.ClientHost, ep,
			netsim.LinkFaults{ExtraLatency: 100 * time.Millisecond})
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	eps := make([]string, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			ref, err := stale.Lookup(ctx, name)
			errs[i], eps[i] = err, ref.Endpoint
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("lookup %d: %v", i, errs[i])
		}
		if eps[i] != "server-2" {
			t.Fatalf("lookup %d resolved to %s, want server-2", i, eps[i])
		}
	}
	if polls := clientCounter(ec, "cluster.dir_refreshes"); polls > 2 {
		t.Fatalf("%d stale lookups ran %d node polls, want coalescing (<= 2)", n, polls)
	}
	if e := stale.Epoch(); e != 1 {
		t.Fatalf("stale directory epoch after coalesced refresh = %d, want 1", e)
	}
}
