package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/rcache"
	"repro/internal/rmi"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Exported errors of the cluster batch layer.
var (
	// ErrCrossServer reports a staged data dependency rejected by a
	// single-stage batch (WithSingleStage): a proxy recorded on one server
	// used as an argument of a call bound for a different server, or a
	// future's value spliced into a later call. Replaying either needs an
	// extra round-trip wave; single-stage batches keep the strict
	// one-round-trip-per-destination guarantee and reject the recording
	// instead. Default batches accept both and stage the flush
	// (DESIGN.md, "Cluster staging rules").
	ErrCrossServer = errors.New("cluster: cross-server data dependency")

	// ErrNoEndpoint reports a Root ref that carries no server endpoint.
	ErrNoEndpoint = errors.New("cluster: root ref has no endpoint")
)

// Batch is a cluster-wide recording session: the multi-server analogue of
// core.Batch, flushed as a record → plan → execute pipeline.
//
// Record: calls against proxies rooted on any number of servers go into one
// global log. A result produced on server A may feed a call bound for
// server B — as a proxy argument (the result stays remote and is forwarded
// by reference) or as a future argument (the settled value is spliced in).
//
// Plan: Flush builds the dependency DAG over the log and schedules it into
// stages — stage 0 holds every call with no staged inputs, stage k the
// calls whose staged inputs settle in earlier waves — each stage
// partitioned per destination exactly like a single-stage batch.
//
// Execute: stages run in order; within a stage every destination's
// sub-batch is one core.Batch round trip, fanned out in parallel, so a
// stage costs the slowest server's round trip and a depth-D pipeline costs
// D+1 round-trip waves instead of one per call. A dependency-free
// recording plans to a single stage and behaves exactly like the
// single-stage flush (one parallel wave; one round trip per destination).
//
// Like core.Batch, a Batch records one batch at a time and is not meant to
// be shared by concurrent client goroutines; the implementation is
// internally synchronized, so misuse corrupts no memory, only recording
// order.
type Batch struct {
	peer          *rmi.Peer
	policy        *core.Policy
	singleStage   bool
	parallelRoots bool
	dir           *Directory
	cache         *rcache.Cache

	mu     sync.Mutex
	groups map[string]*group // keyed by server endpoint
	calls  []*recordedCall
	closed bool
	// waves counts the parallel fan-out barriers the flush executed.
	waves int
	// held are the exported result refs this batch leased between stages.
	held []wire.Ref
	// recErr is a sticky recording violation, reported by Flush.
	recErr error
	// retried is set once the flush has spent its single stale-route retry.
	retried bool
	// failure poisons every future when recording failed; per-server flush
	// failures stay per-group instead (see Flush).
	failure error

	// quorum is the write quorum W (WithQuorum): how many replicas,
	// counting the primary, must hold a wave before it acks. 0 means all.
	quorum int

	// Metrics, wired from the peer's stats registry (nil and therefore
	// no-ops when the peer is uninstrumented).
	reg         *stats.Registry
	flushWaves  *stats.Counter   // cluster.flush_waves
	stageNs     *stats.Histogram // cluster.stage_ns
	wrongHome   *stats.Counter   // cluster.wrong_home_retries
	replLag     *stats.Histogram // cluster.replication_lag
	quorumWaits *stats.Counter   // cluster.quorum_waits
}

// Option configures a cluster Batch.
type Option func(*Batch)

// WithPolicy sets the exception policy applied within every per-server
// sub-batch (default core.AbortPolicy, scoped per server: a failure on one
// server never aborts another server's sub-batch).
func WithPolicy(p *core.Policy) Option {
	return func(b *Batch) { b.policy = p }
}

// WithSingleStage restores the strict one-wave flush: any recording that
// would need staged execution — a cross-server RESULT proxy argument, or a
// future's value spliced into a later call — is rejected at record time
// with ErrCrossServer, so a flush is guaranteed to cost exactly one
// parallel round-trip wave (one round trip per destination). Cross-server
// ROOT proxies stay legal as arguments: their refs splice in statically
// without an extra wave.
func WithSingleStage() Option {
	return func(b *Batch) { b.singleStage = true }
}

// WithDirectory makes the batch epoch-aware: roots may be addressed by
// cluster-wide name (RootNamed), and a flush that hits a wrong-home
// rejection — the target migrated to a new home after recording started —
// refreshes the shard map from the directory, re-partitions the affected
// calls to their new homes, and retries once instead of failing.
func WithDirectory(d *Directory) Option {
	return func(b *Batch) { b.dir = d }
}

// WithCache attaches a lease-backed result cache to the batch. Readonly
// calls recorded with Proxy.CallRO may then settle from the cache (a batch
// whose every call hits completes in zero round trips), identical in-flight
// readonly calls across the cache's batches coalesce into one wire call,
// and every non-readonly call invalidates the leases of the root object it
// descends from. Share one cache per client — NewCache builds one wired to
// the directory's ring epoch.
func WithCache(c *rcache.Cache) Option {
	return func(b *Batch) { b.cache = c }
}

// NewCache creates a lease cache for cluster batches: instrumented through
// the peer's stats registry (hit/miss/evict/coalesce counters, nil-safe)
// and stamped with the directory's ring epoch, so every membership change
// or migration the directory learns of drops the older leases. Pass the
// result to WithCache on every batch of this client.
func NewCache(peer *rmi.Peer, dir *Directory, opts ...rcache.Option) *rcache.Cache {
	var base []rcache.Option
	if dir != nil {
		base = append(base, rcache.WithEpoch(dir.Epoch))
	}
	return rcache.New(peer.Stats(), append(base, opts...)...)
}

// WithQuorum sets the write quorum W for replicated flushes: a wave acks
// once W replicas — the primary plus W-1 followers — hold it, instead of
// waiting for every follower (the default, W=0 meaning "all"). W is capped
// per key at that key's replica count, so WithQuorum(2) on a ring with R=3
// is a majority quorum and on R=1 degenerates to primary-only. Lowering W
// trades durability for latency: a wave acked at W<R is only guaranteed to
// survive failover while at least one of its W holders does (see DESIGN.md,
// "Replication & failover").
func WithQuorum(w int) Option {
	return func(b *Batch) { b.quorum = w }
}

// WithParallelRoots forwards core.WithParallelRoots to every per-server
// sub-batch: a destination whose sub-batch the server proves root-partition
// independent (the plan shows no inter-root dependency within the stage)
// replays its roots concurrently. Per-root program order is preserved;
// cross-root interleaving on one server is relaxed, exactly as documented
// for the core option. Dependent sub-batches are unaffected — the server
// falls back to sequential replay when independence cannot be proven.
func WithParallelRoots() Option {
	return func(b *Batch) { b.parallelRoots = true }
}

// New creates an empty cluster batch. Add destinations with Root.
func New(peer *rmi.Peer, opts ...Option) *Batch {
	b := &Batch{
		peer:   peer,
		groups: make(map[string]*group),
	}
	for _, o := range opts {
		o(b)
	}
	if r := peer.Stats(); r != nil {
		b.reg = r
		b.flushWaves = r.Counter("cluster.flush_waves")
		b.stageNs = r.Histogram("cluster.stage_ns")
		b.wrongHome = r.Counter("cluster.wrong_home_retries")
		b.replLag = r.Histogram("cluster.replication_lag")
		b.quorumWaits = r.Counter("cluster.quorum_waits")
	}
	return b
}

// Root returns the recording proxy for the remote object ref, registering
// its server as a destination of this batch. Any number of roots may share
// a server; they all fold into that destination's single sub-batch. Calling
// Root twice with the same ref returns the same proxy.
func (b *Batch) Root(ref wire.Ref) *Proxy {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.groups[ref.Endpoint]
	if !ok {
		g = &group{
			endpoint:    ref.Endpoint,
			rootProxies: make(map[wire.Ref]*Proxy),
		}
		if ref.Endpoint == "" {
			b.fail(fmt.Errorf("%w: object %d", ErrNoEndpoint, ref.ObjID))
		}
		b.groups[ref.Endpoint] = g
	}
	if p, ok := g.rootProxies[ref]; ok {
		return p
	}
	p := &Proxy{b: b, group: g, rootRef: ref, isRoot: true}
	g.roots = append(g.roots, ref)
	g.rootProxies[ref] = p
	return p
}

// RootNamed resolves a cluster-wide name through the batch's directory
// (WithDirectory) and returns its recording proxy, remembering the name so
// a stale-route flush failure can re-resolve the root at its new home and
// retry. It is the epoch-aware way to address rebalanceable objects.
func (b *Batch) RootNamed(ctx context.Context, name string) (*Proxy, error) {
	if b.dir == nil {
		return nil, errors.New("cluster: RootNamed requires a batch built with WithDirectory")
	}
	ref, err := b.dir.Lookup(ctx, name)
	if err != nil {
		return nil, err
	}
	p := b.Root(ref)
	p.key = name
	return p, nil
}

// Peer returns the underlying RMI peer.
func (b *Batch) Peer() *rmi.Peer { return b.peer }

// PendingCalls returns the number of recorded, unflushed calls.
func (b *Batch) PendingCalls() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.calls)
}

// Destinations returns the distinct server endpoints with recorded calls,
// sorted.
func (b *Batch) Destinations() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	seen := make(map[string]bool)
	for _, c := range b.calls {
		seen[c.group.endpoint] = true
	}
	out := make([]string, 0, len(seen))
	for ep := range seen {
		out = append(out, ep)
	}
	sort.Strings(out)
	return out
}

// Waves returns the number of round-trip waves (parallel fan-out barriers)
// the flush executed: the stage count of the plan, minus stages that
// settled entirely locally. A dependency-free recording flushes in one
// wave; a depth-D pipeline in D+1.
func (b *Batch) Waves() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waves
}

// StaleRetried reports whether the flush spent its single stale-route
// retry (wrong-home rejection, refreshed shard map, re-flush at the new
// homes). It is also surfaced on FlushError.Retries when the flush failed.
func (b *Batch) StaleRetried() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retried
}

// fail records a sticky recording violation. Caller holds b.mu.
func (b *Batch) fail(err error) {
	if b.recErr == nil {
		b.recErr = err
	}
}

// record validates and appends one invocation. The argument scan classifies
// staged inputs: cross-server proxies and futures are legal by default (the
// planner schedules the extra waves) and rejected under WithSingleStage.
func (b *Batch) record(target *Proxy, kind int, method string, args []any) *recordedCall {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.recordLocked(target, kind, method, args, false)
}

// recordLocked is record with b.mu held; ro marks the call //brmi:readonly
// (any other call invalidates the cache leases of the objects it reaches).
func (b *Batch) recordLocked(target *Proxy, kind int, method string, args []any, ro bool) *recordedCall {
	if b.closed {
		b.fail(core.ErrBatchClosed)
		return nil
	}
	if target.b != b {
		b.fail(fmt.Errorf("%w: call %s", core.ErrForeignProxy, method))
		return nil
	}
	if b.recErr != nil {
		return nil
	}
	for i, a := range args {
		switch x := a.(type) {
		case *Proxy:
			if x.b != b {
				b.fail(fmt.Errorf("%w: argument %d of %s", core.ErrForeignProxy, i, method))
				return nil
			}
			if x.group == target.group {
				continue
			}
			if x.origin == nil {
				// A root on another server needs no staged execution: its
				// ref is known statically and splices into the sub-batch
				// as-is, so even single-stage batches accept it.
				continue
			}
			if b.singleStage {
				b.fail(fmt.Errorf("%w: argument %d of %s was recorded on %q but the call targets %q; "+
					"this batch is single-stage (WithSingleStage) — drop the option to let the "+
					"planner forward the result between waves",
					ErrCrossServer, i, method, x.group.endpoint, target.group.endpoint))
				return nil
			}
		case *Future:
			if x.b != b {
				b.fail(fmt.Errorf("%w: argument %d of %s", core.ErrForeignProxy, i, method))
				return nil
			}
			if x.settled {
				// A cache-hit future already holds its value; it splices in
				// statically like a literal, needs no staged wave, and is
				// legal even under WithSingleStage.
				continue
			}
			if b.singleStage {
				b.fail(fmt.Errorf("%w: argument %d of %s splices a future's value, which settles only "+
					"after its producing wave; this batch is single-stage (WithSingleStage)",
					ErrCrossServer, i, method))
				return nil
			}
			if x.origin == nil {
				b.fail(fmt.Errorf("cluster: argument %d of %s is an unrecorded future", i, method))
				return nil
			}
		}
	}
	// A recorded non-readonly call is a potential write: drop the cached
	// leases of every root object it can reach, at record time, so readonly
	// calls later in program order can never serve the pre-write value.
	if !ro && b.cache != nil {
		if root := rootOf(target); !root.rootRef.IsZero() {
			b.cache.InvalidateObject(rcache.ObjKey(root.rootRef))
		}
		for _, a := range args {
			if x, ok := a.(*Proxy); ok {
				if root := rootOf(x); !root.rootRef.IsZero() {
					b.cache.InvalidateObject(rcache.ObjKey(root.rootRef))
				}
			}
		}
	}

	c := &recordedCall{
		index:  len(b.calls),
		group:  target.group,
		kind:   kind,
		target: target,
		method: method,
		args:   args,
		ro:     ro,
	}
	b.calls = append(b.calls, c)
	return c
}

// rootOf walks a proxy's producer chain back to its root proxy.
func rootOf(p *Proxy) *Proxy {
	for p.origin != nil {
		p = p.origin.target
	}
	return p
}

// Flush runs the plan/execute pipeline over the recording: plan the stage
// schedule, then execute the stages in order, fanning each stage out to its
// destinations in parallel and forwarding results between waves.
//
// A recording violation fails the whole batch: Flush returns the
// *core.BatchError and every future rethrows it. Server failures stay
// per-destination: Flush returns a *FlushError naming each failed server
// (and the stage it failed in), futures depending — directly or through
// the dataflow — on a failed server rethrow that server's error, and
// independent futures still hold their values.
func (b *Batch) Flush(ctx context.Context) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return core.ErrBatchClosed
	}
	b.closed = true
	if b.recErr != nil {
		err := &core.BatchError{Err: b.recErr}
		b.failure = err
		b.mu.Unlock()
		return err
	}
	nstages, err := planStages(b.calls)
	if err != nil {
		ferr := &core.BatchError{Err: err}
		b.failure = ferr
		b.mu.Unlock()
		return ferr
	}
	stages := buildStages(b.calls, nstages)
	b.calls = nil
	b.mu.Unlock()

	return b.execute(ctx, stages)
}

// FlushError reports the destinations whose sub-batch failed, and in which
// stage. Futures and proxies depending on a failed destination rethrow the
// per-server error; the rest of the batch settled normally.
type FlushError struct {
	// Servers is how many destinations the flush planned to reach.
	Servers int
	// Retries is how many stale-route retries the flush spent before
	// failing (0 or 1: a flush retries a wrong-home rejection at most
	// once). A non-zero value means the reported failures are final — the
	// shard map was refreshed and the affected calls re-flushed at their
	// new homes before the error surfaced.
	Retries int
	// Failures lists each failed destination, in failure order.
	Failures []ServerError
	// Quorum is set when a failure is a replication quorum miss: the wave
	// executed on its primary but too few followers acknowledged the
	// shipped record before the flush gave up. It carries how many replicas
	// acked vs how many the quorum required (worst miss when several
	// destinations missed). nil when no failure was quorum-related.
	Quorum *QuorumError
}

// ServerError is one destination's flush failure.
type ServerError struct {
	Endpoint string
	// Stage is the pipeline stage (round-trip wave) the failure occurred in.
	Stage int
	Err   error
}

func (e *FlushError) Error() string {
	parts := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		parts[i] = fmt.Sprintf("%s (stage %d): %v", f.Endpoint, f.Stage, f.Err)
	}
	return fmt.Sprintf("cluster: flush failed on %d of %d servers: %s",
		len(e.Failures), e.Servers, strings.Join(parts, "; "))
}

// Unwrap exposes the per-server errors to errors.Is / errors.As.
func (e *FlushError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f.Err
	}
	return out
}

// QuorumError reports a replicated wave that executed on its primary but
// was acknowledged by too few replicas: Acked replicas (counting the
// primary) hold the record, the quorum required Required. The wave's calls
// fail — the client must not treat the flush as durable — but the flush
// never retries it: the primary already applied the wave, so a re-send
// could double-apply. Err joins the individual follower failures.
type QuorumError struct {
	// Name is the root name whose follower set missed quorum (the worst
	// miss, when the wave spans several named roots).
	Name     string
	Acked    int
	Required int
	Err      error
}

func (e *QuorumError) Error() string {
	return fmt.Sprintf("cluster: replication quorum not met for %q: %d of %d replicas acked: %v",
		e.Name, e.Acked, e.Required, e.Err)
}

func (e *QuorumError) Unwrap() error { return e.Err }

// Proxy is a cluster batch object: the recording stub for one remote object
// on one destination server. It mirrors core.Proxy minus cursors.
type Proxy struct {
	b      *Batch
	group  *group
	isRoot bool
	// rootRef is the exported object this proxy stands for (roots only).
	rootRef wire.Ref
	// key is the cluster-wide name this root was resolved from (RootNamed);
	// it is what lets a stale-route retry re-resolve the root's new home.
	key string
	// origin is the recorded call that produces this proxy's object (nil
	// for roots). The planner reads it to build the dependency DAG.
	origin *recordedCall
	// core is the single-server proxy this cluster proxy was rewired to
	// when its stage was translated; nil before that.
	core *core.Proxy
	// failedLocal is set when the call settled client-side without reaching
	// its server: a failed dependency, or a destination that failed in an
	// earlier stage.
	failedLocal error
}

// Batch returns the cluster batch this proxy records into.
func (p *Proxy) Batch() *Batch { return p.b }

// Endpoint returns the destination server this proxy's calls are bound for.
func (p *Proxy) Endpoint() string { return p.group.endpoint }

// Call records a method invocation whose result is a value, returning its
// future. The future may itself be passed as an argument of a later call —
// on any server — and the flush splices the settled value in, costing one
// extra round-trip wave.
func (p *Proxy) Call(method string, args ...any) *Future {
	f := &Future{b: p.b}
	if c := p.b.record(p, kindValue, method, args); c != nil {
		c.future = f
		f.origin = c
	}
	return f
}

// CallRO records a method invocation declared //brmi:readonly. On a batch
// carrying a lease cache (WithCache), a cacheable call — root target, plain
// marshalable arguments — consults the cache at record time: a hit returns
// an already-settled future and the batch records nothing (a batch whose
// every call hits flushes in zero round trips); a miss records normally and
// at flush time joins the cache's singleflight table, so identical
// in-flight readonly calls across this client's batches collapse into one
// wire call. Without a cache (or for uncacheable shapes) it is Call.
func (p *Proxy) CallRO(method string, args ...any) *Future {
	b := p.b
	f := &Future{b: b}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cache != nil && p.isRoot && p.b == b && !b.closed && b.recErr == nil {
		if key, ok := rcache.Key(p.rootRef, method, args); ok {
			if v, hit := b.cache.Get(key); hit {
				f.settled = true
				f.val = v
				return f
			}
			if c := b.recordLocked(p, kindValue, method, args, true); c != nil {
				c.future = f
				f.origin = c
				c.ckey = key
				c.cobj = rcache.ObjKey(p.rootRef)
				c.cgen = b.cache.Gen(c.cobj)
				c.cepoch = b.cache.Epoch()
			}
			return f
		}
	}
	if c := b.recordLocked(p, kindValue, method, args, true); c != nil {
		c.future = f
		f.origin = c
	}
	return f
}

// CallBatch records a method invocation whose result is a remote object;
// the result stays on its server and the returned proxy records further
// calls on it. Passing the proxy as an argument of a call bound for a
// DIFFERENT server makes the flush pin the result as an exported reference
// and forward it by reference in the next wave.
func (p *Proxy) CallBatch(method string, args ...any) *Proxy {
	np := &Proxy{b: p.b, group: p.group}
	if c := p.b.record(p, kindRemote, method, args); c != nil {
		c.proxy = np
		np.origin = c
	}
	return np
}

// Ok rethrows any exception this batch object depends on. Before flush it
// returns core.ErrPending for non-root proxies.
func (p *Proxy) Ok() error {
	p.b.mu.Lock()
	failure, local, inner := p.b.failure, p.failedLocal, p.core
	p.b.mu.Unlock()
	if failure != nil {
		return failure
	}
	if local != nil {
		return local
	}
	if inner == nil {
		if p.isRoot {
			return nil
		}
		return core.ErrPending
	}
	return inner.Ok()
}

// Future is the placeholder for a cluster-batched call's result. It is
// created at recording time and bound to its destination's core.Future when
// its stage is translated.
type Future struct {
	b *Batch
	// origin is the recorded call producing this future's value.
	origin *recordedCall
	inner  *core.Future
	// err is set when the call settled client-side without reaching its
	// server (failed dependency or failed destination in an earlier stage).
	err error
	// settled/val carry a value that never bound to a core future: a cache
	// hit at record time, or a coalesced readonly call settled from another
	// call's singleflight.
	settled bool
	val     any
}

// Get returns the settled value. Before flush it returns core.ErrPending;
// after a recording violation it returns the batch error; after a
// destination or dependency failure it rethrows the originating error.
func (f *Future) Get() (any, error) {
	f.b.mu.Lock()
	failure, local, inner := f.b.failure, f.err, f.inner
	settled, val := f.settled, f.val
	f.b.mu.Unlock()
	if settled {
		return val, nil
	}
	if failure != nil {
		return nil, failure
	}
	if local != nil {
		return nil, local
	}
	if inner == nil {
		return nil, core.ErrPending
	}
	//brmivet:ignore futurederef inner is only assigned at flush time, so delegating here is the settled path
	return inner.Get()
}

// Err returns only the error part of Get, for void methods.
func (f *Future) Err() error {
	_, err := f.Get()
	return err
}

// Typed views f as producing values of type T, converting wire-decoded
// dynamic values like core.TypedFuture does.
func Typed[T any](f *Future) TypedFuture[T] { return TypedFuture[T]{f: f} }

// TypedFuture wraps a cluster Future with a concrete result type.
type TypedFuture[T any] struct {
	f *Future
}

// Get returns the settled, typed value.
func (tf TypedFuture[T]) Get() (T, error) {
	var zero T
	v, err := tf.f.Get()
	if err != nil {
		return zero, err
	}
	return core.Convert[T](v)
}

// Future returns the underlying dynamic future.
func (tf TypedFuture[T]) Future() *Future { return tf.f }
