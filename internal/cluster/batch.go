package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// Exported errors of the cluster batch layer.
var (
	// ErrCrossServer reports a cross-server data dependency: a proxy
	// recorded on one server used as an argument of a call bound for a
	// different server. Replaying it would need the first server's result
	// shipped to the second mid-batch; this version rejects the recording
	// instead (DESIGN.md, "Cluster partitioning rules"). Dependencies
	// between objects on the SAME server are fine, whatever root they hang
	// off: the partitioner folds them into one multi-root sub-batch.
	ErrCrossServer = errors.New("cluster: cross-server data dependency")

	// ErrNoEndpoint reports a Root ref that carries no server endpoint.
	ErrNoEndpoint = errors.New("cluster: root ref has no endpoint")
)

// Batch is a cluster-wide recording session: the multi-server analogue of
// core.Batch. One Batch records calls against proxies rooted on any number
// of servers; Flush partitions the recording into per-destination
// sub-batches (per-server program order preserved), executes one core.Batch
// per destination in parallel, and merges the futures back, so the caller
// observes a single batch whose flush costs roughly the slowest server's
// round trip.
//
// Like core.Batch, a Batch records one batch at a time and is not meant to
// be shared by concurrent client goroutines; the implementation is
// internally synchronized, so misuse corrupts no memory, only recording
// order.
type Batch struct {
	peer   *rmi.Peer
	policy *core.Policy

	mu     sync.Mutex
	groups map[string]*group // keyed by server endpoint
	calls  []*recordedCall
	closed bool
	// recErr is a sticky recording violation, reported by Flush.
	recErr error
	// failure poisons every future when recording failed; per-server flush
	// failures stay per-group instead (see Flush).
	failure error
}

// Option configures a cluster Batch.
type Option func(*Batch)

// WithPolicy sets the exception policy applied within every per-server
// sub-batch (default core.AbortPolicy, scoped per server: a failure on one
// server never aborts another server's sub-batch).
func WithPolicy(p *core.Policy) Option {
	return func(b *Batch) { b.policy = p }
}

// New creates an empty cluster batch. Add destinations with Root.
func New(peer *rmi.Peer, opts ...Option) *Batch {
	b := &Batch{
		peer:   peer,
		groups: make(map[string]*group),
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Root returns the recording proxy for the remote object ref, registering
// its server as a destination of this batch. Any number of roots may share
// a server; they all fold into that destination's single sub-batch. Calling
// Root twice with the same ref returns the same proxy.
func (b *Batch) Root(ref wire.Ref) *Proxy {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.groups[ref.Endpoint]
	if !ok {
		g = &group{
			endpoint:    ref.Endpoint,
			rootProxies: make(map[wire.Ref]*Proxy),
		}
		if ref.Endpoint == "" {
			b.fail(fmt.Errorf("%w: object %d", ErrNoEndpoint, ref.ObjID))
		}
		b.groups[ref.Endpoint] = g
	}
	if p, ok := g.rootProxies[ref]; ok {
		return p
	}
	p := &Proxy{b: b, group: g, rootRef: ref, isRoot: true}
	g.roots = append(g.roots, ref)
	g.rootProxies[ref] = p
	return p
}

// Peer returns the underlying RMI peer.
func (b *Batch) Peer() *rmi.Peer { return b.peer }

// PendingCalls returns the number of recorded, unflushed calls.
func (b *Batch) PendingCalls() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.calls)
}

// Destinations returns the distinct server endpoints with recorded calls,
// sorted. Its length is the number of round trips the flush will fan out.
func (b *Batch) Destinations() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	seen := make(map[string]bool)
	for _, c := range b.calls {
		seen[c.group.endpoint] = true
	}
	out := make([]string, 0, len(seen))
	for ep := range seen {
		out = append(out, ep)
	}
	sort.Strings(out)
	return out
}

// fail records a sticky recording violation. Caller holds b.mu.
func (b *Batch) fail(err error) {
	if b.recErr == nil {
		b.recErr = err
	}
}

// record validates and appends one invocation. Caller holds b.mu via the
// public recording methods on Proxy.
func (b *Batch) record(target *Proxy, kind int, method string, args []any) *recordedCall {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		b.fail(core.ErrBatchClosed)
		return nil
	}
	if target.b != b {
		b.fail(fmt.Errorf("%w: call %s", core.ErrForeignProxy, method))
		return nil
	}
	if b.recErr != nil {
		return nil
	}
	for i, a := range args {
		ap, ok := a.(*Proxy)
		if !ok {
			continue
		}
		if ap.b != b {
			b.fail(fmt.Errorf("%w: argument %d of %s", core.ErrForeignProxy, i, method))
			return nil
		}
		if ap.group == target.group {
			continue
		}
		b.fail(fmt.Errorf("%w: argument %d of %s was recorded on %q but the call targets %q; "+
			"flush the producing batch first and pass the fetched value instead",
			ErrCrossServer, i, method, ap.group.endpoint, target.group.endpoint))
		return nil
	}
	c := &recordedCall{group: target.group, kind: kind, target: target, method: method, args: args}
	b.calls = append(b.calls, c)
	return c
}

// Flush partitions the recording into per-destination sub-batches, executes
// them in parallel (one core.Batch round trip per destination), and settles
// every future.
//
// A recording violation fails the whole batch: Flush returns the
// *core.BatchError and every future rethrows it. Server failures stay
// per-destination: Flush returns a *FlushError naming each failed server,
// futures bound for those servers rethrow that server's error, and futures
// bound for healthy servers still hold their values.
func (b *Batch) Flush(ctx context.Context) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return core.ErrBatchClosed
	}
	b.closed = true
	if b.recErr != nil {
		err := &core.BatchError{Err: b.recErr}
		b.failure = err
		b.mu.Unlock()
		return err
	}

	// Partition and translate each sub-batch into one multi-root core.Batch
	// per destination, rewiring cluster proxies and futures onto their
	// single-server counterparts.
	subs := partition(b.calls)
	batches := make([]*core.Batch, len(subs))
	for i, sb := range subs {
		var opts []core.Option
		if b.policy != nil {
			opts = append(opts, core.WithPolicy(b.policy))
		}
		cb := core.New(b.peer, sb.group.roots[0], opts...)
		sb.group.rootProxies[sb.group.roots[0]].core = cb.Root()
		for _, ref := range sb.group.roots[1:] {
			cp, err := cb.AddRoot(ref)
			if err != nil {
				// Unreachable: every root in a group shares its endpoint.
				ferr := &core.BatchError{Err: err}
				b.failure = ferr
				b.mu.Unlock()
				return ferr
			}
			sb.group.rootProxies[ref].core = cp
		}
		for _, c := range sb.calls {
			args := make([]any, len(c.args))
			for j, a := range c.args {
				if ap, ok := a.(*Proxy); ok {
					args[j] = ap.core
				} else {
					args[j] = a
				}
			}
			switch c.kind {
			case kindRemote:
				c.proxy.core = c.target.core.CallBatch(c.method, args...)
			default: // kindValue
				c.future.inner = c.target.core.Call(c.method, args...)
			}
		}
		batches[i] = cb
	}
	b.calls = nil
	b.mu.Unlock()

	// Fan out: one flush per destination, concurrently. Wall-clock cost is
	// the slowest destination, not the sum.
	errs := make([]error, len(batches))
	var wg sync.WaitGroup
	for i := range batches {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = batches[i].Flush(ctx)
		}(i)
	}
	wg.Wait()

	var ferr *FlushError
	for i, err := range errs {
		if err == nil {
			continue
		}
		if ferr == nil {
			ferr = &FlushError{Servers: len(batches)}
		}
		ferr.Failures = append(ferr.Failures, ServerError{
			Endpoint: subs[i].group.endpoint,
			Err:      err,
		})
	}
	if ferr != nil {
		return ferr
	}
	return nil
}

// FlushError reports the destinations whose sub-batch failed. Futures and
// proxies of the failed destinations rethrow the per-server error; the rest
// of the batch settled normally.
type FlushError struct {
	// Servers is how many destinations the flush fanned out to.
	Servers int
	// Failures lists each failed destination, in partition order.
	Failures []ServerError
}

// ServerError is one destination's flush failure.
type ServerError struct {
	Endpoint string
	Err      error
}

func (e *FlushError) Error() string {
	parts := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		parts[i] = fmt.Sprintf("%s: %v", f.Endpoint, f.Err)
	}
	return fmt.Sprintf("cluster: flush failed on %d of %d servers: %s",
		len(e.Failures), e.Servers, strings.Join(parts, "; "))
}

// Unwrap exposes the per-server errors to errors.Is / errors.As.
func (e *FlushError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f.Err
	}
	return out
}

// Proxy is a cluster batch object: the recording stub for one remote object
// on one destination server. It mirrors core.Proxy minus cursors.
type Proxy struct {
	b      *Batch
	group  *group
	isRoot bool
	// rootRef is the exported object this proxy stands for (roots only).
	rootRef wire.Ref
	// core is the single-server proxy this cluster proxy was rewired to at
	// flush time; nil before Flush.
	core *core.Proxy
}

// Batch returns the cluster batch this proxy records into.
func (p *Proxy) Batch() *Batch { return p.b }

// Endpoint returns the destination server this proxy's calls are bound for.
func (p *Proxy) Endpoint() string { return p.group.endpoint }

// Call records a method invocation whose result is a value, returning its
// future.
func (p *Proxy) Call(method string, args ...any) *Future {
	f := &Future{b: p.b}
	if c := p.b.record(p, kindValue, method, args); c != nil {
		c.future = f
	}
	return f
}

// CallBatch records a method invocation whose result is a remote object;
// the result stays on its server and the returned proxy records further
// calls on it.
func (p *Proxy) CallBatch(method string, args ...any) *Proxy {
	np := &Proxy{b: p.b, group: p.group}
	if c := p.b.record(p, kindRemote, method, args); c != nil {
		c.proxy = np
	}
	return np
}

// Ok rethrows any exception this batch object depends on. Before flush it
// returns core.ErrPending for non-root proxies.
func (p *Proxy) Ok() error {
	p.b.mu.Lock()
	failure, inner := p.b.failure, p.core
	p.b.mu.Unlock()
	if failure != nil {
		return failure
	}
	if inner == nil {
		if p.isRoot {
			return nil
		}
		return core.ErrPending
	}
	return inner.Ok()
}

// Future is the placeholder for a cluster-batched call's result. It is
// created at recording time and bound to its destination's core.Future at
// flush.
type Future struct {
	b     *Batch
	inner *core.Future
}

// Get returns the settled value. Before flush it returns core.ErrPending;
// after a recording violation it returns the batch error; after a
// destination failure it rethrows that server's error.
func (f *Future) Get() (any, error) {
	f.b.mu.Lock()
	failure, inner := f.b.failure, f.inner
	f.b.mu.Unlock()
	if failure != nil {
		return nil, failure
	}
	if inner == nil {
		return nil, core.ErrPending
	}
	return inner.Get()
}

// Err returns only the error part of Get, for void methods.
func (f *Future) Err() error {
	_, err := f.Get()
	return err
}

// Typed views f as producing values of type T, converting wire-decoded
// dynamic values like core.TypedFuture does.
func Typed[T any](f *Future) TypedFuture[T] { return TypedFuture[T]{f: f} }

// TypedFuture wraps a cluster Future with a concrete result type.
type TypedFuture[T any] struct {
	f *Future
}

// Get returns the settled, typed value.
func (tf TypedFuture[T]) Get() (T, error) {
	var zero T
	v, err := tf.f.Get()
	if err != nil {
		return zero, err
	}
	return core.Convert[T](v)
}

// Future returns the underlying dynamic future.
func (tf TypedFuture[T]) Future() *Future { return tf.f }
