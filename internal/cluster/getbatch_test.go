package cluster_test

// End-to-end tests for the streaming cluster GetBatch: one stream request
// per destination server, strict request-order delivery at the assembler,
// per-name error isolation, and the replica-spread read path.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/clustertest"
	"repro/internal/rmi"
)

// TestGetBatchOrderedOnePerDestination is the acceptance-criteria test: a
// 64-object GetBatch over a 4-server cluster completes as exactly ONE
// core.getbatch request per destination, and the client sees every entry in
// exact request order with the right value.
func TestGetBatchOrderedOnePerDestination(t *testing.T) {
	ec := clustertest.New(t, 4)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, ec.Endpoints())

	const n = 64
	names := make([]string, n)
	seeds := make(map[string]int64, n)
	homes := make(map[string]int) // names per member
	for i := range names {
		names[i] = fmt.Sprintf("obj-%02d", i)
		seeds[names[i]] = 1000 + int64(i)
		ec.BindCounter(dir, names[i], seeds[names[i]])
		home, err := dir.Home(names[i])
		if err != nil {
			t.Fatal(err)
		}
		homes[home]++
	}
	if len(homes) < 2 {
		t.Fatalf("all %d names landed on one member; hash gone degenerate", n)
	}

	s, err := cluster.GetBatch(ctx, ec.Client, dir, names, cluster.WithGetMethod("Get"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; ; i++ {
		e, err := s.Next()
		if err == io.EOF {
			if i != n {
				t.Fatalf("stream ended after %d entries, want %d", i, n)
			}
			break
		}
		if err != nil {
			t.Fatalf("Next() entry %d: %v", i, err)
		}
		if e.Index != i || e.Name != names[i] {
			t.Fatalf("entry %d = {Index: %d, Name: %q}, want {%d, %q}: delivery out of request order", i, e.Index, e.Name, i, names[i])
		}
		if e.Err != nil {
			t.Fatalf("entry %d (%s): %v", i, e.Name, e.Err)
		}
		if v, ok := e.Value.(int64); !ok || v != seeds[e.Name] {
			t.Fatalf("entry %d (%s) = %v (%T), want %d", i, e.Name, e.Value, e.Value, seeds[e.Name])
		}
	}

	// ONE stream request per destination: each member holding names served
	// exactly one batch, and its entry count matches its share.
	for _, srv := range ec.Servers {
		snap := srv.Stats.Snapshot()
		wantBatches := int64(0)
		if homes[srv.Endpoint] > 0 {
			wantBatches = 1
		}
		if got := snap.Counter("core.getbatch_batches"); got != wantBatches {
			t.Errorf("%s served %d getbatch batches, want %d", srv.Endpoint, got, wantBatches)
		}
		if got := snap.Counter("core.getbatch_entries"); got != int64(homes[srv.Endpoint]) {
			t.Errorf("%s streamed %d entries, want %d", srv.Endpoint, got, homes[srv.Endpoint])
		}
	}
}

// TestGetBatchSnapshotDefault reads through the Movable snapshot path (no
// accessor method): values arrive as the object's migration snapshot.
func TestGetBatchSnapshotDefault(t *testing.T) {
	ec := clustertest.New(t, 2)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, ec.Endpoints())
	names := []string{"snap-a", "snap-b", "snap-c"}
	for i, name := range names {
		ec.BindCounter(dir, name, int64(10*(i+1)))
	}

	s, err := cluster.GetBatch(ctx, ec.Client, dir, names)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < len(names); i++ {
		e, err := s.Next()
		if err != nil {
			t.Fatalf("Next() entry %d: %v", i, err)
		}
		if e.Err != nil {
			t.Fatalf("entry %d (%s): %v", i, e.Name, e.Err)
		}
		st, ok := e.Value.(*clustertest.CounterState)
		if !ok {
			t.Fatalf("entry %d value = %T, want *CounterState", i, e.Value)
		}
		if st.N != int64(10*(i+1)) {
			t.Fatalf("entry %d snapshot N = %d, want %d", i, st.N, 10*(i+1))
		}
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("after last entry: %v, want io.EOF", err)
	}
}

// TestGetBatchUnknownNameFailsOnlyThatEntry: a name the directory cannot
// resolve surfaces as that entry's Err; every other entry still delivers.
func TestGetBatchUnknownNameFailsOnlyThatEntry(t *testing.T) {
	ec := clustertest.New(t, 2)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, ec.Endpoints())
	ec.BindCounter(dir, "known-a", 1)
	ec.BindCounter(dir, "known-b", 2)
	names := []string{"known-a", "ghost", "known-b"}

	s, err := cluster.GetBatch(ctx, ec.Client, dir, names, cluster.WithGetMethod("Get"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var got [3]*cluster.StreamEntry
	for i := range got {
		e, err := s.Next()
		if err != nil {
			t.Fatalf("Next() entry %d: %v", i, err)
		}
		got[e.Index] = e
	}
	if got[0].Err != nil || got[0].Value.(int64) != 1 {
		t.Errorf("known-a = %v, %v; want 1", got[0].Value, got[0].Err)
	}
	if got[1].Err == nil {
		t.Errorf("ghost resolved to %v; want a lookup error", got[1].Value)
	}
	if got[2].Err != nil || got[2].Value.(int64) != 2 {
		t.Errorf("known-b = %v, %v; want 2", got[2].Value, got[2].Err)
	}
}

// TestGetBatchCloseUnblocks: Close on a part-drained stream cancels the
// in-flight destinations and later Next calls fail fast.
func TestGetBatchCloseUnblocks(t *testing.T) {
	ec := clustertest.New(t, 2)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, ec.Endpoints())
	names := make([]string, 16)
	for i := range names {
		names[i] = fmt.Sprintf("c-%d", i)
		ec.BindCounter(dir, names[i], int64(i))
	}
	s, err := cluster.GetBatch(ctx, ec.Client, dir, names, cluster.WithGetMethod("Get"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Next()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, rmi.ErrClosed) {
			t.Fatalf("Next after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next after Close blocked")
	}
}

// TestGetBatchReadReplicas: with every name homed on one primary and a
// replicated directory, WithReadReplicas moves part of the batch onto the
// seeded follower shadows — the follower executes entries it would never
// see otherwise, and every value is still correct.
func TestGetBatchReadReplicas(t *testing.T) {
	ec := clustertest.New(t, 3)
	ctx := context.Background()
	dir := cluster.NewDirectory(ec.Client, ec.Endpoints(), cluster.WithReplication(2))

	// Collect names that all share one primary, so any entry executed
	// elsewhere is unambiguously a follower shadow read.
	primary := ec.Endpoints()[0]
	var names []string
	seeds := make(map[string]int64)
	for i := 0; len(names) < 8; i++ {
		name := fmt.Sprintf("rr-%d", i)
		if home, err := dir.Home(name); err != nil {
			t.Fatal(err)
		} else if home != primary {
			continue
		}
		seeds[name] = 500 + int64(i)
		ec.BindCounter(dir, name, seeds[name])
		names = append(names, name)
		if i > 100000 {
			t.Fatal("no names homed on primary")
		}
	}
	// Seed follower shadows: replica placement rides the rebalance flow.
	if _, err := cluster.NewRebalancer(dir).AddServer(ctx, primary); err != nil {
		t.Fatalf("placement rebalance: %v", err)
	}

	s, err := cluster.GetBatch(ctx, ec.Client, dir, names,
		cluster.WithGetMethod("Get"), cluster.WithReadReplicas())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < len(names); i++ {
		e, err := s.Next()
		if err != nil {
			t.Fatalf("Next() entry %d: %v", i, err)
		}
		if e.Index != i || e.Err != nil {
			t.Fatalf("entry %d = {Index: %d, Err: %v}, want in-order success", i, e.Index, e.Err)
		}
		if v, ok := e.Value.(int64); !ok || v != seeds[e.Name] {
			t.Fatalf("entry %d (%s) = %v, want %d", i, e.Name, e.Value, seeds[e.Name])
		}
	}

	var followerEntries int64
	for _, srv := range ec.Servers {
		if srv.Endpoint == primary {
			continue
		}
		followerEntries += srv.Stats.Snapshot().Counter("core.getbatch_entries")
	}
	if followerEntries == 0 {
		t.Error("no entry executed on a follower; replica spread did nothing")
	}
	if got := ec.Server(primary).Stats.Snapshot().Counter("core.getbatch_entries"); got == int64(len(names)) {
		t.Error("primary executed the whole batch; replica spread did nothing")
	}
}
