package cluster

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/rmi"
	"repro/internal/stats"
)

// Streaming bulk reads across the cluster (the Get-Batch workload).
//
// GetBatch turns N named reads into ONE stream request per destination
// server: names resolve through the directory, group by home endpoint, and
// each group ships as a single core.GetBatch stream executed in parallel
// with the others. The returned Stream is the client-side assembler: it
// merges the per-destination streams back into exact request order,
// delivering entry i while later entries are still in flight. With
// replicated shards (WithReadReplicas) the planner spreads reads over each
// name's owner list, reading follower shadows where a seeded replica
// exists and falling back to the primary where not.

// StreamEntry is one delivered result of a cluster GetBatch: the request
// position, the name read, and its value or per-name failure. A failed
// destination fails its own entries; other destinations keep streaming.
type StreamEntry struct {
	Index int
	Name  string
	Value any
	Err   error
}

// GetBatchOption configures a cluster GetBatch.
type GetBatchOption func(*getBatchOpts)

type getBatchOpts struct {
	method       string
	readReplicas bool
}

// WithGetMethod reads each object through the named no-argument accessor
// instead of its Movable snapshot.
func WithGetMethod(method string) GetBatchOption {
	return func(o *getBatchOpts) { o.method = method }
}

// WithReadReplicas spreads the read set across each name's owner list
// (primary + followers, see Directory.Owners): follower shadows kept fresh
// by the replication log serve their share of the batch, multiplying read
// bandwidth. Shadow reads are slightly stale by the records still in
// flight to that follower; callers needing read-your-writes leave this
// off.
func WithReadReplicas() GetBatchOption {
	return func(o *getBatchOpts) { o.readReplicas = true }
}

// destBatch is the per-destination slice of the request: parallel objIDs
// and global indexes, in request order.
type destBatch struct {
	endpoint string
	objIDs   []uint64
	indexes  []int64
}

// Stream delivers a cluster GetBatch strictly in request order. Entries
// arriving out of global order (a fast destination running ahead) buffer
// until the gap fills; cluster.getbatch_buffer gauges that backlog.
type Stream struct {
	cancel context.CancelFunc
	depth  *stats.Gauge
	wg     sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond // signaled on deliver and Close
	buf    map[int]*StreamEntry
	next   int
	total  int
	closed bool
}

// GetBatch issues one ordered bulk read of names across the cluster. The
// caller must drain the stream to io.EOF or Close it. Resolution failures
// (unknown name, no route) surface as that entry's Err, not as a global
// failure.
func GetBatch(ctx context.Context, p *rmi.Peer, d *Directory, names []string, opts ...GetBatchOption) (*Stream, error) {
	var o getBatchOpts
	for _, op := range opts {
		op(&o)
	}

	// Resolve every name to the endpoint+objID it will be read at. Lookups
	// are independent network calls, so they fan out in parallel — a
	// sequential resolve pass would cost N round trips and swamp the single
	// streamed request the whole design exists to get down to.
	endpoints := make([]string, len(names))
	objIDs := make([]uint64, len(names))
	resolveErrs := make([]error, len(names))
	var rwg sync.WaitGroup
	for i, name := range names {
		rwg.Add(1)
		go func(i int, name string) {
			defer rwg.Done()
			ref, err := d.Lookup(ctx, name)
			if err != nil {
				resolveErrs[i] = err
				return
			}
			endpoints[i], objIDs[i] = ref.Endpoint, ref.ObjID
		}(i, name)
	}
	rwg.Wait()
	if o.readReplicas && d.Replication() > 1 {
		spreadOverReplicas(ctx, p, d, names, endpoints, objIDs, resolveErrs)
	}

	// Group into per-destination sub-batches, preserving request order.
	byDest := make(map[string]*destBatch)
	var dests []*destBatch
	for i := range names {
		if resolveErrs[i] != nil {
			continue
		}
		db := byDest[endpoints[i]]
		if db == nil {
			db = &destBatch{endpoint: endpoints[i]}
			byDest[endpoints[i]] = db
			dests = append(dests, db)
		}
		db.objIDs = append(db.objIDs, objIDs[i])
		db.indexes = append(db.indexes, int64(i))
	}

	sctx, cancel := context.WithCancel(ctx)
	s := &Stream{
		cancel: cancel,
		buf:    make(map[int]*StreamEntry),
		total:  len(names),
	}
	s.cond = sync.NewCond(&s.mu)
	if reg := p.Stats(); reg != nil {
		s.depth = reg.Gauge("cluster.getbatch_buffer")
	}
	for i, err := range resolveErrs {
		if err != nil {
			s.deliver(&StreamEntry{Index: i, Name: names[i], Err: err})
		}
	}
	for _, db := range dests {
		s.wg.Add(1)
		go func(db *destBatch) {
			defer s.wg.Done()
			s.runDest(sctx, p, db, names, o.method)
		}(db)
	}
	return s, nil
}

// spreadOverReplicas rewrites a slice of the read set onto follower
// shadows: each name picks an owner by its request position, and followers
// report (one ShadowIDs call per follower/primary pair) which of their
// assigned names have a seeded, live shadow. Names without one — and any
// follower that cannot be asked — stay on the primary. Best-effort by
// design: failure here costs spreading, never correctness.
func spreadOverReplicas(ctx context.Context, p *rmi.Peer, d *Directory, names []string, endpoints []string, objIDs []uint64, resolveErrs []error) {
	type replicaGroup struct {
		primary string
		names   []string
		pos     []int
	}
	groups := make(map[string]*replicaGroup) // key: follower + "\x00" + primary
	epoch := d.Epoch()
	for i, name := range names {
		if resolveErrs[i] != nil {
			continue
		}
		owners, _ := d.Owners(name)
		if len(owners) < 2 || owners[0] != endpoints[i] {
			// Not replicated, or the lookup resolved off-ring (mid-
			// migration); don't second-guess it.
			continue
		}
		pick := owners[i%len(owners)]
		if pick == endpoints[i] {
			continue
		}
		key := pick + "\x00" + owners[0]
		g := groups[key]
		if g == nil {
			g = &replicaGroup{primary: owners[0]}
			groups[key] = g
		}
		g.names = append(g.names, name)
		g.pos = append(g.pos, i)
	}
	for key, g := range groups {
		follower := key[:len(key)-len(g.primary)-1]
		results, err := p.Call(ctx, ReplicaRef(follower), "ShadowIDs", g.primary, g.names, epoch)
		if err != nil || len(results) == 0 {
			continue
		}
		ids, ok := results[0].([]any)
		if !ok || len(ids) != len(g.names) {
			continue
		}
		for j, pos := range g.pos {
			if id, ok := ids[j].(uint64); ok && id != 0 {
				endpoints[pos], objIDs[pos] = follower, id
			}
		}
	}
}

// runDest drains one destination's sub-stream into the assembler. The
// per-server stream is ordered, so entries pair with the sub-batch's
// indexes positionally; a destination failing mid-stream fails exactly its
// undelivered remainder.
func (s *Stream) runDest(ctx context.Context, p *rmi.Peer, db *destBatch, names []string, method string) {
	failFrom := func(cursor int, err error) {
		for _, gi := range db.indexes[cursor:] {
			s.deliver(&StreamEntry{Index: int(gi), Name: names[gi], Err: err})
		}
	}
	gs, err := core.GetBatch(ctx, p, db.endpoint, db.objIDs, db.indexes, method)
	if err != nil {
		failFrom(0, err)
		return
	}
	defer gs.Close()
	cursor := 0
	for cursor < len(db.indexes) {
		entry, err := gs.Next()
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("cluster: getbatch: %s ended after %d of %d entries", db.endpoint, cursor, len(db.indexes))
			}
			failFrom(cursor, err)
			return
		}
		want := db.indexes[cursor]
		if entry.Index != want {
			failFrom(cursor, fmt.Errorf("cluster: getbatch: %s delivered index %d, want %d", db.endpoint, entry.Index, want))
			return
		}
		s.deliver(&StreamEntry{Index: int(want), Name: names[want], Value: entry.Value, Err: entry.Err})
		cursor++
	}
}

// deliver hands one entry to the assembler.
func (s *Stream) deliver(e *StreamEntry) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.buf[e.Index] = e
	s.depth.Set(int64(len(s.buf)))
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Next returns the next entry in request order, blocking while its
// destination is still streaming; io.EOF after the last. Per-name failures
// arrive as the entry's Err, never as Next's.
func (s *Stream) Next() (*StreamEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, rmi.ErrClosed
		}
		if s.next >= s.total {
			return nil, io.EOF
		}
		if e, ok := s.buf[s.next]; ok {
			delete(s.buf, s.next)
			s.next++
			s.depth.Set(int64(len(s.buf)))
			return e, nil
		}
		s.cond.Wait()
	}
}

// Close abandons the stream, canceling every in-flight destination.
// Safe to call repeatedly and after EOF.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.buf = make(map[int]*StreamEntry)
	s.depth.Set(0)
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return nil
}
