package cluster

import "time"

// SetShipTimeoutForTest shrinks the replication-ship deadline so the
// goroutine-leak tests can watch a wedged straggler expire in test time.
// The returned func restores the previous value.
func SetShipTimeoutForTest(d time.Duration) (restore func()) {
	old := shipTimeout
	shipTimeout = d
	return func() { shipTimeout = old }
}
