package cluster

// In-package tests for pieces only reachable from inside the package: the
// recording partitioner and the ring's point-table internals. Everything
// that exercises the public cluster behaviour against a running deployment
// lives in the external test files (package cluster_test), on the shared
// internal/clustertest scaffolding.

import (
	"fmt"
	"math/rand"
	"testing"
)

// --- partitioner -------------------------------------------------------------

func TestPartitionPreservesPerGroupOrder(t *testing.T) {
	ga := &group{endpoint: "a"}
	gb := &group{endpoint: "b"}
	gc := &group{endpoint: "c"}
	mk := func(g *group, m string) *recordedCall { return &recordedCall{group: g, method: m} }
	calls := []*recordedCall{
		mk(ga, "a1"), mk(gb, "b1"), mk(ga, "a2"), mk(gc, "c1"),
		mk(gb, "b2"), mk(ga, "a3"), mk(gc, "c2"),
	}
	subs := partition(calls)
	if len(subs) != 3 {
		t.Fatalf("got %d sub-batches, want 3", len(subs))
	}
	// Sub-batches appear in first-appearance order.
	wantGroups := []*group{ga, gb, gc}
	wantCalls := [][]string{{"a1", "a2", "a3"}, {"b1", "b2"}, {"c1", "c2"}}
	for i, sb := range subs {
		if sb.group != wantGroups[i] {
			t.Errorf("sub-batch %d: wrong group %q", i, sb.group.endpoint)
		}
		if len(sb.calls) != len(wantCalls[i]) {
			t.Fatalf("sub-batch %d: %d calls, want %d", i, len(sb.calls), len(wantCalls[i]))
		}
		for j, c := range sb.calls {
			if c.method != wantCalls[i][j] {
				t.Errorf("sub-batch %d call %d: %s, want %s", i, j, c.method, wantCalls[i][j])
			}
		}
	}
}

func TestPartitionEmpty(t *testing.T) {
	if subs := partition(nil); len(subs) != 0 {
		t.Fatalf("empty recording partitioned into %d sub-batches", len(subs))
	}
}

// --- ring point-table internals ----------------------------------------------

// routesMatch compares key routing between two rings over a key sample.
func routesMatch(t *testing.T, got, want *Ring, label string) {
	t.Helper()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if g, w := got.Route(key), want.Route(key); g != w {
			t.Fatalf("%s: key %q routes to %q, fresh ring says %q", label, key, g, w)
		}
	}
}

// TestRingCanonicalRouting is the re-sharding property test: any sequence
// of Add/Remove ending at member set S routes every key exactly like a
// fresh NewRing(S). It runs once with the real point hash and once with a
// pathologically colliding one, which is what used to break — Remove never
// restored points a member lost to a collision at Add time, so the ring
// permanently skewed based on arrival order.
func TestRingCanonicalRouting(t *testing.T) {
	pool := []string{"a", "b", "c", "d", "e", "f"}
	run := func(t *testing.T) {
		rng := rand.New(rand.NewSource(42))
		r := NewRing(nil)
		members := map[string]bool{}
		for step := 0; step < 200; step++ {
			ep := pool[rng.Intn(len(pool))]
			if members[ep] && rng.Intn(2) == 0 {
				r.Remove(ep)
				delete(members, ep)
			} else {
				r.Add(ep)
				members[ep] = true
			}
			var set []string
			for ep := range members {
				set = append(set, ep)
			}
			routesMatch(t, r, NewRing(set), fmt.Sprintf("step %d (set %v)", step, set))
		}
	}
	t.Run("realHash", run)
	t.Run("collidingHash", func(t *testing.T) {
		orig := vnodeHash
		vnodeHash = func(s string) uint64 { return hashKey(s) % 64 }
		defer func() { vnodeHash = orig }()
		run(t)
	})
}

// TestRingRemoveRestoresCollisionPoints pins the specific Remove bug: under
// a colliding hash, B loses points to A at Add time; removing A must hand
// them back, leaving exactly the table a fresh single-member ring has.
func TestRingRemoveRestoresCollisionPoints(t *testing.T) {
	orig := vnodeHash
	vnodeHash = func(s string) uint64 { return hashKey(s) % 64 }
	defer func() { vnodeHash = orig }()

	r := NewRing([]string{"a"})
	r.Add("b") // b loses every colliding point to a
	r.Remove("a")

	fresh := NewRing([]string{"b"})
	r.mu.RLock()
	gotPoints := len(r.points)
	r.mu.RUnlock()
	fresh.mu.RLock()
	wantPoints := len(fresh.points)
	fresh.mu.RUnlock()
	if gotPoints != wantPoints {
		t.Fatalf("after add/remove, ring has %d points; fresh ring of same set has %d", gotPoints, wantPoints)
	}
	routesMatch(t, r, fresh, "after remove")
}
