package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// ErrNoServers reports a naming or batch operation against an empty ring.
var ErrNoServers = errors.New("cluster: no servers in the shard map")

// Directory is the cluster-aware naming layer: it combines the shard map
// with the per-server registries so that one logical namespace spans the
// whole cluster. A name's home server is decided by the ring; Bind and
// Lookup then talk to the ordinary internal/registry service on that server,
// so a single-server deployment degenerates to plain registry use.
type Directory struct {
	peer *rmi.Peer
	ring *Ring
}

// NewDirectory creates a directory routing over the given server endpoints.
// Each endpoint must run a registry (registry.Start) for naming calls to
// succeed.
func NewDirectory(peer *rmi.Peer, endpoints []string, opts ...RingOption) *Directory {
	return &Directory{peer: peer, ring: NewRing(endpoints, opts...)}
}

// Ring exposes the underlying shard map (e.g. to add servers at runtime).
func (d *Directory) Ring() *Ring { return d.ring }

// Servers returns the cluster members, sorted.
func (d *Directory) Servers() []string { return d.ring.Endpoints() }

// Home returns the endpoint that owns name.
func (d *Directory) Home(name string) (string, error) {
	ep := d.ring.Route(name)
	if ep == "" {
		return "", ErrNoServers
	}
	return ep, nil
}

// Bind binds name to ref in the registry of name's home server.
func (d *Directory) Bind(ctx context.Context, name string, ref wire.Ref) error {
	ep, err := d.Home(name)
	if err != nil {
		return err
	}
	return registry.Bind(ctx, d.peer, ep, name, ref)
}

// Rebind binds name to ref at its home server, replacing any existing
// binding.
func (d *Directory) Rebind(ctx context.Context, name string, ref wire.Ref) error {
	ep, err := d.Home(name)
	if err != nil {
		return err
	}
	return registry.Rebind(ctx, d.peer, ep, name, ref)
}

// Lookup resolves name at its home server's registry.
func (d *Directory) Lookup(ctx context.Context, name string) (wire.Ref, error) {
	ep, err := d.Home(name)
	if err != nil {
		return wire.Ref{}, err
	}
	ref, err := registry.Lookup(ctx, d.peer, ep, name)
	if err != nil {
		return wire.Ref{}, fmt.Errorf("cluster: lookup %q at %s: %w", name, ep, err)
	}
	return ref, nil
}

// Unbind removes name's binding at its home server.
func (d *Directory) Unbind(ctx context.Context, name string) error {
	ep, err := d.Home(name)
	if err != nil {
		return err
	}
	return registry.Unbind(ctx, d.peer, ep, name)
}

// List returns every name bound anywhere in the cluster, keyed by server
// endpoint. The per-server registries are queried in parallel, so the call
// costs one round trip of wall-clock time, like a cluster batch flush.
func (d *Directory) List(ctx context.Context) (map[string][]string, error) {
	servers := d.ring.Endpoints()
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	out := make(map[string][]string, len(servers))
	errs := make([]error, len(servers))
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for i, ep := range servers {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			names, err := registry.List(ctx, d.peer, ep)
			if err != nil {
				errs[i] = fmt.Errorf("cluster: list %s: %w", ep, err)
				return
			}
			mu.Lock()
			out[ep] = names
			mu.Unlock()
		}(i, ep)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
