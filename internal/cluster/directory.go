package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/rcache"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/stats"
	"repro/internal/wire"
)

// ErrNoServers reports a naming or batch operation against an empty ring.
var ErrNoServers = errors.New("cluster: no servers in the shard map")

// Directory is the cluster-aware naming layer: it combines the shard map
// with the per-server registries so that one logical namespace spans the
// whole cluster. A name's home server is decided by the ring; Bind and
// Lookup then talk to the ordinary internal/registry service on that server,
// so a single-server deployment degenerates to plain registry use.
type Directory struct {
	peer *rmi.Peer
	ring *Ring

	// sf coalesces concurrent Refresh calls: N goroutines that each hit a
	// WrongHomeError for the same migration share one node poll instead of
	// issuing N identical fan-outs.
	sf rcache.Group

	// Metrics, wired from the peer's stats registry (nil no-ops otherwise).
	lookupRetries    *stats.Counter // cluster.lookup_retries
	refreshes        *stats.Counter // cluster.dir_refreshes
	refreshCoalesced *stats.Counter // cluster.dir_refresh_coalesced
}

// NewDirectory creates a directory routing over the given server endpoints.
// Each endpoint must run a registry (registry.Start) for naming calls to
// succeed.
func NewDirectory(peer *rmi.Peer, endpoints []string, opts ...RingOption) *Directory {
	d := &Directory{peer: peer, ring: NewRing(endpoints, opts...)}
	if r := peer.Stats(); r != nil {
		d.lookupRetries = r.Counter("cluster.lookup_retries")
		d.refreshes = r.Counter("cluster.dir_refreshes")
		d.refreshCoalesced = r.Counter("cluster.dir_refresh_coalesced")
	}
	return d
}

// Ring exposes the underlying shard map (e.g. to add servers at runtime).
func (d *Directory) Ring() *Ring { return d.ring }

// Epoch returns this directory's view of the membership version.
func (d *Directory) Epoch() uint64 { return d.ring.Epoch() }

// Servers returns the cluster members, sorted.
func (d *Directory) Servers() []string { return d.ring.Endpoints() }

// Home returns the endpoint that owns name.
func (d *Directory) Home(name string) (string, error) {
	ep := d.ring.Route(name)
	if ep == "" {
		return "", ErrNoServers
	}
	return ep, nil
}

// Owners returns name's ordered owner list (primary first, then followers,
// see Ring.Owners) and the ring epoch it was read at. The staged executor
// consults it per flush wave to decide where to ship the wave's replication
// record.
func (d *Directory) Owners(name string) ([]string, uint64) {
	return d.ring.Owners(name)
}

// Replication returns the ring's replication factor R (1 = no replication).
func (d *Directory) Replication() int { return d.ring.Replication() }

// Bind binds name to ref in the registry of name's home server.
func (d *Directory) Bind(ctx context.Context, name string, ref wire.Ref) error {
	ep, err := d.Home(name)
	if err != nil {
		return err
	}
	return registry.Bind(ctx, d.peer, ep, name, ref)
}

// Rebind binds name to ref at its home server, replacing any existing
// binding.
func (d *Directory) Rebind(ctx context.Context, name string, ref wire.Ref) error {
	ep, err := d.Home(name)
	if err != nil {
		return err
	}
	return registry.Rebind(ctx, d.peer, ep, name, ref)
}

// Lookup resolves name at its home server's registry. A wrong-home failure
// — the name migrated after this directory last saw the ring — refreshes
// the shard map from the cluster nodes and retries once at the new home.
func (d *Directory) Lookup(ctx context.Context, name string) (wire.Ref, error) {
	ref, err := d.lookupOnce(ctx, name)
	if err == nil {
		return ref, nil
	}
	var wrong *rmi.WrongHomeError
	if !errors.As(err, &wrong) {
		return wire.Ref{}, err
	}
	// A coalesced Refresh may have joined a poll that STARTED before the
	// membership change this rejection reports, adopting a ring older than
	// wrong.NewEpoch. Retry the refresh (bounded) until the ring caught up
	// with the epoch the rejecting server announced.
	for attempt := 0; ; attempt++ {
		if rerr := d.Refresh(ctx); rerr != nil {
			return wire.Ref{}, fmt.Errorf("%w (ring refresh failed: %v)", err, rerr)
		}
		if d.Epoch() >= wrong.NewEpoch || attempt >= 1 {
			break
		}
	}
	d.lookupRetries.Inc()
	return d.lookupOnce(ctx, name)
}

func (d *Directory) lookupOnce(ctx context.Context, name string) (wire.Ref, error) {
	ep, err := d.Home(name)
	if err != nil {
		return wire.Ref{}, err
	}
	ref, err := registry.Lookup(ctx, d.peer, ep, name)
	if err != nil {
		return wire.Ref{}, fmt.Errorf("cluster: lookup %q at %s: %w", name, ep, err)
	}
	return ref, nil
}

// Refresh polls the cluster nodes for their ring state and adopts the
// newest epoch seen, bringing a stale directory back in sync after a
// membership change it did not witness. It fails only when no node is
// reachable. Concurrent callers coalesce onto one in-flight poll: they
// share its outcome (and its context), which is safe because adoption is
// monotone — the poll installs the newest epoch any node reports,
// regardless of which caller triggered it.
func (d *Directory) Refresh(ctx context.Context) error {
	_, err, shared := d.sf.Do("refresh", func() (any, error) {
		return nil, d.refreshOnce(ctx)
	})
	if shared {
		d.refreshCoalesced.Inc()
	}
	return err
}

func (d *Directory) refreshOnce(ctx context.Context) error {
	d.refreshes.Inc()
	members := d.ring.Endpoints()
	if len(members) == 0 {
		return ErrNoServers
	}
	snaps := make([]*RingSnapshot, len(members))
	err := eachEndpoint(members, func(i int, ep string) error {
		res, err := d.peer.Call(ctx, NodeRef(ep), "RingState")
		if err != nil {
			return fmt.Errorf("cluster: ring state from %s: %w", ep, err)
		}
		if len(res) == 1 {
			if snap, ok := res[0].(*RingSnapshot); ok {
				snaps[i] = snap
			}
		}
		return nil
	})
	var best *RingSnapshot
	for _, snap := range snaps {
		if snap != nil && (best == nil || snap.Epoch > best.Epoch) {
			best = snap
		}
	}
	if best == nil {
		return fmt.Errorf("cluster: refresh: no node reachable: %w", err)
	}
	if best.Epoch > d.ring.Epoch() {
		d.ring.Reset(best.Members, best.Epoch)
	}
	return nil
}

// Unbind removes name's binding at its home server.
func (d *Directory) Unbind(ctx context.Context, name string) error {
	ep, err := d.Home(name)
	if err != nil {
		return err
	}
	return registry.Unbind(ctx, d.peer, ep, name)
}

// List returns every name bound anywhere in the cluster, keyed by server
// endpoint. The per-server registries are queried in parallel, so the call
// costs one round trip of wall-clock time, like a cluster batch flush.
func (d *Directory) List(ctx context.Context) (map[string][]string, error) {
	servers := d.ring.Endpoints()
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	out := make(map[string][]string, len(servers))
	var mu sync.Mutex
	err := eachEndpoint(servers, func(_ int, ep string) error {
		names, err := registry.List(ctx, d.peer, ep)
		if err != nil {
			return fmt.Errorf("cluster: list %s: %w", ep, err)
		}
		mu.Lock()
		out[ep] = names
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// eachEndpoint runs fn once per endpoint, all in parallel, and joins the
// failures. It is the fan-out shape every cluster-wide control operation
// (listing, ring broadcast/refresh, migration planning) shares: one round
// trip of wall-clock time regardless of cluster size.
func eachEndpoint(endpoints []string, fn func(i int, ep string) error) error {
	errs := make([]error, len(endpoints))
	var wg sync.WaitGroup
	for i, ep := range endpoints {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			errs[i] = fn(i, ep)
		}(i, ep)
	}
	wg.Wait()
	return errors.Join(errs...)
}
