package cluster

import (
	"repro/internal/rcache"
	"repro/internal/wire"
)

// Call kinds a cluster recording can hold. They mirror the core package's
// value/remote split; cluster batches do not record cursors (use a
// single-server core.Batch for cursor workloads).
const (
	kindValue  = 1 // result returns to a Future
	kindRemote = 2 // result is a remote object kept server-side
)

// recordedCall is one entry of the cluster-wide recording log, in global
// recording order. The planner annotates it (stage, export) and the staged
// executor threads its client-side settlement through it.
type recordedCall struct {
	// index is the call's position in the global recording log. Recording
	// order is a topological order of the dependency DAG — a proxy or
	// future must be returned before it can be passed — which is what lets
	// the planner schedule in one forward pass.
	index  int
	group  *group
	kind   int
	target *Proxy
	method string
	args   []any
	future *Future // kindValue: the future the caller holds
	proxy  *Proxy  // kindRemote: the proxy the caller holds

	// stage is the round-trip wave this call executes in (planner).
	stage int
	// export marks a kindRemote call whose result a later wave forwards to
	// a different server: the sub-batch asks the server to pin the result
	// as an exported ref (core.Proxy.CallBatchExport).
	export bool
	// failed is the error this call settled with client-side, when a
	// dependency or its destination failed before the call could execute.
	failed error

	// ro marks a call recorded through CallRO (//brmi:readonly).
	// The remaining fields are its cache/coalescing state: ckey/cobj and the
	// generation+epoch captured at record time (the stale-fill guard), and
	// the singleflight the call joined at translate time — as leader (this
	// call executes and publishes) or follower (settles from the flight).
	ro     bool
	ckey   string
	cobj   string
	cgen   uint64
	cepoch uint64
	flight *rcache.Flight
	leader bool
}

// group is one batch destination: a server endpoint and everything recorded
// against objects living there. All of a group's roots fold into one
// multi-root core.Batch (core.Batch.AddRoot), so a destination costs one
// round trip per stage it participates in, no matter how many objects it
// serves.
type group struct {
	endpoint string
	// roots are the group's batch roots in registration order; rootProxies
	// maps each root ref to the proxy handed to the caller.
	roots       []wire.Ref
	rootProxies map[wire.Ref]*Proxy
}

// subBatch is one partition of a stage: every call of that stage bound for
// one destination, in the order it was recorded.
type subBatch struct {
	group *group
	calls []*recordedCall
}

// partition splits a slice of the recording log into per-destination
// sub-batches. It is a stable partition: within each sub-batch the calls
// keep their global recording order, which preserves per-server program
// order within the stage — the invariant that makes server-side replay of
// each sub-batch equivalent to the original interleaved program.
// Sub-batches are ordered by the first appearance of their destination.
//
// Sub-batches of one stage have no mutual dependencies (the planner put
// every staged input in an earlier stage), so they execute concurrently.
func partition(calls []*recordedCall) []*subBatch {
	var order []*subBatch
	byGroup := make(map[*group]*subBatch)
	for _, c := range calls {
		sb, ok := byGroup[c.group]
		if !ok {
			sb = &subBatch{group: c.group}
			byGroup[c.group] = sb
			order = append(order, sb)
		}
		sb.calls = append(sb.calls, c)
	}
	return order
}
