package cluster

import "repro/internal/wire"

// Call kinds a cluster recording can hold. They mirror the core package's
// value/remote split; cluster batches do not record cursors (use a
// single-server core.Batch for cursor workloads).
const (
	kindValue  = 1 // result returns to a Future
	kindRemote = 2 // result is a remote object kept server-side
)

// recordedCall is one entry of the cluster-wide recording log, in global
// recording order.
type recordedCall struct {
	group  *group
	kind   int
	target *Proxy
	method string
	args   []any
	future *Future // kindValue: the future the caller holds
	proxy  *Proxy  // kindRemote: the proxy the caller holds
}

// group is one batch destination: a server endpoint and everything recorded
// against objects living there. All of a group's roots fold into one
// multi-root core.Batch (core.Batch.AddRoot), so a destination always costs
// exactly one round trip at flush no matter how many objects it serves.
type group struct {
	endpoint string
	// roots are the group's batch roots in registration order; rootProxies
	// maps each root ref to the proxy handed to the caller.
	roots       []wire.Ref
	rootProxies map[wire.Ref]*Proxy
}

// subBatch is one partition of the recording: every call bound for one
// destination, in the order it was recorded.
type subBatch struct {
	group *group
	calls []*recordedCall
}

// partition splits the global recording log into per-destination sub-batches.
// It is a stable partition: within each sub-batch the calls keep their
// global recording order, which preserves per-server program order — the
// invariant that makes server-side replay of each sub-batch equivalent to
// the original interleaved program. Sub-batches are ordered by the first
// appearance of their destination in the log.
//
// Cross-destination data dependencies were already rejected at record time,
// so the sub-batches are independent and may execute concurrently.
func partition(calls []*recordedCall) []*subBatch {
	var order []*subBatch
	byGroup := make(map[*group]*subBatch)
	for _, c := range calls {
		sb, ok := byGroup[c.group]
		if !ok {
			sb = &subBatch{group: c.group}
			byGroup[c.group] = sb
			order = append(order, sb)
		}
		sb.calls = append(sb.calls, c)
	}
	return order
}
