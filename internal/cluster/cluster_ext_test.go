package cluster_test

// Behavioural tests of the cluster batch, directory, and ring public API,
// running against the shared internal/clustertest deployment (k serving
// peers + client on one simulated network).

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/clustertest"
	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// --- shard map ---------------------------------------------------------------

func TestRingRoutingStabilityOnAdd(t *testing.T) {
	eps := []string{"server-0", "server-1", "server-2"}
	ring := cluster.NewRing(eps)
	const n = 2000
	before := make(map[string]string, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("account-%04d", i)
		before[key] = ring.Route(key)
	}

	ring.Add("server-3")
	moved := 0
	for key, old := range before {
		now := ring.Route(key)
		if now == old {
			continue
		}
		// The consistent-hashing invariant: adding a member only moves keys
		// TO that member, never between existing members.
		if now != "server-3" {
			t.Fatalf("key %q moved %s -> %s on unrelated add", key, old, now)
		}
		moved++
	}
	if moved == 0 {
		t.Error("no keys routed to the new server")
	}
	// Expect roughly 1/4 of keys to move; allow a wide band.
	if moved > n/2 {
		t.Errorf("%d of %d keys moved; consistent hashing should move ~%d", moved, n, n/4)
	}

	// Every member owns a share.
	owned := make(map[string]int)
	for i := 0; i < n; i++ {
		owned[ring.Route(fmt.Sprintf("account-%04d", i))]++
	}
	for _, ep := range ring.Endpoints() {
		if owned[ep] == 0 {
			t.Errorf("endpoint %s owns no keys", ep)
		}
	}
}

func TestRingRemoveAndEmpty(t *testing.T) {
	ring := cluster.NewRing([]string{"a", "b"})
	ring.Remove("a")
	if got := ring.Route("anything"); got != "b" {
		t.Fatalf("after removing a, key routed to %q, want b", got)
	}
	ring.Remove("b")
	if got := ring.Route("anything"); got != "" {
		t.Fatalf("empty ring routed to %q", got)
	}
	if ring.Size() != 0 {
		t.Fatalf("empty ring has size %d", ring.Size())
	}
}

func TestRingEpoch(t *testing.T) {
	r := cluster.NewRing([]string{"a", "b"})
	if e := r.Epoch(); e != 0 {
		t.Fatalf("fresh ring epoch = %d, want 0", e)
	}
	r.Add("c")
	if e := r.Epoch(); e != 1 {
		t.Fatalf("epoch after add = %d, want 1", e)
	}
	r.Add("c") // duplicate: no change
	if e := r.Epoch(); e != 1 {
		t.Fatalf("epoch after duplicate add = %d, want 1", e)
	}
	r.Remove("a")
	if e := r.Epoch(); e != 2 {
		t.Fatalf("epoch after remove = %d, want 2", e)
	}
	r.Remove("a") // non-member: no change
	if e := r.Epoch(); e != 2 {
		t.Fatalf("epoch after duplicate remove = %d, want 2", e)
	}
	r.Reset([]string{"x", "y"}, 9)
	if e := r.Epoch(); e != 9 {
		t.Fatalf("epoch after reset = %d, want 9", e)
	}
	if got := r.Endpoints(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("members after reset = %v", got)
	}
}

// --- recording validation ----------------------------------------------------

// TestSingleStageRejectsCrossServer checks the opt-in strictness mode: a
// WithSingleStage batch rejects cross-server dataflow at record time with
// ErrCrossServer, preserving the one-round-trip-per-destination guarantee
// staged batches trade away.
func TestSingleStageRejectsCrossServer(t *testing.T) {
	tc := clustertest.New(t, 2)
	b := cluster.New(tc.Client, cluster.WithSingleStage())
	a := b.Root(tc.Servers[0].Ref)
	c := b.Root(tc.Servers[1].Ref)

	onA := a.CallBatch("Self")    // remote result living on server-0
	f := c.Call("AddRemote", onA) // fed into a call on server-1

	err := b.Flush(context.Background())
	var be *core.BatchError
	if !errors.As(err, &be) || !errors.Is(err, cluster.ErrCrossServer) {
		t.Fatalf("flush error = %v, want BatchError wrapping ErrCrossServer", err)
	}
	if _, gerr := f.Get(); !errors.Is(gerr, cluster.ErrCrossServer) {
		t.Errorf("future error = %v, want ErrCrossServer", gerr)
	}
	// The counter on server-1 must not have executed anything.
	if got := tc.Servers[1].Counter.Get(); got != 0 {
		t.Errorf("server-1 counter = %d after rejected batch, want 0", got)
	}
}

// TestSingleStageAllowsCrossServerRootArg: a ROOT proxy from another
// server needs no staged execution — its ref splices in statically — so
// even single-stage batches accept it and still flush in one wave.
func TestSingleStageAllowsCrossServerRootArg(t *testing.T) {
	tc := clustertest.New(t, 2)
	b := cluster.New(tc.Client, cluster.WithSingleStage())
	r0 := b.Root(tc.Servers[0].Ref)
	r1 := b.Root(tc.Servers[1].Ref)
	f := r0.Call("AddRemote", r1) // server-1's ROOT as an argument on server-0

	if err := b.Flush(context.Background()); err != nil {
		t.Fatalf("single-stage flush with root arg = %v, want nil", err)
	}
	if w := b.Waves(); w != 1 {
		t.Errorf("flush took %d waves, want 1", w)
	}
	if got, err := cluster.Typed[int64](f).Get(); err != nil || got != 0 {
		t.Errorf("AddRemote(root-1) = %d, %v; want 0 (fresh counter)", got, err)
	}
}

// TestSingleStageRejectsFutureSplice: a future's value splice needs its
// producing wave to settle first, so single-stage batches reject it too —
// even between two calls on the same server.
func TestSingleStageRejectsFutureSplice(t *testing.T) {
	tc := clustertest.New(t, 1)
	b := cluster.New(tc.Client, cluster.WithSingleStage())
	r := b.Root(tc.Servers[0].Ref)
	f := r.Call("Get")
	r.Call("Add", f)
	if err := b.Flush(context.Background()); !errors.Is(err, cluster.ErrCrossServer) {
		t.Fatalf("flush error = %v, want ErrCrossServer", err)
	}
	if got := tc.Servers[0].Counter.Get(); got != 0 {
		t.Errorf("counter = %d after rejected batch, want 0", got)
	}
}

// TestSameServerMultiRoot checks that any number of roots on one server
// fold into a single sub-batch (one round trip), including a data
// dependency between two of them — only genuinely cross-server dependencies
// are rejected.
func TestSameServerMultiRoot(t *testing.T) {
	tc := clustertest.New(t, 1)
	other := &clustertest.Counter{}
	ref2, err := tc.Servers[0].Peer.Export(other, clustertest.CounterIface)
	if err != nil {
		t.Fatal(err)
	}
	b := cluster.New(tc.Client)
	r1 := b.Root(tc.Servers[0].Ref)
	r2 := b.Root(ref2)
	f1 := r1.Call("Add", int64(5))
	p := r1.CallBatch("Self")
	// Dependency across roots, same server: counter 2 absorbs counter 1.
	f2 := r2.Call("Absorb", p)

	before := tc.Client.CallCount()
	if err := b.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rt := tc.Client.CallCount() - before; rt != 1 {
		t.Errorf("two roots on one server used %d round trips, want 1", rt)
	}
	if v, err := cluster.Typed[int64](f1).Get(); err != nil || v != 5 {
		t.Errorf("root-1 future = %v, %v; want 5", v, err)
	}
	if v, err := cluster.Typed[int64](f2).Get(); err != nil || v != 5 {
		t.Errorf("cross-root Absorb = %v, %v; want 5", v, err)
	}
	if got := other.Get(); got != 5 {
		t.Errorf("second root's counter = %d, want 5", got)
	}
}

func TestForeignProxyRejected(t *testing.T) {
	tc := clustertest.New(t, 1)
	b1 := cluster.New(tc.Client)
	b2 := cluster.New(tc.Client)
	p1 := b1.Root(tc.Servers[0].Ref).CallBatch("Self")
	b2.Root(tc.Servers[0].Ref).Call("Add", int64(1), p1)
	if err := b2.Flush(context.Background()); !errors.Is(err, core.ErrForeignProxy) {
		t.Fatalf("flush error = %v, want core.ErrForeignProxy", err)
	}
}

func TestRecordAfterFlushFails(t *testing.T) {
	tc := clustertest.New(t, 1)
	b := cluster.New(tc.Client)
	root := b.Root(tc.Servers[0].Ref)
	root.Call("Add", int64(1))
	if err := b.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	f := root.Call("Add", int64(1))
	if err := b.Flush(context.Background()); !errors.Is(err, core.ErrBatchClosed) {
		t.Fatalf("second flush error = %v, want ErrBatchClosed", err)
	}
	// The post-flush future reads the original (successful) flush state, so
	// it must not panic; it reports pending since it was never bound.
	if _, err := f.Get(); err == nil {
		t.Error("future recorded after flush settled unexpectedly")
	}
}

func TestRootWithoutEndpointRejected(t *testing.T) {
	tc := clustertest.New(t, 1)
	b := cluster.New(tc.Client)
	p := b.Root(wire.Ref{ObjID: 99})
	p.Call("Add", int64(1))
	if err := b.Flush(context.Background()); !errors.Is(err, cluster.ErrNoEndpoint) {
		t.Fatalf("flush error = %v, want ErrNoEndpoint", err)
	}
}

// --- degenerate single-server case -------------------------------------------

// TestSingleServerMatchesCoreBatch checks the degenerate case: a cluster
// batch with one destination must behave exactly like a plain core.Batch —
// same results, same error behaviour, and the same single round trip.
func TestSingleServerMatchesCoreBatch(t *testing.T) {
	tc := clustertest.New(t, 1)
	ctx := context.Background()

	// Reference run through core.Batch.
	cb := core.New(tc.Client, tc.Servers[0].Ref)
	cRoot := cb.Root()
	cSelf := cRoot.CallBatch("Self")
	cf1 := cRoot.Call("Add", int64(10))
	cf2 := cSelf.Call("Add", int64(5))
	cf3 := cRoot.Call("Get")
	if err := cb.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Identical recording through the cluster layer.
	before := tc.Client.CallCount()
	b := cluster.New(tc.Client)
	root := b.Root(tc.Servers[0].Ref)
	self := root.CallBatch("Self")
	f1 := root.Call("Add", int64(10))
	f2 := self.Call("Add", int64(5))
	f3 := root.Call("Get")
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if rt := tc.Client.CallCount() - before; rt != 1 {
		t.Errorf("cluster flush used %d round trips, want 1", rt)
	}
	if w := b.Waves(); w != 1 {
		t.Errorf("single-server flush took %d waves, want 1", w)
	}

	// The counter ran both batches; the cluster run starts 15 higher.
	for i, pair := range []struct {
		name string
		core *core.Future
		clu  *cluster.Future
		off  int64
	}{
		{"Add(10)", cf1, f1, 15},
		{"Add(5)", cf2, f2, 15},
		{"Get", cf3, f3, 15},
	} {
		cv, cerr := core.Typed[int64](pair.core).Get()
		v, err := cluster.Typed[int64](pair.clu).Get()
		if cerr != nil || err != nil {
			t.Fatalf("%s: core err %v, cluster err %v", pair.name, cerr, err)
		}
		if v != cv+pair.off {
			t.Errorf("%s (pair %d): cluster %d, core %d (+%d expected)", pair.name, i, v, cv, pair.off)
		}
	}
	if err := self.Ok(); err != nil {
		t.Errorf("remote proxy Ok = %v", err)
	}
}

// --- multi-server fan-out ----------------------------------------------------

func TestMultiServerFanout(t *testing.T) {
	tc := clustertest.New(t, 3)
	ctx := context.Background()

	b := cluster.New(tc.Client)
	roots := make([]*cluster.Proxy, 3)
	for i := range roots {
		roots[i] = b.Root(tc.Servers[i].Ref)
	}
	// Interleave recording across servers; per-server order must survive the
	// partition: server i receives Add(1), Add(2), Add(3) in that order.
	var futures [][]*cluster.Future
	for step := int64(1); step <= 3; step++ {
		for i, r := range roots {
			if step == 1 {
				futures = append(futures, nil)
			}
			futures[i] = append(futures[i], r.Call("Add", step))
		}
	}
	if got := b.PendingCalls(); got != 9 {
		t.Fatalf("PendingCalls = %d, want 9", got)
	}
	if got := b.Destinations(); len(got) != 3 {
		t.Fatalf("Destinations = %v, want 3 endpoints", got)
	}

	before := tc.Client.CallCount()
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if rt := tc.Client.CallCount() - before; rt != 3 {
		t.Errorf("flush used %d round trips, want 3 (one per server)", rt)
	}
	if w := b.Waves(); w != 1 {
		t.Errorf("dependency-free multi-server flush took %d waves, want 1", w)
	}

	for i := range roots {
		// Running totals 1, 3, 6 prove in-order execution on each server.
		for j, want := range []int64{1, 3, 6} {
			got, err := cluster.Typed[int64](futures[i][j]).Get()
			if err != nil {
				t.Fatalf("server %d future %d: %v", i, j, err)
			}
			if got != want {
				t.Errorf("server %d future %d = %d, want %d", i, j, got, want)
			}
		}
		if h := tc.Servers[i].Counter.History(); len(h) != 3 || h[0] != 1 || h[1] != 2 || h[2] != 3 {
			t.Errorf("server %d executed %v, want [1 2 3]", i, h)
		}
	}
}

func TestPartialServerFailure(t *testing.T) {
	tc := clustertest.New(t, 2)
	ctx := context.Background()

	b := cluster.New(tc.Client)
	good := b.Root(tc.Servers[0].Ref)
	// A root object id that server-1 never exported: its sub-batch fails
	// at session creation, the other server's sub-batch is unaffected.
	badRef := wire.Ref{Endpoint: tc.Servers[1].Endpoint, ObjID: 12345, Iface: clustertest.CounterIface}
	bad := b.Root(badRef)

	gf := good.Call("Add", int64(7))
	bf := bad.Call("Add", int64(7))

	err := b.Flush(ctx)
	var fe *cluster.FlushError
	if !errors.As(err, &fe) {
		t.Fatalf("flush error = %T %v, want *FlushError", err, err)
	}
	if len(fe.Failures) != 1 || fe.Servers != 2 {
		t.Fatalf("FlushError = %+v, want 1 failure of 2 servers", fe)
	}
	if fe.Failures[0].Endpoint != badRef.Endpoint {
		t.Errorf("failed endpoint %q, want %q", fe.Failures[0].Endpoint, badRef.Endpoint)
	}
	var nso *rmi.NoSuchObjectError
	if !errors.As(err, &nso) {
		t.Errorf("FlushError should unwrap to NoSuchObjectError, got %v", err)
	}

	// Healthy destination settled normally.
	if v, err := cluster.Typed[int64](gf).Get(); err != nil || v != 7 {
		t.Errorf("healthy future = %v, %v; want 7, nil", v, err)
	}
	// Failed destination rethrows its server's error.
	if _, err := bf.Get(); !errors.As(err, &nso) {
		t.Errorf("failed future error = %v, want NoSuchObjectError", err)
	}
}

// TestPolicyScopedPerServer checks that the exception policy applies within
// each sub-batch: an abort on one server does not touch another server's
// calls.
func TestPolicyScopedPerServer(t *testing.T) {
	tc := clustertest.New(t, 2)
	ctx := context.Background()

	b := cluster.New(tc.Client) // default abort policy, per destination
	r0 := b.Root(tc.Servers[0].Ref)
	r1 := b.Root(tc.Servers[1].Ref)
	bad := r0.Call("NoSuchMethod")
	after := r0.Call("Add", int64(1)) // aborted with the failure on server-0
	other := r1.Call("Add", int64(1)) // server-1 proceeds

	if err := b.Flush(ctx); err != nil {
		t.Fatalf("flush error = %v; application errors should not fail the flush", err)
	}
	var nsm *rmi.NoSuchMethodError
	if err := bad.Err(); !errors.As(err, &nsm) {
		t.Errorf("bad call error = %v, want NoSuchMethodError", err)
	}
	if err := after.Err(); !errors.As(err, &nsm) {
		t.Errorf("aborted call error = %v, want the aborting NoSuchMethodError", err)
	}
	if v, err := cluster.Typed[int64](other).Get(); err != nil || v != 1 {
		t.Errorf("other server future = %v, %v; want 1, nil", v, err)
	}
}

// --- directory ---------------------------------------------------------------

func TestDirectoryBindLookup(t *testing.T) {
	tc := clustertest.New(t, 3)
	ctx := context.Background()
	d := cluster.NewDirectory(tc.Client, tc.Endpoints())

	names := make([]string, 20)
	for i := range names {
		names[i] = fmt.Sprintf("obj-%02d", i)
	}
	for i, name := range names {
		if err := d.Bind(ctx, name, tc.Servers[i%3].Ref); err != nil {
			t.Fatalf("bind %s: %v", name, err)
		}
	}
	for i, name := range names {
		ref, err := d.Lookup(ctx, name)
		if err != nil {
			t.Fatalf("lookup %s: %v", name, err)
		}
		if ref != tc.Servers[i%3].Ref {
			t.Errorf("lookup %s = %+v, want %+v", name, ref, tc.Servers[i%3].Ref)
		}
		home, err := d.Home(name)
		if err != nil {
			t.Fatal(err)
		}
		// The binding must live in the home server's registry.
		bound, err := registry.Lookup(ctx, tc.Client, home, name)
		if err != nil || bound != ref {
			t.Errorf("name %s not bound at home %s: %v", name, home, err)
		}
	}

	// Names spread across more than one server.
	all, err := d.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	populated := 0
	total := 0
	for _, bound := range all {
		if len(bound) > 0 {
			populated++
		}
		total += len(bound)
	}
	if total != len(names) {
		t.Errorf("cluster-wide List found %d names, want %d", total, len(names))
	}
	if populated < 2 {
		t.Errorf("all names landed on %d server(s); ring should spread them", populated)
	}

	// Rebind and unbind round-trip.
	if err := d.Rebind(ctx, names[0], tc.Servers[1].Ref); err != nil {
		t.Fatal(err)
	}
	if ref, _ := d.Lookup(ctx, names[0]); ref != tc.Servers[1].Ref {
		t.Errorf("rebind did not take: %+v", ref)
	}
	if err := d.Unbind(ctx, names[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup(ctx, names[0]); err == nil {
		t.Error("lookup after unbind succeeded")
	}
}

func TestDirectoryEmpty(t *testing.T) {
	tc := clustertest.New(t, 1)
	d := cluster.NewDirectory(tc.Client, nil)
	if _, err := d.Lookup(context.Background(), "x"); !errors.Is(err, cluster.ErrNoServers) {
		t.Fatalf("lookup on empty directory = %v, want ErrNoServers", err)
	}
}

// TestParallelRootsOption: cluster.WithParallelRoots forwards the relaxed
// replay opt-in to every per-server sub-batch. Independent roots on one
// server still produce correct per-root results, and a sub-batch with
// cross-root dataflow is replayed sequentially by the server's fallback —
// same results either way.
func TestParallelRootsOption(t *testing.T) {
	tc := clustertest.New(t, 2)
	extra := &clustertest.Counter{}
	extraRef, err := tc.Servers[0].Peer.Export(extra, clustertest.CounterIface)
	if err != nil {
		t.Fatal(err)
	}

	b := cluster.New(tc.Client, cluster.WithParallelRoots())
	r0 := b.Root(tc.Servers[0].Ref)
	rx := b.Root(extraRef)
	r1 := b.Root(tc.Servers[1].Ref)
	f0a := r0.Call("Add", int64(1))
	f0b := r0.Call("Add", int64(2))
	fxa := rx.Call("Add", int64(10))
	f1 := r1.Call("Add", int64(7))
	if err := b.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		f    *cluster.Future
		want int64
	}{{f0a, 1}, {f0b, 3}, {fxa, 10}, {f1, 7}} {
		if v, err := cluster.Typed[int64](c.f).Get(); err != nil || v != c.want {
			t.Errorf("future = %v, %v; want %d", v, err, c.want)
		}
	}

	// Cross-root dependency on one server: the executor must fall back.
	b2 := cluster.New(tc.Client, cluster.WithParallelRoots())
	q0 := b2.Root(tc.Servers[0].Ref)
	qx := b2.Root(extraRef)
	p := q0.CallBatch("Self")
	absorbed := qx.Call("Absorb", p)
	if err := b2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The extra counter holds 10 from the first flush and absorbs counter
	// 0's total of 3.
	if v, err := cluster.Typed[int64](absorbed).Get(); err != nil || v != 13 {
		t.Errorf("cross-root Absorb under parallel opt-in = %v, %v; want 13", v, err)
	}
}
