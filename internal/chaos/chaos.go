// Package chaos is the seeded, deterministic fault-injection harness: it
// runs the full client → wire → transport → cluster stack on a simulated
// network (internal/netsim with a virtual clock and a seeded fault RNG),
// drives a randomized workload program — mixed single-server flushes,
// staged cross-server pipelines, lookups, and concurrent AddServer /
// RemoveServer rebalances — under a fault schedule of directional link
// partitions, per-link latency jitter and loss, connection drops, and
// server crash/restart, and checks the cluster-wide invariants the system
// documents:
//
//  1. Per-root program order: the deltas a counter applied appear in the
//     order its calls were recorded (per name, per dependency chain).
//  2. At-most-once execution: no batch effect is applied twice — not after
//     a redial, not after a wrong-home retry, not after a re-run rebalance.
//  3. Stage-scoped failure isolation: a failed dependency fails its
//     dependent futures; a flush that reports success settled every future.
//  4. Migration convergence: once the dust settles, every bound name
//     resolves at its ring home with self-consistent state and appears in
//     exactly one member's manifest — retried rebalances neither lose nor
//     duplicate a Movable object.
//  5. Epoch monotonicity and wrong-home termination: the directory's epoch
//     never decreases, no node runs ahead of it at quiesce, and a final
//     cluster-wide flush completes (stale-route retries terminate).
//  6. Counter consistency: the observability plane agrees with the model —
//     retry counters match the model's tally and the client never acks a
//     result the servers did not execute.
//  7. Cached-read freshness: a lease-cached readonly result never serves a
//     value older than its lease epoch allows — reads include every durably
//     applied prior write, replay real counter states, and never regress.
//  8. No acked flush is ever lost: the cluster runs replicated (R=2 by
//     default) and the schedule kills servers with STATE LOSS — often
//     mid-flush, racing the primary's death against the wave — yet every
//     token whose flush reported unconditional success is present in the
//     final authoritative logs. There is no state-loss exemption: the acked
//     write must survive through its follower's replica and the epoch-bump
//     failover. Only the documented in-flight migration window exempts a
//     flush (the same exemption invariant 3 applies), never the kill.
//  9. Stream-prefix delivery: every streaming GetBatch delivers a
//     strictly-ordered prefix of its request — entry indices 0, 1, 2, …
//     with no gap and no duplicate. Per-name failures count as delivered
//     entries, so a killed or partitioned destination may truncate the
//     stream but never reorder it, and a redial never replays a chunk into
//     a duplicate entry.
//
// Everything a run injects derives from one int64 seed: the workload
// program and the fault schedule are pure functions of it (pinned by
// TestSameSeedSameSchedule), and netsim's probabilistic outcomes (jitter
// draws, drop rolls) come from a seeded RNG — though which concurrent
// write consumes which roll depends on goroutine scheduling, so a replay
// re-explores the same fault regime rather than one exact interleaving.
// The invariants must hold for every interleaving, which is what makes the
// seed + schedule sufficient to investigate a failure: the regime, not the
// precise race, is what a violation indicts. On an invariant violation the
// harness shrinks the
// fault schedule — greedily re-running the same seeded workload with
// subsets of the fault events — and reports the minimal schedule that still
// fails, together with the replay command.
//
// Entry point:
//
//	go test ./internal/chaos -chaos.iters=N -chaos.seed=S
//
// Each iteration i simulates seed S+i. Two runs with the same seed produce
// identical workload programs and fault schedules (pinned by
// TestSameSeedSameSchedule); execution interleavings may differ — the
// invariants hold for all of them.
package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/clustertest"
	"repro/internal/netsim"
)

// Config parameterizes one simulation.
type Config struct {
	// Seed drives everything: program, schedule, and netsim fault RNG.
	Seed int64
	// Servers is the initial member count (endpoints server-0 …).
	Servers int
	// Spares is how many extra serving endpoints AddServer may pull in.
	Spares int
	// Names is how many counters are bound through the directory.
	Names int
	// Replication is the per-shard owner-list size R routed by the
	// directory (default 2: primary + one follower). 1 turns replication
	// off — the un-replicated ablation; state-loss kills are then not
	// scheduled, because without replicas an acked flush dies with its
	// primary by design.
	Replication int
	// Steps is the workload length in ops.
	Steps int
	// Faults enables the fault schedule; false runs the same workload on a
	// healthy network (the harness's own canary mode).
	Faults bool
	// FlushTimeout bounds each flush / rebalance op in wall time, a safety
	// net against harness hangs; faults fail connections promptly, so the
	// timeout should never be the thing that fires.
	FlushTimeout time.Duration
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Servers == 0 {
		c.Servers = 3
	}
	if c.Spares == 0 {
		c.Spares = 2
	}
	if c.Names == 0 {
		c.Names = 8
	}
	if c.Replication == 0 {
		c.Replication = 2
	}
	if c.Steps == 0 {
		c.Steps = 25
	}
	if c.FlushTimeout == 0 {
		c.FlushTimeout = 15 * time.Second
	}
	return c
}

// endpoints returns the initial member endpoints.
func (c Config) endpoints() []string {
	out := make([]string, c.Servers)
	for i := range out {
		out[i] = fmt.Sprintf("server-%d", i)
	}
	return out
}

// spareEndpoints returns the spare endpoints.
func (c Config) spareEndpoints() []string {
	out := make([]string, c.Spares)
	for i := range out {
		out[i] = fmt.Sprintf("spare-%d", i)
	}
	return out
}

// allEndpoints returns members + spares.
func (c Config) allEndpoints() []string {
	return append(c.endpoints(), c.spareEndpoints()...)
}

// hosts returns every fault-targetable identity: all serving endpoints plus
// the client host (the identity clustertest gives the client peer's dials).
func (c Config) hosts() []string {
	return append(c.allEndpoints(), clustertest.ClientHost)
}

// Result is one simulation's outcome.
type Result struct {
	Seed int64
	// ScheduleTrace is the deterministic rendering of the fault schedule
	// (and program header) actually used; equal for equal seeds.
	ScheduleTrace []string
	// Violations are invariant failures. Empty means the run passed.
	Violations []string
	// Flushes/Rebalances/FaultEvents summarize coverage for the log.
	Flushes, FailedFlushes, Rebalances, FailedRebalances, FaultEvents int
	// StaleRetries counts flushes that recovered through the wrong-home
	// retry path (waves > planned stages).
	StaleRetries int
	// CachedReads counts executed cached-read ops; CacheHits is how many
	// were served from a lease without a wire fetch.
	CachedReads, CacheHits int
	// Kills counts state-loss server kills the run executed; Failovers is
	// how many FailoverServer passes completed (boundary attempts that
	// failed under active faults are retried until quiesce succeeds).
	Kills, Failovers int
	// Streams counts executed getbatch ops; StreamEntries is how many
	// ordered entries their streams delivered in total.
	Streams, StreamEntries int
}

func (r *Result) summary() string {
	return fmt.Sprintf("seed=%d flushes=%d (failed %d) rebalances=%d (failed %d) faults=%d staleRetries=%d cachedReads=%d (hits %d) kills=%d failovers=%d streams=%d (entries %d)",
		r.Seed, r.Flushes, r.FailedFlushes, r.Rebalances, r.FailedRebalances, r.FaultEvents, r.StaleRetries, r.CachedReads, r.CacheHits, r.Kills, r.Failovers, r.Streams, r.StreamEntries)
}

// newNetwork builds the seeded simulated network for cfg: instant base
// links (injected faults supply latency), a virtual clock so injected
// latency costs almost no wall time, and the fault RNG seeded from the run
// seed.
func newNetwork(cfg Config) (*netsim.Network, *netsim.VirtualClock) {
	clk := netsim.NewVirtualClock()
	n := netsim.New(netsim.Instant, netsim.WithClock(clk), netsim.WithFaultSeed(cfg.Seed))
	return n, clk
}

// replayHint renders the command that reproduces a failing seed. The
// program and schedule derive from the whole Config, so topology fields
// that TestChaos cannot set from flags are called out explicitly.
func replayHint(cfg Config) string {
	hint := fmt.Sprintf("go test ./internal/chaos -run TestChaos -chaos.iters=1 -chaos.seed=%d -chaos.steps=%d", cfg.Seed, cfg.Steps)
	if def := (Config{Seed: cfg.Seed, Steps: cfg.Steps, Faults: cfg.Faults, FlushTimeout: cfg.FlushTimeout}).withDefaults(); cfg != def {
		hint += fmt.Sprintf(" (non-default topology — replay via chaos.Run with Config{Servers: %d, Spares: %d, Names: %d})",
			cfg.Servers, cfg.Spares, cfg.Names)
	}
	return hint
}

// indent joins lines for a readable failure report.
func indent(lines []string) string {
	return "\t" + strings.Join(lines, "\n\t")
}

// Run executes one seeded simulation. On an invariant violation it shrinks
// the fault schedule to a minimal still-failing subset and fails tb with
// the violations, the minimal schedule trace, and the replay command; on
// success it returns the run's coverage summary.
func Run(tb testing.TB, cfg Config) *Result {
	cfg = cfg.withDefaults()
	prog := genProgram(cfg)
	sched := genSchedule(cfg)
	res := runSim(tb, cfg, prog, sched)
	if len(res.Violations) == 0 {
		return res
	}
	minSched, minRes := shrink(func(s *Schedule) *Result {
		return runSim(tb, cfg, prog, s)
	}, sched, res)
	tb.Errorf("chaos: seed %d violated invariants:\n%s\nminimal fault schedule (%d of %d events):\n%s\nworkload:\n%s\nreplay: %s",
		cfg.Seed, indent(minRes.Violations),
		len(minSched.Events), len(sched.Events), indent(minSched.trace()),
		indent(prog.trace()), replayHint(cfg))
	return minRes
}
