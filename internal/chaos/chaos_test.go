package chaos

import (
	"context"
	"flag"
	"fmt"
	"slices"
	"testing"

	"repro/internal/cluster"
	"repro/internal/clustertest"
)

// The chaos entry point: go test ./internal/chaos -chaos.iters=N
// -chaos.seed=S [-chaos.steps=K]. Iteration i simulates seed S+i.
var (
	chaosIters = flag.Int("chaos.iters", 6, "seeded chaos iterations TestChaos runs")
	chaosSeed  = flag.Int64("chaos.seed", 1, "base seed; iteration i uses seed+i")
	chaosSteps = flag.Int("chaos.steps", 25, "workload ops per iteration")
)

func TestChaos(t *testing.T) {
	iters := *chaosIters
	if testing.Short() && iters == 6 {
		// The default-iteration run inside `go test -short ./...` is a
		// smoke pass; CI's dedicated chaos step sets -chaos.iters
		// explicitly and is not reduced.
		iters = 2
	}
	for i := 0; i < iters; i++ {
		seed := *chaosSeed + int64(i)
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			res := Run(t, Config{Seed: seed, Steps: *chaosSteps, Faults: true})
			t.Log(res.summary())
			if res.Flushes == 0 {
				t.Errorf("workload ran no flushes; generator degenerate for seed %d", seed)
			}
		})
	}
}

// TestNoFaultCanary runs the same seeded workloads with the fault schedule
// disabled: on a healthy network every invariant must hold — if this fails,
// the harness (or the system) is broken independent of fault injection.
func TestNoFaultCanary(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		res := Run(t, Config{Seed: seed, Faults: false})
		if len(res.Violations) > 0 {
			t.Errorf("seed %d violated invariants on a healthy network", seed)
		}
		if res.FaultEvents != 0 {
			t.Errorf("canary run has %d fault events, want 0", res.FaultEvents)
		}
	}
}

// TestSameSeedSameSchedule pins the acceptance criterion: two runs with the
// same seed produce identical workload programs and fault schedules, end to
// end — the printed trace of a failing run is sufficient to reproduce it.
func TestSameSeedSameSchedule(t *testing.T) {
	cfg := Config{Seed: 7, Faults: true}.withDefaults()

	// Generator determinism, from two independent derivations.
	p1, p2 := genProgram(cfg), genProgram(cfg)
	if a, b := p1.trace(), p2.trace(); !slices.Equal(a, b) {
		t.Fatalf("same seed generated different programs:\n%s\nvs\n%s", indent(a), indent(b))
	}
	s1, s2 := genSchedule(cfg), genSchedule(cfg)
	if a, b := s1.trace(), s2.trace(); !slices.Equal(a, b) {
		t.Fatalf("same seed generated different fault schedules:\n%s\nvs\n%s", indent(a), indent(b))
	}
	if len(s1.Events) == 0 {
		t.Fatal("seed 7 generated an empty fault schedule; pick a livelier seed for this test")
	}

	// End-to-end: two full simulations report the identical schedule trace
	// (execution interleavings may differ; the schedule may not).
	r1 := runSim(t, cfg, p1, s1)
	r2 := runSim(t, cfg, p2, s2)
	if !slices.Equal(r1.ScheduleTrace, r2.ScheduleTrace) {
		t.Fatalf("same seed executed different schedules:\n%s\nvs\n%s",
			indent(r1.ScheduleTrace), indent(r2.ScheduleTrace))
	}
}

// TestShrinkMinimizesSchedule exercises the shrinker against a synthetic
// failure predicate: when exactly one event is the culprit, the greedy pass
// must strip everything else and keep it.
func TestShrinkMinimizesSchedule(t *testing.T) {
	sched := genSchedule(Config{Seed: 3, Faults: true}.withDefaults())
	if len(sched.Events) < 3 {
		t.Fatalf("seed 3 generated only %d events; test needs a fuller schedule", len(sched.Events))
	}
	culprit := sched.Events[len(sched.Events)/2]
	runs := 0
	run := func(s *Schedule) *Result {
		runs++
		for _, e := range s.Events {
			if e == culprit {
				return &Result{Violations: []string{"culprit present"}}
			}
		}
		return &Result{}
	}
	min, res := shrink(run, sched, &Result{Violations: []string{"culprit present"}})
	if len(min.Events) != 1 || min.Events[0] != culprit {
		t.Fatalf("shrink kept %d events %v, want exactly the culprit %v", len(min.Events), min.trace(), culprit.trace())
	}
	if len(res.Violations) == 0 {
		t.Fatal("shrink result lost the violations")
	}
	if runs > shrinkBudget {
		t.Fatalf("shrink spent %d runs, budget is %d", runs, shrinkBudget)
	}
}

// TestStaleRouteRetryDuringMigration reproduces PR 3's hand-written
// stale-route scenario through the harness's op vocabulary instead of
// bespoke setup: a flush recorded before a scale-out runs after it, and
// must recover via the wrong-home retry wave with every invariant intact.
// The moved name is chosen against the grown ring exactly like the original
// test; the fault schedule adds a mid-op connection kill on the old home,
// so the retry also rides a redial.
func TestStaleRouteRetryDuringMigration(t *testing.T) {
	cfg := Config{Seed: 77, Servers: 2, Spares: 1, Names: 4, Faults: true}.withDefaults()
	old := cluster.NewRing(cfg.endpoints())
	grown := cluster.NewRing(append(cfg.endpoints(), "spare-0"))
	moving := clustertest.PickNames(old, grown, "server-0", "spare-0", 1)[0]
	staying := clustertest.PickNames(old, grown, "server-1", "server-1", 1)[0]

	prog := &program{
		names: []string{moving, staying},
		ops: []op{
			// Warm both counters.
			{Kind: opFlush, Calls: []callSpec{
				{Name: moving, Token: 1_000_000, Dep: -1},
				{Name: staying, Token: 1_000_001, Dep: -1},
			}},
			// Record against the old homes, scale out, then flush: the
			// moving root's wave is rejected wrong-home and must retry at
			// the newcomer — and a call on the staying server consumes the
			// retried call's value in the next wave. (The moved
			// destination keeps a single stage: DESIGN.md rule 4 makes the
			// stale retry applicable only on a destination's last stage.)
			{Kind: opStaleFlush, Endpoint: "spare-0", Add: true, Calls: []callSpec{
				{Name: moving, Token: 1_000_002, Dep: -1},
				{Name: staying, Token: 1_000_003, Dep: 0},
			}},
		},
	}
	sched := &Schedule{Events: []Event{
		{Kind: EvKillConns, Step: 2, Until: 2, A: "server-0", Mid: true},
	}}

	res := runSim(t, cfg, prog, sched)
	if len(res.Violations) > 0 {
		t.Fatalf("stale-route scenario violated invariants:\n%s", indent(res.Violations))
	}
	// Depending on where the racing connection kill lands, the run either
	// recovers through the retry wave, fails the flush, or fails the
	// rebalance itself (retried at quiesce) — but something must have been
	// exercised.
	if res.StaleRetries == 0 && res.FailedFlushes == 0 && res.FailedRebalances == 0 {
		t.Error("scenario completed without exercising the wrong-home retry or any fault path")
	}

	// The moved effects really landed: re-run without the connection-kill
	// fault — fully deterministic — and require the clean retry path.
	clean := runSim(t, cfg, prog, &Schedule{})
	if len(clean.Violations) > 0 {
		t.Fatalf("fault-free stale-route run violated invariants:\n%s", indent(clean.Violations))
	}
	if clean.FailedFlushes != 0 {
		t.Errorf("fault-free stale-route run failed %d flushes, want 0", clean.FailedFlushes)
	}
	if clean.StaleRetries != 1 {
		t.Errorf("fault-free stale-route run observed %d stale retries, want exactly 1", clean.StaleRetries)
	}
}

// TestCachedReadServedFromLease pins the cached-read op deterministically:
// on a fault-free run, the second read of an untouched name is served from
// its lease (a cache hit), a write invalidates it, and the cached-read
// invariant holds throughout.
func TestCachedReadServedFromLease(t *testing.T) {
	cfg := Config{Seed: 21, Servers: 2, Spares: 1, Names: 2, Faults: false}.withDefaults()
	prog := &program{
		names: []string{"obj-0", "obj-1"},
		ops: []op{
			{Kind: opFlush, Calls: []callSpec{{Name: "obj-0", Token: 1_000_000, Dep: -1}}},
			{Kind: opCachedRead, Name: "obj-0"}, // miss: mints the lease
			{Kind: opCachedRead, Name: "obj-0"}, // hit: zero round trips
			{Kind: opFlush, Calls: []callSpec{{Name: "obj-0", Token: 1_000_001, Dep: -1}}},
			{Kind: opCachedRead, Name: "obj-0"}, // the write dropped the lease: re-fetch
			{Kind: opCachedRead, Name: "obj-0"}, // hit again
		},
	}
	res := runSim(t, cfg, prog, &Schedule{})
	if len(res.Violations) > 0 {
		t.Fatalf("cached-read scenario violated invariants:\n%s", indent(res.Violations))
	}
	if res.CachedReads != 4 {
		t.Errorf("ran %d cached reads, want 4", res.CachedReads)
	}
	if res.CacheHits != 2 {
		t.Errorf("observed %d cache hits, want exactly 2 (one per untouched lease)", res.CacheHits)
	}
}

// TestCrashMidFlushAtMostOnce pins the crash regime directly: a server
// crashes in the middle of a fan-out flush and restarts with its state; the
// flush may fail, but nothing may execute twice, no dependent may outrun a
// failed dependency, and the cluster must converge.
func TestCrashMidFlushAtMostOnce(t *testing.T) {
	cfg := Config{Seed: 5, Servers: 3, Spares: 1, Names: 6, Faults: true}.withDefaults()
	prog := genProgram(Config{Seed: 5, Servers: 3, Spares: 1, Names: 6, Steps: 8}.withDefaults())
	sched := &Schedule{Events: []Event{
		{Kind: EvCrash, Step: 1, Until: 3, A: "server-0", Mid: true},
		{Kind: EvCrash, Step: 5, Until: 7, A: "server-1", Mid: true},
	}}
	res := runSim(t, cfg, prog, sched)
	if len(res.Violations) > 0 {
		t.Fatalf("crash-mid-flush violated invariants:\n%s", indent(res.Violations))
	}
}

// TestStateLossRestartRebindsCleanly covers the harness's crash-with-state-
// loss mode (a concern above netsim: the process is gone, not just its
// sockets): the cluster keeps serving, the lost member's names are
// re-bound by the operator, and lookups converge again.
func TestStateLossRestartRebindsCleanly(t *testing.T) {
	net, clk := newNetwork(Config{Seed: 11}.withDefaults())
	defer clk.Stop()
	defer net.Close()
	tc := clustertest.New(t, 0, clustertest.WithNetwork(net))
	defer tc.Close()
	for _, ep := range []string{"server-0", "server-1"} {
		tc.StartServer(ep)
	}
	dir := cluster.NewDirectory(tc.Client, []string{"server-0", "server-1"})
	ctx := context.Background()

	var names []string
	for i := 0; len(names) < 2; i++ {
		n := fmt.Sprintf("loss-%d", i)
		if home, _ := dir.Home(n); home == "server-0" {
			names = append(names, n)
			tc.BindCounter(dir, n, int64(100+i))
		}
	}

	// The process dies: listener slot freed, exports and registry gone.
	tc.CrashServer("server-0")
	if _, err := dir.Lookup(ctx, names[0]); err == nil {
		t.Fatal("lookup of a name on the dead server succeeded")
	}

	// A fresh, empty process takes over the endpoint; the operator re-binds.
	tc.StartServer("server-0")
	for i, n := range names {
		tc.BindCounter(dir, n, int64(100+i))
	}
	for _, n := range names {
		ref, err := dir.Lookup(ctx, n)
		if err != nil {
			t.Fatalf("lookup %s after state-loss restart: %v", n, err)
		}
		if _, err := tc.Client.Call(ctx, ref, "Get"); err != nil {
			t.Fatalf("call %s after state-loss restart: %v", n, err)
		}
	}
}
