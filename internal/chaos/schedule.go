package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/netsim"
)

// EventKind enumerates the injectable fault classes.
type EventKind int

// The fault classes the schedule draws from.
const (
	// EvPartition blocks the directed link A→B for [Step, Until).
	EvPartition EventKind = iota
	// EvCrash takes endpoint A down for [Step, Until): connections reset,
	// dials refused, in-memory state kept (crash with recovery).
	EvCrash
	// EvLink degrades the directed link A→B for [Step, Until) with extra
	// latency, jitter, and a per-write drop probability.
	EvLink
	// EvKillConns resets every connection touching A once, at Step — the
	// connection-drop fault; the endpoint stays up, clients redial.
	EvKillConns
	// EvKill kills endpoint A with STATE LOSS at Step (one-shot): the
	// process is gone, every object it hosted with it. The runner fails the
	// member over at the next step boundary (epoch-bump promotion of its
	// replicas) and the endpoint stays dead until quiesce restarts it as a
	// fresh empty process. This is the fault class behind the "no acked
	// flush is ever lost" invariant: it is applied via the runner, not
	// netsim, because it tears down the server, not just its links.
	EvKill
)

func (k EventKind) String() string {
	switch k {
	case EvPartition:
		return "partition"
	case EvCrash:
		return "crash"
	case EvLink:
		return "link"
	case EvKillConns:
		return "killconns"
	case EvKill:
		return "kill"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	Kind   EventKind
	Step   int // applied at the boundary before workload op Step (or during it, see Mid)
	Until  int // healed/restarted at the boundary before op Until (durable kinds)
	A, B   string
	Extra  time.Duration
	Jitter time.Duration
	Drop   float64
	// Mid injects the fault concurrently with op Step instead of before it,
	// racing it against the in-flight flush/rebalance, after MidDelay of
	// real time (drawn from the seed, so it is part of the schedule). The
	// injection point is scheduled deterministically; the exact
	// interleaving is whatever the race produces — the invariants must
	// hold for all of them. A fast op may complete before the delay
	// elapses, degrading the event to a late one-shot; its expiry window
	// is honored at the next boundary either way.
	Mid      bool
	MidDelay time.Duration
}

func (e Event) trace() string {
	mid := ""
	if e.Mid {
		mid = fmt.Sprintf(" mid+%s", e.MidDelay)
	}
	switch e.Kind {
	case EvPartition:
		return fmt.Sprintf("step=%d partition %s->%s until=%d%s", e.Step, e.A, e.B, e.Until, mid)
	case EvCrash:
		return fmt.Sprintf("step=%d crash %s until=%d%s", e.Step, e.A, e.Until, mid)
	case EvLink:
		return fmt.Sprintf("step=%d link %s->%s extra=%s jitter=%s drop=%.2f until=%d%s",
			e.Step, e.A, e.B, e.Extra, e.Jitter, e.Drop, e.Until, mid)
	case EvKillConns:
		return fmt.Sprintf("step=%d killconns %s%s", e.Step, e.A, mid)
	case EvKill:
		return fmt.Sprintf("step=%d kill %s (state loss)%s", e.Step, e.A, mid)
	}
	return fmt.Sprintf("step=%d unknown", e.Step)
}

// apply injects the event's onset into the network. EvKill is NOT applied
// here: it tears down the server process, which only the runner can do
// (runner.kill), not the network.
func (e Event) apply(n *netsim.Network) {
	switch e.Kind {
	case EvPartition:
		n.Partition(e.A, e.B)
	case EvCrash:
		n.Crash(e.A)
	case EvLink:
		n.SetLinkFaults(e.A, e.B, netsim.LinkFaults{ExtraLatency: e.Extra, Jitter: e.Jitter, DropPerWrite: e.Drop})
	case EvKillConns:
		n.KillConns(e.A)
	}
}

// Expiry is not an event method: the runner's scheduleBoundary heals the
// whole network and reinstalls the still-active events, so overlapping
// faults on one link expire correctly (see workload.go).

// Schedule is a deterministic list of fault events, ordered by Step.
type Schedule struct {
	Events []Event
}

// trace renders the schedule deterministically, one line per event.
func (s *Schedule) trace() []string {
	out := make([]string, len(s.Events))
	for i, e := range s.Events {
		out[i] = e.trace()
	}
	if len(out) == 0 {
		out = []string{"(no faults)"}
	}
	return out
}

// genSchedule derives the fault schedule from the seed. It draws one
// potential event per workload step; crash intervals never overlap (at most
// one server down at a time, so the workload retains a quorum of reachable
// members and every failure is attributable). When the cluster is
// replicated, the crash band also draws at most one state-loss kill
// (EvKill) per schedule — often mid-op, racing a flush in flight against
// the death of the primary it targets — so primary-crash failover is part
// of the default regime, not an opt-in.
func genSchedule(cfg Config) *Schedule {
	s := &Schedule{}
	if !cfg.Faults {
		return s
	}
	// An independent stream from the program generator's: both derive from
	// Seed but must not consume each other's draws.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eedfa017))
	endpoints := cfg.allEndpoints()
	hosts := cfg.hosts()
	crashedUntil := 0
	killed := false
	for step := 1; step <= cfg.Steps; step++ {
		if rng.Float64() > 0.40 {
			continue
		}
		dur := 1 + rng.Intn(3)
		until := step + dur
		// Until may point one past the last step: boundaries only run for
		// steps 1..Steps, so a tail event stays active through the final op
		// (step < Until) and the quiesce HealAll closes it.
		if until > cfg.Steps+1 {
			until = cfg.Steps + 1
		}
		e := Event{Step: step, Until: until}
		switch p := rng.Float64(); {
		case p < 0.30:
			e.Kind = EvPartition
			e.A, e.B = pickPair(rng, hosts)
		case p < 0.55:
			if step < crashedUntil {
				continue // one crash at a time
			}
			if cfg.Replication > 1 && !killed && rng.Float64() < 0.4 {
				// State-loss kill of an initial member (spares come and go
				// with membership ops; members are where the acked state
				// lives). One per schedule: the endpoint stays dead until
				// quiesce, and a second concurrent kill could drop a shard's
				// every owner, which no R=2 system survives.
				e.Kind = EvKill
				e.A = cfg.endpoints()[rng.Intn(cfg.Servers)]
				e.Mid = rng.Float64() < 0.5
				e.MidDelay = midDelay(rng, e.Mid)
				e.Until = step
				killed = true
				crashedUntil = until
				break
			}
			e.Kind = EvCrash
			e.A = endpoints[rng.Intn(len(endpoints))]
			e.Mid = rng.Float64() < 0.5
			e.MidDelay = midDelay(rng, e.Mid)
			crashedUntil = until
		case p < 0.85:
			e.Kind = EvLink
			e.A, e.B = pickPair(rng, hosts)
			e.Extra = time.Duration(rng.Intn(80)) * time.Millisecond
			e.Jitter = time.Duration(1+rng.Intn(40)) * time.Millisecond
			if rng.Float64() < 0.5 {
				e.Drop = 0.05 + 0.25*rng.Float64()
			}
		default:
			e.Kind = EvKillConns
			e.A = hosts[rng.Intn(len(hosts))]
			e.Mid = rng.Float64() < 0.5
			e.MidDelay = midDelay(rng, e.Mid)
			e.Until = step
		}
		s.Events = append(s.Events, e)
	}
	return s
}

// midDelay draws a mid-op injection delay in [0, 400µs): zero races the
// op's very first traffic, larger values land deeper into multi-trip ops
// (rebalances, staged flushes). Fast ops may finish before larger delays —
// that spread is the point; the drawn value is part of the schedule.
func midDelay(rng *rand.Rand, mid bool) time.Duration {
	if !mid {
		return 0
	}
	return time.Duration(rng.Intn(400)) * time.Microsecond
}

// pickPair draws a directed (src, dst) pair of distinct hosts.
func pickPair(rng *rand.Rand, hosts []string) (string, string) {
	a := hosts[rng.Intn(len(hosts))]
	for {
		b := hosts[rng.Intn(len(hosts))]
		if b != a {
			return a, b
		}
	}
}

// without returns a copy of the schedule with event index i removed.
func (s *Schedule) without(i int) *Schedule {
	events := make([]Event, 0, len(s.Events)-1)
	events = append(events, s.Events[:i]...)
	events = append(events, s.Events[i+1:]...)
	return &Schedule{Events: events}
}

// shrinkBudget caps the number of re-runs a shrink may spend.
const shrinkBudget = 48

// shrink greedily minimizes a failing schedule: repeatedly try dropping one
// event; keep any subset that still violates an invariant. Because
// violations can be timing-dependent, an attempt that no longer fails
// simply keeps the event — the result is the smallest schedule the budget
// could confirm failing, alongside its violations.
func shrink(run func(*Schedule) *Result, sched *Schedule, firstFailure *Result) (*Schedule, *Result) {
	best, bestRes := sched, firstFailure
	budget := shrinkBudget
	for {
		shrunk := false
		for i := 0; i < len(best.Events) && budget > 0; i++ {
			candidate := best.without(i)
			budget--
			res := run(candidate)
			if len(res.Violations) > 0 {
				best, bestRes = candidate, res
				shrunk = true
				break // restart the scan against the smaller schedule
			}
		}
		if !shrunk || budget <= 0 {
			return best, bestRes
		}
	}
}
