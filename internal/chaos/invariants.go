package chaos

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"repro/internal/cluster"
	"repro/internal/clustertest"
	"repro/internal/statsnode"
	"repro/internal/wire"
)

// checkInvariants runs the model checks against the quiesced cluster. The
// network is healed and the membership reconciled by the time it runs, so
// every remaining mismatch is a genuine violation, not an in-flight state.
func (r *runner) checkInvariants(ctx context.Context) {
	logs := r.collectLogs(ctx)
	if logs == nil {
		return // collection itself recorded the violation
	}
	r.checkProgramOrder(logs)
	r.checkAtMostOnce(logs)
	r.checkFailureIsolation(logs)
	r.checkCachedReads(logs)
	r.checkStreamPrefix()
	r.checkConvergence(ctx, logs)
	r.checkEpochs(ctx)
	// Counters last: checkEpochs runs a final cluster flush, and its calls
	// (retries included) must be on the books before the tally.
	r.checkCounters(ctx)
}

// collectLogs resolves every bound name to its authoritative counter and
// reads its applied-delta log in-process (the harness owns the server
// objects, so no wire traffic can distort the evidence).
func (r *runner) collectLogs(ctx context.Context) map[string][]int64 {
	logs := make(map[string][]int64, len(r.prog.names))
	for _, name := range r.prog.names {
		ctr, ref, err := r.counterFor(ctx, name)
		if err != nil {
			r.violate("migration convergence: %s unresolvable after quiesce: %v", name, err)
			return nil
		}
		log := ctr.History()
		logs[name] = log
		// Self-consistency: the total is exactly the sum of the log (chaos
		// counters are seeded with 0 and mutated only through Apply).
		var sum int64
		for _, d := range log {
			sum += d
		}
		if got := ctr.Get(); got != sum {
			r.violate("state consistency: %s total %d != sum of log %d (ref %v)", name, got, sum, ref)
		}
	}
	return logs
}

// counterFor resolves name through the directory and returns the live
// *clustertest.Counter behind its authoritative reference.
func (r *runner) counterFor(ctx context.Context, name string) (*clustertest.Counter, wire.Ref, error) {
	lctx, cancel := context.WithTimeout(ctx, r.cfg.FlushTimeout)
	defer cancel()
	ref, err := r.dir.Lookup(lctx, name)
	if err != nil {
		return nil, wire.Ref{}, err
	}
	s := r.tc.Server(ref.Endpoint)
	if s == nil {
		return nil, ref, fmt.Errorf("resolves to unknown endpoint %q", ref.Endpoint)
	}
	obj, ok := s.Peer.LocalObject(ref.ObjID)
	if !ok {
		return nil, ref, fmt.Errorf("ref %v not exported at its endpoint", ref)
	}
	ctr, ok := obj.(*clustertest.Counter)
	if !ok {
		return nil, ref, fmt.Errorf("ref %v resolves to a %T, not a Counter", ref, obj)
	}
	return ctr, ref, nil
}

// checkProgramOrder: invariant 1 — per root (per name), applied tokens
// appear in issue order. The workload chains same-name calls within a
// flush and flushes sequentially across ops, so the issue sequence is the
// authoritative order; faults may drop effects (holes are legal under
// documented windows) but must never reorder them.
func (r *runner) checkProgramOrder(logs map[string][]int64) {
	for name, log := range logs {
		issued := r.issued[name]
		pos := make(map[int64]int, len(issued))
		for i, tok := range issued {
			pos[tok] = i + 1 // 1-based; 0 means never issued
		}
		last := 0
		for i, tok := range log {
			p := pos[tok]
			if p == 0 {
				r.violate("program order: %s log[%d] holds token %d that was never issued for it", name, i, tok)
				continue
			}
			if p <= last {
				r.violate("program order: %s applied token %d (issue #%d) after issue #%d — recording order not preserved (log %v)",
					name, tok, p, last, log)
			}
			if p > last {
				last = p
			}
		}
	}
}

// checkAtMostOnce: invariant 2 — no token is applied twice anywhere:
// redials must not replay frames, wrong-home retries must not re-execute
// delivered waves, and re-run migrations must not double-restore.
func (r *runner) checkAtMostOnce(logs map[string][]int64) {
	seen := make(map[int64]string)
	for name, log := range logs {
		for _, tok := range log {
			if prev, ok := seen[tok]; ok {
				r.violate("at-most-once: token %d applied twice (%s and %s)", tok, prev, name)
			}
			seen[tok] = name
		}
	}
}

// checkFailureIsolation: invariant 3 — per flush: a failed dependency fails
// its dependents; a flush reporting overall success settled every future
// cleanly, and (outside documented migration windows) its effects are all
// present.
func (r *runner) checkFailureIsolation(logs map[string][]int64) {
	applied := make(map[int64]bool)
	for _, log := range logs {
		for _, tok := range log {
			applied[tok] = true
		}
	}
	for fi, f := range r.flushes {
		if f.recordErr != nil {
			continue // never flushed; nothing to isolate
		}
		for i, c := range f.calls {
			if c.Dep >= 0 && f.outcomes[c.Dep] != nil && f.outcomes[i] == nil {
				r.violate("failure isolation: flush %d call %d succeeded although its dependency (call %d) failed: %v",
					fi, i, c.Dep, f.outcomes[c.Dep])
			}
			if f.outcomes[i] != nil && c.Dep >= 0 && f.outcomes[c.Dep] != nil {
				// Dependent call was never sent: its effect must not exist —
				// unless the token somehow executed, which at-most-once
				// would only miss if the dep error was response loss. A
				// dep-failed call is settled client-side before sending, so
				// presence here is a real leak. Exception: a replication
				// quorum miss — the wave DID execute on its primary (the
				// error reports lost durability, not a lost write), so the
				// dependent's effect being present is the correct outcome.
				var qe *cluster.QuorumError
				if applied[c.Token] && !errors.As(f.outcomes[c.Dep], &qe) {
					r.violate("failure isolation: flush %d call %d (token %d) executed despite a failed dependency",
						fi, i, c.Token)
				}
			}
		}
		if f.flushErr == nil {
			for i := range f.calls {
				if f.outcomes[i] != nil {
					r.violate("failure isolation: flush %d reported success but call %d failed: %v", fi, i, f.outcomes[i])
				}
			}
			if !f.migrationConcurrent {
				// Invariant 8 — no acked flush is ever lost. This check has
				// NO state-loss exemption: the schedule kills primaries
				// mid-flush and the acked tokens must still be here, carried
				// through the follower's replica log and the epoch-bump
				// promotion. Only the documented in-flight migration window
				// (above) exempts a flush.
				for i, c := range f.calls {
					if !applied[c.Token] {
						r.violate("durability: flush %d succeeded with no concurrent migration, but call %d (token %d on %s) left no effect",
							fi, i, c.Token, c.Name)
					}
				}
			}
		}
	}
}

// checkCachedReads: invariant 7 — a cached read never serves a value older
// than its lease epoch allows. Writes invalidate their object's lease at
// record time and membership changes bump the epoch (dropping every lease),
// so for reads outside migration windows:
//
//  1. freshness / read-your-writes: the value includes every token durably
//     applied to the name before the read was issued — a lease minted
//     before one of those writes could not have survived its invalidation;
//  2. the value is a real counter state: some sum the counter could have
//     held at some instant. The name's tokens apply in issue order, so a
//     real state is a prefix of that order — but with one twist under
//     state-loss kills: a token whose flush never acked can execute, be
//     observed by a read, and then die with its primary (durability only
//     covers acked flushes). Such tokens are absent from the final log yet
//     were real when read. The reachable-state set is therefore built by
//     walking the issue order, treating tokens present in the final log as
//     mandatory and tokens absent from it as optional branches;
//  3. per name, values never regress across reads — the counter only grows,
//     so serving an older lease after a newer fetch would show time moving
//     backward. A regression from a value that is NOT a prefix sum of the
//     final durable log is exempt: that value contained a since-lost
//     unacked token, and the loss (not a stale lease) explains the drop.
//
// Reads that erred or overlapped a rebalance / open migration window are
// exempt: there the counter state itself may regress (a stale-ring write
// superseded by the retried move), which the durability exemption already
// documents — and any lease minted inside a window dies with the epoch bump
// that closes it, so it can never leak into a non-exempt read.
func (r *runner) checkCachedReads(logs map[string][]int64) {
	reachable := make(map[string]map[int64]bool, len(logs))
	durable := make(map[string]map[int64]bool, len(logs))
	for name, log := range logs {
		inLog := make(map[int64]bool, len(log))
		set := map[int64]bool{0: true}
		var sum int64
		for _, d := range log {
			inLog[d] = true
			sum += d
			set[sum] = true
		}
		durable[name] = set
		// Walk the issue order: states branch at optional (never-applied or
		// applied-then-lost) tokens. The branch count is bounded by the few
		// failed flushes a schedule produces, not the token count.
		states := map[int64]bool{0: true}
		all := map[int64]bool{0: true}
		for _, tok := range r.issued[name] {
			next := make(map[int64]bool, 2*len(states))
			for s := range states {
				if !inLog[tok] {
					next[s] = true
				}
				next[s+tok] = true
				all[s+tok] = true
			}
			states = next
		}
		reachable[name] = all
	}
	lastVal := make(map[string]int64)
	for _, rr := range r.reads {
		if rr.err != nil || rr.exempt {
			continue
		}
		if rr.val < rr.required {
			r.violate("cached read: op %d read %s = %d, but %d was durably applied before the read — the lease predates an invalidating write",
				rr.op+1, rr.name, rr.val, rr.required)
		}
		if set, ok := reachable[rr.name]; ok && !set[rr.val] {
			r.violate("cached read: op %d read %s = %d, which is no reachable state of its issue log — the value was never a real counter state",
				rr.op+1, rr.name, rr.val)
		}
		if prev, ok := lastVal[rr.name]; ok && rr.val < prev && durable[rr.name][prev] {
			r.violate("cached read: op %d read %s = %d after an earlier read saw %d — a stale lease outlived its epoch",
				rr.op+1, rr.name, rr.val, prev)
		}
		lastVal[rr.name] = rr.val
	}
}

// checkStreamPrefix: invariant 9 — every getbatch op delivered a
// strictly-ordered prefix of its request: entry indices 0, 1, 2, … with no
// gap and no duplicate. Per-name failures are delivered entries (the
// assembler turns a dead destination into error entries at the failed
// positions), so faults may truncate the stream — Next erroring out before
// io.EOF — but whatever arrived first must be the exact request order. A
// violation here indicts the assembler or the chunked transport beneath
// it: a reordered frame, a dropped chunk acked as delivered, a duplicate
// surviving a redial.
func (r *runner) checkStreamPrefix() {
	for _, sr := range r.streams {
		if len(sr.indices) > len(sr.names) {
			r.violate("stream prefix: op %d delivered %d entries for a %d-name request",
				sr.op+1, len(sr.indices), len(sr.names))
			continue
		}
		for pos, idx := range sr.indices {
			if idx != pos {
				kind := "gap"
				if idx < pos {
					kind = "duplicate"
				}
				r.violate("stream prefix: op %d delivered index %d at position %d (%s; delivered %v of %d names)",
					sr.op+1, idx, pos, kind, sr.indices, len(sr.names))
				break
			}
		}
	}
}

// checkConvergence: invariant 4 — after quiesce every name is homed where
// the ring says, exactly one member's manifest carries it, and (from
// collectLogs) its state is self-consistent: retried rebalances neither
// lost nor duplicated an object.
func (r *runner) checkConvergence(ctx context.Context, logs map[string][]int64) {
	holders := make(map[string][]string, len(logs))
	for _, s := range r.tc.Servers {
		if !r.dir.Ring().Contains(s.Endpoint) {
			// A drained ex-member must hold no clean binding for any name.
			for _, b := range s.Node.Manifest() {
				if _, ours := logs[b.Name]; ours {
					r.violate("migration convergence: ex-member %s still binds %s", s.Endpoint, b.Name)
				}
			}
			continue
		}
		for _, b := range s.Node.Manifest() {
			if _, ours := logs[b.Name]; ours {
				holders[b.Name] = append(holders[b.Name], s.Endpoint)
			}
		}
	}
	for _, name := range r.prog.names {
		hs := holders[name]
		if len(hs) != 1 {
			r.violate("migration convergence: %s bound at %d members %v, want exactly 1", name, len(hs), hs)
			continue
		}
		home, err := r.dir.Home(name)
		if err != nil {
			r.violate("migration convergence: %s has no ring home: %v", name, err)
			continue
		}
		if hs[0] != home {
			r.violate("migration convergence: %s bound at %s, ring home is %s", name, hs[0], home)
		}
	}
}

// checkEpochs: invariant 5 — the directory's observed epoch never
// decreased during the run, no node is ahead of the reconciled directory,
// nodes at the directory's epoch agree on the membership, and a final
// cluster-wide flush terminates (every wrong-home retry resolved).
func (r *runner) checkEpochs(ctx context.Context) {
	for i := 1; i < len(r.epochs); i++ {
		if r.epochs[i] < r.epochs[i-1] {
			r.violate("epoch monotonicity: directory epoch fell %d -> %d at op %d", r.epochs[i-1], r.epochs[i], i+1)
		}
	}
	dirEpoch := r.dir.Epoch()
	members := r.dir.Servers()
	for _, s := range r.tc.Servers {
		if !r.dir.Ring().Contains(s.Endpoint) {
			continue
		}
		snap := s.Node.RingState()
		if snap.Epoch > dirEpoch {
			r.violate("epoch monotonicity: node %s at epoch %d, ahead of the reconciled directory (%d)", s.Endpoint, snap.Epoch, dirEpoch)
		}
		if snap.Epoch == dirEpoch && !slices.Equal(snap.Members, members) {
			r.violate("epoch monotonicity: node %s members %v != directory members %v at epoch %d", s.Endpoint, snap.Members, members, dirEpoch)
		}
	}

	// Wrong-home retry termination: one Apply per name must flush cleanly
	// on the healed, reconciled cluster — any stale route left anywhere
	// resolves in the retry wave or fails this check.
	fctx, cancel := context.WithTimeout(ctx, r.cfg.FlushTimeout)
	defer cancel()
	//brmivet:ignore unflushed abandoned only on the violation path, which already fails the run
	b := cluster.New(r.tc.Client, cluster.WithDirectory(r.dir))
	tok := int64(9_000_000)
	var futures []*cluster.Future
	for _, name := range r.prog.names {
		p, err := b.RootNamed(fctx, name)
		if err != nil {
			r.violate("wrong-home termination: cannot resolve %s on the quiesced cluster: %v", name, err)
			return
		}
		// Not added to r.issued: logs were collected before this flush, so
		// these tokens are verified through their futures only.
		futures = append(futures, p.Call("Apply", tok, nil))
		tok++
	}
	err := b.Flush(fctx)
	if b.StaleRetried() {
		r.modelStaleRetries++
	}
	if err != nil {
		r.violate("wrong-home termination: final flush failed on the quiesced cluster: %v", err)
		return
	}
	for i, f := range futures {
		if err := f.Err(); err != nil {
			r.violate("wrong-home termination: final call on %s failed: %v", r.prog.names[i], err)
		}
	}
}

// checkCounters: invariant 6 — the observability plane agrees with the
// model. Scraping the quiesced members through the stats.Node service (one
// batched wave — the monitoring path under test IS a cluster flush), it
// asserts:
//
//  1. the client's cluster.wrong_home_retries counter equals the model's
//     tally of batches that spent their stale-route retry — retries never
//     recover silently and are never double-counted;
//  2. a scraped member's core.calls_executed matches its in-process
//     registry — the RMI scrape path reports the truth;
//  3. replay accounting balances: the client never acknowledges a result
//     the servers did not execute (acked ≤ executed cluster-wide), with
//     exact equality on a fault-free schedule — faults may lose responses
//     for executed calls, but nothing may execute unobserved or ack
//     unexecuted.
//
// It runs AFTER checkEpochs: that check's final flush executes calls, and
// the tallies here must include them.
func (r *runner) checkCounters(ctx context.Context) {
	sctx, cancel := context.WithTimeout(ctx, r.cfg.FlushTimeout)
	defer cancel()
	snaps, err := statsnode.ScrapeCluster(sctx, r.tc.Client, r.dir.Servers())
	if err != nil {
		r.violate("counter consistency: stats scrape failed on the healed cluster: %v", err)
		return
	}

	// The client registry is read after the scrape so the scrape's own
	// acked calls are on the books, matching the executed counts its Scrape
	// executions stamped into the server snapshots.
	client := r.tc.ClientStats.Snapshot()
	if got := client.Counter("cluster.wrong_home_retries"); got != int64(r.modelStaleRetries) {
		r.violate("counter consistency: cluster.wrong_home_retries = %d, model observed %d stale-route retries",
			got, r.modelStaleRetries)
	}

	// Work done by killed servers left tc.Servers with them; their tally was
	// saved at kill time and still backs the acked calls the client saw.
	executed := r.lostExecuted
	for _, s := range r.tc.Servers {
		local := s.Stats.Snapshot().Counter("core.calls_executed")
		executed += local
		if scraped, ok := snaps[s.Endpoint]; ok {
			if got := scraped.Counter("core.calls_executed"); got != local {
				r.violate("counter consistency: %s scraped core.calls_executed = %d, in-process registry says %d",
					s.Endpoint, got, local)
			}
		}
	}
	acked := client.Counter("core.calls_acked")
	if acked > executed {
		r.violate("counter consistency: client acked %d executed calls but servers executed only %d", acked, executed)
	}
	if len(r.sched.Events) == 0 && acked != executed {
		r.violate("counter consistency: fault-free run, but servers executed %d calls and the client acked %d", executed, acked)
	}
}
