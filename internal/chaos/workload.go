package chaos

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/clustertest"
	"repro/internal/netsim"
	"repro/internal/rcache"
)

// --- program -----------------------------------------------------------------

// callSpec is one recorded call of a flush op: Apply(Token, dep) on the
// counter bound to Name. Dep < 0 records a dependency-free call; otherwise
// the call passes the future of the flush's Dep-th call as its dataflow
// edge (a value splice — cross-server when the names' homes differ, which
// is what makes the flush a staged pipeline).
type callSpec struct {
	Name  string
	Token int64
	Dep   int
}

type opKind int

const (
	opFlush opKind = iota
	// opStaleFlush records its calls, runs a synchronous membership change,
	// THEN flushes — the recorded roots are stale by construction, forcing
	// the wrong-home retry path (the scenario PR 3 covered with bespoke
	// setup; here it is one draw of the op vocabulary).
	opStaleFlush
	opAddServer
	opRemoveServer
	opLookup
	// opCachedRead flushes one CallRO("Get") on a name through the shared
	// lease cache: sometimes a wire fetch that mints a lease, sometimes a
	// zero-round-trip cache hit. The cached-read invariant checks that no
	// hit ever serves a value older than its lease epoch allows.
	opCachedRead
	// opGetBatch issues one streaming cluster.GetBatch over a seeded name
	// subset (replica-spread reads on), racing the chunked streams against
	// whatever kills, partitions, and rebalances the schedule lands on the
	// destinations. The stream-prefix invariant checks the delivery: a
	// strictly-ordered prefix of the request, no gaps, no duplicates —
	// per-name failures count as delivered entries, a dead destination may
	// only truncate, never reorder.
	opGetBatch
)

// op is one workload step.
type op struct {
	Kind     opKind
	Calls    []callSpec // opFlush / opStaleFlush
	Endpoint string     // opAddServer / opRemoveServer, and opStaleFlush's change
	Add      bool       // opStaleFlush: direction of the change
	Async    bool       // rebalances: run concurrently with subsequent steps
	Name     string     // opLookup / opCachedRead
	Names    []string   // opGetBatch: the request, in order (repeats legal)
}

func (o op) trace() string {
	switch o.Kind {
	case opFlush, opStaleFlush:
		kind := "flush"
		if o.Kind == opStaleFlush {
			dir := "remove"
			if o.Add {
				dir = "add"
			}
			kind = fmt.Sprintf("staleflush(%s %s)", dir, o.Endpoint)
		}
		calls := ""
		for i, c := range o.Calls {
			if i > 0 {
				calls += " "
			}
			calls += fmt.Sprintf("%s@%d", c.Name, c.Token)
			if c.Dep >= 0 {
				calls += fmt.Sprintf("<-%d", c.Dep)
			}
		}
		return fmt.Sprintf("%s [%s]", kind, calls)
	case opAddServer:
		return fmt.Sprintf("add %s async=%v", o.Endpoint, o.Async)
	case opRemoveServer:
		return fmt.Sprintf("remove %s async=%v", o.Endpoint, o.Async)
	case opLookup:
		return fmt.Sprintf("lookup %s", o.Name)
	case opCachedRead:
		return fmt.Sprintf("cachedread %s", o.Name)
	case opGetBatch:
		return fmt.Sprintf("getbatch [%s]", strings.Join(o.Names, " "))
	}
	return "unknown"
}

// program is the seeded workload: bound names plus the op sequence.
type program struct {
	names []string
	ops   []op
}

func (p *program) trace() []string {
	out := make([]string, 0, len(p.ops)+1)
	out = append(out, fmt.Sprintf("names=%d ops=%d", len(p.names), len(p.ops)))
	for i, o := range p.ops {
		out = append(out, fmt.Sprintf("op=%d %s", i+1, o.trace()))
	}
	return out
}

// genProgram derives the workload from the seed. Within one flush, calls on
// the same name always chain (each deps on the name's previous call), so a
// name's record order equals its stage order — per-root program order is a
// checkable invariant even for staged flushes. Cross-name deps are free and
// create the multi-wave pipelines.
func genProgram(cfg Config) *program {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x60a7f10c2))
	p := &program{}
	for i := 0; i < cfg.Names; i++ {
		p.names = append(p.names, fmt.Sprintf("obj-%d", i))
	}
	members := map[string]bool{}
	for _, ep := range cfg.endpoints() {
		members[ep] = true
	}
	nonMembers := append([]string(nil), cfg.spareEndpoints()...)
	nextToken := int64(1_000_000)

	genCalls := func() []callSpec {
		k := 1 + rng.Intn(6)
		calls := make([]callSpec, 0, k)
		lastByName := map[string]int{}
		for i := 0; i < k; i++ {
			name := p.names[rng.Intn(len(p.names))]
			dep := -1
			if prev, ok := lastByName[name]; ok {
				dep = prev // same-name calls always chain
			} else if len(calls) > 0 && rng.Float64() < 0.45 {
				dep = rng.Intn(len(calls)) // cross-name pipeline edge
			}
			calls = append(calls, callSpec{Name: name, Token: nextToken, Dep: dep})
			lastByName[name] = i
			nextToken++
		}
		return calls
	}
	// membershipChange mutates the generator's model and returns the op
	// fields; returns ok=false when no legal change exists.
	membershipChange := func() (endpoint string, add, ok bool) {
		if len(nonMembers) > 0 && (len(members) <= 2 || rng.Float64() < 0.55) {
			i := rng.Intn(len(nonMembers))
			ep := nonMembers[i]
			nonMembers = append(nonMembers[:i], nonMembers[i+1:]...)
			members[ep] = true
			return ep, true, true
		}
		if len(members) > 2 {
			eps := make([]string, 0, len(members))
			for ep := range members {
				eps = append(eps, ep)
			}
			// Deterministic order before drawing: map iteration is not.
			sort.Strings(eps)
			ep := eps[rng.Intn(len(eps))]
			delete(members, ep)
			nonMembers = append(nonMembers, ep)
			return ep, false, true
		}
		return "", false, false
	}

	// genBatchNames draws one getbatch request: a few names in seeded
	// order, repeats legal (reading the same object twice in one batch is
	// a valid request the assembler must still deliver positionally).
	genBatchNames := func() []string {
		k := 2 + rng.Intn(len(p.names))
		out := make([]string, k)
		for i := range out {
			out[i] = p.names[rng.Intn(len(p.names))]
		}
		return out
	}

	for step := 0; step < cfg.Steps; step++ {
		switch q := rng.Float64(); {
		case q < 0.48:
			p.ops = append(p.ops, op{Kind: opFlush, Calls: genCalls()})
		case q < 0.58:
			if ep, add, ok := membershipChange(); ok {
				p.ops = append(p.ops, op{Kind: opStaleFlush, Calls: genCalls(), Endpoint: ep, Add: add})
			} else {
				p.ops = append(p.ops, op{Kind: opFlush, Calls: genCalls()})
			}
		case q < 0.74:
			if ep, add, ok := membershipChange(); ok {
				kind := opRemoveServer
				if add {
					kind = opAddServer
				}
				p.ops = append(p.ops, op{Kind: kind, Endpoint: ep, Async: rng.Float64() < 0.5})
			} else {
				p.ops = append(p.ops, op{Kind: opFlush, Calls: genCalls()})
			}
		case q < 0.84:
			p.ops = append(p.ops, op{Kind: opLookup, Name: p.names[rng.Intn(len(p.names))]})
		case q < 0.92:
			p.ops = append(p.ops, op{Kind: opCachedRead, Name: p.names[rng.Intn(len(p.names))]})
		default:
			p.ops = append(p.ops, op{Kind: opGetBatch, Names: genBatchNames()})
		}
	}
	return p
}

// --- runner ------------------------------------------------------------------

// flushRecord is the ledger entry of one executed flush op.
type flushRecord struct {
	op        int
	calls     []callSpec
	outcomes  []error // per call, from its future
	flushErr  error
	recordErr error // RootNamed failed; the flush never ran
	waves     int
	// staleRetried records Batch.StaleRetried(): the flush spent its single
	// wrong-home retry. The counter-consistency invariant tallies these
	// against the client's cluster.wrong_home_retries counter.
	staleRetried bool
	// migrationConcurrent marks flushes that overlapped a membership
	// change. DESIGN.md's in-flight window allows a stale-ring write
	// applied to the old copy to be superseded by the move, so the
	// "success implies effect present" check is waived for them; order and
	// at-most-once are not.
	migrationConcurrent bool
}

// readRecord is the ledger entry of one cached-read op: a CallRO("Get")
// flushed through the run's shared lease cache.
type readRecord struct {
	op   int
	name string
	val  int64
	err  error
	// exempt marks reads that overlapped a rebalance or an open migration
	// window: the counter state itself may regress across a superseded
	// write there, so freshness and monotonicity are waived (the cache is
	// not the thing being imprecise).
	exempt bool
	// required is the sum of tokens durably applied to name before the read
	// was issued. Every durable write invalidated the name's lease at
	// record time, so whatever lease serves this read was minted after
	// them — the value must include them all.
	required int64
}

// streamRecord is the ledger entry of one getbatch op: the request and the
// e.Index sequence exactly as the stream delivered it. The stream-prefix
// invariant re-reads this sequence; per-name failures are entries too, so a
// faulted run's record still carries every delivered position.
type streamRecord struct {
	op      int
	names   []string
	indices []int
	err     error // terminal Next error other than io.EOF (or a setup failure)
}

// runner executes one program under one schedule.
type runner struct {
	tb    testing.TB
	cfg   Config
	prog  *program
	sched *Schedule

	tc    *clustertest.Cluster
	dir   *cluster.Directory
	reb   *cluster.Rebalancer
	cache *rcache.Cache

	flushes []*flushRecord
	reads   []*readRecord
	streams []*streamRecord
	issued  map[string][]int64 // per name, tokens in issue order
	// durable is, per name, the running sum of tokens applied by flushes
	// whose success is unconditional (clean flush, clean outcome, no
	// concurrent migration) — the floor every later cached read must see.
	durable map[string]int64
	// modelStaleRetries counts every cluster batch that spent its
	// wrong-home retry — workload flushes and the invariant checker's own
	// final flush alike. All cluster batches run on the main goroutine, so
	// a plain int suffices.
	modelStaleRetries int

	rebMu      sync.Mutex
	rebPending chan error // one async rebalance at a time
	rebCount   int
	rebFailed  int
	midWG      sync.WaitGroup // mid-step fault injections in flight

	// State-loss kill tracking (EvKill). killed holds every endpoint killed
	// and not yet restarted; needFailover the killed members whose
	// FailoverServer has not yet succeeded (attempted at each boundary,
	// required to succeed by quiesce). lostExecuted accumulates the
	// core.calls_executed tally of killed servers at kill time: their
	// registries leave tc.Servers with them, and the counter-consistency
	// ledger must still account for the work they did.
	killMu       sync.Mutex
	killed       map[string]bool
	needFailover map[string]bool
	killCount    int
	failovers    int
	lostExecuted int64

	// The in-flight migration window (DESIGN.md): open while a partially
	// failed rebalance may have left names live at two homes. A failed
	// AddServer opens it cluster-wide (its leftovers sit mis-homed on any
	// member); a failed RemoveServer opens it for the victim endpoint (its
	// leftovers sit on the possibly-out-of-ring victim). A successful
	// AddServer rescans every member and migrates everything mis-homed, so
	// it closes the cluster-wide window and the window of the endpoint it
	// (re)joined; a successful RemoveServer drains exactly its victim.
	windowAll       bool
	windowEndpoints map[string]bool

	epochs []uint64 // dir epoch samples, one per op

	violations []string
}

// violate records an invariant violation.
func (r *runner) violate(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// runSim executes the full simulation for (cfg, prog, sched) on a fresh
// deployment and returns its result.
func runSim(tb testing.TB, cfg Config, prog *program, sched *Schedule) *Result {
	net, clk := newNetwork(cfg)
	defer clk.Stop()
	defer net.Close()
	tc := clustertest.New(tb, 0, clustertest.WithNetwork(net))
	defer tc.Close()
	for _, ep := range cfg.allEndpoints() {
		tc.StartServer(ep)
	}
	dir := cluster.NewDirectory(tc.Client, cfg.endpoints(), cluster.WithReplication(cfg.Replication))
	r := &runner{
		tb: tb, cfg: cfg, prog: prog, sched: sched,
		tc: tc, dir: dir, reb: cluster.NewRebalancer(dir),
		cache:        cluster.NewCache(tc.Client, dir, rcache.WithTTL(5*time.Minute)),
		issued:       make(map[string][]int64),
		durable:      make(map[string]int64),
		killed:       make(map[string]bool),
		needFailover: make(map[string]bool),
	}
	ctx := context.Background()
	for _, name := range prog.names {
		tc.BindCounter(dir, name, 0)
	}
	if cfg.Replication > 1 {
		// Seed every bound name's followers before the first op (replica
		// placement piggybacks on the idempotent rebalance flow): acked
		// flushes must be recoverable from the very first kill. The network
		// is still fault-free here, so a failure is a harness defect.
		if _, err := r.reb.AddServer(ctx, cfg.endpoints()[0]); err != nil {
			r.violate("bootstrap replica placement failed on a healthy network: %v", err)
		}
	}

	for i, o := range prog.ops {
		step := i + 1
		r.scheduleBoundary(step)
		r.mid(step) // arm mid-step injections before starting the op
		r.exec(ctx, o, i)
		r.epochs = append(r.epochs, dir.Epoch())
	}
	r.quiesce(ctx)
	r.checkInvariants(ctx)

	res := &Result{
		Seed:             cfg.Seed,
		ScheduleTrace:    sched.trace(),
		Violations:       r.violations,
		Rebalances:       r.rebCount,
		FailedRebalances: r.rebFailed,
		FaultEvents:      len(sched.Events),
		CachedReads:      len(r.reads),
		CacheHits:        int(tc.ClientStats.Snapshot().Counter("cache.hits")),
		Kills:            r.killCount,
		Failovers:        r.failovers,
		Streams:          len(r.streams),
	}
	for _, sr := range r.streams {
		res.StreamEntries += len(sr.indices)
	}
	for _, f := range r.flushes {
		res.Flushes++
		if f.flushErr != nil || f.recordErr != nil {
			res.FailedFlushes++
		}
		if f.flushErr == nil && f.recordErr == nil && f.staleRetried {
			res.StaleRetries++
		}
	}
	return res
}

// scheduleBoundary installs the fault state due at a step boundary: the
// set of durable events active at this step is computed from scratch and
// swapped in atomically (netsim.SetFaultSet), then this step's one-shot
// kills fire. Recomputing makes expiry correct when events overlap on one
// link — an incremental expire of the earlier event would heal the later
// one early — and the atomic swap means a window spanning several steps
// never transiently lifts at a boundary while an async rebalance is still
// sending; overlapping EvLink events on one pair resolve to the later one
// (schedule order), deterministically. The previous step's mid-op
// injections are joined first: ops can finish faster than their seeded
// injection delay, and a boundary racing its own step's fault would break
// the generator's one-crash-at-a-time guarantee. Mid events join the
// installed set at the NEXT boundary (their onset mid-op is applied
// incrementally by mid()).
func (r *runner) scheduleBoundary(step int) {
	r.midWG.Wait()
	// A killed member is failed over at the first boundary after its death:
	// the runner plays the operator (or failure detector) that production
	// would have. Attempts under active faults may fail and are retried at
	// every later boundary; quiesce requires the final attempt to succeed.
	r.attemptFailovers()
	var fs netsim.FaultSet
	for _, e := range r.sched.Events {
		if e.Kind == EvKillConns || e.Kind == EvKill || !(e.Step < step || (e.Step == step && !e.Mid)) || step >= e.Until {
			continue
		}
		switch e.Kind {
		case EvPartition:
			fs.Partitions = append(fs.Partitions, [2]string{e.A, e.B})
		case EvCrash:
			fs.Down = append(fs.Down, e.A)
		case EvLink:
			if fs.Links == nil {
				fs.Links = make(map[[2]string]netsim.LinkFaults)
			}
			fs.Links[[2]string{e.A, e.B}] = netsim.LinkFaults{ExtraLatency: e.Extra, Jitter: e.Jitter, DropPerWrite: e.Drop}
		}
	}
	r.tc.Network.SetFaultSet(fs)
	for _, e := range r.sched.Events {
		if (e.Kind == EvKillConns || e.Kind == EvKill) && e.Step == step && !e.Mid {
			r.fire(e)
		}
	}
}

// fire executes one event's onset now, on whichever goroutine calls it:
// kills go through the runner (they tear down a server), everything else
// through the network.
func (r *runner) fire(e Event) {
	if e.Kind == EvKill {
		r.kill(e.A)
		return
	}
	e.apply(r.tc.Network)
}

// kill executes a state-loss kill: the server's process is torn down with
// no handoff (clustertest.CrashServer), its executed-calls tally is saved
// for the counter ledger, and a failover is owed — even when the endpoint
// is no longer (or not yet again) a ring member: a RemoveServer that failed
// mid-migration can strand state on an already-broadcast-out endpoint, and
// FailoverServer's non-member path recovers it from the survivors' replicas
// (and converges trivially when there is nothing to recover). Idempotent
// for an endpoint already dead.
func (r *runner) kill(endpoint string) {
	r.killMu.Lock()
	defer r.killMu.Unlock()
	s := r.tc.Server(endpoint)
	if s == nil {
		return // already dead (or never restarted); nothing left to kill
	}
	if ring := r.dir.Ring(); ring.Contains(endpoint) && ring.Size() == 1 {
		// The workload shrank the membership to this one server: there are
		// no replicas left to fail over to, so a state-loss kill here is
		// outside the durability model (invariant 8 presumes R>1 survivors).
		return
	}
	r.tc.CrashServer(endpoint)
	// Snapshot AFTER the teardown: connections are dead, so nothing acked
	// from here on can have executed there uncounted (a post-close execute
	// that sneaks into the tally only overstates executed, which the
	// acked ≤ executed check tolerates by design).
	r.lostExecuted += s.Stats.Snapshot().Counter("core.calls_executed")
	r.killed[endpoint] = true
	r.needFailover[endpoint] = true
	r.killCount++
}

// attemptFailovers runs FailoverServer for every killed member still owed
// one. Main goroutine only (boundaries and quiesce, after midWG joined), so
// no failover ever races a mid-op kill.
func (r *runner) attemptFailovers() {
	r.killMu.Lock()
	pending := make([]string, 0, len(r.needFailover))
	for ep := range r.needFailover {
		pending = append(pending, ep)
	}
	r.killMu.Unlock()
	sort.Strings(pending)
	for _, ep := range pending {
		fctx, cancel := context.WithTimeout(context.Background(), r.cfg.FlushTimeout)
		_, err := r.reb.FailoverServer(fctx, ep)
		cancel()
		if err == nil {
			r.killMu.Lock()
			delete(r.needFailover, ep)
			r.failovers++
			r.killMu.Unlock()
		}
	}
}

// mid arms this step's mid-op injections: each fires from its own goroutine
// after its seeded delay, racing the fault against in-flight work. Both
// quiesce and the next boundary wait for them, so no injection outlives
// its scheduled window.
func (r *runner) mid(step int) {
	for _, e := range r.sched.Events {
		if e.Step == step && e.Mid {
			ev := e
			r.midWG.Add(1)
			go func() {
				defer r.midWG.Done()
				time.Sleep(ev.MidDelay)
				r.fire(ev)
			}()
		}
	}
}

// exec runs one workload op.
func (r *runner) exec(ctx context.Context, o op, idx int) {
	switch o.Kind {
	case opFlush:
		r.flush(ctx, o, idx, nil)
	case opStaleFlush:
		r.flush(ctx, o, idx, func() {
			r.joinRebalance()
			r.rebalance(ctx, o.Endpoint, o.Add)
		})
	case opAddServer, opRemoveServer:
		r.joinRebalance()
		if o.Async {
			ch := make(chan error, 1)
			r.rebMu.Lock()
			r.rebPending = ch
			r.rebMu.Unlock()
			go func() { ch <- r.rebalanceErr(ctx, o.Endpoint, o.Kind == opAddServer) }()
		} else {
			r.rebalance(ctx, o.Endpoint, o.Kind == opAddServer)
		}
	case opLookup:
		lctx, cancel := context.WithTimeout(ctx, r.cfg.FlushTimeout)
		_, _ = r.dir.Lookup(lctx, o.Name) // failures under faults are legal; epoch samples catch regressions
		cancel()
	case opCachedRead:
		r.cachedRead(ctx, o, idx)
	case opGetBatch:
		r.getBatch(ctx, o, idx)
	}
}

// getBatch issues one streaming bulk read over o.Names (replica spread on)
// and ledgers the delivery sequence for the stream-prefix invariant. Under
// faults anything may fail — a dead destination surfaces as per-entry
// errors or a truncated stream, both legal — but whatever IS delivered
// must be the ordered prefix the record captures.
func (r *runner) getBatch(ctx context.Context, o op, idx int) {
	sr := &streamRecord{op: idx, names: o.Names}
	r.streams = append(r.streams, sr)
	gctx, cancel := context.WithTimeout(ctx, r.cfg.FlushTimeout)
	defer cancel()
	s, err := cluster.GetBatch(gctx, r.tc.Client, r.dir, o.Names,
		cluster.WithGetMethod("Get"), cluster.WithReadReplicas())
	if err != nil {
		sr.err = err
		return
	}
	defer s.Close()
	for {
		e, err := s.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			sr.err = err
			return
		}
		sr.indices = append(sr.indices, e.Index)
	}
}

// cachedRead flushes one CallRO("Get") on o.Name through the run's shared
// lease cache and ledgers the observed value for the cached-read invariant.
func (r *runner) cachedRead(ctx context.Context, o op, idx int) {
	rr := &readRecord{op: idx, name: o.Name, required: r.durable[o.Name]}
	rr.exempt = r.rebalanceInFlight() || r.migrationWindowOpen()
	r.reads = append(r.reads, rr)

	rctx, cancel := context.WithTimeout(ctx, r.cfg.FlushTimeout)
	defer cancel()
	//brmivet:ignore unflushed abandoned only on the resolve-failure path, recorded in the read ledger
	b := cluster.New(r.tc.Client, cluster.WithDirectory(r.dir), cluster.WithCache(r.cache))
	p, err := b.RootNamed(rctx, o.Name)
	if err != nil {
		rr.err = err
		return
	}
	f := p.CallRO("Get")
	ferr := b.Flush(rctx)
	if b.StaleRetried() {
		r.modelStaleRetries++
	}
	if ferr != nil {
		rr.err = ferr
		return
	}
	rr.val, rr.err = cluster.Typed[int64](f).Get()
	// An async rebalance may have started mid-read; re-check the window.
	if r.rebalanceInFlight() || r.migrationWindowOpen() {
		rr.exempt = true
	}
}

// flush records o.Calls, optionally runs between() (the stale-flush
// membership change), then flushes and ledgers every outcome.
func (r *runner) flush(ctx context.Context, o op, idx int, between func()) {
	fr := &flushRecord{op: idx, calls: o.Calls}
	r.flushes = append(r.flushes, fr)
	// A failed rebalance leaves DESIGN.md's in-flight window open until a
	// later successful pass covers its leftovers: a name can be live at
	// both homes, and a write applied to the old copy is superseded by the
	// retried move. Every flush inside that window is exempt from the
	// "success implies effect present" check — order and at-most-once are
	// never exempt.
	fr.migrationConcurrent = r.rebalanceInFlight() || between != nil || r.migrationWindowOpen()

	fctx, cancel := context.WithTimeout(ctx, r.cfg.FlushTimeout)
	defer cancel()
	//brmivet:ignore unflushed abandoned only on the resolve-failure path, recorded in the flush ledger
	b := cluster.New(r.tc.Client, cluster.WithDirectory(r.dir), cluster.WithCache(r.cache))
	proxies := map[string]*cluster.Proxy{}
	futures := make([]*cluster.Future, len(o.Calls))
	for _, c := range o.Calls {
		if _, ok := proxies[c.Name]; ok {
			continue
		}
		p, err := b.RootNamed(fctx, c.Name)
		if err != nil {
			fr.recordErr = err
			return
		}
		proxies[c.Name] = p
	}
	for i, c := range o.Calls {
		var dep any
		if c.Dep >= 0 {
			dep = futures[c.Dep]
		}
		futures[i] = proxies[c.Name].Call("Apply", c.Token, dep)
		r.issued[c.Name] = append(r.issued[c.Name], c.Token)
	}
	if between != nil {
		between()
		fr.migrationConcurrent = true
	}
	fr.flushErr = b.Flush(fctx)
	fr.waves = b.Waves()
	fr.staleRetried = b.StaleRetried()
	if fr.staleRetried {
		r.modelStaleRetries++
	}
	fr.outcomes = make([]error, len(futures))
	for i, f := range futures {
		fr.outcomes[i] = f.Err()
	}
	// An async rebalance may have started/finished mid-flush; re-check.
	if r.rebalanceInFlight() || r.migrationWindowOpen() {
		fr.migrationConcurrent = true
	}
	// Tokens whose success is unconditional raise the freshness floor for
	// later cached reads of their name.
	if fr.flushErr == nil && !fr.migrationConcurrent {
		for i, c := range fr.calls {
			if fr.outcomes[i] == nil {
				r.durable[c.Name] += c.Token
			}
		}
	}
}

// rebalance runs a membership change synchronously, recording the outcome.
func (r *runner) rebalance(ctx context.Context, endpoint string, add bool) {
	_ = r.rebalanceErr(ctx, endpoint, add)
}

func (r *runner) rebalanceErr(ctx context.Context, endpoint string, add bool) error {
	r.rebMu.Lock()
	r.rebCount++
	r.rebMu.Unlock()
	rctx, cancel := context.WithTimeout(ctx, r.cfg.FlushTimeout)
	defer cancel()
	var err error
	if add {
		_, err = r.reb.AddServer(rctx, endpoint)
	} else {
		_, err = r.reb.RemoveServer(rctx, endpoint)
	}
	r.noteRebalance(endpoint, add, err)
	return err
}

// noteRebalance updates the failure tally and the in-flight migration
// window tracking (see the field comment).
func (r *runner) noteRebalance(endpoint string, add bool, err error) {
	r.rebMu.Lock()
	defer r.rebMu.Unlock()
	if r.windowEndpoints == nil {
		r.windowEndpoints = make(map[string]bool)
	}
	switch {
	case err != nil && add:
		r.rebFailed++
		r.windowAll = true
	case err != nil:
		r.rebFailed++
		r.windowEndpoints[endpoint] = true
	case add:
		r.windowAll = false
		delete(r.windowEndpoints, endpoint)
	default:
		delete(r.windowEndpoints, endpoint)
	}
}

// joinRebalance waits for the in-flight async rebalance, if any (its
// outcome was already noted by the goroutine running it).
func (r *runner) joinRebalance() {
	r.rebMu.Lock()
	ch := r.rebPending
	r.rebPending = nil
	r.rebMu.Unlock()
	if ch != nil {
		<-ch
	}
}

func (r *runner) rebalanceInFlight() bool {
	r.rebMu.Lock()
	defer r.rebMu.Unlock()
	return r.rebPending != nil
}

// migrationWindowOpen reports whether some partially failed rebalance may
// still have a name live at two homes.
func (r *runner) migrationWindowOpen() bool {
	r.rebMu.Lock()
	defer r.rebMu.Unlock()
	return r.windowAll || len(r.windowEndpoints) > 0
}

// quiesce heals every fault, joins outstanding work, and reconciles the
// membership: AddServer for every intended member (idempotent — completes
// partial migrations and re-broadcasts the ring) and RemoveServer for every
// endpoint that should be out (drains leftovers). Bounded retries: under a
// healed network this must converge, and failing to is itself a violation.
func (r *runner) quiesce(ctx context.Context) {
	r.midWG.Wait()
	r.tc.Network.HealAll()
	r.joinRebalance()

	intended := r.intendedMembers()
	var lastErr error
	for attempt := 0; attempt < 6; attempt++ {
		lastErr = nil
		// Settle the kills first, in order: any killed member still owed a
		// failover gets it (on the healed network this must succeed), THEN
		// every killed endpoint restarts as a fresh empty process — restart
		// before failover would race an empty impostor against the
		// election, and a dead, unrestarted endpoint would leave the
		// reconcile below unable to read its (empty) manifest.
		r.attemptFailovers()
		r.killMu.Lock()
		if len(r.needFailover) == 0 {
			for ep := range r.killed {
				if r.tc.Server(ep) == nil {
					r.tc.StartServer(ep)
				}
				delete(r.killed, ep)
			}
		} else {
			lastErr = fmt.Errorf("failover still pending for %d killed members", len(r.needFailover))
		}
		r.killMu.Unlock()
		qctx, cancel := context.WithTimeout(ctx, r.cfg.FlushTimeout)
		if err := r.dir.Refresh(qctx); err != nil {
			lastErr = err
		}
		for _, ep := range r.cfg.allEndpoints() {
			var err error
			if intended[ep] {
				_, err = r.reb.AddServer(qctx, ep)
			} else {
				_, err = r.reb.RemoveServer(qctx, ep)
			}
			if err != nil {
				lastErr = fmt.Errorf("%s: %w", ep, err)
			}
		}
		cancel()
		if lastErr == nil {
			return
		}
	}
	r.violate("quiesce did not converge on a healed network: %v", lastErr)
}

// intendedMembers replays the program's membership changes to the final
// intended member set.
func (r *runner) intendedMembers() map[string]bool {
	m := map[string]bool{}
	for _, ep := range r.cfg.endpoints() {
		m[ep] = true
	}
	for _, o := range r.prog.ops {
		switch o.Kind {
		case opAddServer:
			m[o.Endpoint] = true
		case opRemoveServer:
			delete(m, o.Endpoint)
		case opStaleFlush:
			if o.Add {
				m[o.Endpoint] = true
			} else {
				delete(m, o.Endpoint)
			}
		}
	}
	return m
}
