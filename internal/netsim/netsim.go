// Package netsim provides an in-memory network with configurable propagation
// latency and bandwidth, standing in for the two physical testbeds used in
// the paper's evaluation (a 1 Gbps / 1 ms LAN and a 48 Mbps / 252 ms wireless
// link between two Windows XP machines, §5.2).
//
// Every quantitative effect in the paper's Figures 5-13 is a function of
// round-trip latency, link bandwidth, and per-call marshalling cost. The
// simulator injects exactly the first two; the codec supplies the third. So
// the figures' shapes (linear growth for RMI, flat curves for BRMI, the
// crossover points) are preserved even though the absolute milliseconds
// belong to 2009 hardware we do not have.
//
// Profiles can be scaled down (Profile.Scaled) to keep wall-clock benchmark
// time reasonable on the high-latency wireless profile; scaling divides both
// latency and the per-byte transmission time, which multiplies every data
// point by the same constant and therefore preserves shape.
package netsim

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// Profile describes a simulated link.
type Profile struct {
	// Name labels the profile in benchmark output.
	Name string
	// RTT is the round-trip propagation delay. Each direction incurs RTT/2.
	RTT time.Duration
	// BitsPerSecond is the link bandwidth; 0 means infinite (no pacing).
	BitsPerSecond float64
}

// The paper's two experimental configurations (§5.2) plus an instantaneous
// profile for unit tests.
var (
	// Instant has no latency and infinite bandwidth.
	Instant = Profile{Name: "instant"}
	// LAN mirrors configuration 1: dedicated 1 Gbps, 1 ms latency network.
	LAN = Profile{Name: "lan", RTT: time.Millisecond, BitsPerSecond: 1e9}
	// Wireless mirrors configuration 2: 48 Mbps, 252 ms latency wireless
	// network (the figures label the link 48 Mbps; the text says 54 Mbps —
	// we follow the figures).
	Wireless = Profile{Name: "wireless", RTT: 252 * time.Millisecond, BitsPerSecond: 48e6}
	// WAN models a cross-datacenter link (no counterpart in the paper, which
	// measured a single client/server pair): 80 ms RTT, 100 Mbps. It is the
	// profile where the cluster fan-out benchmark's parallelism matters most,
	// since every sequential per-server round trip costs a full WAN RTT.
	WAN = Profile{Name: "wan", RTT: 80 * time.Millisecond, BitsPerSecond: 100e6}
)

// Scaled returns a copy of p with latency divided by factor and bandwidth
// multiplied by factor, shrinking every time component uniformly. factor <= 1
// returns p unchanged.
func (p Profile) Scaled(factor int) Profile {
	if factor <= 1 {
		return p
	}
	q := p
	q.Name = fmt.Sprintf("%s/%d", p.Name, factor)
	q.RTT = p.RTT / time.Duration(factor)
	if p.BitsPerSecond > 0 {
		q.BitsPerSecond = p.BitsPerSecond * float64(factor)
	}
	return q
}

// oneWay returns the one-direction propagation delay.
func (p Profile) oneWay() time.Duration { return p.RTT / 2 }

// txTime returns the serialization (transmission) delay for n bytes.
func (p Profile) txTime(n int) time.Duration {
	if p.BitsPerSecond <= 0 || n == 0 {
		return 0
	}
	return time.Duration(float64(n) * 8 / p.BitsPerSecond * float64(time.Second))
}

// Network is an in-memory Network implementation (in the sense of
// transport.Network) whose connections exhibit the profile's latency and
// bandwidth. Endpoints are arbitrary names.
//
// Beyond the healthy-path profile, a Network carries a fault surface
// (faults.go): directional partitions, per-link latency/jitter/loss,
// connection drops, and endpoint crashes, all injectable at runtime. All
// temporal behaviour routes through the network's Clock (clock.go), so a
// VirtualClock makes high-latency fault scenarios cheap and host-
// scheduling-independent.
type Network struct {
	profile Profile
	clock   Clock
	faults  *faultState

	mu        sync.Mutex
	listeners map[string]*listener
	closed    bool
}

// Option configures a Network.
type Option func(*Network)

// WithClock substitutes the network's time source (default: RealClock).
func WithClock(c Clock) Option {
	return func(n *Network) { n.clock = c }
}

// WithFaultSeed seeds the RNG behind probabilistic link faults (jitter
// draws, drop rolls). The default seed is 1; chaos harnesses pass their run
// seed so fault outcomes are reproducible.
func WithFaultSeed(seed int64) Option {
	return func(n *Network) { n.faults = newFaultState(seed) }
}

// New creates a network with the given link profile.
func New(profile Profile, opts ...Option) *Network {
	n := &Network{
		profile:   profile,
		clock:     RealClock,
		faults:    newFaultState(1),
		listeners: make(map[string]*listener),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Clock returns the network's time source.
func (n *Network) Clock() Clock { return n.clock }

// Profile returns the network's link profile.
func (n *Network) Profile() Profile { return n.profile }

// Listen implements transport.Network.
func (n *Network) Listen(endpoint string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, net.ErrClosed
	}
	if _, ok := n.listeners[endpoint]; ok {
		return nil, fmt.Errorf("netsim: endpoint %q already bound", endpoint)
	}
	l := &listener{
		network:  n,
		endpoint: endpoint,
		backlog:  make(chan net.Conn, 16),
		done:     make(chan struct{}),
	}
	n.listeners[endpoint] = l
	return l, nil
}

// Dial implements transport.Network. Un-attributed dials have source
// identity "" for fault targeting; use Host views to name the dialer.
func (n *Network) Dial(ctx context.Context, endpoint string) (net.Conn, error) {
	return n.dialFrom(ctx, "", endpoint)
}

// dialFrom opens a connection from the named source host to endpoint,
// subject to the network's fault state.
func (n *Network) dialFrom(ctx context.Context, src, endpoint string) (net.Conn, error) {
	if err := n.dialRefused(src, endpoint); err != nil {
		return nil, err
	}
	n.mu.Lock()
	l, ok := n.listeners[endpoint]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netsim: dial %q: connection refused", endpoint)
	}
	client, server := n.connPair(src, endpoint)
	select {
	case l.backlog <- server:
		n.register(client.(*conn))
		n.register(server.(*conn))
		// Re-check after registering, with the KILL-SWEEP predicate (either
		// direction blocked, either endpoint down): a fault installed
		// between the check above and register would miss this pair in its
		// sweep (sweeps iterate only registered conns), silently letting a
		// connection span a crash or partition.
		if n.pairForbidden(pair{src, endpoint}) {
			client.(*conn).reset()
			server.(*conn).reset()
			return nil, fmt.Errorf("netsim: dial %q from %q: connection reset by fault", endpoint, src)
		}
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("netsim: dial %q: connection refused", endpoint)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close shuts down all listeners. Existing connections keep working until
// closed by their owners.
func (n *Network) Close() error {
	n.mu.Lock()
	listeners := make([]*listener, 0, len(n.listeners))
	for _, l := range n.listeners {
		listeners = append(listeners, l)
	}
	n.closed = true
	n.mu.Unlock()
	for _, l := range listeners {
		_ = l.Close()
	}
	return nil
}

func (n *Network) removeListener(endpoint string) {
	n.mu.Lock()
	delete(n.listeners, endpoint)
	n.mu.Unlock()
}

type listener struct {
	network  *Network
	endpoint string
	backlog  chan net.Conn
	once     sync.Once
	done     chan struct{}
}

var _ net.Listener = (*listener)(nil)

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.network.removeListener(l.endpoint)
	})
	return nil
}

func (l *listener) Addr() net.Addr { return simAddr(l.endpoint) }

type simAddr string

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return string(a) }
