package netsim

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts the time source behind the simulator. Every temporal
// decision in the network — chunk due times, bandwidth pacing horizons, read
// deadlines, and the timers that wake blocked readers — goes through the
// network's Clock, never through the time package directly. The default is
// the real wall clock; the chaos harness substitutes a VirtualClock so that
// simulated latency costs (almost) no wall time and a run's timing is
// decoupled from host scheduling jitter.
type Clock interface {
	// Now returns the current (possibly simulated) time.
	Now() time.Time
	// AfterFunc schedules fn to run once d has elapsed on this clock and
	// returns a handle that can cancel it.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is a cancellable pending AfterFunc.
type Timer interface {
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// realClock routes through the time package.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) AfterFunc(d time.Duration, fn func()) Timer { return time.AfterFunc(d, fn) }

// RealClock is the wall-clock time source, the default for every Network.
var RealClock Clock = realClock{}

// VirtualClock is a discrete-event time source: it holds a logical "now" and
// a heap of pending timers, and advances now straight to the earliest
// pending due time whenever the simulation goes quiet — so an 80 ms
// simulated RTT costs microseconds of wall time, and timing depends on the
// event schedule rather than on how fast the host happens to run.
//
// Quiescence is approximated, not proven: the clock advances only after
// grace (a small real-time window) passes with no new timer armed, giving
// in-flight goroutines the chance to schedule earlier events first. This
// keeps every blocked reader live (no lost wakeups) while compressing idle
// simulated time. The chaos harness's determinism does not ride on this —
// its fault schedules are fixed up front from the seed — the virtual clock
// is what makes a high-latency fault schedule cheap to execute.
type VirtualClock struct {
	grace time.Duration

	mu     sync.Mutex
	now    time.Time
	seq    uint64
	gen    uint64
	timers vtimerHeap

	kick chan struct{}
	done chan struct{}
	once sync.Once
}

// VirtualClockOption configures a VirtualClock.
type VirtualClockOption func(*VirtualClock)

// WithGrace sets the real-time quiet window the clock waits for before
// advancing to the next due timer. Larger values track causality across
// slow goroutines more faithfully; smaller values run faster.
func WithGrace(d time.Duration) VirtualClockOption {
	return func(c *VirtualClock) { c.grace = d }
}

// NewVirtualClock creates a running virtual clock starting at an arbitrary
// fixed epoch. Call Stop when done to release its scheduler goroutine.
func NewVirtualClock(opts ...VirtualClockOption) *VirtualClock {
	c := &VirtualClock{
		grace: 200 * time.Microsecond,
		// A fixed, nonzero epoch: zero time.Time means "no deadline" to
		// net.Conn users, so the clock must never report it.
		now:  time.Unix(1_000_000_000, 0),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	go c.run()
	return c
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc schedules fn at virtual now+d. fn runs on the clock's scheduler
// goroutine; it must not block for long.
func (c *VirtualClock) AfterFunc(d time.Duration, fn func()) Timer {
	c.mu.Lock()
	t := &vtimer{clock: c, due: c.now.Add(d), seq: c.seq, fn: fn}
	c.seq++
	c.gen++
	heap.Push(&c.timers, t)
	c.mu.Unlock()
	c.kickScheduler()
	return t
}

// Stop shuts the clock down. Pending timers never fire.
func (c *VirtualClock) Stop() {
	c.once.Do(func() { close(c.done) })
}

func (c *VirtualClock) kickScheduler() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// run is the scheduler: wait for pending timers, let a grace window pass
// with no new arrivals, then jump now to the earliest due time and fire
// everything due at it.
func (c *VirtualClock) run() {
	for {
		c.mu.Lock()
		for len(c.timers) > 0 && c.timers[0].stopped {
			heap.Pop(&c.timers)
		}
		if len(c.timers) == 0 {
			c.mu.Unlock()
			select {
			case <-c.kick:
				continue
			case <-c.done:
				return
			}
		}
		gen := c.gen
		c.mu.Unlock()

		grace := time.NewTimer(c.grace)
		select {
		case <-c.done:
			grace.Stop()
			return
		case <-c.kick:
			// A new timer arrived; reassess which event is earliest.
			grace.Stop()
			continue
		case <-grace.C:
		}

		c.mu.Lock()
		if c.gen != gen {
			c.mu.Unlock()
			continue
		}
		var fire []*vtimer
		for len(c.timers) > 0 {
			t := c.timers[0]
			if t.stopped {
				heap.Pop(&c.timers)
				continue
			}
			if len(fire) == 0 {
				if t.due.After(c.now) {
					c.now = t.due
				}
			} else if t.due.After(c.now) {
				break
			}
			t.fired = true
			fire = append(fire, heap.Pop(&c.timers).(*vtimer))
		}
		c.mu.Unlock()
		for _, t := range fire {
			t.fn()
		}
	}
}

// vtimer is one pending virtual timer. Stopped timers stay in the heap and
// are discarded lazily when they surface, so no index bookkeeping is
// needed.
type vtimer struct {
	clock   *VirtualClock
	due     time.Time
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
}

func (t *vtimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// vtimerHeap orders timers by due time, ties broken by arming order.
type vtimerHeap []*vtimer

func (h vtimerHeap) Len() int { return len(h) }

func (h vtimerHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}

func (h vtimerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
}

func (h *vtimerHeap) Push(x any) {
	*h = append(*h, x.(*vtimer))
}

func (h *vtimerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
