package netsim

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

func dialPair(t *testing.T, p Profile) (client, server net.Conn) {
	t.Helper()
	n := New(p)
	t.Cleanup(func() { _ = n.Close() })
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, err = l.Accept()
	}()
	client, derr := n.Dial(context.Background(), "srv")
	if derr != nil {
		t.Fatal(derr)
	}
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
	})
	return client, server
}

func TestInstantRoundTrip(t *testing.T) {
	c, s := dialPair(t, Instant)
	go func() {
		buf := make([]byte, 5)
		if _, err := io.ReadFull(s, buf); err != nil {
			return
		}
		_, _ = s.Write(buf)
	}()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("got %q", buf)
	}
}

func TestLatencyApplied(t *testing.T) {
	p := Profile{Name: "t", RTT: 40 * time.Millisecond}
	c, s := dialPair(t, p)
	go func() {
		buf := make([]byte, 1)
		if _, err := io.ReadFull(s, buf); err != nil {
			return
		}
		_, _ = s.Write(buf)
	}()
	start := time.Now()
	_, _ = c.Write([]byte{1})
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < p.RTT {
		t.Fatalf("round trip took %v, want >= %v", elapsed, p.RTT)
	}
	if elapsed > p.RTT*5 {
		t.Fatalf("round trip took %v, want close to %v", elapsed, p.RTT)
	}
}

func TestBandwidthPacing(t *testing.T) {
	// 1 MiB at 100 Mbit/s ≈ 84 ms of transmission time.
	p := Profile{Name: "t", BitsPerSecond: 100e6}
	c, s := dialPair(t, p)
	payload := make([]byte, 1<<20)
	go func() {
		_, _ = c.Write(payload)
	}()
	start := time.Now()
	if _, err := io.ReadFull(s, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	want := p.txTime(len(payload))
	if elapsed < want {
		t.Fatalf("transfer took %v, want >= %v", elapsed, want)
	}
	if elapsed > 4*want {
		t.Fatalf("transfer took %v, want close to %v", elapsed, want)
	}
}

func TestFIFOOrdering(t *testing.T) {
	c, s := dialPair(t, Profile{Name: "t", RTT: 2 * time.Millisecond, BitsPerSecond: 1e9})
	const n = 64
	go func() {
		for i := 0; i < n; i++ {
			_, _ = c.Write([]byte{byte(i)})
		}
	}()
	buf := make([]byte, n)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if buf[i] != byte(i) {
			t.Fatalf("byte %d = %d, out of order", i, buf[i])
		}
	}
}

func TestEOFAfterDrain(t *testing.T) {
	c, s := dialPair(t, Instant)
	if _, err := c.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatalf("in-flight data lost on close: %v", err)
	}
	if string(buf) != "tail" {
		t.Fatalf("got %q", buf)
	}
	if _, err := s.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("got %v, want EOF", err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	c, _ := dialPair(t, Instant)
	_ = c.Close()
	if _, err := c.Write([]byte{1}); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestReadDeadline(t *testing.T) {
	c, _ := dialPair(t, Instant)
	if err := c.SetReadDeadline(time.Now().Add(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline ignored")
	}
	// Clearing the deadline re-enables reads.
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
}

func TestDialUnknownEndpoint(t *testing.T) {
	n := New(Instant)
	defer n.Close()
	if _, err := n.Dial(context.Background(), "nobody"); err == nil {
		t.Fatal("dial to unbound endpoint succeeded")
	}
}

func TestDuplicateListen(t *testing.T) {
	n := New(Instant)
	defer n.Close()
	if _, err := n.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestListenerCloseUnblocksAcceptAndFreesName(t *testing.T) {
	n := New(Instant)
	defer n.Close()
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	_ = l.Close()
	if err := <-done; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("got %v, want net.ErrClosed", err)
	}
	if _, err := n.Listen("a"); err != nil {
		t.Fatalf("name not freed after close: %v", err)
	}
}

func TestNetworkCloseRefusesDialAndListen(t *testing.T) {
	n := New(Instant)
	if _, err := n.Listen("a"); err != nil {
		t.Fatal(err)
	}
	_ = n.Close()
	if _, err := n.Dial(context.Background(), "a"); err == nil {
		t.Fatal("dial after network close succeeded")
	}
	if _, err := n.Listen("b"); err == nil {
		t.Fatal("listen after network close succeeded")
	}
}

func TestDialContextCancel(t *testing.T) {
	n := New(Instant)
	defer n.Close()
	l, err := n.Listen("busy")
	if err != nil {
		t.Fatal(err)
	}
	// Fill the backlog so Dial blocks.
	for i := 0; i < cap(l.(*listener).backlog); i++ {
		if _, err := n.Dial(context.Background(), "busy"); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := n.Dial(ctx, "busy"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context deadline", err)
	}
}

func TestScaledProfile(t *testing.T) {
	p := Wireless.Scaled(10)
	if p.RTT != Wireless.RTT/10 {
		t.Errorf("RTT = %v", p.RTT)
	}
	if p.BitsPerSecond != Wireless.BitsPerSecond*10 {
		t.Errorf("bw = %v", p.BitsPerSecond)
	}
	if got := Wireless.Scaled(1); got != Wireless {
		t.Errorf("Scaled(1) changed profile: %+v", got)
	}
	if got := Wireless.Scaled(0); got != Wireless {
		t.Errorf("Scaled(0) changed profile: %+v", got)
	}
}

func TestTxTime(t *testing.T) {
	p := Profile{BitsPerSecond: 8e6} // 1 byte per microsecond
	if got := p.txTime(1000); got != time.Millisecond {
		t.Errorf("txTime(1000) = %v, want 1ms", got)
	}
	if got := Instant.txTime(1 << 30); got != 0 {
		t.Errorf("infinite bandwidth txTime = %v, want 0", got)
	}
	if got := p.txTime(0); got != 0 {
		t.Errorf("txTime(0) = %v, want 0", got)
	}
}

func TestAddrs(t *testing.T) {
	c, s := dialPair(t, Instant)
	if c.RemoteAddr().String() != "srv" {
		t.Errorf("client remote = %q", c.RemoteAddr())
	}
	if s.LocalAddr().String() != "srv" {
		t.Errorf("server local = %q", s.LocalAddr())
	}
	if c.LocalAddr().Network() != "sim" {
		t.Errorf("network = %q", c.LocalAddr().Network())
	}
}

// TestManyRoundTripsNoLostWakeup is a regression test for a lost-wakeup
// race in the link's timer-based wait: the timer's broadcast could fire
// before the reader parked, leaving a request/response exchange hung
// forever. Thousands of tight round trips through short-latency links make
// the window hit reliably enough to catch regressions; the watchdog turns
// a hang into a failure.
func TestManyRoundTripsNoLostWakeup(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test (~7s); skipped in -short")
	}
	c, s := dialPair(t, Profile{Name: "t", RTT: 200 * time.Microsecond, BitsPerSecond: 1e9})
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := io.ReadFull(s, buf); err != nil {
				done <- nil // client closed at the end
				return
			}
			if _, err := s.Write(buf); err != nil {
				done <- err
				return
			}
		}
	}()
	finished := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		for i := 0; i < 3000; i++ {
			if _, err := c.Write([]byte{byte(i)}); err != nil {
				finished <- err
				return
			}
			if _, err := io.ReadFull(c, buf); err != nil {
				finished <- err
				return
			}
		}
		finished <- nil
	}()
	select {
	case err := <-finished:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("round-trip loop hung: lost wakeup")
	}
	_ = c.Close()
	<-done
}

func TestPartialReads(t *testing.T) {
	c, s := dialPair(t, Instant)
	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	var got []byte
	for len(got) < 6 {
		n, err := s.Read(one)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, one[:n]...)
	}
	if string(got) != "abcdef" {
		t.Fatalf("got %q", got)
	}
}
