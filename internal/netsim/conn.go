package netsim

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// connPair creates the two endpoints of a simulated full-duplex connection
// between the source host src (the dialer; "" for un-attributed clients) and
// the destination endpoint dst. Each direction is an independent link with
// its own serialization horizon, so concurrent traffic in both directions
// does not contend for bandwidth (full duplex, like switched Ethernet and
// unlike shared-medium Wi-Fi; the request/response pattern of RMI never
// overlaps directions anyway).
func (n *Network) connPair(src, dst string) (client, server net.Conn) {
	c2s := newLink(n.profile, n.clock)
	s2c := newLink(n.profile, n.clock)
	clientName := src
	if clientName == "" {
		clientName = "client->" + dst
	}
	cl := &conn{
		net: n, out: pair{src, dst},
		rd: s2c, wr: c2s,
		local: simAddr(clientName), remote: simAddr(dst),
	}
	sv := &conn{
		net: n, out: pair{dst, src},
		rd: c2s, wr: s2c,
		local: simAddr(dst), remote: simAddr(clientName),
	}
	return cl, sv
}

// link is one direction of a simulated connection: a FIFO of byte chunks,
// each stamped with the simulated time at which it becomes visible to the
// reader. Delivery time models both transmission (bytes/bandwidth, which
// serializes back-to-back writes) and propagation (one-way latency). All
// time flows through the owning network's Clock — there is no direct use of
// the time package on this path, so a VirtualClock fully controls delivery.
type link struct {
	mu   sync.Mutex
	cond *sync.Cond

	profile  Profile
	clock    Clock
	queue    []chunk
	closed   bool
	nextFree time.Time // when the link finishes transmitting queued bytes

	readDeadline time.Time
}

type chunk struct {
	data []byte
	due  time.Time
}

func newLink(p Profile, c Clock) *link {
	l := &link{profile: p, clock: c}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// write enqueues b for delayed delivery, with extra added to the one-way
// propagation delay (injected link faults). It never blocks: the link models
// an unbounded sender-side socket buffer, which is accurate enough for
// request/response workloads whose outstanding data is bounded by design.
func (l *link) write(b []byte, extra time.Duration) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, io.ErrClosedPipe
	}
	data := make([]byte, len(b))
	copy(data, b)
	// Instant links (no latency, no pacing, no injected delay) skip the
	// clock entirely: a zero due time means "ready now", so readers never
	// arm timers and writers never query the clock. Keeps the instant
	// profile measuring middleware cost, not simulator cost.
	if l.profile.RTT == 0 && l.profile.BitsPerSecond <= 0 && extra == 0 {
		l.queue = append(l.queue, chunk{data: data})
		l.cond.Broadcast()
		return len(b), nil
	}
	now := l.clock.Now()
	start := l.nextFree
	if start.Before(now) {
		start = now
	}
	txEnd := start.Add(l.profile.txTime(len(b)))
	l.nextFree = txEnd
	l.queue = append(l.queue, chunk{data: data, due: txEnd.Add(l.profile.oneWay() + extra)})
	l.cond.Broadcast()
	return len(b), nil
}

// read blocks until data is due, the link closes (EOF after drain), or the
// read deadline passes.
func (l *link) read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if !l.readDeadline.IsZero() && !l.clock.Now().Before(l.readDeadline) {
			return 0, os.ErrDeadlineExceeded
		}
		if len(l.queue) > 0 {
			head := &l.queue[0]
			if head.due.IsZero() || !head.due.After(l.clock.Now()) {
				n := copy(p, head.data)
				if n == len(head.data) {
					l.queue = l.queue[1:]
					if len(l.queue) == 0 {
						l.queue = nil
					}
				} else {
					head.data = head.data[n:]
				}
				return n, nil
			}
			l.waitUntil(head.due)
			continue
		}
		if l.closed {
			return 0, io.EOF
		}
		l.waitUntil(time.Time{})
	}
}

// waitUntil sleeps on the condition variable, waking no later than `due`
// (or the read deadline, whichever is earlier). Zero due means wait for a
// broadcast only. Caller holds l.mu.
func (l *link) waitUntil(due time.Time) {
	wake := due
	if !l.readDeadline.IsZero() && (wake.IsZero() || l.readDeadline.Before(wake)) {
		wake = l.readDeadline
	}
	if wake.IsZero() {
		l.cond.Wait()
		return
	}
	d := wake.Sub(l.clock.Now())
	if d <= 0 {
		return
	}
	// The timer callback MUST take the lock before broadcasting: a bare
	// Broadcast could fire in the window between arming the timer and the
	// caller parking in Wait, and with request/response traffic no later
	// write would ever re-signal the link (lost wakeup, permanent hang).
	// Holding the lock serializes the broadcast after the Wait unlock.
	t := l.clock.AfterFunc(d, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	l.cond.Wait()
	t.Stop()
}

func (l *link) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// reset closes the link abortively: queued, not-yet-delivered chunks are
// DISCARDED (a real RST drops undelivered data), so a fault-killed
// connection can never execute a delayed in-flight request after its
// failure was reported — which would reorder effects behind the next
// connection's traffic.
func (l *link) reset() {
	l.mu.Lock()
	l.closed = true
	l.queue = nil
	l.cond.Broadcast()
	l.mu.Unlock()
}

func (l *link) setReadDeadline(t time.Time) {
	l.mu.Lock()
	l.readDeadline = t
	l.cond.Broadcast()
	l.mu.Unlock()
}

// conn is one endpoint of a simulated connection. out is the directed link
// identity of its writes, consulted against the network's fault state.
type conn struct {
	net    *Network
	out    pair
	rd     *link
	wr     *link
	local  net.Addr
	remote net.Addr

	closeOnce sync.Once
}

var _ net.Conn = (*conn)(nil)

func (c *conn) Read(p []byte) (int, error) { return c.rd.read(p) }

// Write consults the network's fault state first: a partitioned or crashed
// direction (or a drop-roll on a lossy link) resets the whole connection —
// the writer gets an error, the peer EOF — which is how stream transports
// experience loss; otherwise the chunk is delivered with any injected extra
// latency.
func (c *conn) Write(p []byte) (int, error) {
	extra, kill := c.net.writeFault(c.out)
	if kill {
		c.reset()
		return 0, fmt.Errorf("netsim: connection %s->%s reset by fault", c.out.src, c.out.dst)
	}
	return c.wr.write(p, extra)
}

// Close shuts both directions gracefully: the peer sees EOF after draining
// in-flight data; local reads unblock with EOF as well.
func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		c.wr.close()
		c.rd.close()
		c.net.unregister(c)
	})
	return nil
}

// reset shuts both directions abortively (fault kills): undelivered data is
// dropped on the floor, like a connection reset, never executed late.
func (c *conn) reset() {
	c.closeOnce.Do(func() {
		c.wr.reset()
		c.rd.reset()
		c.net.unregister(c)
	})
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline and SetReadDeadline interpret t on the NETWORK'S clock: under
// the default RealClock a wall-clock deadline behaves as usual, but under a
// VirtualClock callers must derive deadlines from Clock.Now() — a wall time
// compared against the virtual epoch lies decades in the future and never
// fires before simulated traffic. No in-tree transport code sets conn
// deadlines today; this note guards the first one added under chaos.
func (c *conn) SetDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	return nil
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	return nil
}

// SetWriteDeadline is a no-op: simulated writes never block.
func (c *conn) SetWriteDeadline(time.Time) error { return nil }
