package netsim

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// faultNet builds a network with one server endpoint and an accept loop that
// collects server-side conns, returning the network and a named client host.
func faultNet(t *testing.T, p Profile, opts ...Option) (*Network, *Host) {
	t.Helper()
	n := New(p, opts...)
	t.Cleanup(func() { _ = n.Close() })
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			// Echo server: copy until the conn dies.
			go func() { _, _ = io.Copy(c, c) }()
		}
	}()
	return n, n.Host("alice")
}

func roundTrip(c net.Conn, b byte) error {
	if _, err := c.Write([]byte{b}); err != nil {
		return err
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		return err
	}
	if buf[0] != b {
		return errors.New("echo mismatch")
	}
	return nil
}

func TestPartitionRefusesDialsAndResetsConns(t *testing.T) {
	n, alice := faultNet(t, Instant)
	c, err := alice.Dial(context.Background(), "srv")
	if err != nil {
		t.Fatal(err)
	}
	if err := roundTrip(c, 1); err != nil {
		t.Fatal(err)
	}

	n.Partition("alice", "srv")
	// The established conn was reset: the next write fails (either the
	// fault check or the closed link reports it).
	if _, err := c.Write([]byte{2}); err == nil {
		t.Fatal("write across partition succeeded")
	}
	// New dials from alice are refused...
	if _, err := alice.Dial(context.Background(), "srv"); err == nil {
		t.Fatal("dial across partition succeeded")
	}
	// ...but an unrelated host still gets through (directional, per-source).
	c2, err := n.Host("bob").Dial(context.Background(), "srv")
	if err != nil {
		t.Fatalf("unrelated host blocked by partition: %v", err)
	}
	if err := roundTrip(c2, 3); err != nil {
		t.Fatal(err)
	}

	n.Heal("alice", "srv")
	c3, err := alice.Dial(context.Background(), "srv")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	if err := roundTrip(c3, 4); err != nil {
		t.Fatal(err)
	}
}

func TestCrashAndRestart(t *testing.T) {
	n, alice := faultNet(t, Instant)
	c, err := alice.Dial(context.Background(), "srv")
	if err != nil {
		t.Fatal(err)
	}
	if err := roundTrip(c, 1); err != nil {
		t.Fatal(err)
	}

	n.Crash("srv")
	if !n.Down("srv") {
		t.Fatal("Down(srv) = false after Crash")
	}
	if _, err := alice.Dial(context.Background(), "srv"); err == nil {
		t.Fatal("dial to crashed endpoint succeeded")
	}
	// The established conn died with the crash.
	if _, err := io.ReadFull(c, make([]byte, 1)); err == nil {
		t.Fatal("read from crashed endpoint's conn succeeded")
	}

	n.Restart("srv")
	c2, err := alice.Dial(context.Background(), "srv")
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	if err := roundTrip(c2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestKillConnsForcesRedialButKeepsEndpointUp(t *testing.T) {
	n, alice := faultNet(t, Instant)
	c, err := alice.Dial(context.Background(), "srv")
	if err != nil {
		t.Fatal(err)
	}
	n.KillConns("srv")
	if err := roundTrip(c, 1); err == nil {
		t.Fatal("killed conn still echoes")
	}
	// The endpoint never went down: an immediate redial works.
	c2, err := alice.Dial(context.Background(), "srv")
	if err != nil {
		t.Fatal(err)
	}
	if err := roundTrip(c2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestLinkDropFaultResetsEventually(t *testing.T) {
	n, alice := faultNet(t, Instant, WithFaultSeed(7))
	n.SetLinkFaults("alice", "srv", LinkFaults{DropPerWrite: 0.5})
	// With p=0.5 per write, 64 consecutive surviving round trips have
	// probability 2^-64: the loop below must observe a reset.
	broke := false
	for i := 0; i < 64; i++ {
		c, err := alice.Dial(context.Background(), "srv")
		if err != nil {
			t.Fatal(err)
		}
		if err := roundTrip(c, byte(i)); err != nil {
			broke = true
			break
		}
		_ = c.Close()
	}
	if !broke {
		t.Fatal("no connection reset under DropPerWrite=0.5")
	}
	// Clearing the fault restores a clean link.
	n.SetLinkFaults("alice", "srv", LinkFaults{})
	c, err := alice.Dial(context.Background(), "srv")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := roundTrip(c, byte(i)); err != nil {
			t.Fatalf("round trip %d after clearing faults: %v", i, err)
		}
	}
}

func TestLinkFaultSeedReproducible(t *testing.T) {
	// Two networks with the same fault seed must break on the same write.
	run := func() int {
		n, alice := faultNet(t, Instant, WithFaultSeed(42))
		n.SetLinkFaults("alice", "srv", LinkFaults{DropPerWrite: 0.2})
		c, err := alice.Dial(context.Background(), "srv")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			if err := roundTrip(c, byte(i)); err != nil {
				return i
			}
			if i > 1000 {
				t.Fatal("no drop in 1000 writes at p=0.2")
			}
		}
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed dropped at write %d then %d", a, b)
	}
}

func TestExtraLatencyAppliedOnVirtualClock(t *testing.T) {
	clk := NewVirtualClock()
	t.Cleanup(clk.Stop)
	n, alice := faultNet(t, Instant, WithClock(clk))
	n.SetLinkFaults("alice", "srv", LinkFaults{ExtraLatency: 5 * time.Second})

	c, err := alice.Dial(context.Background(), "srv")
	if err != nil {
		t.Fatal(err)
	}
	vstart := clk.Now()
	wstart := time.Now()
	if err := roundTrip(c, 1); err != nil {
		t.Fatal(err)
	}
	// 5 virtual seconds of injected latency passed...
	if adv := clk.Now().Sub(vstart); adv < 5*time.Second {
		t.Errorf("virtual clock advanced %v, want >= 5s", adv)
	}
	// ...in far less wall time: the virtual clock compressed it.
	if wall := time.Since(wstart); wall > 5*time.Second {
		t.Errorf("wall time %v for 5s virtual latency — clock not virtual", wall)
	}
}

func TestVirtualClockFiresInDueOrder(t *testing.T) {
	clk := NewVirtualClock()
	t.Cleanup(clk.Stop)
	var mu sync.Mutex
	var fired []int
	done := make(chan struct{})
	record := func(i int) func() {
		return func() {
			mu.Lock()
			fired = append(fired, i)
			n := len(fired)
			mu.Unlock()
			if n == 3 {
				close(done)
			}
		}
	}
	// Armed out of order; must fire in due order.
	clk.AfterFunc(30*time.Millisecond, record(3))
	clk.AfterFunc(10*time.Millisecond, record(1))
	clk.AfterFunc(20*time.Millisecond, record(2))
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("virtual timers never fired")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range fired {
		if v != i+1 {
			t.Fatalf("fired order %v, want [1 2 3]", fired)
		}
	}
}

func TestVirtualClockStopCancelsTimers(t *testing.T) {
	clk := NewVirtualClock()
	tm := clk.AfterFunc(time.Hour, func() { t.Error("stopped timer fired") })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer = false")
	}
	if tm.Stop() {
		t.Fatal("second Stop = true")
	}
	clk.Stop()
	clk.Stop() // idempotent
}

// TestSetFaultSetReplacesStateAtomically: installing a fault set replaces
// the previous one in a single step — the new faults bite, the old ones are
// gone, and an empty set heals the network — with no reliance on
// incremental heal/apply pairs.
func TestSetFaultSetReplacesStateAtomically(t *testing.T) {
	n, alice := faultNet(t, Instant)
	n.SetFaultSet(FaultSet{Partitions: [][2]string{{"alice", "srv"}}})
	if _, err := alice.Dial(context.Background(), "srv"); err == nil {
		t.Fatal("dial across installed partition succeeded")
	}

	// Replace with a different set: the partition is gone, the crash bites,
	// and the connection established in between is reset.
	c, err := n.Host("bob").Dial(context.Background(), "srv")
	if err != nil {
		t.Fatal(err)
	}
	n.SetFaultSet(FaultSet{Down: []string{"srv"}})
	if _, err := alice.Dial(context.Background(), "srv"); err == nil {
		t.Fatal("dial to crashed endpoint succeeded")
	}
	if err := roundTrip(c, 1); err == nil {
		t.Fatal("conn to crashed endpoint still echoes")
	}

	n.SetFaultSet(FaultSet{})
	c2, err := alice.Dial(context.Background(), "srv")
	if err != nil {
		t.Fatalf("dial after empty fault set: %v", err)
	}
	if err := roundTrip(c2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestHealAllClearsEverything(t *testing.T) {
	n, alice := faultNet(t, Instant)
	n.Partition("alice", "srv")
	n.Crash("srv")
	n.SetLinkFaults("alice", "srv", LinkFaults{DropPerWrite: 1})
	n.HealAll()
	c, err := alice.Dial(context.Background(), "srv")
	if err != nil {
		t.Fatalf("dial after HealAll: %v", err)
	}
	if err := roundTrip(c, 9); err != nil {
		t.Fatal(err)
	}
}
