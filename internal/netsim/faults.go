package netsim

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the simulator's fault surface: directional link partitions,
// per-link latency/jitter/loss, forced connection drops, and endpoint
// crash/restart. Faults are keyed by the *direction* (src endpoint, dst
// endpoint); the dialing side of a connection is attributed to a source name
// via Host views (an un-named Dial has source ""). The chaos harness drives
// this API from a seeded schedule; everything here is also usable directly
// from ordinary tests.

// LinkFaults describes degradations of one directed link. The zero value is
// a healthy link.
type LinkFaults struct {
	// ExtraLatency is added to the one-way propagation delay of every chunk
	// sent on the link.
	ExtraLatency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter) per
	// chunk, drawn from the network's seeded RNG. Stream order is preserved
	// (a later chunk never overtakes an earlier one); jitter skews when
	// bytes become readable, modelling queueing noise.
	Jitter time.Duration
	// DropPerWrite is the probability, per write, that the connection
	// carrying it is reset (both directions close abortively; the writer
	// gets an error, undelivered data is discarded like a real RST). This
	// is how packet loss manifests to a reliable-stream transport: the
	// stream dies and the client must redial.
	DropPerWrite float64
}

// IsZero reports whether f describes a healthy link.
func (f LinkFaults) IsZero() bool {
	return f.ExtraLatency == 0 && f.Jitter == 0 && f.DropPerWrite == 0
}

// pair is a directed (source, destination) link identity.
type pair struct{ src, dst string }

// faultState carries the network's mutable fault tables, guarded by its own
// mutex so the data path (per-write fault lookup) never contends with
// listener bookkeeping. The active flag is the write hot path's lock-free
// fast exit: a fault-free network (every benchmark) answers writeFault
// with one atomic load, so the fault surface costs the instant profile
// nothing.
type faultState struct {
	active  atomic.Bool // any blocked/links/down entry installed
	mu      sync.Mutex
	rng     *rand.Rand
	blocked map[pair]bool
	links   map[pair]LinkFaults
	down    map[string]bool
	conns   map[*conn]struct{}
}

func newFaultState(seed int64) *faultState {
	return &faultState{
		rng:     rand.New(rand.NewSource(seed)),
		blocked: make(map[pair]bool),
		links:   make(map[pair]LinkFaults),
		down:    make(map[string]bool),
		conns:   make(map[*conn]struct{}),
	}
}

// recomputeActive refreshes the fast-path flag; caller holds f.mu.
func (f *faultState) recomputeActive() {
	f.active.Store(len(f.blocked) > 0 || len(f.links) > 0 || len(f.down) > 0)
}

// Host returns a view of the network that attributes outbound connections to
// the named endpoint, so directional faults can target traffic *from* that
// host. Servers already have an identity (their listening endpoint); Host
// gives one to dialers. The view implements the same Dial/Listen surface as
// the Network itself (transport.Network).
func (n *Network) Host(name string) *Host {
	return &Host{network: n, name: name}
}

// Host is a named dialing identity on a Network.
type Host struct {
	network *Network
	name    string
}

// Name returns the host's endpoint name.
func (h *Host) Name() string { return h.name }

// Network returns the underlying simulated network.
func (h *Host) Network() *Network { return h.network }

// Dial opens a connection to endpoint, attributed to this host.
func (h *Host) Dial(ctx context.Context, endpoint string) (net.Conn, error) {
	return h.network.dialFrom(ctx, h.name, endpoint)
}

// Listen binds endpoint on the underlying network. Listening is not
// attributed: the endpoint name itself is the server's identity.
func (h *Host) Listen(endpoint string) (net.Listener, error) {
	return h.network.Listen(endpoint)
}

// FaultSet is a complete description of a network's injected faults,
// installed atomically by SetFaultSet: the whole previous state is replaced
// under one lock, with no instant in between where the network is
// transiently healthy. Schedule-driven harnesses use it at step boundaries
// so a fault window spanning several steps is genuinely continuous even
// while other goroutines keep sending.
type FaultSet struct {
	// Partitions lists blocked directed links as [src, dst].
	Partitions [][2]string
	// Links maps directed [src, dst] pairs to their degradations.
	Links map[[2]string]LinkFaults
	// Down lists crashed endpoints.
	Down []string
}

// SetFaultSet atomically replaces the network's entire fault state, then
// resets every established connection the new state forbids (partitioned
// pairs, crashed endpoints). Repeated installs of the same set are
// idempotent: forbidden pairs cannot have live connections.
func (n *Network) SetFaultSet(fs FaultSet) {
	blocked := make(map[pair]bool, len(fs.Partitions))
	for _, p := range fs.Partitions {
		blocked[pair{p[0], p[1]}] = true
	}
	links := make(map[pair]LinkFaults, len(fs.Links))
	for p, f := range fs.Links {
		if !f.IsZero() {
			links[pair{p[0], p[1]}] = f
		}
	}
	down := make(map[string]bool, len(fs.Down))
	for _, ep := range fs.Down {
		down[ep] = true
	}
	n.faults.mu.Lock()
	n.faults.blocked = blocked
	n.faults.links = links
	n.faults.down = down
	n.faults.recomputeActive()
	n.faults.mu.Unlock()
	// The kill sweep consults the local snapshot, not the live tables:
	// killConns holds the fault mutex while matching.
	n.killConns(func(c *conn) bool {
		return blocked[c.out] || blocked[pair{c.out.dst, c.out.src}] ||
			down[c.out.src] || down[c.out.dst]
	})
}

// Partition blocks the directed link src→dst: established connections
// carrying that direction are reset and new dials from src to dst are
// refused until Heal. Partitioning is directional; call it twice (or use
// PartitionPair) for a full cut.
func (n *Network) Partition(src, dst string) {
	n.faults.mu.Lock()
	n.faults.blocked[pair{src, dst}] = true
	n.faults.recomputeActive()
	n.faults.mu.Unlock()
	n.killConns(func(c *conn) bool { return c.out == (pair{src, dst}) || c.out == (pair{dst, src}) })
}

// PartitionPair cuts both directions between a and b.
func (n *Network) PartitionPair(a, b string) {
	n.Partition(a, b)
	n.Partition(b, a)
}

// Heal removes a directed partition.
func (n *Network) Heal(src, dst string) {
	n.faults.mu.Lock()
	delete(n.faults.blocked, pair{src, dst})
	n.faults.recomputeActive()
	n.faults.mu.Unlock()
}

// HealAll removes every partition, link fault, and down marker, returning
// the network to health. Established connections that were already reset
// stay dead; redials succeed.
func (n *Network) HealAll() {
	n.faults.mu.Lock()
	n.faults.blocked = make(map[pair]bool)
	n.faults.links = make(map[pair]LinkFaults)
	n.faults.down = make(map[string]bool)
	n.faults.recomputeActive()
	n.faults.mu.Unlock()
}

// SetLinkFaults installs latency/jitter/loss faults on the directed link
// src→dst, replacing any previous setting. A zero LinkFaults clears it.
func (n *Network) SetLinkFaults(src, dst string, f LinkFaults) {
	n.faults.mu.Lock()
	if f.IsZero() {
		delete(n.faults.links, pair{src, dst})
	} else {
		n.faults.links[pair{src, dst}] = f
	}
	n.faults.recomputeActive()
	n.faults.mu.Unlock()
}

// Crash takes endpoint down: every connection to or from it is reset and
// dials involving it are refused until Restart. The listener stays bound —
// a crashed server's socket is gone, not its address — so Restart brings
// the same server back with whatever in-memory state it kept. (Simulating a
// restart with state loss is a harness-level concern: close the serving
// peer and start a fresh one.)
func (n *Network) Crash(endpoint string) {
	n.faults.mu.Lock()
	n.faults.down[endpoint] = true
	n.faults.recomputeActive()
	n.faults.mu.Unlock()
	n.KillConns(endpoint)
}

// Restart clears a Crash, making endpoint dialable again.
func (n *Network) Restart(endpoint string) {
	n.faults.mu.Lock()
	delete(n.faults.down, endpoint)
	n.faults.recomputeActive()
	n.faults.mu.Unlock()
}

// Down reports whether endpoint is currently crashed.
func (n *Network) Down(endpoint string) bool {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	return n.faults.down[endpoint]
}

// KillConns resets every established connection whose either end is
// endpoint, forcing clients to redial. The endpoint itself stays dialable —
// this is the "connection drop" fault, distinct from Crash.
func (n *Network) KillConns(endpoint string) {
	n.killConns(func(c *conn) bool { return c.out.src == endpoint || c.out.dst == endpoint })
}

// killConns closes every tracked connection matching the filter.
func (n *Network) killConns(match func(*conn) bool) {
	n.faults.mu.Lock()
	var victims []*conn
	for c := range n.faults.conns {
		if match(c) {
			victims = append(victims, c)
		}
	}
	n.faults.mu.Unlock()
	for _, c := range victims {
		c.reset()
	}
}

// register tracks an established connection for fault targeting.
func (n *Network) register(c *conn) {
	n.faults.mu.Lock()
	n.faults.conns[c] = struct{}{}
	n.faults.mu.Unlock()
}

// unregister drops a closed connection.
func (n *Network) unregister(c *conn) {
	n.faults.mu.Lock()
	delete(n.faults.conns, c)
	n.faults.mu.Unlock()
}

// NumConns returns the number of live tracked connections (observability
// for tests).
func (n *Network) NumConns() int {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	return len(n.faults.conns)
}

// pairForbidden reports whether an ESTABLISHED connection on the directed
// pair must not exist under the current fault state — the same predicate
// the partition/crash kill sweeps use (either direction blocked, either
// endpoint down). dialFrom re-checks it after registering a new pair to
// close the race with a concurrent sweep.
func (n *Network) pairForbidden(pr pair) bool {
	if !n.faults.active.Load() {
		return false
	}
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	return n.faults.blocked[pr] || n.faults.blocked[pair{pr.dst, pr.src}] ||
		n.faults.down[pr.src] || n.faults.down[pr.dst]
}

// dialRefused reports whether a dial src→dst must be refused outright
// (partitioned direction, or either endpoint down).
func (n *Network) dialRefused(src, dst string) error {
	if !n.faults.active.Load() {
		return nil
	}
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	switch {
	case n.faults.down[dst]:
		return fmt.Errorf("netsim: dial %q: endpoint down", dst)
	case n.faults.down[src]:
		return fmt.Errorf("netsim: dial from %q: endpoint down", src)
	case n.faults.blocked[pair{src, dst}]:
		return fmt.Errorf("netsim: dial %q from %q: link partitioned", dst, src)
	}
	return nil
}

// writeFault decides the fate of one write on the directed link pr: kill
// (reset the connection), or deliver with extra one-way delay.
func (n *Network) writeFault(pr pair) (extra time.Duration, kill bool) {
	if !n.faults.active.Load() {
		return 0, false
	}
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	if n.faults.blocked[pr] || n.faults.down[pr.src] || n.faults.down[pr.dst] {
		return 0, true
	}
	f, ok := n.faults.links[pr]
	if !ok {
		return 0, false
	}
	if f.DropPerWrite > 0 && n.faults.rng.Float64() < f.DropPerWrite {
		return 0, true
	}
	extra = f.ExtraLatency
	if f.Jitter > 0 {
		extra += time.Duration(n.faults.rng.Int63n(int64(f.Jitter)))
	}
	return extra, false
}
