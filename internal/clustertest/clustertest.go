// Package clustertest is the shared multi-server test scaffolding: a full
// cluster deployment (serving peers with the BRMI executor, a registry, and
// the cluster node service, plus a client peer) on one simulated network,
// and the Counter workload object whose state makes execution order
// observable.
//
// It consolidates the setup helpers that used to be duplicated across the
// cluster package's test files, and it is the deployment substrate of the
// chaos harness (internal/chaos): every peer dials through a named
// netsim.Host view, so directional fault injection can target any
// (source, destination) link, client included.
package clustertest

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/stats"
	"repro/internal/statsnode"
	"repro/internal/wire"
)

// ClientHost is the netsim host identity of the cluster's client peer.
const ClientHost = "client"

// SilentLogf drops diagnostics; tests that expect transport errors pass it
// to keep logs quiet.
func SilentLogf(string, ...any) {}

// Server bundles one serving member: its peer, BRMI executor, registry,
// cluster node and replica services, and the pre-exported Counter workload
// object.
type Server struct {
	Endpoint string
	Peer     *rmi.Peer
	Exec     *core.Executor
	Reg      *registry.Service
	Node     *cluster.Node
	Replica  *cluster.Replica
	Stats    *stats.Registry
	Counter  *Counter
	Ref      wire.Ref
}

// Cluster is k full serving members plus a client on one simulated network.
type Cluster struct {
	Network *netsim.Network
	Servers []*Server
	Client  *rmi.Peer
	// ClientStats is the client peer's metrics registry (scraped directly;
	// the client runs no stats.Node service since it serves nothing).
	ClientStats *stats.Registry

	tb testing.TB
}

// Option configures cluster construction.
type Option func(*config)

type config struct {
	network *netsim.Network
}

// WithNetwork builds the cluster on an externally constructed network (the
// chaos harness passes one carrying a virtual clock and a seeded fault RNG).
func WithNetwork(n *netsim.Network) Option {
	return func(c *config) { c.network = n }
}

// New builds a cluster of k servers named "server-0" … "server-<k-1>", each
// serving through its own netsim host identity, plus a client peer dialing
// as ClientHost. Everything is torn down via t.Cleanup.
func New(tb testing.TB, k int, opts ...Option) *Cluster {
	tb.Helper()
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.network == nil {
		cfg.network = netsim.New(netsim.Instant)
		tb.Cleanup(func() { _ = cfg.network.Close() })
	}
	c := &Cluster{Network: cfg.network, tb: tb}
	for i := 0; i < k; i++ {
		c.StartServer(fmt.Sprintf("server-%d", i))
	}
	c.ClientStats = stats.New(stats.WithClock(c.Network.Clock()))
	c.Client = rmi.NewPeer(c.Network.Host(ClientHost),
		rmi.WithLogf(SilentLogf), rmi.WithStatsRegistry(c.ClientStats))
	tb.Cleanup(func() { _ = c.Client.Close() })
	return c
}

// StartServer brings up a full member (peer + executor + registry + node +
// exported Counter) at endpoint and appends it to c.Servers. Used by New
// and by tests that grow the cluster mid-run (scale-out, state-loss
// restart).
func (c *Cluster) StartServer(endpoint string) *Server {
	c.tb.Helper()
	sreg := stats.New(stats.WithClock(c.Network.Clock()))
	srv := rmi.NewPeer(c.Network.Host(endpoint),
		rmi.WithLogf(SilentLogf), rmi.WithStatsRegistry(sreg))
	if err := srv.Serve(endpoint); err != nil {
		c.tb.Fatal(err)
	}
	c.tb.Cleanup(func() { _ = srv.Close() })
	exec, err := core.Install(srv)
	if err != nil {
		c.tb.Fatal(err)
	}
	c.tb.Cleanup(exec.Stop)
	reg, err := registry.Start(srv)
	if err != nil {
		c.tb.Fatal(err)
	}
	node, err := cluster.StartNode(srv, reg, nil)
	if err != nil {
		c.tb.Fatal(err)
	}
	replica, err := cluster.StartReplica(srv, reg, node, exec)
	if err != nil {
		c.tb.Fatal(err)
	}
	if _, err := statsnode.Start(srv); err != nil {
		c.tb.Fatal(err)
	}
	ctr := &Counter{}
	ref, err := srv.Export(ctr, CounterIface)
	if err != nil {
		c.tb.Fatal(err)
	}
	s := &Server{Endpoint: endpoint, Peer: srv, Exec: exec, Reg: reg, Node: node, Replica: replica, Stats: sreg, Counter: ctr, Ref: ref}
	c.Servers = append(c.Servers, s)
	return s
}

// Close tears the whole deployment down: every member and the client (the
// network belongs to whoever built it — t.Cleanup when New did, the caller
// under WithNetwork). Idempotent, and safe to combine with the
// t.Cleanup teardown New registers (each underlying Close/Stop is itself
// idempotent). The chaos harness closes clusters explicitly because one
// test may run many simulations (shrinking a failing fault schedule), and
// deferring teardown to test end would pile up live peers.
func (c *Cluster) Close() {
	for _, s := range c.Servers {
		s.Exec.Stop()
		_ = s.Peer.Close()
	}
	_ = c.Client.Close()
}

// StopServer CLEANLY stops the member at endpoint and removes it from
// c.Servers, freeing the listener slot: the executor stops first, then the
// peer closes in an orderly way. It models a planned shutdown — callers are
// expected to have drained the member (Rebalancer.RemoveServer) first, so
// nothing of value lives there anymore. For the unplanned, state-losing
// variant — the one the chaos harness's kill events and the failover tests
// exercise — use CrashServer.
func (c *Cluster) StopServer(endpoint string) {
	c.tb.Helper()
	for i, s := range c.Servers {
		if s.Endpoint == endpoint {
			s.Exec.Stop()
			_ = s.Peer.Close()
			c.Servers = append(c.Servers[:i], c.Servers[i+1:]...)
			return
		}
	}
	c.tb.Fatalf("clustertest: StopServer(%q): no such member", endpoint)
}

// CrashServer kills the member at endpoint with STATE LOSS: its in-flight
// connections are reset, the peer is torn down with no orderly handoff, and
// every object it hosted is gone. The listener slot is freed, so a later
// StartServer(endpoint) comes back empty — the crashed-and-replaced shape
// failover recovers from (follower promotion resurrects the lost shards
// from their replicas; without replication the state is simply lost). Dials
// to the endpoint are refused until then.
func (c *Cluster) CrashServer(endpoint string) {
	c.tb.Helper()
	for i, s := range c.Servers {
		if s.Endpoint == endpoint {
			c.Network.KillConns(endpoint)
			_ = s.Peer.Close()
			s.Exec.Stop()
			c.Servers = append(c.Servers[:i], c.Servers[i+1:]...)
			return
		}
	}
	c.tb.Fatalf("clustertest: CrashServer(%q): no such member", endpoint)
}

// Server returns the member serving endpoint, or nil.
func (c *Cluster) Server(endpoint string) *Server {
	for _, s := range c.Servers {
		if s.Endpoint == endpoint {
			return s
		}
	}
	return nil
}

// Endpoints returns the member endpoints in start order.
func (c *Cluster) Endpoints() []string {
	out := make([]string, len(c.Servers))
	for i, s := range c.Servers {
		out[i] = s.Endpoint
	}
	return out
}

// Refs returns the pre-exported Counter refs in server order.
func (c *Cluster) Refs() []wire.Ref {
	out := make([]wire.Ref, len(c.Servers))
	for i, s := range c.Servers {
		out[i] = s.Ref
	}
	return out
}

// BindCounter exports a fresh Counter seeded with seed at name's home and
// binds it through the directory.
func (c *Cluster) BindCounter(dir *cluster.Directory, name string, seed int64) wire.Ref {
	c.tb.Helper()
	home, err := dir.Home(name)
	if err != nil {
		c.tb.Fatal(err)
	}
	s := c.Server(home)
	if s == nil {
		c.tb.Fatalf("clustertest: bind %q: home %s is not a member", name, home)
	}
	ref, err := s.Peer.Export(NewCounter(seed), CounterIface)
	if err != nil {
		c.tb.Fatal(err)
	}
	if err := dir.Bind(context.Background(), name, ref); err != nil {
		c.tb.Fatal(err)
	}
	return ref
}

// PickNames generates names routed to oldHome by old and to newHome by
// grown — the deterministic moved (or staying, when oldHome == newHome)
// sets that re-sharding tests need.
func PickNames(old, grown *cluster.Ring, oldHome, newHome string, count int) []string {
	var names []string
	for i := 0; len(names) < count; i++ {
		name := fmt.Sprintf("obj-%d", i)
		if old.Route(name) == oldHome && grown.Route(name) == newHome {
			names = append(names, name)
		}
		if i > 100000 {
			panic("clustertest: PickNames: no matching names found")
		}
	}
	return names
}
