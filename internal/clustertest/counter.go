package clustertest

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// CounterIface is the interface name every Counter exports under.
const CounterIface = "clustertest.Counter"

// CounterState is the movable snapshot of a Counter: the running total and
// the full append log, so migration preserves order evidence.
type CounterState struct {
	N   int64
	Log []int64
}

func init() {
	wire.MustRegister("clustertest.counterState", &CounterState{})
	cluster.RegisterMovable(CounterIface, func() rmi.Remote { return &Counter{} })
}

// Counter is the test workload: a remote object whose state makes execution
// order observable (Add returns the running total; the log records every
// applied delta in execution order). It is Movable, so re-sharding carries
// its state — log included — to a new home.
type Counter struct {
	rmi.RemoteBase
	mu  sync.Mutex
	n   int64
	log []int64
}

// NewCounter creates a counter seeded with seed (the seed is not logged).
func NewCounter(seed int64) *Counter { return &Counter{n: seed} }

// Add applies d and returns the running total.
func (c *Counter) Add(d int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	c.log = append(c.log, d)
	return c.n
}

// Apply is Add with an explicit dataflow edge: dep exists only so that a
// recording can make this call depend on another call's future or proxy
// (the value is ignored). The chaos workload uses it to build staged
// pipelines whose effects remain attributable — the logged token is the
// call's identity, not a derived sum.
func (c *Counter) Apply(token int64, dep any) int64 {
	_ = dep
	return c.Add(token)
}

// Get returns the running total.
func (c *Counter) Get() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Self returns the counter as a remote result, so tests can record
// cross-root and cross-server dataflow on its proxy.
func (c *Counter) Self() *Counter { return c }

// Fork returns a fresh counter seeded with seed — a new remote object, so a
// cross-server consumer receives a freshly pinned exported ref.
func (c *Counter) Fork(seed int64) *Counter { return NewCounter(seed) }

// AddRemote adds the value read from another counter, wherever it lives.
// When the source was forwarded from a different server (the staged
// pipeline's by-reference splice), src arrives as a stub and the read is a
// server-to-server call.
func (c *Counter) AddRemote(ctx context.Context, src rmi.Invoker) (int64, error) {
	res, err := src.Invoke(ctx, "Get")
	if err != nil {
		return 0, err
	}
	n, ok := res[0].(int64)
	if !ok {
		return 0, fmt.Errorf("Get returned %T", res[0])
	}
	return c.Add(n), nil
}

// Absorb adds another counter's total into this one without logging (the
// absorbed sum is not a call token); used to exercise a data dependency
// between two batch roots on the same server.
func (c *Counter) Absorb(o *Counter) int64 {
	n := o.Get()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += n
	return c.n
}

// History returns a copy of the applied-delta log in execution order.
func (c *Counter) History() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, len(c.log))
	copy(out, c.log)
	return out
}

// Snapshot implements cluster.Movable.
func (c *Counter) Snapshot() (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &CounterState{N: c.n, Log: append([]int64(nil), c.log...)}, nil
}

// Restore implements cluster.Movable.
func (c *Counter) Restore(state any) error {
	s, ok := state.(*CounterState)
	if !ok {
		return fmt.Errorf("restore: unexpected state %T", state)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = s.N
	c.log = append([]int64(nil), s.Log...)
	return nil
}
