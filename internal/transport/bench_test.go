package transport_test

import (
	"context"
	"testing"

	"repro/internal/netsim"
	"repro/internal/transport"
)

// Transport microbenchmarks: one request/response round trip over the
// in-memory instant network, so the numbers isolate framing, multiplexing,
// and buffer management cost. Run with -benchmem; CI does.

func benchEnv(b *testing.B) *transport.Client {
	b.Helper()
	n := netsim.New(netsim.Instant)
	b.Cleanup(func() { _ = n.Close() })
	l, err := n.Listen("bench")
	if err != nil {
		b.Fatal(err)
	}
	srv := transport.NewServer(func(_ context.Context, p []byte) ([]byte, error) {
		out := transport.GetBuffer()
		return append(out, p...), nil
	}, transport.WithLogf(silentLogf), transport.WithBufferReuse())
	if err := srv.Serve(l); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	c := transport.NewClient(n, "bench")
	b.Cleanup(func() { _ = c.Close() })
	return c
}

func BenchmarkRoundTrip(b *testing.B) {
	c := benchEnv(b)
	ctx := context.Background()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Call(ctx, payload)
		if err != nil {
			b.Fatal(err)
		}
		transport.PutBuffer(resp)
	}
}

func BenchmarkRoundTripParallel(b *testing.B) {
	c := benchEnv(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		payload := make([]byte, 128)
		for pb.Next() {
			resp, err := c.Call(ctx, payload)
			if err != nil {
				b.Fatal(err)
			}
			transport.PutBuffer(resp)
		}
	})
}

func BenchmarkOneWay(b *testing.B) {
	c := benchEnv(b)
	ctx := context.Background()
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.CallOneWay(ctx, payload); err != nil {
			b.Fatal(err)
		}
	}
}
