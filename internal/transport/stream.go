// Streaming and multi-frame messages.
//
// One logical message larger than a single frame — an oversized call, or a
// response stream produced incrementally by a StreamHandler — travels as a
// sequence of frameChunk frames sharing the request id (the stream id).
// Chunks of different streams interleave freely on one connection, so a
// bulk transfer never head-of-line-blocks ordinary calls.
//
// Flow control is credit-based, per stream: a sender starts with
// streamWindow bytes of credit, debits it for every data byte framed, and
// blocks when the window is exhausted; the receiver returns credit with
// frameCredit frames — immediately on receipt when it reassembles into a
// buffer, and as the consumer reads when the chunks feed a StreamReader —
// so a slow consumer bounds the bytes in flight instead of buffering
// without limit. A zero-byte grant cancels the stream: the consumer is
// gone and the sender unblocks with ErrStreamCanceled.
package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Chunk sub-header layout (the first chunkHeaderLen bytes of a frameChunk
// payload):
//
//	1 byte  inner kind — the chunked message's logical frame kind
//	1 byte  flags (chunkFin marks the stream's last chunk)
//	4 bytes sequence number (big endian), starting at 0
const (
	chunkHeaderLen = 6
	chunkFin       = 1
)

// Tuning. Vars rather than consts so tests can shrink them (see
// export_test.go); production values never change at runtime.
var (
	// maxDirectPayload is the largest payload sent as one ordinary frame;
	// anything larger is chunked transparently by sendMessage.
	maxDirectPayload = MaxFrameSize - frameHeader
	// maxChunkData is the data size per chunk — under maxPooledBuffer so
	// chunk receive buffers keep pooling.
	maxChunkData = 256 << 10
	// streamWindow is the initial (and maximum outstanding) per-stream
	// credit in bytes.
	streamWindow = 1 << 20
	// maxAssembledMessage bounds what a receiver will reassemble for one
	// logical message; a stream consumed through a StreamReader has no
	// such bound (the window caps what is buffered at any moment).
	maxAssembledMessage = 1 << 30
)

// --- send side: credit windows ------------------------------------------------

// sendWindow is one outbound stream's credit state.
type sendWindow struct {
	avail    int
	canceled bool
	ready    chan struct{} // 1-buffered wake signal
}

// creditTable is one connection's send-side flow-control state: per-stream
// credit windows debited as chunk data is framed and replenished by
// frameCredit grants from the peer's read loop.
type creditTable struct {
	mu      sync.Mutex
	err     error // sticky: the connection is dead
	streams map[uint64]*sendWindow
}

func newCreditTable() *creditTable {
	return &creditTable{streams: make(map[uint64]*sendWindow)}
}

// open registers stream id with a full window.
func (ct *creditTable) open(id uint64) {
	ct.mu.Lock()
	ct.streams[id] = &sendWindow{avail: streamWindow, ready: make(chan struct{}, 1)}
	ct.mu.Unlock()
}

// close drops stream id's window.
func (ct *creditTable) close(id uint64) {
	ct.mu.Lock()
	delete(ct.streams, id)
	ct.mu.Unlock()
}

// grant credits stream id with n more bytes; n == 0 cancels the stream.
// Grants for unknown streams (already finished, or raced with open) are
// dropped — the protocol tolerates late credit.
func (ct *creditTable) grant(id uint64, n int) {
	ct.mu.Lock()
	w := ct.streams[id]
	if w != nil {
		if n == 0 {
			w.canceled = true
		} else {
			w.avail += n
		}
	}
	ct.mu.Unlock()
	if w != nil {
		select {
		case w.ready <- struct{}{}:
		default:
		}
	}
}

// fail poisons the table (the connection died) and wakes every blocked
// sender.
func (ct *creditTable) fail(err error) {
	ct.mu.Lock()
	if ct.err == nil {
		ct.err = err
	}
	ws := make([]*sendWindow, 0, len(ct.streams))
	for _, w := range ct.streams {
		ws = append(ws, w)
	}
	ct.mu.Unlock()
	for _, w := range ws {
		select {
		case w.ready <- struct{}{}:
		default:
		}
	}
}

// consume blocks until n bytes of credit are available for stream id and
// debits them.
func (ct *creditTable) consume(ctx context.Context, id uint64, n int) error {
	for {
		ct.mu.Lock()
		if ct.err != nil {
			err := ct.err
			ct.mu.Unlock()
			return err
		}
		w := ct.streams[id]
		if w == nil || w.canceled {
			ct.mu.Unlock()
			return ErrStreamCanceled
		}
		if w.avail >= n {
			w.avail -= n
			ct.mu.Unlock()
			return nil
		}
		ready := w.ready
		ct.mu.Unlock()
		select {
		case <-ready:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// sendMessage hands one logical message to fw: as a single frame when it
// fits (the unchanged hot path), and as a credit-gated chunk sequence
// otherwise — which is what lifts the MaxFrameSize ceiling for ordinary
// oversized calls. The caller may recycle payload when it returns.
func sendMessage(ctx context.Context, fw *frameWriter, ct *creditTable, st *Stats, kind byte, id uint64, payload []byte) error {
	if len(payload) <= maxDirectPayload {
		return fw.write(kind, id, payload)
	}
	ct.open(id)
	defer ct.close(id)
	var seq uint32
	for off := 0; ; {
		c := len(payload) - off
		if c > maxChunkData {
			c = maxChunkData
		}
		fin := off+c == len(payload)
		if err := ct.consume(ctx, id, c); err != nil {
			return err
		}
		if err := fw.writeChunk(id, kind, fin, seq, payload[off:off+c]); err != nil {
			return err
		}
		st.ChunksOut.Inc()
		st.StreamBytesOut.Add(uint64(c))
		seq++
		off += c
		if fin {
			return nil
		}
	}
}

// writeCredit sends one credit grant for stream id. A zero n cancels the
// stream.
func writeCredit(fw *frameWriter, id uint64, n int) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(n))
	return fw.write(frameCredit, id, b[:])
}

// --- receive side: reassembly -------------------------------------------------

// chunkView is one parsed frameChunk payload. data aliases the frame
// payload buffer.
type chunkView struct {
	inner byte
	fin   bool
	seq   uint32
	data  []byte
}

// parseChunk splits a frameChunk payload into its header fields and data.
func parseChunk(payload []byte) (chunkView, error) {
	if len(payload) < chunkHeaderLen {
		return chunkView{}, fmt.Errorf("transport: malformed chunk frame (%d bytes)", len(payload))
	}
	return chunkView{
		inner: payload[0],
		fin:   payload[1]&chunkFin != 0,
		seq:   binary.BigEndian.Uint32(payload[2:6]),
		data:  payload[chunkHeaderLen:],
	}, nil
}

// partial is one in-progress message reassembly.
type partial struct {
	inner byte
	seq   uint32
	buf   []byte
}

// assembler reassembles inbound chunked messages for one connection. It is
// used only from the connection's read loop, so it needs no locking.
type assembler struct {
	m map[uint64]*partial
}

func newAssembler() *assembler {
	return &assembler{m: make(map[uint64]*partial)}
}

// add folds one parsed chunk of stream id into the reassembly state. done
// reports a completed message: its logical kind and assembled payload
// (the caller owns it; PutBuffer applies). A non-nil error is a protocol
// violation and connection-fatal.
func (a *assembler) add(id uint64, cv chunkView) (inner byte, msg []byte, done bool, err error) {
	p := a.m[id]
	if p == nil {
		if cv.seq != 0 {
			return 0, nil, false, fmt.Errorf("transport: chunk stream %d began at seq %d", id, cv.seq)
		}
		p = &partial{inner: cv.inner, buf: GetBuffer()}
		a.m[id] = p
	} else if cv.seq != p.seq {
		a.drop(id)
		return 0, nil, false, fmt.Errorf("transport: chunk stream %d: got seq %d, want %d", id, cv.seq, p.seq)
	}
	p.seq++
	if len(p.buf)+len(cv.data) > maxAssembledMessage {
		a.drop(id)
		return 0, nil, false, fmt.Errorf("transport: chunked message %d exceeds %d bytes", id, maxAssembledMessage)
	}
	p.buf = append(p.buf, cv.data...)
	if !cv.fin {
		return 0, nil, false, nil
	}
	delete(a.m, id)
	// An error chunk (or a fin carrying a different inner kind than the
	// stream opened with) closes with the LAST chunk's kind: a stream
	// handler that fails mid-way finishes with a frameRespErr chunk.
	return cv.inner, p.buf, true, nil
}

// drop discards stream id's partial state (its consumer vanished).
func (a *assembler) drop(id uint64) {
	if p := a.m[id]; p != nil {
		PutBuffer(p.buf)
		delete(a.m, id)
	}
}

// --- StreamWriter (producer side) ---------------------------------------------

// StreamWriter frames a response stream: the stream handler writes bytes
// through it and the transport cuts them into credit-gated frameChunk
// frames interleaved with other traffic on the connection. Not safe for
// concurrent use (one producer per stream).
type StreamWriter struct {
	ctx context.Context
	fw  *frameWriter
	ct  *creditTable
	st  *Stats
	id  uint64

	seq  uint32
	buf  []byte // pooled accumulation buffer, always < maxChunkData when idle
	err  error  // sticky
	done bool   // fin or error chunk already sent
}

func newStreamWriter(ctx context.Context, fw *frameWriter, ct *creditTable, st *Stats, id uint64) *StreamWriter {
	ct.open(id)
	return &StreamWriter{ctx: ctx, fw: fw, ct: ct, st: st, id: id}
}

// Write implements io.Writer: p is buffered and cut into full chunks. It
// blocks when the stream is out of credit — a slow consumer slows the
// producer instead of growing a queue. Returns ErrStreamCanceled once the
// consumer has abandoned the stream.
func (w *StreamWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n := len(p)
	for len(p) > 0 {
		if w.buf == nil {
			w.buf = GetBuffer()
		}
		room := maxChunkData - len(w.buf)
		if room == 0 {
			if err := w.flushChunk(false); err != nil {
				return 0, err
			}
			continue
		}
		c := room
		if c > len(p) {
			c = len(p)
		}
		w.buf = append(w.buf, p[:c]...)
		p = p[c:]
	}
	return n, nil
}

// SendOwned streams p, taking ownership: the buffer is returned to the
// shared pool once framed, and full chunk-sized spans of p are framed
// directly with no copy. p must come from GetBuffer (or be owned
// outright) and must not be used after — brmivet's poolcheck treats
// SendOwned as discharging the PutBuffer obligation, exactly like
// PutBuffer itself.
func (w *StreamWriter) SendOwned(p []byte) error {
	if w.err != nil {
		PutBuffer(p)
		return w.err
	}
	off := 0
	// Top up the buffered chunk first so frames stay full.
	if len(w.buf) > 0 {
		room := maxChunkData - len(w.buf)
		if room > len(p) {
			room = len(p)
		}
		w.buf = append(w.buf, p[:room]...)
		off = room
		if len(w.buf) == maxChunkData {
			if err := w.flushChunk(false); err != nil {
				PutBuffer(p)
				return err
			}
		}
	}
	// Frame full chunks straight out of p — zero copy.
	for len(p)-off >= maxChunkData {
		if err := w.sendChunk(p[off:off+maxChunkData], false); err != nil {
			PutBuffer(p)
			return err
		}
		off += maxChunkData
	}
	if off < len(p) {
		if w.buf == nil {
			w.buf = GetBuffer()
		}
		w.buf = append(w.buf, p[off:]...)
	}
	PutBuffer(p)
	return nil
}

// Flush frames any buffered bytes immediately, so an entry written through
// a small Write reaches the consumer without waiting for a full chunk.
func (w *StreamWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	return w.flushChunk(false)
}

// flushChunk frames the accumulation buffer as one chunk.
func (w *StreamWriter) flushChunk(fin bool) error {
	if err := w.sendChunk(w.buf, fin); err != nil {
		return err
	}
	if w.buf != nil {
		w.buf = w.buf[:0]
	}
	return nil
}

// sendChunk frames one data span, debiting credit first.
func (w *StreamWriter) sendChunk(data []byte, fin bool) error {
	if err := w.ct.consume(w.ctx, w.id, len(data)); err != nil {
		w.err = err
		return err
	}
	if err := w.fw.writeChunk(w.id, frameRespOK, fin, w.seq, data); err != nil {
		w.err = err
		return err
	}
	w.seq++
	w.st.ChunksOut.Inc()
	w.st.StreamBytesOut.Add(uint64(len(data)))
	if fin {
		w.done = true
	}
	return nil
}

// finish completes the stream after the handler returned: on success the
// buffered tail flushes with the fin bit; a handler error is delivered as
// a final error chunk so the consumer surfaces it after the data streamed
// so far. Called by the server dispatch wrapper, never by handlers.
func (w *StreamWriter) finish(herr error) {
	defer func() {
		PutBuffer(w.buf)
		w.buf = nil
		w.ct.close(w.id)
	}()
	if w.err != nil || w.done {
		return // transport dead, canceled, or already finished
	}
	if herr == nil {
		_ = w.flushChunk(true)
		return
	}
	msg := []byte(herr.Error())
	if len(msg) > maxChunkData {
		msg = msg[:maxChunkData]
	}
	if err := w.ct.consume(w.ctx, w.id, len(msg)); err != nil {
		w.err = err
		return
	}
	if err := w.fw.writeChunk(w.id, frameRespErr, true, w.seq, msg); err != nil {
		w.err = err
		return
	}
	w.seq++
	w.st.ChunksOut.Inc()
	w.st.StreamBytesOut.Add(uint64(len(msg)))
	w.done = true
}

// --- StreamReader (consumer side) ---------------------------------------------

// StreamReader delivers one response stream strictly in order while later
// chunks are still in flight. It implements io.Reader; Read grants
// flow-control credit back to the sender as bytes are consumed, so the
// unread backlog is bounded by the stream window. The reader must be
// drained to io.EOF or Closed — Close cancels the sender.
type StreamReader struct {
	c   *Client
	cc  *clientConn
	ctx context.Context
	id  uint64

	mu      sync.Mutex
	items   [][]byte // pooled chunk-data buffers, in arrival (= stream) order
	cur     []byte   // unconsumed remainder of the item being read
	curBuf  []byte   // cur's backing buffer, for PutBuffer
	wantSeq uint32
	fin     bool
	err     error
	closed  bool
	ended   bool // terminal state accounted (StreamsOpen gauge)
	pending int  // bytes consumed but not yet granted back
	ready   chan struct{}
}

func newStreamReader(ctx context.Context, c *Client, cc *clientConn, id uint64) *StreamReader {
	c.st.StreamsOpen.Add(1)
	return &StreamReader{c: c, cc: cc, ctx: ctx, id: id, ready: make(chan struct{}, 1)}
}

// endLocked marks the stream terminal exactly once. Caller holds r.mu.
func (r *StreamReader) endLocked() {
	if !r.ended {
		r.ended = true
		r.c.st.StreamsOpen.Add(-1)
	}
}

// deliver hands one in-order chunk (or the terminal error) to the reader.
// Called from the client read loop; data (when non-nil) is a pooled buffer
// the reader now owns. Reports whether the stream is terminal.
func (r *StreamReader) deliver(seq uint32, data []byte, fin bool, err error) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		if data != nil {
			PutBuffer(data)
		}
		return true
	}
	if err == nil && data != nil {
		if seq != r.wantSeq {
			// Frames arrive in connection order, so a gap is a protocol
			// violation by the sender; fail the stream, not the connection.
			err = fmt.Errorf("transport: stream %d: got chunk seq %d, want %d", r.id, seq, r.wantSeq)
			PutBuffer(data)
			data = nil
		} else {
			r.wantSeq++
		}
	}
	if data != nil && len(data) > 0 {
		r.items = append(r.items, data)
	} else if data != nil {
		PutBuffer(data)
	}
	if fin {
		r.fin = true
	}
	if err != nil && r.err == nil {
		r.err = err
	}
	terminal := r.fin || r.err != nil
	if terminal {
		r.endLocked()
	}
	r.mu.Unlock()
	select {
	case r.ready <- struct{}{}:
	default:
	}
	return terminal
}

// Read implements io.Reader, blocking until data, EOF, or a stream error
// arrives. A stream failed mid-way returns the data received before the
// failure, then the error.
func (r *StreamReader) Read(p []byte) (int, error) {
	for {
		r.mu.Lock()
		if len(r.cur) == 0 && len(r.items) > 0 {
			if r.curBuf != nil {
				PutBuffer(r.curBuf)
			}
			r.cur, r.curBuf = r.items[0], r.items[0]
			r.items = r.items[1:]
		}
		if len(r.cur) > 0 {
			n := copy(p, r.cur)
			r.cur = r.cur[n:]
			if len(r.cur) == 0 {
				PutBuffer(r.curBuf)
				r.curBuf = nil
			}
			var grant int
			r.pending += n
			// Batch grants so a byte-at-a-time consumer does not write a
			// credit frame per read.
			if r.pending >= streamWindow/4 {
				grant, r.pending = r.pending, 0
			}
			r.mu.Unlock()
			if grant > 0 {
				_ = writeCredit(r.cc.fw, r.id, grant)
			}
			return n, nil
		}
		switch {
		case r.err != nil:
			err := r.err
			r.mu.Unlock()
			return 0, err
		case r.fin:
			r.mu.Unlock()
			return 0, io.EOF
		case r.closed:
			r.mu.Unlock()
			return 0, ErrClosed
		}
		ready := r.ready
		r.mu.Unlock()
		select {
		case <-ready:
		case <-r.ctx.Done():
			_ = r.Close()
			return 0, r.ctx.Err()
		}
	}
}

// Close abandons the stream: buffered chunks are released and, when the
// stream has not already finished, the sender is canceled with a
// zero-credit grant. Safe to call repeatedly and after EOF.
func (r *StreamReader) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	live := !r.fin && r.err == nil
	for _, it := range r.items {
		PutBuffer(it)
	}
	r.items = nil
	if r.curBuf != nil {
		PutBuffer(r.curBuf)
		r.curBuf = nil
	}
	r.cur = nil
	r.endLocked()
	r.mu.Unlock()
	select {
	case r.ready <- struct{}{}:
	default:
	}
	if live {
		r.c.remove(r.id)
		_ = writeCredit(r.cc.fw, r.id, 0)
	}
	return nil
}
