package transport_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

// dialCounter wraps a Network and counts dials, to observe redials.
type dialCounter struct {
	inner transport.Network
	dials atomic.Int32
}

func (d *dialCounter) Dial(ctx context.Context, endpoint string) (net.Conn, error) {
	d.dials.Add(1)
	return d.inner.Dial(ctx, endpoint)
}

func (d *dialCounter) Listen(endpoint string) (net.Listener, error) {
	return d.inner.Listen(endpoint)
}

// A single frame over the ceiling (CallOneWay cannot chunk — there is no
// response path to flow-control against) must fail its own call with the
// typed ErrTooLarge and leave the connection alone: no teardown, no redial,
// concurrent and subsequent calls unaffected.
func TestOversizedCallDoesNotKillConnection(t *testing.T) {
	sim := netsim.New(netsim.Instant)
	defer sim.Close()
	n := &dialCounter{inner: sim}
	l, err := n.Listen("huge")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(echoHandler, transport.WithLogf(silentLogf))
	if err := srv.Serve(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := transport.NewClient(n, "huge")
	defer c.Close()

	if _, err := c.Call(context.Background(), []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if err := c.CallOneWay(context.Background(), make([]byte, transport.MaxFrameSize+1)); !errors.Is(err, transport.ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	got, err := c.Call(context.Background(), []byte("still alive"))
	if err != nil {
		t.Fatalf("call after oversized frame: %v", err)
	}
	if string(got) != "still alive" {
		t.Fatalf("got %q", got)
	}
	if d := n.dials.Load(); d != 1 {
		t.Fatalf("client redialed after oversized frame: %d dials", d)
	}
}

// Concurrent Call/CallOneWay across a forced redial mid-burst: no response
// may be misdelivered (every success echoes its own payload), every call
// issued on the dying connection fails exactly once with the connection
// error (observable as: no call hangs, no call double-settles, no pooled
// record is corrupted), and traffic resumes on the new connection. Run
// under -race in CI.
func TestClientRedialStress(t *testing.T) {
	sim := netsim.New(netsim.Instant)
	defer sim.Close()

	serve := func() *transport.Server {
		l, err := sim.Listen("stress")
		if err != nil {
			t.Fatal(err)
		}
		srv := transport.NewServer(echoHandler, transport.WithLogf(silentLogf))
		if err := srv.Serve(l); err != nil {
			t.Fatal(err)
		}
		return srv
	}
	srv := serve()

	c := transport.NewClient(sim, "stress")
	defer c.Close()

	const workers = 8
	const callsPerWorker = 300
	var failures atomic.Int32
	var successes atomic.Int32
	var wg sync.WaitGroup
	errCh := make(chan error, workers)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := make([]byte, 16)
			for i := 0; i < callsPerWorker; i++ {
				binary.BigEndian.PutUint64(payload[:8], uint64(w))
				binary.BigEndian.PutUint64(payload[8:], uint64(i))
				if w%4 == 3 && i%7 == 0 {
					// Sprinkle one-way frames through the burst.
					_ = c.CallOneWay(context.Background(), payload)
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				got, err := c.Call(ctx, payload)
				cancel()
				if err != nil {
					// Connection failures are expected mid-restart; a
					// timeout would mean a lost or double-settled call.
					if errors.Is(err, context.DeadlineExceeded) {
						errCh <- err
						return
					}
					failures.Add(1)
					continue
				}
				if !bytes.Equal(got, payload) {
					errCh <- errors.New("misdelivered response")
					return
				}
				successes.Add(1)
			}
		}(w)
	}

	// Kill the server twice mid-burst; each restart forces every in-flight
	// call to fail with the connection error and the client to redial.
	for k := 0; k < 2; k++ {
		time.Sleep(30 * time.Millisecond)
		_ = srv.Close()
		srv = serve()
	}
	wg.Wait()
	_ = srv.Close()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if successes.Load() == 0 {
		t.Fatal("no call succeeded")
	}
	if failures.Load() == 0 {
		t.Log("no call overlapped the restarts; stress window missed (not a failure)")
	}
	t.Logf("successes=%d connection-failures=%d", successes.Load(), failures.Load())
}

// TestClientCrashFaultMidFlush races the netsim crash fault against a burst
// of concurrent in-flight calls: the server endpoint goes down mid-burst
// (connections reset, dials refused) and comes back, twice. The pending-
// call table must fail each in-flight call EXACTLY once — observable as: no
// call hangs past its deadline (a lost record), no response is misdelivered
// (a double-settled or recycled record would corrupt the pooled channels),
// and traffic resumes through a redial after each restart. Unlike
// TestClientRedialStress this kills the server at the network layer while
// the transport.Server object survives, which is exactly the shape the
// chaos harness injects. Run under -race in CI.
func TestClientCrashFaultMidFlush(t *testing.T) {
	sim := netsim.New(netsim.Instant)
	defer sim.Close()
	l, err := sim.Listen("crashy")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(echoHandler, transport.WithLogf(silentLogf))
	if err := srv.Serve(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	n := &dialCounter{inner: sim}
	c := transport.NewClient(n, "crashy")
	defer c.Close()

	const workers = 8
	var failures, successes, postRestart atomic.Int32
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	restarted := make(chan struct{})
	stop := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := make([]byte, 16)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				binary.BigEndian.PutUint64(payload[:8], uint64(w))
				binary.BigEndian.PutUint64(payload[8:], uint64(i))
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				got, err := c.Call(ctx, payload)
				cancel()
				if err != nil {
					// Reset connections and refused dials are the crash
					// surfacing; a deadline means a call settled zero times.
					if errors.Is(err, context.DeadlineExceeded) {
						errCh <- errors.New("call hung: pending record lost")
						return
					}
					failures.Add(1)
					continue
				}
				if !bytes.Equal(got, payload) {
					errCh <- errors.New("misdelivered response: pending record double-used")
					return
				}
				successes.Add(1)
				select {
				case <-restarted:
					postRestart.Add(1)
				default:
				}
			}
		}(w)
	}

	// Crash the endpoint twice mid-burst; each cycle resets every live
	// connection and refuses dials until the restart. The burst keeps
	// running until recovery after the final restart is observed.
	for k := 0; k < 2; k++ {
		time.Sleep(15 * time.Millisecond)
		sim.Crash("crashy")
		time.Sleep(5 * time.Millisecond)
		sim.Restart("crashy")
		if k == 1 {
			close(restarted)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for postRestart.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if successes.Load() == 0 {
		t.Fatal("no call succeeded")
	}
	if postRestart.Load() == 0 {
		t.Fatal("no call succeeded after the final restart: client never recovered")
	}
	if failures.Load() == 0 {
		t.Log("no call overlapped the crash windows; stress window missed (not a failure)")
	}
	if d := n.dials.Load(); failures.Load() > 0 && d < 2 {
		t.Fatalf("crash cycles produced failures but only %d dial(s): no redial happened", d)
	}
	t.Logf("successes=%d crash-failures=%d dials=%d", successes.Load(), failures.Load(), n.dials.Load())
}

// A burst of concurrent writers through one frame writer must deliver every
// frame intact (the coalesced writev path preserves framing).
func TestCoalescedFramesIntact(t *testing.T) {
	n := startServer(t, "coalesce", echoHandler)
	c := transport.NewClient(n, "coalesce")
	defer c.Close()

	const workers = 32
	const reps = 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				payload := bytes.Repeat([]byte{byte(w)}, (w+i)%97+1)
				got, err := c.Call(context.Background(), payload)
				if err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(got, payload) {
					errCh <- errors.New("frame corrupted under coalescing")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
