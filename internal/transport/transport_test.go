package transport_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

func silentLogf(string, ...any) {}

// startServer serves handler at endpoint on a fresh instant network.
func startServer(t *testing.T, endpoint string, handler transport.Handler) *netsim.Network {
	t.Helper()
	n := netsim.New(netsim.Instant)
	t.Cleanup(func() { _ = n.Close() })
	l, err := n.Listen(endpoint)
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(handler, transport.WithLogf(silentLogf))
	if err := srv.Serve(l); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return n
}

func echoHandler(_ context.Context, payload []byte) ([]byte, error) {
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

func TestCallRoundTrip(t *testing.T) {
	n := startServer(t, "echo", echoHandler)
	c := transport.NewClient(n, "echo")
	defer c.Close()
	got, err := c.Call(context.Background(), []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	// Slow handler for short payloads, fast for long ones: forces responses
	// out of order and exercises id-based correlation.
	handler := func(_ context.Context, p []byte) ([]byte, error) {
		if len(p) < 4 {
			time.Sleep(20 * time.Millisecond)
		}
		return echoHandler(context.Background(), p)
	}
	n := startServer(t, "mux", handler)
	c := transport.NewClient(n, "mux")
	defer c.Close()

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(i)}, i+1)
			got, err := c.Call(context.Background(), payload)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, payload) {
				errs <- fmt.Errorf("worker %d: got %v want %v", i, got, payload)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	handler := func(context.Context, []byte) ([]byte, error) {
		return nil, errors.New("boom at dispatch")
	}
	n := startServer(t, "err", handler)
	c := transport.NewClient(n, "err")
	defer c.Close()
	_, err := c.Call(context.Background(), []byte("x"))
	var he *transport.HandlerError
	if !errors.As(err, &he) {
		t.Fatalf("got %v (%T), want *HandlerError", err, err)
	}
	if he.Msg != "boom at dispatch" || he.Endpoint != "err" {
		t.Fatalf("got %+v", he)
	}
}

func TestCallContextCancel(t *testing.T) {
	blocked := make(chan struct{})
	handler := func(ctx context.Context, p []byte) ([]byte, error) {
		close(blocked)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	n := startServer(t, "slow", handler)
	c := transport.NewClient(n, "slow")
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, []byte("x"))
		done <- err
	}()
	<-blocked
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestDialFailure(t *testing.T) {
	n := netsim.New(netsim.Instant)
	defer n.Close()
	c := transport.NewClient(n, "missing")
	defer c.Close()
	if _, err := c.Call(context.Background(), []byte("x")); err == nil {
		t.Fatal("call to unbound endpoint succeeded")
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	started := make(chan struct{})
	handler := func(ctx context.Context, p []byte) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	n := startServer(t, "hang", handler)
	c := transport.NewClient(n, "hang")
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), []byte("x"))
		done <- err
	}()
	<-started
	_ = c.Close()
	if err := <-done; err == nil {
		t.Fatal("pending call survived client close")
	}
	if _, err := c.Call(context.Background(), []byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("call after close: got %v, want ErrClosed", err)
	}
}

func TestServerCloseFailsPendingAndRedialWorks(t *testing.T) {
	n := netsim.New(netsim.Instant)
	defer n.Close()
	l, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	srv := transport.NewServer(func(ctx context.Context, p []byte) ([]byte, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}, transport.WithLogf(silentLogf))
	if err := srv.Serve(l); err != nil {
		t.Fatal(err)
	}

	c := transport.NewClient(n, "svc")
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), []byte("x"))
		done <- err
	}()
	<-started
	_ = srv.Close()
	if err := <-done; err == nil {
		t.Fatal("pending call survived server close")
	}

	// A new server on the same endpoint: the client must redial.
	l2, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := transport.NewServer(echoHandler, transport.WithLogf(silentLogf))
	if err := srv2.Serve(l2); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	got, err := c.Call(context.Background(), []byte("again"))
	if err != nil {
		t.Fatalf("redial failed: %v", err)
	}
	if string(got) != "again" {
		t.Fatalf("got %q", got)
	}
}

func TestOneWayCall(t *testing.T) {
	var calls atomic.Int32
	arrived := make(chan struct{}, 1)
	handler := func(context.Context, []byte) ([]byte, error) {
		calls.Add(1)
		arrived <- struct{}{}
		return []byte("ignored"), nil
	}
	n := startServer(t, "oneway", handler)
	c := transport.NewClient(n, "oneway")
	defer c.Close()
	if err := c.CallOneWay(context.Background(), []byte("fire")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-arrived:
	case <-time.After(2 * time.Second):
		t.Fatal("one-way call never arrived")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d", got)
	}
	// A regular call on the same connection still works (ids don't clash).
	if _, err := c.Call(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestPoolReusesClients(t *testing.T) {
	n := startServer(t, "pooled", echoHandler)
	p := transport.NewPool(n)
	defer p.Close()
	c1, err := p.Get("pooled")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Get("pooled")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("pool created two clients for one endpoint")
	}
	if _, err := p.Call(context.Background(), "pooled", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	_ = p.Close()
	if _, err := p.Get("pooled"); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestLargePayload(t *testing.T) {
	n := startServer(t, "big", echoHandler)
	c := transport.NewClient(n, "big")
	defer c.Close()
	payload := bytes.Repeat([]byte{0xAB}, 4<<20)
	got, err := c.Call(context.Background(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large payload corrupted")
	}
}

// A payload past MaxFrameSize no longer trips ErrTooLarge: sendMessage
// splits it into frameChunk frames and the receiver reassembles, in both
// directions (the echoed response is oversized too). This pins the lifted
// single-frame ceiling at the real production constants, so it moves
// >128 MiB through netsim and stays out of -short runs.
func TestOversizedPayloadChunked(t *testing.T) {
	if testing.Short() {
		t.Skip("moves >128 MiB; skipped under -short (covered at reduced scale by TestChunkedCallRoundTrip)")
	}
	n := startServer(t, "huge", echoHandler)
	c := transport.NewClient(n, "huge")
	defer c.Close()
	payload := make([]byte, transport.MaxFrameSize+1)
	payload[0], payload[len(payload)-1] = 0xA5, 0x5A
	got, err := c.Call(context.Background(), payload)
	if err != nil {
		t.Fatalf("oversized call: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("oversized payload corrupted in chunked transfer")
	}
}

func TestServeTwiceFails(t *testing.T) {
	n := netsim.New(netsim.Instant)
	defer n.Close()
	l1, _ := n.Listen("a")
	l2, _ := n.Listen("b")
	srv := transport.NewServer(echoHandler, transport.WithLogf(silentLogf))
	defer srv.Close()
	if err := srv.Serve(l1); err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(l2); err == nil {
		t.Fatal("second Serve succeeded")
	}
}

func TestTCPNetwork(t *testing.T) {
	var network transport.TCPNetwork
	l, err := network.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	srv := transport.NewServer(echoHandler, transport.WithLogf(silentLogf))
	if err := srv.Serve(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := transport.NewClient(network, l.Addr().String())
	defer c.Close()
	got, err := c.Call(context.Background(), []byte("over tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over tcp" {
		t.Fatalf("got %q", got)
	}
}

func TestManySequentialCalls(t *testing.T) {
	n := startServer(t, "seq", echoHandler)
	c := transport.NewClient(n, "seq")
	defer c.Close()
	for i := 0; i < 200; i++ {
		payload := []byte{byte(i), byte(i >> 8)}
		got, err := c.Call(context.Background(), payload)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("call %d corrupted", i)
		}
	}
}
