package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// frameHeaderLen is the on-wire size of the length prefix plus frame header.
const frameHeaderLen = 4 + frameHeader

// --- payload buffer pool ------------------------------------------------------

// maxPooledBuffer bounds the capacity the payload pool retains; buffers that
// grew beyond it (large file transfers) are left to the GC rather than
// pinned forever.
const maxPooledBuffer = 1 << 20

var payloadPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// GetBuffer returns a zero-length payload buffer from the shared pool.
// Callers append a message to it (e.g. with wire.MarshalAppend) and hand it
// back with PutBuffer when the message has been fully written or decoded,
// so steady-state traffic stops allocating a fresh []byte per message.
func GetBuffer() []byte {
	return (*payloadPool.Get().(*[]byte))[:0]
}

// PutBuffer returns a buffer obtained from GetBuffer (or any buffer the
// caller owns outright) to the pool. The buffer must not be used after.
func PutBuffer(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuffer {
		return
	}
	b = b[:0]
	payloadPool.Put(&b)
}

// getSizedBuffer returns a length-n buffer, pooled when possible.
func getSizedBuffer(n int) []byte {
	b := GetBuffer()
	if cap(b) < n {
		PutBuffer(b)
		poolMisses.Add(1)
		return make([]byte, n)
	}
	poolHits.Add(1)
	return b[:n]
}

// --- frame writer -------------------------------------------------------------

// frameWriter serializes frame writes onto a shared connection with group
// commit: the goroutine that finds the writer idle becomes the flusher and
// writes everything queued — its own frame plus any frames concurrent
// callers enqueue while a flush is in flight — in a single writev
// (net.Buffers) on TCP, or one copy-and-write on other connections. Under
// concurrent small-frame load (the multiplexed client, the server's
// response path) this coalesces many frames into one syscall and removes
// the old per-frame payload copy.
type frameWriter struct {
	w     io.Writer
	isTCP bool
	st    *Stats

	mu      sync.Mutex
	err     error // sticky: the connection is dead
	queue   [][]byte
	hdrs    []*[frameHeaderLen]byte
	waiters []chan error
	writing bool
	// spare double-buffers the queue slices so steady-state flushing
	// allocates nothing.
	spareQueue   [][]byte
	spareHdrs    []*[frameHeaderLen]byte
	spareWaiters []chan error
	// cbuf is the coalescing copy buffer for non-TCP writers.
	cbuf []byte
}

var headerPool = sync.Pool{New: func() any { return new([frameHeaderLen]byte) }}
var waiterPool = sync.Pool{New: func() any { return make(chan error, 1) }}

func newFrameWriter(w io.Writer, st *Stats) *frameWriter {
	_, isTCP := w.(*net.TCPConn)
	if st == nil {
		st = noStats
	}
	return &frameWriter{w: w, isTCP: isTCP, st: st}
}

// write sends one frame, blocking until the frame has been handed to the
// connection (so the caller may recycle payload immediately after). It is
// safe for concurrent use. An oversized frame fails with ErrTooLarge before
// anything is buffered or locked; the connection remains usable.
func (fw *frameWriter) write(kind byte, id uint64, payload []byte) error {
	n := frameHeader + len(payload)
	if n > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	hdr := headerPool.Get().(*[frameHeaderLen]byte)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[4] = kind
	binary.BigEndian.PutUint64(hdr[5:], id)

	fw.mu.Lock()
	if fw.err != nil {
		err := fw.err
		fw.mu.Unlock()
		headerPool.Put(hdr)
		return err
	}
	fw.queue = append(fw.queue, hdr[:], payload)
	fw.hdrs = append(fw.hdrs, hdr)
	if fw.writing {
		// A flush is in flight; our frame rides the next one.
		ch := waiterPool.Get().(chan error)
		fw.waiters = append(fw.waiters, ch)
		fw.mu.Unlock()
		err := <-ch
		waiterPool.Put(ch)
		return err
	}
	fw.writing = true
	var myErr error
	first := true
	for fw.err == nil && len(fw.queue) > 0 {
		queue, hdrs, waiters := fw.queue, fw.hdrs, fw.waiters
		fw.queue, fw.hdrs, fw.waiters = fw.spareQueue[:0], fw.spareHdrs[:0], fw.spareWaiters[:0]
		fw.mu.Unlock()

		werr := fw.flush(queue)
		for _, h := range hdrs {
			headerPool.Put(h)
		}
		for _, ch := range waiters {
			ch <- werr
		}
		if first {
			myErr = werr
			first = false
		}

		fw.mu.Lock()
		fw.spareQueue, fw.spareHdrs, fw.spareWaiters = queue[:0], hdrs[:0], waiters[:0]
		if werr != nil {
			fw.err = werr
			// Fail everything enqueued while the doomed flush was in
			// flight; their frames were never written.
			for _, ch := range fw.waiters {
				ch <- werr
			}
			fw.queue, fw.hdrs, fw.waiters = fw.queue[:0], fw.hdrs[:0], fw.waiters[:0]
		}
	}
	fw.writing = false
	fw.mu.Unlock()
	return myErr
}

// flush writes one batch of header/payload spans.
func (fw *frameWriter) flush(queue [][]byte) error {
	if fw.st != noStats {
		fw.st.FramesOut.Add(uint64(len(queue) / 2))
		fw.st.Writev.Observe(int64(len(queue) / 2))
		var total int
		for _, b := range queue {
			total += len(b)
		}
		fw.st.BytesOut.Add(uint64(total))
	}
	if fw.isTCP {
		bufs := net.Buffers(queue)
		_, err := bufs.WriteTo(fw.w)
		return err
	}
	// Generic writers get one coalesced copy-and-write per batch: net.Conn
	// implementations without writev support (netsim links, pipes) would
	// otherwise pay one Write per span.
	if len(queue) == 2 {
		// Single frame: two writes beat copying the payload when it is
		// large; small pairs still coalesce below.
		if len(queue[1]) >= 4096 {
			if _, err := fw.w.Write(queue[0]); err != nil {
				return err
			}
			_, err := fw.w.Write(queue[1])
			return err
		}
	}
	fw.cbuf = fw.cbuf[:0]
	for _, b := range queue {
		fw.cbuf = append(fw.cbuf, b...)
	}
	_, err := fw.w.Write(fw.cbuf)
	if cap(fw.cbuf) > maxPooledBuffer {
		fw.cbuf = nil
	}
	return err
}

// readFrame reads one frame from r. The returned payload comes from the
// shared buffer pool: the receiver owns it and may hand it back with
// PutBuffer once decoded.
func readFrame(r io.Reader) (kind byte, id uint64, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if n < frameHeader {
		return 0, 0, nil, fmt.Errorf("transport: short frame (%d bytes)", n)
	}
	kind = hdr[4]
	id = binary.BigEndian.Uint64(hdr[5:])
	payload = getSizedBuffer(int(n - frameHeader))
	if _, err = io.ReadFull(r, payload); err != nil {
		PutBuffer(payload)
		return 0, 0, nil, err
	}
	return kind, id, payload, nil
}
