package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// frameWriter serializes frame writes onto a shared connection.
type frameWriter struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: w}
}

// write sends one frame. It is safe for concurrent use.
func (fw *frameWriter) write(kind byte, id uint64, payload []byte) error {
	n := frameHeader + len(payload)
	if n > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.buf = fw.buf[:0]
	fw.buf = binary.BigEndian.AppendUint32(fw.buf, uint32(n))
	fw.buf = append(fw.buf, kind)
	fw.buf = binary.BigEndian.AppendUint64(fw.buf, id)
	fw.buf = append(fw.buf, payload...)
	_, err := fw.w.Write(fw.buf)
	return err
}

// readFrame reads one frame from r. The returned payload is freshly
// allocated and safe to retain.
func readFrame(r io.Reader) (kind byte, id uint64, payload []byte, err error) {
	var hdr [4 + frameHeader]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if n < frameHeader {
		return 0, 0, nil, fmt.Errorf("transport: short frame (%d bytes)", n)
	}
	kind = hdr[4]
	id = binary.BigEndian.Uint64(hdr[5:])
	payload = make([]byte, n-frameHeader)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return kind, id, payload, nil
}
