package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// frameHeaderLen is the on-wire size of the length prefix plus frame header.
const frameHeaderLen = 4 + frameHeader

// --- payload buffer pool ------------------------------------------------------

// maxPooledBuffer bounds the capacity the payload pool retains; buffers that
// grew beyond it (large file transfers) are left to the GC rather than
// pinned forever.
const maxPooledBuffer = 1 << 20

var payloadPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// GetBuffer returns a zero-length payload buffer from the shared pool.
// Callers append a message to it (e.g. with wire.MarshalAppend) and hand it
// back with PutBuffer when the message has been fully written or decoded,
// so steady-state traffic stops allocating a fresh []byte per message.
func GetBuffer() []byte {
	return (*payloadPool.Get().(*[]byte))[:0]
}

// PutBuffer returns a buffer obtained from GetBuffer (or any buffer the
// caller owns outright) to the pool. The buffer must not be used after.
func PutBuffer(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuffer {
		return
	}
	b = b[:0]
	payloadPool.Put(&b)
}

// getSizedBuffer returns a length-n buffer, pooled when possible.
func getSizedBuffer(n int) []byte {
	b := GetBuffer()
	if cap(b) < n {
		PutBuffer(b)
		poolMisses.Add(1)
		return make([]byte, n)
	}
	poolHits.Add(1)
	return b[:n]
}

// --- frame writer -------------------------------------------------------------

// qframe is one queued frame: its fixed header, an optional chunk
// sub-header (frameChunk frames only), and the caller's payload span.
type qframe struct {
	hdr     *[frameHeaderLen]byte
	chdr    *[chunkHeaderLen]byte
	payload []byte
}

// size is the frame's total on-wire length.
func (f *qframe) size() int {
	n := frameHeaderLen + len(f.payload)
	if f.chdr != nil {
		n += chunkHeaderLen
	}
	return n
}

func (f *qframe) recycle() {
	headerPool.Put(f.hdr)
	if f.chdr != nil {
		chunkHdrPool.Put(f.chdr)
	}
	*f = qframe{}
}

// frameWriter serializes frame writes onto a shared connection with group
// commit: the goroutine that finds the writer idle becomes the flusher and
// writes everything queued — its own frame plus any frames concurrent
// callers enqueue while a flush is in flight — in a single writev
// (net.Buffers) on TCP, or one copy-and-write on other connections. Under
// concurrent small-frame load (the multiplexed client, the server's
// response path) this coalesces many frames into one syscall and removes
// the old per-frame payload copy.
type frameWriter struct {
	w     io.Writer
	isTCP bool
	st    *Stats

	mu      sync.Mutex
	err     error // sticky: the connection is dead
	queue   []qframe
	waiters []chan error
	writing bool
	// spare double-buffers the queue slices so steady-state flushing
	// allocates nothing.
	spareQueue   []qframe
	spareWaiters []chan error
	// spans is the flush-time scratch translating queued frames into write
	// vectors; cbuf is the coalescing copy buffer for non-TCP writers.
	spans [][]byte
	cbuf  []byte
}

var headerPool = sync.Pool{New: func() any { return new([frameHeaderLen]byte) }}
var chunkHdrPool = sync.Pool{New: func() any { return new([chunkHeaderLen]byte) }}
var waiterPool = sync.Pool{New: func() any { return make(chan error, 1) }}

func newFrameWriter(w io.Writer, st *Stats) *frameWriter {
	_, isTCP := w.(*net.TCPConn)
	if st == nil {
		st = noStats
	}
	return &frameWriter{w: w, isTCP: isTCP, st: st}
}

// write sends one frame, blocking until the frame has been handed to the
// connection (so the caller may recycle payload immediately after). It is
// safe for concurrent use. An oversized frame fails with ErrTooLarge before
// anything is buffered or locked; the connection remains usable. (Callers
// that accept multi-frame messages use sendMessage, which chunks instead of
// failing.)
func (fw *frameWriter) write(kind byte, id uint64, payload []byte) error {
	n := frameHeader + len(payload)
	if n > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	hdr := headerPool.Get().(*[frameHeaderLen]byte)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[4] = kind
	binary.BigEndian.PutUint64(hdr[5:], id)
	return fw.enqueue(qframe{hdr: hdr, payload: payload})
}

// writeChunk sends one frameChunk frame of stream id: inner is the chunked
// message's logical kind, fin marks the stream's last chunk, seq its
// position. Like write, it blocks until the chunk is handed to the
// connection, so the caller may reuse data immediately after.
func (fw *frameWriter) writeChunk(id uint64, inner byte, fin bool, seq uint32, data []byte) error {
	n := frameHeader + chunkHeaderLen + len(data)
	if n > MaxFrameSize {
		// Unreachable for the package's own senders: maxChunkData is far
		// below the frame ceiling.
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	hdr := headerPool.Get().(*[frameHeaderLen]byte)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[4] = frameChunk
	binary.BigEndian.PutUint64(hdr[5:], id)
	chdr := chunkHdrPool.Get().(*[chunkHeaderLen]byte)
	chdr[0] = inner
	chdr[1] = 0
	if fin {
		chdr[1] = chunkFin
	}
	binary.BigEndian.PutUint32(chdr[2:], seq)
	return fw.enqueue(qframe{hdr: hdr, chdr: chdr, payload: data})
}

// enqueue adds one frame to the group-commit queue and runs the flush loop
// when this goroutine finds the writer idle.
func (fw *frameWriter) enqueue(f qframe) error {
	fw.mu.Lock()
	if fw.err != nil {
		err := fw.err
		fw.mu.Unlock()
		f.recycle()
		return err
	}
	fw.queue = append(fw.queue, f)
	if fw.writing {
		// A flush is in flight; our frame rides the next one.
		ch := waiterPool.Get().(chan error)
		fw.waiters = append(fw.waiters, ch)
		fw.mu.Unlock()
		err := <-ch
		waiterPool.Put(ch)
		return err
	}
	fw.writing = true
	var myErr error
	first := true
	for fw.err == nil && len(fw.queue) > 0 {
		queue, waiters := fw.queue, fw.waiters
		fw.queue, fw.waiters = fw.spareQueue[:0], fw.spareWaiters[:0]
		fw.mu.Unlock()

		werr := fw.flush(queue)
		for i := range queue {
			queue[i].recycle()
		}
		for _, ch := range waiters {
			ch <- werr
		}
		if first {
			myErr = werr
			first = false
		}

		fw.mu.Lock()
		fw.spareQueue, fw.spareWaiters = queue[:0], waiters[:0]
		if werr != nil {
			fw.err = werr
			// Fail everything enqueued while the doomed flush was in
			// flight; their frames were never written.
			for _, ch := range fw.waiters {
				ch <- werr
			}
			for i := range fw.queue {
				fw.queue[i].recycle()
			}
			fw.queue, fw.waiters = fw.queue[:0], fw.waiters[:0]
		}
	}
	fw.writing = false
	fw.mu.Unlock()
	return myErr
}

// flush writes one batch of queued frames.
func (fw *frameWriter) flush(queue []qframe) error {
	spans := fw.spans[:0]
	var total int
	for i := range queue {
		f := &queue[i]
		spans = append(spans, f.hdr[:])
		if f.chdr != nil {
			spans = append(spans, f.chdr[:])
		}
		if len(f.payload) > 0 {
			spans = append(spans, f.payload)
		}
		total += f.size()
	}
	if fw.st != noStats {
		fw.st.FramesOut.Add(uint64(len(queue)))
		fw.st.Writev.Observe(int64(len(queue)))
		fw.st.BytesOut.Add(uint64(total))
	}
	err := fw.writeSpans(queue, spans)
	// Drop payload references so the scratch vector does not pin large
	// buffers between flushes (net.Buffers also consumes entries in place).
	for i := range spans {
		spans[i] = nil
	}
	fw.spans = spans[:0]
	return err
}

func (fw *frameWriter) writeSpans(queue []qframe, spans [][]byte) error {
	if fw.isTCP {
		bufs := net.Buffers(spans)
		_, err := bufs.WriteTo(fw.w)
		return err
	}
	// Generic writers get one coalesced copy-and-write per batch: net.Conn
	// implementations without writev support (netsim links, pipes) would
	// otherwise pay one Write per span.
	if len(queue) == 1 && len(queue[0].payload) >= 4096 {
		// Single large frame: writing the headers and the payload
		// separately beats copying the payload.
		var hb [frameHeaderLen + chunkHeaderLen]byte
		h := append(hb[:0], queue[0].hdr[:]...)
		if queue[0].chdr != nil {
			h = append(h, queue[0].chdr[:]...)
		}
		if _, err := fw.w.Write(h); err != nil {
			return err
		}
		_, err := fw.w.Write(queue[0].payload)
		return err
	}
	fw.cbuf = fw.cbuf[:0]
	for _, b := range spans {
		fw.cbuf = append(fw.cbuf, b...)
	}
	_, err := fw.w.Write(fw.cbuf)
	if cap(fw.cbuf) > maxPooledBuffer {
		fw.cbuf = nil
	}
	return err
}

// readFrame reads one frame from r. The returned payload comes from the
// shared buffer pool: the receiver owns it and may hand it back with
// PutBuffer once decoded.
//
// The header's shape is validated BEFORE its length is trusted: a corrupt
// or hostile header must not drive a max-size pool allocation, so an
// unknown kind fails (connection-fatally — the peer is not speaking our
// protocol) without reading or allocating anything further. A well-formed
// header declaring more than MaxFrameSize has its payload drained without
// allocation and reports a typed *OversizedFrameError, which the read
// loops translate into failing only the addressed call (the receive-side
// mirror of the send path's ErrTooLarge contract).
func readFrame(r io.Reader) (kind byte, id uint64, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	kind = hdr[4]
	id = binary.BigEndian.Uint64(hdr[5:])
	if kind < frameRequest || kind > frameKindMax {
		return 0, 0, nil, fmt.Errorf("transport: unknown frame kind %d (%d-byte frame)", kind, n)
	}
	if n < frameHeader {
		return 0, 0, nil, fmt.Errorf("transport: short frame (%d bytes)", n)
	}
	if n > MaxFrameSize {
		if _, derr := io.CopyN(io.Discard, r, int64(n-frameHeader)); derr != nil {
			return 0, 0, nil, derr
		}
		return 0, 0, nil, &OversizedFrameError{Kind: kind, ID: id, Size: uint64(n)}
	}
	payload = getSizedBuffer(int(n - frameHeader))
	if _, err = io.ReadFull(r, payload); err != nil {
		PutBuffer(payload)
		return 0, 0, nil, err
	}
	return kind, id, payload, nil
}
