package transport_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

// rawServer accepts one connection at endpoint and hands each inbound
// request frame (kind, id, payload) to respond, which writes whatever raw
// bytes it wants back. It lets tests inject protocol-level garbage the real
// Server never produces.
func rawServer(t *testing.T, n transport.Network, endpoint string, respond func(conn net.Conn, kind byte, id uint64, payload []byte)) {
	t.Helper()
	l, err := n.Listen(endpoint)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			var hdr [13]byte // 4-byte length + 1-byte kind + 8-byte id
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				return
			}
			size := binary.BigEndian.Uint32(hdr[:4])
			payload := make([]byte, size-9)
			if _, err := io.ReadFull(conn, payload); err != nil {
				return
			}
			respond(conn, hdr[4], binary.BigEndian.Uint64(hdr[5:]), payload)
		}
	}()
}

// writeRawFrame writes one well-formed frame.
func writeRawFrame(conn net.Conn, kind byte, id uint64, payload []byte) {
	var hdr [13]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(9+len(payload)))
	hdr[4] = kind
	binary.BigEndian.PutUint64(hdr[5:], id)
	_, _ = conn.Write(hdr[:])
	_, _ = conn.Write(payload)
}

// Receive-side mirror of TestOversizedCallDoesNotKillConnection: a peer
// response frame past MaxFrameSize must fail ONLY the addressed call. The
// oversized payload is drained, the connection survives (no redial), and
// subsequent calls on it succeed.
func TestInboundOversizedFrameFailsOnlyCall(t *testing.T) {
	sim := netsim.New(netsim.Instant)
	defer sim.Close()
	n := &dialCounter{inner: sim}

	rawServer(t, sim, "rawhuge", func(conn net.Conn, kind byte, id uint64, payload []byte) {
		if string(payload) == "big" {
			// Valid kind, in-protocol id, length past the ceiling.
			junk := make([]byte, 1<<20)
			size := uint64(transport.MaxFrameSize + 1)
			var hdr [13]byte
			binary.BigEndian.PutUint32(hdr[:4], uint32(size))
			hdr[4] = 2 // frameRespOK
			binary.BigEndian.PutUint64(hdr[5:], id)
			_, _ = conn.Write(hdr[:])
			for sent := uint64(0); sent < size-9; {
				c := uint64(len(junk))
				if c > size-9-sent {
					c = size - 9 - sent
				}
				if _, err := conn.Write(junk[:c]); err != nil {
					return
				}
				sent += c
			}
			return
		}
		writeRawFrame(conn, 2, id, payload) // echo
	})

	c := transport.NewClient(n, "rawhuge")
	defer c.Close()

	if _, err := c.Call(context.Background(), []byte("warm")); err != nil {
		t.Fatal(err)
	}
	_, err := c.Call(context.Background(), []byte("big"))
	if !errors.Is(err, transport.ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	got, err := c.Call(context.Background(), []byte("alive"))
	if err != nil {
		t.Fatalf("call after oversized inbound frame: %v", err)
	}
	if string(got) != "alive" {
		t.Fatalf("got %q", got)
	}
	if d := n.dials.Load(); d != 1 {
		t.Fatalf("client redialed after oversized inbound frame: %d dials", d)
	}
}

// A garbage header (unknown kind) claiming a near-MaxFrameSize length must
// fail fast: the kind is validated BEFORE the length is trusted, so the
// reader neither allocates for nor drains the phantom payload. The server
// sends nothing after the 13 header bytes — if readFrame trusted the length
// first it would block draining 64 MiB that never arrives, and the call
// below would time out instead of failing promptly.
func TestGarbageHeaderFailsFast(t *testing.T) {
	sim := netsim.New(netsim.Instant)
	defer sim.Close()

	rawServer(t, sim, "garbage", func(conn net.Conn, kind byte, id uint64, payload []byte) {
		var hdr [13]byte
		binary.BigEndian.PutUint32(hdr[:4], transport.MaxFrameSize-1)
		hdr[4] = 0xFF
		binary.BigEndian.PutUint64(hdr[5:], id)
		_, _ = conn.Write(hdr[:])
	})

	c := transport.NewClient(sim, "garbage")
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := c.Call(ctx, []byte("hi"))
	if err == nil {
		t.Fatal("call succeeded against a garbage-header peer")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("call timed out: reader trusted the garbage length before validating the kind")
	}
	if !strings.Contains(err.Error(), "unknown frame kind") {
		t.Fatalf("got %v, want unknown-frame-kind connection error", err)
	}
}

// With the chunking thresholds shrunk, an ordinary Call whose request and
// response both span many chunks must round-trip intact, and the chunk
// counters must show multi-frame transfer actually happened.
func TestChunkedCallRoundTrip(t *testing.T) {
	t.Cleanup(transport.SetStreamTuningForTest(1<<10, 512, 2<<10))

	n := startServer(t, "chunky", echoHandler)
	c := transport.NewClient(n, "chunky")
	defer c.Close()

	if _, err := c.Call(context.Background(), []byte("small")); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	got, err := c.Call(context.Background(), payload)
	if err != nil {
		t.Fatalf("chunked call: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("chunked payload corrupted")
	}
	// Concurrent small calls must keep working while a chunked one flows.
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), payload[:32<<10])
		done <- err
	}()
	for i := 0; i < 20; i++ {
		if _, err := c.Call(context.Background(), []byte("tiny")); err != nil {
			t.Fatalf("small call during chunked transfer: %v", err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("concurrent chunked call: %v", err)
	}
}

// CallStream delivers the handler's writes strictly in order, and delivery
// overlaps production: the reader observes early entries while the handler
// is still writing later ones.
func TestCallStreamOrdered(t *testing.T) {
	t.Cleanup(transport.SetStreamTuningForTest(1<<10, 256, 1<<10))

	const entries = 200
	var written atomic.Int32
	handler := func(_ context.Context, payload []byte, w *transport.StreamWriter) error {
		for i := 0; i < entries; i++ {
			if _, err := fmt.Fprintf(w, "entry-%04d;", i); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
			written.Add(1)
		}
		return nil
	}

	sim := netsim.New(netsim.Instant)
	defer sim.Close()
	l, err := sim.Listen("stream")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(echoHandler, transport.WithLogf(silentLogf), transport.WithStreamHandler(handler))
	if err := srv.Serve(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := transport.NewClient(sim, "stream")
	defer c.Close()
	r, err := c.CallStream(context.Background(), []byte("go"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var all []byte
	buf := make([]byte, 64)
	sawOverlap := false
	for {
		n, err := r.Read(buf)
		all = append(all, buf[:n]...)
		if n > 0 && int(written.Load()) < entries {
			sawOverlap = true
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
	}
	var want bytes.Buffer
	for i := 0; i < entries; i++ {
		fmt.Fprintf(&want, "entry-%04d;", i)
	}
	if !bytes.Equal(all, want.Bytes()) {
		t.Fatalf("stream out of order or corrupted (%d bytes, want %d)", len(all), want.Len())
	}
	if !sawOverlap {
		t.Log("no read overlapped production (timing-dependent; not a failure)")
	}
}

// A slow consumer must bound the producer: with the window shrunk, the
// handler cannot run more than window+chunk bytes ahead of what the reader
// consumed.
func TestCallStreamFlowControl(t *testing.T) {
	const window = 4 << 10
	const chunk = 1 << 10
	t.Cleanup(transport.SetStreamTuningForTest(16<<10, chunk, window))

	const total = 256 << 10
	var produced atomic.Int64
	handler := func(_ context.Context, payload []byte, w *transport.StreamWriter) error {
		blob := make([]byte, 512)
		for sent := 0; sent < total; sent += len(blob) {
			if _, err := w.Write(blob); err != nil {
				return err
			}
			produced.Add(int64(len(blob)))
		}
		return nil
	}

	sim := netsim.New(netsim.Instant)
	defer sim.Close()
	l, err := sim.Listen("slow")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(echoHandler, transport.WithLogf(silentLogf), transport.WithStreamHandler(handler))
	if err := srv.Serve(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := transport.NewClient(sim, "slow")
	defer c.Close()
	r, err := c.CallStream(context.Background(), []byte("go"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Consume a trickle, then verify the producer is stalled near the
	// window instead of having buffered the whole payload.
	buf := make([]byte, 256)
	consumed := 0
	for consumed < 1<<10 {
		n, err := r.Read(buf)
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		consumed += n
	}
	time.Sleep(50 * time.Millisecond) // let the producer run as far as credit allows
	// Producer may be ahead by: the unread window, one full buffered chunk,
	// and one batched-but-ungranted refill (window/4 rounds of batching).
	limit := int64(consumed + window + 2*chunk + window/4)
	if p := produced.Load(); p > limit {
		t.Fatalf("producer ran %d bytes ahead of a consumer at %d (limit %d): flow control not enforced", p, consumed, limit)
	}
	n, err := io.Copy(io.Discard, r)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if int(n)+consumed != total {
		t.Fatalf("stream delivered %d bytes, want %d", int(n)+consumed, total)
	}
}

// Closing the reader mid-stream cancels the producer: its next Write
// surfaces ErrStreamCanceled, and the connection keeps serving other calls.
func TestCallStreamCancel(t *testing.T) {
	const window = 4 << 10
	t.Cleanup(transport.SetStreamTuningForTest(16<<10, 1<<10, window))

	handlerErr := make(chan error, 1)
	handler := func(_ context.Context, payload []byte, w *transport.StreamWriter) error {
		blob := make([]byte, 1<<10)
		for {
			if _, err := w.Write(blob); err != nil {
				handlerErr <- err
				return err
			}
		}
	}

	sim := netsim.New(netsim.Instant)
	defer sim.Close()
	l, err := sim.Listen("cancel")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(echoHandler, transport.WithLogf(silentLogf), transport.WithStreamHandler(handler))
	if err := srv.Serve(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := transport.NewClient(sim, "cancel")
	defer c.Close()
	r, err := c.CallStream(context.Background(), []byte("go"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-handlerErr:
		if !errors.Is(err, transport.ErrStreamCanceled) {
			t.Fatalf("handler got %v, want ErrStreamCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer never observed the cancel")
	}
	if got, err := c.Call(context.Background(), []byte("after")); err != nil || string(got) != "after" {
		t.Fatalf("plain call after stream cancel: %q, %v", got, err)
	}
}

// A handler error surfaces through the reader AFTER the data streamed
// before it; a server without a stream handler rejects CallStream cleanly.
func TestCallStreamHandlerError(t *testing.T) {
	t.Cleanup(transport.SetStreamTuningForTest(16<<10, 256, 4<<10))

	handler := func(_ context.Context, payload []byte, w *transport.StreamWriter) error {
		if _, err := w.Write([]byte("partial-data")); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return errors.New("backend exploded")
	}

	sim := netsim.New(netsim.Instant)
	defer sim.Close()
	l, err := sim.Listen("oops")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(echoHandler, transport.WithLogf(silentLogf), transport.WithStreamHandler(handler))
	if err := srv.Serve(l); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := transport.NewClient(sim, "oops")
	defer c.Close()
	r, err := c.CallStream(context.Background(), []byte("go"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err == nil {
		t.Fatal("stream ended without the handler error")
	}
	var he *transport.HandlerError
	if !errors.As(err, &he) || !strings.Contains(he.Msg, "backend exploded") {
		t.Fatalf("got %v, want HandlerError(backend exploded)", err)
	}
	if string(data) != "partial-data" {
		t.Fatalf("data before error: %q, want %q", data, "partial-data")
	}
}

func TestCallStreamNoHandler(t *testing.T) {
	n := startServer(t, "nostream", echoHandler)
	c := transport.NewClient(n, "nostream")
	defer c.Close()
	r, err := c.CallStream(context.Background(), []byte("go"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("stream against a handler-less server succeeded")
	}
}
