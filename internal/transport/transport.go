// Package transport implements the message transport beneath the RMI
// substrate: length-framed, request-ID-multiplexed request/response exchange
// over any net.Conn provider.
//
// It plays the role JRMP (the RMI wire protocol) plays for Java RMI. The
// payloads are opaque byte slices; internal/rmi encodes its call frames with
// internal/wire and hands them to a Client, and serves them via a Server.
//
// A Network abstracts connection establishment so the same client/server
// code runs over real TCP (TCPNetwork) or the simulated links provided by
// internal/netsim.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
)

// DialError reports a failure to ESTABLISH a connection: the request was
// never written to the wire, so the remote call is known not to have
// executed. Callers with idempotence concerns (e.g. the cluster layer's
// stale-route retry) rely on that distinction — a mid-call connection loss
// is NOT a DialError, because the server may have executed the request
// before the response was lost.
type DialError struct {
	Endpoint string
	Err      error
}

func (e *DialError) Error() string {
	return fmt.Sprintf("transport: dial %s: %v", e.Endpoint, e.Err)
}

func (e *DialError) Unwrap() error { return e.Err }

// Network provides connections between named endpoints. Implementations:
// TCPNetwork (host:port endpoints) and netsim.Network (in-memory simulated
// links). Implementations must be safe for concurrent use.
type Network interface {
	// Dial opens a connection to the named endpoint.
	Dial(ctx context.Context, endpoint string) (net.Conn, error)
	// Listen starts accepting connections at the named endpoint.
	Listen(endpoint string) (net.Listener, error)
}

// Frame layout (after the 4-byte big-endian length prefix):
//
//	1 byte  kind (request / response-ok / response-error / ...)
//	8 bytes request id (big endian)
//	N bytes payload
//
// A frameChunk payload opens with a 6-byte chunk header (inner kind, flags,
// 4-byte sequence number) followed by chunk data; see stream.go.
const (
	frameRequest byte = 1
	frameRespOK  byte = 2
	frameRespErr byte = 3 // payload is a UTF-8 error string
	frameOneWay  byte = 4 // request with no response expected
	// frameChunk carries one chunk of a logical message spanning many
	// frames — an oversized call being transparently chunked, or one hop of
	// a response stream. The frame id is the stream id; chunks of different
	// streams interleave freely on one connection.
	frameChunk byte = 5
	// frameCredit is a flow-control grant for the stream named by the frame
	// id: the 4-byte big-endian payload credits the sender with that many
	// more data bytes. A zero grant cancels the stream (the receiver is
	// gone; stop sending).
	frameCredit byte = 6
	// frameStreamReq is a request whose response arrives as a frameChunk
	// stream (see Client.CallStream / WithStreamHandler).
	frameStreamReq byte = 7

	frameKindMax = frameStreamReq
	frameHeader  = 1 + 8
)

// MaxFrameSize bounds a single wire frame. Larger logical messages are
// legal: the send path splits them into frameChunk frames and the receiver
// reassembles (see stream.go); only a single frame claiming more than this
// is rejected, protecting against corrupt length prefixes.
const MaxFrameSize = 64 << 20

// Exported errors.
var (
	// ErrClosed reports use of a closed client or server.
	ErrClosed = errors.New("transport: closed")

	// ErrTooLarge reports a single frame exceeding MaxFrameSize. On the
	// send side it is checked before anything is buffered or written; on the
	// receive side the oversized payload is drained without allocating
	// (see OversizedFrameError). Both sides fail the offending call only —
	// the connection and all concurrent calls on it stay healthy. Match
	// with errors.Is.
	ErrTooLarge = errors.New("transport: frame too large")

	// ErrStreamCanceled reports that the stream's receiver canceled it (a
	// zero-credit grant): the consumer closed its reader, so the sender
	// must stop producing.
	ErrStreamCanceled = errors.New("transport: stream canceled by receiver")
)

// OversizedFrameError reports an inbound frame whose declared length
// exceeds MaxFrameSize. readFrame validates the header's shape first,
// drains the payload without allocating for it, and returns this typed
// error so the read loops can fail only the addressed call and keep the
// connection — the receive-side mirror of the send path's fail-one-call
// ErrTooLarge contract. errors.Is(err, ErrTooLarge) matches.
type OversizedFrameError struct {
	Kind byte
	ID   uint64
	Size uint64
}

func (e *OversizedFrameError) Error() string {
	return fmt.Sprintf("transport: inbound frame too large: %d bytes (kind %d, id %d)", e.Size, e.Kind, e.ID)
}

func (e *OversizedFrameError) Unwrap() error { return ErrTooLarge }

// HandlerError is the client-side form of an error string returned by the
// remote handler at the transport level (the request never reached, or blew
// up inside, the application dispatcher).
type HandlerError struct {
	Endpoint string
	Msg      string
}

func (e *HandlerError) Error() string {
	return fmt.Sprintf("transport: remote handler at %s: %s", e.Endpoint, e.Msg)
}

// Handler processes one request payload and returns the response payload.
// Handlers run concurrently; they must be safe for concurrent use. A
// returned error is transported to the caller as a HandlerError.
//
// Under WithBufferReuse the server recycles both buffers through the
// shared pool: the handler must not retain payload after returning, and the
// response must be a buffer the handler owns outright (see GetBuffer).
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

// StreamHandler processes one stream request (sent with Client.CallStream)
// by writing the response incrementally through w: bytes written stream to
// the caller in credit-gated chunks while the handler keeps producing. A
// returned error is delivered to the caller's reader after the data
// streamed so far; returning ErrStreamCanceled (which Write surfaces when
// the caller abandons the stream) is the clean way to stop early. Stream
// handlers run concurrently, like Handlers, and the same WithBufferReuse
// payload rules apply.
type StreamHandler func(ctx context.Context, payload []byte, w *StreamWriter) error

// TCPNetwork implements Network over the operating system's TCP stack.
// Endpoints are "host:port" strings.
type TCPNetwork struct{}

var _ Network = TCPNetwork{}

// Dial implements Network.
func (TCPNetwork) Dial(ctx context.Context, endpoint string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", endpoint)
}

// Listen implements Network.
func (TCPNetwork) Listen(endpoint string) (net.Listener, error) {
	return net.Listen("tcp", endpoint)
}
