package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// numShards splits the pending-call table so concurrent callers on one
// client do not serialize on a single lock. Must be a power of two.
const numShards = 16

// Client issues requests to a single endpoint over one shared connection,
// multiplexing concurrent calls by request id. It redials transparently
// after a connection failure. Safe for concurrent use.
//
// The hot path is lock-light: request ids come from an atomic counter, the
// live connection is an atomic pointer (the mutex is only taken to dial,
// tear down, or close), and the pending-call table is sharded by id.
type Client struct {
	network  Network
	endpoint string
	st       *Stats

	nextID atomic.Uint64
	cur    atomic.Pointer[clientConn]

	mu      sync.Mutex // serializes dial, teardown, close
	closed  bool
	gen     uint64 // bumped per successful dial; tags pending calls
	readers sync.WaitGroup

	shards [numShards]pendingShard
}

type pendingShard struct {
	mu sync.Mutex
	m  map[uint64]*pendingCall
}

// pendingCall carries one in-flight request's response channel, tagged with
// the generation of the connection it was issued on so a dying connection
// fails exactly the calls that rode it. Records (and their channels) are
// pooled. A stream call (CallStream) carries its reader instead; stream
// records are never pooled.
type pendingCall struct {
	ch     chan response
	gen    uint64
	stream *StreamReader
}

var pendingPool = sync.Pool{New: func() any {
	return &pendingCall{ch: make(chan response, 1)}
}}

// clientConn is one dialed connection's immutable state. ct is the
// send-side flow control for chunked messages issued on this connection;
// asm reassembles inbound chunked responses (read loop only).
type clientConn struct {
	conn net.Conn
	fw   *frameWriter
	gen  uint64
	ct   *creditTable
	asm  *assembler
}

type response struct {
	payload []byte
	err     error
}

// NewClient creates a client for endpoint. No connection is opened until
// the first Call.
func NewClient(network Network, endpoint string) *Client {
	c := &Client{network: network, endpoint: endpoint, st: noStats}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*pendingCall)
	}
	return c
}

// SetStats attaches the transport metric bundle. Call before the first
// Call; a nil bundle detaches.
func (c *Client) SetStats(st *Stats) {
	if st == nil {
		st = noStats
	}
	c.st = st
}

// Endpoint returns the endpoint this client dials.
func (c *Client) Endpoint() string { return c.endpoint }

// Call sends payload and blocks until the response, a connection failure,
// or ctx cancellation. On cancellation the pending entry is abandoned; a
// late response is discarded. The returned payload buffer is owned by the
// caller, which may return it to the pool with PutBuffer after decoding.
//
// A payload larger than one frame is chunked transparently (see
// stream.go), so there is no send-side size ceiling; should a single-frame
// ErrTooLarge still surface, it fails only this call — the connection
// stays up and concurrent calls proceed undisturbed.
func (c *Client) Call(ctx context.Context, payload []byte) ([]byte, error) {
	cc, err := c.conn(ctx)
	if err != nil {
		return nil, err
	}
	id := c.nextID.Add(1)
	pc := pendingPool.Get().(*pendingCall)
	pc.gen = cc.gen
	sh := &c.shards[id&(numShards-1)]
	sh.mu.Lock()
	sh.m[id] = pc
	sh.mu.Unlock()
	c.st.Pending.Add(1)

	if err := sendMessage(ctx, cc.fw, cc.ct, c.st, frameRequest, id, payload); err != nil {
		if errors.Is(err, ErrTooLarge) {
			// Nothing was buffered or sent; fail this call only.
			if c.remove(id) {
				pendingPool.Put(pc)
			}
			return nil, err
		}
		c.dropConn(cc)
		if c.remove(id) {
			pendingPool.Put(pc)
		}
		return nil, fmt.Errorf("transport: send to %s: %w", c.endpoint, err)
	}
	select {
	case resp := <-pc.ch:
		pendingPool.Put(pc)
		return resp.payload, resp.err
	case <-ctx.Done():
		if c.remove(id) {
			// No sender took the record; safe to recycle.
			pendingPool.Put(pc)
		}
		// Else a response/teardown is in flight; abandon the record.
		return nil, ctx.Err()
	}
}

// CallOneWay sends payload without waiting for a response. Used by the DGC
// substrate for clean calls on shutdown paths.
func (c *Client) CallOneWay(ctx context.Context, payload []byte) error {
	cc, err := c.conn(ctx)
	if err != nil {
		return err
	}
	id := c.nextID.Add(1)
	if err := cc.fw.write(frameOneWay, id, payload); err != nil {
		if errors.Is(err, ErrTooLarge) {
			return err
		}
		c.dropConn(cc)
		return fmt.Errorf("transport: send to %s: %w", c.endpoint, err)
	}
	return nil
}

// CallStream sends payload as a stream request: the response arrives as an
// ordered chunk stream delivered through the returned reader while later
// chunks are still in flight (the server must install a stream handler,
// see WithStreamHandler). The reader must be drained to io.EOF or closed;
// Close cancels the sender via a zero-credit grant. Oversized request
// payloads are chunked like Call's.
func (c *Client) CallStream(ctx context.Context, payload []byte) (*StreamReader, error) {
	cc, err := c.conn(ctx)
	if err != nil {
		return nil, err
	}
	id := c.nextID.Add(1)
	r := newStreamReader(ctx, c, cc, id)
	pc := &pendingCall{gen: cc.gen, stream: r}
	sh := &c.shards[id&(numShards-1)]
	sh.mu.Lock()
	sh.m[id] = pc
	sh.mu.Unlock()
	c.st.Pending.Add(1)

	if err := sendMessage(ctx, cc.fw, cc.ct, c.st, frameStreamReq, id, payload); err != nil {
		c.remove(id)
		r.deliver(0, nil, false, err)
		c.dropConn(cc)
		return nil, fmt.Errorf("transport: send to %s: %w", c.endpoint, err)
	}
	return r, nil
}

// remove deletes a pending entry, reporting whether it was still present
// (present means no response/failure path owns it).
func (c *Client) remove(id uint64) bool {
	sh := &c.shards[id&(numShards-1)]
	sh.mu.Lock()
	_, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if ok {
		c.st.Pending.Add(-1)
	}
	return ok
}

// take claims the pending entry for id, if any.
func (c *Client) take(id uint64) *pendingCall {
	sh := &c.shards[id&(numShards-1)]
	sh.mu.Lock()
	pc := sh.m[id]
	if pc != nil {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if pc != nil {
		c.st.Pending.Add(-1)
	}
	return pc
}

// peek returns the pending entry for id without claiming it — chunk frames
// address the same id many times before the stream completes.
func (c *Client) peek(id uint64) *pendingCall {
	sh := &c.shards[id&(numShards-1)]
	sh.mu.Lock()
	pc := sh.m[id]
	sh.mu.Unlock()
	return pc
}

// conn returns the live connection, dialing under the mutex if needed.
func (c *Client) conn(ctx context.Context) (*clientConn, error) {
	if cc := c.cur.Load(); cc != nil {
		return cc, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if cc := c.cur.Load(); cc != nil {
		return cc, nil
	}
	conn, err := c.network.Dial(ctx, c.endpoint)
	if err != nil {
		return nil, &DialError{Endpoint: c.endpoint, Err: err}
	}
	c.gen++
	c.st.Dials.Inc()
	if c.gen > 1 {
		c.st.Redials.Inc()
	}
	cc := &clientConn{
		conn: conn,
		fw:   newFrameWriter(conn, c.st),
		gen:  c.gen,
		ct:   newCreditTable(),
		asm:  newAssembler(),
	}
	c.cur.Store(cc)
	c.readers.Add(1)
	go c.readLoop(cc)
	return cc, nil
}

// readLoop delivers responses until the connection dies, then fails the
// pending calls that were issued on that connection.
func (c *Client) readLoop(cc *clientConn) {
	defer c.readers.Done()
	for {
		kind, id, payload, err := readFrame(cc.conn)
		if err != nil {
			var of *OversizedFrameError
			if errors.As(err, &of) {
				// The peer sent a single frame beyond the ceiling. The
				// payload was drained and the connection is healthy, so
				// fail only the addressed call — the receive-side mirror of
				// the send path's fail-one-call ErrTooLarge contract.
				if pc := c.take(of.ID); pc != nil {
					c.deliver(pc, response{err: fmt.Errorf("transport: response from %s: %w", c.endpoint, of)})
				}
				continue
			}
			c.failConn(cc, fmt.Errorf("transport: connection to %s lost: %w", c.endpoint, err))
			return
		}
		c.st.FramesIn.Inc()
		c.st.BytesIn.Add(uint64(frameHeaderLen + len(payload)))
		switch kind {
		case frameCredit:
			if len(payload) == 4 {
				cc.ct.grant(id, int(binary.BigEndian.Uint32(payload)))
			}
			PutBuffer(payload)
			continue
		case frameChunk:
			if err := c.handleChunk(cc, id, payload); err != nil {
				c.failConn(cc, fmt.Errorf("transport: connection to %s lost: %w", c.endpoint, err))
				return
			}
			continue
		}
		pc := c.take(id)
		if pc == nil {
			PutBuffer(payload) // canceled call; drop late response
			continue
		}
		switch kind {
		case frameRespOK:
			c.deliver(pc, response{payload: payload})
		case frameRespErr:
			msg := string(payload)
			PutBuffer(payload)
			c.deliver(pc, response{err: &HandlerError{Endpoint: c.endpoint, Msg: msg}})
		default:
			PutBuffer(payload)
			c.deliver(pc, response{err: fmt.Errorf("transport: unexpected frame kind %d from %s", kind, c.endpoint)})
		}
	}
}

// handleChunk routes one frameChunk frame: stream-call chunks feed the
// pending call's reader incrementally, chunks of an ordinary oversized
// response reassemble into one payload. A returned error is a protocol
// violation and connection-fatal.
func (c *Client) handleChunk(cc *clientConn, id uint64, payload []byte) error {
	cv, err := parseChunk(payload)
	if err != nil {
		PutBuffer(payload)
		return err
	}
	c.st.ChunksIn.Inc()
	c.st.StreamBytesIn.Add(uint64(len(cv.data)))
	pc := c.peek(id)
	if pc == nil {
		// Abandoned call: drop the chunk but keep granting credit so the
		// sender runs to its fin instead of blocking on a dead window.
		cc.asm.drop(id)
		n := len(cv.data)
		fin := cv.fin
		PutBuffer(payload)
		if !fin && n > 0 {
			_ = writeCredit(cc.fw, id, n)
		}
		return nil
	}
	if r := pc.stream; r != nil {
		// The reader owns the data span (it grants credit as the consumer
		// reads); the header prefix rides along unused.
		var terminal bool
		switch cv.inner {
		case frameRespOK:
			terminal = r.deliver(cv.seq, cv.data, cv.fin, nil)
		case frameRespErr:
			msg := string(cv.data)
			PutBuffer(payload)
			terminal = r.deliver(cv.seq, nil, cv.fin, &HandlerError{Endpoint: c.endpoint, Msg: msg})
		default:
			PutBuffer(payload)
			terminal = r.deliver(cv.seq, nil, cv.fin, fmt.Errorf("transport: unexpected chunked frame kind %d from %s", cv.inner, c.endpoint))
		}
		if terminal {
			c.remove(id)
		}
		return nil
	}
	// Ordinary call whose response outgrew one frame: reassemble, granting
	// credit immediately — reassembly consumes as fast as the wire delivers.
	inner, msg, done, aerr := cc.asm.add(id, cv)
	n := len(cv.data)
	PutBuffer(payload)
	if aerr != nil {
		return aerr
	}
	if !done {
		if n > 0 {
			_ = writeCredit(cc.fw, id, n)
		}
		return nil
	}
	if pc := c.take(id); pc != nil {
		switch inner {
		case frameRespOK:
			c.deliver(pc, response{payload: msg})
		case frameRespErr:
			s := string(msg)
			PutBuffer(msg)
			c.deliver(pc, response{err: &HandlerError{Endpoint: c.endpoint, Msg: s}})
		default:
			PutBuffer(msg)
			c.deliver(pc, response{err: fmt.Errorf("transport: unexpected chunked frame kind %d from %s", inner, c.endpoint)})
		}
	} else {
		PutBuffer(msg)
	}
	return nil
}

// deliver completes one claimed pending call: plain calls through their
// response channel, stream calls through their reader (a stream call
// completed here received a non-chunk outcome — a transport error or an
// unexpected plain response).
func (c *Client) deliver(pc *pendingCall, resp response) {
	if r := pc.stream; r != nil {
		err := resp.err
		if err == nil {
			PutBuffer(resp.payload)
			err = fmt.Errorf("transport: unchunked response to stream call from %s", c.endpoint)
		}
		r.deliver(0, nil, false, err)
		return
	}
	pc.ch <- resp
}

// failConn tears down cc (if still current) and fails every pending call
// issued on it. Calls already riding a newer connection are left alone;
// senders blocked on stream credit are woken with the failure.
func (c *Client) failConn(cc *clientConn, err error) {
	c.cur.CompareAndSwap(cc, nil)
	_ = cc.conn.Close()
	cc.ct.fail(err)
	c.failPending(func(pc *pendingCall) bool { return pc.gen == cc.gen }, err)
}

// failPending sweeps the shards and fails every pending call matching the
// filter. Each call receives exactly one completion: senders claim records
// by removing them from the shard map first.
func (c *Client) failPending(match func(*pendingCall) bool, err error) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		var failed []*pendingCall
		for id, pc := range sh.m {
			if match(pc) {
				delete(sh.m, id)
				failed = append(failed, pc)
			}
		}
		sh.mu.Unlock()
		c.st.Pending.Add(-int64(len(failed)))
		for _, pc := range failed {
			c.deliver(pc, response{err: err})
		}
	}
}

// dropConn closes the connection behind cc if it is still current, forcing
// the next call to redial.
func (c *Client) dropConn(cc *clientConn) {
	if c.cur.CompareAndSwap(cc, nil) {
		_ = cc.conn.Close()
	}
}

// Close terminates the connection and fails outstanding calls with
// ErrClosed. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.readers.Wait()
		return nil
	}
	c.closed = true
	cc := c.cur.Swap(nil)
	c.mu.Unlock()

	if cc != nil {
		_ = cc.conn.Close()
	}
	c.failPending(func(*pendingCall) bool { return true }, ErrClosed)
	c.readers.Wait()
	return nil
}

// Pool caches one Client per endpoint, mirroring RMI's connection reuse.
// Safe for concurrent use. The endpoint set stabilizes immediately in
// steady state, so Get reads a copy-on-write snapshot without locking.
type Pool struct {
	network Network
	st      *Stats

	snap    atomic.Pointer[map[string]*Client]
	mu      sync.Mutex
	clients map[string]*Client
	closed  bool
}

// NewPool creates an empty client pool over network.
func NewPool(network Network) *Pool {
	p := &Pool{network: network, st: noStats, clients: make(map[string]*Client)}
	empty := map[string]*Client{}
	p.snap.Store(&empty)
	return p
}

// SetStats attaches the transport metric bundle; clients created after
// the call inherit it. Call before first use; a nil bundle detaches.
func (p *Pool) SetStats(st *Stats) {
	if st == nil {
		st = noStats
	}
	p.mu.Lock()
	p.st = st
	p.mu.Unlock()
}

// Get returns the pooled client for endpoint, creating it if needed.
func (p *Pool) Get(endpoint string) (*Client, error) {
	if c, ok := (*p.snap.Load())[endpoint]; ok {
		return c, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if c, ok := p.clients[endpoint]; ok {
		return c, nil
	}
	c := NewClient(p.network, endpoint)
	c.SetStats(p.st)
	p.clients[endpoint] = c
	next := make(map[string]*Client, len(p.clients))
	for k, v := range p.clients {
		next[k] = v
	}
	p.snap.Store(&next)
	return c, nil
}

// Call is shorthand for Get(endpoint).Call(ctx, payload).
func (p *Pool) Call(ctx context.Context, endpoint string, payload []byte) ([]byte, error) {
	c, err := p.Get(endpoint)
	if err != nil {
		return nil, err
	}
	return c.Call(ctx, payload)
}

// CallStream is shorthand for Get(endpoint).CallStream(ctx, payload).
func (p *Pool) CallStream(ctx context.Context, endpoint string, payload []byte) (*StreamReader, error) {
	c, err := p.Get(endpoint)
	if err != nil {
		return nil, err
	}
	return c.CallStream(ctx, payload)
}

// Close closes every pooled client.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	clients := make([]*Client, 0, len(p.clients))
	for _, c := range p.clients {
		clients = append(clients, c)
	}
	p.clients = nil
	empty := map[string]*Client{}
	p.snap.Store(&empty)
	p.mu.Unlock()

	for _, c := range clients {
		_ = c.Close()
	}
	return nil
}
