package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
)

// Client issues requests to a single endpoint over one shared connection,
// multiplexing concurrent calls by request id. It redials transparently
// after a connection failure. Safe for concurrent use.
type Client struct {
	network  Network
	endpoint string

	mu      sync.Mutex
	conn    net.Conn
	writer  *frameWriter
	nextID  uint64
	pending map[uint64]chan response
	closed  bool
	readers sync.WaitGroup
}

type response struct {
	payload []byte
	err     error
}

// NewClient creates a client for endpoint. No connection is opened until
// the first Call.
func NewClient(network Network, endpoint string) *Client {
	return &Client{
		network:  network,
		endpoint: endpoint,
		pending:  make(map[uint64]chan response),
	}
}

// Endpoint returns the endpoint this client dials.
func (c *Client) Endpoint() string { return c.endpoint }

// Call sends payload and blocks until the response, a connection failure,
// or ctx cancellation. On cancellation the pending entry is abandoned; a
// late response is discarded.
func (c *Client) Call(ctx context.Context, payload []byte) ([]byte, error) {
	ch, id, fw, err := c.register(ctx)
	if err != nil {
		return nil, err
	}
	if err := fw.write(frameRequest, id, payload); err != nil {
		c.unregister(id)
		c.dropConn(fw)
		return nil, fmt.Errorf("transport: send to %s: %w", c.endpoint, err)
	}
	select {
	case resp := <-ch:
		return resp.payload, resp.err
	case <-ctx.Done():
		c.unregister(id)
		return nil, ctx.Err()
	}
}

// CallOneWay sends payload without waiting for a response. Used by the DGC
// substrate for clean calls on shutdown paths.
func (c *Client) CallOneWay(ctx context.Context, payload []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	fw, err := c.connLocked(ctx)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	id := c.nextID
	c.nextID++
	c.mu.Unlock()

	if err := fw.write(frameOneWay, id, payload); err != nil {
		c.dropConn(fw)
		return fmt.Errorf("transport: send to %s: %w", c.endpoint, err)
	}
	return nil
}

// register allocates a request id, ensures a live connection, and installs
// the response channel.
func (c *Client) register(ctx context.Context) (chan response, uint64, *frameWriter, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, nil, ErrClosed
	}
	fw, err := c.connLocked(ctx)
	if err != nil {
		return nil, 0, nil, err
	}
	id := c.nextID
	c.nextID++
	ch := make(chan response, 1)
	c.pending[id] = ch
	return ch, id, fw, nil
}

func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// connLocked returns the current frame writer, dialing if necessary.
// Caller holds c.mu.
func (c *Client) connLocked(ctx context.Context) (*frameWriter, error) {
	if c.conn != nil {
		return c.writer, nil
	}
	conn, err := c.network.Dial(ctx, c.endpoint)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", c.endpoint, err)
	}
	c.conn = conn
	c.writer = newFrameWriter(conn)
	c.readers.Add(1)
	go c.readLoop(conn)
	return c.writer, nil
}

// readLoop delivers responses until the connection dies, then fails all
// pending calls that were issued on that connection.
func (c *Client) readLoop(conn net.Conn) {
	defer c.readers.Done()
	for {
		kind, id, payload, err := readFrame(conn)
		if err != nil {
			c.failConn(conn, fmt.Errorf("transport: connection to %s lost: %w", c.endpoint, err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if !ok {
			continue // canceled call; drop late response
		}
		switch kind {
		case frameRespOK:
			ch <- response{payload: payload}
		case frameRespErr:
			ch <- response{err: &HandlerError{Endpoint: c.endpoint, Msg: string(payload)}}
		default:
			ch <- response{err: fmt.Errorf("transport: unexpected frame kind %d from %s", kind, c.endpoint)}
		}
	}
}

// failConn tears down conn (if still current) and fails all pending calls.
func (c *Client) failConn(conn net.Conn, err error) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
		c.writer = nil
	}
	pending := c.pending
	c.pending = make(map[uint64]chan response)
	c.mu.Unlock()

	_ = conn.Close()
	for _, ch := range pending {
		ch <- response{err: err}
	}
}

// dropConn closes the connection behind fw if it is still current, forcing
// the next call to redial.
func (c *Client) dropConn(fw *frameWriter) {
	c.mu.Lock()
	var conn net.Conn
	if c.writer == fw {
		conn = c.conn
		c.conn = nil
		c.writer = nil
	}
	c.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// Close terminates the connection and fails outstanding calls with
// ErrClosed. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.readers.Wait()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.writer = nil
	pending := c.pending
	c.pending = make(map[uint64]chan response)
	c.mu.Unlock()

	if conn != nil {
		_ = conn.Close()
	}
	for _, ch := range pending {
		ch <- response{err: ErrClosed}
	}
	c.readers.Wait()
	return nil
}

// Pool caches one Client per endpoint, mirroring RMI's connection reuse.
// Safe for concurrent use.
type Pool struct {
	network Network

	mu      sync.Mutex
	clients map[string]*Client
	closed  bool
}

// NewPool creates an empty client pool over network.
func NewPool(network Network) *Pool {
	return &Pool{network: network, clients: make(map[string]*Client)}
}

// Get returns the pooled client for endpoint, creating it if needed.
func (p *Pool) Get(endpoint string) (*Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if c, ok := p.clients[endpoint]; ok {
		return c, nil
	}
	c := NewClient(p.network, endpoint)
	p.clients[endpoint] = c
	return c, nil
}

// Call is shorthand for Get(endpoint).Call(ctx, payload).
func (p *Pool) Call(ctx context.Context, endpoint string, payload []byte) ([]byte, error) {
	c, err := p.Get(endpoint)
	if err != nil {
		return nil, err
	}
	return c.Call(ctx, payload)
}

// Close closes every pooled client.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	clients := make([]*Client, 0, len(p.clients))
	for _, c := range p.clients {
		clients = append(clients, c)
	}
	p.clients = nil
	p.mu.Unlock()

	for _, c := range clients {
		_ = c.Close()
	}
	return nil
}
