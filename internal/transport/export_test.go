package transport

// SetStreamTuningForTest shrinks the chunking thresholds so tests exercise
// the multi-frame paths without moving real MaxFrameSize payloads. The
// returned func restores the production values; register it with t.Cleanup.
func SetStreamTuningForTest(direct, chunk, window int) (restore func()) {
	od, oc, ow := maxDirectPayload, maxChunkData, streamWindow
	maxDirectPayload, maxChunkData, streamWindow = direct, chunk, window
	return func() { maxDirectPayload, maxChunkData, streamWindow = od, oc, ow }
}
