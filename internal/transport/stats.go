package transport

import (
	"sync/atomic"

	"repro/internal/stats"
)

// Stats is the transport-layer metric bundle. Individual fields may be
// nil (stats.Counter et al. no-op on nil receivers), so an uninstrumented
// component pays one predictable branch per event. Components hold a
// never-nil *Stats; noStats is the detached default.
type Stats struct {
	FramesIn  *stats.Counter   // frames received (client responses + server requests)
	FramesOut *stats.Counter   // frames written
	BytesIn   *stats.Counter   // wire bytes received, headers included
	BytesOut  *stats.Counter   // wire bytes written, headers included
	Writev    *stats.Histogram // frames coalesced per flush (group-commit batch size)
	Pending   *stats.Gauge     // in-flight calls in the pending table
	Dials     *stats.Counter   // successful dials
	Redials   *stats.Counter   // successful dials after a connection loss

	StreamsOpen    *stats.Gauge   // response streams currently open (client side)
	ChunksIn       *stats.Counter // frameChunk frames received
	ChunksOut      *stats.Counter // frameChunk frames written
	StreamBytesIn  *stats.Counter // chunk data bytes received
	StreamBytesOut *stats.Counter // chunk data bytes written
}

var noStats = &Stats{}

// NewStats builds the transport metric bundle on r and registers the
// process-global buffer-pool hit/miss counters as snapshot-time gauges
// (the pool is shared by every peer in the process; see DESIGN.md).
// A nil registry returns the detached bundle.
func NewStats(r *stats.Registry) *Stats {
	if r == nil {
		return noStats
	}
	r.Func("transport.pool_hit", func() int64 { return int64(poolHits.Load()) })
	r.Func("transport.pool_miss", func() int64 { return int64(poolMisses.Load()) })
	return &Stats{
		FramesIn:  r.Counter("transport.frames_in"),
		FramesOut: r.Counter("transport.frames_out"),
		BytesIn:   r.Counter("transport.bytes_in"),
		BytesOut:  r.Counter("transport.bytes_out"),
		Writev:    r.Histogram("transport.writev_frames"),
		Pending:   r.Gauge("transport.pending_calls"),
		Dials:     r.Counter("transport.dials"),
		Redials:   r.Counter("transport.redials"),

		StreamsOpen:    r.Gauge("transport.streams_open"),
		ChunksIn:       r.Counter("transport.chunks_in"),
		ChunksOut:      r.Counter("transport.chunks_out"),
		StreamBytesIn:  r.Counter("transport.stream_bytes_in"),
		StreamBytesOut: r.Counter("transport.stream_bytes_out"),
	}
}

// poolHits/poolMisses count sized-buffer requests served from the shared
// payload pool vs. falling through to make. Process-global by necessity:
// the pool itself is.
var poolHits, poolMisses atomic.Uint64

// PoolCounters returns the process-global payload-pool hit/miss totals.
func PoolCounters() (hits, misses uint64) {
	return poolHits.Load(), poolMisses.Load()
}
