package transport

import (
	"context"
	"errors"
	"io"
	"log"
	"net"
	"sync"
)

// Server accepts connections from a Network listener and dispatches request
// frames to a Handler. Responses may complete out of order; the request id
// correlates them.
type Server struct {
	handler Handler
	logf    func(format string, args ...any)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup // accept loop + per-conn loops + in-flight handlers

	ctx    context.Context
	cancel context.CancelFunc
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLogf routes server diagnostics (connection failures) to logf instead
// of the standard logger. Pass a no-op to silence.
func WithLogf(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// NewServer creates a Server that dispatches to handler.
func NewServer(handler Handler, opts ...ServerOption) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		handler: handler,
		logf:    log.Printf,
		conns:   make(map[net.Conn]struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve begins accepting connections on l. It returns immediately; use
// Close to stop. Serve may be called once per server.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.listener != nil {
		s.mu.Unlock()
		return errors.New("transport: Serve called twice")
	}
	s.listener = l
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(l)
	return nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()

	fw := newFrameWriter(conn)
	for {
		kind, id, payload, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
				s.logf("transport: server read: %v", err)
			}
			return
		}
		switch kind {
		case frameRequest, frameOneWay:
			s.wg.Add(1)
			go s.dispatch(fw, kind, id, payload)
		default:
			s.logf("transport: server ignoring frame kind %d", kind)
		}
	}
}

func (s *Server) dispatch(fw *frameWriter, kind byte, id uint64, payload []byte) {
	defer s.wg.Done()
	resp, err := s.handler(s.ctx, payload)
	if kind == frameOneWay {
		return
	}
	if err != nil {
		if werr := fw.write(frameRespErr, id, []byte(err.Error())); werr != nil {
			s.logf("transport: server write error response: %v", werr)
		}
		return
	}
	if werr := fw.write(frameRespOK, id, resp); werr != nil {
		s.logf("transport: server write response: %v", werr)
	}
}

// Close stops accepting, closes all connections, and waits for in-flight
// handlers to drain. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	if l != nil {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}
