package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sync"
)

// Server accepts connections from a Network listener and dispatches request
// frames to a Handler. Responses may complete out of order; the request id
// correlates them.
//
// Dispatch reuses a small pool of long-lived worker goroutines (their grown
// stacks stay warm across requests, which per-request goroutines cannot
// offer); when every worker is busy a request gets its own goroutine, so
// handler concurrency remains unbounded exactly as before.
type Server struct {
	handler Handler
	stream  StreamHandler
	logf    func(format string, args ...any)
	reuse   bool
	st      *Stats

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup // accept loop + per-conn loops

	// tasks is the unbuffered handoff to idle dispatch workers: a send
	// succeeds only when a worker is ready to take the request, so a busy
	// pool never queues one request behind another.
	tasks    chan dispatchTask
	workerWG sync.WaitGroup // core workers + overflow dispatch goroutines

	ctx    context.Context
	cancel context.CancelFunc
}

type dispatchTask struct {
	fw      *frameWriter
	ct      *creditTable
	kind    byte
	id      uint64
	payload []byte
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLogf routes server diagnostics (connection failures) to logf instead
// of the standard logger. Pass a no-op to silence.
func WithLogf(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithBufferReuse opts the server into recycling message buffers through
// the shared pool: request payloads are returned to the pool after the
// handler returns, and response payloads after they are written. The
// handler must therefore not retain the request payload past its return,
// and must hand back response buffers it owns outright (ideally from
// GetBuffer) — never the request payload or a slice of it. The rmi layer
// satisfies both and opts in; handlers with other ownership conventions
// leave the option off and keep the allocate-per-message behavior.
func WithBufferReuse() ServerOption {
	return func(s *Server) { s.reuse = true }
}

// WithStreamHandler installs h for stream requests (Client.CallStream):
// instead of returning one response payload, h writes the response
// incrementally through a StreamWriter and the transport streams it to the
// caller in credit-gated chunks. Servers without the option reject stream
// requests with an error response.
func WithStreamHandler(h StreamHandler) ServerOption {
	return func(s *Server) { s.stream = h }
}

// WithStats attaches the transport metric bundle to the server's frame
// traffic (frames/bytes in and out, writev batch sizes).
func WithStats(st *Stats) ServerOption {
	return func(s *Server) {
		if st != nil {
			s.st = st
		}
	}
}

// NewServer creates a Server that dispatches to handler.
func NewServer(handler Handler, opts ...ServerOption) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		handler: handler,
		logf:    log.Printf,
		st:      noStats,
		conns:   make(map[net.Conn]struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve begins accepting connections on l. It returns immediately; use
// Close to stop. Serve may be called once per server.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.listener != nil {
		s.mu.Unlock()
		return errors.New("transport: Serve called twice")
	}
	s.listener = l
	s.mu.Unlock()

	workers := 4 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	s.tasks = make(chan dispatchTask)
	for i := 0; i < workers; i++ {
		s.workerWG.Add(1)
		go s.dispatchWorker()
	}
	s.wg.Add(1)
	go s.acceptLoop(l)
	return nil
}

// dispatchWorker processes requests until the task channel closes (after
// every connection loop has exited, so no task can be lost).
func (s *Server) dispatchWorker() {
	defer s.workerWG.Done()
	for t := range s.tasks {
		s.dispatch(t.fw, t.ct, t.kind, t.id, t.payload)
	}
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()

	fw := newFrameWriter(conn, s.st)
	ct := newCreditTable()
	asm := newAssembler()
	defer ct.fail(net.ErrClosed) // wake stream handlers blocked on credit
	for {
		kind, id, payload, err := readFrame(conn)
		if err != nil {
			var of *OversizedFrameError
			if errors.As(err, &of) {
				// The payload was drained; the connection is healthy. Fail
				// only the offending request — mirror the client read loop.
				if of.Kind == frameRequest || of.Kind == frameStreamReq {
					if werr := fw.write(frameRespErr, of.ID, []byte(of.Error())); werr != nil {
						s.logf("transport: server write error response: %v", werr)
					}
				}
				continue
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
				s.logf("transport: server read: %v", err)
			}
			return
		}
		s.st.FramesIn.Inc()
		s.st.BytesIn.Add(uint64(frameHeaderLen + len(payload)))
		switch kind {
		case frameRequest, frameOneWay, frameStreamReq:
			s.submit(dispatchTask{fw: fw, ct: ct, kind: kind, id: id, payload: payload})
		case frameCredit:
			if len(payload) == 4 {
				ct.grant(id, int(binary.BigEndian.Uint32(payload)))
			}
			PutBuffer(payload)
		case frameChunk:
			if err := s.handleChunk(fw, ct, asm, id, payload); err != nil {
				s.logf("transport: server read: %v", err)
				return
			}
		default:
			s.logf("transport: server ignoring frame kind %d", kind)
		}
	}
}

// submit hands one request to an idle dispatch worker, or a fresh goroutine
// when every worker is busy, so slow handlers never delay concurrent
// requests.
func (s *Server) submit(t dispatchTask) {
	select {
	case s.tasks <- t:
	default:
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			s.dispatch(t.fw, t.ct, t.kind, t.id, t.payload)
		}()
	}
}

// handleChunk folds one inbound chunk of an oversized request into the
// connection's assembler, granting credit as it consumes; a completed
// message dispatches under its inner kind. A returned error is a protocol
// violation and connection-fatal.
func (s *Server) handleChunk(fw *frameWriter, ct *creditTable, asm *assembler, id uint64, payload []byte) error {
	cv, err := parseChunk(payload)
	if err != nil {
		PutBuffer(payload)
		return err
	}
	s.st.ChunksIn.Inc()
	s.st.StreamBytesIn.Add(uint64(len(cv.data)))
	inner, msg, done, aerr := asm.add(id, cv)
	n := len(cv.data)
	PutBuffer(payload)
	if aerr != nil {
		return aerr
	}
	if !done {
		if n > 0 {
			_ = writeCredit(fw, id, n)
		}
		return nil
	}
	switch inner {
	case frameRequest, frameOneWay, frameStreamReq:
		s.submit(dispatchTask{fw: fw, ct: ct, kind: inner, id: id, payload: msg})
		return nil
	default:
		PutBuffer(msg)
		return fmt.Errorf("transport: chunked message %d has request-invalid kind %d", id, inner)
	}
}

func (s *Server) dispatch(fw *frameWriter, ct *creditTable, kind byte, id uint64, payload []byte) {
	if kind == frameStreamReq {
		s.dispatchStream(fw, ct, id, payload)
		return
	}
	resp, err := s.handler(s.ctx, payload)
	if s.reuse {
		PutBuffer(payload)
	}
	if kind == frameOneWay {
		return
	}
	if err != nil {
		if werr := fw.write(frameRespErr, id, []byte(err.Error())); werr != nil {
			s.logf("transport: server write error response: %v", werr)
		}
		return
	}
	// Responses larger than one frame chunk transparently (credit-gated),
	// lifting the response-size ceiling for ordinary calls.
	werr := sendMessage(s.ctx, fw, ct, s.st, frameRespOK, id, resp)
	if s.reuse {
		PutBuffer(resp)
	}
	if werr != nil {
		s.logf("transport: server write response: %v", werr)
	}
}

// dispatchStream runs the stream handler for one frameStreamReq, delivering
// its incremental writes as a chunk stream and its final status as the
// stream's terminator.
func (s *Server) dispatchStream(fw *frameWriter, ct *creditTable, id uint64, payload []byte) {
	if s.stream == nil {
		if s.reuse {
			PutBuffer(payload)
		}
		if werr := fw.write(frameRespErr, id, []byte("transport: server has no stream handler")); werr != nil {
			s.logf("transport: server write error response: %v", werr)
		}
		return
	}
	s.st.StreamsOpen.Add(1)
	w := newStreamWriter(s.ctx, fw, ct, s.st, id)
	herr := s.stream(s.ctx, payload, w)
	if s.reuse {
		PutBuffer(payload)
	}
	w.finish(herr)
	s.st.StreamsOpen.Add(-1)
}

// Close stops accepting, closes all connections, and waits for in-flight
// handlers to drain. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		s.workerWG.Wait()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	if l != nil {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	// Connection loops first (they are the only task producers), then the
	// workers: closing tasks after the last producer exits cannot race.
	s.wg.Wait()
	if s.tasks != nil {
		close(s.tasks)
	}
	s.workerWG.Wait()
	return nil
}
