package bench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/codegen/fstest"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// Config parameterizes a figure run.
type Config struct {
	// Profile is the simulated link (possibly scaled; see netsim.Profile).
	Profile netsim.Profile
	// Warmup and Reps control the measurement loop per x-position.
	Warmup, Reps int
	// ServerOpts configure the serving peer (used by ablations).
	ServerOpts []rmi.Option
}

// Variant is one measured implementation of a workload at a given x
// (typically "RMI" vs "BRMI").
type Variant struct {
	Name string
	Op   func() error
}

// Setup builds the variants of one workload at parameter x inside env.
type Setup func(env *Env, x int) ([]Variant, error)

// runFigure measures each variant at each x-position, building the table.
// The environment is fresh per x so auto-export and DGC state cannot leak
// across points.
func runFigure(cfg Config, fig, title, xlabel string, xs []int, setup Setup) (*Table, error) {
	table := &Table{Fig: fig, Title: title, XLabel: xlabel, Profile: cfg.Profile.Name}
	for _, x := range xs {
		env, err := NewEnv(cfg.Profile, WithServerOptions(cfg.ServerOpts...))
		if err != nil {
			return nil, err
		}
		variants, err := setup(env, x)
		if err != nil {
			env.Close()
			return nil, err
		}
		if table.Columns == nil {
			for _, v := range variants {
				table.Columns = append(table.Columns, v.Name)
			}
		}
		row := Row{X: x}
		for _, v := range variants {
			// One uncounted run to measure round trips.
			before := env.Client.CallCount()
			if err := v.Op(); err != nil {
				env.Close()
				return nil, fmt.Errorf("%s x=%d %s: %w", fig, x, v.Name, err)
			}
			calls := env.Client.CallCount() - before
			stats, err := Measure(cfg.Warmup, cfg.Reps, v.Op)
			if err != nil {
				env.Close()
				return nil, fmt.Errorf("%s x=%d %s: %w", fig, x, v.Name, err)
			}
			row.Cells = append(row.Cells, Cell{S: stats, Calls: calls})
		}
		table.Rows = append(table.Rows, row)
		env.Close()
	}
	return table, nil
}

// --- Figures 5-6: no-op -------------------------------------------------------

// NoopSetup builds the no-op workload: n do-nothing calls, RMI one round
// trip each vs BRMI a single batch (§5.3).
func NoopSetup(env *Env, n int) ([]Variant, error) {
	ref, err := env.Export(&NoopService{}, "bench.Noop")
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	rmiOp := func() error {
		for i := 0; i < n; i++ {
			if _, err := env.Client.Call(ctx, ref, "Noop"); err != nil {
				return err
			}
		}
		return nil
	}
	brmiOp := func() error {
		b := core.New(env.Client, ref)
		root := b.Root()
		futures := make([]*core.Future, n)
		for i := 0; i < n; i++ {
			futures[i] = root.Call("Noop")
		}
		if err := b.Flush(ctx); err != nil {
			return err
		}
		for _, f := range futures {
			if err := f.Err(); err != nil {
				return err
			}
		}
		return nil
	}
	return []Variant{{"RMI", rmiOp}, {"BRMI", brmiOp}}, nil
}

// RunNoop reproduces Figures 5 (LAN) / 6 (wireless).
func RunNoop(cfg Config, calls []int) (*Table, error) {
	return runFigure(cfg, figName(cfg, 5, 6), "No-op", "method calls", calls, NoopSetup)
}

// --- Figures 7-9: linked list traversal ----------------------------------------

// ListSetup builds the linked-list traversal workload: follow n Next
// references then read the value. The RMI version marshals a remote object
// per step; BRMI keeps the chain server-side (§5.3).
func ListSetup(env *Env, n int) ([]Variant, error) {
	ref, err := env.Export(BuildList(n+2), "bench.ListNode")
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	rmiOp := func() error { return rmiTraverse(ctx, env.Client, ref, n) }
	brmiOp := func() error {
		b := core.New(env.Client, ref)
		cur := b.Root()
		for i := 0; i < n; i++ {
			cur = cur.CallBatch("Next")
		}
		v := cur.Call("GetValue")
		if err := b.Flush(ctx); err != nil {
			return err
		}
		return expectValue(v, n)
	}
	return []Variant{{"RMI", rmiOp}, {"BRMI", brmiOp}}, nil
}

// ListNoBatchSetup is the Figure 9 variant: BRMI flushes after every call
// (batches of size one). Both sides pay one round trip per step; BRMI still
// wins because replies carry sequence numbers instead of marshalled remote
// objects (§5.3).
func ListNoBatchSetup(env *Env, n int) ([]Variant, error) {
	ref, err := env.Export(BuildList(n+2), "bench.ListNode")
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	rmiOp := func() error { return rmiTraverse(ctx, env.Client, ref, n) }
	brmiOp := func() error {
		b := core.New(env.Client, ref)
		cur := b.Root()
		for i := 0; i < n; i++ {
			cur = cur.CallBatch("Next")
			if err := b.FlushAndContinue(ctx); err != nil {
				return err
			}
		}
		v := cur.Call("GetValue")
		if err := b.Flush(ctx); err != nil {
			return err
		}
		return expectValue(v, n)
	}
	return []Variant{{"RMI", rmiOp}, {"BRMI", brmiOp}}, nil
}

func expectValue(f *core.Future, want int) error {
	got, err := core.Typed[int](f).Get()
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("traversed to %d, want %d", got, want)
	}
	return nil
}

func rmiTraverse(ctx context.Context, client *rmi.Peer, ref wire.Ref, n int) error {
	cur := ref
	for i := 0; i < n; i++ {
		res, err := client.Call(ctx, cur, "Next")
		if err != nil {
			return err
		}
		holder, ok := res[0].(rmi.RefHolder)
		if !ok {
			return fmt.Errorf("Next returned %T", res[0])
		}
		cur = holder.Ref()
	}
	res, err := client.Call(ctx, cur, "GetValue")
	if err != nil {
		return err
	}
	if got := res[0].(int64); got != int64(n) {
		return fmt.Errorf("traversed to %d, want %d", got, n)
	}
	return nil
}

// RunList reproduces Figures 7 (LAN) / 8 (wireless).
func RunList(cfg Config, lengths []int) (*Table, error) {
	return runFigure(cfg, figName(cfg, 7, 8), "Linked list traversal", "traversals", lengths, ListSetup)
}

// RunListNoBatch reproduces Figure 9.
func RunListNoBatch(cfg Config, lengths []int) (*Table, error) {
	return runFigure(cfg, "Fig. 9", "Linked list traversal, batches of size 1", "traversals", lengths, ListNoBatchSetup)
}

// --- Figures 10-11: remote simulation ------------------------------------------

// SimulationReps is how many balance calls each simulation step performs.
// The paper does not publish its value; 2 makes the loopback-vs-local
// difference clearly visible at every step count.
const SimulationReps = 2

// SimulationSetup builds the remote-simulation workload: flush after every
// PerformSimulationStep (batch of one), so the entire BRMI advantage comes
// from preserved reference identity (§4.4).
func SimulationSetup(env *Env, n int) ([]Variant, error) {
	sim := &Simulation{}
	ref, err := env.Export(sim, "bench.Simulation")
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	rmiOp := func() error {
		res, err := env.Client.Call(ctx, ref, "CreateBalancer")
		if err != nil {
			return err
		}
		bal := res[0].(rmi.RefHolder)
		for i := 0; i < n; i++ {
			if _, err := env.Client.Call(ctx, ref, "PerformSimulationStep", SimulationReps, bal); err != nil {
				return err
			}
		}
		_, err = env.Client.Call(ctx, ref, "GetSimulationResults")
		return err
	}
	brmiOp := func() error {
		b := core.New(env.Client, ref)
		root := b.Root()
		bal := root.CallBatch("CreateBalancer")
		if err := b.FlushAndContinue(ctx); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			root.Call("PerformSimulationStep", SimulationReps, bal)
			if err := b.FlushAndContinue(ctx); err != nil {
				return err
			}
		}
		res := root.Call("GetSimulationResults")
		if err := b.Flush(ctx); err != nil {
			return err
		}
		return res.Err()
	}
	return []Variant{{"RMI", rmiOp}, {"BRMI", brmiOp}}, nil
}

// RunSimulation reproduces Figures 10 (LAN) / 11 (wireless).
func RunSimulation(cfg Config, steps []int) (*Table, error) {
	return runFigure(cfg, figName(cfg, 10, 11), "Remote simulation", "simulation steps", steps, SimulationSetup)
}

// --- Figures 12-13: remote file server ------------------------------------------

// FileServerTotalBytes is the macro benchmark's constant payload: the
// paper's 100 KB split over the requested files.
const FileServerTotalBytes = 100 << 10

// FileServerSetup builds the macro benchmark: request and transfer n files
// (name, isDirectory, lastModified, length, contents) totalling 100 KB.
// RMI pays 1+5n round trips; BRMI one batch with a cursor (§5.1, §5.4).
func FileServerSetup(env *Env, n int) ([]Variant, error) {
	fs := NewFileServer(n, FileServerTotalBytes)
	ref, err := env.Export(fs, "bench.FileServer")
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	rmiOp := func() error {
		res, err := env.Client.Call(ctx, ref, "ListFiles")
		if err != nil {
			return err
		}
		files, ok := res[0].([]any)
		if !ok {
			return fmt.Errorf("ListFiles returned %T", res[0])
		}
		for _, f := range files {
			stub := f.(rmi.Invoker)
			for _, m := range [...]string{"GetName", "IsDirectory", "LastModified", "Length", "Contents"} {
				if _, err := stub.Invoke(ctx, m); err != nil {
					return err
				}
			}
		}
		return nil
	}
	brmiOp := func() error {
		b := core.New(env.Client, ref)
		cursor := b.Root().CallCursor("ListFiles")
		name := cursor.Call("GetName")
		isDir := cursor.Call("IsDirectory")
		modified := cursor.Call("LastModified")
		length := cursor.Call("Length")
		contents := cursor.Call("Contents")
		if err := b.Flush(ctx); err != nil {
			return err
		}
		for cursor.Next() {
			for _, f := range [...]*core.Future{name, isDir, modified, length, contents} {
				if _, err := f.Get(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return []Variant{{"RMI", rmiOp}, {"BRMI", brmiOp}}, nil
}

// RunFileServer reproduces Figures 12 (LAN) / 13 (wireless).
func RunFileServer(cfg Config, counts []int) (*Table, error) {
	return runFigure(cfg, figName(cfg, 12, 13), "Remote file server", "files", counts, FileServerSetup)
}

// --- Ablations (ours, motivated by DESIGN.md) -----------------------------------

// RunAblationIdentity compares three substrate configurations on the
// simulation workload: faithful RMI (loopback stubs), RMI with the
// local-shortcut resolution Java chose not to implement, and BRMI identity
// preservation (design decision 2 in DESIGN.md).
func RunAblationIdentity(cfg Config, steps []int) (*Table, error) {
	base, err := RunSimulation(cfg, steps)
	if err != nil {
		return nil, err
	}
	shortcutCfg := cfg
	shortcutCfg.ServerOpts = append([]rmi.Option{rmi.WithLocalShortcut()}, cfg.ServerOpts...)
	shortcut, err := RunSimulation(shortcutCfg, steps)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Fig:     "Ablation A1",
		Title:   "Reference identity: loopback vs local-shortcut vs BRMI",
		XLabel:  "simulation steps",
		Profile: cfg.Profile.Name,
		Columns: []string{"RMI", "RMI+shortcut", "BRMI"},
	}
	for i, row := range base.Rows {
		table.Rows = append(table.Rows, Row{
			X:     row.X,
			Cells: []Cell{row.Cells[0], shortcut.Rows[i].Cells[0], row.Cells[1]},
		})
	}
	return table, nil
}

// StubsSetup compares recording overhead of the dynamic Proxy API against
// generated typed batch interfaces (design decision 1 in DESIGN.md): both
// record the same calls; the typed layer should add only wrapper cost. Run
// on the instant profile so recording dominates.
func StubsSetup(env *Env, n int) ([]Variant, error) {
	fs := NewFileServer(1, 1024)
	ref, err := env.Export(fs.files[0], fstest.FileIfaceName)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	dynamic := func() error {
		b := core.New(env.Client, ref)
		root := b.Root()
		futures := make([]*core.Future, n)
		for i := 0; i < n; i++ {
			futures[i] = root.Call("GetName")
		}
		if err := b.Flush(ctx); err != nil {
			return err
		}
		return futures[n-1].Err()
	}
	typed := func() error {
		bf, b := fstest.NewBatchFile(env.Client, ref)
		futures := make([]core.TypedFuture[string], n)
		for i := 0; i < n; i++ {
			futures[i] = bf.GetName()
		}
		if err := b.Flush(ctx); err != nil {
			return err
		}
		_, err := futures[n-1].Get()
		return err
	}
	return []Variant{{"dynamic", dynamic}, {"generated", typed}}, nil
}

// RunAblationStubs runs StubsSetup over call counts.
func RunAblationStubs(cfg Config, callCounts []int) (*Table, error) {
	return runFigure(cfg, "Ablation A2", "Recording overhead: dynamic vs generated stubs",
		"recorded calls", callCounts, StubsSetup)
}

// BatchSizeSetup sweeps flush granularity for a fixed number of no-op
// calls, quantifying how batch size amortizes the round trip (generalizes
// Figure 9). x is the batch size.
func BatchSizeSetup(totalCalls int) Setup {
	return func(env *Env, k int) ([]Variant, error) {
		ref, err := env.Export(&NoopService{}, "bench.Noop")
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		op := func() error {
			//brmivet:ignore unflushed the last iteration flushes; the zero-call fall-through has nothing pending
			b := core.New(env.Client, ref)
			root := b.Root()
			pending := 0
			for i := 0; i < totalCalls; i++ {
				root.Call("Noop")
				pending++
				last := i == totalCalls-1
				switch {
				case last:
					return b.Flush(ctx)
				case pending == k:
					if err := b.FlushAndContinue(ctx); err != nil {
						return err
					}
					pending = 0
				}
			}
			return nil
		}
		return []Variant{{"BRMI", op}}, nil
	}
}

// RunAblationBatchSize runs BatchSizeSetup over batch sizes.
func RunAblationBatchSize(cfg Config, totalCalls int, batchSizes []int) (*Table, error) {
	return runFigure(cfg, "Ablation A3",
		fmt.Sprintf("Flush granularity (%d no-op calls total)", totalCalls),
		"batch size", batchSizes, BatchSizeSetup(totalCalls))
}

// figName picks the LAN or wireless figure number from the profile name
// (scaled profiles keep the base name as a prefix, e.g. "wireless/14").
func figName(cfg Config, lanFig, wirelessFig int) string {
	if strings.HasPrefix(cfg.Profile.Name, netsim.Wireless.Name) {
		return fmt.Sprintf("Fig. %d", wirelessFig)
	}
	return fmt.Sprintf("Fig. %d", lanFig)
}
