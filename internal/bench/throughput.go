package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// throughput.go measures the hot-path CPU cost of the stack: C concurrent
// client goroutines hammering a sharded cluster with mixed-size flushes of a
// marshal-heavy Echo call. Unlike the latency figures, this workload runs on
// the instant network profile, so every millisecond measured is middleware
// work — codec, framing, dispatch, replay — not simulated wire time. It is
// the figure that makes per-call marshal/alloc overhead visible, the regime
// where batched-object systems win or lose once round trips are amortized.

// ThroughputServers is the cluster size of the throughput workload.
const ThroughputServers = 4

// FlushSizes is the cycle of batch sizes each client goroutine works
// through, mixing single-call flushes with large ones so both per-flush and
// per-call overheads are represented.
var FlushSizes = [...]int{1, 4, 16, 64}

// throughputPayloadBytes sizes Payload.Data.
const throughputPayloadBytes = 64

// ThroughputResult is one measured concurrency level.
type ThroughputResult struct {
	Concurrency int
	// CallsPerSec is recorded Echo calls completed per wall-clock second,
	// summed over all client goroutines.
	CallsPerSec float64
	// FlushStats summarizes per-flush latency (the unit a client observes).
	FlushStats Stats
	// AllocsPerCall is heap allocations per recorded call, client and
	// server processes combined (they share the Go heap in the simulated
	// deployment; the paper's stack splits identically on both sides).
	AllocsPerCall float64
}

// MeasureThroughput runs the workload at one concurrency level: conc
// goroutines, each bound round-robin to one of the environment's servers,
// executing flushes until the shared budget is exhausted.
func MeasureThroughput(env *ClusterEnv, conc, flushes int) (ThroughputResult, error) {
	if len(env.EchoRefs) == 0 {
		return ThroughputResult{}, fmt.Errorf("bench: environment has no echo services")
	}
	// Warm up: fill connection pools, type registries, and codec caches.
	if _, _, _, err := runThroughput(env, conc, flushes/4+conc); err != nil {
		return ThroughputResult{}, fmt.Errorf("warmup: %w", err)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	latencies, calls, _, err := runThroughput(env, conc, flushes)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return ThroughputResult{}, err
	}
	return ThroughputResult{
		Concurrency:   conc,
		CallsPerSec:   float64(calls) / wall.Seconds(),
		FlushStats:    summarize(latencies),
		AllocsPerCall: float64(after.Mallocs-before.Mallocs) / float64(calls),
	}, nil
}

// runThroughput executes `flushes` batch flushes spread over conc workers
// and returns the merged per-flush latencies and the total calls recorded.
func runThroughput(env *ClusterEnv, conc, flushes int) ([]time.Duration, int64, int64, error) {
	ctx := context.Background()
	var next atomic.Int64
	var totalCalls atomic.Int64
	perWorker := make([][]time.Duration, conc)
	errs := make([]error, conc)
	var wg sync.WaitGroup
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ref := env.EchoRefs[g%len(env.EchoRefs)]
			payload := Payload{
				ID:      int64(g),
				Name:    "throughput-object-with-a-realistic-name",
				Seq:     1,
				Data:    make([]byte, throughputPayloadBytes),
				Elapsed: time.Millisecond,
			}
			lat := perWorker[g][:0]
			for {
				n := next.Add(1)
				if n > int64(flushes) {
					break
				}
				size := FlushSizes[int(n)%len(FlushSizes)]
				startFlush := time.Now()
				b := core.New(env.Client, ref)
				root := b.Root()
				futures := make([]*core.Future, size)
				for i := 0; i < size; i++ {
					payload.Seq = uint64(i)
					futures[i] = root.Call("Echo", payload)
				}
				if err := b.Flush(ctx); err != nil {
					errs[g] = err
					return
				}
				if err := futures[size-1].Err(); err != nil {
					errs[g] = err
					return
				}
				lat = append(lat, time.Since(startFlush))
				totalCalls.Add(int64(size))
			}
			perWorker[g] = lat
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, 0, err
		}
	}
	var merged []time.Duration
	for _, lat := range perWorker {
		merged = append(merged, lat...)
	}
	return merged, totalCalls.Load(), int64(flushes), nil
}

// baselineThroughput is the frozen pre-optimization series: the same
// workload measured at the previous commit (PR 3 head, 9525846), before the
// compiled wire codecs, pooled buffers, coalesced framing, and parallel
// batch executor landed. Committing the numbers keeps the before/after
// comparison in BENCH_throughput.json honest and reproducible: the "PR3"
// column is this recording, the "PR4" column is measured live by benchfig.
// Absolute numbers belong to the CI-class container the trajectory is
// generated on; the before/after *ratio* is the tracked quantity.
var baselineThroughput = map[int]ThroughputResult{
	1: {Concurrency: 1, CallsPerSec: 193327, AllocsPerCall: 29.46,
		FlushStats: Stats{N: 1200, Mean: 109787, Std: 129399, Min: 22374, P50: 69361, P95: 308965, Max: 2844737}},
	4: {Concurrency: 4, CallsPerSec: 207170, AllocsPerCall: 29.46,
		FlushStats: Stats{N: 1200, Mean: 398148, Std: 5907161, Min: 22448, P50: 67405, P95: 295638, Max: 118462093}},
	16: {Concurrency: 16, CallsPerSec: 194915, AllocsPerCall: 29.46,
		FlushStats: Stats{N: 1200, Mean: 307768, Std: 4889099, Min: 24428, P50: 70783, P95: 294480, Max: 126804690}},
}

// RunThroughput produces the throughput figure over concurrency levels:
// column "PR3 (frozen)" is the committed pre-optimization recording (zeros
// when no recording exists for a concurrency level), column "PR4" is
// measured live.
func RunThroughput(cfg Config, concs []int, flushes int) (*Table, error) {
	table := &Table{
		Fig:     "Fig. T1",
		Title:   fmt.Sprintf("Hot-path throughput (%d servers, mixed flush sizes %v, %d flushes)", ThroughputServers, FlushSizes, flushes),
		XLabel:  "client goroutines",
		Profile: cfg.Profile.Name,
		Columns: []string{"PR3 (frozen)", "PR4"},
	}
	for _, conc := range concs {
		env, err := NewClusterEnv(cfg.Profile, ThroughputServers)
		if err != nil {
			return nil, err
		}
		res, err := MeasureThroughput(env, conc, flushes)
		env.Close()
		if err != nil {
			return nil, fmt.Errorf("throughput conc=%d: %w", conc, err)
		}
		base := baselineThroughput[conc]
		table.Rows = append(table.Rows, Row{
			X: conc,
			Cells: []Cell{
				{S: base.FlushStats, Calls: 1, OpsPerSec: base.CallsPerSec, AllocsPerOp: base.AllocsPerCall},
				{S: res.FlushStats, Calls: 1, OpsPerSec: res.CallsPerSec, AllocsPerOp: res.AllocsPerCall},
			},
		})
	}
	return table, nil
}
