package bench

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// StageService is the pipeline workload's per-server operator: Step
// transforms a value, one hop of a cross-server dataflow chain.
type StageService struct {
	rmi.RemoteBase
}

// Step applies this server's transformation to x.
func (s *StageService) Step(x int64) int64 { return x + 1 }

// stageRefs exports one StageService per server of the environment.
func stageRefs(env *ClusterEnv) ([]wire.Ref, error) {
	refs := make([]wire.Ref, len(env.Servers))
	for i, srv := range env.Servers {
		ref, err := srv.Export(&StageService{}, "bench.Stage")
		if err != nil {
			return nil, err
		}
		refs[i] = ref
	}
	return refs, nil
}

// PipelineVariants builds the three implementations of the staged dataflow
// workload: `chains` independent value chains, each depth+1 hops long, hop
// s of chain c executing on server (c+s) mod K — so every hop after the
// first consumes a result produced on a DIFFERENT server.
//
//   - "RMI" issues every hop as its own round trip, feeding each result
//     into the next call by hand: chains*(depth+1) sequential trips.
//   - "BRMI-2phase" is the best a programmer can do with single-server
//     batches alone: one core.Batch per server per hop level, flushed
//     sequentially, values carried forward between levels by hand —
//     K*(depth+1) sequential trips.
//   - "BRMI-staged" records the whole dataflow in one cluster.Batch
//     (futures spliced between waves) and flushes once: the planner
//     schedules depth+1 stages, each a parallel fan-out, so wall-clock cost
//     is depth+1 round-trip WAVES, not O(calls).
func PipelineVariants(env *ClusterEnv, refs []wire.Ref, chains, depth int) []Variant {
	ctx := context.Background()
	k := len(refs)
	want := func(c int) int64 { return int64(c + depth + 1) }

	rmiOp := func() error {
		for c := 0; c < chains; c++ {
			v := int64(c)
			for s := 0; s <= depth; s++ {
				res, err := env.Client.Call(ctx, refs[(c+s)%k], "Step", v)
				if err != nil {
					return err
				}
				v = res[0].(int64)
			}
			if v != want(c) {
				return fmt.Errorf("chain %d ended at %d, want %d", c, v, want(c))
			}
		}
		return nil
	}

	twoPhaseOp := func() error {
		vals := make([]int64, chains)
		for c := range vals {
			vals[c] = int64(c)
		}
		for s := 0; s <= depth; s++ {
			type level struct {
				b      *core.Batch
				chains []int
				futs   []core.TypedFuture[int64]
			}
			byServer := make(map[int]*level)
			var order []int
			for c := 0; c < chains; c++ {
				srv := (c + s) % k
				lv, ok := byServer[srv]
				if !ok {
					lv = &level{b: core.New(env.Client, refs[srv])}
					byServer[srv] = lv
					order = append(order, srv)
				}
				lv.chains = append(lv.chains, c)
				lv.futs = append(lv.futs, core.Typed[int64](lv.b.Root().Call("Step", vals[c])))
			}
			for _, srv := range order {
				lv := byServer[srv]
				if err := lv.b.Flush(ctx); err != nil {
					return err
				}
				for i, c := range lv.chains {
					v, err := lv.futs[i].Get()
					if err != nil {
						return err
					}
					vals[c] = v
				}
			}
		}
		for c, v := range vals {
			if v != want(c) {
				return fmt.Errorf("chain %d ended at %d, want %d", c, v, want(c))
			}
		}
		return nil
	}

	stagedOp := func() error {
		b := cluster.New(env.Client)
		futs := make([]cluster.TypedFuture[int64], chains)
		for c := 0; c < chains; c++ {
			f := b.Root(refs[c%k]).Call("Step", int64(c))
			for s := 1; s <= depth; s++ {
				f = b.Root(refs[(c+s)%k]).Call("Step", f)
			}
			futs[c] = cluster.Typed[int64](f)
		}
		if err := b.Flush(ctx); err != nil {
			return err
		}
		if w := b.Waves(); w != depth+1 {
			return fmt.Errorf("depth-%d pipeline flushed in %d waves, want %d", depth, w, depth+1)
		}
		for c := range futs {
			v, err := futs[c].Get()
			if err != nil {
				return err
			}
			if v != want(c) {
				return fmt.Errorf("chain %d ended at %d, want %d", c, v, want(c))
			}
		}
		return nil
	}

	return []Variant{
		{"RMI", rmiOp},
		{"BRMI-2phase", twoPhaseOp},
		{"BRMI-staged", stagedOp},
	}
}

// RunPipeline measures the pipeline workload over dependency depths with a
// fixed cluster size and chain count: the x-axis isolates how each strategy
// pays for dataflow depth. RMI and the manual two-phase approach pay
// sequential trips per level; the staged cluster flush pays depth+1
// parallel waves, so its curve grows with depth but stays a cluster-size
// factor below the others.
func RunPipeline(cfg Config, k, chains int, depths []int) (*Table, error) {
	table := &Table{
		Fig:     "Fig. C2",
		Title:   fmt.Sprintf("Cross-server pipeline (%d chains over %d servers)", chains, k),
		XLabel:  "pipeline depth",
		Profile: cfg.Profile.Name,
	}
	for _, d := range depths {
		env, err := NewClusterEnv(cfg.Profile, k)
		if err != nil {
			return nil, err
		}
		refs, err := stageRefs(env)
		if err != nil {
			env.Close()
			return nil, err
		}
		variants := PipelineVariants(env, refs, chains, d)
		if table.Columns == nil {
			for _, v := range variants {
				table.Columns = append(table.Columns, v.Name)
			}
		}
		row := Row{X: d}
		for _, v := range variants {
			before := env.Client.CallCount()
			if err := v.Op(); err != nil {
				env.Close()
				return nil, fmt.Errorf("pipeline depth=%d %s: %w", d, v.Name, err)
			}
			calls := env.Client.CallCount() - before
			stats, err := Measure(cfg.Warmup, cfg.Reps, v.Op)
			if err != nil {
				env.Close()
				return nil, fmt.Errorf("pipeline depth=%d %s: %w", d, v.Name, err)
			}
			row.Cells = append(row.Cells, Cell{S: stats, Calls: calls})
		}
		table.Rows = append(table.Rows, row)
		env.Close()
	}
	return table, nil
}
