package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// Env is one client/server pair on a simulated network, ready to run a
// workload.
type Env struct {
	Network *netsim.Network
	Server  *rmi.Peer
	Client  *rmi.Peer
	Exec    *core.Executor

	cleanup []func()
}

// EnvOption configures environment construction.
type EnvOption func(*envConfig)

type envConfig struct {
	serverOpts []rmi.Option
}

// WithServerOptions adds rmi.Peer options to the server (e.g.
// rmi.WithLocalShortcut for the identity ablation).
func WithServerOptions(opts ...rmi.Option) EnvOption {
	return func(c *envConfig) { c.serverOpts = append(c.serverOpts, opts...) }
}

func silentLogf(string, ...any) {}

// NewEnv builds a serving peer with the BRMI executor installed, plus a
// client peer, on a network with the given profile.
func NewEnv(profile netsim.Profile, opts ...EnvOption) (*Env, error) {
	var cfg envConfig
	for _, o := range opts {
		o(&cfg)
	}
	network := netsim.New(profile)
	serverOpts := append([]rmi.Option{rmi.WithLogf(silentLogf)}, cfg.serverOpts...)
	server := rmi.NewPeer(network, serverOpts...)
	env := &Env{Network: network, Server: server}
	env.cleanup = append(env.cleanup, func() { _ = network.Close() })
	if err := server.Serve("server"); err != nil {
		env.Close()
		return nil, err
	}
	env.cleanup = append(env.cleanup, func() { _ = server.Close() })
	exec, err := core.Install(server)
	if err != nil {
		env.Close()
		return nil, err
	}
	env.Exec = exec
	env.cleanup = append(env.cleanup, exec.Stop)
	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	env.Client = client
	env.cleanup = append(env.cleanup, func() { _ = client.Close() })
	return env, nil
}

// Export exports obj on the server.
func (e *Env) Export(obj rmi.Remote, iface string) (wire.Ref, error) {
	return e.Server.Export(obj, iface)
}

// Close tears the environment down.
func (e *Env) Close() {
	for i := len(e.cleanup) - 1; i >= 0; i-- {
		e.cleanup[i]()
	}
	e.cleanup = nil
}

// Stats summarizes repeated measurements.
type Stats struct {
	N                  int
	Mean, Std          time.Duration
	Min, P50, P95, Max time.Duration
}

// Millis returns the mean in milliseconds (the paper's unit).
func (s Stats) Millis() float64 { return float64(s.Mean) / float64(time.Millisecond) }

// Measure runs op reps times after warmup warm-up runs and summarizes the
// durations. The paper repeated its benchmarks 5000-10000 times on real
// hardware; on the simulated network the per-run noise is far smaller, so
// small rep counts already converge.
func Measure(warmup, reps int, op func() error) (Stats, error) {
	for i := 0; i < warmup; i++ {
		if err := op(); err != nil {
			return Stats{}, fmt.Errorf("warmup: %w", err)
		}
	}
	durations := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := op(); err != nil {
			return Stats{}, fmt.Errorf("rep %d: %w", i, err)
		}
		durations = append(durations, time.Since(start))
	}
	return summarize(durations), nil
}

func summarize(ds []time.Duration) Stats {
	if len(ds) == 0 {
		return Stats{}
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	mean := sum / time.Duration(len(sorted))
	var varSum float64
	for _, d := range sorted {
		diff := float64(d - mean)
		varSum += diff * diff
	}
	std := time.Duration(math.Sqrt(varSum / float64(len(sorted))))
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	return Stats{
		N:    len(sorted),
		Mean: mean,
		Std:  std,
		Min:  sorted[0],
		P50:  pct(0.50),
		P95:  pct(0.95),
		Max:  sorted[len(sorted)-1],
	}
}

// Cell is one measured variant at one x-position.
type Cell struct {
	S     Stats
	Calls uint64 // network round trips per operation
	// OpsPerSec and AllocsPerOp are set by throughput-style figures only
	// (zero elsewhere): sustained recorded calls per second across all
	// client goroutines, and heap allocations per recorded call.
	OpsPerSec   float64
	AllocsPerOp float64
}

// Row is one x-position of a figure.
type Row struct {
	X     int
	Cells []Cell // parallel to Table.Columns
}

// Table is one reproduced figure (or ablation): a named series per column.
type Table struct {
	Fig     string // "Fig. 5"
	Title   string
	XLabel  string
	Profile string
	Columns []string // e.g. {"RMI", "BRMI"}
	Rows    []Row
}
