package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
)

// fastProfile keeps shape tests quick while still separating the curves:
// 4 ms RTT dominates the sub-millisecond processing cost.
var fastProfile = netsim.Profile{Name: "lan-test", RTT: 4 * time.Millisecond, BitsPerSecond: 1e9}

func fastCfg() Config {
	return Config{Profile: fastProfile, Warmup: 1, Reps: 3}
}

// assertRoundTrips checks the round-trip counts of one row.
func assertRoundTrips(t *testing.T, table *Table, x int, want []uint64) {
	t.Helper()
	for _, row := range table.Rows {
		if row.X != x {
			continue
		}
		for i, w := range want {
			if got := row.Cells[i].Calls; got != w {
				t.Errorf("%s x=%d %s: %d round trips, want %d",
					table.Fig, x, table.Columns[i], got, w)
			}
		}
		return
	}
	t.Fatalf("no row x=%d", x)
}

func TestNoopShape(t *testing.T) {
	table, err := RunNoop(fastCfg(), []int{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	// Round trips: RMI n, BRMI 1 — the mechanism behind Figures 5-6.
	assertRoundTrips(t, table, 1, []uint64{1, 1})
	assertRoundTrips(t, table, 5, []uint64{5, 1})
	// Shape: at n=5 RMI must be well above BRMI (paper: ~n× vs flat).
	speedup, err := table.SpeedupAt(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if speedup < 2 {
		t.Errorf("RMI/BRMI at n=5 = %.2fx, want >= 2x", speedup)
	}
	// BRMI stays near-flat from n=1 to n=5.
	brmi1 := table.Rows[0].Cells[1].S.Millis()
	brmi5 := table.Rows[1].Cells[1].S.Millis()
	if brmi5 > brmi1*2.5 {
		t.Errorf("BRMI grew %.2fx from n=1 to n=5, want near-flat", brmi5/brmi1)
	}
}

func TestListShape(t *testing.T) {
	table, err := RunList(fastCfg(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// RMI: n Next calls + 1 GetValue; BRMI: one batch.
	assertRoundTrips(t, table, 4, []uint64{5, 1})
	speedup, err := table.SpeedupAt(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if speedup < 2 {
		t.Errorf("RMI/BRMI at n=4 = %.2fx, want >= 2x", speedup)
	}
}

func TestListNoBatchShape(t *testing.T) {
	table, err := RunListNoBatch(fastCfg(), []int{3})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 9: same number of round trips on both sides...
	assertRoundTrips(t, table, 3, []uint64{4, 4})
	// ...and the paper's surprise was only that BRMI is not slower despite
	// the batching machinery: it avoids remote-object marshalling per step.
	rmi := tableCell(t, table, 3, 0).S.Millis()
	brmi := tableCell(t, table, 3, 1).S.Millis()
	if brmi > rmi*1.6 {
		t.Errorf("batch-of-1 BRMI %.2fms much slower than RMI %.2fms", brmi, rmi)
	}
}

func TestSimulationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow shape test; skipped in -short")
	}
	table, err := RunSimulation(fastCfg(), []int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	// Same round trips both sides (flush per step): 1 create + n steps + 1
	// result fetch (+1 initial flush for BRMI's create batch).
	row := tableCell(t, table, 6, 0)
	if row.Calls != 8 {
		t.Errorf("RMI round trips = %d, want 8", row.Calls)
	}
	// RMI pays 2 extra loopback calls per step; BRMI must be faster.
	speedup, err := table.SpeedupAt(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if speedup < 1.5 {
		t.Errorf("RMI/BRMI at 6 steps = %.2fx, want >= 1.5x (loopback penalty)", speedup)
	}
}

func TestFileServerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow shape test; skipped in -short")
	}
	table, err := RunFileServer(fastCfg(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// RMI: 1 list + 5 calls per file; BRMI: one batch.
	assertRoundTrips(t, table, 4, []uint64{21, 1})
	speedup, err := table.SpeedupAt(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if speedup < 3 {
		t.Errorf("RMI/BRMI at 4 files = %.2fx, want >= 3x", speedup)
	}
}

func TestAblationIdentityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow shape test; skipped in -short")
	}
	table, err := RunAblationIdentity(fastCfg(), []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Columns) != 3 {
		t.Fatalf("columns = %v", table.Columns)
	}
	rmi := tableCell(t, table, 4, 0).S.Millis()
	shortcut := tableCell(t, table, 4, 1).S.Millis()
	brmi := tableCell(t, table, 4, 2).S.Millis()
	// The shortcut removes the loopback penalty, landing near BRMI and
	// well under faithful RMI.
	if shortcut >= rmi {
		t.Errorf("shortcut %.2fms not faster than faithful RMI %.2fms", shortcut, rmi)
	}
	if brmi >= rmi {
		t.Errorf("BRMI %.2fms not faster than RMI %.2fms", brmi, rmi)
	}
}

func TestAblationStubsShape(t *testing.T) {
	table, err := RunAblationStubs(Config{Profile: netsim.Instant, Warmup: 2, Reps: 5}, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	dyn := tableCell(t, table, 64, 0).S.Millis()
	gen := tableCell(t, table, 64, 1).S.Millis()
	// Generated stubs are thin wrappers; they must not multiply cost.
	if gen > dyn*3 {
		t.Errorf("generated stubs %.3fms vs dynamic %.3fms: wrapper overhead too large", gen, dyn)
	}
}

func TestAblationBatchSize(t *testing.T) {
	table, err := RunAblationBatchSize(fastCfg(), 8, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Batch size 1 → 8 round trips; size 8 → 1 round trip, and much faster.
	assertRoundTrips(t, table, 1, []uint64{8})
	assertRoundTrips(t, table, 8, []uint64{1})
	k1 := tableCell(t, table, 1, 0).S.Millis()
	k8 := tableCell(t, table, 8, 0).S.Millis()
	if k8 >= k1 {
		t.Errorf("full batch %.2fms not faster than per-call flush %.2fms", k8, k1)
	}
}

// TestFanoutShape is the acceptance check of the cluster subsystem: on the
// WAN profile with K=4 servers and 64 calls per batch, the parallel cluster
// flush must complete in roughly max-of-servers rather than sum-of-servers
// time — at least 2x faster than flushing the 4 per-server batches
// sequentially, and far ahead of unbatched RMI.
func TestFanoutShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow shape test; skipped in -short")
	}
	cfg := Config{Profile: netsim.WAN.Scaled(10), Warmup: 1, Reps: 3}
	table, err := RunFanout(cfg, 64, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	// Round trips: RMI one per call; both batched variants one per server.
	assertRoundTrips(t, table, 4, []uint64{64, 4, 4})
	rmiMs := tableCell(t, table, 4, 0).S.Millis()
	seqMs := tableCell(t, table, 4, 1).S.Millis()
	cluMs := tableCell(t, table, 4, 2).S.Millis()
	if cluMs <= 0 {
		t.Fatal("cluster variant measured zero time")
	}
	if seqMs/cluMs < 2 {
		t.Errorf("cluster flush %.2fms vs sequential %.2fms: %.2fx, want >= 2x",
			cluMs, seqMs, seqMs/cluMs)
	}
	if rmiMs/cluMs < 4 {
		t.Errorf("cluster flush %.2fms vs RMI %.2fms: %.2fx, want >= 4x",
			cluMs, rmiMs, rmiMs/cluMs)
	}
}

func TestFanoutSingleServer(t *testing.T) {
	// K=1 degenerate case: all three variants still work; both batched
	// variants take exactly one round trip.
	cfg := Config{Profile: netsim.Instant, Warmup: 0, Reps: 1}
	table, err := RunFanout(cfg, 8, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	assertRoundTrips(t, table, 1, []uint64{8, 1, 1})
}

func tableCell(t *testing.T, table *Table, x, col int) Cell {
	t.Helper()
	for _, row := range table.Rows {
		if row.X == x {
			return row.Cells[col]
		}
	}
	t.Fatalf("no row x=%d", x)
	return Cell{}
}

func TestMeasureStats(t *testing.T) {
	n := 0
	stats, err := Measure(2, 10, func() error {
		n++
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Errorf("op ran %d times, want 12 (2 warmup + 10 reps)", n)
	}
	if stats.N != 10 {
		t.Errorf("stats.N = %d", stats.N)
	}
	if stats.Mean < time.Millisecond {
		t.Errorf("mean %v < sleep duration", stats.Mean)
	}
	if stats.Min > stats.P50 || stats.P50 > stats.P95 || stats.P95 > stats.Max {
		t.Errorf("percentile ordering broken: %+v", stats)
	}
}

func TestPrintAndCSV(t *testing.T) {
	table := &Table{
		Fig: "Fig. X", Title: "T", XLabel: "calls", Profile: "lan",
		Columns: []string{"RMI", "BRMI"},
		Rows: []Row{
			{X: 1, Cells: []Cell{{S: Stats{Mean: 2 * time.Millisecond}, Calls: 1}, {S: Stats{Mean: 2 * time.Millisecond}, Calls: 1}}},
			{X: 5, Cells: []Cell{{S: Stats{Mean: 10 * time.Millisecond}, Calls: 5}, {S: Stats{Mean: 2 * time.Millisecond}, Calls: 1}}},
		},
	}
	var buf bytes.Buffer
	table.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Fig. X", "RMI ms", "BRMI ms", "10.000", "grows 5.0x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	table.CSV(&buf)
	if !strings.Contains(buf.String(), "calls,RMI_ms,RMI_std_ms,RMI_roundtrips,BRMI_ms") {
		t.Errorf("CSV header wrong:\n%s", buf.String())
	}
	if _, err := table.SpeedupAt(99, 1); err == nil {
		t.Error("SpeedupAt on missing row succeeded")
	}
}

func TestBuildList(t *testing.T) {
	head := BuildList(3)
	vals := []int{}
	for n := head; n != nil; n = n.Next() {
		vals = append(vals, n.GetValue())
	}
	if len(vals) != 3 || vals[0] != 0 || vals[2] != 2 {
		t.Fatalf("list values %v", vals)
	}
	if BuildList(0) != nil {
		t.Fatal("empty list not nil")
	}
}

func TestNewFileServer(t *testing.T) {
	fs := NewFileServer(4, 1000)
	if len(fs.ListFiles()) != 4 {
		t.Fatalf("files = %d", len(fs.ListFiles()))
	}
	var total int64
	for _, f := range fs.ListFiles() {
		total += f.Length()
		if f.GetName() == "" || f.IsDirectory() {
			t.Errorf("bad file %+v", f)
		}
		if f.LastModified() == 0 {
			t.Error("zero mtime")
		}
		if len(f.Contents()) != int(f.Length()) {
			t.Error("length mismatch")
		}
	}
	if total != 1000 {
		t.Errorf("total bytes = %d, want 1000", total)
	}
	if got := NewFileServer(0, 100); len(got.ListFiles()) != 0 {
		t.Error("zero files not empty")
	}
}

// TestPipelineShape is the acceptance check of staged cross-server
// dataflow: at depth 2 over 4 servers, the staged cluster flush costs 3
// parallel round-trip waves (the variant itself asserts Waves == depth+1),
// so it must be well ahead of the manual two-phase approach's sequential
// per-server flushes and of per-call RMI.
func TestPipelineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow shape test; skipped in -short")
	}
	cfg := Config{Profile: netsim.WAN.Scaled(10), Warmup: 1, Reps: 3}
	table, err := RunPipeline(cfg, 4, 8, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	// Round trips: RMI one per hop per chain (8*3); both batched variants
	// one per server per level (4*3).
	assertRoundTrips(t, table, 2, []uint64{24, 12, 12})
	rmiMs := tableCell(t, table, 2, 0).S.Millis()
	twoMs := tableCell(t, table, 2, 1).S.Millis()
	stagedMs := tableCell(t, table, 2, 2).S.Millis()
	if stagedMs <= 0 {
		t.Fatal("staged variant measured zero time")
	}
	if twoMs/stagedMs < 2 {
		t.Errorf("staged flush %.2fms vs two-phase %.2fms: %.2fx, want >= 2x",
			stagedMs, twoMs, twoMs/stagedMs)
	}
	if rmiMs/stagedMs < 4 {
		t.Errorf("staged flush %.2fms vs RMI %.2fms: %.2fx, want >= 4x",
			stagedMs, rmiMs, rmiMs/stagedMs)
	}
}

// TestPipelineDegenerate: depth 0 (no cross-server dataflow) is the plain
// fan-out case — the staged variant must plan a single wave and all
// variants must agree on results.
func TestPipelineDegenerate(t *testing.T) {
	cfg := Config{Profile: netsim.Instant, Warmup: 0, Reps: 1}
	table, err := RunPipeline(cfg, 2, 4, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	assertRoundTrips(t, table, 0, []uint64{4, 2, 2})
}

// TestRebalanceShape pins the live re-sharding acceptance criterion: at 64
// objects moved during a scale-out, BRMI-batched migration must beat
// per-object migration by at least 2x (the committed BENCH_rebalance.json
// series shows ~12x on the WAN profile).
func TestRebalanceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow shape test; skipped in -short")
	}
	cfg := Config{Profile: netsim.WAN.Scaled(10), Warmup: 0, Reps: 3}
	table, err := RunRebalance(cfg, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	perObj := tableCell(t, table, 64, 0)
	batched := tableCell(t, table, 64, 1)
	if batched.S.Millis() <= 0 {
		t.Fatal("batched migration measured zero time")
	}
	if ratio := perObj.S.Millis() / batched.S.Millis(); ratio < 2 {
		t.Errorf("batched migration %.2fms vs per-object %.2fms: %.2fx, want >= 2x",
			batched.S.Millis(), perObj.S.Millis(), ratio)
	}
	// Round trips: per-object pays ~3 per moved object; batched pays a
	// small constant (plan + one batch per direction per pair + broadcast).
	if perObj.Calls <= batched.Calls*4 {
		t.Errorf("round trips: per-object %d vs batched %d, want per-object >> batched",
			perObj.Calls, batched.Calls)
	}
}

// TestRebalanceTiny: the smallest scale-out moves its objects correctly in
// both migration modes (correctness is asserted inside RunRebalance's
// verification run).
func TestRebalanceTiny(t *testing.T) {
	cfg := Config{Profile: netsim.Instant, Warmup: 0, Reps: 1}
	table, err := RunRebalance(cfg, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 || len(table.Rows[0].Cells) != 2 {
		t.Fatalf("unexpected table shape: %+v", table)
	}
}

// TestThroughputWorkload smoke-tests the hot-path throughput figure: the
// workload completes, reports sane metrics, and the allocation count stays
// inside the budget this PR's optimizations established (the strict
// before/after comparison lives in BENCH_throughput.json).
func TestThroughputWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput workload is slow; run without -short")
	}
	env, err := NewClusterEnv(netsim.Instant, ThroughputServers)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	res, err := MeasureThroughput(env, 4, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.CallsPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.FlushStats.N == 0 || res.FlushStats.P95 <= 0 {
		t.Fatalf("flush latency stats missing: %+v", res.FlushStats)
	}
	// Pre-PR the workload cost ~29.5 allocs per call; the compiled codecs,
	// pooled buffers, and skeleton dispatch brought it to ~14. Catch
	// regressions with headroom for environment noise.
	if res.AllocsPerCall > 22 {
		t.Fatalf("allocs per call regressed: %.1f (budget 22)", res.AllocsPerCall)
	}
}

// TestCacheShape smoke-tests the lease-cache figure: at a 0% hit rate the
// cached path still pays the round trip (and only that); at 100% every read
// settles from its lease and the flush performs zero round trips — the
// zero-round-trip claim BENCH_cache.json tracks.
func TestCacheShape(t *testing.T) {
	table, err := RunCache(fastCfg(), 8, []int{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	assertRoundTrips(t, table, 0, []uint64{1, 1})
	assertRoundTrips(t, table, 100, []uint64{1, 0})
	// At 100% the cached flush never touches the wire, so it must be far
	// below the uncached one (which still pays the RTT).
	speedup, err := table.SpeedupAt(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if speedup < 5 {
		t.Errorf("uncached/cached at 100%% hit = %.2fx, want >= 5x", speedup)
	}
}
