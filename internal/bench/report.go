package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Print renders a table in the paper's figure layout: one row per
// x-position, one latency column (ms) plus round-trip count per variant.
// Throughput figures (cells carrying OpsPerSec) print ops/sec, p95 flush
// latency, and allocs/op instead.
func (t *Table) Print(w io.Writer) {
	if t.isThroughput() {
		t.printThroughput(w)
		return
	}
	fmt.Fprintf(w, "%s — %s (%s network)\n", t.Fig, t.Title, t.Profile)
	header := fmt.Sprintf("%-14s", t.XLabel)
	for _, c := range t.Columns {
		header += fmt.Sprintf(" | %12s %9s %6s", c+" ms", "±std", "rt")
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, row := range t.Rows {
		line := fmt.Sprintf("%-14d", row.X)
		for _, cell := range row.Cells {
			line += fmt.Sprintf(" | %12.3f %9.3f %6d",
				cell.S.Millis(), float64(cell.S.Std)/1e6, cell.Calls)
		}
		fmt.Fprintln(w, line)
	}
	if summary := t.Shape(); summary != "" {
		fmt.Fprintf(w, "shape: %s\n", summary)
	}
	fmt.Fprintln(w)
}

func (t *Table) isThroughput() bool {
	for _, row := range t.Rows {
		for _, cell := range row.Cells {
			if cell.OpsPerSec > 0 {
				return true
			}
		}
	}
	return false
}

func (t *Table) printThroughput(w io.Writer) {
	fmt.Fprintf(w, "%s — %s (%s network)\n", t.Fig, t.Title, t.Profile)
	header := fmt.Sprintf("%-14s", t.XLabel)
	for _, c := range t.Columns {
		header += fmt.Sprintf(" | %14s %11s %10s", c+" ops/s", "p95 ms", "allocs/op")
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, row := range t.Rows {
		line := fmt.Sprintf("%-14d", row.X)
		for _, cell := range row.Cells {
			line += fmt.Sprintf(" | %14.0f %11.3f %10.1f",
				cell.OpsPerSec, float64(cell.S.P95)/1e6, cell.AllocsPerOp)
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values for plotting.
func (t *Table) CSV(w io.Writer) {
	cols := []string{strings.ReplaceAll(t.XLabel, " ", "_")}
	for _, c := range t.Columns {
		cols = append(cols, c+"_ms", c+"_std_ms", c+"_roundtrips")
	}
	fmt.Fprintf(w, "# %s — %s (%s)\n", t.Fig, t.Title, t.Profile)
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, row := range t.Rows {
		fields := []string{fmt.Sprintf("%d", row.X)}
		for _, cell := range row.Cells {
			fields = append(fields,
				fmt.Sprintf("%.4f", cell.S.Millis()),
				fmt.Sprintf("%.4f", float64(cell.S.Std)/1e6),
				fmt.Sprintf("%d", cell.Calls))
		}
		fmt.Fprintln(w, strings.Join(fields, ","))
	}
}

// jsonTable is the machine-readable form of a Table, stable across PRs so
// external tooling can diff benchmark series over time.
type jsonTable struct {
	Fig     string    `json:"fig"`
	Title   string    `json:"title"`
	XLabel  string    `json:"xlabel"`
	Profile string    `json:"profile"`
	Columns []string  `json:"columns"`
	Rows    []jsonRow `json:"rows"`
}

type jsonRow struct {
	X     int        `json:"x"`
	Cells []jsonCell `json:"cells"`
}

type jsonCell struct {
	Ms         float64 `json:"ms"`
	StdMs      float64 `json:"std_ms"`
	P95Ms      float64 `json:"p95_ms"`
	RoundTrips uint64  `json:"roundtrips"`
	// Throughput-figure metrics; omitted for latency figures.
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// JSON renders the table as a machine-readable series (one JSON object),
// the format benchfig -json emits so future PRs can track a performance
// trajectory file like BENCH_cluster.json.
func (t *Table) JSON(w io.Writer) error {
	jt := jsonTable{
		Fig:     t.Fig,
		Title:   t.Title,
		XLabel:  t.XLabel,
		Profile: t.Profile,
		Columns: t.Columns,
		Rows:    make([]jsonRow, 0, len(t.Rows)),
	}
	for _, row := range t.Rows {
		jr := jsonRow{X: row.X, Cells: make([]jsonCell, 0, len(row.Cells))}
		for _, cell := range row.Cells {
			jr.Cells = append(jr.Cells, jsonCell{
				Ms:          cell.S.Millis(),
				StdMs:       float64(cell.S.Std) / 1e6,
				P95Ms:       float64(cell.S.P95) / 1e6,
				RoundTrips:  cell.Calls,
				OpsPerSec:   cell.OpsPerSec,
				AllocsPerOp: cell.AllocsPerOp,
			})
		}
		jt.Rows = append(jt.Rows, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// Shape summarizes the qualitative comparison the paper's figures make:
// per-column growth from first to last x, and who wins at the end. This is
// what EXPERIMENTS.md records as the reproduction criterion.
func (t *Table) Shape() string {
	if len(t.Rows) < 2 || len(t.Columns) < 1 {
		return ""
	}
	first, last := t.Rows[0], t.Rows[len(t.Rows)-1]
	parts := make([]string, 0, len(t.Columns)+1)
	for i, c := range t.Columns {
		f := first.Cells[i].S.Millis()
		l := last.Cells[i].S.Millis()
		growth := "flat"
		if f > 0 {
			switch ratio := l / f; {
			case ratio > 2.0:
				growth = fmt.Sprintf("grows %.1fx", ratio)
			case ratio < 0.5:
				growth = fmt.Sprintf("shrinks %.1fx", 1/ratio)
			}
		}
		parts = append(parts, fmt.Sprintf("%s %s", c, growth))
	}
	if len(t.Columns) >= 2 {
		a := last.Cells[0].S.Millis()
		b := last.Cells[len(t.Columns)-1].S.Millis()
		if b > 0 {
			parts = append(parts, fmt.Sprintf("%s/%s at max x = %.1fx",
				t.Columns[0], t.Columns[len(t.Columns)-1], a/b))
		}
	}
	return strings.Join(parts, "; ")
}

// SpeedupAt returns columns[0] time divided by columns[col] time at the
// given x, for assertions in tests.
func (t *Table) SpeedupAt(x, col int) (float64, error) {
	for _, row := range t.Rows {
		if row.X != x {
			continue
		}
		denom := row.Cells[col].S.Millis()
		if denom == 0 {
			return 0, fmt.Errorf("bench: zero time at x=%d", x)
		}
		return row.Cells[0].S.Millis() / denom, nil
	}
	return 0, fmt.Errorf("bench: no row with x=%d", x)
}
