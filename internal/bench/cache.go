package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/rcache"
	"repro/internal/wire"
)

// cache.go measures the client-side result cache (PR 7) against the bare
// PR 4 hot path: a batch of readonly Echo calls at a controlled lease hit
// rate. At 100% every call settles from its lease and the flush performs
// zero round trips; at 0% the cache is pure overhead (key encoding plus a
// map probe per call) and must cost ~nothing next to the wire. The sweep
// pins both ends and the shape in between.

// CacheReadObjects is how many readonly targets one flush reads (one lease
// per object, so the hit rate is controlled per object).
const CacheReadObjects = 16

// cachePayloadBytes sizes the Echo argument; reads carry a realistic value,
// not an empty frame.
const cachePayloadBytes = 64

// RunCache sweeps the lease hit rate: x is the percentage of the flush's
// reads served from a warm lease; the rest are invalidated before every
// repetition (a harness knob — no wire traffic), forcing a fetch. Columns:
// the uncached PR 4 path and the cached path, same call sequence.
func RunCache(cfg Config, objects int, hitPcts []int) (*Table, error) {
	if objects <= 0 {
		objects = CacheReadObjects
	}
	table := &Table{
		Fig:     "Fig. C1",
		Title:   fmt.Sprintf("Readonly lease cache (%d cached reads per flush)", objects),
		XLabel:  "lease hit rate %",
		Profile: cfg.Profile.Name,
		Columns: []string{"uncached (PR4)", "cached"},
	}
	ctx := context.Background()
	for _, pct := range hitPcts {
		env, err := NewEnv(cfg.Profile, WithServerOptions(cfg.ServerOpts...))
		if err != nil {
			return nil, err
		}
		refs, payloads, err := exportCacheReads(env, objects)
		if err != nil {
			env.Close()
			return nil, err
		}
		// The first `hot` objects keep their leases; the rest are dropped
		// before every repetition so they always fetch.
		hot := objects * pct / 100
		cache := rcache.New(nil, rcache.WithTTL(time.Hour))
		cold := make([]string, 0, objects-hot)
		for _, ref := range refs[hot:] {
			cold = append(cold, rcache.ObjKey(ref))
		}
		readBatch := func(c *rcache.Cache) error {
			var opts []core.Option
			if c != nil {
				for _, obj := range cold {
					c.InvalidateObject(obj)
				}
				opts = append(opts, core.WithCache(c))
			}
			b := core.New(env.Client, refs[0], opts...)
			futures := make([]*core.Future, objects)
			for i := range refs {
				p := b.Root()
				if i > 0 {
					var err error
					if p, err = b.AddRoot(refs[i]); err != nil {
						return err
					}
				}
				futures[i] = p.CallRO("Echo", payloads[i])
			}
			if err := b.Flush(ctx); err != nil {
				return err
			}
			for _, f := range futures {
				if err := f.Err(); err != nil {
					return err
				}
			}
			return nil
		}
		variants := []struct {
			name string
			op   func() error
		}{
			{"uncached (PR4)", func() error { return readBatch(nil) }},
			{"cached", func() error { return readBatch(cache) }},
		}
		row := Row{X: pct}
		for _, v := range variants {
			// Warm up (connection, codec caches, and — for the cached
			// variant — the hot leases), THEN count round trips: the steady
			// state is what the figure tracks, not the first cold fill.
			for i := 0; i < cfg.Warmup+1; i++ {
				if err := v.op(); err != nil {
					env.Close()
					return nil, fmt.Errorf("cache x=%d %s warmup: %w", pct, v.name, err)
				}
			}
			before := env.Client.CallCount()
			if err := v.op(); err != nil {
				env.Close()
				return nil, fmt.Errorf("cache x=%d %s: %w", pct, v.name, err)
			}
			calls := env.Client.CallCount() - before
			stats, err := Measure(0, cfg.Reps, v.op)
			if err != nil {
				env.Close()
				return nil, fmt.Errorf("cache x=%d %s: %w", pct, v.name, err)
			}
			row.Cells = append(row.Cells, Cell{S: stats, Calls: calls})
		}
		table.Rows = append(table.Rows, row)
		env.Close()
	}
	return table, nil
}

// exportCacheReads exports the readonly targets, one EchoService per lease,
// each read with its own payload (distinct cache keys even on shared
// state).
func exportCacheReads(env *Env, n int) ([]wire.Ref, []Payload, error) {
	refs := make([]wire.Ref, n)
	payloads := make([]Payload, n)
	for i := 0; i < n; i++ {
		ref, err := env.Export(&EchoService{}, "bench.Echo")
		if err != nil {
			return nil, nil, err
		}
		refs[i] = ref
		payloads[i] = Payload{
			ID:      int64(i),
			Name:    "cache-read-object-with-a-realistic-name",
			Seq:     uint64(i),
			Data:    make([]byte, cachePayloadBytes),
			Elapsed: time.Millisecond,
		}
	}
	return refs, payloads, nil
}
