// Package bench provides the benchmark harness that regenerates the paper's
// evaluation (Figures 5-13, §5.2-§5.4): the workload services, RMI and BRMI
// client drivers, measurement utilities, and paper-style series printing.
//
// Both the testing.B benchmarks in the repository root and cmd/benchfig
// drive the same code here, so the two report the same workloads.
package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// --- no-op service (Figures 5-6) ---------------------------------------------

// NoopService is the do-nothing remote object of the no-op micro benchmark:
// "a do-nothing remote method that takes no parameters and returns void"
// (§5.3), isolating middleware processing overhead plus latency.
type NoopService struct {
	rmi.RemoteBase
}

// Noop does nothing.
func (s *NoopService) Noop() {}

// DispatchLocal is the reflection-free skeleton (rmi.LocalDispatcher),
// mirroring what brmigen's Dispatch<Iface> helper emits.
func (s *NoopService) DispatchLocal(_ context.Context, method string, _ []any, buf []any) ([]any, bool, error) {
	if method != "Noop" {
		return nil, false, nil
	}
	s.Noop()
	return buf[:0], true, nil
}

// --- echo service (throughput figure) ------------------------------------------

// Payload is the marshal-heavy argument/result of the throughput workload:
// a registered struct with a string, integers, a byte body, and a duration,
// so every recorded call exercises the full codec surface (type definition,
// field encode/decode, byte copy) rather than just the framing.
type Payload struct {
	ID      int64
	Name    string
	Seq     uint64
	Data    []byte
	Elapsed time.Duration
}

// EchoService is the remote object of the throughput workload: Echo returns
// its argument, so each call marshals the payload twice (request and
// response) on both peers.
type EchoService struct {
	rmi.RemoteBase
}

// Echo returns p unchanged.
func (s *EchoService) Echo(p Payload) Payload { return p }

// DispatchLocal is the reflection-free skeleton (rmi.LocalDispatcher),
// mirroring what brmigen's Dispatch<Iface> helper emits.
func (s *EchoService) DispatchLocal(_ context.Context, method string, args []any, buf []any) ([]any, bool, error) {
	if method != "Echo" || len(args) != 1 {
		return nil, false, nil
	}
	p, ok := args[0].(Payload)
	if !ok {
		return nil, false, nil // odd argument form; reflective dispatch converts
	}
	return append(buf[:0], s.Echo(p)), true, nil
}

// --- linked list (Figures 7-9) -------------------------------------------------

// ListNode is the remote linked list of the traversal micro benchmark
// (§5.3): Next returns a remote reference, so every traversal step of the
// RMI version marshals a remote object; the BRMI version keeps the chain on
// the server.
type ListNode struct {
	rmi.RemoteBase
	next  *ListNode
	value int
}

// BuildList creates a chain of n nodes valued 0..n-1.
func BuildList(n int) *ListNode {
	var head *ListNode
	for i := n - 1; i >= 0; i-- {
		head = &ListNode{next: head, value: i}
	}
	return head
}

// Next returns the following node (nil at the tail).
func (n *ListNode) Next() *ListNode { return n.next }

// GetValue returns the node's value.
func (n *ListNode) GetValue() int { return n.value }

// --- remote simulation (Figures 10-11) ----------------------------------------

// Balancer is the auxiliary remote object of the simulation benchmark; the
// benefit measured is whether calls to it from the simulation are local
// (BRMI preserves identity, §4.4) or loopback remote calls (RMI).
type Balancer struct {
	rmi.RemoteBase
	calls int
}

// Balance performs one balancing operation.
func (b *Balancer) Balance() { b.calls++ }

// Calls reports how many balance operations ran.
func (b *Balancer) Calls() int { return b.calls }

// Simulation mirrors the paper's Simulation remote object (§5.3).
type Simulation struct {
	rmi.RemoteBase
	result float64
}

// CreateBalancer creates the balancer the client parameterizes.
func (s *Simulation) CreateBalancer() *Balancer { return &Balancer{} }

// PerformSimulationStep runs reps balance calls through the balancer
// argument. When b arrives as a loopback stub (faithful RMI), each balance
// call crosses the network; when identity is preserved (BRMI), it is local.
func (s *Simulation) PerformSimulationStep(ctx context.Context, reps int, b any) (int, error) {
	switch x := b.(type) {
	case *Balancer:
		for i := 0; i < reps; i++ {
			x.Balance()
		}
		s.result += float64(reps)
		return reps, nil
	case rmi.Invoker:
		for i := 0; i < reps; i++ {
			if _, err := x.Invoke(ctx, "Balance"); err != nil {
				return 0, err
			}
		}
		s.result += float64(reps)
		return reps, nil
	default:
		return 0, fmt.Errorf("bench: unexpected balancer type %T", b)
	}
}

// GetSimulationResults returns the accumulated result.
func (s *Simulation) GetSimulationResults() float64 { return s.result }

// --- remote file server (Figures 12-13) ----------------------------------------

// RemoteFile is one entry of the remote file server (§5.1, §5.4). Contents
// are held in memory, as in the paper ("loads all the files from disk into
// main memory, to avoid disk access tainting the results").
type RemoteFile struct {
	rmi.RemoteBase
	name     string
	dir      bool
	modified time.Time
	contents []byte
}

// GetName returns the file name.
func (f *RemoteFile) GetName() string { return f.name }

// IsDirectory reports whether the entry is a directory.
func (f *RemoteFile) IsDirectory() bool { return f.dir }

// LastModified returns the modification time in Unix milliseconds, like
// java.io.File.lastModified.
func (f *RemoteFile) LastModified() int64 { return f.modified.UnixMilli() }

// Length returns the content size.
func (f *RemoteFile) Length() int64 { return int64(len(f.contents)) }

// Contents returns the file body.
func (f *RemoteFile) Contents() []byte { return f.contents }

// FileServer is the remote directory of the macro benchmark.
type FileServer struct {
	rmi.RemoteBase
	files []*RemoteFile
}

// NewFileServer creates a server directory with n files whose sizes sum to
// totalBytes, mirroring the macro benchmark setup (10 files, 100 KB total).
func NewFileServer(n, totalBytes int) *FileServer {
	fs := &FileServer{}
	if n <= 0 {
		return fs
	}
	per := totalBytes / n
	base := time.Date(2009, 6, 22, 10, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		body := make([]byte, per)
		for j := range body {
			body[j] = byte(i + j)
		}
		fs.files = append(fs.files, &RemoteFile{
			name:     fmt.Sprintf("file-%02d.dat", i),
			modified: base.Add(time.Duration(i) * time.Hour),
			contents: body,
		})
	}
	return fs
}

// ListFiles returns all files.
func (fs *FileServer) ListFiles() []*RemoteFile { return fs.files }

// Payload travels on every throughput-workload call; it installs a
// compiled wire codec like the protocol messages do, the pattern an
// application type opts into for its own hot paths.
func encPayload(x wire.Enc, p *Payload) error {
	n := 5
	if p.Elapsed == 0 {
		n = 4
		if p.Data == nil {
			n = 3
			if p.Seq == 0 {
				n = 2
				if p.Name == "" {
					n = 1
					if p.ID == 0 {
						n = 0
					}
				}
			}
		}
	}
	x.BeginStruct("bench.payload", n)
	if n > 0 {
		x.Int(p.ID)
	}
	if n > 1 {
		x.Str(p.Name)
	}
	if n > 2 {
		x.Uint(p.Seq)
	}
	if n > 3 {
		x.BytesVal(p.Data)
	}
	if n > 4 {
		x.Int(int64(p.Elapsed))
	}
	return nil
}

func decPayload(x wire.Dec, p *Payload, n int) error {
	var err error
	if n > 0 {
		if p.ID, err = x.Int(); err != nil {
			return err
		}
	}
	if n > 1 {
		if p.Name, err = x.Str(); err != nil {
			return err
		}
	}
	if n > 2 {
		if p.Seq, err = x.Uint(); err != nil {
			return err
		}
	}
	if n > 3 {
		if p.Data, err = x.BytesVal(); err != nil {
			return err
		}
	}
	if n > 4 {
		if p.Elapsed, err = x.Dur(); err != nil {
			return err
		}
	}
	return x.SkipFields(n - 5)
}

func init() {
	rmi.RegisterImpl("bench.ListNode", &ListNode{})
	rmi.RegisterImpl("bench.Balancer", &Balancer{})
	rmi.RegisterImpl("bench.RemoteFile", &RemoteFile{})
	wire.MustRegisterCompiled("bench.payload", false, encPayload, decPayload)
}

// ensure the workload types stay wire-compatible (compile-time checks).
var (
	_ rmi.Remote = (*NoopService)(nil)
	_ rmi.Remote = (*ListNode)(nil)
	_ rmi.Remote = (*Simulation)(nil)
	_ rmi.Remote = (*FileServer)(nil)
	_            = wire.Ref{}
	_            = core.RootTarget
)
