package bench

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// ClusterEnv is one client against K servers on a simulated network: the
// sharded deployment the cluster workloads measure. Every server runs the
// BRMI executor, a registry, a cluster node service (so rebalancing works),
// and exports one NoopService.
type ClusterEnv struct {
	Network    *netsim.Network
	Servers    []*rmi.Peer
	Execs      []*core.Executor
	Registries []*registry.Service
	Nodes      []*cluster.Node
	Refs       []wire.Ref
	EchoRefs   []wire.Ref
	Client     *rmi.Peer

	cleanup []func()
}

// NewClusterEnv builds k serving peers (endpoints "server-0".."server-k-1")
// plus a client peer on a network with the given profile.
func NewClusterEnv(profile netsim.Profile, k int) (*ClusterEnv, error) {
	network := netsim.New(profile)
	env := &ClusterEnv{Network: network}
	env.cleanup = append(env.cleanup, func() { _ = network.Close() })
	for i := 0; i < k; i++ {
		server := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
		if err := server.Serve(fmt.Sprintf("server-%d", i)); err != nil {
			env.Close()
			return nil, err
		}
		env.cleanup = append(env.cleanup, func() { _ = server.Close() })
		exec, err := core.Install(server)
		if err != nil {
			env.Close()
			return nil, err
		}
		env.cleanup = append(env.cleanup, exec.Stop)
		reg, err := registry.Start(server)
		if err != nil {
			env.Close()
			return nil, err
		}
		node, err := cluster.StartNode(server, reg, nil)
		if err != nil {
			env.Close()
			return nil, err
		}
		if _, err := cluster.StartReplica(server, reg, node, exec); err != nil {
			env.Close()
			return nil, err
		}
		ref, err := server.Export(&NoopService{}, "bench.Noop")
		if err != nil {
			env.Close()
			return nil, err
		}
		echoRef, err := server.Export(&EchoService{}, "bench.Echo")
		if err != nil {
			env.Close()
			return nil, err
		}
		env.Servers = append(env.Servers, server)
		env.Execs = append(env.Execs, exec)
		env.Registries = append(env.Registries, reg)
		env.Nodes = append(env.Nodes, node)
		env.Refs = append(env.Refs, ref)
		env.EchoRefs = append(env.EchoRefs, echoRef)
	}
	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	env.Client = client
	env.cleanup = append(env.cleanup, func() { _ = client.Close() })
	return env, nil
}

// Close tears the environment down.
func (e *ClusterEnv) Close() {
	for i := len(e.cleanup) - 1; i >= 0; i-- {
		e.cleanup[i]()
	}
	e.cleanup = nil
}

// FanoutVariants builds the three implementations of the fan-out workload:
// totalCalls no-op calls spread evenly over the environment's K servers.
//
//   - "RMI" issues every call as its own round trip (totalCalls trips).
//   - "BRMI-seq" records one core.Batch per server and flushes them one
//     after another (K trips, paid sequentially) — the best a client can do
//     with the single-server batch API alone.
//   - "BRMI-cluster" records one cluster.Batch spanning all servers and
//     flushes once (K trips, paid in parallel): wall-clock cost is the
//     slowest server, not the sum.
func FanoutVariants(env *ClusterEnv, totalCalls int) []Variant {
	ctx := context.Background()
	k := len(env.Refs)
	// Spread totalCalls over the servers exactly: the first totalCalls%k
	// servers take one extra call, so every cluster size runs the same
	// total work and the series stay comparable.
	share := func(s int) int {
		n := totalCalls / k
		if s < totalCalls%k {
			n++
		}
		return n
	}

	rmiOp := func() error {
		for s, ref := range env.Refs {
			for i := 0; i < share(s); i++ {
				if _, err := env.Client.Call(ctx, ref, "Noop"); err != nil {
					return err
				}
			}
		}
		return nil
	}

	seqOp := func() error {
		for s, ref := range env.Refs {
			n := share(s)
			if n == 0 {
				continue
			}
			b := core.New(env.Client, ref)
			root := b.Root()
			var last *core.Future
			for i := 0; i < n; i++ {
				last = root.Call("Noop")
			}
			if err := b.Flush(ctx); err != nil {
				return err
			}
			if err := last.Err(); err != nil {
				return err
			}
		}
		return nil
	}

	clusterOp := func() error {
		b := cluster.New(env.Client)
		var lasts []*cluster.Future
		for s, ref := range env.Refs {
			n := share(s)
			if n == 0 {
				continue
			}
			root := b.Root(ref)
			var last *cluster.Future
			for i := 0; i < n; i++ {
				last = root.Call("Noop")
			}
			lasts = append(lasts, last)
		}
		if err := b.Flush(ctx); err != nil {
			return err
		}
		for _, f := range lasts {
			if err := f.Err(); err != nil {
				return err
			}
		}
		return nil
	}

	return []Variant{
		{"RMI", rmiOp},
		{"BRMI-seq", seqOp},
		{"BRMI-cluster", clusterOp},
	}
}

// RunFanout measures the fan-out workload over cluster sizes ks, keeping the
// total call count fixed so the x-axis isolates how each strategy pays for
// server count: RMI grows with totalCalls round trips regardless, BRMI-seq
// grows linearly in K, BRMI-cluster stays at roughly one round trip of
// wall-clock time.
func RunFanout(cfg Config, totalCalls int, ks []int) (*Table, error) {
	table := &Table{
		Fig:     "Fig. C1",
		Title:   fmt.Sprintf("Cluster fan-out (%d calls over K servers)", totalCalls),
		XLabel:  "servers",
		Profile: cfg.Profile.Name,
	}
	for _, k := range ks {
		env, err := NewClusterEnv(cfg.Profile, k)
		if err != nil {
			return nil, err
		}
		variants := FanoutVariants(env, totalCalls)
		if table.Columns == nil {
			for _, v := range variants {
				table.Columns = append(table.Columns, v.Name)
			}
		}
		row := Row{X: k}
		for _, v := range variants {
			before := env.Client.CallCount()
			if err := v.Op(); err != nil {
				env.Close()
				return nil, fmt.Errorf("fanout k=%d %s: %w", k, v.Name, err)
			}
			calls := env.Client.CallCount() - before
			stats, err := Measure(cfg.Warmup, cfg.Reps, v.Op)
			if err != nil {
				env.Close()
				return nil, fmt.Errorf("fanout k=%d %s: %w", k, v.Name, err)
			}
			row.Cells = append(row.Cells, Cell{S: stats, Calls: calls})
		}
		table.Rows = append(table.Rows, row)
		env.Close()
	}
	return table, nil
}
