package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/rmi"
)

// MovableCounter is the rebalance workload's migratable object: a counter
// whose state survives a move between shards via the cluster.Movable
// snapshot/restore protocol.
type MovableCounter struct {
	rmi.RemoteBase
	mu sync.Mutex
	n  int64
}

// MovableCounterIface is the wire interface name the movable factory is
// registered under.
const MovableCounterIface = "bench.MovableCounter"

func init() {
	cluster.RegisterMovable(MovableCounterIface, func() rmi.Remote { return &MovableCounter{} })
}

// Incr adds d and returns the running total.
func (c *MovableCounter) Incr(d int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	return c.n
}

// Get returns the current total.
func (c *MovableCounter) Get() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Snapshot captures the counter state for migration.
func (c *MovableCounter) Snapshot() (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n, nil
}

// Restore applies a migrated snapshot.
func (c *MovableCounter) Restore(state any) error {
	n, ok := state.(int64)
	if !ok {
		return fmt.Errorf("bench: restore: unexpected state %T", state)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = n
	return nil
}

// rebalanceBaseServers is the cluster size before the scale-out; the
// newcomer is server-<rebalanceBaseServers>.
const rebalanceBaseServers = 3

// rebalanceEnv is one prepared scale-out scenario: a K-server cluster with
// exactly `objects` movable counters bound to names the grown ring will
// route to the standby server.
type rebalanceEnv struct {
	env      *ClusterEnv
	dir      *cluster.Directory
	newcomer string
	names    []string
}

func (re *rebalanceEnv) Close() { re.env.Close() }

// newRebalanceEnv builds the scenario. Names are chosen so that every bound
// object moves when the newcomer joins — the x-axis is "objects moved", so
// the moved set must be exact, not a hash-dependent fraction.
func newRebalanceEnv(profile netsim.Profile, objects int) (*rebalanceEnv, error) {
	env, err := NewClusterEnv(profile, rebalanceBaseServers+1)
	if err != nil {
		return nil, err
	}
	re := &rebalanceEnv{env: env, newcomer: fmt.Sprintf("server-%d", rebalanceBaseServers)}
	base := make([]string, rebalanceBaseServers)
	byEndpoint := make(map[string]*rmi.Peer, len(env.Servers))
	for i, srv := range env.Servers[:rebalanceBaseServers] {
		base[i] = srv.Endpoint()
		byEndpoint[srv.Endpoint()] = srv
	}
	re.dir = cluster.NewDirectory(env.Client, base)
	grown := cluster.NewRing(append(append([]string(nil), base...), re.newcomer))

	ctx := context.Background()
	for i := 0; len(re.names) < objects; i++ {
		name := fmt.Sprintf("counter-%d", i)
		if grown.Route(name) != re.newcomer {
			continue // stays put after the scale-out; not part of the moved set
		}
		home, err := re.dir.Home(name)
		if err != nil {
			re.Close()
			return nil, err
		}
		ref, err := byEndpoint[home].Export(&MovableCounter{n: int64(100 + i)}, MovableCounterIface)
		if err != nil {
			re.Close()
			return nil, err
		}
		if err := re.dir.Bind(ctx, name, ref); err != nil {
			re.Close()
			return nil, err
		}
		re.names = append(re.names, name)
	}
	return re, nil
}

// scaleOut performs the measured operation: grow the cluster by one server,
// migrating the moved objects.
func (re *rebalanceEnv) scaleOut(perObject bool) error {
	var opts []cluster.RebalanceOption
	if perObject {
		opts = append(opts, cluster.WithPerObjectMigration())
	}
	reb := cluster.NewRebalancer(re.dir, opts...)
	stats, err := reb.AddServer(context.Background(), re.newcomer)
	if err != nil {
		return err
	}
	if stats.Moved != len(re.names) {
		return fmt.Errorf("bench: rebalance moved %d objects, want %d", stats.Moved, len(re.names))
	}
	return nil
}

// verify checks the post-conditions of a scale-out: every name is homed on
// the newcomer, resolves there, and kept its pre-move state.
func (re *rebalanceEnv) verify() error {
	ctx := context.Background()
	for _, name := range re.names {
		home, err := re.dir.Home(name)
		if err != nil {
			return err
		}
		if home != re.newcomer {
			return fmt.Errorf("bench: %s homed on %s after scale-out, want %s", name, home, re.newcomer)
		}
		ref, err := re.dir.Lookup(ctx, name)
		if err != nil {
			return fmt.Errorf("bench: lookup %s after scale-out: %w", name, err)
		}
		if ref.Endpoint != re.newcomer {
			return fmt.Errorf("bench: %s resolves to %s after scale-out, want %s", name, ref.Endpoint, re.newcomer)
		}
		res, err := re.env.Client.Call(ctx, ref, "Get")
		if err != nil {
			return fmt.Errorf("bench: read %s after scale-out: %w", name, err)
		}
		// Seeds are assigned in discovery order, but only for names that
		// made the moved set, so recover the seed from the name itself.
		var idx int
		if _, err := fmt.Sscanf(name, "counter-%d", &idx); err != nil {
			return err
		}
		if got := res[0].(int64); got != int64(100+idx) {
			return fmt.Errorf("bench: %s lost state across the move: got %d, want %d", name, got, int64(100+idx))
		}
	}
	return nil
}

// RunRebalance measures live re-sharding: the wall-clock cost of growing a
// 3-server cluster to 4 while x bound objects migrate to the new server,
// per-object migration (one snapshot/depart/arrive round trip each) against
// BRMI-batched migration (one multi-root batch per direction). Migration
// mutates the cluster, so every measured repetition runs in a fresh
// environment; only the scale-out itself is timed.
func RunRebalance(cfg Config, counts []int) (*Table, error) {
	table := &Table{
		Fig: "Fig. C3",
		Title: fmt.Sprintf("Live re-sharding (%d -> %d servers, batched vs per-object migration)",
			rebalanceBaseServers, rebalanceBaseServers+1),
		XLabel:  "objects moved",
		Profile: cfg.Profile.Name,
		Columns: []string{"per-object", "BRMI-batched"},
	}
	for _, x := range counts {
		row := Row{X: x}
		for _, perObject := range []bool{true, false} {
			// One uncounted run to measure round trips and verify the
			// post-conditions (state preserved, homes moved).
			re, err := newRebalanceEnv(cfg.Profile, x)
			if err != nil {
				return nil, err
			}
			before := re.env.Client.CallCount()
			if err := re.scaleOut(perObject); err != nil {
				re.Close()
				return nil, fmt.Errorf("rebalance x=%d perObject=%v: %w", x, perObject, err)
			}
			calls := re.env.Client.CallCount() - before
			if err := re.verify(); err != nil {
				re.Close()
				return nil, err
			}
			re.Close()

			durations := make([]time.Duration, 0, cfg.Reps)
			for rep := 0; rep < cfg.Reps; rep++ {
				re, err := newRebalanceEnv(cfg.Profile, x)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				err = re.scaleOut(perObject)
				elapsed := time.Since(start)
				re.Close()
				if err != nil {
					return nil, fmt.Errorf("rebalance x=%d perObject=%v rep %d: %w", x, perObject, rep, err)
				}
				durations = append(durations, elapsed)
			}
			row.Cells = append(row.Cells, Cell{S: summarize(durations), Calls: calls})
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}
