package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/rmi"
	"repro/internal/wire"
)

// The Get-Batch workload: N named objects read back in one streaming
// cluster.GetBatch (one request per destination server, entries delivered
// in request order while later ones are in flight) against the obvious
// baseline, N individual read round trips. The per-object column divides
// the streaming total by N — the series the streaming transport is FOR:
// per-object cost falls as the batch grows, because the round trip and the
// per-destination request overhead amortize over the whole batch.

// getbatchServers is the cluster size the workload fans out over.
const getbatchServers = 4

// getbatchEnv is one prepared deployment: counters bound through a
// directory, plus the per-name refs the per-call baseline reads directly.
type getbatchEnv struct {
	env   *ClusterEnv
	dir   *cluster.Directory
	names []string
	refs  []wire.Ref
}

func (ge *getbatchEnv) Close() { ge.env.Close() }

func newGetbatchEnv(profile netsim.Profile, n int) (*getbatchEnv, error) {
	env, err := NewClusterEnv(profile, getbatchServers)
	if err != nil {
		return nil, err
	}
	ge := &getbatchEnv{env: env}
	eps := make([]string, len(env.Servers))
	byEndpoint := make(map[string]*rmi.Peer, len(env.Servers))
	for i, srv := range env.Servers {
		eps[i] = srv.Endpoint()
		byEndpoint[srv.Endpoint()] = srv
	}
	ge.dir = cluster.NewDirectory(env.Client, eps)
	ctx := context.Background()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("gb-%d", i)
		home, err := ge.dir.Home(name)
		if err != nil {
			ge.Close()
			return nil, err
		}
		ref, err := byEndpoint[home].Export(&MovableCounter{n: int64(100 + i)}, MovableCounterIface)
		if err != nil {
			ge.Close()
			return nil, err
		}
		if err := ge.dir.Bind(ctx, name, ref); err != nil {
			ge.Close()
			return nil, err
		}
		ge.names = append(ge.names, name)
		ge.refs = append(ge.refs, ref)
	}
	return ge, nil
}

// perCallOnce reads every counter as its own round trip — the un-batched
// baseline a client without GetBatch pays.
func (ge *getbatchEnv) perCallOnce() error {
	ctx := context.Background()
	for i, ref := range ge.refs {
		results, err := ge.env.Client.Call(ctx, ref, "Get")
		if err != nil {
			return err
		}
		if len(results) != 1 || results[0].(int64) != int64(100+i) {
			return fmt.Errorf("per-call read %d = %v, want %d", i, results, 100+i)
		}
	}
	return nil
}

// getbatchOnce reads every counter through one streaming cluster GetBatch
// and drains the ordered stream.
func (ge *getbatchEnv) getbatchOnce() error {
	ctx := context.Background()
	s, err := cluster.GetBatch(ctx, ge.env.Client, ge.dir, ge.names, cluster.WithGetMethod("Get"))
	if err != nil {
		return err
	}
	defer s.Close()
	for i := 0; ; i++ {
		e, err := s.Next()
		if err == io.EOF {
			if i != len(ge.names) {
				return fmt.Errorf("getbatch delivered %d entries, want %d", i, len(ge.names))
			}
			return nil
		}
		if err != nil {
			return err
		}
		if e.Err != nil {
			return fmt.Errorf("getbatch entry %d: %w", i, e.Err)
		}
		if v, ok := e.Value.(int64); !ok || v != int64(100+i) {
			return fmt.Errorf("getbatch entry %d = %v, want %d", i, e.Value, 100+i)
		}
	}
}

// perObject scales a measured total down to its per-object share.
func perObject(s Stats, n int) Stats {
	if n <= 0 {
		return s
	}
	d := time.Duration(n)
	return Stats{
		N:    s.N,
		Mean: s.Mean / d,
		Std:  s.Std / d,
		Min:  s.Min / d,
		P50:  s.P50 / d,
		P95:  s.P95 / d,
		Max:  s.Max / d,
	}
}

// RunGetBatch measures bulk reads of N objects over the cluster for each
// batch size: N individual round trips ("per-call"), one streaming
// cluster.GetBatch ("getbatch", one request per destination), and the
// streaming total divided by N ("getbatch/obj") — the falling per-object
// series that shows the batch amortizing its round trips.
func RunGetBatch(cfg Config, sizes []int) (*Table, error) {
	table := &Table{
		Fig:     "Fig. C5",
		Title:   fmt.Sprintf("Streaming Get-Batch: N ordered reads over %d servers", getbatchServers),
		XLabel:  "objects read N",
		Profile: cfg.Profile.Name,
		Columns: []string{"per-call", "getbatch", "getbatch/obj"},
	}
	for _, n := range sizes {
		env, err := newGetbatchEnv(cfg.Profile, n)
		if err != nil {
			return nil, err
		}
		row := Row{X: n}
		var batchStats Stats
		for _, variant := range []struct {
			op func() error
		}{
			{env.perCallOnce},
			{env.getbatchOnce},
		} {
			before := env.env.Client.CallCount()
			if err := variant.op(); err != nil {
				env.Close()
				return nil, fmt.Errorf("getbatch n=%d: %w", n, err)
			}
			calls := env.env.Client.CallCount() - before
			stats, err := Measure(cfg.Warmup, cfg.Reps, variant.op)
			if err != nil {
				env.Close()
				return nil, fmt.Errorf("getbatch n=%d: %w", n, err)
			}
			batchStats = stats
			row.Cells = append(row.Cells, Cell{S: stats, Calls: calls})
		}
		row.Cells = append(row.Cells, Cell{S: perObject(batchStats, n), Calls: row.Cells[1].Calls})
		table.Rows = append(table.Rows, row)
		env.Close()
	}
	return table, nil
}
