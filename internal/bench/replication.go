package bench

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/rmi"
)

// replicationServers is the cluster size the replication workload runs on:
// large enough that R=3 owner lists are distinct members and the follower
// fan-out is real network traffic, small enough that the placement
// rebalance stays cheap.
const replicationServers = 4

// replicationNames is how many movable counters the workload binds; each
// measured flush touches all of them, so every wave ships to the union of
// their follower sets.
const replicationNames = 4

// replicationEnv is one prepared replicated deployment: a K-server cluster
// with a replication-R directory, movable counters bound and their
// followers seeded by the placement rebalance.
type replicationEnv struct {
	env   *ClusterEnv
	dir   *cluster.Directory
	names []string
}

func (re *replicationEnv) Close() { re.env.Close() }

// newReplicationEnv builds the scenario for replication degree r.
func newReplicationEnv(profile netsim.Profile, r int) (*replicationEnv, error) {
	env, err := NewClusterEnv(profile, replicationServers)
	if err != nil {
		return nil, err
	}
	re := &replicationEnv{env: env}
	eps := make([]string, len(env.Servers))
	byEndpoint := make(map[string]*rmi.Peer, len(env.Servers))
	for i, srv := range env.Servers {
		eps[i] = srv.Endpoint()
		byEndpoint[srv.Endpoint()] = srv
	}
	re.dir = cluster.NewDirectory(env.Client, eps, cluster.WithReplication(r))

	ctx := context.Background()
	for i := 0; i < replicationNames; i++ {
		name := fmt.Sprintf("counter-%d", i)
		home, err := re.dir.Home(name)
		if err != nil {
			re.Close()
			return nil, err
		}
		ref, err := byEndpoint[home].Export(&MovableCounter{n: int64(100 * i)}, MovableCounterIface)
		if err != nil {
			re.Close()
			return nil, err
		}
		if err := re.dir.Bind(ctx, name, ref); err != nil {
			re.Close()
			return nil, err
		}
		re.names = append(re.names, name)
	}
	// The idempotent member re-add seeds every bound name's followers
	// (replica placement piggybacks on the rebalance flow); without it the
	// first measured flush would pay lazy shadow construction.
	if _, err := cluster.NewRebalancer(re.dir).AddServer(ctx, eps[0]); err != nil {
		re.Close()
		return nil, err
	}
	return re, nil
}

// flushOnce records one epoch-aware batch over every bound counter — two
// chained Incr calls per root — and flushes it, returning only after the
// wave is acked at the configured quorum.
func (re *replicationEnv) flushOnce(quorum int) error {
	ctx := context.Background()
	opts := []cluster.Option{cluster.WithDirectory(re.dir)}
	if quorum > 0 {
		opts = append(opts, cluster.WithQuorum(quorum))
	}
	b := cluster.New(re.env.Client, opts...)
	futs := make([]*cluster.Future, 0, len(re.names))
	for _, name := range re.names {
		p, err := b.RootNamed(ctx, name)
		if err != nil {
			return err
		}
		p.Call("Incr", int64(1))
		futs = append(futs, p.Call("Incr", int64(1)))
	}
	if err := b.Flush(ctx); err != nil {
		return err
	}
	for _, f := range futs {
		if err := f.Err(); err != nil {
			return err
		}
	}
	return nil
}

// RunReplication measures the acked-flush latency of replicated writes over
// replication degrees rs: every flush executes on each root's primary and
// ships the wave to the roots' followers, acking only at write quorum. The
// W=all column waits for every follower (the durability default); the
// W=majority column acks at floor(R/2)+1 holders, showing what the quorum
// knob buys back once R is large enough that majority < all (at R<=2 the
// two columns coincide by construction). R=1 is the unreplicated baseline:
// no followers, no quorum wait.
func RunReplication(cfg Config, rs []int) (*Table, error) {
	table := &Table{
		Fig:     "Fig. C4",
		Title:   fmt.Sprintf("Replicated flush latency (%d roots over %d servers)", replicationNames, replicationServers),
		XLabel:  "replication degree R",
		Profile: cfg.Profile.Name,
		Columns: []string{"W=all", "W=majority"},
	}
	for _, r := range rs {
		env, err := newReplicationEnv(cfg.Profile, r)
		if err != nil {
			return nil, err
		}
		row := Row{X: r}
		for _, w := range []int{0, r/2 + 1} {
			op := func() error { return env.flushOnce(w) }
			before := env.env.Client.CallCount()
			if err := op(); err != nil {
				env.Close()
				return nil, fmt.Errorf("replication r=%d w=%d: %w", r, w, err)
			}
			calls := env.env.Client.CallCount() - before
			stats, err := Measure(cfg.Warmup, cfg.Reps, op)
			if err != nil {
				env.Close()
				return nil, fmt.Errorf("replication r=%d w=%d: %w", r, w, err)
			}
			row.Cells = append(row.Cells, Cell{S: stats, Calls: calls})
		}
		table.Rows = append(table.Rows, row)
		env.Close()
	}
	return table, nil
}
