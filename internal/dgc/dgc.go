// Package dgc implements lease-based distributed garbage collection for
// exported remote objects, mirroring the role of java.rmi.dgc in the RMI
// substrate the paper builds on.
//
// Servers grant time-limited leases to clients that hold remote references
// ("dirty" calls); clients renew leases periodically and release them
// ("clean" calls) when a stub is discarded. When the last live lease on an
// auto-exported object disappears, the table reports the object as
// collectable so the export table can drop it.
//
// As in Java's DGC protocol, dirty and clean calls carry per-client sequence
// numbers: a dirty that was issued before a clean but arrives after it must
// not resurrect the lease. Cleans leave a tombstone recording the clean's
// sequence number; tombstones age out after one lease period.
package dgc

import (
	"sync"
	"time"
)

// DefaultLease is the lease duration granted when none is configured.
const DefaultLease = 30 * time.Second

// Table tracks leases per exported object. Safe for concurrent use.
type Table struct {
	lease time.Duration
	now   func() time.Time // injectable clock for tests

	mu      sync.Mutex
	objects map[uint64]*objLeases
	stopped bool
	done    chan struct{}
	wg      sync.WaitGroup

	onCollect func(objID uint64)
}

// objLeases is the lease state of one exported object.
type objLeases struct {
	clients   map[string]*leaseEntry
	collected bool // onCollect already fired for this object
}

// leaseEntry is one client's lease (or clean tombstone) on one object.
type leaseEntry struct {
	expiry  time.Time // lease expiry, or tombstone retention deadline
	seq     uint64
	cleaned bool
}

// Option configures a Table.
type Option func(*Table)

// WithLease sets the lease duration granted to clients.
func WithLease(d time.Duration) Option {
	return func(t *Table) { t.lease = d }
}

// WithClock injects a clock, for tests.
func WithClock(now func() time.Time) Option {
	return func(t *Table) { t.now = now }
}

// NewTable creates a lease table. onCollect is invoked (without the table
// lock held) when an object's last live lease disappears; it may be nil.
func NewTable(onCollect func(objID uint64), opts ...Option) *Table {
	t := &Table{
		lease:     DefaultLease,
		now:       time.Now,
		objects:   make(map[uint64]*objLeases),
		done:      make(chan struct{}),
		onCollect: onCollect,
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Lease returns the configured lease duration.
func (t *Table) Lease() time.Duration { return t.lease }

// Dirty grants or renews clientID's lease on each object in objIDs and
// returns the granted duration. A dirty whose sequence number does not
// exceed a prior clean's is stale and ignored for that object.
func (t *Table) Dirty(clientID string, seq uint64, objIDs []uint64) time.Duration {
	expiry := t.now().Add(t.lease)
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, id := range objIDs {
		o, ok := t.objects[id]
		if !ok {
			o = &objLeases{clients: make(map[string]*leaseEntry, 1)}
			t.objects[id] = o
		}
		e, ok := o.clients[clientID]
		if !ok {
			o.clients[clientID] = &leaseEntry{expiry: expiry, seq: seq}
			o.collected = false
			continue
		}
		if e.cleaned && seq <= e.seq {
			continue // stale dirty racing a newer clean
		}
		if seq >= e.seq {
			e.seq = seq
		}
		e.cleaned = false
		e.expiry = expiry
		o.collected = false
	}
	return t.lease
}

// Clean drops clientID's lease on each object in objIDs, leaving a
// tombstone so stale dirties cannot resurrect it. Objects whose last live
// lease disappears are reported to onCollect once.
func (t *Table) Clean(clientID string, seq uint64, objIDs []uint64) {
	tombstoneUntil := t.now().Add(t.lease)
	var collectable []uint64
	t.mu.Lock()
	for _, id := range objIDs {
		o, ok := t.objects[id]
		if !ok {
			continue
		}
		e, ok := o.clients[clientID]
		if !ok {
			o.clients[clientID] = &leaseEntry{expiry: tombstoneUntil, seq: seq, cleaned: true}
		} else {
			if seq < e.seq {
				continue // stale clean
			}
			e.seq = seq
			e.cleaned = true
			e.expiry = tombstoneUntil
		}
		if t.liveCountLocked(id) == 0 && !o.collected {
			o.collected = true
			collectable = append(collectable, id)
		}
	}
	t.mu.Unlock()
	t.collect(collectable)
}

// ForceClean unconditionally drops clientID's lease, ignoring sequence
// numbers and leaving no tombstone. Used for the marshal-grace handoff,
// where the synthetic holder never re-dirties.
func (t *Table) ForceClean(clientID string, objIDs []uint64) {
	var collectable []uint64
	t.mu.Lock()
	for _, id := range objIDs {
		o, ok := t.objects[id]
		if !ok {
			continue
		}
		if _, held := o.clients[clientID]; !held {
			continue
		}
		delete(o.clients, clientID)
		if t.liveCountLocked(id) == 0 && !o.collected {
			o.collected = true
			collectable = append(collectable, id)
		}
		if len(o.clients) == 0 {
			delete(t.objects, id)
		}
	}
	t.mu.Unlock()
	t.collect(collectable)
}

// liveCountLocked counts unexpired, uncleaned leases on id. Caller holds mu.
func (t *Table) liveCountLocked(id uint64) int {
	o, ok := t.objects[id]
	if !ok {
		return 0
	}
	now := t.now()
	n := 0
	for _, e := range o.clients {
		if !e.cleaned && e.expiry.After(now) {
			n++
		}
	}
	return n
}

// HolderCount returns the number of live leases on objID.
func (t *Table) HolderCount(objID uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.liveCountLocked(objID)
}

// Sweep drops expired leases and aged-out tombstones, returning the objects
// newly left without any live lease.
func (t *Table) Sweep() []uint64 {
	now := t.now()
	var collectable []uint64
	t.mu.Lock()
	for id, o := range t.objects {
		for client, e := range o.clients {
			if !e.expiry.After(now) {
				delete(o.clients, client) // expired lease or aged tombstone
			}
		}
		if t.liveCountLocked(id) == 0 && !o.collected {
			o.collected = true
			collectable = append(collectable, id)
		}
		if len(o.clients) == 0 {
			delete(t.objects, id)
		}
	}
	t.mu.Unlock()
	t.collect(collectable)
	return collectable
}

func (t *Table) collect(ids []uint64) {
	if t.onCollect == nil {
		return
	}
	for _, id := range ids {
		t.onCollect(id)
	}
}

// Start launches a background sweeper that runs every interval until Stop.
func (t *Table) Start(interval time.Duration) {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				t.Sweep()
			case <-t.done:
				return
			}
		}
	}()
}

// Stop terminates the sweeper and waits for it. Idempotent.
func (t *Table) Stop() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		t.wg.Wait()
		return
	}
	t.stopped = true
	t.mu.Unlock()
	close(t.done)
	t.wg.Wait()
}
