package dgc

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// fakeClock is a settable clock for deterministic lease expiry tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestDirtyGrantsLease(t *testing.T) {
	clk := newFakeClock()
	tbl := NewTable(nil, WithLease(10*time.Second), WithClock(clk.Now))
	if got := tbl.Dirty("c1", 1, []uint64{7}); got != 10*time.Second {
		t.Fatalf("granted %v", got)
	}
	if n := tbl.HolderCount(7); n != 1 {
		t.Fatalf("holders = %d", n)
	}
	tbl.Dirty("c2", 1, []uint64{7})
	if n := tbl.HolderCount(7); n != 2 {
		t.Fatalf("holders = %d", n)
	}
}

func TestCleanReleasesAndCollects(t *testing.T) {
	var collected []uint64
	tbl := NewTable(func(id uint64) { collected = append(collected, id) }, WithLease(time.Minute))
	tbl.Dirty("c1", 1, []uint64{1, 2})
	tbl.Dirty("c2", 1, []uint64{1})
	tbl.Clean("c1", 2, []uint64{1, 2})
	if len(collected) != 1 || collected[0] != 2 {
		t.Fatalf("collected %v, want [2]", collected)
	}
	tbl.Clean("c2", 2, []uint64{1})
	sort.Slice(collected, func(i, j int) bool { return collected[i] < collected[j] })
	if len(collected) != 2 || collected[0] != 1 || collected[1] != 2 {
		t.Fatalf("collected %v, want [1 2]", collected)
	}
}

func TestCleanUnknownIsNoop(t *testing.T) {
	called := false
	tbl := NewTable(func(uint64) { called = true })
	tbl.Clean("cx", 1, []uint64{99})
	if called {
		t.Fatal("collect fired for unknown object")
	}
}

func TestSweepExpiresLeases(t *testing.T) {
	clk := newFakeClock()
	var collected []uint64
	tbl := NewTable(func(id uint64) { collected = append(collected, id) },
		WithLease(10*time.Second), WithClock(clk.Now))
	tbl.Dirty("c1", 1, []uint64{1})
	tbl.Dirty("c2", 1, []uint64{2})

	clk.Advance(5 * time.Second)
	tbl.Dirty("c2", 1, []uint64{2}) // renewal pushes expiry out

	clk.Advance(6 * time.Second) // c1 now expired (11s), c2 alive (renewed at 5s)
	expired := tbl.Sweep()
	if len(expired) != 1 || expired[0] != 1 {
		t.Fatalf("expired %v, want [1]", expired)
	}
	if len(collected) != 1 || collected[0] != 1 {
		t.Fatalf("collected %v, want [1]", collected)
	}
	if n := tbl.HolderCount(2); n != 1 {
		t.Fatalf("object 2 holders = %d, want 1", n)
	}

	clk.Advance(10 * time.Second)
	expired = tbl.Sweep()
	if len(expired) != 1 || expired[0] != 2 {
		t.Fatalf("expired %v, want [2]", expired)
	}
}

func TestHolderCountIgnoresExpired(t *testing.T) {
	clk := newFakeClock()
	tbl := NewTable(nil, WithLease(time.Second), WithClock(clk.Now))
	tbl.Dirty("c1", 1, []uint64{1})
	clk.Advance(2 * time.Second)
	if n := tbl.HolderCount(1); n != 0 {
		t.Fatalf("holders = %d, want 0 after expiry", n)
	}
}

func TestBackgroundSweeper(t *testing.T) {
	collected := make(chan uint64, 1)
	tbl := NewTable(func(id uint64) { collected <- id }, WithLease(10*time.Millisecond))
	tbl.Dirty("c1", 1, []uint64{42})
	tbl.Start(5 * time.Millisecond)
	defer tbl.Stop()
	select {
	case id := <-collected:
		if id != 42 {
			t.Fatalf("collected %d", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sweeper never collected expired lease")
	}
}

func TestStopIdempotent(t *testing.T) {
	tbl := NewTable(nil)
	tbl.Start(time.Hour)
	tbl.Stop()
	tbl.Stop()
	// Start after stop must not launch a goroutine that outlives the test.
	tbl.Start(time.Millisecond)
	tbl.Stop()
}

// TestQuickLeaseInvariant: after any sequence of Dirty/Clean pairs, an
// object has a holder iff some client issued Dirty without a matching Clean.
func TestQuickLeaseInvariant(t *testing.T) {
	f := func(ops []struct {
		Client uint8
		Obj    uint8
		Clean  bool
	}) bool {
		tbl := NewTable(nil, WithLease(time.Hour))
		want := make(map[uint64]map[string]bool)
		seqs := make(map[string]uint64)
		for _, op := range ops {
			client := string(rune('a' + op.Client%8))
			obj := uint64(op.Obj % 8)
			seqs[client]++
			if op.Clean {
				tbl.Clean(client, seqs[client], []uint64{obj})
				if m := want[obj]; m != nil {
					delete(m, client)
				}
			} else {
				tbl.Dirty(client, seqs[client], []uint64{obj})
				if want[obj] == nil {
					want[obj] = make(map[string]bool)
				}
				want[obj][client] = true
			}
		}
		for obj := uint64(0); obj < 8; obj++ {
			if tbl.HolderCount(obj) != len(want[obj]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStaleDirtyCannotResurrect reproduces the dirty/clean race the
// sequence numbers exist for: a dirty issued before a clean but delivered
// after it must not revive the lease.
func TestStaleDirtyCannotResurrect(t *testing.T) {
	var collected []uint64
	tbl := NewTable(func(id uint64) { collected = append(collected, id) }, WithLease(time.Hour))
	tbl.Dirty("c1", 1, []uint64{5})
	tbl.Clean("c1", 3, []uint64{5})
	if len(collected) != 1 {
		t.Fatalf("collected %v", collected)
	}
	tbl.Dirty("c1", 2, []uint64{5}) // stale: sequenced before the clean
	if n := tbl.HolderCount(5); n != 0 {
		t.Fatalf("stale dirty resurrected lease, holders = %d", n)
	}
	// A genuinely newer dirty is honoured.
	tbl.Dirty("c1", 4, []uint64{5})
	if n := tbl.HolderCount(5); n != 1 {
		t.Fatalf("fresh dirty ignored, holders = %d", n)
	}
}

func TestStaleCleanIgnored(t *testing.T) {
	tbl := NewTable(nil, WithLease(time.Hour))
	tbl.Dirty("c1", 5, []uint64{9})
	tbl.Clean("c1", 3, []uint64{9}) // stale clean sequenced before the dirty
	if n := tbl.HolderCount(9); n != 1 {
		t.Fatalf("stale clean dropped lease, holders = %d", n)
	}
}

func TestForceClean(t *testing.T) {
	var collected []uint64
	tbl := NewTable(func(id uint64) { collected = append(collected, id) }, WithLease(time.Hour))
	tbl.Dirty("__marshal", 0, []uint64{7})
	tbl.ForceClean("__marshal", []uint64{7})
	if len(collected) != 1 || collected[0] != 7 {
		t.Fatalf("collected %v, want [7]", collected)
	}
	// ForceClean on absent holders is a no-op.
	tbl.ForceClean("__marshal", []uint64{7, 8})
}

func TestConcurrentDirtyClean(t *testing.T) {
	tbl := NewTable(nil, WithLease(time.Hour))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := string(rune('a' + i))
			for j := 0; j < 100; j++ {
				tbl.Dirty(client, uint64(2*j+1), []uint64{uint64(j % 4)})
				tbl.Clean(client, uint64(2*j+2), []uint64{uint64(j % 4)})
			}
		}(i)
	}
	wg.Wait()
	for obj := uint64(0); obj < 4; obj++ {
		if n := tbl.HolderCount(obj); n != 0 {
			t.Fatalf("object %d holders = %d after balanced ops", obj, n)
		}
	}
}
