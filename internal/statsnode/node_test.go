package statsnode_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/clustertest"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/statsnode"
)

// drive runs a small BRMI workload against every server so all four
// instrumented layers have traffic to report.
func drive(t *testing.T, c *clustertest.Cluster) {
	t.Helper()
	ctx := context.Background()
	for _, s := range c.Servers {
		b := core.New(c.Client, s.Ref)
		p := b.Root()
		for i := 0; i < 5; i++ {
			p.Call("Add", int64(1))
		}
		f := p.Call("Get")
		if err := b.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Get(); err != nil {
			t.Fatal(err)
		}
	}
}

// hasName reports whether the snapshot carries a series with the name, in
// any section — presence matters even at value zero (a scrape that silently
// drops a layer would alias "not instrumented" with "no traffic").
func hasName(s *stats.Snapshot, name string) bool {
	for _, v := range s.Counters {
		if v.Name == name {
			return true
		}
	}
	for _, v := range s.Gauges {
		if v.Name == name {
			return true
		}
	}
	for _, h := range s.Hists {
		if h.Name == name {
			return true
		}
	}
	return false
}

// TestScrapeClusterCoversAllLayers is the tentpole acceptance check: ONE
// cluster batch flush returns every server's snapshot, and each snapshot
// carries live series from all four instrumented layers.
func TestScrapeClusterCoversAllLayers(t *testing.T) {
	c := clustertest.New(t, 3)
	drive(t, c)

	snaps, err := statsnode.ScrapeCluster(context.Background(), c.Client, c.Endpoints())
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != len(c.Servers) {
		t.Fatalf("scraped %d servers, want %d", len(snaps), len(c.Servers))
	}
	for ep, s := range snaps {
		// Transport: the server decoded our request frames.
		if got := s.Counter("transport.frames_in"); got == 0 {
			t.Errorf("%s: transport.frames_in = 0, want > 0", ep)
		}
		// Wire: decoding those requests went through the timed codec path.
		if h := s.Hist("wire.decode_ns"); h == nil || h.Count == 0 {
			t.Errorf("%s: wire.decode_ns empty, want observations", ep)
		}
		// Core: the executor replayed our batch.
		if got := s.Counter("core.calls_executed"); got < 6 {
			t.Errorf("%s: core.calls_executed = %d, want >= 6", ep, got)
		}
		if h := s.Hist("core.wave_ns"); h == nil || h.Count == 0 {
			t.Errorf("%s: core.wave_ns empty, want observations", ep)
		}
		// Cluster: the node service publishes its ring epoch and migration
		// counters even before any membership change.
		// The replication service's counters must be present even on a
		// cluster that never replicated or failed over — brmitop's REPL
		// column reads them unconditionally.
		for _, name := range []string{"cluster.ring_epoch", "cluster.arrivals", "cluster.departs",
			"cluster.replica_appends", "cluster.promotions"} {
			if !hasName(s, name) {
				t.Errorf("%s: snapshot missing %s", ep, name)
			}
		}
	}
}

// TestScrapeIsOneWave pins the cost claim: scraping k servers is a single
// parallel round-trip wave, not k round trips.
func TestScrapeIsOneWave(t *testing.T) {
	c := clustertest.New(t, 3)
	b := cluster.New(c.Client, cluster.WithSingleStage())
	futs := make([]*cluster.Future, len(c.Servers))
	for i, s := range c.Servers {
		futs[i] = b.Root(statsnode.Ref(s.Endpoint)).Call("Scrape")
	}
	if err := b.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := b.Waves(); got != 1 {
		t.Fatalf("scrape flush took %d waves, want 1", got)
	}
	for i, f := range futs {
		v, err := f.Get()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := v.(*stats.Snapshot); !ok {
			t.Fatalf("server %d: Scrape returned %T, want *stats.Snapshot", i, v)
		}
	}
}

func TestScrapePartialFailure(t *testing.T) {
	c := clustertest.New(t, 2)
	eps := append(c.Endpoints(), "server-down")
	snaps, err := statsnode.ScrapeCluster(context.Background(), c.Client, eps)
	if err == nil {
		t.Fatal("scrape with an unreachable server reported no error")
	}
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots despite one down server, want 2", len(snaps))
	}
}

func TestViewRows(t *testing.T) {
	c := clustertest.New(t, 3)
	drive(t, c)
	ctx := context.Background()
	prev, err := statsnode.ScrapeCluster(ctx, c.Client, c.Endpoints())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, c)
	cur, err := statsnode.ScrapeCluster(ctx, c.Client, c.Endpoints())
	if err != nil {
		t.Fatal(err)
	}

	rows := statsnode.BuildRows(cur, prev, time.Second)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Calls < 6 {
			t.Errorf("%s: Calls = %d, want >= 6", r.Server, r.Calls)
		}
		if r.QPS <= 0 {
			t.Errorf("%s: QPS = %v, want > 0 (second sample saw more calls)", r.Server, r.QPS)
		}
		if r.WaveP99 < r.WaveP50 {
			t.Errorf("%s: wave p99 %v < p50 %v", r.Server, r.WaveP99, r.WaveP50)
		}
		if r.Stale {
			t.Errorf("%s: marked epoch-stale in a uniform cluster", r.Server)
		}
	}

	var sb strings.Builder
	statsnode.RenderTable(&sb, rows)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want header + 3 rows:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "SERVER") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(lines[0], "REPL") {
		t.Errorf("header missing REPL column:\n%s", out)
	}
	for _, s := range c.Servers {
		if !strings.Contains(out, s.Endpoint) {
			t.Errorf("table missing %s:\n%s", s.Endpoint, out)
		}
	}
}
