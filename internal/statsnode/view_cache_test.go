package statsnode_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/statsnode"
)

// TestCacheHitColumn: the CACHE column shows the lease-cache hit rate for
// processes that run a client cache and "-" for those that don't.
func TestCacheHitColumn(t *testing.T) {
	withCache := stats.New()
	withCache.Counter("cache.hits").Add(3)
	withCache.Counter("cache.misses").Add(1)
	cur := map[string]*stats.Snapshot{
		"client":   withCache.Snapshot(),
		"server-0": stats.New().Snapshot(),
	}
	rows := statsnode.BuildRows(cur, nil, time.Second)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Server != "client" || rows[0].CacheHit != 0.75 {
		t.Errorf("client row CacheHit = %v, want 0.75", rows[0].CacheHit)
	}
	if rows[1].CacheHit != -1 {
		t.Errorf("cacheless server CacheHit = %v, want -1 sentinel", rows[1].CacheHit)
	}

	var sb strings.Builder
	statsnode.RenderTable(&sb, rows)
	out := sb.String()
	if !strings.Contains(strings.Split(out, "\n")[0], "CACHE") {
		t.Errorf("header missing CACHE column:\n%s", out)
	}
	if !strings.Contains(out, "75%") {
		t.Errorf("client hit rate not rendered:\n%s", out)
	}
}
