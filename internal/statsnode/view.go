package statsnode

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
	"unicode/utf8"

	"repro/internal/stats"
)

// view.go derives the brmitop ops table from raw scrape snapshots: rates
// need two scrapes (QPS is a counter delta over the sample interval),
// everything else reads off the latest snapshot. The derivation lives here
// rather than in cmd/brmitop so examples and tests render the exact same
// view the CLI shows.

// Row is one server's line of the ops view.
type Row struct {
	Server string
	// Calls is the cumulative count of calls the server's executor ran.
	Calls int64
	// QPS is the executed-call rate over the sample interval (0 on the
	// first sample: rates need a previous scrape to diff against).
	QPS float64
	// WaveP50 and WaveP99 are executor replay-wave latency quantiles.
	WaveP50, WaveP99 time.Duration
	// PoolHit is the transport buffer-pool hit rate in [0,1] (-1 when the
	// pool was never used).
	PoolHit float64
	// CodecReuse is the wire encoder/decoder state reuse rate in [0,1]
	// (-1 when no codec state was ever fetched).
	CodecReuse float64
	// CacheHit is the lease-cache hit rate for readonly calls in [0,1]
	// (-1 when the process runs no client cache — servers usually don't;
	// the column lights up on client pseudo-rows and co-located clients).
	CacheHit float64
	// MigRemaining and MigMoved describe rebalancer-side migration progress
	// (nonzero only when the scraped process drives migrations); Arrivals
	// and Departs are the server-side view — objects adopted by and released
	// from this member since it started.
	MigRemaining, MigMoved int64
	Arrivals, Departs      int64
	// ReplAppends and Promotions describe the replication side: records this
	// member appended to follower shard logs, and shadows it turned
	// authoritative during failovers.
	ReplAppends, Promotions int64
	// StreamsOpen is the number of chunked streams live right now (response
	// streaming and oversized calls both ride them); StreamChunks is the
	// cumulative chunk count moved in either direction.
	StreamsOpen, StreamChunks int64
	// Epoch is the server's ring epoch; Stale marks it behind the
	// cluster-wide maximum (epoch skew).
	Epoch int64
	Stale bool
}

// ratio returns num/(num+den) guarding the empty case with -1.
func ratio(num, den int64) float64 {
	if num+den == 0 {
		return -1
	}
	return float64(num) / float64(num+den)
}

// BuildRows derives one Row per server from the current scrape, using prev
// (the scrape one interval ago, nil on the first sample) for rates. Rows
// are sorted by server endpoint; epoch skew is judged against the maximum
// epoch in cur.
func BuildRows(cur, prev map[string]*stats.Snapshot, elapsed time.Duration) []Row {
	servers := make([]string, 0, len(cur))
	var maxEpoch int64
	for ep, s := range cur {
		servers = append(servers, ep)
		if e := s.Gauge("cluster.ring_epoch"); e > maxEpoch {
			maxEpoch = e
		}
	}
	sort.Strings(servers)
	rows := make([]Row, 0, len(servers))
	for _, ep := range servers {
		s := cur[ep]
		r := Row{
			Server: ep,
			Calls:  s.Counter("core.calls_executed"),
			PoolHit: ratio(s.Gauge("transport.pool_hit"),
				s.Gauge("transport.pool_miss")),
			MigRemaining: s.Gauge("cluster.migration_remaining"),
			MigMoved:     s.Counter("cluster.migration_moved"),
			Arrivals:     s.Counter("cluster.arrivals"),
			Departs:      s.Counter("cluster.departs"),
			ReplAppends:  s.Counter("cluster.replica_appends"),
			Promotions:   s.Counter("cluster.promotions"),
			StreamsOpen:  s.Gauge("transport.streams_open"),
			StreamChunks: s.Counter("transport.chunks_in") + s.Counter("transport.chunks_out"),
			Epoch:        s.Gauge("cluster.ring_epoch"),
		}
		gets := s.Gauge("wire.enc_state_gets") + s.Gauge("wire.dec_state_gets")
		allocs := s.Gauge("wire.enc_state_allocs") + s.Gauge("wire.dec_state_allocs")
		r.CodecReuse = ratio(gets-allocs, allocs)
		r.CacheHit = ratio(s.Counter("cache.hits"), s.Counter("cache.misses"))
		if h := s.Hist("core.wave_ns"); h != nil && h.Count > 0 {
			r.WaveP50 = time.Duration(h.Quantile(0.50))
			r.WaveP99 = time.Duration(h.Quantile(0.99))
		}
		if prev != nil && elapsed > 0 {
			if p := prev[ep]; p != nil {
				d := r.Calls - p.Counter("core.calls_executed")
				if d > 0 {
					r.QPS = float64(d) / elapsed.Seconds()
				}
			}
		}
		r.Stale = r.Epoch < maxEpoch
		rows = append(rows, r)
	}
	return rows
}

// pct renders a [0,1] rate, or "-" for the never-used sentinel.
func pct(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", v*100)
}

// dur renders a latency quantile compactly (0 → "-").
func dur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	switch {
	case d < 10*time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d/time.Microsecond)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// RenderTable writes the ops table. Columns: server, cumulative executed
// calls, QPS over the last interval, executor wave p50/p99, transport
// buffer-pool hit rate, wire codec-state reuse rate, readonly lease-cache
// hit rate ("-" where no cache runs), migration state, replication state
// (appended follower-log records, "+N promoted" after a failover recovered
// shadows here), chunked-stream activity ("-" when nothing ever streamed,
// else "open/chunks"), and ring epoch
// ("!" marks a server behind the cluster-wide maximum — epoch skew, i.e.
// a ring broadcast it has not adopted yet).
func RenderTable(w io.Writer, rows []Row) {
	const header = "SERVER\tCALLS\tQPS\tWAVE p50\tWAVE p99\tPOOL\tCODEC\tCACHE\tMIGRATION\tREPL\tSTREAM\tEPOCH"
	lines := make([][]string, 0, len(rows)+1)
	lines = append(lines, strings.Split(header, "\t"))
	for _, r := range rows {
		mig := "idle"
		switch {
		case r.MigRemaining > 0:
			mig = fmt.Sprintf("%d draining", r.MigRemaining)
		case r.MigMoved > 0:
			mig = fmt.Sprintf("%d moved", r.MigMoved)
		case r.Arrivals > 0 || r.Departs > 0:
			mig = fmt.Sprintf("+%d/-%d", r.Arrivals, r.Departs)
		}
		repl := "-"
		switch {
		case r.Promotions > 0:
			repl = fmt.Sprintf("%d +%d promoted", r.ReplAppends, r.Promotions)
		case r.ReplAppends > 0:
			repl = fmt.Sprintf("%d", r.ReplAppends)
		}
		stream := "-"
		if r.StreamsOpen > 0 || r.StreamChunks > 0 {
			stream = fmt.Sprintf("%d/%d", r.StreamsOpen, r.StreamChunks)
		}
		epoch := fmt.Sprintf("%d", r.Epoch)
		if r.Stale {
			epoch += " !"
		}
		qps := "-"
		if r.QPS > 0 {
			qps = fmt.Sprintf("%.0f", r.QPS)
		}
		lines = append(lines, []string{
			r.Server,
			fmt.Sprintf("%d", r.Calls),
			qps,
			dur(r.WaveP50),
			dur(r.WaveP99),
			pct(r.PoolHit),
			pct(r.CodecReuse),
			pct(r.CacheHit),
			mig,
			repl,
			stream,
			epoch,
		})
	}
	// Column-align without text/tabwriter state: fixed widths per column,
	// computed over this render. Widths count runes, not bytes — the µ in
	// latency cells is multi-byte and would skew every column after it.
	widths := make([]int, len(lines[0]))
	for _, cells := range lines {
		for i, c := range cells {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	for _, cells := range lines {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c))
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
}
