// Package statsnode exposes a server's metrics registry as the stats.Node
// system RMI service, making the monitoring plane a first-class consumer of
// the batching runtime it observes: ScrapeCluster records one Scrape per
// server into a single-stage cluster batch, so a whole-cluster scrape costs
// exactly one parallel round-trip wave regardless of cluster size — the
// same amortization argument the paper makes for application traffic
// (§3.2), applied to operations tooling.
//
// The service is exported at the reserved rmi.StatsObjID alongside the
// registry, BRMI executor, and cluster node services, so any instrumented
// serving peer is scrapeable with no extra wiring.
package statsnode

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/rmi"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Node is the per-server metrics scrape service, exported at the reserved
// rmi.StatsObjID. Scrape hands out a consistent point-in-time snapshot of
// the server's registry; the snapshot is plain wire-encodable data, so it
// travels through the ordinary call path like any other result.
type Node struct {
	rmi.RemoteBase

	reg *stats.Registry
}

// Start exports a stats scrape service on p at the reserved stats id,
// serving snapshots of p's registry (rmi.WithStatsRegistry). It fails on
// an uninstrumented peer: exporting a scrape service with nothing to
// scrape would hide the missing wiring behind empty snapshots.
func Start(p *rmi.Peer) (*Node, error) {
	reg := p.Stats()
	if reg == nil {
		return nil, errors.New("statsnode: peer has no stats registry (build it with rmi.WithStatsRegistry)")
	}
	n := &Node{reg: reg}
	if _, err := p.ExportSystem(rmi.StatsObjID, n, rmi.StatsIface); err != nil {
		return nil, fmt.Errorf("statsnode: start: %w", err)
	}
	return n, nil
}

// Scrape returns a point-in-time snapshot of this server's registry.
func (n *Node) Scrape() *stats.Snapshot {
	return n.reg.Snapshot()
}

// Ref builds the well-known reference of the stats service at endpoint.
func Ref(endpoint string) wire.Ref {
	return rmi.SystemRef(endpoint, rmi.StatsObjID, rmi.StatsIface)
}

// ScrapeCluster snapshots every endpoint's registry in ONE single-stage
// cluster batch flush: the Scrape calls fan out to all servers in parallel
// and the whole scrape costs one round-trip wave. Per-server failures are
// partial: reachable servers still land in the returned map, and the error
// joins the failures (nil when every server answered).
func ScrapeCluster(ctx context.Context, peer *rmi.Peer, endpoints []string) (map[string]*stats.Snapshot, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("statsnode: scrape: no endpoints")
	}
	b := cluster.New(peer, cluster.WithSingleStage())
	futs := make([]*cluster.Future, len(endpoints))
	for i, ep := range endpoints {
		futs[i] = b.Root(Ref(ep)).Call("Scrape")
	}
	flushErr := b.Flush(ctx)
	out := make(map[string]*stats.Snapshot, len(endpoints))
	var errs []error
	for i, ep := range endpoints {
		v, err := futs[i].Get()
		if err != nil {
			errs = append(errs, fmt.Errorf("statsnode: scrape %s: %w", ep, err))
			continue
		}
		snap, ok := v.(*stats.Snapshot)
		if !ok {
			errs = append(errs, fmt.Errorf("statsnode: scrape %s: unexpected result %T", ep, v))
			continue
		}
		out[ep] = snap
	}
	if len(errs) == 0 && flushErr != nil {
		// Defensive: a flush failure whose futures all settled anyway.
		errs = append(errs, flushErr)
	}
	return out, errors.Join(errs...)
}
