package rmi_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/rmi"
	"repro/internal/wire"
)

// kitchen exercises the argument-conversion matrix of the dispatch layer.
type kitchen struct {
	rmi.RemoteBase
}

type settings struct {
	Name  string
	Knobs map[string]int64
}

func (k *kitchen) Float32In(f float32) float64    { return float64(f) }
func (k *kitchen) Uints(a uint8, b uint64) uint64 { return uint64(a) + b }
func (k *kitchen) FloatFromInt(f float64) float64 { return f * 2 }
func (k *kitchen) IntFromFloat(n int) int         { return n + 1 }
func (k *kitchen) MapArg(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
func (k *kitchen) StructPtr(s *settings) string     { return s.Name }
func (k *kitchen) StructVal(s settings) int         { return len(s.Knobs) }
func (k *kitchen) Durations(d time.Duration) string { return d.String() }
func (k *kitchen) Times(t time.Time) int            { return t.Year() }
func (k *kitchen) Bytes(b []byte) int               { return len(b) }
func (k *kitchen) NilSlice(xs []int) int            { return len(xs) }
func (k *kitchen) Variadic(xs ...int) int           { return len(xs) }

func init() {
	wire.MustRegister("rmitest.Settings", settings{})
}

func kitchenPair(t *testing.T) (*rmi.Peer, wire.Ref) {
	t.Helper()
	server, client := newPair(t)
	ref, err := server.Export(&kitchen{}, "test.Kitchen")
	if err != nil {
		t.Fatal(err)
	}
	return client, ref
}

func TestDispatchArgumentConversions(t *testing.T) {
	client, ref := kitchenPair(t)
	ctx := context.Background()
	tests := []struct {
		name   string
		method string
		args   []any
		want   any
	}{
		{"float32 param", "Float32In", []any{float32(1.5)}, 1.5},
		{"uint widths", "Uints", []any{uint8(2), uint64(40)}, uint64(42)},
		{"int arg into float param", "FloatFromInt", []any{3}, 6.0},
		{"map arg", "MapArg", []any{map[string]int{"a": 1, "b": 2}}, int64(3)},
		{"struct ptr param from value", "StructPtr", []any{settings{Name: "cfg"}}, "cfg"},
		{"struct val param", "StructVal", []any{settings{Knobs: map[string]int64{"x": 1}}}, int64(1)},
		{"duration", "Durations", []any{1500 * time.Millisecond}, "1.5s"},
		{"time", "Times", []any{time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)}, int64(2009)},
		{"bytes", "Bytes", []any{[]byte{1, 2, 3}}, int64(3)},
		{"nil slice", "NilSlice", []any{nil}, int64(0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := client.Call(ctx, ref, tt.method, tt.args...)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 1 || res[0] != tt.want {
				t.Fatalf("got %#v (%T), want %#v", res[0], res[0], tt.want)
			}
		})
	}
}

func TestDispatchRejectsVariadic(t *testing.T) {
	client, ref := kitchenPair(t)
	if _, err := client.Call(context.Background(), ref, "Variadic", 1, 2); err == nil {
		t.Fatal("variadic remote method accepted")
	}
}

func TestDispatchRejectsWrongArgType(t *testing.T) {
	client, ref := kitchenPair(t)
	if _, err := client.Call(context.Background(), ref, "MapArg", "not a map"); err == nil {
		t.Fatal("string accepted as map parameter")
	}
}

func TestRegistryAndSystemRefHelpers(t *testing.T) {
	ref := rmi.SystemRef("ep", rmi.RegistryObjID, rmi.RegistryIface)
	if ref.Endpoint != "ep" || ref.ObjID != rmi.RegistryObjID || ref.Iface != rmi.RegistryIface {
		t.Fatalf("SystemRef = %+v", ref)
	}
}

func TestUnexportedMethodsHidden(t *testing.T) {
	client, ref := kitchenPair(t)
	if _, err := client.Call(context.Background(), ref, "remoteObject"); err == nil {
		t.Fatal("marker method callable remotely")
	}
}
