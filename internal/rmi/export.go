package rmi

import (
	"fmt"
	"sync"
)

// exportTable maps object ids to live objects, preserving identity: the
// same object exported twice receives the same id.
type exportTable struct {
	mu     sync.Mutex
	byID   map[uint64]*export
	byObj  map[any]uint64
	nextID uint64
}

type export struct {
	obj    any
	iface  string
	pinned bool // explicit exports survive DGC; auto-exports do not
}

func newExportTable() *exportTable {
	return &exportTable{
		byID:   make(map[uint64]*export),
		byObj:  make(map[any]uint64),
		nextID: FirstUserObjID,
	}
}

// add exports obj under iface and returns its id. Re-exporting the same
// object returns the existing id; pinning is sticky (an auto-export later
// exported explicitly becomes pinned).
func (t *exportTable) add(obj any, iface string, pinned bool) (uint64, error) {
	if obj == nil {
		return 0, fmt.Errorf("rmi: export nil object")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byObj[obj]; ok {
		e := t.byID[id]
		if pinned {
			e.pinned = true
		}
		if iface != "" && e.iface != iface {
			return 0, fmt.Errorf("rmi: object already exported as %q, cannot re-export as %q", e.iface, iface)
		}
		return id, nil
	}
	id := t.nextID
	t.nextID++
	t.byID[id] = &export{obj: obj, iface: iface, pinned: pinned}
	t.byObj[obj] = id
	return id, nil
}

// addAt installs a system service at a reserved id.
func (t *exportTable) addAt(id uint64, obj any, iface string) error {
	if id >= FirstUserObjID {
		return fmt.Errorf("rmi: system export id %d not reserved", id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; ok {
		return fmt.Errorf("rmi: system id %d already exported", id)
	}
	t.byID[id] = &export{obj: obj, iface: iface, pinned: true}
	t.byObj[obj] = id
	return nil
}

// get looks up the export for id.
func (t *exportTable) get(id uint64) (*export, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.byID[id]
	return e, ok
}

// idOf returns the id of an exported object, if any.
func (t *exportTable) idOf(obj any) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.byObj[obj]
	return id, ok
}

// collect removes an auto-exported object; pinned exports are retained.
// It reports whether the object was removed.
func (t *exportTable) collect(id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.byID[id]
	if !ok || e.pinned {
		return false
	}
	delete(t.byID, id)
	delete(t.byObj, e.obj)
	return true
}

// remove unexports id unconditionally, reporting whether it existed.
func (t *exportTable) remove(id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.byID[id]
	if !ok {
		return false
	}
	delete(t.byID, id)
	delete(t.byObj, e.obj)
	return true
}

// size returns the number of exported objects (system services included).
func (t *exportTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}
