// Package rmi implements the distributed object runtime that plays the role
// of Java RMI in the paper: exported remote objects, client stubs, remote
// references, reflection-based server dispatch, remote exceptions, and
// lease-based distributed garbage collection.
//
// Semantics deliberately mirror Java RMI (paper §2, §4.4):
//
//   - Objects whose type embeds RemoteBase are passed by remote reference;
//     everything else is passed by copy through internal/wire.
//   - A remote object marshalled out of its server travels as a Ref and
//     arrives as a stub.
//   - A stub marshalled back to the server that owns the referenced object
//     REMAINS a stub: invocations on it loop back through the network, and
//     identity with the original object is lost. This is the RMI deficiency
//     the paper exploits (Figures 9-11); the BRMI layer in internal/core
//     restores identity by replaying calls server-side. The WithLocalShortcut
//     option switches the substrate to resolve such refs locally, used as an
//     ablation baseline.
//
// Go has no dynamic proxies, so typed stubs are produced by cmd/brmigen
// (registered via RegisterStubFactory); the dynamic Invoker API works
// without code generation.
package rmi

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/wire"
)

// Remote marks objects that are passed by remote reference. Implementations
// embed RemoteBase, mirroring "extends Remote" in Java RMI.
type Remote interface {
	remoteObject()
}

// RemoteBase is embedded by remote object implementations to mark them as
// passed-by-reference.
type RemoteBase struct{}

func (RemoteBase) remoteObject() {}

// Invoker is the dynamic client-side view of a remote object. The generic
// *Stub implements it, as do all generated typed stubs.
type Invoker interface {
	// Invoke calls the named method with the given arguments and returns the
	// method's non-error results.
	Invoke(ctx context.Context, method string, args ...any) ([]any, error)
	// Ref returns the remote reference this invoker points at.
	Ref() wire.Ref
}

// RefHolder is the subset of Invoker used when marshalling: anything that
// can reveal a remote reference travels as that reference.
type RefHolder interface {
	Ref() wire.Ref
}

// Reserved object identifiers for system services. User objects are
// numbered from FirstUserObjID.
const (
	DGCObjID      uint64 = 0 // lease service (always exported by serving peers)
	RegistryObjID uint64 = 1 // naming service (internal/registry)
	BatchObjID    uint64 = 2 // BRMI batch executor (internal/core)
	NodeObjID     uint64 = 3 // cluster membership/migration service (internal/cluster)
	StatsObjID    uint64 = 4 // metrics scrape service (internal/statsnode)
	ReplicaObjID  uint64 = 5 // shard replication service (internal/cluster)

	// FirstUserObjID is the first identifier handed to application exports.
	FirstUserObjID uint64 = 16
)

// Interface names of the system services.
const (
	DGCIface      = "rmi.DGC"
	RegistryIface = "rmi.Registry"
	BatchIface    = "rmi.BatchService"
	NodeIface     = "cluster.Node"
	StatsIface    = "stats.Node"
	ReplicaIface  = "cluster.Replica"
)

// SystemRef builds the well-known reference of a system service at endpoint.
func SystemRef(endpoint string, objID uint64, iface string) wire.Ref {
	return wire.Ref{Endpoint: endpoint, ObjID: objID, Iface: iface}
}

// Exported errors.
var (
	// ErrClientOnly reports an operation that requires a serving peer
	// (exporting objects needs an endpoint for refs to point at).
	ErrClientOnly = errors.New("rmi: peer is not serving")

	// ErrClosed reports use of a closed peer.
	ErrClosed = errors.New("rmi: peer closed")
)

// RemoteException wraps communication-level failures, mirroring
// java.rmi.RemoteException: it marks errors raised by the plumbing rather
// than by the application method.
type RemoteException struct {
	Op       string // "dial", "call", "decode", ...
	Endpoint string
	Err      error
}

func (e *RemoteException) Error() string {
	return fmt.Sprintf("rmi: %s %s: %v", e.Op, e.Endpoint, e.Err)
}

func (e *RemoteException) Unwrap() error { return e.Err }

// NoSuchObjectError reports a call on an object id absent from the server's
// export table (e.g. collected by DGC).
type NoSuchObjectError struct {
	ObjID uint64
}

func (e *NoSuchObjectError) Error() string {
	return fmt.Sprintf("rmi: no such object %d", e.ObjID)
}

// WrongHomeError reports a call routed with a stale shard map: the target
// object lived here once but was migrated to a new home when the cluster
// membership changed at epoch NewEpoch. Key is the cluster-wide name the
// object was bound under; the caller re-resolves it against a ring at least
// as new as NewEpoch and retries at the new home.
type WrongHomeError struct {
	Key      string
	NewEpoch uint64
}

func (e *WrongHomeError) Error() string {
	return fmt.Sprintf("rmi: wrong home for %q (moved at epoch %d)", e.Key, e.NewEpoch)
}

// NoSuchMethodError reports a call on a method the target does not have.
type NoSuchMethodError struct {
	Iface  string
	Method string
}

func (e *NoSuchMethodError) Error() string {
	return fmt.Sprintf("rmi: no such method %s.%s", e.Iface, e.Method)
}

// callRequest is the wire form of one remote invocation.
type callRequest struct {
	ObjID  uint64
	Method string
	Args   []any
}

// callResponse is the wire form of an invocation result. Err carries
// application errors (typed, when registered) as well as dispatch errors.
type callResponse struct {
	Results []any
	Err     error
}

// dgcRequest/dgcResponse would be separate in Java's DGC protocol; here DGC
// calls ride the normal call path against DGCObjID.

// Compiled wire codecs (wire.RegisterCompiled) for the two call envelopes:
// every remote invocation encodes and decodes one of each, so they skip the
// reflection plan. Wire form is identical to the generic encoding.

func encCallRequest(x wire.Enc, r *callRequest) error {
	n := 3
	if r.Args == nil {
		n = 2
		if r.Method == "" {
			n = 1
			if r.ObjID == 0 {
				n = 0
			}
		}
	}
	x.BeginStruct("rmi.call.req", n)
	if n > 0 {
		x.Uint(r.ObjID)
	}
	if n > 1 {
		x.Str(r.Method)
	}
	if n > 2 {
		x.Slice(len(r.Args))
		for _, a := range r.Args {
			if err := x.Value(a); err != nil {
				return err
			}
		}
	}
	return nil
}

func decCallRequest(x wire.Dec, r *callRequest, n int) error {
	var err error
	if n > 0 {
		if r.ObjID, err = x.Uint(); err != nil {
			return err
		}
	}
	if n > 1 {
		if r.Method, err = x.Str(); err != nil {
			return err
		}
	}
	if n > 2 {
		an, err := x.SliceLen()
		if err != nil {
			return err
		}
		if an >= 0 {
			r.Args = make([]any, an)
			for i := range r.Args {
				if r.Args[i], err = x.Value(); err != nil {
					return err
				}
			}
		}
	}
	return x.SkipFields(n - 3)
}

func encCallResponse(x wire.Enc, r *callResponse) error {
	n := 2
	if r.Err == nil {
		n = 1
		if r.Results == nil {
			n = 0
		}
	}
	x.BeginStruct("rmi.call.resp", n)
	if n > 0 {
		if r.Results == nil {
			x.Nil()
		} else {
			x.Slice(len(r.Results))
			for _, v := range r.Results {
				if err := x.Value(v); err != nil {
					return err
				}
			}
		}
	}
	if n > 1 {
		if err := x.Value(r.Err); err != nil {
			return err
		}
	}
	return nil
}

func decCallResponse(x wire.Dec, r *callResponse, n int) error {
	if n > 0 {
		rn, err := x.SliceLen()
		if err != nil {
			return err
		}
		if rn >= 0 {
			r.Results = make([]any, rn)
			for i := range r.Results {
				if r.Results[i], err = x.Value(); err != nil {
					return err
				}
			}
		}
	}
	if n > 1 {
		var err error
		if r.Err, err = x.ErrVal(); err != nil {
			return err
		}
	}
	return x.SkipFields(n - 2)
}

func init() {
	// Wire registration of protocol messages and protocol-level errors.
	// This is codec type registration (the canonical init() exception):
	// deterministic, order-independent, no I/O.
	wire.MustRegisterCompiled("rmi.call.req", true, encCallRequest, decCallRequest)
	wire.MustRegisterCompiled("rmi.call.resp", true, encCallResponse, decCallResponse)
	wire.MustRegisterError("rmi.NoSuchObject", &NoSuchObjectError{})
	wire.MustRegisterError("rmi.NoSuchMethod", &NoSuchMethodError{})
	wire.MustRegisterError("rmi.WrongHome", &WrongHomeError{})
}
