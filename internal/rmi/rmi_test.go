package rmi_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/rmi"
	"repro/internal/wire"
)

func silentLogf(string, ...any) {}

// --- test remote objects ---------------------------------------------------

type mathError struct {
	Op string
}

func (e *mathError) Error() string { return "math error in " + e.Op }

type calc struct {
	rmi.RemoteBase
}

func (c *calc) Add(a, b int) int     { return a + b }
func (c *calc) Echo(s string) string { return s }
func (c *calc) Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
func (c *calc) Nothing() {}
func (c *calc) MinMax(xs []int) (int, int) {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func (c *calc) Divide(a, b float64) (float64, error) {
	if b == 0 {
		return 0, &mathError{Op: "Divide"}
	}
	return a / b, nil
}

func (c *calc) WithCtx(ctx context.Context, s string) (string, error) {
	if ctx == nil {
		return "", errors.New("nil ctx")
	}
	return "ctx:" + s, nil
}

func (c *calc) Panics() { panic("deliberate") }

func (c *calc) Describe(p point) string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

type point struct {
	X, Y int
}

// node is a remote object returned by reference.
type node struct {
	rmi.RemoteBase
	val int
}

func (n *node) Value() int { return n.val }

// identitySvc reproduces the paper's §4.4 remote-reference-identity example.
type identitySvc struct {
	rmi.RemoteBase
	created *node
}

func (s *identitySvc) Create() *node {
	s.created = &node{val: 42}
	return s.created
}

// IsSame reports whether the argument is the identical object returned by
// Create — the assertion that fails under Java RMI semantics.
func (s *identitySvc) IsSame(n any) bool { return n == any(s.created) }

// ReadValue reads the node's value through whatever form the argument
// arrived in: local object (shortcut mode) or loopback stub (faithful mode).
func (s *identitySvc) ReadValue(ctx context.Context, n any) (int, error) {
	switch x := n.(type) {
	case *node:
		return x.Value(), nil
	case rmi.Invoker:
		res, err := x.Invoke(ctx, "Value")
		if err != nil {
			return 0, err
		}
		return int(res[0].(int64)), nil
	default:
		return 0, fmt.Errorf("unexpected arg type %T", n)
	}
}

// CreateMany returns a slice of remote objects; each element must marshal
// as its own reference (plain-RMI array behaviour, §3.4).
func (s *identitySvc) CreateMany(n int) []*node {
	out := make([]*node, n)
	for i := range out {
		out[i] = &node{val: i}
	}
	return out
}

func init() {
	wire.MustRegisterError("rmitest.MathError", &mathError{})
	wire.MustRegister("rmitest.Point", point{})
	rmi.RegisterImpl("test.Node", &node{})
}

// --- fixtures ---------------------------------------------------------------

// newPair starts a serving peer and a client peer on a fresh instant network.
func newPair(t *testing.T, serverOpts ...rmi.Option) (server, client *rmi.Peer) {
	t.Helper()
	network := netsim.New(netsim.Instant)
	t.Cleanup(func() { _ = network.Close() })
	serverOpts = append([]rmi.Option{rmi.WithLogf(silentLogf)}, serverOpts...)
	server = rmi.NewPeer(network, serverOpts...)
	if err := server.Serve("server"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	client = rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	t.Cleanup(func() { _ = client.Close() })
	return server, client
}

func exportCalc(t *testing.T, server *rmi.Peer) wire.Ref {
	t.Helper()
	ref, err := server.Export(&calc{}, "test.Calc")
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// --- tests -------------------------------------------------------------------

func TestBasicCall(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	res, err := client.Call(context.Background(), ref, "Add", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].(int64) != 5 {
		t.Fatalf("got %#v", res)
	}
}

func TestStringAndVoidAndMultiReturn(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	ctx := context.Background()

	res, err := client.Call(ctx, ref, "Echo", "hello")
	if err != nil || res[0].(string) != "hello" {
		t.Fatalf("Echo: %v %#v", err, res)
	}

	res, err = client.Call(ctx, ref, "Nothing")
	if err != nil || len(res) != 0 {
		t.Fatalf("Nothing: %v %#v", err, res)
	}

	res, err = client.Call(ctx, ref, "MinMax", []int{5, -2, 9})
	if err != nil || len(res) != 2 || res[0].(int64) != -2 || res[1].(int64) != 9 {
		t.Fatalf("MinMax: %v %#v", err, res)
	}
}

func TestSliceArgConversion(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	res, err := client.Call(context.Background(), ref, "Sum", []int{1, 2, 3, 4})
	if err != nil || res[0].(int64) != 10 {
		t.Fatalf("got %v %#v", err, res)
	}
}

func TestStructByCopy(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	res, err := client.Call(context.Background(), ref, "Describe", point{X: 1, Y: 2})
	if err != nil || res[0].(string) != "(1,2)" {
		t.Fatalf("got %v %#v", err, res)
	}
}

func TestTypedErrorPropagates(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	_, err := client.Call(context.Background(), ref, "Divide", 1.0, 0.0)
	var me *mathError
	if !errors.As(err, &me) {
		t.Fatalf("got %v (%T), want *mathError", err, err)
	}
	if me.Op != "Divide" {
		t.Fatalf("got %+v", me)
	}
	// Success path still works on the same stub.
	res, err := client.Call(context.Background(), ref, "Divide", 1.0, 4.0)
	if err != nil || res[0].(float64) != 0.25 {
		t.Fatalf("got %v %#v", err, res)
	}
}

func TestContextParameterInjected(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	res, err := client.Call(context.Background(), ref, "WithCtx", "x")
	if err != nil || res[0].(string) != "ctx:x" {
		t.Fatalf("got %v %#v", err, res)
	}
}

func TestPanicBecomesErrorAndServerSurvives(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	_, err := client.Call(context.Background(), ref, "Panics")
	if err == nil {
		t.Fatal("panic did not surface as error")
	}
	// Server must still dispatch.
	if _, err := client.Call(context.Background(), ref, "Add", 1, 1); err != nil {
		t.Fatalf("server died after panic: %v", err)
	}
}

func TestNoSuchMethod(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	_, err := client.Call(context.Background(), ref, "NotThere")
	var nsm *rmi.NoSuchMethodError
	if !errors.As(err, &nsm) {
		t.Fatalf("got %v, want NoSuchMethodError", err)
	}
}

func TestNoSuchObjectAfterUnexport(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	if !server.Unexport(ref) {
		t.Fatal("unexport reported false")
	}
	_, err := client.Call(context.Background(), ref, "Add", 1, 2)
	var nso *rmi.NoSuchObjectError
	if !errors.As(err, &nso) {
		t.Fatalf("got %v, want NoSuchObjectError", err)
	}
}

func TestWrongArgCount(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	if _, err := client.Call(context.Background(), ref, "Add", 1); err == nil {
		t.Fatal("wrong arg count accepted")
	}
}

func TestExportIdentity(t *testing.T) {
	server, _ := newPair(t)
	c := &calc{}
	ref1, err := server.Export(c, "test.Calc")
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := server.Export(c, "test.Calc")
	if err != nil {
		t.Fatal(err)
	}
	if ref1 != ref2 {
		t.Fatalf("same object exported as %v and %v", ref1, ref2)
	}
	if _, err := server.Export(c, "test.Other"); err == nil {
		t.Fatal("re-export under different iface succeeded")
	}
}

func TestExportRequiresServing(t *testing.T) {
	network := netsim.New(netsim.Instant)
	defer network.Close()
	clientOnly := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	defer clientOnly.Close()
	if _, err := clientOnly.Export(&calc{}, "test.Calc"); !errors.Is(err, rmi.ErrClientOnly) {
		t.Fatalf("got %v, want ErrClientOnly", err)
	}
}

func TestRemoteReturnBecomesStub(t *testing.T) {
	server, client := newPair(t)
	svc := &identitySvc{}
	ref, err := server.Export(svc, "test.IdentitySvc")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := client.Call(ctx, ref, "Create")
	if err != nil {
		t.Fatal(err)
	}
	stub, ok := res[0].(*rmi.Stub)
	if !ok {
		t.Fatalf("got %T, want *rmi.Stub", res[0])
	}
	if stub.Ref().Iface != "test.Node" {
		t.Fatalf("iface = %q (RegisterImpl not honoured)", stub.Ref().Iface)
	}
	v, err := stub.InvokeOne(ctx, "Value")
	if err != nil || v.(int64) != 42 {
		t.Fatalf("Value via stub: %v %#v", err, v)
	}
}

// TestIdentityLostFaithfulRMI reproduces the paper's §4.4 observation: the
// stub passed back to its owning server is NOT the original object, and
// calls through it traverse the network (loopback).
func TestIdentityLostFaithfulRMI(t *testing.T) {
	server, client := newPair(t)
	svc := &identitySvc{}
	ref, err := server.Export(svc, "test.IdentitySvc")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := client.Call(ctx, ref, "Create")
	if err != nil {
		t.Fatal(err)
	}
	stub := res[0].(*rmi.Stub)

	same, err := client.Call(ctx, ref, "IsSame", stub)
	if err != nil {
		t.Fatal(err)
	}
	if same[0].(bool) {
		t.Fatal("faithful RMI semantics violated: arg == created object")
	}
	// The loopback call still reads the right value.
	val, err := client.Call(ctx, ref, "ReadValue", stub)
	if err != nil {
		t.Fatal(err)
	}
	if val[0].(int64) != 42 {
		t.Fatalf("loopback read %v", val[0])
	}
}

// TestIdentityWithLocalShortcut is the ablation: resolving refs locally
// restores identity (what RMI could do but does not).
func TestIdentityWithLocalShortcut(t *testing.T) {
	server, client := newPair(t, rmi.WithLocalShortcut())
	svc := &identitySvc{}
	ref, err := server.Export(svc, "test.IdentitySvc")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := client.Call(ctx, ref, "Create")
	if err != nil {
		t.Fatal(err)
	}
	same, err := client.Call(ctx, ref, "IsSame", res[0])
	if err != nil {
		t.Fatal(err)
	}
	if !same[0].(bool) {
		t.Fatal("local shortcut did not restore identity")
	}
}

func TestSliceOfRemotesMarshalsElementWise(t *testing.T) {
	server, client := newPair(t)
	ref, err := server.Export(&identitySvc{}, "test.IdentitySvc")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := client.Call(ctx, ref, "CreateMany", 3)
	if err != nil {
		t.Fatal(err)
	}
	elems, ok := res[0].([]any)
	if !ok {
		t.Fatalf("got %T", res[0])
	}
	if len(elems) != 3 {
		t.Fatalf("got %d elements", len(elems))
	}
	for i, el := range elems {
		stub, ok := el.(*rmi.Stub)
		if !ok {
			t.Fatalf("element %d is %T", i, el)
		}
		v, err := stub.InvokeOne(ctx, "Value")
		if err != nil || v.(int64) != int64(i) {
			t.Fatalf("element %d: %v %v", i, err, v)
		}
	}
}

func TestStubFactoryTypedStub(t *testing.T) {
	rmi.RegisterStubFactory("test.TypedNode", func(inv rmi.Invoker) any {
		return &typedNodeStub{Invoker: inv}
	})
	rmi.RegisterImpl("test.TypedNode", &typedNode{})

	server, client := newPair(t)
	svc := &typedNodeFactory{}
	ref, err := server.Export(svc, "test.TypedFactory")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := client.Call(ctx, ref, "Make", 7)
	if err != nil {
		t.Fatal(err)
	}
	typed, ok := res[0].(*typedNodeStub)
	if !ok {
		t.Fatalf("factory not used, got %T", res[0])
	}
	v, err := typed.Value(ctx)
	if err != nil || v != 7 {
		t.Fatalf("typed call: %v %v", err, v)
	}
	// The typed stub travels back as its ref and satisfies a typed param.
	res, err = client.Call(ctx, ref, "ReadTyped", typed)
	if err != nil || res[0].(int64) != 7 {
		t.Fatalf("ReadTyped: %v %#v", err, res)
	}
}

type typedNode struct {
	rmi.RemoteBase
	val int
}

func (n *typedNode) Value() int { return n.val }

type valuer interface {
	Value(ctx context.Context) (int, error)
}

type typedNodeStub struct {
	rmi.Invoker
}

func (s *typedNodeStub) Value(ctx context.Context) (int, error) {
	res, err := s.Invoke(ctx, "Value")
	if err != nil {
		return 0, err
	}
	return int(res[0].(int64)), nil
}

type typedNodeFactory struct {
	rmi.RemoteBase
}

func (f *typedNodeFactory) Make(v int) *typedNode { return &typedNode{val: v} }

func (f *typedNodeFactory) ReadTyped(ctx context.Context, n valuer) (int, error) {
	return n.Value(ctx)
}

func TestDGCKeepsRenewedObjectAlive(t *testing.T) {
	server, client := newPair(t, rmi.WithLease(80*time.Millisecond))
	ref, err := server.Export(&identitySvc{}, "test.IdentitySvc")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := client.Call(ctx, ref, "Create")
	if err != nil {
		t.Fatal(err)
	}
	stub := res[0].(*rmi.Stub)

	// Client renews in the background (renewEvery = lease/3); after several
	// lease periods the auto-exported node must still answer.
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := stub.InvokeOne(ctx, "Value"); err != nil {
			t.Fatalf("object collected while lease renewed: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDGCCollectsAbandonedObject(t *testing.T) {
	network := netsim.New(netsim.Instant)
	defer network.Close()
	server := rmi.NewPeer(network, rmi.WithLogf(silentLogf), rmi.WithLease(60*time.Millisecond))
	if err := server.Serve("server"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))

	ref, err := server.Export(&identitySvc{}, "test.IdentitySvc")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := client.Call(ctx, ref, "Create")
	if err != nil {
		t.Fatal(err)
	}
	stub := res[0].(*rmi.Stub)
	baseline := server.NumExported()

	// Kill the client: renewals stop; the lease must lapse and the
	// auto-export must be collected.
	_ = client.Close()
	waitFor(t, time.Second, func() bool { return server.NumExported() < baseline })

	// A fresh client calling the dead ref gets NoSuchObjectError.
	client2 := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	defer client2.Close()
	_, err = client2.Call(ctx, stub.Ref(), "Value")
	var nso *rmi.NoSuchObjectError
	if !errors.As(err, &nso) {
		t.Fatalf("got %v, want NoSuchObjectError", err)
	}
}

func TestStubReleaseCleansLease(t *testing.T) {
	server, client := newPair(t, rmi.WithLease(time.Hour)) // no expiry help
	ref, err := server.Export(&identitySvc{}, "test.IdentitySvc")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := client.Call(ctx, ref, "Create")
	if err != nil {
		t.Fatal(err)
	}
	stub := res[0].(*rmi.Stub)
	before := server.NumExported()
	// Ensure the client's lease is registered before releasing, otherwise
	// only the marshal lease exists and Clean is a no-op for this client.
	client.RenewNow()
	stub.Release(ctx)
	waitFor(t, time.Second, func() bool { return server.NumExported() < before })
}

func TestPinnedExportSurvivesDGC(t *testing.T) {
	server, client := newPair(t, rmi.WithLease(50*time.Millisecond))
	ref := exportCalc(t, server)
	time.Sleep(200 * time.Millisecond) // several sweep periods, no leases at all
	if _, err := client.Call(context.Background(), ref, "Add", 1, 1); err != nil {
		t.Fatalf("pinned export collected: %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	ctx := context.Background()
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		go func(i int) {
			res, err := client.Call(ctx, ref, "Add", i, i)
			if err == nil && res[0].(int64) != int64(2*i) {
				err = fmt.Errorf("got %v, want %d", res[0], 2*i)
			}
			errs <- err
		}(i)
	}
	for i := 0; i < 32; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCallAfterCloseFails(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	_ = client.Close()
	if _, err := client.Call(context.Background(), ref, "Add", 1, 2); !errors.Is(err, rmi.ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestRemoteExceptionOnDeadServer(t *testing.T) {
	network := netsim.New(netsim.Instant)
	defer network.Close()
	client := rmi.NewPeer(network, rmi.WithLogf(silentLogf))
	defer client.Close()
	ref := wire.Ref{Endpoint: "nowhere", ObjID: 16, Iface: "X"}
	_, err := client.Call(context.Background(), ref, "Anything")
	var re *rmi.RemoteException
	if !errors.As(err, &re) {
		t.Fatalf("got %v (%T), want *RemoteException", err, err)
	}
}

func TestServeTwiceFails(t *testing.T) {
	server, _ := newPair(t)
	if err := server.Serve("second"); err == nil {
		t.Fatal("second Serve succeeded")
	}
}

func TestDerefAndInvokerInterface(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	inv := client.Deref(ref)
	if inv.Ref() != ref {
		t.Fatalf("Deref ref = %v", inv.Ref())
	}
	res, err := inv.Invoke(context.Background(), "Add", 20, 22)
	if err != nil || res[0].(int64) != 42 {
		t.Fatalf("got %v %#v", err, res)
	}
}

func TestInvokeLocalDirect(t *testing.T) {
	server, _ := newPair(t)
	res, err := server.InvokeLocal(context.Background(), &calc{}, "Add", []any{int64(1), int64(2)})
	if err != nil || res[0].(int) != 3 {
		t.Fatalf("got %v %#v", err, res)
	}
	if _, err := server.InvokeLocal(context.Background(), nil, "X", nil); err == nil {
		t.Fatal("nil target accepted")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met before timeout")
}

func TestToWireFromWireSymmetry(t *testing.T) {
	server, client := newPair(t)
	c := &calc{}
	ref, err := server.Export(c, "test.Calc")
	if err != nil {
		t.Fatal(err)
	}
	// ToWire of a stub yields its ref; FromWire of that ref yields a stub
	// pointing at the same object.
	stub := client.Deref(ref)
	w, err := client.ToWire(stub)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, ref) {
		t.Fatalf("ToWire(stub) = %#v, want %#v", w, ref)
	}
	back := client.FromWire(ref)
	if inv, ok := back.(rmi.Invoker); !ok || inv.Ref() != ref {
		t.Fatalf("FromWire(ref) = %#v", back)
	}
}
