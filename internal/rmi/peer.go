package rmi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dgc"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Peer is one node of the distributed object system. Every peer can issue
// remote calls; a peer that calls Serve additionally exports objects and
// accepts calls, like a JVM running both RMI client and server roles.
type Peer struct {
	network transport.Network
	opts    options
	exports *exportTable
	pool    *transport.Pool
	leases  *dgc.Table

	clientID string
	dgcSeq   atomic.Uint64
	// calls counts application-level remote invocations issued by this
	// peer (DGC housekeeping excluded), i.e. network round trips. The
	// benchmark harness reports it alongside latency.
	calls atomic.Uint64

	// Observability: reg is the peer's metric registry (nil when not
	// instrumented); tstats is the transport bundle shared by the client
	// pool and the serving side; the histograms time the wire codec on
	// both the issue and dispatch paths.
	reg    *stats.Registry
	tstats *transport.Stats
	encNs  *stats.Histogram
	decNs  *stats.Histogram

	mu        sync.Mutex
	endpoint  string
	tsrv      *transport.Server
	closed    bool
	streams   map[string]StreamServer // stream services, by name
	forwards  map[uint64]forwardRecord  // migrated-away objects, by old id
	holds     map[string]map[uint64]int // endpoint -> objID -> refcount
	granted   map[string]time.Duration  // endpoint -> lease granted by its DGC
	renewing  bool
	renewKick chan struct{}
	done      chan struct{}
	renewerWG sync.WaitGroup
}

type options struct {
	localShortcut bool
	logf          func(format string, args ...any)
	lease         time.Duration
	sweepEvery    time.Duration
	renewEvery    time.Duration
	reg           *stats.Registry
}

// Option configures a Peer.
type Option func(*options)

// WithLocalShortcut makes the peer resolve inbound refs it owns to the
// local object instead of a loopback stub. This breaks faithful Java RMI
// semantics (§4.4) and exists as an ablation baseline.
func WithLocalShortcut() Option {
	return func(o *options) { o.localShortcut = true }
}

// WithLogf routes diagnostics. Pass a no-op to silence.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(o *options) { o.logf = logf }
}

// WithStatsRegistry attaches a metrics registry: the peer instruments its
// transport (frames, bytes, pending calls, dials, pool hit rate), its
// wire codec (encode/decode latency, pooled-state reuse), and its own
// call counter on r. Without the option the peer runs uninstrumented at
// zero cost (nil metric handles no-op).
func WithStatsRegistry(r *stats.Registry) Option {
	return func(o *options) { o.reg = r }
}

// WithLease sets the DGC lease duration granted to clients of this peer,
// and from which the client-side renewal interval (lease/3) is derived.
func WithLease(d time.Duration) Option {
	return func(o *options) {
		o.lease = d
		o.sweepEvery = d / 4
		o.renewEvery = d / 3
	}
}

// NewPeer creates a peer on the given network. It can issue calls
// immediately; call Serve to also export objects.
func NewPeer(network transport.Network, opts ...Option) *Peer {
	o := options{
		logf:       log.Printf,
		lease:      dgc.DefaultLease,
		sweepEvery: dgc.DefaultLease / 4,
		renewEvery: dgc.DefaultLease / 3,
	}
	for _, opt := range opts {
		opt(&o)
	}
	p := &Peer{
		network:   network,
		opts:      o,
		exports:   newExportTable(),
		pool:      transport.NewPool(network),
		clientID:  newClientID(),
		forwards:  make(map[uint64]forwardRecord),
		holds:     make(map[string]map[uint64]int),
		granted:   make(map[string]time.Duration),
		renewKick: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	p.leases = dgc.NewTable(func(id uint64) { p.exports.collect(id) }, dgc.WithLease(o.lease))
	p.reg = o.reg
	p.tstats = transport.NewStats(o.reg)
	p.pool.SetStats(p.tstats)
	if o.reg != nil {
		p.encNs = o.reg.Histogram("wire.encode_ns")
		p.decNs = o.reg.Histogram("wire.decode_ns")
		o.reg.Func("rmi.calls", func() int64 { return int64(p.calls.Load()) })
		o.reg.Func("rmi.exported_objects", func() int64 { return int64(p.exports.size()) })
		o.reg.Func("wire.enc_state_gets", func() int64 { g, _, _, _ := wire.CodecStats(); return int64(g) })
		o.reg.Func("wire.enc_state_allocs", func() int64 { _, a, _, _ := wire.CodecStats(); return int64(a) })
		o.reg.Func("wire.dec_state_gets", func() int64 { _, _, g, _ := wire.CodecStats(); return int64(g) })
		o.reg.Func("wire.dec_state_allocs", func() int64 { _, _, _, a := wire.CodecStats(); return int64(a) })
	}
	return p
}

// Stats returns the metrics registry attached with WithStatsRegistry, or
// nil for an uninstrumented peer (nil receiver included — plan-only tests
// build recording layers with no peer at all). Layers above (core,
// cluster) hang their own metrics off it.
func (p *Peer) Stats() *stats.Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// newClientID produces a process-unique DGC client identity.
func newClientID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Extremely unlikely; a fixed id only weakens DGC accounting.
		return "client-entropy-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// ClientID returns this peer's DGC identity.
func (p *Peer) ClientID() string { return p.clientID }

// Endpoint returns the serving endpoint, or "" for client-only peers.
func (p *Peer) Endpoint() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.endpoint
}

// Serve starts accepting remote calls at endpoint. It exports the DGC
// system service and starts the lease sweeper.
func (p *Peer) Serve(endpoint string) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if p.endpoint != "" {
		p.mu.Unlock()
		return fmt.Errorf("rmi: peer already serving at %s", p.endpoint)
	}
	p.endpoint = endpoint
	p.mu.Unlock()

	if err := p.exports.addAt(DGCObjID, &dgcService{table: p.leases}, DGCIface); err != nil {
		return err
	}
	l, err := p.network.Listen(endpoint)
	if err != nil {
		return fmt.Errorf("rmi: listen %s: %w", endpoint, err)
	}
	tsrv := transport.NewServer(p.handle, transport.WithLogf(p.opts.logf), transport.WithBufferReuse(),
		transport.WithStats(p.tstats), transport.WithStreamHandler(p.handleStream))
	if err := tsrv.Serve(l); err != nil {
		_ = l.Close()
		return err
	}
	p.mu.Lock()
	p.tsrv = tsrv
	p.mu.Unlock()
	p.leases.Start(p.opts.sweepEvery)
	return nil
}

// Export makes obj callable remotely under the given interface name and
// returns its reference. Exported objects are pinned: DGC never collects
// them. Exporting the same object again returns the same reference.
func (p *Peer) Export(obj Remote, iface string) (wire.Ref, error) {
	endpoint := p.Endpoint()
	if endpoint == "" {
		return wire.Ref{}, ErrClientOnly
	}
	if iface == "" {
		iface = ifaceNameFor(obj)
	}
	id, err := p.exports.add(obj, iface, true)
	if err != nil {
		return wire.Ref{}, err
	}
	return wire.Ref{Endpoint: endpoint, ObjID: id, Iface: iface}, nil
}

// ExportSystem installs a system service at a reserved object id
// (id < FirstUserObjID). Used by internal/registry and internal/core.
func (p *Peer) ExportSystem(id uint64, obj Remote, iface string) (wire.Ref, error) {
	endpoint := p.Endpoint()
	if endpoint == "" {
		return wire.Ref{}, ErrClientOnly
	}
	if err := p.exports.addAt(id, obj, iface); err != nil {
		return wire.Ref{}, err
	}
	return wire.Ref{Endpoint: endpoint, ObjID: id, Iface: iface}, nil
}

// exportAuto exports a remote object that is being marshalled out as a
// method result (Java RMI's automatic stub creation). Auto exports live
// under DGC: the marshalling itself grants an initial lease so the object
// survives until the receiving client starts renewing.
func (p *Peer) exportAuto(obj Remote) (wire.Ref, error) {
	endpoint := p.Endpoint()
	if endpoint == "" {
		return wire.Ref{}, fmt.Errorf("rmi: cannot marshal remote object from non-serving peer: %w", ErrClientOnly)
	}
	iface := ifaceNameFor(obj)
	id, err := p.exports.add(obj, iface, false)
	if err != nil {
		return wire.Ref{}, err
	}
	p.leases.Dirty(marshalHolder, 0, []uint64{id})
	return wire.Ref{Endpoint: endpoint, ObjID: id, Iface: iface}, nil
}

// Unexport removes an object from the export table. Outstanding refs to it
// start failing with NoSuchObjectError.
func (p *Peer) Unexport(ref wire.Ref) bool {
	return p.exports.remove(ref.ObjID)
}

// forwardRecord is the tombstone left behind when an object migrates to a
// new home server: enough for a stale caller to re-route (the cluster-wide
// key) and to know how stale it is (the membership epoch of the move).
type forwardRecord struct {
	key   string
	epoch uint64
	at    time.Time
}

// ForwardTTL bounds how long a migration tombstone answers for a departed
// object. It caps the memory a long-lived server spends on re-sharding
// history, and with it how stale a client may be and still receive the
// typed wrong-home redirect; beyond it, calls degrade to NoSuchObjectError.
const ForwardTTL = 30 * time.Minute

// ForwardObject unexports objID and leaves a forwarding tombstone: calls
// routed here with a stale shard map fail with *WrongHomeError carrying the
// object's cluster-wide key and the membership epoch of the move, instead of
// an opaque NoSuchObjectError. The cluster rebalancer installs tombstones
// when it migrates objects off this server. Tombstones expire after
// ForwardTTL.
func (p *Peer) ForwardObject(objID uint64, key string, epoch uint64) {
	// Tombstone first, then unexport: a concurrent call landing between the
	// two must see WrongHome (retryable), never NoSuchObject (terminal).
	now := time.Now()
	p.mu.Lock()
	for id, f := range p.forwards {
		if now.Sub(f.at) > ForwardTTL {
			delete(p.forwards, id)
		}
	}
	p.forwards[objID] = forwardRecord{key: key, epoch: epoch, at: now}
	p.mu.Unlock()
	p.exports.remove(objID)
}

// ForwardedObject reports the wrong-home error for a migrated-away object
// id, if one is recorded and has not expired. The dispatch layer and the
// BRMI batch executor consult it when an id is absent from the export
// table.
func (p *Peer) ForwardedObject(objID uint64) (*WrongHomeError, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.forwards[objID]
	if !ok {
		return nil, false
	}
	if time.Since(f.at) > ForwardTTL {
		delete(p.forwards, objID)
		return nil, false
	}
	return &WrongHomeError{Key: f.key, NewEpoch: f.epoch}, true
}

// LocalObject resolves an object id in this peer's export table. The BRMI
// batch executor uses it to obtain the root object of a batch.
func (p *Peer) LocalObject(objID uint64) (any, bool) {
	e, ok := p.exports.get(objID)
	if !ok {
		return nil, false
	}
	return e.obj, true
}

// ExportedID returns the export id of obj, if it is exported.
func (p *Peer) ExportedID(obj any) (uint64, bool) { return p.exports.idOf(obj) }

// NumExported returns the current export table size (system services
// included). Exposed for tests and DGC observability.
func (p *Peer) NumExported() int { return p.exports.size() }

// Deref returns an Invoker for ref without contacting the server (stubs are
// lazy, like RMI stubs).
func (p *Peer) Deref(ref wire.Ref) Invoker {
	v := p.stubFor(ref)
	if inv, ok := v.(Invoker); ok {
		return inv
	}
	// A registered typed stub that is not an Invoker itself; wrap again.
	return &Stub{peer: p, ref: ref}
}

// DerefTyped returns the typed stub for ref (via the registered factory),
// or the generic *Stub when no factory exists.
func (p *Peer) DerefTyped(ref wire.Ref) any { return p.stubFor(ref) }

// Call invokes a remote method on ref. Arguments are marshalled with
// pass-by-reference semantics for remote objects/stubs and pass-by-copy for
// everything else. Returned refs arrive as stubs.
func (p *Peer) Call(ctx context.Context, ref wire.Ref, method string, args ...any) ([]any, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if ref.ObjID != DGCObjID {
		p.calls.Add(1)
	}

	req := &callRequest{ObjID: ref.ObjID, Method: method, Args: make([]any, len(args))}
	for i, a := range args {
		w, err := p.ToWire(a)
		if err != nil {
			return nil, fmt.Errorf("rmi: marshal arg %d of %s: %w", i, method, err)
		}
		req.Args[i] = w
	}
	// Encode into a pooled buffer: the transport hands the payload to the
	// connection synchronously, so once Call returns the buffer is free.
	encStart := p.statsNow()
	buf := transport.GetBuffer()
	payload, err := wire.MarshalAppend(buf, req)
	if err != nil {
		transport.PutBuffer(buf)
		return nil, fmt.Errorf("rmi: encode call %s: %w", method, err)
	}
	p.observeSince(p.encNs, encStart)

	respBytes, err := p.pool.Call(ctx, ref.Endpoint, payload)
	transport.PutBuffer(payload)
	if err != nil {
		return nil, &RemoteException{Op: "call " + method, Endpoint: ref.Endpoint, Err: err}
	}
	decStart := p.statsNow()
	msg, err := wire.Unmarshal(respBytes)
	transport.PutBuffer(respBytes)
	p.observeSince(p.decNs, decStart)
	if err != nil {
		return nil, &RemoteException{Op: "decode " + method, Endpoint: ref.Endpoint, Err: err}
	}
	resp, ok := msg.(*callResponse)
	if !ok {
		return nil, &RemoteException{Op: "decode " + method, Endpoint: ref.Endpoint,
			Err: fmt.Errorf("unexpected response type %T", msg)}
	}
	if resp.Err != nil {
		return nil, resp.Err
	}
	results := make([]any, len(resp.Results))
	for i, r := range resp.Results {
		results[i] = p.FromWire(r)
	}
	return results, nil
}

// statsNow reads the registry clock, or the zero time when the peer is
// uninstrumented (keeping the clock read off the fast path).
func (p *Peer) statsNow() time.Time {
	if p.reg == nil {
		return time.Time{}
	}
	return p.reg.Now()
}

// observeSince records the elapsed nanoseconds since start on h. A zero
// start (uninstrumented peer) records nothing.
func (p *Peer) observeSince(h *stats.Histogram, start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(p.reg.Now().Sub(start).Nanoseconds())
}

// trackHold records that this peer holds a reference to ref, starts the
// renewal loop if needed, and kicks an immediate asynchronous dirty call for
// newly held objects (mirroring Java's DGCClient, which enqueues a dirty as
// soon as a remote reference is unmarshalled). System objects are pinned and
// not tracked.
func (p *Peer) trackHold(ref wire.Ref) {
	if ref.ObjID < FirstUserObjID || ref.Endpoint == "" {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	m := p.holds[ref.Endpoint]
	if m == nil {
		m = make(map[uint64]int)
		p.holds[ref.Endpoint] = m
	}
	m[ref.ObjID]++
	fresh := m[ref.ObjID] == 1
	if !p.renewing {
		p.renewing = true
		p.renewerWG.Add(1)
		go p.renewLoop()
	}
	p.mu.Unlock()
	if fresh {
		select {
		case p.renewKick <- struct{}{}:
		default: // a kick is already queued
		}
	}
}

// releaseHold decrements the refcount for ref and sends a DGC clean call
// when it reaches zero.
func (p *Peer) releaseHold(ctx context.Context, ref wire.Ref) {
	p.releaseHolds(ctx, []wire.Ref{ref})
}

// releaseHolds decrements the refcount of each ref, batching the resulting
// DGC clean calls — one Clean per endpoint (the protocol takes a list of
// object ids), sent in parallel across endpoints.
func (p *Peer) releaseHolds(ctx context.Context, refs []wire.Ref) {
	p.mu.Lock()
	toClean := make(map[string][]uint64)
	for _, ref := range refs {
		if ref.ObjID < FirstUserObjID || ref.Endpoint == "" {
			continue
		}
		m := p.holds[ref.Endpoint]
		if m == nil || m[ref.ObjID] == 0 {
			continue
		}
		m[ref.ObjID]--
		if m[ref.ObjID] == 0 {
			delete(m, ref.ObjID)
			toClean[ref.Endpoint] = append(toClean[ref.Endpoint], ref.ObjID)
		}
	}
	closed := p.closed
	p.mu.Unlock()
	if closed || len(toClean) == 0 {
		return
	}
	var wg sync.WaitGroup
	for endpoint, ids := range toClean {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dgcRef := SystemRef(endpoint, DGCObjID, DGCIface)
			if _, err := p.Call(ctx, dgcRef, "Clean", p.clientID, p.dgcSeq.Add(1), ids); err != nil {
				p.opts.logf("rmi: dgc clean %s%v: %v", endpoint, ids, err)
			}
		}()
	}
	wg.Wait()
}

// renewLoop renews leases for all held references. It wakes on a timer
// derived from the shortest lease any server granted (renew at lease/3), or
// immediately when a kick reports a newly held reference.
func (p *Peer) renewLoop() {
	defer p.renewerWG.Done()
	for {
		timer := time.NewTimer(p.renewInterval())
		select {
		case <-timer.C:
			p.renewAll()
		case <-p.renewKick:
			timer.Stop()
			p.renewAll()
		case <-p.done:
			timer.Stop()
			return
		}
	}
}

// renewInterval derives the wake-up period from granted leases.
func (p *Peer) renewInterval() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	interval := p.opts.renewEvery
	for _, lease := range p.granted {
		if d := lease / 3; d < interval {
			interval = d
		}
	}
	const floor = 5 * time.Millisecond
	if interval < floor {
		interval = floor
	}
	return interval
}

func (p *Peer) renewAll() {
	p.mu.Lock()
	snapshot := make(map[string][]uint64, len(p.holds))
	for endpoint, m := range p.holds {
		if len(m) == 0 {
			continue
		}
		ids := make([]uint64, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		snapshot[endpoint] = ids
	}
	p.mu.Unlock()

	for endpoint, ids := range snapshot {
		ctx, cancel := context.WithTimeout(context.Background(), p.opts.renewEvery)
		res, err := p.Call(ctx, SystemRef(endpoint, DGCObjID, DGCIface), "Dirty", p.clientID, p.dgcSeq.Add(1), ids)
		cancel()
		if err != nil {
			p.opts.logf("rmi: dgc dirty %s: %v", endpoint, err)
			continue
		}
		if len(res) == 1 {
			if lease, ok := res[0].(time.Duration); ok && lease > 0 {
				p.mu.Lock()
				p.granted[endpoint] = lease
				p.mu.Unlock()
			}
		}
	}
}

// RenewNow synchronously renews all held leases once. Exposed for tests.
func (p *Peer) RenewNow() { p.renewAll() }

// HoldRef begins DGC lease tracking for ref without materializing a stub:
// the peer dirties the reference immediately and keeps renewing its lease
// until a matching ReleaseRef. The cluster layer uses it to keep pinned
// batch results (core.Proxy.ExportedRef) alive between pipeline stages.
func (p *Peer) HoldRef(ref wire.Ref) { p.trackHold(ref) }

// ReleaseRef drops one HoldRef (or stub) hold on ref, sending the DGC clean
// call when the last local hold disappears.
func (p *Peer) ReleaseRef(ctx context.Context, ref wire.Ref) { p.releaseHold(ctx, ref) }

// ReleaseRefs drops one hold on each ref, batching the DGC clean traffic:
// one Clean call per endpoint, endpoints in parallel. The cluster layer
// uses it to unwind a whole pipeline's pinned-result leases in a single
// round-trip wave.
func (p *Peer) ReleaseRefs(ctx context.Context, refs []wire.Ref) { p.releaseHolds(ctx, refs) }

// CallCount returns the number of application-level remote invocations this
// peer has issued (DGC housekeeping excluded). One invocation is one
// network round trip.
func (p *Peer) CallCount() uint64 { return p.calls.Load() }

// Close shuts the peer down: the renewal loop stops, the lease sweeper
// stops, the transport server closes, and pooled client connections close.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	tsrv := p.tsrv
	p.mu.Unlock()

	close(p.done)
	p.renewerWG.Wait()
	p.leases.Stop()
	if tsrv != nil {
		_ = tsrv.Close()
	}
	return p.pool.Close()
}

// dgcService exposes the lease table as the reserved system object,
// mirroring java.rmi.dgc.DGC's dirty/clean protocol.
type dgcService struct {
	RemoteBase
	table *dgc.Table
}

// marshalHolder is the synthetic lease holder protecting a freshly
// auto-exported object until the receiving client's first dirty arrives.
const marshalHolder = "__marshal"

// Dirty grants/renews leases for clientID and returns the lease duration.
// The first client dirty for an object completes the marshal handoff: the
// synthetic marshal lease is dropped so collection tracks real clients.
// (If a second client's ref is in flight at that instant, its own marshal
// grace was refreshed at marshal time; the handoff race window is one
// client round trip, same as Java RMI's.)
func (s *dgcService) Dirty(clientID string, seq uint64, objIDs []uint64) time.Duration {
	lease := s.table.Dirty(clientID, seq, objIDs)
	s.table.ForceClean(marshalHolder, objIDs)
	return lease
}

// Clean releases clientID's leases. Sequence numbers prevent dirty/clean
// reordering races (paper-era Java DGC does the same).
func (s *dgcService) Clean(clientID string, seq uint64, objIDs []uint64) {
	s.table.Clean(clientID, seq, objIDs)
}
