package rmi

import "sync"

// readonlyMethods records which methods of which remote interfaces were
// declared //brmi:readonly. brmigen emits the registrations from its
// parse-time-validated annotations; the batch layers (and operators
// inspecting a deployment) query IsReadOnly. The declaration is a client
// visible contract — idempotent, side-effect free, result cacheable under a
// lease — not a server-enforced property; brmigen's validation is what
// keeps it honest at the type level (serializable result, no remote
// parameters).
var readonlyMethods sync.Map // iface + "\x00" + method -> struct{}

// RegisterReadOnly declares methods of the remote interface iface readonly
// (idempotent and cacheable). Generated code calls it from init; duplicate
// registration is harmless.
func RegisterReadOnly(iface string, methods ...string) {
	for _, m := range methods {
		readonlyMethods.Store(iface+"\x00"+m, struct{}{})
	}
}

// IsReadOnly reports whether iface's method was declared //brmi:readonly.
func IsReadOnly(iface, method string) bool {
	_, ok := readonlyMethods.Load(iface + "\x00" + method)
	return ok
}
