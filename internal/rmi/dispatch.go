package rmi

import (
	"context"
	"fmt"
	"reflect"
	"sync"

	"repro/internal/transport"
	"repro/internal/wire"
)

// methodPlan caches reflection metadata for one dispatchable method.
type methodPlan struct {
	fn      reflect.Value
	in      []reflect.Type // parameter types after receiver (and ctx, if any)
	hasCtx  bool
	hasErr  bool
	numOut  int // results excluding trailing error
	numIn   int // parameters excluding receiver and ctx
	varArgs bool
}

// typePlan caches all dispatchable methods of a concrete type.
type typePlan struct {
	methods map[string]*methodPlan
}

var (
	planCache   sync.Mutex
	plansByType = make(map[reflect.Type]*typePlan)

	ctxType = reflect.TypeOf((*context.Context)(nil)).Elem()
	errType = reflect.TypeOf((*error)(nil)).Elem()
)

// invokeArgPool recycles the reflect.Value argument frames InvokeLocal
// builds for every dispatched call.
var invokeArgPool = sync.Pool{New: func() any {
	s := make([]reflect.Value, 0, 8)
	return &s
}}

// putInvokeArgs clears the frame (so pooled slots do not pin arguments) and
// returns it to the pool.
func putInvokeArgs(inp *[]reflect.Value, in []reflect.Value) {
	for i := range in {
		in[i] = reflect.Value{}
	}
	*inp = in[:0]
	invokeArgPool.Put(inp)
}

func planFor(t reflect.Type) *typePlan {
	planCache.Lock()
	defer planCache.Unlock()
	if p, ok := plansByType[t]; ok {
		return p
	}
	p := &typePlan{methods: make(map[string]*methodPlan, t.NumMethod())}
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		if !m.IsExported() {
			continue
		}
		mp := &methodPlan{fn: m.Func, varArgs: m.Type.IsVariadic()}
		mt := m.Type
		start := 1 // skip receiver
		if mt.NumIn() > start && mt.In(start) == ctxType {
			mp.hasCtx = true
			start++
		}
		for j := start; j < mt.NumIn(); j++ {
			mp.in = append(mp.in, mt.In(j))
		}
		mp.numIn = len(mp.in)
		mp.numOut = mt.NumOut()
		if mp.numOut > 0 && mt.Out(mt.NumOut()-1) == errType {
			mp.hasErr = true
			mp.numOut--
		}
		p.methods[m.Name] = mp
	}
	plansByType[t] = p
	return p
}

// LocalDispatcher is the reflection-free dispatch fast path: a remote
// object that implements it executes its own methods from wire-decoded
// arguments, skipping the reflect.Call machinery entirely — the Go analogue
// of the skeleton classes rmic generated before reflective dispatch.
// brmigen emits a Dispatch<Iface> helper per remote interface so an
// implementation satisfies this with a three-line method; hand-written
// dispatchers (see internal/bench) follow the same shape.
//
// DispatchLocal returns handled=false to fall back to reflective dispatch
// (unknown method, inconvertible argument); results may be appended to buf,
// which the caller may reuse afterwards. A returned error is the remote
// method's error, exactly as in reflective dispatch.
type LocalDispatcher interface {
	DispatchLocal(ctx context.Context, method string, args []any, buf []any) (results []any, handled bool, err error)
}

// InvokeLocal calls method on target with wire-decoded args, converting each
// argument to the parameter type (numeric widening, Ref to stub, struct
// forms). Results are returned raw (unmarshalled Go values); the caller
// decides whether to wire-convert them. Used by both the dispatch path and
// the BRMI batch executor, which replays recorded calls against local
// objects.
func (p *Peer) InvokeLocal(ctx context.Context, target any, method string, args []any) ([]any, error) {
	return p.InvokeLocalAppend(ctx, target, method, args, nil)
}

// dispatchFast runs a LocalDispatcher under the same panic containment as
// reflective dispatch.
func dispatchFast(ctx context.Context, d LocalDispatcher, method string, args []any, buf []any) (out []any, handled bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, handled = nil, true
			err = fmt.Errorf("rmi: panic in %T.%s: %v", d, method, r)
		}
	}()
	return d.DispatchLocal(ctx, method, args, buf)
}

// InvokeLocalAppend is InvokeLocal appending the results to buf (which may
// be reused scratch: the callee never retains it). The BRMI executor replays
// thousands of calls per batch through one scratch slice.
func (p *Peer) InvokeLocalAppend(ctx context.Context, target any, method string, args []any, buf []any) (results []any, err error) {
	if d, ok := target.(LocalDispatcher); ok {
		if out, handled, derr := dispatchFast(ctx, d, method, args, buf); handled {
			return out, derr
		}
	}
	if target == nil {
		return nil, &NoSuchObjectError{}
	}
	t := reflect.TypeOf(target)
	mp, ok := planFor(t).methods[method]
	if !ok {
		return nil, &NoSuchMethodError{Iface: t.String(), Method: method}
	}
	if len(args) != mp.numIn && !mp.varArgs {
		return nil, fmt.Errorf("rmi: %s.%s: got %d args, want %d", t, method, len(args), mp.numIn)
	}
	if mp.varArgs {
		return nil, fmt.Errorf("rmi: %s.%s: variadic remote methods are not supported", t, method)
	}

	// The argument frame is pooled: reflect.Call does not retain it, so one
	// scratch slice serves every invocation on this goroutine's turn.
	inp := invokeArgPool.Get().(*[]reflect.Value)
	in := (*inp)[:0]
	in = append(in, reflect.ValueOf(target))
	if mp.hasCtx {
		in = append(in, reflect.ValueOf(ctx))
	}
	for i, a := range args {
		av, cerr := p.assignArg(mp.in[i], a)
		if cerr != nil {
			putInvokeArgs(inp, in)
			return nil, fmt.Errorf("rmi: %s.%s arg %d: %w", t, method, i, cerr)
		}
		in = append(in, av)
	}

	// A panicking remote method must not take the server down; it becomes a
	// remote error on the caller, like Java's server-side RuntimeException.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rmi: panic in %s.%s: %v", t, method, r)
			results = nil
		}
	}()
	out := mp.fn.Call(in)
	putInvokeArgs(inp, in)

	if mp.hasErr {
		if ev := out[len(out)-1]; !ev.IsNil() {
			return nil, ev.Interface().(error)
		}
		out = out[:len(out)-1]
	}
	results = buf[:0]
	for _, o := range out {
		results = append(results, o.Interface())
	}
	return results, nil
}

// assignArg converts a wire-decoded value to the parameter type t.
func (p *Peer) assignArg(t reflect.Type, v any) (reflect.Value, error) {
	if ref, ok := v.(wire.Ref); ok && t != reflect.TypeOf(wire.Ref{}) {
		v = p.FromWire(ref)
	}
	if v == nil {
		switch t.Kind() {
		case reflect.Pointer, reflect.Interface, reflect.Slice, reflect.Map, reflect.Chan, reflect.Func:
			return reflect.Zero(t), nil
		default:
			return reflect.Zero(t), nil
		}
	}
	rv := reflect.ValueOf(v)
	if rv.Type().AssignableTo(t) {
		return rv, nil
	}
	switch t.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		switch rv.Kind() {
		case reflect.Int64, reflect.Int, reflect.Int32:
			return reflect.ValueOf(rv.Int()).Convert(t), nil
		case reflect.Uint64, reflect.Uint:
			return reflect.ValueOf(int64(rv.Uint())).Convert(t), nil
		case reflect.Float64:
			return reflect.ValueOf(int64(rv.Float())).Convert(t), nil
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		switch rv.Kind() {
		case reflect.Uint64:
			return reflect.ValueOf(rv.Uint()).Convert(t), nil
		case reflect.Int64:
			return reflect.ValueOf(uint64(rv.Int())).Convert(t), nil
		}
	case reflect.Float32, reflect.Float64:
		switch rv.Kind() {
		case reflect.Float64, reflect.Float32:
			return rv.Convert(t), nil
		case reflect.Int64:
			return reflect.ValueOf(float64(rv.Int())).Convert(t), nil
		}
	case reflect.Slice:
		if generic, ok := v.([]any); ok {
			out := reflect.MakeSlice(t, len(generic), len(generic))
			for i, el := range generic {
				ev, err := p.assignArg(t.Elem(), el)
				if err != nil {
					return reflect.Value{}, fmt.Errorf("element %d: %w", i, err)
				}
				out.Index(i).Set(ev)
			}
			return out, nil
		}
	case reflect.Map:
		if generic, ok := v.(map[any]any); ok {
			out := reflect.MakeMapWithSize(t, len(generic))
			for k, el := range generic {
				kv, err := p.assignArg(t.Key(), k)
				if err != nil {
					return reflect.Value{}, fmt.Errorf("map key: %w", err)
				}
				ev, err := p.assignArg(t.Elem(), el)
				if err != nil {
					return reflect.Value{}, fmt.Errorf("map value: %w", err)
				}
				out.SetMapIndex(kv, ev)
			}
			return out, nil
		}
	case reflect.Pointer:
		if t.Elem().Kind() == reflect.Struct && rv.Kind() == reflect.Struct && rv.Type() == t.Elem() {
			pv := reflect.New(t.Elem())
			pv.Elem().Set(rv)
			return pv, nil
		}
	case reflect.Struct:
		if rv.Kind() == reflect.Pointer && !rv.IsNil() && rv.Type().Elem() == t {
			return rv.Elem(), nil
		}
	case reflect.Interface:
		if rv.Type().Implements(t) {
			return rv, nil
		}
	}
	return reflect.Value{}, fmt.Errorf("rmi: cannot use %T as %s", v, t)
}

// ToWire converts an outbound value to its wire form: stubs and remote
// objects become Refs (auto-exporting local remote objects), slices of
// remotes become slices of Refs, and everything else passes through for the
// codec to copy.
func (p *Peer) ToWire(v any) (any, error) {
	switch x := v.(type) {
	case nil:
		return nil, nil
	case RefHolder:
		return x.Ref(), nil
	case Remote:
		return p.exportAuto(x)
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Slice && rv.Type().Elem().Kind() == reflect.Interface {
		// Slices of remote interfaces marshal element-wise (each element of
		// RemoteFile[] becomes its own Ref in plain RMI).
		if isRemoteLike(rv.Type().Elem()) {
			out := make([]any, rv.Len())
			for i := 0; i < rv.Len(); i++ {
				el := rv.Index(i).Interface()
				w, err := p.ToWire(el)
				if err != nil {
					return nil, fmt.Errorf("element %d: %w", i, err)
				}
				out[i] = w
			}
			return out, nil
		}
	}
	if rv.Kind() == reflect.Slice && rv.Type().Elem().Kind() == reflect.Pointer {
		if rv.Type().Elem().Implements(remoteType) {
			out := make([]any, rv.Len())
			for i := 0; i < rv.Len(); i++ {
				w, err := p.ToWire(rv.Index(i).Interface())
				if err != nil {
					return nil, fmt.Errorf("element %d: %w", i, err)
				}
				out[i] = w
			}
			return out, nil
		}
	}
	return v, nil
}

var (
	remoteType    = reflect.TypeOf((*Remote)(nil)).Elem()
	refHolderType = reflect.TypeOf((*RefHolder)(nil)).Elem()
)

// isRemoteLike reports whether the interface type could hold remote objects
// or stubs.
func isRemoteLike(t reflect.Type) bool {
	return t.Implements(remoteType) || t.Implements(refHolderType) ||
		remoteType.Implements(t) || t.Kind() == reflect.Interface
}

// FromWire converts an inbound wire value to its client-visible form: a Ref
// becomes a stub (typed if a factory is registered for its interface).
// Faithful RMI semantics: a Ref owned by this very peer still becomes a
// loopback stub unless WithLocalShortcut was set (paper §4.4).
func (p *Peer) FromWire(v any) any {
	switch x := v.(type) {
	case wire.Ref:
		if x.IsZero() {
			return nil
		}
		if p.opts.localShortcut && x.Endpoint == p.endpoint {
			if e, ok := p.exports.get(x.ObjID); ok {
				return e.obj
			}
		}
		return p.stubFor(x)
	case []any:
		out := make([]any, len(x))
		for i, el := range x {
			out[i] = p.FromWire(el)
		}
		return out
	default:
		return v
	}
}

// handle is the transport.Handler for this peer: decode, dispatch, encode.
// The server runs WithBufferReuse, so the request payload is recycled by
// the transport after handle returns (nothing decoded aliases it) and the
// response is encoded into a pooled buffer the transport recycles after the
// write — the request/response hot path allocates no per-message []byte.
func (p *Peer) handle(ctx context.Context, payload []byte) ([]byte, error) {
	decStart := p.statsNow()
	msg, err := wire.Unmarshal(payload)
	p.observeSince(p.decNs, decStart)
	if err != nil {
		return nil, fmt.Errorf("decode request: %w", err)
	}
	req, ok := msg.(*callRequest)
	if !ok {
		return nil, fmt.Errorf("unexpected request type %T", msg)
	}

	resp := &callResponse{}
	if e, found := p.exports.get(req.ObjID); found {
		results, ierr := p.InvokeLocal(ctx, e.obj, req.Method, req.Args)
		if ierr != nil {
			resp.Err = ierr
		} else {
			resp.Results = make([]any, len(results))
			for i, r := range results {
				w, werr := p.ToWire(r)
				if werr != nil {
					resp.Err = fmt.Errorf("rmi: marshal result %d of %s: %w", i, req.Method, werr)
					resp.Results = nil
					break
				}
				resp.Results[i] = w
			}
		}
	} else if wh, ok := p.ForwardedObject(req.ObjID); ok {
		resp.Err = wh
	} else {
		resp.Err = &NoSuchObjectError{ObjID: req.ObjID}
	}

	encStart := p.statsNow()
	buf := transport.GetBuffer()
	out, err := wire.MarshalAppend(buf, resp)
	p.observeSince(p.encNs, encStart)
	if err != nil {
		// The response contained an unencodable value; degrade to an error
		// response rather than killing the connection. The failed attempt
		// left buf untouched (MarshalAppend returns nil on error), so it is
		// reused for the second attempt and released if that fails too.
		resp = &callResponse{Err: &wire.RemoteError{TypeName: "rmi.EncodeError", Message: err.Error()}}
		out, err = wire.MarshalAppend(buf, resp)
		if err != nil {
			transport.PutBuffer(buf)
			return nil, fmt.Errorf("encode response: %w", err)
		}
	}
	return out, nil
}
