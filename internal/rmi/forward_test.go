package rmi_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/rmi"
)

// TestForwardedObjectWrongHome exercises the migration tombstone: calls on
// an object forwarded to a new home fail with the typed WrongHomeError —
// carrying the cluster-wide key and the epoch of the move across the wire —
// instead of an opaque NoSuchObjectError.
func TestForwardedObjectWrongHome(t *testing.T) {
	server, client := newPair(t)
	ref := exportCalc(t, server)
	ctx := context.Background()

	if _, err := client.Call(ctx, ref, "Add", 1, 2); err != nil {
		t.Fatal(err)
	}

	server.ForwardObject(ref.ObjID, "accounts/alice", 7)

	_, err := client.Call(ctx, ref, "Add", 1, 2)
	var wrong *rmi.WrongHomeError
	if !errors.As(err, &wrong) {
		t.Fatalf("call after forward: error = %T %v, want *WrongHomeError", err, err)
	}
	if wrong.Key != "accounts/alice" || wrong.NewEpoch != 7 {
		t.Errorf("WrongHomeError = %+v, want key accounts/alice epoch 7", wrong)
	}

	// The tombstone is queryable locally too (the batch executor's path).
	if wh, ok := server.ForwardedObject(ref.ObjID); !ok || wh.Key != "accounts/alice" || wh.NewEpoch != 7 {
		t.Errorf("ForwardedObject = %+v, %v", wh, ok)
	}
	// Non-forwarded ids stay NoSuchObject.
	badRef := ref
	badRef.ObjID = ref.ObjID + 1000
	var nso *rmi.NoSuchObjectError
	if _, err := client.Call(ctx, badRef, "Add", 1, 2); !errors.As(err, &nso) {
		t.Errorf("unknown id error = %v, want NoSuchObjectError", err)
	}
}
