package rmi_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/rmi"
)

// skeletonService implements rmi.LocalDispatcher by hand, covering the fast
// path, the handled=false fallback to reflective dispatch, error
// passthrough, and panic containment.
type skeletonService struct {
	rmi.RemoteBase
	fastCalls int
}

func (s *skeletonService) Double(v int64) int64 { return 2 * v }

func (s *skeletonService) Fails() (int64, error) { return 0, errors.New("skeleton boom") }

func (s *skeletonService) Panics() int64 { panic("skeleton panic") }

// ReflectOnly is deliberately absent from DispatchLocal: it must still work
// through reflective dispatch.
func (s *skeletonService) ReflectOnly(v int64) int64 { return v + 1 }

func (s *skeletonService) DispatchLocal(_ context.Context, method string, args []any, buf []any) ([]any, bool, error) {
	switch method {
	case "Double":
		if len(args) != 1 {
			return nil, false, nil
		}
		v, ok := args[0].(int64)
		if !ok {
			return nil, false, nil
		}
		s.fastCalls++
		return append(buf[:0], s.Double(v)), true, nil
	case "Fails":
		s.fastCalls++
		_, err := s.Fails()
		return nil, true, err
	case "Panics":
		s.fastCalls++
		return append(buf[:0], s.Panics()), true, nil
	}
	return nil, false, nil
}

func TestLocalDispatcherFastPath(t *testing.T) {
	network := netsim.New(netsim.Instant)
	defer network.Close()
	server := rmi.NewPeer(network, rmi.WithLogf(func(string, ...any) {}))
	if err := server.Serve("skel"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	svc := &skeletonService{}
	ref, err := server.Export(svc, "rmitest.Skeleton")
	if err != nil {
		t.Fatal(err)
	}
	client := rmi.NewPeer(network, rmi.WithLogf(func(string, ...any) {}))
	defer client.Close()
	ctx := context.Background()

	res, err := client.Call(ctx, ref, "Double", int64(21))
	if err != nil || res[0].(int64) != 42 {
		t.Fatalf("Double = %v, %v; want 42", res, err)
	}
	if svc.fastCalls != 1 {
		t.Fatalf("fast path not taken: %d fast calls", svc.fastCalls)
	}

	// Methods the skeleton does not handle fall back to reflection.
	res, err = client.Call(ctx, ref, "ReflectOnly", int64(41))
	if err != nil || res[0].(int64) != 42 {
		t.Fatalf("ReflectOnly = %v, %v; want 42", res, err)
	}

	// The method's error reaches the caller like reflective dispatch.
	if _, err := client.Call(ctx, ref, "Fails"); err == nil || !strings.Contains(err.Error(), "skeleton boom") {
		t.Fatalf("Fails = %v, want skeleton boom", err)
	}

	// A panic inside the skeleton becomes a remote error, not a server
	// crash; the connection stays usable.
	if _, err := client.Call(ctx, ref, "Panics"); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Panics = %v, want contained panic error", err)
	}
	if res, err := client.Call(ctx, ref, "Double", int64(5)); err != nil || res[0].(int64) != 10 {
		t.Fatalf("call after panic = %v, %v", res, err)
	}
}
