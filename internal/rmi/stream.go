package rmi

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Response streaming.
//
// A stream call names a registered stream SERVICE instead of an exported
// object: the serving peer dispatches to the StreamServer installed with
// HandleStream, which emits a sequence of wire-encoded entries through an
// EntryWriter. Entries travel inside the transport's chunked frame protocol
// (credit-gated, interleaved with ordinary calls), so the consumer reads
// them strictly in emission order while the producer is still running —
// the substrate beneath core's GetBatch bulk-read path.

// streamRequest is the wire envelope of a stream call: the service name
// and the service-specific request value.
type streamRequest struct {
	Service string
	Req     any
}

func encStreamRequest(x wire.Enc, r *streamRequest) error {
	x.BeginStruct("rmi.stream.req", 2)
	x.Str(r.Service)
	return x.Value(r.Req)
}

func decStreamRequest(x wire.Dec, r *streamRequest, n int) error {
	var err error
	if n > 0 {
		if r.Service, err = x.Str(); err != nil {
			return err
		}
	}
	if n > 1 {
		if r.Req, err = x.Value(); err != nil {
			return err
		}
	}
	return x.SkipFields(n - 2)
}

func init() {
	wire.MustRegisterCompiled("rmi.stream.req", true, encStreamRequest, decStreamRequest)
}

// StreamServer handles one stream call: it decodes req (already FromWire-
// converted) and emits entries through w. A returned error reaches the
// caller's StreamCall after the entries written so far.
type StreamServer func(ctx context.Context, req any, w *EntryWriter) error

// HandleStream installs fn as the handler for stream calls naming service.
// Must be called before Serve; later installs replace earlier ones.
func (p *Peer) HandleStream(service string, fn StreamServer) {
	p.mu.Lock()
	if p.streams == nil {
		p.streams = make(map[string]StreamServer)
	}
	p.streams[service] = fn
	p.mu.Unlock()
}

// handleStream is the transport.StreamHandler for this peer.
func (p *Peer) handleStream(ctx context.Context, payload []byte, w *transport.StreamWriter) error {
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		return fmt.Errorf("decode stream request: %w", err)
	}
	req, ok := msg.(*streamRequest)
	if !ok {
		return fmt.Errorf("unexpected stream request type %T", msg)
	}
	p.mu.Lock()
	fn := p.streams[req.Service]
	p.mu.Unlock()
	if fn == nil {
		return fmt.Errorf("rmi: no stream service %q", req.Service)
	}
	return fn(ctx, p.FromWire(req.Req), &EntryWriter{p: p, w: w})
}

// EntryWriter emits one stream's entries: each WriteEntry frames a
// length-prefixed wire message into the response stream and flushes, so the
// entry reaches the consumer without waiting for a full chunk. Not safe for
// concurrent use.
type EntryWriter struct {
	p *Peer
	w *transport.StreamWriter
}

// WriteEntry encodes v (remote objects become refs, like call results) and
// streams it. Blocks when the stream is out of flow-control credit;
// surfaces transport.ErrStreamCanceled once the consumer is gone.
func (ew *EntryWriter) WriteEntry(v any) error {
	wv, err := ew.p.ToWire(v)
	if err != nil {
		return fmt.Errorf("rmi: marshal stream entry: %w", err)
	}
	buf := transport.GetBuffer()
	// Reserve room for the maximal uvarint prefix, encode, then write the
	// prefix tight against the entry.
	const maxPrefix = binary.MaxVarintLen64
	for len(buf) < maxPrefix {
		buf = append(buf, 0)
	}
	out, err := wire.MarshalAppend(buf, wv)
	if err != nil {
		transport.PutBuffer(buf)
		return fmt.Errorf("rmi: encode stream entry: %w", err)
	}
	entryLen := len(out) - maxPrefix
	var pre [maxPrefix]byte
	preLen := binary.PutUvarint(pre[:], uint64(entryLen))
	start := maxPrefix - preLen
	copy(out[start:], pre[:preLen])
	if _, err := ew.w.Write(out[start:]); err != nil {
		transport.PutBuffer(out)
		return err
	}
	transport.PutBuffer(out)
	return ew.w.Flush()
}

// StreamCall is the consumer end of a stream call: Next returns decoded
// entries strictly in emission order while later entries are in flight.
type StreamCall struct {
	p  *Peer
	r  *transport.StreamReader
	br *bufio.Reader
}

// CallStream issues a stream call against service at endpoint. The caller
// must drain the returned StreamCall to io.EOF or Close it.
func (p *Peer) CallStream(ctx context.Context, endpoint, service string, req any) (*StreamCall, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	p.calls.Add(1)
	wreq, err := p.ToWire(req)
	if err != nil {
		return nil, fmt.Errorf("rmi: marshal stream request: %w", err)
	}
	buf := transport.GetBuffer()
	payload, err := wire.MarshalAppend(buf, &streamRequest{Service: service, Req: wreq})
	if err != nil {
		transport.PutBuffer(buf)
		return nil, fmt.Errorf("rmi: encode stream request: %w", err)
	}
	r, err := p.pool.CallStream(ctx, endpoint, payload)
	transport.PutBuffer(payload)
	if err != nil {
		return nil, &RemoteException{Op: "stream " + service, Endpoint: endpoint, Err: err}
	}
	return &StreamCall{p: p, r: r, br: bufio.NewReader(r)}, nil
}

// Next returns the next entry, or io.EOF after the last. A stream failed
// mid-way yields its delivered entries, then the error.
func (sc *StreamCall) Next() (any, error) {
	n, err := binary.ReadUvarint(sc.br)
	if err != nil {
		return nil, err
	}
	buf := transport.GetBuffer()
	if cap(buf) < int(n) {
		transport.PutBuffer(buf)
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(sc.br, buf); err != nil {
		transport.PutBuffer(buf)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	msg, err := wire.Unmarshal(buf)
	transport.PutBuffer(buf)
	if err != nil {
		return nil, fmt.Errorf("rmi: decode stream entry: %w", err)
	}
	return sc.p.FromWire(msg), nil
}

// Close abandons the stream, canceling the producer. Safe after EOF.
func (sc *StreamCall) Close() error { return sc.r.Close() }
