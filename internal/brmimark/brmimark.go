// Package brmimark is the single source of truth for the comment
// directives of the batching programming model. Both producers of the
// markers (interface authors) and every consumer — brmigen's code
// generator (internal/codegen) and the brmivet static analyzers
// (internal/analysis/checks) — resolve the marker strings through this
// package, so a marker can never drift between the generator's parse
// and the analyzers' checks.
//
// Directive comments follow the Go convention for tool directives: a
// line comment whose text starts, without a space, at the directive
// name — e.g.
//
//	//brmi:remote
//	//brmi:readonly
//	//brmivet:ignore poolcheck buffer ownership moves to the frame writer
package brmimark

import (
	"go/ast"
	"go/token"
	"strings"
)

// Marker names. The constants carry no leading "//".
const (
	// Remote marks an interface declaration for brmigen generation: the
	// interface is a remote interface and gets a stub, a batch
	// interface, and a cursor interface.
	Remote = "brmi:remote"

	// Readonly marks a method of a remote interface as declared
	// idempotent and side-effect free: its batch-interface method
	// records with CallRO and the result is cacheable under a lease.
	// The declaration is a contract; brmigen validates the signature
	// shape at parse time and the readonlypure analyzer checks the
	// implementation bodies.
	Readonly = "brmi:readonly"

	// VetIgnore suppresses a brmivet diagnostic. The comment must name
	// the analyzer being silenced and give a reason:
	//
	//	//brmivet:ignore <analyzer> <reason...>
	//
	// placed on the flagged line or on its own line directly above it.
	// A VetIgnore without an analyzer name or without a reason is
	// itself reported by brmivet.
	VetIgnore = "brmivet:ignore"
)

// Directive splits a raw comment (with or without the leading "//")
// into a brmi directive name and its trailing arguments. ok is false
// when the comment is not a brmi or brmivet directive at all.
//
// Per the Go tool-directive convention, the name must follow the "//"
// immediately — no space, no extra slashes. That keeps prose and doc
// examples that merely mention a directive (like this comment) from
// being read as one.
func Directive(comment string) (name, args string, ok bool) {
	text := strings.TrimPrefix(comment, "//")
	if !strings.HasPrefix(text, "brmi:") && !strings.HasPrefix(text, "brmivet:") {
		return "", "", false
	}
	name, args, _ = strings.Cut(text, " ")
	return name, strings.TrimSpace(args), true
}

// Has reports whether any comment in the groups is exactly the named
// directive (ignoring trailing arguments), returning the position of
// the first matching comment.
func Has(name string, groups ...*ast.CommentGroup) (token.Pos, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if n, _, ok := Directive(c.Text); ok && n == name {
				return c.Pos(), true
			}
		}
	}
	return token.NoPos, false
}
