package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders per-server snapshots in the Prometheus text
// exposition format (version 0.0.4). Metric names gain a "brmi_" prefix
// with dots mapped to underscores; every series carries a server label;
// counters get the "_total" suffix; histograms expand to cumulative
// _bucket{le=...} series plus _sum and _count. Servers are emitted in
// sorted order under a single # TYPE header per metric, as the format
// requires.
func WritePrometheus(w io.Writer, snaps map[string]*Snapshot) error {
	servers := make([]string, 0, len(snaps))
	for ep := range snaps {
		servers = append(servers, ep)
	}
	sort.Strings(servers)

	type series struct {
		server string
		snap   *Snapshot
	}
	all := make([]series, 0, len(servers))
	for _, ep := range servers {
		if snaps[ep] != nil {
			all = append(all, series{server: ep, snap: snaps[ep]})
		}
	}

	// Collect the union of metric names per section so each metric is
	// emitted once, grouped across servers.
	names := func(get func(*Snapshot) []string) []string {
		set := make(map[string]struct{})
		for _, s := range all {
			for _, n := range get(s.snap) {
				set[n] = struct{}{}
			}
		}
		out := make([]string, 0, len(set))
		for n := range set {
			out = append(out, n)
		}
		sort.Strings(out)
		return out
	}

	for _, name := range names(func(s *Snapshot) []string { return valueNames(s.Counters) }) {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
			return err
		}
		for _, s := range all {
			if _, err := fmt.Fprintf(w, "%s{server=%q} %d\n", pn, s.server, s.snap.Counter(name)); err != nil {
				return err
			}
		}
	}
	for _, name := range names(func(s *Snapshot) []string { return valueNames(s.Gauges) }) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
			return err
		}
		for _, s := range all {
			if _, err := fmt.Fprintf(w, "%s{server=%q} %d\n", pn, s.server, s.snap.Gauge(name)); err != nil {
				return err
			}
		}
	}
	for _, name := range names(func(s *Snapshot) []string { return histNames(s.Hists) }) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, s := range all {
			h := s.snap.Hist(name)
			var cum int64
			if h != nil {
				for i, n := range h.Buckets {
					cum += n
					if _, err := fmt.Fprintf(w, "%s_bucket{server=%q,le=\"%d\"} %d\n", pn, s.server, BucketUpper(i), cum); err != nil {
						return err
					}
				}
			}
			var count, sum int64
			if h != nil {
				count, sum = h.Count, h.Sum
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{server=%q,le=\"+Inf\"} %d\n", pn, s.server, count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum{server=%q} %d\n", pn, s.server, sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count{server=%q} %d\n", pn, s.server, count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promName maps a registry metric name to a Prometheus metric name.
func promName(name string) string {
	return "brmi_" + strings.NewReplacer(".", "_", "-", "_", "/", "_").Replace(name)
}

func valueNames(vs []NamedValue) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}

func histNames(hs []NamedHist) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = h.Name
	}
	return out
}
