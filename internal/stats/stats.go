// Package stats is the metrics core for the BRMI runtime: lock-free
// counters, gauges, and fixed-bucket histograms with snapshot/merge
// semantics. The hot path (Counter.Add, Gauge.Set, Histogram.Observe) is
// a single atomic operation — zero allocations, zero locks — so every
// layer from the frame writer up can be instrumented unconditionally.
//
// Metrics are nil-safe: all mutation methods on a nil metric are no-ops,
// so components hold plain metric pointers and leave them nil when no
// registry is attached. Time is read through a pluggable Clock so
// deterministic simulations (netsim's virtual clock) see deterministic
// latencies.
//
// Naming convention: "<layer>.<metric>" in snake_case, e.g.
// "transport.frames_in", "cluster.flush_waves". The Prometheus exporter
// maps dots to underscores and prefixes "brmi_".
package stats

import (
	"sort"
	"sync"
	"time"
)

// Clock is the time source for latency measurements. netsim.Clock
// satisfies it; the default is the wall clock.
type Clock interface {
	Now() time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Registry owns a flat namespace of metrics. Get-or-create accessors
// (Counter, Gauge, Histogram, Func) take a lock; the returned metric
// handles are then lock-free. Safe for concurrent use.
type Registry struct {
	clock Clock

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// Option configures a Registry.
type Option func(*Registry)

// WithClock sets the time source used by Now (and therefore by every
// duration measured against this registry).
func WithClock(c Clock) Option {
	return func(r *Registry) {
		if c != nil {
			r.clock = c
		}
	}
}

// New creates an empty registry reading the wall clock unless WithClock
// overrides it.
func New(opts ...Option) *Registry {
	r := &Registry{
		clock:    wallClock{},
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Now reads the registry's clock. A nil registry reads the wall clock,
// so duration measurements degrade gracefully when stats are detached.
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Now()
	}
	return r.clock.Now()
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil (whose methods are no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns nil (whose methods are no-ops).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns nil (whose methods are no-ops).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Func registers a gauge evaluated at snapshot time. Used for state that
// already has an authoritative owner (pool sizes, epochs) where keeping a
// second live gauge in sync would invite drift. Re-registering a name
// replaces the function. No-op on a nil registry.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot captures every metric's current value into a canonical
// (name-sorted) Snapshot. Concurrent writers keep writing during the
// capture; each individual value is an atomic read, so the snapshot is a
// consistent per-metric view. Func gauges are evaluated here and appear
// among the gauges.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{
		Counters: make([]NamedValue, 0, len(r.counters)),
		Gauges:   make([]NamedValue, 0, len(r.gauges)+len(r.funcs)),
		Hists:    make([]NamedHist, 0, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{Name: name, V: int64(c.Get())})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{Name: name, V: g.Get()})
	}
	for name, fn := range r.funcs {
		s.Gauges = append(s.Gauges, NamedValue{Name: name, V: fn()})
	}
	for name, h := range r.hists {
		count, sum, buckets := h.read()
		s.Hists = append(s.Hists, NamedHist{Name: name, Count: count, Sum: sum, Buckets: buckets})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}
