package stats

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready;
// a nil Counter ignores writes and reads as zero.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative; negative deltas are ignored).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Get returns the current total.
func (c *Counter) Get() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 level (queue depth, in-flight calls).
// The zero value is ready; a nil Gauge ignores writes and reads as zero.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Get returns the current level.
func (g *Gauge) Get() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i counts observations
// whose value has bit length i, i.e. v == 0 for bucket 0 and
// 2^(i-1) <= v < 2^i for i >= 1. Exponential buckets cover the full
// int64 range (nanosecond latencies through gigabyte sizes) with ~2x
// resolution and need no per-histogram configuration, which keeps
// snapshots mergeable across servers by construction.
const histBuckets = 64

// Histogram is a fixed-bucket exponential histogram. Observe is a bucket
// index computation plus three atomic adds — no locks, no allocation.
// The zero value is ready; a nil Histogram ignores observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a value to its bucket. Negative values clamp to
// bucket 0; values with bit length >= histBuckets clamp to the last.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound of bucket i (the value
// reported for percentiles landing in that bucket).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return int64(^uint64(0) >> 1) // effectively +Inf
	}
	return (int64(1) << i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// read captures the histogram into plain values. Buckets are trimmed to
// the highest non-empty one; count/sum/buckets are each atomically read
// but not mutually atomic (documented snapshot semantics: per-value
// consistency, not cross-value).
func (h *Histogram) read() (count, sum int64, buckets []int64) {
	count = h.count.Load()
	sum = h.sum.Load()
	top := -1
	var raw [histBuckets]int64
	for i := range h.buckets {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			top = i
		}
	}
	if top >= 0 {
		buckets = append([]int64(nil), raw[:top+1]...)
	}
	return count, sum, buckets
}
