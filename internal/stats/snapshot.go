package stats

import (
	"math"
	"sort"

	"repro/internal/wire"
)

// NamedValue is one counter or gauge reading.
type NamedValue struct {
	Name string
	V    int64
}

// NamedHist is one histogram reading. Buckets[i] counts observations of
// bit length i (see Histogram); trailing empty buckets are trimmed.
type NamedHist struct {
	Name    string
	Count   int64
	Sum     int64
	Buckets []int64
}

// Snapshot is a point-in-time capture of a registry, in canonical form:
// each section sorted by name. Snapshots travel over the wire (the
// stats.Node service returns them) and merge associatively, so
// cluster-wide aggregation is Merge-reduce over per-server scrapes.
type Snapshot struct {
	Counters []NamedValue
	Gauges   []NamedValue
	Hists    []NamedHist
}

func init() {
	wire.MustRegister("stats.NamedValue", NamedValue{})
	wire.MustRegister("stats.NamedHist", NamedHist{})
	wire.MustRegister("stats.Snapshot", &Snapshot{})
}

// Counter returns the named counter's value (0 if absent).
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Name >= name })
	if i < len(s.Counters) && s.Counters[i].Name == name {
		return s.Counters[i].V
	}
	return 0
}

// Gauge returns the named gauge's value (0 if absent).
func (s *Snapshot) Gauge(name string) int64 {
	if s == nil {
		return 0
	}
	i := sort.Search(len(s.Gauges), func(i int) bool { return s.Gauges[i].Name >= name })
	if i < len(s.Gauges) && s.Gauges[i].Name == name {
		return s.Gauges[i].V
	}
	return 0
}

// Hist returns the named histogram reading, or nil if absent.
func (s *Snapshot) Hist(name string) *NamedHist {
	if s == nil {
		return nil
	}
	i := sort.Search(len(s.Hists), func(i int) bool { return s.Hists[i].Name >= name })
	if i < len(s.Hists) && s.Hists[i].Name == name {
		return &s.Hists[i]
	}
	return nil
}

// Quantile returns the value at quantile q (0 < q <= 1) as the upper
// bound of the bucket where the rank falls — an overestimate by at most
// 2x, which is the resolution the exponential buckets buy. Returns 0 for
// an empty histogram.
func (h *NamedHist) Quantile(q float64) int64 {
	if h == nil || h.Count <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(len(h.Buckets) - 1)
}

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *NamedHist) Mean() int64 {
	if h == nil || h.Count <= 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Merge returns the element-wise sum of a and b as a new canonical
// Snapshot: counters, gauges, and histogram counts/sums/buckets all add.
// Merge is commutative and associative (snapshot canonical form makes
// the result independent of merge order), so folding any tree of
// per-server snapshots yields the same cluster total.
func Merge(a, b *Snapshot) *Snapshot {
	if a == nil {
		a = &Snapshot{}
	}
	if b == nil {
		b = &Snapshot{}
	}
	out := &Snapshot{}
	out.Counters = mergeValues(a.Counters, b.Counters)
	out.Gauges = mergeValues(a.Gauges, b.Gauges)
	out.Hists = mergeHists(a.Hists, b.Hists)
	return out
}

func mergeValues(a, b []NamedValue) []NamedValue {
	out := make([]NamedValue, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Name < b[j].Name:
			out = append(out, a[i])
			i++
		case a[i].Name > b[j].Name:
			out = append(out, b[j])
			j++
		default:
			out = append(out, NamedValue{Name: a[i].Name, V: a[i].V + b[j].V})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func mergeHists(a, b []NamedHist) []NamedHist {
	out := make([]NamedHist, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Name < b[j].Name:
			out = append(out, copyHist(a[i]))
			i++
		case a[i].Name > b[j].Name:
			out = append(out, copyHist(b[j]))
			j++
		default:
			out = append(out, addHists(a[i], b[j]))
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		out = append(out, copyHist(a[i]))
	}
	for ; j < len(b); j++ {
		out = append(out, copyHist(b[j]))
	}
	return out
}

func copyHist(h NamedHist) NamedHist {
	h.Buckets = append([]int64(nil), h.Buckets...)
	return h
}

func addHists(a, b NamedHist) NamedHist {
	n := len(a.Buckets)
	if len(b.Buckets) > n {
		n = len(b.Buckets)
	}
	buckets := make([]int64, n)
	copy(buckets, a.Buckets)
	for i, v := range b.Buckets {
		buckets[i] += v
	}
	return NamedHist{Name: a.Name, Count: a.Count + b.Count, Sum: a.Sum + b.Sum, Buckets: buckets}
}
