package stats

import (
	"testing"
)

// The alloc budget for the hot path is zero: instrumented layers call
// these on every frame/call, so a single allocation here would show up
// in every throughput benchmark.

func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("bench.counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if testing.AllocsPerRun(100, func() { c.Inc() }) != 0 {
		b.Fatal("Counter.Inc allocates")
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	r := New()
	c := r.Counter("bench.counter")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeAdd(b *testing.B) {
	r := New()
	g := r.Gauge("bench.gauge")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
	if testing.AllocsPerRun(100, func() { g.Add(1) }) != 0 {
		b.Fatal("Gauge.Add allocates")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("bench.hist")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
	if testing.AllocsPerRun(100, func() { h.Observe(4096) }) != 0 {
		b.Fatal("Histogram.Observe allocates")
	}
}

func BenchmarkNilMetricOps(b *testing.B) {
	var c *Counter
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i))
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := New()
	for i := 0; i < 16; i++ {
		r.Counter(names16[i]).Add(uint64(i))
		r.Histogram("h." + names16[i]).Observe(int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

var names16 = []string{
	"a", "b", "c", "d", "e", "f", "g", "h",
	"i", "j", "k", "l", "m", "n", "o", "p",
}
