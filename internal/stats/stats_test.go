package stats

import (
	"bufio"
	"fmt"
	"math/rand"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("layer.things")
	c.Inc()
	c.Add(4)
	if got := c.Get(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("layer.things") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("layer.depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Get(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	r.Func("layer.fn", func() int64 { return 42 })
	s := r.Snapshot()
	if got := s.Counter("layer.things"); got != 5 {
		t.Fatalf("snapshot counter = %d, want 5", got)
	}
	if got := s.Gauge("layer.depth"); got != 4 {
		t.Fatalf("snapshot gauge = %d, want 4", got)
	}
	if got := s.Gauge("layer.fn"); got != 42 {
		t.Fatalf("snapshot func gauge = %d, want 42", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("layer.lat")
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	s := r.Snapshot().Hist("layer.lat")
	if s == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0+1+2+3+4+1000-5 {
		t.Fatalf("sum = %d", s.Sum)
	}
	// 0 and -5 land in bucket 0; 1 in bucket 1; 2,3 in bucket 2; 4 in
	// bucket 3; 1000 in bucket 10.
	want := []int64{2, 1, 2, 1, 0, 0, 0, 0, 0, 0, 1}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3 (upper bound of bucket 2)", q)
	}
	if q := s.Quantile(0.99); q != 1023 {
		t.Fatalf("p99 = %d, want 1023 (upper bound of bucket 10)", q)
	}
	if m := s.Mean(); m != 1005/7 {
		t.Fatalf("mean = %d, want %d", m, 1005/7)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.Func("x", func() int64 { return 1 })
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if r.Now().IsZero() {
		t.Fatal("nil registry Now returned zero time")
	}
	var c *Counter
	c.Inc()
	c.Add(3)
	var g *Gauge
	g.Set(1)
	g.Add(1)
	var h *Histogram
	h.Observe(5)
	var nh *NamedHist
	if nh.Quantile(0.5) != 0 || nh.Mean() != 0 {
		t.Fatal("nil NamedHist not zero")
	}
}

type fixedClock struct{ t time.Time }

func (f fixedClock) Now() time.Time { return f.t }

func TestWithClock(t *testing.T) {
	at := time.Unix(1234, 0)
	r := New(WithClock(fixedClock{t: at}))
	if !r.Now().Equal(at) {
		t.Fatalf("Now() = %v, want %v", r.Now(), at)
	}
}

// TestConcurrentHammer drives every metric kind from many goroutines so
// the race detector can vet the hot path, then checks the totals.
func TestConcurrentHammer(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	// Concurrent get-or-create from other goroutines.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter(fmt.Sprintf("dyn.%d", i%10)).Inc()
				_ = r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Get(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Get(); got != workers*per {
		t.Fatalf("gauge = %d, want %d", got, workers*per)
	}
	s := r.Snapshot().Hist("h")
	if s.Count != workers*per {
		t.Fatalf("hist count = %d, want %d", s.Count, workers*per)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d after quiesce", bucketTotal, s.Count)
	}
}

// TestSnapshotDuringWrite takes snapshots while writers run: every
// captured value must be a value the metric actually passed through
// (monotone, within bounds), never torn.
func TestSnapshotDuringWrite(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50000; i++ {
			c.Inc()
			h.Observe(int64(i))
		}
	}()
	var lastC, lastH int64
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		cv := s.Counter("c")
		if cv < lastC {
			t.Fatalf("counter went backwards: %d then %d", lastC, cv)
		}
		lastC = cv
		if hs := s.Hist("h"); hs != nil {
			if hs.Count < lastH {
				t.Fatalf("hist count went backwards: %d then %d", lastH, hs.Count)
			}
			lastH = hs.Count
			var bucketTotal int64
			for _, b := range hs.Buckets {
				bucketTotal += b
			}
			// Buckets are read after count; concurrent observes may push
			// the bucket total past the captured count but never below
			// count minus in-flight writes. The strict check is the final
			// quiesced snapshot below.
			if bucketTotal < 0 {
				t.Fatal("negative bucket total")
			}
		}
	}
	<-done
	s := r.Snapshot()
	if got := s.Counter("c"); got != 50000 {
		t.Fatalf("final counter = %d, want 50000", got)
	}
	hs := s.Hist("h")
	var bucketTotal int64
	for _, b := range hs.Buckets {
		bucketTotal += b
	}
	if hs.Count != 50000 || bucketTotal != 50000 {
		t.Fatalf("final hist count=%d buckets=%d, want 50000/50000", hs.Count, bucketTotal)
	}
}

// randomSnapshot builds a snapshot with a randomized subset of a shared
// name universe so merges exercise disjoint and overlapping names.
func randomSnapshot(rng *rand.Rand) *Snapshot {
	r := New()
	for i := 0; i < 8; i++ {
		if rng.Intn(2) == 0 {
			c := r.Counter(fmt.Sprintf("c.%d", i))
			c.Add(uint64(rng.Intn(100)))
		}
		if rng.Intn(2) == 0 {
			r.Gauge(fmt.Sprintf("g.%d", i)).Set(rng.Int63n(100) - 50)
		}
		if rng.Intn(2) == 0 {
			h := r.Histogram(fmt.Sprintf("h.%d", i))
			for j := rng.Intn(20); j > 0; j-- {
				h.Observe(rng.Int63n(1 << 20))
			}
		}
	}
	return r.Snapshot()
}

// TestMergeAssociativity: property test — Merge(a, Merge(b, c)) ==
// Merge(Merge(a, b), c) and Merge(a, b) == Merge(b, a) on randomized
// snapshots, byte-for-byte (canonical form makes DeepEqual valid).
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		a, b, c := randomSnapshot(rng), randomSnapshot(rng), randomSnapshot(rng)
		left := Merge(Merge(a, b), c)
		right := Merge(a, Merge(b, c))
		if !snapshotsEqual(left, right) {
			t.Fatalf("iter %d: associativity violated:\n left %+v\nright %+v", iter, left, right)
		}
		ab, ba := Merge(a, b), Merge(b, a)
		if !snapshotsEqual(ab, ba) {
			t.Fatalf("iter %d: commutativity violated", iter)
		}
		// Identity: merging the empty snapshot changes nothing.
		if !snapshotsEqual(Merge(a, &Snapshot{}), normalize(a)) {
			t.Fatalf("iter %d: empty merge not identity", iter)
		}
	}
}

// normalize passes a snapshot through copyHist so DeepEqual ignores
// nil-vs-empty bucket slice spelling.
func normalize(s *Snapshot) *Snapshot {
	return Merge(s, &Snapshot{})
}

func snapshotsEqual(a, b *Snapshot) bool {
	return reflect.DeepEqual(normalize(a), normalize(b))
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomSnapshot(rng)
	data, err := wire.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	v, err := wire.Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	got, ok := v.(*Snapshot)
	if !ok {
		t.Fatalf("decoded %T, want *Snapshot", v)
	}
	if !snapshotsEqual(s, got) {
		t.Fatalf("round trip mismatch:\n sent %+v\n got %+v", s, got)
	}
}

// TestPrometheusConformance parses every exported line: series lines
// must match the exposition grammar, every series must carry a server
// label, no (name, labels) pair may repeat, histogram buckets must be
// cumulative, and each # TYPE must precede its series.
func TestPrometheusConformance(t *testing.T) {
	reg1, reg2 := New(), New()
	for _, r := range []*Registry{reg1, reg2} {
		r.Counter("transport.frames_in").Add(10)
		r.Gauge("transport.pending_calls").Set(3)
		h := r.Histogram("core.wave_ns")
		for i := int64(1); i < 5000; i *= 3 {
			h.Observe(i)
		}
	}
	reg2.Counter("cluster.wrong_home_retries").Inc() // name present on one server only

	var sb strings.Builder
	err := WritePrometheus(&sb, map[string]*Snapshot{
		"s1": reg1.Snapshot(),
		"s2": reg2.Snapshot(),
	})
	if err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()

	seriesRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)\{([^}]*)\} (-?[0-9]+)$`)
	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	labelRe := regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="([^"\\]*)"$`)

	typed := make(map[string]string) // base metric name -> type
	seen := make(map[string]bool)    // full series key -> emitted
	type histState struct {
		lastCum int64
		count   map[string]int64 // server -> _count value
		infSeen map[string]int64 // server -> +Inf bucket value
	}
	hists := make(map[string]*histState)

	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			if _, dup := typed[m[1]]; dup {
				t.Fatalf("duplicate # TYPE for %s", m[1])
			}
			typed[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unrecognized comment line: %q", line)
		}
		m := seriesRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line does not match exposition grammar: %q", line)
		}
		name, labels := m[1], m[2]
		if seen[name+"{"+labels+"}"] {
			t.Fatalf("duplicate series: %s{%s}", name, labels)
		}
		seen[name+"{"+labels+"}"] = true
		var server, le string
		for _, l := range strings.Split(labels, ",") {
			lm := labelRe.FindStringSubmatch(l)
			if lm == nil {
				t.Fatalf("bad label %q in line %q", l, line)
			}
			switch lm[1] {
			case "server":
				server = lm[2]
			case "le":
				le = lm[2]
			}
		}
		if server == "" {
			t.Fatalf("series without server label: %q", line)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count", "_total"} {
			if strings.HasSuffix(name, suffix) {
				if typed[strings.TrimSuffix(name, suffix)] != "" {
					base = strings.TrimSuffix(name, suffix)
				}
			}
		}
		mtype, ok := typed[base]
		if !ok {
			t.Fatalf("series %s has no preceding # TYPE", name)
		}
		if !strings.HasPrefix(base, "brmi_") {
			t.Fatalf("metric %s missing brmi_ prefix", base)
		}
		if mtype == "counter" && !strings.HasSuffix(name, "_total") {
			t.Fatalf("counter series %s missing _total suffix", name)
		}
		if mtype == "histogram" {
			hs := hists[base]
			if hs == nil {
				hs = &histState{count: map[string]int64{}, infSeen: map[string]int64{}}
				hists[base] = hs
			}
			var v int64
			fmt.Sscanf(m[3], "%d", &v)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					t.Fatalf("bucket series without le label: %q", line)
				}
				if le == "+Inf" {
					hs.infSeen[server] = v
					hs.lastCum = 0
				} else {
					if v < hs.lastCum {
						t.Fatalf("non-cumulative buckets in %s: %d after %d", name, v, hs.lastCum)
					}
					hs.lastCum = v
				}
			case strings.HasSuffix(name, "_count"):
				hs.count[server] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for base, hs := range hists {
		for server, count := range hs.count {
			if inf, ok := hs.infSeen[server]; !ok || inf != count {
				t.Fatalf("%s server %s: +Inf bucket %d != count %d", base, server, hs.infSeen[server], count)
			}
		}
	}
	// The one-sided counter must appear for both servers (0 on the other).
	if !strings.Contains(out, `brmi_cluster_wrong_home_retries_total{server="s1"} 0`) {
		t.Fatal("union of metric names not emitted for all servers")
	}
}
