package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

type appendPayload struct {
	A int64
	B string
	C []byte
	D time.Duration
}

func init() {
	MustRegister("wiretest.appendPayload", appendPayload{})
}

// MarshalAppend must produce byte-identical messages to Marshal and extend
// the caller's buffer in place.
func TestMarshalAppendMatchesMarshal(t *testing.T) {
	vals := []any{
		nil, true, int64(-7), uint64(9), 3.5, "hi", []byte{1, 2},
		appendPayload{A: 1, B: "x", C: []byte{9}, D: time.Second},
		&RemoteError{TypeName: "t", Message: "m"},
		Ref{Endpoint: "s", ObjID: 4, Iface: "I"},
		time.Date(2009, 6, 22, 10, 0, 0, 0, time.UTC),
	}
	for _, v := range vals {
		plain, err := Marshal(v)
		if err != nil {
			t.Fatalf("Marshal(%#v): %v", v, err)
		}
		prefix := []byte("prefix")
		appended, err := MarshalAppend(append([]byte(nil), prefix...), v)
		if err != nil {
			t.Fatalf("MarshalAppend(%#v): %v", v, err)
		}
		if !bytes.HasPrefix(appended, prefix) {
			t.Fatalf("MarshalAppend dropped the existing prefix for %#v", v)
		}
		if !bytes.Equal(appended[len(prefix):], plain) {
			t.Fatalf("MarshalAppend(%#v) differs from Marshal", v)
		}
	}
}

func TestMarshalValuesAppendMatches(t *testing.T) {
	vs := []any{int64(1), "two", appendPayload{A: 3}}
	plain, err := MarshalValues(vs)
	if err != nil {
		t.Fatal(err)
	}
	appended, err := MarshalValuesAppend([]byte("p"), vs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appended[1:], plain) {
		t.Fatal("MarshalValuesAppend differs from MarshalValues")
	}
}

// A reused Decoder must behave like fresh Unmarshal calls across messages
// with different stream type tables.
func TestDecoderReuse(t *testing.T) {
	msgs := []any{
		appendPayload{A: 5, B: "q", D: time.Minute},
		"plain string",
		appendPayload{A: -1},
		int64(77),
	}
	var dec Decoder
	for _, v := range msgs {
		data, err := Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		dec.Reset(data)
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("Decode(%#v): %v", v, err)
		}
		want, err := Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Decoder got %#v, Unmarshal got %#v", got, want)
		}
	}
}

// The encoder's inline type table must keep working past its inline
// capacity (more distinct struct types than array slots in one message).
func TestManyTypesOneMessage(t *testing.T) {
	type t0 struct{ V int64 }
	type t1 struct{ V int64 }
	type t2 struct{ V int64 }
	type t3 struct{ V int64 }
	type t4 struct{ V int64 }
	type t5 struct{ V int64 }
	type t6 struct{ V int64 }
	type t7 struct{ V int64 }
	type t8 struct{ V int64 }
	type t9 struct{ V int64 }
	MustRegister("wiretest.t0", t0{})
	MustRegister("wiretest.t1", t1{})
	MustRegister("wiretest.t2", t2{})
	MustRegister("wiretest.t3", t3{})
	MustRegister("wiretest.t4", t4{})
	MustRegister("wiretest.t5", t5{})
	MustRegister("wiretest.t6", t6{})
	MustRegister("wiretest.t7", t7{})
	MustRegister("wiretest.t8", t8{})
	MustRegister("wiretest.t9", t9{})
	vs := []any{
		t0{0}, t1{1}, t2{2}, t3{3}, t4{4}, t5{5}, t6{6}, t7{7}, t8{8}, t9{9},
		t0{10}, t5{15}, // repeats reuse their stream ids
	}
	data, err := MarshalValues(vs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalValues(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(vs) {
		t.Fatalf("got %d values, want %d", len(out), len(vs))
	}
	if !reflect.DeepEqual(out[0], t0{0}) || !reflect.DeepEqual(out[9], t9{9}) || !reflect.DeepEqual(out[11], t5{15}) {
		t.Fatalf("round trip mismatch: %#v", out)
	}
}

// Duration struct fields keep their zigzag-int wire form (the compiled
// field codec must not switch them to the dynamic kDur form).
func TestDurationFieldWireForm(t *testing.T) {
	v := appendPayload{D: -3 * time.Second}
	data, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.(appendPayload).D != -3*time.Second {
		t.Fatalf("duration round trip: %#v", got)
	}
}
