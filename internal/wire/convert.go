package wire

import (
	"fmt"
	"reflect"
)

// As adapts a wire-decoded dynamic value (int64, uint64, float64, string,
// []any, ...) to the static type T. Generated stubs and typed futures use it
// to give callers the declared result types back.
func As[T any](v any) (T, error) {
	var zero T
	if v == nil {
		return zero, nil
	}
	if t, ok := v.(T); ok {
		return t, nil
	}
	want := reflect.TypeOf(zero)
	if want == nil {
		// T is a non-empty interface the dynamic value does not implement.
		return zero, fmt.Errorf("wire: value %T does not implement %T", v, zero)
	}
	rv := reflect.ValueOf(v)
	if isNumericKind(rv.Kind()) && isNumericKind(want.Kind()) {
		return rv.Convert(want).Interface().(T), nil
	}
	if rv.Kind() == want.Kind() && rv.Type().ConvertibleTo(want) {
		return rv.Convert(want).Interface().(T), nil
	}
	if rv.Kind() == reflect.Slice && want.Kind() == reflect.Slice {
		out := reflect.MakeSlice(want, rv.Len(), rv.Len())
		et := want.Elem()
		for i := 0; i < rv.Len(); i++ {
			el := rv.Index(i).Interface()
			if el == nil {
				continue
			}
			ev := reflect.ValueOf(el)
			switch {
			case ev.Type().AssignableTo(et):
				out.Index(i).Set(ev)
			case isNumericKind(ev.Kind()) && isNumericKind(et.Kind()):
				out.Index(i).Set(ev.Convert(et))
			default:
				return zero, fmt.Errorf("wire: cannot convert element %d (%T) to %s", i, el, et)
			}
		}
		return out.Interface().(T), nil
	}
	return zero, fmt.Errorf("wire: cannot convert %T to %s", v, want)
}

func isNumericKind(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		return true
	default:
		return false
	}
}
