package wire

import (
	"reflect"
	"testing"
	"time"
)

func TestAsExactType(t *testing.T) {
	if v, err := As[string]("x"); err != nil || v != "x" {
		t.Fatalf("got %q %v", v, err)
	}
	if v, err := As[int64](int64(7)); err != nil || v != 7 {
		t.Fatalf("got %d %v", v, err)
	}
}

func TestAsNilYieldsZero(t *testing.T) {
	if v, err := As[int](nil); err != nil || v != 0 {
		t.Fatalf("got %d %v", v, err)
	}
	if v, err := As[string](nil); err != nil || v != "" {
		t.Fatalf("got %q %v", v, err)
	}
	if v, err := As[[]int](nil); err != nil || v != nil {
		t.Fatalf("got %v %v", v, err)
	}
}

func TestAsNumericConversions(t *testing.T) {
	if v, err := As[int](int64(42)); err != nil || v != 42 {
		t.Fatalf("int: %d %v", v, err)
	}
	if v, err := As[int32](int64(-9)); err != nil || v != -9 {
		t.Fatalf("int32: %d %v", v, err)
	}
	if v, err := As[float64](int64(3)); err != nil || v != 3.0 {
		t.Fatalf("float64: %v %v", v, err)
	}
	if v, err := As[uint16](uint64(65535)); err != nil || v != 65535 {
		t.Fatalf("uint16: %d %v", v, err)
	}
	if v, err := As[float32](3.5); err != nil || v != 3.5 {
		t.Fatalf("float32: %v %v", v, err)
	}
}

func TestAsNamedTypes(t *testing.T) {
	type level int
	if v, err := As[level](int64(3)); err != nil || v != 3 {
		t.Fatalf("named int: %v %v", v, err)
	}
	type name string
	if v, err := As[name]("hi"); err != nil || v != "hi" {
		t.Fatalf("named string: %v %v", v, err)
	}
	if v, err := As[time.Duration](int64(5)); err != nil || v != 5 {
		t.Fatalf("duration from int64: %v %v", v, err)
	}
}

func TestAsStringIntNotConfused(t *testing.T) {
	// int→string would be a rune conversion; it must be rejected.
	if _, err := As[string](int64(65)); err == nil {
		t.Fatal("int64 converted to string")
	}
	if _, err := As[int]("65"); err == nil {
		t.Fatal("string converted to int")
	}
}

func TestAsSlices(t *testing.T) {
	got, err := As[[]int]([]any{int64(1), int64(2), int64(3)})
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("got %v %v", got, err)
	}
	gs, err := As[[]string]([]any{"a", "b"})
	if err != nil || !reflect.DeepEqual(gs, []string{"a", "b"}) {
		t.Fatalf("got %v %v", gs, err)
	}
	if _, err := As[[]int]([]any{"not-an-int"}); err == nil {
		t.Fatal("mixed slice converted")
	}
	// nil elements stay zero.
	gz, err := As[[]int]([]any{nil, int64(2)})
	if err != nil || !reflect.DeepEqual(gz, []int{0, 2}) {
		t.Fatalf("got %v %v", gz, err)
	}
}

func TestAsInterfaceMismatch(t *testing.T) {
	if _, err := As[error]("not an error"); err == nil {
		t.Fatal("non-error converted to error")
	}
	var e error = &RemoteError{Message: "x"}
	if v, err := As[error](e); err != nil || v == nil {
		t.Fatalf("error identity: %v %v", v, err)
	}
}

func TestAsAny(t *testing.T) {
	if v, err := As[any]("passthrough"); err != nil || v != "passthrough" {
		t.Fatalf("got %v %v", v, err)
	}
}

func TestAsStructMismatch(t *testing.T) {
	if _, err := As[Ref]("nope"); err == nil {
		t.Fatal("string converted to Ref")
	}
	r := Ref{Endpoint: "e"}
	if v, err := As[Ref](r); err != nil || v != r {
		t.Fatalf("got %v %v", v, err)
	}
}
