package wire

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
)

// structPlan caches the encodable field layout of a registered struct type,
// with per-field codec closures compiled at Register time (see codec.go).
// Types registered with RegisterCompiled additionally carry the fast hooks,
// which replace the per-field reflection loop entirely (see fastcodec.go).
type structPlan struct {
	name   string
	typ    reflect.Type // the struct type (never a pointer)
	fields []fieldPlan

	fastEncVal  func(Enc, any) error        // v is T or *T
	fastEncAddr func(Enc, any) error        // p is *T
	fastDecVal  func(Dec, int) (any, error) // returns T or *T per registration
	fastDecInto func(Dec, any, int) error   // p is *T
}

type fieldPlan struct {
	name  string
	index int
	enc   encFunc
	dec   decFunc
}

// registry maps wire names to struct types and back. It is global, like
// gob's type registry: wire names must be process-wide unique. Lookups are
// on the encode/decode hot path of every struct value, so the registry is a
// copy-on-write snapshot behind an atomic pointer: readers never lock,
// writers (Register, init-time only in practice) copy.
type registry struct {
	mu    sync.Mutex // serializes writers
	state atomic.Pointer[registryState]
}

type registryState struct {
	byName  map[string]*structPlan
	byType  map[reflect.Type]*structPlan
	asPtr   map[reflect.Type]bool // decode as *T rather than T
	errName map[string]bool       // names registered via RegisterError
}

var defaultRegistry = newRegistry()

func newRegistry() *registry {
	r := &registry{}
	r.state.Store(&registryState{
		byName:  make(map[string]*structPlan),
		byType:  make(map[reflect.Type]*structPlan),
		asPtr:   make(map[reflect.Type]bool),
		errName: make(map[string]bool),
	})
	return r
}

// clone copies the current state for a writer. Caller holds r.mu.
func (r *registry) clone() *registryState {
	old := r.state.Load()
	next := &registryState{
		byName:  make(map[string]*structPlan, len(old.byName)+1),
		byType:  make(map[reflect.Type]*structPlan, len(old.byType)+1),
		asPtr:   make(map[reflect.Type]bool, len(old.asPtr)+1),
		errName: make(map[string]bool, len(old.errName)+1),
	}
	for k, v := range old.byName {
		next.byName[k] = v
	}
	for k, v := range old.byType {
		next.byType[k] = v
	}
	for k, v := range old.asPtr {
		next.asPtr[k] = v
	}
	for k, v := range old.errName {
		next.errName[k] = v
	}
	return next
}

// Register associates name with the struct type of sample so values of that
// type (and pointers to it) can be encoded and decoded. If sample is a
// pointer, decoded values are produced as pointers; otherwise as values.
// Registering the same (name, type) pair again is a no-op; conflicting
// re-registration returns an error.
func Register(name string, sample any) error {
	if name == "" {
		return fmt.Errorf("wire: register: empty name")
	}
	t := reflect.TypeOf(sample)
	if t == nil {
		return fmt.Errorf("wire: register %q: nil sample", name)
	}
	wantPtr := false
	if t.Kind() == reflect.Pointer {
		wantPtr = true
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct {
		return fmt.Errorf("wire: register %q: %s is not a struct", name, t)
	}
	plan, err := buildPlan(name, t)
	if err != nil {
		return err
	}

	r := defaultRegistry
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.state.Load()
	if prev, ok := cur.byName[name]; ok {
		if prev.typ != t {
			return fmt.Errorf("wire: register %q: already bound to %s", name, prev.typ)
		}
		if cur.asPtr[t] == wantPtr {
			return nil
		}
		next := r.clone()
		next.asPtr[t] = wantPtr
		r.state.Store(next)
		return nil
	}
	if prev, ok := cur.byType[t]; ok && prev.name != name {
		return fmt.Errorf("wire: register %q: type %s already registered as %q", name, t, prev.name)
	}
	next := r.clone()
	next.byName[name] = plan
	next.byType[t] = plan
	next.asPtr[t] = wantPtr
	r.state.Store(next)
	return nil
}

// MustRegister is Register but panics on error. Intended for package init.
func MustRegister(name string, sample any) {
	if err := Register(name, sample); err != nil {
		panic(err)
	}
}

// RegisterError registers an error type for typed round-tripping. sample must
// be a struct or pointer-to-struct implementing error. The receiving side
// decodes values back into the concrete type so errors.As keeps working.
func RegisterError(name string, sample error) error {
	if err := Register(name, sample); err != nil {
		return err
	}
	r := defaultRegistry
	r.mu.Lock()
	next := r.clone()
	next.errName[name] = true
	r.state.Store(next)
	r.mu.Unlock()
	return nil
}

// MustRegisterError is RegisterError but panics on error.
func MustRegisterError(name string, sample error) {
	if err := RegisterError(name, sample); err != nil {
		panic(err)
	}
}

// TypeNameOf returns the registered wire name for v's type, or the reflect
// type string when unregistered. BRMI exception policies match on this name.
func TypeNameOf(v any) string {
	if v == nil {
		return ""
	}
	if re, ok := v.(*RemoteError); ok && re.TypeName != "" {
		return re.TypeName
	}
	t := reflect.TypeOf(v)
	base := t
	if base.Kind() == reflect.Pointer {
		base = base.Elem()
	}
	if p, ok := defaultRegistry.state.Load().byType[base]; ok {
		return p.name
	}
	return t.String()
}

func buildPlan(name string, t reflect.Type) (*structPlan, error) {
	plan := &structPlan{name: name, typ: t}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		if tag := f.Tag.Get("wire"); tag == "-" {
			continue
		}
		plan.fields = append(plan.fields, fieldPlan{
			name:  f.Name,
			index: i,
			enc:   compileFieldEnc(f.Type),
			dec:   compileFieldDec(f.Type),
		})
	}
	return plan, nil
}

func planForType(t reflect.Type) (*structPlan, bool) {
	p, ok := defaultRegistry.state.Load().byType[t]
	return p, ok
}

func planForName(name string) (*structPlan, bool) {
	p, ok := defaultRegistry.state.Load().byName[name]
	return p, ok
}

func decodeAsPointer(t reflect.Type) bool {
	return defaultRegistry.state.Load().asPtr[t]
}
