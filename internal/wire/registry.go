package wire

import (
	"fmt"
	"reflect"
	"sync"
)

// structPlan caches the encodable field layout of a registered struct type.
type structPlan struct {
	name   string
	typ    reflect.Type // the struct type (never a pointer)
	fields []fieldPlan
}

type fieldPlan struct {
	name  string
	index int
}

// registry maps wire names to struct types and back. It is global, like
// gob's type registry: wire names must be process-wide unique.
type registry struct {
	mu      sync.RWMutex
	byName  map[string]*structPlan
	byType  map[reflect.Type]*structPlan
	asPtr   map[reflect.Type]bool // decode as *T rather than T
	errName map[string]bool       // names registered via RegisterError
}

var defaultRegistry = &registry{
	byName: make(map[string]*structPlan),
	byType: make(map[reflect.Type]*structPlan),
	asPtr:  make(map[reflect.Type]bool),

	errName: make(map[string]bool),
}

// Register associates name with the struct type of sample so values of that
// type (and pointers to it) can be encoded and decoded. If sample is a
// pointer, decoded values are produced as pointers; otherwise as values.
// Registering the same (name, type) pair again is a no-op; conflicting
// re-registration returns an error.
func Register(name string, sample any) error {
	if name == "" {
		return fmt.Errorf("wire: register: empty name")
	}
	t := reflect.TypeOf(sample)
	if t == nil {
		return fmt.Errorf("wire: register %q: nil sample", name)
	}
	wantPtr := false
	if t.Kind() == reflect.Pointer {
		wantPtr = true
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct {
		return fmt.Errorf("wire: register %q: %s is not a struct", name, t)
	}
	plan, err := buildPlan(name, t)
	if err != nil {
		return err
	}

	r := defaultRegistry
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok {
		if prev.typ != t {
			return fmt.Errorf("wire: register %q: already bound to %s", name, prev.typ)
		}
		r.asPtr[t] = wantPtr
		return nil
	}
	if prev, ok := r.byType[t]; ok && prev.name != name {
		return fmt.Errorf("wire: register %q: type %s already registered as %q", name, t, prev.name)
	}
	r.byName[name] = plan
	r.byType[t] = plan
	r.asPtr[t] = wantPtr
	return nil
}

// MustRegister is Register but panics on error. Intended for package init.
func MustRegister(name string, sample any) {
	if err := Register(name, sample); err != nil {
		panic(err)
	}
}

// RegisterError registers an error type for typed round-tripping. sample must
// be a struct or pointer-to-struct implementing error. The receiving side
// decodes values back into the concrete type so errors.As keeps working.
func RegisterError(name string, sample error) error {
	if err := Register(name, sample); err != nil {
		return err
	}
	r := defaultRegistry
	r.mu.Lock()
	r.errName[name] = true
	r.mu.Unlock()
	return nil
}

// MustRegisterError is RegisterError but panics on error.
func MustRegisterError(name string, sample error) {
	if err := RegisterError(name, sample); err != nil {
		panic(err)
	}
}

// TypeNameOf returns the registered wire name for v's type, or the reflect
// type string when unregistered. BRMI exception policies match on this name.
func TypeNameOf(v any) string {
	if v == nil {
		return ""
	}
	if re, ok := v.(*RemoteError); ok && re.TypeName != "" {
		return re.TypeName
	}
	t := reflect.TypeOf(v)
	base := t
	if base.Kind() == reflect.Pointer {
		base = base.Elem()
	}
	r := defaultRegistry
	r.mu.RLock()
	defer r.mu.RUnlock()
	if p, ok := r.byType[base]; ok {
		return p.name
	}
	return t.String()
}

func buildPlan(name string, t reflect.Type) (*structPlan, error) {
	plan := &structPlan{name: name, typ: t}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		if tag := f.Tag.Get("wire"); tag == "-" {
			continue
		}
		plan.fields = append(plan.fields, fieldPlan{name: f.Name, index: i})
	}
	return plan, nil
}

func planForType(t reflect.Type) (*structPlan, bool) {
	r := defaultRegistry
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.byType[t]
	return p, ok
}

func planForName(name string) (*structPlan, bool) {
	r := defaultRegistry
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.byName[name]
	return p, ok
}

func decodeAsPointer(t reflect.Type) bool {
	r := defaultRegistry
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.asPtr[t]
}
