package wire

import (
	"encoding/binary"
	"fmt"
	"time"
)

// fastcodec.go is the compiled-codec extension point: a registered struct
// type may install a hand-written (or generated) codec that encodes and
// decodes its fields through the exported Enc/Dec primitives instead of the
// per-field reflection plan. The wire format is IDENTICAL — a compiled
// codec emits the same kTypeDef/kStruct framing and the same field
// encodings the generic path produces, so compiled and generic peers
// interoperate freely. The BRMI protocol messages (internal/core,
// internal/rmi) install codecs; application types may too.

// Enc is the encoding handle passed to compiled codecs. Methods append
// exactly the wire form the generic encoder would produce for a field of
// the corresponding Go type.
type Enc struct{ e *encoder }

// Nil encodes a nil/absent value.
func (x Enc) Nil() { x.e.buf = append(x.e.buf, kNil) }

// Bool encodes a bool field.
func (x Enc) Bool(b bool) {
	if b {
		x.e.buf = append(x.e.buf, kTrue)
	} else {
		x.e.buf = append(x.e.buf, kFalse)
	}
}

// Int encodes a signed integer (or time.Duration) field.
func (x Enc) Int(v int64) { x.e.putInt(v) }

// Uint encodes an unsigned integer field.
func (x Enc) Uint(v uint64) { x.e.putUint(v) }

// Str encodes a string field.
func (x Enc) Str(s string) {
	x.e.buf = append(x.e.buf, kString)
	x.e.putString(s)
}

// BytesVal encodes a []byte field (nil encodes as kNil, like the generic
// path).
func (x Enc) BytesVal(b []byte) {
	if b == nil {
		x.Nil()
		return
	}
	x.e.buf = append(x.e.buf, kBytes)
	x.e.buf = binary.AppendUvarint(x.e.buf, uint64(len(b)))
	x.e.buf = append(x.e.buf, b...)
}

// RefVal encodes a Ref field.
func (x Enc) RefVal(r Ref) {
	x.e.buf = append(x.e.buf, kRef)
	x.e.putString(r.Endpoint)
	x.e.buf = binary.AppendUvarint(x.e.buf, r.ObjID)
	x.e.putString(r.Iface)
}

// Value encodes any supported value through the generic encoder (used for
// interface-typed fields).
func (x Enc) Value(v any) error { return x.e.value(v) }

// Slice begins a slice of n values; the codec then encodes exactly n
// elements.
func (x Enc) Slice(n int) {
	x.e.buf = append(x.e.buf, kSlice)
	x.e.buf = binary.AppendUvarint(x.e.buf, uint64(n))
}

// BeginStruct begins a struct value of the named registered type with n
// encoded fields (trailing zero fields may be omitted by passing a smaller
// n); the codec then encodes exactly n fields in declaration order.
func (x Enc) BeginStruct(name string, n int) {
	id, defined := x.e.typeID(name)
	if !defined {
		x.e.buf = append(x.e.buf, kTypeDef)
		x.e.buf = binary.AppendUvarint(x.e.buf, id)
		x.e.putString(name)
	}
	x.e.buf = append(x.e.buf, kStruct)
	x.e.buf = binary.AppendUvarint(x.e.buf, id)
	x.e.buf = binary.AppendUvarint(x.e.buf, uint64(n))
}

// Dec is the decoding handle passed to compiled codecs. Methods accept
// exactly the tag repertoire the generic field decoders accept (numeric
// cross-assignment, kNil as zero), so a compiled decoder is
// indistinguishable from the reflection plan.
type Dec struct{ d *decoder }

// Bool decodes a bool field.
func (x Dec) Bool() (bool, error) {
	tag, err := x.d.tag()
	if err != nil {
		return false, err
	}
	switch tag {
	case kTrue:
		return true, nil
	case kFalse, kNil:
		return false, nil
	default:
		return false, x.d.corrupt("expected bool")
	}
}

// Int decodes a signed integer field.
func (x Dec) Int() (int64, error) {
	tag, err := x.d.tag()
	if err != nil {
		return 0, err
	}
	switch tag {
	case kInt:
		u, err := x.d.uvarint()
		if err != nil {
			return 0, err
		}
		return unzigzag(u), nil
	case kUint:
		u, err := x.d.uvarint()
		if err != nil {
			return 0, err
		}
		return int64(u), nil
	case kNil:
		return 0, nil
	default:
		return 0, x.d.corrupt("expected integer")
	}
}

// Dur decodes a time.Duration field (additionally accepting the dynamic
// kDur form, like the generic Duration field decoder).
func (x Dec) Dur() (time.Duration, error) {
	tag, err := x.d.tag()
	if err != nil {
		return 0, err
	}
	switch tag {
	case kInt, kDur:
		u, err := x.d.uvarint()
		if err != nil {
			return 0, err
		}
		return time.Duration(unzigzag(u)), nil
	case kUint:
		u, err := x.d.uvarint()
		if err != nil {
			return 0, err
		}
		return time.Duration(u), nil
	case kNil:
		return 0, nil
	default:
		return 0, x.d.corrupt("expected duration")
	}
}

// Uint decodes an unsigned integer field.
func (x Dec) Uint() (uint64, error) {
	tag, err := x.d.tag()
	if err != nil {
		return 0, err
	}
	switch tag {
	case kUint:
		u, err := x.d.uvarint()
		if err != nil {
			return 0, err
		}
		return u, nil
	case kInt:
		u, err := x.d.uvarint()
		if err != nil {
			return 0, err
		}
		return uint64(unzigzag(u)), nil
	case kNil:
		return 0, nil
	default:
		return 0, x.d.corrupt("expected unsigned integer")
	}
}

// Str decodes a string field.
func (x Dec) Str() (string, error) {
	tag, err := x.d.tag()
	if err != nil {
		return "", err
	}
	if tag == kNil {
		return "", nil
	}
	if tag != kString {
		return "", x.d.corrupt("expected string")
	}
	return x.d.string()
}

// BytesVal decodes a []byte field.
func (x Dec) BytesVal() ([]byte, error) {
	tag, err := x.d.tag()
	if err != nil {
		return nil, err
	}
	if tag == kNil {
		return nil, nil
	}
	if tag != kBytes {
		return nil, x.d.corrupt("expected bytes")
	}
	n, err := x.d.uvarint()
	if err != nil {
		return nil, err
	}
	b, err := x.d.take(n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// RefVal decodes a Ref field.
func (x Dec) RefVal() (Ref, error) {
	tag, err := x.d.tag()
	if err != nil {
		return Ref{}, err
	}
	if tag == kNil {
		return Ref{}, nil
	}
	if tag != kRef {
		return Ref{}, x.d.corrupt("expected ref")
	}
	var r Ref
	if r.Endpoint, err = x.d.string(); err != nil {
		return Ref{}, err
	}
	if r.ObjID, err = x.d.uvarint(); err != nil {
		return Ref{}, err
	}
	if r.Iface, err = x.d.string(); err != nil {
		return Ref{}, err
	}
	return r, nil
}

// Value decodes any supported value through the generic decoder (used for
// interface-typed fields).
func (x Dec) Value() (any, error) { return x.d.value() }

// ErrVal decodes an error-typed field: nil, a registered error struct, or
// the generic *RemoteError.
func (x Dec) ErrVal() (error, error) {
	v, err := x.d.value()
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	e, ok := v.(error)
	if !ok {
		return nil, x.d.corrupt(fmt.Sprintf("expected error value, got %T", v))
	}
	return e, nil
}

// SliceLen begins decoding a slice field: it returns the element count, or
// -1 for a nil slice. The codec then decodes exactly that many elements.
func (x Dec) SliceLen() (int, error) {
	tag, err := x.d.tag()
	if err != nil {
		return 0, err
	}
	if tag == kNil {
		return -1, nil
	}
	if tag != kSlice {
		return 0, x.d.corrupt("expected slice")
	}
	n, err := x.d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(x.d.data)) {
		return 0, x.d.corrupt("slice length exceeds message size")
	}
	return int(n), nil
}

// StructFields begins decoding a struct field of the named registered type:
// it consumes the struct header and returns the number of encoded fields
// (which may be fewer than the type declares — the rest are zero — or more
// — pass the surplus to SkipFields). A nil value returns -1.
func (x Dec) StructFields(name string) (int, error) {
	tag, err := x.d.tag()
	if err != nil {
		return 0, err
	}
	if tag == kNil {
		return -1, nil
	}
	if tag != kStruct {
		return 0, x.d.corrupt("expected struct")
	}
	id, err := x.d.uvarint()
	if err != nil {
		return 0, err
	}
	st, ok := x.d.typePlan(id)
	if !ok {
		return 0, x.d.corrupt(fmt.Sprintf("struct with undefined type id %d", id))
	}
	if st.plan.name != name {
		return 0, fmt.Errorf("wire: cannot decode %q into %q", st.plan.name, name)
	}
	n, err := x.d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(x.d.data)) {
		return 0, x.d.corrupt("field count exceeds message size")
	}
	return int(n), nil
}

// SkipFields discards n values (fields a newer sender appended that this
// codec does not know).
func (x Dec) SkipFields(n int) error {
	for i := 0; i < n; i++ {
		if _, err := x.d.value(); err != nil {
			return err
		}
	}
	return nil
}

// RegisterCompiled registers name for the struct type T like Register —
// decodeAsPtr selects whether dynamic decoding produces *T or T — and
// installs a compiled codec replacing the reflection plan on both encode
// and decode hot paths. enc must emit the full value (BeginStruct header
// first, then its fields in declaration order); dec receives the value to
// fill and the encoded field count n, must read exactly min(n, known)
// fields and skip the surplus with SkipFields.
func RegisterCompiled[T any](name string, decodeAsPtr bool, enc func(Enc, *T) error, dec func(Dec, *T, int) error) error {
	var sample any
	if decodeAsPtr {
		sample = new(T)
	} else {
		var zero T
		sample = zero
	}
	if err := Register(name, sample); err != nil {
		return err
	}

	fastEncVal := func(x Enc, v any) error {
		if p, ok := v.(*T); ok {
			if p == nil {
				x.Nil()
				return nil
			}
			return enc(x, p)
		}
		t := v.(T)
		return enc(x, &t)
	}
	fastEncAddr := func(x Enc, p any) error { return enc(x, p.(*T)) }
	fastDecVal := func(x Dec, n int) (any, error) {
		var v T
		if err := dec(x, &v, n); err != nil {
			return nil, err
		}
		if decodeAsPtr {
			return &v, nil
		}
		return v, nil
	}
	fastDecInto := func(x Dec, p any, n int) error { return dec(x, p.(*T), n) }

	r := defaultRegistry
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.state.Load()
	old := cur.byName[name]
	np := *old
	np.fastEncVal = fastEncVal
	np.fastEncAddr = fastEncAddr
	np.fastDecVal = fastDecVal
	np.fastDecInto = fastDecInto
	next := r.clone()
	next.byName[name] = &np
	next.byType[np.typ] = &np
	r.state.Store(next)
	return nil
}

// MustRegisterCompiled is RegisterCompiled but panics on error.
func MustRegisterCompiled[T any](name string, decodeAsPtr bool, enc func(Enc, *T) error, dec func(Dec, *T, int) error) {
	if err := RegisterCompiled(name, decodeAsPtr, enc, dec); err != nil {
		panic(err)
	}
}
