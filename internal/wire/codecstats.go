package wire

import "sync/atomic"

// Codec-state reuse accounting. The encoder/decoder pools are package
// globals (one codec per process, like the registry), so these counters
// are process-global too; stats registries expose them as snapshot-time
// gauges. A get that did not allocate was served by the pool, so the
// reuse rate is (gets - allocs) / gets.
var (
	encGets, encAllocs atomic.Uint64
	decGets, decAllocs atomic.Uint64
)

// CodecStats reports the process-global codec-state pool traffic:
// encoder/decoder acquisitions and how many of them had to allocate
// fresh state.
func CodecStats() (encoderGets, encoderAllocs, decoderGets, decoderAllocs uint64) {
	return encGets.Load(), encAllocs.Load(), decGets.Load(), decAllocs.Load()
}
