package wire

import (
	"testing"
	"time"
)

// The microbenchmarks pin the hot-path cost of the codec: run with
//
//	go test -bench . -benchmem ./internal/wire
//
// CI runs them with -benchmem so per-PR allocation regressions are visible
// in the build log.

type benchPayload struct {
	ID      int64
	Name    string
	Seq     uint64
	Data    []byte
	Elapsed time.Duration
}

type benchNested struct {
	Tag   string
	Inner benchPayload
	More  []benchPayload
}

func init() {
	MustRegister("wiretest.benchPayload", benchPayload{})
	MustRegister("wiretest.benchNested", benchNested{})
}

func benchValue() benchPayload {
	return benchPayload{
		ID:      42,
		Name:    "a-realistic-object-name",
		Seq:     7,
		Data:    make([]byte, 64),
		Elapsed: 250 * time.Millisecond,
	}
}

func BenchmarkMarshalStruct(b *testing.B) {
	v := benchValue()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalAppend(b *testing.B) {
	// Box the value once: the interface conversion is the caller's cost
	// (rmi passes pointers, which never box), this measures the codec.
	var v any = benchValue()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = MarshalAppend(buf[:0], v)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalNested(b *testing.B) {
	var v any = benchNested{Tag: "outer", Inner: benchValue(), More: []benchPayload{benchValue(), benchValue()}}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = MarshalAppend(buf[:0], v)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalStruct(b *testing.B) {
	data, err := Marshal(benchValue())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalNested(b *testing.B) {
	v := benchNested{Tag: "outer", Inner: benchValue(), More: []benchPayload{benchValue(), benchValue()}}
	data, err := Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalValuesMixed(b *testing.B) {
	vs := []any{int64(7), "hello", benchValue(), []byte{1, 2, 3}, true}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = MarshalValuesAppend(buf[:0], vs)
		if err != nil {
			b.Fatal(err)
		}
	}
}
