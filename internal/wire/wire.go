// Package wire implements the self-describing binary value encoding used by
// the RMI substrate and the BRMI batching layer.
//
// It plays the role Java object serialization plays for Java RMI: application
// values are passed by copy, remote objects are passed as compact remote
// references (Ref), and error values survive the network with enough type
// information for the receiver to match on them.
//
// The format is stream-independent: every Marshal call produces a
// self-contained message. Struct types must be registered with Register
// before they can be encoded or decoded; registration assigns a stable wire
// name (the equivalent of a Java class name in RMI's serialized form).
//
// Supported values: nil, bool, all int/uint widths, float32/64, string,
// []byte, time.Time, time.Duration, slices, maps, registered structs (value
// or pointer), Ref, and error values (registered error types round-trip as
// their concrete type; unregistered errors degrade to *RemoteError).
package wire

import (
	"errors"
	"fmt"
)

// Kind tags identify the wire form of each encoded value. They are part of
// the wire format and must not be renumbered.
const (
	kNil     byte = 1
	kFalse   byte = 2
	kTrue    byte = 3
	kInt     byte = 4  // zigzag varint
	kUint    byte = 5  // varint
	kFloat64 byte = 6  // 8-byte big endian IEEE 754
	kFloat32 byte = 7  // 4-byte big endian IEEE 754
	kString  byte = 8  // varint length + UTF-8 bytes
	kBytes   byte = 9  // varint length + raw bytes
	kSlice   byte = 10 // varint length + that many values
	kMap     byte = 11 // varint length + key/value pairs
	kStruct  byte = 12 // varint type id + varint field count + field values
	kTypeDef byte = 13 // varint type id + name string; defines id for stream
	kRef     byte = 14 // endpoint string + varint objID + iface string
	kTime    byte = 15 // int64 unix seconds + uint32 nanos
	kErr     byte = 16 // type name string + message string (generic error)
	kDur     byte = 17 // zigzag varint nanoseconds
	kPtr     byte = 18 // pointer-to-struct marker followed by kStruct/kTypeDef
)

// Exported sentinel and structured errors.
var (
	// ErrUnregistered reports an attempt to encode or decode a struct type
	// that was never registered.
	ErrUnregistered = errors.New("wire: unregistered type")

	// ErrTruncated reports a message that ended in the middle of a value.
	ErrTruncated = errors.New("wire: truncated message")

	// ErrUnsupported reports an attempt to encode a Go value outside the
	// supported set (channels, funcs, unsafe pointers, ...).
	ErrUnsupported = errors.New("wire: unsupported value")
)

// CorruptError reports malformed bytes at a given offset.
type CorruptError struct {
	Offset int
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wire: corrupt message at offset %d: %s", e.Offset, e.Detail)
}

// Ref is a remote object reference: the wire form of an exported object.
// It is the equivalent of a marshalled RMI stub. Refs are compared by value;
// two Refs naming the same exported object are equal.
type Ref struct {
	// Endpoint is the network address of the owning server.
	Endpoint string
	// ObjID identifies the exported object within its server's export table.
	ObjID uint64
	// Iface names the remote interface the object was exported under.
	Iface string
}

// IsZero reports whether r is the zero reference (no object).
func (r Ref) IsZero() bool { return r.Endpoint == "" && r.ObjID == 0 && r.Iface == "" }

func (r Ref) String() string {
	return fmt.Sprintf("ref(%s/%d:%s)", r.Endpoint, r.ObjID, r.Iface)
}

// RemoteError is the generic wire form of an error whose concrete type was
// not registered. TypeName preserves the sender-side type for matching by
// exception policies.
type RemoteError struct {
	TypeName string
	Message  string
}

func (e *RemoteError) Error() string {
	if e.TypeName == "" {
		return e.Message
	}
	return e.TypeName + ": " + e.Message
}
