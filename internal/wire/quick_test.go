package wire

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// quickConfig keeps property tests fast but meaningful.
var quickConfig = &quick.Config{MaxCount: 300}

func TestQuickInt64RoundTrip(t *testing.T) {
	f := func(x int64) bool {
		got := roundTripQ(t, x)
		return got == x
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickUint64RoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		return roundTripQ(t, x) == x
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickFloat64RoundTrip(t *testing.T) {
	f := func(x float64) bool {
		got := roundTripQ(t, x).(float64)
		if math.IsNaN(x) {
			return math.IsNaN(got)
		}
		return got == x
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return roundTripQ(t, s) == s
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		got := roundTripQ(t, b)
		if b == nil {
			return got == nil
		}
		return reflect.DeepEqual(got, b)
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickRefRoundTrip(t *testing.T) {
	f := func(endpoint string, objID uint64, iface string) bool {
		in := Ref{Endpoint: endpoint, ObjID: objID, Iface: iface}
		return roundTripQ(t, in) == in
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Error(err)
	}
}

func TestQuickStructRoundTrip(t *testing.T) {
	f := func(name string, x, y int32, tags []string, blob []byte, ratio float64, flag bool) bool {
		if math.IsNaN(ratio) {
			ratio = 0
		}
		in := testNested{
			Name:  name,
			Point: testPoint{X: int(x), Y: int(y)},
			Tags:  tags,
			Blob:  blob,
			When:  time.Unix(1245666600, 42).UTC(),
			Took:  time.Duration(x) * time.Millisecond,
			Ratio: ratio,
			Flag:  flag,
		}
		got, ok := roundTripQ(t, in).(testNested)
		return ok && reflect.DeepEqual(got, in)
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeNeverPanics feeds arbitrary bytes into Unmarshal: it may
// fail, but it must never panic or hang.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %x: %v", data, r)
				ok = false
			}
		}()
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodeDecodeEncodeStable checks encode∘decode∘encode == encode.
func TestQuickEncodeDecodeEncodeStable(t *testing.T) {
	f := func(x int64, s string, b []byte) bool {
		in := []any{x, s, b}
		d1, err := Marshal(in)
		if err != nil {
			return false
		}
		mid, err := Unmarshal(d1)
		if err != nil {
			return false
		}
		d2, err := Marshal(mid)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(d1, d2)
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Error(err)
	}
}

func roundTripQ(t *testing.T, v any) any {
	t.Helper()
	data, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return got
}
