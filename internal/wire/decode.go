package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
	"time"
)

// Unmarshal decodes a message produced by Marshal. The dynamic type of the
// result depends on the wire kind: integers decode as int64 (uint64 for
// unsigned), structs decode as their registered Go type (pointer form when
// registered from a pointer sample), kErr decodes as *RemoteError. Decoder
// state is pooled internally; Unmarshal allocates only the decoded values.
func Unmarshal(data []byte) (any, error) {
	d := getDecoder(data)
	defer d.release()
	v, err := d.value()
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.data) {
		return nil, &CorruptError{Offset: d.pos, Detail: "trailing bytes"}
	}
	return v, nil
}

// UnmarshalValues decodes a message produced by MarshalValues.
func UnmarshalValues(data []byte) ([]any, error) {
	d := getDecoder(data)
	defer d.release()
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(data)) {
		return nil, &CorruptError{Offset: d.pos, Detail: "value count exceeds message size"}
	}
	out := make([]any, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := d.value()
		if err != nil {
			return nil, fmt.Errorf("value %d: %w", i, err)
		}
		out = append(out, v)
	}
	if d.pos != len(d.data) {
		return nil, &CorruptError{Offset: d.pos, Detail: "trailing bytes"}
	}
	return out, nil
}

// Decoder is a reusable message decoder: Reset rebinds it to a new message
// without reallocating the stream type table, for callers that decode many
// messages back to back.
type Decoder struct {
	d decoder
}

// Reset binds the decoder to data, discarding all previous state.
func (dec *Decoder) Reset(data []byte) {
	dec.d.data = data
	dec.d.pos = 0
	if dec.d.types == nil {
		dec.d.types = dec.d.typesArr[:0]
	} else {
		dec.d.types = dec.d.types[:0]
	}
}

// Decode decodes the single message the decoder was Reset to, like
// Unmarshal.
func (dec *Decoder) Decode() (any, error) {
	v, err := dec.d.value()
	if err != nil {
		return nil, err
	}
	if dec.d.pos != len(dec.d.data) {
		return nil, &CorruptError{Offset: dec.d.pos, Detail: "trailing bytes"}
	}
	return v, nil
}

// decoder holds one message's decode state. The stream type table is a
// slice indexed by id-1 with a small inline backing array — ids are
// assigned densely from 1 by the encoder — replacing the old per-message
// map. Decoders are pooled.
type decoder struct {
	data     []byte
	pos      int
	types    []streamType
	typesArr [8]streamType
}

// streamType is one resolved stream-local type: the plan plus the
// pointer-decode flag, looked up once per type definition rather than once
// per value.
type streamType struct {
	plan  *structPlan
	asPtr bool
}

// maxStreamTypes bounds the per-message type table: the encoder allocates
// ids densely, so any id beyond this is a corrupt or hostile message, not a
// real type set.
const maxStreamTypes = 1 << 16

var decoderPool = sync.Pool{New: func() any {
	decAllocs.Add(1)
	return new(decoder)
}}

func getDecoder(data []byte) *decoder {
	decGets.Add(1)
	d := decoderPool.Get().(*decoder)
	d.data = data
	d.pos = 0
	if d.types == nil {
		d.types = d.typesArr[:0]
	} else {
		d.types = d.types[:0]
	}
	return d
}

func (d *decoder) release() {
	d.data = nil
	decoderPool.Put(d)
}

func (d *decoder) corrupt(detail string) error {
	return &CorruptError{Offset: d.pos, Detail: detail}
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, ErrTruncated
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

// tag reads the next value tag, consuming any interleaved type definitions.
func (d *decoder) tag() (byte, error) {
	tag, err := d.byte()
	if err != nil {
		return 0, err
	}
	for tag == kTypeDef {
		if err := d.typeDef(); err != nil {
			return 0, err
		}
		if tag, err = d.byte(); err != nil {
			return 0, err
		}
	}
	return tag, nil
}

func (d *decoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.pos += n
	return u, nil
}

func (d *decoder) take(n uint64) ([]byte, error) {
	if n > uint64(len(d.data)-d.pos) {
		return nil, ErrTruncated
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	b, err := d.take(n)
	if err != nil {
		return "", err
	}
	return internBytes(b), nil
}

// value decodes one value generically.
func (d *decoder) value() (any, error) {
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case kNil:
		return nil, nil
	case kFalse:
		return false, nil
	case kTrue:
		return true, nil
	case kInt:
		u, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		return unzigzag(u), nil
	case kUint:
		return d.uvarint()
	case kFloat64:
		b, err := d.take(8)
		if err != nil {
			return nil, err
		}
		return bitsToFloat64(binary.BigEndian.Uint64(b)), nil
	case kFloat32:
		b, err := d.take(4)
		if err != nil {
			return nil, err
		}
		return bitsToFloat32(binary.BigEndian.Uint32(b)), nil
	case kString:
		return d.string()
	case kBytes:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := d.take(n)
		if err != nil {
			return nil, err
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	case kSlice:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(d.data)) {
			return nil, d.corrupt("slice length exceeds message size")
		}
		out := make([]any, 0, n)
		for i := uint64(0); i < n; i++ {
			v, err := d.value()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case kMap:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(d.data)) {
			return nil, d.corrupt("map length exceeds message size")
		}
		out := make(map[any]any, n)
		for i := uint64(0); i < n; i++ {
			k, err := d.value()
			if err != nil {
				return nil, err
			}
			v, err := d.value()
			if err != nil {
				return nil, err
			}
			kk, ok := mapKey(k)
			if !ok {
				return nil, d.corrupt("uncomparable map key")
			}
			out[kk] = v
		}
		return out, nil
	case kTypeDef:
		if err := d.typeDef(); err != nil {
			return nil, err
		}
		return d.value()
	case kStruct:
		return d.structValue()
	case kRef:
		var r Ref
		if r.Endpoint, err = d.string(); err != nil {
			return nil, err
		}
		if r.ObjID, err = d.uvarint(); err != nil {
			return nil, err
		}
		if r.Iface, err = d.string(); err != nil {
			return nil, err
		}
		return r, nil
	case kTime:
		b, err := d.take(12)
		if err != nil {
			return nil, err
		}
		sec := int64(binary.BigEndian.Uint64(b[:8]))
		nsec := int64(binary.BigEndian.Uint32(b[8:]))
		return time.Unix(sec, nsec).UTC(), nil
	case kErr:
		typeName, err := d.string()
		if err != nil {
			return nil, err
		}
		msg, err := d.string()
		if err != nil {
			return nil, err
		}
		return &RemoteError{TypeName: typeName, Message: msg}, nil
	case kDur:
		u, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		return time.Duration(unzigzag(u)), nil
	default:
		return nil, d.corrupt(fmt.Sprintf("unknown tag %d", tag))
	}
}

func (d *decoder) typeDef() error {
	id, err := d.uvarint()
	if err != nil {
		return err
	}
	name, err := d.string()
	if err != nil {
		return err
	}
	plan, ok := planForName(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnregistered, name)
	}
	if id == 0 || id > maxStreamTypes {
		return d.corrupt(fmt.Sprintf("type id %d out of range", id))
	}
	for uint64(len(d.types)) < id {
		d.types = append(d.types, streamType{})
	}
	d.types[id-1] = streamType{plan: plan, asPtr: decodeAsPointer(plan.typ)}
	return nil
}

// typePlan resolves a stream-local struct type id.
func (d *decoder) typePlan(id uint64) (streamType, bool) {
	if id == 0 || id > uint64(len(d.types)) {
		return streamType{}, false
	}
	st := d.types[id-1]
	return st, st.plan != nil
}

func (d *decoder) structValue() (any, error) {
	id, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	st, ok := d.typePlan(id)
	if !ok {
		return nil, d.corrupt(fmt.Sprintf("struct with undefined type id %d", id))
	}
	plan := st.plan
	nFields, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nFields > uint64(len(d.data)) {
		return nil, d.corrupt("field count exceeds message size")
	}
	if plan.fastDecVal != nil {
		return plan.fastDecVal(Dec{d}, int(nFields))
	}
	pv := reflect.New(plan.typ) // *T
	sv := pv.Elem()
	for i := uint64(0); i < nFields; i++ {
		if i < uint64(len(plan.fields)) {
			f := &plan.fields[i]
			if err := f.dec(d, sv.Field(f.index)); err != nil {
				return nil, fmt.Errorf("%s.%s: %w", plan.name, f.name, err)
			}
			continue
		}
		// Sender had more fields than we know; discard generically.
		if _, err := d.value(); err != nil {
			return nil, err
		}
	}
	if st.asPtr {
		return pv.Interface(), nil
	}
	return sv.Interface(), nil
}

func (d *decoder) structInto(rv reflect.Value, tag byte) error {
	if tag == kNil {
		rv.SetZero()
		return nil
	}
	if tag != kStruct {
		return d.corrupt("expected struct")
	}
	id, err := d.uvarint()
	if err != nil {
		return err
	}
	st, ok := d.typePlan(id)
	if !ok {
		return d.corrupt(fmt.Sprintf("struct with undefined type id %d", id))
	}
	plan := st.plan
	if plan.typ != rv.Type() {
		return fmt.Errorf("wire: cannot decode %q into %s", plan.name, rv.Type())
	}
	nFields, err := d.uvarint()
	if err != nil {
		return err
	}
	if nFields > uint64(len(d.data)) {
		return d.corrupt("field count exceeds message size")
	}
	if plan.fastDecInto != nil && rv.CanAddr() {
		return plan.fastDecInto(Dec{d}, rv.Addr().Interface(), int(nFields))
	}
	for i := uint64(0); i < nFields; i++ {
		if i < uint64(len(plan.fields)) {
			f := &plan.fields[i]
			if err := f.dec(d, rv.Field(f.index)); err != nil {
				return fmt.Errorf("%s.%s: %w", plan.name, f.name, err)
			}
			continue
		}
		if _, err := d.value(); err != nil {
			return err
		}
	}
	return nil
}

// mapKey normalizes a decoded value for use as a generic map key.
func mapKey(k any) (any, bool) {
	switch k.(type) {
	case nil, bool, int64, uint64, float64, string, time.Time, time.Duration, Ref:
		return k, true
	default:
		// Structs are comparable only if all their fields are; trust but
		// verify via reflect.
		rv := reflect.ValueOf(k)
		if rv.IsValid() && rv.Comparable() {
			return k, true
		}
		return nil, false
	}
}

func bitsToFloat64(b uint64) float64 { return math.Float64frombits(b) }
func bitsToFloat32(b uint32) float32 { return math.Float32frombits(b) }
