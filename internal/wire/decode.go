package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"time"
)

// Unmarshal decodes a message produced by Marshal. The dynamic type of the
// result depends on the wire kind: integers decode as int64 (uint64 for
// unsigned), structs decode as their registered Go type (pointer form when
// registered from a pointer sample), kErr decodes as *RemoteError.
func Unmarshal(data []byte) (any, error) {
	d := decoder{data: data}
	v, err := d.value()
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.data) {
		return nil, &CorruptError{Offset: d.pos, Detail: "trailing bytes"}
	}
	return v, nil
}

// UnmarshalValues decodes a message produced by MarshalValues.
func UnmarshalValues(data []byte) ([]any, error) {
	d := decoder{data: data}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(data)) {
		return nil, &CorruptError{Offset: d.pos, Detail: "value count exceeds message size"}
	}
	out := make([]any, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := d.value()
		if err != nil {
			return nil, fmt.Errorf("value %d: %w", i, err)
		}
		out = append(out, v)
	}
	if d.pos != len(d.data) {
		return nil, &CorruptError{Offset: d.pos, Detail: "trailing bytes"}
	}
	return out, nil
}

type decoder struct {
	data  []byte
	pos   int
	types map[uint64]*structPlan
}

func (d *decoder) corrupt(detail string) error {
	return &CorruptError{Offset: d.pos, Detail: detail}
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, ErrTruncated
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.pos += n
	return u, nil
}

func (d *decoder) take(n uint64) ([]byte, error) {
	if n > uint64(len(d.data)-d.pos) {
		return nil, ErrTruncated
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	b, err := d.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// value decodes one value generically.
func (d *decoder) value() (any, error) {
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case kNil:
		return nil, nil
	case kFalse:
		return false, nil
	case kTrue:
		return true, nil
	case kInt:
		u, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		return unzigzag(u), nil
	case kUint:
		return d.uvarint()
	case kFloat64:
		b, err := d.take(8)
		if err != nil {
			return nil, err
		}
		return bitsToFloat64(binary.BigEndian.Uint64(b)), nil
	case kFloat32:
		b, err := d.take(4)
		if err != nil {
			return nil, err
		}
		return bitsToFloat32(binary.BigEndian.Uint32(b)), nil
	case kString:
		return d.string()
	case kBytes:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := d.take(n)
		if err != nil {
			return nil, err
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	case kSlice:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(d.data)) {
			return nil, d.corrupt("slice length exceeds message size")
		}
		out := make([]any, 0, n)
		for i := uint64(0); i < n; i++ {
			v, err := d.value()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case kMap:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(d.data)) {
			return nil, d.corrupt("map length exceeds message size")
		}
		out := make(map[any]any, n)
		for i := uint64(0); i < n; i++ {
			k, err := d.value()
			if err != nil {
				return nil, err
			}
			v, err := d.value()
			if err != nil {
				return nil, err
			}
			kk, ok := mapKey(k)
			if !ok {
				return nil, d.corrupt("uncomparable map key")
			}
			out[kk] = v
		}
		return out, nil
	case kTypeDef:
		if err := d.typeDef(); err != nil {
			return nil, err
		}
		return d.value()
	case kStruct:
		return d.structValue()
	case kRef:
		var r Ref
		if r.Endpoint, err = d.string(); err != nil {
			return nil, err
		}
		if r.ObjID, err = d.uvarint(); err != nil {
			return nil, err
		}
		if r.Iface, err = d.string(); err != nil {
			return nil, err
		}
		return r, nil
	case kTime:
		b, err := d.take(12)
		if err != nil {
			return nil, err
		}
		sec := int64(binary.BigEndian.Uint64(b[:8]))
		nsec := int64(binary.BigEndian.Uint32(b[8:]))
		return time.Unix(sec, nsec).UTC(), nil
	case kErr:
		typeName, err := d.string()
		if err != nil {
			return nil, err
		}
		msg, err := d.string()
		if err != nil {
			return nil, err
		}
		return &RemoteError{TypeName: typeName, Message: msg}, nil
	case kDur:
		u, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		return time.Duration(unzigzag(u)), nil
	default:
		return nil, d.corrupt(fmt.Sprintf("unknown tag %d", tag))
	}
}

func (d *decoder) typeDef() error {
	id, err := d.uvarint()
	if err != nil {
		return err
	}
	name, err := d.string()
	if err != nil {
		return err
	}
	plan, ok := planForName(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnregistered, name)
	}
	if d.types == nil {
		d.types = make(map[uint64]*structPlan, 4)
	}
	d.types[id] = plan
	return nil
}

func (d *decoder) structValue() (any, error) {
	id, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	plan, ok := d.types[id]
	if !ok {
		return nil, d.corrupt(fmt.Sprintf("struct with undefined type id %d", id))
	}
	nFields, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	pv := reflect.New(plan.typ) // *T
	sv := pv.Elem()
	for i := uint64(0); i < nFields; i++ {
		if i < uint64(len(plan.fields)) {
			f := plan.fields[i]
			if err := d.into(sv.Field(f.index)); err != nil {
				return nil, fmt.Errorf("%s.%s: %w", plan.name, f.name, err)
			}
			continue
		}
		// Sender had more fields than we know; discard generically.
		if _, err := d.value(); err != nil {
			return nil, err
		}
	}
	if decodeAsPointer(plan.typ) {
		return pv.Interface(), nil
	}
	return sv.Interface(), nil
}

// into decodes the next value directly into the typed destination rv.
func (d *decoder) into(rv reflect.Value) error {
	switch rv.Kind() {
	case reflect.Pointer:
		// Peek for nil without consuming other tags.
		if d.pos < len(d.data) && d.data[d.pos] == kNil {
			d.pos++
			rv.SetZero()
			return nil
		}
		if rv.IsNil() {
			rv.Set(reflect.New(rv.Type().Elem()))
		}
		return d.into(rv.Elem())
	case reflect.Interface:
		v, err := d.value()
		if err != nil {
			return err
		}
		if v == nil {
			rv.SetZero()
			return nil
		}
		vv := reflect.ValueOf(v)
		if !vv.Type().AssignableTo(rv.Type()) {
			return fmt.Errorf("wire: cannot assign %s to %s", vv.Type(), rv.Type())
		}
		rv.Set(vv)
		return nil
	}

	tag, err := d.byte()
	if err != nil {
		return err
	}
	for tag == kTypeDef {
		if err := d.typeDef(); err != nil {
			return err
		}
		if tag, err = d.byte(); err != nil {
			return err
		}
	}

	switch rv.Kind() {
	case reflect.Bool:
		switch tag {
		case kTrue:
			rv.SetBool(true)
		case kFalse:
			rv.SetBool(false)
		case kNil:
			rv.SetBool(false)
		default:
			return d.corrupt("expected bool")
		}
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if rv.Type() == reflect.TypeOf(time.Duration(0)) && tag == kDur {
			u, err := d.uvarint()
			if err != nil {
				return err
			}
			rv.SetInt(unzigzag(u))
			return nil
		}
		switch tag {
		case kInt:
			u, err := d.uvarint()
			if err != nil {
				return err
			}
			rv.SetInt(unzigzag(u))
		case kUint:
			u, err := d.uvarint()
			if err != nil {
				return err
			}
			rv.SetInt(int64(u))
		case kNil:
			rv.SetInt(0)
		default:
			return d.corrupt("expected integer")
		}
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		switch tag {
		case kUint:
			u, err := d.uvarint()
			if err != nil {
				return err
			}
			rv.SetUint(u)
		case kInt:
			u, err := d.uvarint()
			if err != nil {
				return err
			}
			rv.SetUint(uint64(unzigzag(u)))
		case kNil:
			rv.SetUint(0)
		default:
			return d.corrupt("expected unsigned integer")
		}
		return nil
	case reflect.Float32, reflect.Float64:
		switch tag {
		case kFloat64:
			b, err := d.take(8)
			if err != nil {
				return err
			}
			rv.SetFloat(bitsToFloat64(binary.BigEndian.Uint64(b)))
		case kFloat32:
			b, err := d.take(4)
			if err != nil {
				return err
			}
			rv.SetFloat(float64(bitsToFloat32(binary.BigEndian.Uint32(b))))
		case kInt:
			u, err := d.uvarint()
			if err != nil {
				return err
			}
			rv.SetFloat(float64(unzigzag(u)))
		case kNil:
			rv.SetFloat(0)
		default:
			return d.corrupt("expected float")
		}
		return nil
	case reflect.String:
		if tag == kNil {
			rv.SetString("")
			return nil
		}
		if tag != kString {
			return d.corrupt("expected string")
		}
		s, err := d.string()
		if err != nil {
			return err
		}
		rv.SetString(s)
		return nil
	case reflect.Slice:
		if tag == kNil {
			rv.SetZero()
			return nil
		}
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			if tag != kBytes {
				return d.corrupt("expected bytes")
			}
			n, err := d.uvarint()
			if err != nil {
				return err
			}
			b, err := d.take(n)
			if err != nil {
				return err
			}
			out := make([]byte, len(b))
			copy(out, b)
			rv.SetBytes(out)
			return nil
		}
		if tag != kSlice {
			return d.corrupt("expected slice")
		}
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(d.data)) {
			return d.corrupt("slice length exceeds message size")
		}
		out := reflect.MakeSlice(rv.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := d.into(out.Index(i)); err != nil {
				return fmt.Errorf("index %d: %w", i, err)
			}
		}
		rv.Set(out)
		return nil
	case reflect.Map:
		if tag == kNil {
			rv.SetZero()
			return nil
		}
		if tag != kMap {
			return d.corrupt("expected map")
		}
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(d.data)) {
			return d.corrupt("map length exceeds message size")
		}
		out := reflect.MakeMapWithSize(rv.Type(), int(n))
		kt, vt := rv.Type().Key(), rv.Type().Elem()
		for i := uint64(0); i < n; i++ {
			kv := reflect.New(kt).Elem()
			if err := d.into(kv); err != nil {
				return fmt.Errorf("map key: %w", err)
			}
			vv := reflect.New(vt).Elem()
			if err := d.into(vv); err != nil {
				return fmt.Errorf("map value: %w", err)
			}
			out.SetMapIndex(kv, vv)
		}
		rv.Set(out)
		return nil
	case reflect.Struct:
		return d.structInto(rv, tag)
	default:
		return fmt.Errorf("%w: decode into %s", ErrUnsupported, rv.Type())
	}
}

func (d *decoder) structInto(rv reflect.Value, tag byte) error {
	t := rv.Type()
	switch t {
	case reflect.TypeOf(time.Time{}):
		if tag == kNil {
			rv.SetZero()
			return nil
		}
		if tag != kTime {
			return d.corrupt("expected time")
		}
		b, err := d.take(12)
		if err != nil {
			return err
		}
		sec := int64(binary.BigEndian.Uint64(b[:8]))
		nsec := int64(binary.BigEndian.Uint32(b[8:]))
		rv.Set(reflect.ValueOf(time.Unix(sec, nsec).UTC()))
		return nil
	case reflect.TypeOf(Ref{}):
		if tag == kNil {
			rv.SetZero()
			return nil
		}
		if tag != kRef {
			return d.corrupt("expected ref")
		}
		var r Ref
		var err error
		if r.Endpoint, err = d.string(); err != nil {
			return err
		}
		if r.ObjID, err = d.uvarint(); err != nil {
			return err
		}
		if r.Iface, err = d.string(); err != nil {
			return err
		}
		rv.Set(reflect.ValueOf(r))
		return nil
	}
	if tag == kNil {
		rv.SetZero()
		return nil
	}
	if tag != kStruct {
		return d.corrupt("expected struct")
	}
	id, err := d.uvarint()
	if err != nil {
		return err
	}
	plan, ok := d.types[id]
	if !ok {
		return d.corrupt(fmt.Sprintf("struct with undefined type id %d", id))
	}
	if plan.typ != t {
		return fmt.Errorf("wire: cannot decode %q into %s", plan.name, t)
	}
	nFields, err := d.uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nFields; i++ {
		if i < uint64(len(plan.fields)) {
			f := plan.fields[i]
			if err := d.into(rv.Field(f.index)); err != nil {
				return fmt.Errorf("%s.%s: %w", plan.name, f.name, err)
			}
			continue
		}
		if _, err := d.value(); err != nil {
			return err
		}
	}
	return nil
}

// mapKey normalizes a decoded value for use as a generic map key.
func mapKey(k any) (any, bool) {
	switch k.(type) {
	case nil, bool, int64, uint64, float64, string, time.Time, time.Duration, Ref:
		return k, true
	default:
		// Structs are comparable only if all their fields are; trust but
		// verify via reflect.
		rv := reflect.ValueOf(k)
		if rv.IsValid() && rv.Comparable() {
			return k, true
		}
		return nil, false
	}
}

func bitsToFloat64(b uint64) float64 { return math.Float64frombits(b) }
func bitsToFloat32(b uint32) float32 { return math.Float32frombits(b) }
