package wire

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

type testPoint struct {
	X, Y int
}

type testNested struct {
	Name   string
	Point  testPoint
	Tags   []string
	Attrs  map[string]int64
	Blob   []byte
	When   time.Time
	Took   time.Duration
	Ratio  float64
	Flag   bool
	hidden int //nolint:unused // exercises unexported-field skipping
	Skip   int `wire:"-"`
}

type testPtrMsg struct {
	ID   uint64
	Next *testPoint
	Any  any
	Err  error
}

type testError struct {
	Code int
	What string
}

func (e *testError) Error() string { return e.What }

func init() {
	MustRegister("wiretest.Point", testPoint{})
	MustRegister("wiretest.Nested", testNested{})
	MustRegister("wiretest.PtrMsg", &testPtrMsg{})
	MustRegisterError("wiretest.Error", &testError{})
}

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	data, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal(%#v): %v", v, err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal(%#v): %v", v, err)
	}
	return got
}

func TestRoundTripScalars(t *testing.T) {
	tests := []struct {
		name string
		in   any
		want any
	}{
		{"nil", nil, nil},
		{"true", true, true},
		{"false", false, false},
		{"zero int", 0, int64(0)},
		{"positive int", 42, int64(42)},
		{"negative int", -1234567, int64(-1234567)},
		{"max int64", int64(math.MaxInt64), int64(math.MaxInt64)},
		{"min int64", int64(math.MinInt64), int64(math.MinInt64)},
		{"int8", int8(-7), int64(-7)},
		{"uint", uint(7), uint64(7)},
		{"max uint64", uint64(math.MaxUint64), uint64(math.MaxUint64)},
		{"float64", 3.25, 3.25},
		{"float32", float32(1.5), float32(1.5)},
		{"neg zero float", math.Copysign(0, -1), math.Copysign(0, -1)},
		{"string", "hello", "hello"},
		{"empty string", "", ""},
		{"utf8 string", "héllo wörld — ICDCS", "héllo wörld — ICDCS"},
		{"duration", 250 * time.Millisecond, 250 * time.Millisecond},
		{"ref", Ref{Endpoint: "mem:1", ObjID: 9, Iface: "File"}, Ref{Endpoint: "mem:1", ObjID: 9, Iface: "File"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := roundTrip(t, tt.in)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("got %#v (%T), want %#v (%T)", got, got, tt.want, tt.want)
			}
		})
	}
}

func TestRoundTripFloatSpecials(t *testing.T) {
	for _, f := range []float64{math.Inf(1), math.Inf(-1)} {
		if got := roundTrip(t, f); got != f {
			t.Errorf("got %v, want %v", got, f)
		}
	}
	got := roundTrip(t, math.NaN())
	if g, ok := got.(float64); !ok || !math.IsNaN(g) {
		t.Errorf("NaN did not round-trip: %#v", got)
	}
}

func TestRoundTripTime(t *testing.T) {
	in := time.Date(2009, 6, 22, 10, 30, 0, 123456789, time.UTC)
	got := roundTrip(t, in)
	gt, ok := got.(time.Time)
	if !ok || !gt.Equal(in) {
		t.Fatalf("got %#v, want %v", got, in)
	}
	// Pre-epoch times must survive too.
	in = time.Date(1908, 1, 1, 0, 0, 0, 5, time.UTC)
	gt = roundTrip(t, in).(time.Time)
	if !gt.Equal(in) {
		t.Fatalf("pre-epoch: got %v, want %v", gt, in)
	}
}

func TestRoundTripBytes(t *testing.T) {
	in := []byte{0, 1, 2, 254, 255}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %#v, want %#v", got, in)
	}
	if g := roundTrip(t, []byte{}); !reflect.DeepEqual(g, []byte{}) {
		t.Fatalf("empty bytes: got %#v", g)
	}
}

func TestRoundTripSliceGeneric(t *testing.T) {
	in := []any{int64(1), "two", 3.0, nil, true}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %#v, want %#v", got, in)
	}
}

func TestRoundTripTypedSliceDecaysToGeneric(t *testing.T) {
	got := roundTrip(t, []string{"a", "b"})
	want := []any{"a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestRoundTripMapGeneric(t *testing.T) {
	in := map[string]int{"a": 1, "b": 2}
	got := roundTrip(t, in)
	want := map[any]any{"a": int64(1), "b": int64(2)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestRoundTripStruct(t *testing.T) {
	in := testNested{
		Name:  "root",
		Point: testPoint{X: 3, Y: -4},
		Tags:  []string{"a", "b"},
		Attrs: map[string]int64{"k": 9},
		Blob:  []byte{1, 2},
		When:  time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC),
		Took:  time.Second,
		Ratio: 0.5,
		Flag:  true,
		Skip:  99,
	}
	got := roundTrip(t, in)
	g, ok := got.(testNested)
	if !ok {
		t.Fatalf("got %T, want testNested", got)
	}
	in.Skip = 0 // tagged wire:"-": must not travel
	if !reflect.DeepEqual(g, in) {
		t.Fatalf("got %+v, want %+v", g, in)
	}
}

func TestRoundTripPointerRegisteredStruct(t *testing.T) {
	in := &testPtrMsg{ID: 7, Next: &testPoint{X: 1, Y: 2}, Any: "dyn"}
	got := roundTrip(t, in)
	g, ok := got.(*testPtrMsg)
	if !ok {
		t.Fatalf("got %T, want *testPtrMsg", got)
	}
	if !reflect.DeepEqual(g, in) {
		t.Fatalf("got %+v, want %+v", g, in)
	}
}

func TestRoundTripNilPointerField(t *testing.T) {
	in := &testPtrMsg{ID: 1}
	g := roundTrip(t, in).(*testPtrMsg)
	if g.Next != nil || g.Any != nil || g.Err != nil {
		t.Fatalf("nil fields did not stay nil: %+v", g)
	}
}

func TestRoundTripRegisteredError(t *testing.T) {
	in := &testPtrMsg{ID: 2, Err: &testError{Code: 401, What: "denied"}}
	g := roundTrip(t, in).(*testPtrMsg)
	var te *testError
	if !errors.As(g.Err, &te) {
		t.Fatalf("decoded error is %T, want *testError", g.Err)
	}
	if te.Code != 401 || te.What != "denied" {
		t.Fatalf("got %+v", te)
	}
}

func TestRoundTripUnregisteredErrorDegrades(t *testing.T) {
	in := &testPtrMsg{ID: 3, Err: errors.New("plain failure")}
	g := roundTrip(t, in).(*testPtrMsg)
	re, ok := g.Err.(*RemoteError)
	if !ok {
		t.Fatalf("decoded error is %T, want *RemoteError", g.Err)
	}
	if re.Message != "plain failure" {
		t.Fatalf("got %+v", re)
	}
	if re.TypeName == "" {
		t.Fatal("type name lost")
	}
}

func TestTypeNameOf(t *testing.T) {
	if got := TypeNameOf(&testError{}); got != "wiretest.Error" {
		t.Errorf("registered: got %q", got)
	}
	if got := TypeNameOf(errors.New("x")); got == "" {
		t.Error("unregistered: empty name")
	}
	if got := TypeNameOf(&RemoteError{TypeName: "remote.T"}); got != "remote.T" {
		t.Errorf("remote error: got %q", got)
	}
	if got := TypeNameOf(nil); got != "" {
		t.Errorf("nil: got %q", got)
	}
}

func TestMarshalValuesRoundTrip(t *testing.T) {
	in := []any{int64(1), "a", Ref{Endpoint: "e", ObjID: 1, Iface: "I"}, nil}
	data, err := MarshalValues(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalValues(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %#v, want %#v", got, in)
	}
}

func TestMarshalValuesEmpty(t *testing.T) {
	data, err := MarshalValues(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalValues(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %#v", got)
	}
}

func TestMarshalUnregisteredStruct(t *testing.T) {
	type anon struct{ A int }
	if _, err := Marshal(anon{A: 1}); !errors.Is(err, ErrUnregistered) {
		t.Fatalf("got %v, want ErrUnregistered", err)
	}
}

func TestMarshalUnsupported(t *testing.T) {
	if _, err := Marshal(make(chan int)); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("got %v, want ErrUnsupported", err)
	}
	if _, err := Marshal(func() {}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("func: got %v, want ErrUnsupported", err)
	}
}

func TestRegisterConflicts(t *testing.T) {
	type a struct{ X int }
	type b struct{ X int }
	if err := Register("wiretest.conflict", a{}); err != nil {
		t.Fatal(err)
	}
	if err := Register("wiretest.conflict", a{}); err != nil {
		t.Fatalf("idempotent re-register failed: %v", err)
	}
	if err := Register("wiretest.conflict", b{}); err == nil {
		t.Fatal("conflicting name re-registration succeeded")
	}
	if err := Register("wiretest.conflict2", a{}); err == nil {
		t.Fatal("re-registering same type under second name succeeded")
	}
	if err := Register("", a{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register("wiretest.nonstruct", 42); err == nil {
		t.Fatal("non-struct accepted")
	}
	if err := Register("wiretest.nilsample", nil); err == nil {
		t.Fatal("nil sample accepted")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	full, err := Marshal(testNested{Name: strings.Repeat("x", 100)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(full); i++ {
		if _, err := Unmarshal(full[:i]); err == nil {
			t.Fatalf("prefix of length %d decoded successfully", i)
		}
	}
}

func TestUnmarshalTrailingBytes(t *testing.T) {
	data, _ := Marshal("ok")
	if _, err := Unmarshal(append(data, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestUnmarshalUnknownTag(t *testing.T) {
	if _, err := Unmarshal([]byte{0xEE}); err == nil {
		t.Fatal("unknown tag accepted")
	}
	var ce *CorruptError
	_, err := Unmarshal([]byte{0xEE})
	if !errors.As(err, &ce) {
		t.Fatalf("got %T, want *CorruptError", err)
	}
}

func TestUnmarshalHugeLengthRejected(t *testing.T) {
	// kSlice with an absurd element count must not allocate unbounded memory.
	data := []byte{kSlice, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("huge slice accepted")
	}
	data = []byte{kString, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("huge string accepted")
	}
}

func TestUnmarshalUndefinedStructID(t *testing.T) {
	data := []byte{kStruct, 5, 0}
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("undefined struct id accepted")
	}
}

func TestUnmarshalUnregisteredTypeDef(t *testing.T) {
	var e encoder
	e.buf = append(e.buf, kTypeDef, 1)
	e.putString("wiretest.never-registered")
	e.buf = append(e.buf, kStruct, 1, 0)
	if _, err := Unmarshal(e.buf); !errors.Is(err, ErrUnregistered) {
		t.Fatalf("got %v, want ErrUnregistered", err)
	}
}

func TestStructFieldSkewForwardCompat(t *testing.T) {
	// Sender with MORE fields than receiver: simulate by hand-encoding a
	// Point with 3 fields; the third must be discarded.
	var e encoder
	e.buf = append(e.buf, kTypeDef, 1)
	e.putString("wiretest.Point")
	e.buf = append(e.buf, kStruct, 1, 3)
	e.putInt(10)
	e.putInt(20)
	e.putInt(30) // extra field from a newer sender
	got, err := Unmarshal(e.buf)
	if err != nil {
		t.Fatal(err)
	}
	if p := got.(testPoint); p.X != 10 || p.Y != 20 {
		t.Fatalf("got %+v", p)
	}
	// Sender with FEWER fields: missing fields stay zero.
	e = encoder{}
	e.buf = append(e.buf, kTypeDef, 1)
	e.putString("wiretest.Point")
	e.buf = append(e.buf, kStruct, 1, 1)
	e.putInt(10)
	got, err = Unmarshal(e.buf)
	if err != nil {
		t.Fatal(err)
	}
	if p := got.(testPoint); p.X != 10 || p.Y != 0 {
		t.Fatalf("got %+v", p)
	}
}

func TestNestedStructReusesTypeDef(t *testing.T) {
	in := []any{testPoint{1, 2}, testPoint{3, 4}, testPoint{5, 6}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// The type name must appear exactly once in the message.
	if n := strings.Count(string(data), "wiretest.Point"); n != 1 {
		t.Fatalf("type name encoded %d times, want 1", n)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	want := []any{testPoint{1, 2}, testPoint{3, 4}, testPoint{5, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v", got)
	}
}

func TestRefIsZeroAndString(t *testing.T) {
	var r Ref
	if !r.IsZero() {
		t.Error("zero Ref not IsZero")
	}
	r = Ref{Endpoint: "e", ObjID: 1, Iface: "I"}
	if r.IsZero() {
		t.Error("non-zero Ref IsZero")
	}
	if s := r.String(); !strings.Contains(s, "e/1:I") {
		t.Errorf("String() = %q", s)
	}
}

func TestRemoteErrorError(t *testing.T) {
	e := &RemoteError{TypeName: "app.Boom", Message: "kaboom"}
	if got := e.Error(); got != "app.Boom: kaboom" {
		t.Errorf("got %q", got)
	}
	e = &RemoteError{Message: "kaboom"}
	if got := e.Error(); got != "kaboom" {
		t.Errorf("got %q", got)
	}
}

func TestZigzag(t *testing.T) {
	for _, x := range []int64{0, 1, -1, 2, -2, math.MaxInt64, math.MinInt64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(x)); got != x {
			t.Errorf("zigzag(%d) round-trip = %d", x, got)
		}
	}
}
