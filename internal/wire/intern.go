package wire

import "sync"

// intern.go: a bounded string-interning table for decoded strings. The
// protocol re-transmits the same short strings constantly — method names,
// wire type names, interface names, endpoints — and every decode used to
// allocate a fresh copy. Interning returns the shared instance instead;
// strings are immutable, so sharing is safe. The table is capacity-bounded:
// once a shard fills, unknown strings decode with a plain allocation (a
// lookup miss costs one RLock probe), so unbounded unique payload data
// cannot grow the table.

const (
	internShards     = 16
	maxInternLen     = 64
	maxInternPerSlot = 2048
)

type internShard struct {
	mu sync.RWMutex
	m  map[string]string
}

var internTab [internShards]internShard

// internBytes returns the canonical string for b.
func internBytes(b []byte) string {
	n := len(b)
	if n == 0 {
		return ""
	}
	if n > maxInternLen {
		return string(b)
	}
	// FNV-1a over first/last bytes and length spreads the shards cheaply.
	h := uint32(2166136261)
	h = (h ^ uint32(b[0])) * 16777619
	h = (h ^ uint32(b[n-1])) * 16777619
	h = (h ^ uint32(n)) * 16777619
	sh := &internTab[h&(internShards-1)]

	sh.mu.RLock()
	s, ok := sh.m[string(b)] // compiler avoids allocating the lookup key
	full := len(sh.m) >= maxInternPerSlot
	sh.mu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	if full {
		return s
	}
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]string, 64)
	}
	if prev, ok := sh.m[s]; ok {
		s = prev
	} else if len(sh.m) < maxInternPerSlot {
		sh.m[s] = s
	}
	sh.mu.Unlock()
	return s
}
