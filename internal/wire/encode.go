package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
	"time"
)

// Marshal encodes v into a self-contained message. Struct values must use
// registered types (see Register). Marshal never retains v.
func Marshal(v any) ([]byte, error) {
	return MarshalAppend(nil, v)
}

// MarshalAppend encodes v like Marshal, appending the message to buf and
// returning the extended slice. It lets callers reuse payload buffers
// (e.g. a sync.Pool) instead of allocating a fresh []byte per message; the
// encoder's own per-message state is pooled internally.
func MarshalAppend(buf []byte, v any) ([]byte, error) {
	e := getEncoder(buf)
	err := e.value(v)
	buf = e.release()
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// MarshalValues encodes a sequence of values into one message, in order.
// The counterpart is UnmarshalValues.
func MarshalValues(vs []any) ([]byte, error) {
	return MarshalValuesAppend(nil, vs)
}

// MarshalValuesAppend is MarshalValues appending into buf, like
// MarshalAppend.
func MarshalValuesAppend(buf []byte, vs []any) ([]byte, error) {
	e := getEncoder(buf)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(vs)))
	var err error
	for i, v := range vs {
		if err = e.value(v); err != nil {
			err = fmt.Errorf("value %d: %w", i, err)
			break
		}
	}
	buf = e.release()
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// encoder holds one message's encode state. Encoders are pooled: the
// stream-local type table lives in a small inline array, so encoding a
// message — even one defining several struct types — allocates nothing
// beyond the output it appends to buf.
type encoder struct {
	buf []byte
	// typeNames is the stream-local type table: index i holds the name
	// defined with id i+1. A linear slice replaces the old per-message
	// map[string]uint64 — messages use a handful of types, the common
	// single-type message hits the first slot, and the inline backing array
	// makes the table allocation-free.
	typeNames []string
	namesArr  [8]string
	// lastType/lastPlan memoize the most recent registry hit: batches
	// encode long runs of one argument type, turning the per-value plan
	// lookup into a pointer compare.
	lastType reflect.Type
	lastPlan *structPlan
}

var encoderPool = sync.Pool{New: func() any {
	encAllocs.Add(1)
	return new(encoder)
}}

func getEncoder(buf []byte) *encoder {
	encGets.Add(1)
	e := encoderPool.Get().(*encoder)
	e.buf = buf
	e.typeNames = e.namesArr[:0]
	return e
}

// release returns the encoded buffer and recycles the encoder.
func (e *encoder) release() []byte {
	buf := e.buf
	e.buf = nil
	e.typeNames = nil
	e.lastType = nil
	e.lastPlan = nil
	encoderPool.Put(e)
	return buf
}

func (e *encoder) value(v any) error {
	if v == nil {
		e.buf = append(e.buf, kNil)
		return nil
	}
	// Fast paths for common concrete types, including the special forms that
	// bypass reflection entirely.
	switch x := v.(type) {
	case bool:
		if x {
			e.buf = append(e.buf, kTrue)
		} else {
			e.buf = append(e.buf, kFalse)
		}
		return nil
	case int:
		e.putInt(int64(x))
		return nil
	case int64:
		e.putInt(x)
		return nil
	case int32:
		e.putInt(int64(x))
		return nil
	case int16:
		e.putInt(int64(x))
		return nil
	case int8:
		e.putInt(int64(x))
		return nil
	case uint:
		e.putUint(uint64(x))
		return nil
	case uint64:
		e.putUint(x)
		return nil
	case uint32:
		e.putUint(uint64(x))
		return nil
	case uint16:
		e.putUint(uint64(x))
		return nil
	case uint8:
		e.putUint(uint64(x))
		return nil
	case float64:
		e.buf = append(e.buf, kFloat64)
		e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(x))
		return nil
	case float32:
		e.buf = append(e.buf, kFloat32)
		e.buf = binary.BigEndian.AppendUint32(e.buf, math.Float32bits(x))
		return nil
	case string:
		e.buf = append(e.buf, kString)
		e.putString(x)
		return nil
	case []byte:
		e.buf = append(e.buf, kBytes)
		e.buf = binary.AppendUvarint(e.buf, uint64(len(x)))
		e.buf = append(e.buf, x...)
		return nil
	case time.Time:
		e.buf = append(e.buf, kTime)
		e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(x.Unix()))
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(x.Nanosecond()))
		return nil
	case time.Duration:
		e.buf = append(e.buf, kDur)
		e.buf = binary.AppendUvarint(e.buf, zigzag(int64(x)))
		return nil
	case Ref:
		e.buf = append(e.buf, kRef)
		e.putString(x.Endpoint)
		e.buf = binary.AppendUvarint(e.buf, x.ObjID)
		e.putString(x.Iface)
		return nil
	case *Ref:
		if x == nil {
			e.buf = append(e.buf, kNil)
			return nil
		}
		return e.value(*x)
	case *RemoteError:
		if x == nil {
			e.buf = append(e.buf, kNil)
			return nil
		}
		e.buf = append(e.buf, kErr)
		e.putString(x.TypeName)
		e.putString(x.Message)
		return nil
	}

	// Compiled-codec fast path: struct and *struct values whose type
	// installed a codec (RegisterCompiled) encode without reflection.
	t := reflect.TypeOf(v)
	base := t
	if base.Kind() == reflect.Pointer {
		base = base.Elem()
	}
	if base.Kind() == reflect.Struct {
		if plan, ok := planForType(base); ok && plan.fastEncVal != nil {
			return plan.fastEncVal(Enc{e}, v)
		}
	}

	// Errors: registered error types travel as structs (typed); everything
	// else degrades to a generic RemoteError that preserves the type name.
	if err, ok := v.(error); ok {
		if _, registered := planForType(base); !registered {
			e.buf = append(e.buf, kErr)
			e.putString(TypeNameOf(v))
			e.putString(err.Error())
			return nil
		}
		// fall through to struct encoding below
	}

	return e.reflectValue(reflect.ValueOf(v))
}

// reflectValue is the generic encoder for values only known dynamically
// (slice-of-any elements, interface fields, map contents). Struct values
// dispatch into their compiled plan.
func (e *encoder) reflectValue(rv reflect.Value) error {
	switch rv.Kind() {
	case reflect.Pointer:
		if rv.IsNil() {
			e.buf = append(e.buf, kNil)
			return nil
		}
		return e.reflectValue(rv.Elem())
	case reflect.Interface:
		if rv.IsNil() {
			e.buf = append(e.buf, kNil)
			return nil
		}
		return e.value(rv.Interface())
	case reflect.Bool:
		if rv.Bool() {
			e.buf = append(e.buf, kTrue)
		} else {
			e.buf = append(e.buf, kFalse)
		}
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.putInt(rv.Int())
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		e.putUint(rv.Uint())
		return nil
	case reflect.Float32:
		e.buf = append(e.buf, kFloat32)
		e.buf = binary.BigEndian.AppendUint32(e.buf, math.Float32bits(float32(rv.Float())))
		return nil
	case reflect.Float64:
		e.buf = append(e.buf, kFloat64)
		e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(rv.Float()))
		return nil
	case reflect.String:
		e.buf = append(e.buf, kString)
		e.putString(rv.String())
		return nil
	case reflect.Slice, reflect.Array:
		if rv.Kind() == reflect.Slice && rv.IsNil() {
			e.buf = append(e.buf, kNil)
			return nil
		}
		if rv.Kind() == reflect.Slice && rv.Type().Elem().Kind() == reflect.Uint8 {
			return e.value(rv.Bytes())
		}
		n := rv.Len()
		e.buf = append(e.buf, kSlice)
		e.buf = binary.AppendUvarint(e.buf, uint64(n))
		for i := 0; i < n; i++ {
			if err := e.reflectValue(rv.Index(i)); err != nil {
				return fmt.Errorf("index %d: %w", i, err)
			}
		}
		return nil
	case reflect.Map:
		if rv.IsNil() {
			e.buf = append(e.buf, kNil)
			return nil
		}
		e.buf = append(e.buf, kMap)
		e.buf = binary.AppendUvarint(e.buf, uint64(rv.Len()))
		iter := rv.MapRange()
		for iter.Next() {
			if err := e.reflectValue(iter.Key()); err != nil {
				return fmt.Errorf("map key: %w", err)
			}
			if err := e.reflectValue(iter.Value()); err != nil {
				return fmt.Errorf("map value: %w", err)
			}
		}
		return nil
	case reflect.Struct:
		return e.structValue(rv)
	default:
		return fmt.Errorf("%w: %s", ErrUnsupported, rv.Type())
	}
}

func (e *encoder) structValue(rv reflect.Value) error {
	t := rv.Type()
	if t == e.lastType {
		return e.encodeStruct(e.lastPlan, rv)
	}
	if t == timeType || t == refType {
		return e.value(rv.Interface())
	}
	plan, ok := planForType(t)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnregistered, t)
	}
	e.lastType, e.lastPlan = t, plan
	return e.encodeStruct(plan, rv)
}

// encodeStruct emits one registered struct through its compiled plan.
// Trailing zero-valued fields are omitted from the message: the decoder
// leaves fields beyond the transmitted count at their zero value, so the
// round trip is identical while hot-path messages (whose optional fields
// are ordered last; see core's message layouts) shrink substantially.
func (e *encoder) encodeStruct(plan *structPlan, rv reflect.Value) error {
	if plan.fastEncAddr != nil && rv.CanAddr() {
		return plan.fastEncAddr(Enc{e}, rv.Addr().Interface())
	}
	if plan.fastEncVal != nil {
		return plan.fastEncVal(Enc{e}, rv.Interface())
	}
	id, defined := e.typeID(plan.name)
	if !defined {
		e.buf = append(e.buf, kTypeDef)
		e.buf = binary.AppendUvarint(e.buf, id)
		e.putString(plan.name)
	}
	nf := len(plan.fields)
	for nf > 0 && rv.Field(plan.fields[nf-1].index).IsZero() {
		nf--
	}
	e.buf = append(e.buf, kStruct)
	e.buf = binary.AppendUvarint(e.buf, id)
	e.buf = binary.AppendUvarint(e.buf, uint64(nf))
	for i := 0; i < nf; i++ {
		f := &plan.fields[i]
		if err := f.enc(e, rv.Field(f.index)); err != nil {
			return fmt.Errorf("%s.%s: %w", plan.name, f.name, err)
		}
	}
	return nil
}

// typeID returns the stream-local id for name, allocating one if needed.
// The boolean reports whether the id was already defined in this message.
// The one-type message (by far the most common) resolves in a single
// comparison against the inline table.
func (e *encoder) typeID(name string) (uint64, bool) {
	for i, n := range e.typeNames {
		if n == name {
			return uint64(i + 1), true
		}
	}
	e.typeNames = append(e.typeNames, name)
	return uint64(len(e.typeNames)), false
}

func (e *encoder) putInt(x int64) {
	e.buf = append(e.buf, kInt)
	e.buf = binary.AppendUvarint(e.buf, zigzag(x))
}

func (e *encoder) putUint(x uint64) {
	e.buf = append(e.buf, kUint)
	e.buf = binary.AppendUvarint(e.buf, x)
}

func (e *encoder) putString(s string) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func zigzag(x int64) uint64   { return uint64(x<<1) ^ uint64(x>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
