package wire

import (
	"reflect"
	"testing"
	"time"
)

// fcPayload exercises every Enc/Dec primitive through a compiled codec.
type fcPayload struct {
	ID      int64
	Name    string
	Seq     uint64
	Data    []byte
	Ready   bool
	Elapsed time.Duration
	Home    Ref
	Extra   any
}

func encFCPayload(x Enc, p *fcPayload) error {
	n := 8
	if p.Extra == nil {
		n = 7
		if p.Home.IsZero() {
			n = 6
			if p.Elapsed == 0 {
				n = 5
				if !p.Ready {
					n = 4
					if p.Data == nil {
						n = 3
						if p.Seq == 0 {
							n = 2
							if p.Name == "" {
								n = 1
								if p.ID == 0 {
									n = 0
								}
							}
						}
					}
				}
			}
		}
	}
	x.BeginStruct("wiretest.fc", n)
	if n > 0 {
		x.Int(p.ID)
	}
	if n > 1 {
		x.Str(p.Name)
	}
	if n > 2 {
		x.Uint(p.Seq)
	}
	if n > 3 {
		x.BytesVal(p.Data)
	}
	if n > 4 {
		x.Bool(p.Ready)
	}
	if n > 5 {
		x.Int(int64(p.Elapsed))
	}
	if n > 6 {
		x.RefVal(p.Home)
	}
	if n > 7 {
		if err := x.Value(p.Extra); err != nil {
			return err
		}
	}
	return nil
}

func decFCPayload(x Dec, p *fcPayload, n int) error {
	var err error
	if n > 0 {
		if p.ID, err = x.Int(); err != nil {
			return err
		}
	}
	if n > 1 {
		if p.Name, err = x.Str(); err != nil {
			return err
		}
	}
	if n > 2 {
		if p.Seq, err = x.Uint(); err != nil {
			return err
		}
	}
	if n > 3 {
		if p.Data, err = x.BytesVal(); err != nil {
			return err
		}
	}
	if n > 4 {
		if p.Ready, err = x.Bool(); err != nil {
			return err
		}
	}
	if n > 5 {
		if p.Elapsed, err = x.Dur(); err != nil {
			return err
		}
	}
	if n > 6 {
		if p.Home, err = x.RefVal(); err != nil {
			return err
		}
	}
	if n > 7 {
		if p.Extra, err = x.Value(); err != nil {
			return err
		}
	}
	return x.SkipFields(n - 8)
}

// fcTwin has the identical field layout but stays on the generic
// reflection plan, to pin wire-format parity between the two paths.
type fcTwin struct {
	ID      int64
	Name    string
	Seq     uint64
	Data    []byte
	Ready   bool
	Elapsed time.Duration
	Home    Ref
	Extra   any
}

func init() {
	MustRegisterCompiled("wiretest.fc", false, encFCPayload, decFCPayload)
	MustRegister("wiretest.fctwin", fcTwin{})
}

func fcSamples() []fcPayload {
	return []fcPayload{
		{},
		{ID: -5},
		{ID: 1, Name: "n", Seq: 9},
		{ID: 1, Name: "full", Seq: 2, Data: []byte{1, 2, 3}, Ready: true,
			Elapsed: -3 * time.Second, Home: Ref{Endpoint: "s", ObjID: 7, Iface: "I"},
			Extra: "tail"},
		{Data: []byte{}, Ready: true}, // empty-but-non-nil slice survives
	}
}

func TestCompiledCodecRoundTrip(t *testing.T) {
	for _, want := range fcSamples() {
		data, err := Marshal(want)
		if err != nil {
			t.Fatalf("Marshal(%+v): %v", want, err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("Unmarshal(%+v): %v", want, err)
		}
		gp, ok := got.(fcPayload)
		if !ok {
			t.Fatalf("decoded %T, want fcPayload", got)
		}
		if !reflect.DeepEqual(gp, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", gp, want)
		}
	}
}

// The compiled codec must emit byte-identical messages to the generic plan
// (modulo the registered type name, which has equal length here by
// construction: "wiretest.fc"+"twin" — so compare through the twin).
func TestCompiledCodecWireParity(t *testing.T) {
	for _, s := range fcSamples() {
		twin := fcTwin(s)
		fast, err := Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := Marshal(twin)
		if err != nil {
			t.Fatal(err)
		}
		// Both encode as: kTypeDef id name … — skip tag+id+len+name, then
		// the remainder (field count + field encodings) must match exactly.
		trim := func(b []byte, name string) []byte {
			// kTypeDef(1) + id varint(1) + len varint(1) + name
			return b[3+len(name):]
		}
		f, g := trim(fast, "wiretest.fc"), trim(slow, "wiretest.fctwin")
		if !reflect.DeepEqual(f, g) {
			t.Fatalf("wire forms diverge for %+v:\nfast %v\nslow %v", s, f, g)
		}
	}
}

// Compiled values nested inside generic containers and struct fields decode
// through the fast hooks.
func TestCompiledCodecNested(t *testing.T) {
	type holder struct {
		One  fcPayload
		Many []fcPayload
		Any  any
	}
	MustRegister("wiretest.fcholder", holder{})
	want := holder{
		One:  fcPayload{ID: 1, Name: "one"},
		Many: []fcPayload{{ID: 2}, {Name: "three", Ready: true}},
		Any:  fcPayload{ID: 4, Elapsed: time.Minute},
	}
	data, err := Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("nested round trip:\n got %+v\nwant %+v", got, want)
	}
}
