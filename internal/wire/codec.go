package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"time"
)

// codec.go compiles per-type encode/decode plans. Register walks a struct
// type once and emits a field-typed codec closure per field, so the hot
// marshal/unmarshal path dispatches through one indirect call per field
// instead of re-deriving the wire form from reflection kind switches on
// every value. Compilation is lazy across types: a field whose struct type
// is registered later resolves its plan on first use.

type encFunc func(e *encoder, rv reflect.Value) error
type decFunc func(d *decoder, rv reflect.Value) error

var (
	timeType     = reflect.TypeOf(time.Time{})
	durationType = reflect.TypeOf(time.Duration(0))
	refType      = reflect.TypeOf(Ref{})
)

// --- encoders ----------------------------------------------------------------

// compileFieldEnc returns the encoder closure for values of static type t.
// The emitted bytes are identical to the generic reflection path: the codec
// plan is a performance format, not a wire format change.
func compileFieldEnc(t reflect.Type) encFunc {
	switch t.Kind() {
	case reflect.Bool:
		return func(e *encoder, rv reflect.Value) error {
			if rv.Bool() {
				e.buf = append(e.buf, kTrue)
			} else {
				e.buf = append(e.buf, kFalse)
			}
			return nil
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		// Duration fields travel as plain zigzag ints, exactly like the
		// reflection path encoded them (kDur is the dynamic-value form).
		return func(e *encoder, rv reflect.Value) error {
			e.putInt(rv.Int())
			return nil
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return func(e *encoder, rv reflect.Value) error {
			e.putUint(rv.Uint())
			return nil
		}
	case reflect.Float32:
		return func(e *encoder, rv reflect.Value) error {
			e.buf = append(e.buf, kFloat32)
			e.buf = binary.BigEndian.AppendUint32(e.buf, math.Float32bits(float32(rv.Float())))
			return nil
		}
	case reflect.Float64:
		return func(e *encoder, rv reflect.Value) error {
			e.buf = append(e.buf, kFloat64)
			e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(rv.Float()))
			return nil
		}
	case reflect.String:
		return func(e *encoder, rv reflect.Value) error {
			e.buf = append(e.buf, kString)
			e.putString(rv.String())
			return nil
		}
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			return func(e *encoder, rv reflect.Value) error {
				if rv.IsNil() {
					e.buf = append(e.buf, kNil)
					return nil
				}
				b := rv.Bytes()
				e.buf = append(e.buf, kBytes)
				e.buf = binary.AppendUvarint(e.buf, uint64(len(b)))
				e.buf = append(e.buf, b...)
				return nil
			}
		}
		elem := compileFieldEnc(t.Elem())
		return func(e *encoder, rv reflect.Value) error {
			if rv.IsNil() {
				e.buf = append(e.buf, kNil)
				return nil
			}
			n := rv.Len()
			e.buf = append(e.buf, kSlice)
			e.buf = binary.AppendUvarint(e.buf, uint64(n))
			for i := 0; i < n; i++ {
				if err := elem(e, rv.Index(i)); err != nil {
					return fmt.Errorf("index %d: %w", i, err)
				}
			}
			return nil
		}
	case reflect.Array:
		elem := compileFieldEnc(t.Elem())
		return func(e *encoder, rv reflect.Value) error {
			n := rv.Len()
			e.buf = append(e.buf, kSlice)
			e.buf = binary.AppendUvarint(e.buf, uint64(n))
			for i := 0; i < n; i++ {
				if err := elem(e, rv.Index(i)); err != nil {
					return fmt.Errorf("index %d: %w", i, err)
				}
			}
			return nil
		}
	case reflect.Map:
		key := compileFieldEnc(t.Key())
		val := compileFieldEnc(t.Elem())
		return func(e *encoder, rv reflect.Value) error {
			if rv.IsNil() {
				e.buf = append(e.buf, kNil)
				return nil
			}
			e.buf = append(e.buf, kMap)
			e.buf = binary.AppendUvarint(e.buf, uint64(rv.Len()))
			iter := rv.MapRange()
			for iter.Next() {
				if err := key(e, iter.Key()); err != nil {
					return fmt.Errorf("map key: %w", err)
				}
				if err := val(e, iter.Value()); err != nil {
					return fmt.Errorf("map value: %w", err)
				}
			}
			return nil
		}
	case reflect.Pointer:
		elem := compileFieldEnc(t.Elem())
		return func(e *encoder, rv reflect.Value) error {
			if rv.IsNil() {
				e.buf = append(e.buf, kNil)
				return nil
			}
			return elem(e, rv.Elem())
		}
	case reflect.Interface:
		return func(e *encoder, rv reflect.Value) error {
			if rv.IsNil() {
				e.buf = append(e.buf, kNil)
				return nil
			}
			return e.value(rv.Interface())
		}
	case reflect.Struct:
		switch t {
		case timeType:
			return func(e *encoder, rv reflect.Value) error {
				x := rv.Interface().(time.Time)
				e.buf = append(e.buf, kTime)
				e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(x.Unix()))
				e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(x.Nanosecond()))
				return nil
			}
		case refType:
			return func(e *encoder, rv reflect.Value) error {
				x := rv.Interface().(Ref)
				e.buf = append(e.buf, kRef)
				e.putString(x.Endpoint)
				e.buf = binary.AppendUvarint(e.buf, x.ObjID)
				e.putString(x.Iface)
				return nil
			}
		}
		// Registered struct: the nested plan may not exist yet (its Register
		// can come after ours), so resolve lazily and let the registry's
		// lock-free snapshot make the lookup cheap.
		return func(e *encoder, rv reflect.Value) error {
			plan, ok := planForType(t)
			if !ok {
				return fmt.Errorf("%w: %s", ErrUnregistered, t)
			}
			return e.encodeStruct(plan, rv)
		}
	default:
		return func(e *encoder, rv reflect.Value) error {
			return fmt.Errorf("%w: %s", ErrUnsupported, t)
		}
	}
}

// --- decoders ----------------------------------------------------------------

// compileFieldDec returns the decoder closure for destinations of static
// type t, accepting exactly the tag repertoire the generic into path
// accepted (including the numeric cross-assignments and kNil zeroing).
func compileFieldDec(t reflect.Type) decFunc {
	switch t.Kind() {
	case reflect.Pointer:
		elem := compileFieldDec(t.Elem())
		elemType := t.Elem()
		return func(d *decoder, rv reflect.Value) error {
			if d.pos < len(d.data) && d.data[d.pos] == kNil {
				d.pos++
				rv.SetZero()
				return nil
			}
			if rv.IsNil() {
				rv.Set(reflect.New(elemType))
			}
			return elem(d, rv.Elem())
		}
	case reflect.Interface:
		return func(d *decoder, rv reflect.Value) error {
			v, err := d.value()
			if err != nil {
				return err
			}
			if v == nil {
				rv.SetZero()
				return nil
			}
			vv := reflect.ValueOf(v)
			if !vv.Type().AssignableTo(rv.Type()) {
				return fmt.Errorf("wire: cannot assign %s to %s", vv.Type(), rv.Type())
			}
			rv.Set(vv)
			return nil
		}
	case reflect.Bool:
		return func(d *decoder, rv reflect.Value) error {
			tag, err := d.tag()
			if err != nil {
				return err
			}
			switch tag {
			case kTrue:
				rv.SetBool(true)
			case kFalse, kNil:
				rv.SetBool(false)
			default:
				return d.corrupt("expected bool")
			}
			return nil
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		isDuration := t == durationType
		return func(d *decoder, rv reflect.Value) error {
			tag, err := d.tag()
			if err != nil {
				return err
			}
			switch {
			case tag == kInt || (isDuration && tag == kDur):
				u, err := d.uvarint()
				if err != nil {
					return err
				}
				rv.SetInt(unzigzag(u))
			case tag == kUint:
				u, err := d.uvarint()
				if err != nil {
					return err
				}
				rv.SetInt(int64(u))
			case tag == kNil:
				rv.SetInt(0)
			default:
				return d.corrupt("expected integer")
			}
			return nil
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return func(d *decoder, rv reflect.Value) error {
			tag, err := d.tag()
			if err != nil {
				return err
			}
			switch tag {
			case kUint:
				u, err := d.uvarint()
				if err != nil {
					return err
				}
				rv.SetUint(u)
			case kInt:
				u, err := d.uvarint()
				if err != nil {
					return err
				}
				rv.SetUint(uint64(unzigzag(u)))
			case kNil:
				rv.SetUint(0)
			default:
				return d.corrupt("expected unsigned integer")
			}
			return nil
		}
	case reflect.Float32, reflect.Float64:
		return func(d *decoder, rv reflect.Value) error {
			tag, err := d.tag()
			if err != nil {
				return err
			}
			switch tag {
			case kFloat64:
				b, err := d.take(8)
				if err != nil {
					return err
				}
				rv.SetFloat(bitsToFloat64(binary.BigEndian.Uint64(b)))
			case kFloat32:
				b, err := d.take(4)
				if err != nil {
					return err
				}
				rv.SetFloat(float64(bitsToFloat32(binary.BigEndian.Uint32(b))))
			case kInt:
				u, err := d.uvarint()
				if err != nil {
					return err
				}
				rv.SetFloat(float64(unzigzag(u)))
			case kNil:
				rv.SetFloat(0)
			default:
				return d.corrupt("expected float")
			}
			return nil
		}
	case reflect.String:
		return func(d *decoder, rv reflect.Value) error {
			tag, err := d.tag()
			if err != nil {
				return err
			}
			if tag == kNil {
				rv.SetString("")
				return nil
			}
			if tag != kString {
				return d.corrupt("expected string")
			}
			s, err := d.string()
			if err != nil {
				return err
			}
			rv.SetString(s)
			return nil
		}
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			return func(d *decoder, rv reflect.Value) error {
				tag, err := d.tag()
				if err != nil {
					return err
				}
				if tag == kNil {
					rv.SetZero()
					return nil
				}
				if tag != kBytes {
					return d.corrupt("expected bytes")
				}
				n, err := d.uvarint()
				if err != nil {
					return err
				}
				b, err := d.take(n)
				if err != nil {
					return err
				}
				out := make([]byte, len(b))
				copy(out, b)
				rv.SetBytes(out)
				return nil
			}
		}
		elem := compileFieldDec(t.Elem())
		return func(d *decoder, rv reflect.Value) error {
			tag, err := d.tag()
			if err != nil {
				return err
			}
			if tag == kNil {
				rv.SetZero()
				return nil
			}
			if tag != kSlice {
				return d.corrupt("expected slice")
			}
			n, err := d.uvarint()
			if err != nil {
				return err
			}
			if n > uint64(len(d.data)) {
				return d.corrupt("slice length exceeds message size")
			}
			out := reflect.MakeSlice(t, int(n), int(n))
			for i := 0; i < int(n); i++ {
				if err := elem(d, out.Index(i)); err != nil {
					return fmt.Errorf("index %d: %w", i, err)
				}
			}
			rv.Set(out)
			return nil
		}
	case reflect.Map:
		key := compileFieldDec(t.Key())
		val := compileFieldDec(t.Elem())
		kt, vt := t.Key(), t.Elem()
		return func(d *decoder, rv reflect.Value) error {
			tag, err := d.tag()
			if err != nil {
				return err
			}
			if tag == kNil {
				rv.SetZero()
				return nil
			}
			if tag != kMap {
				return d.corrupt("expected map")
			}
			n, err := d.uvarint()
			if err != nil {
				return err
			}
			if n > uint64(len(d.data)) {
				return d.corrupt("map length exceeds message size")
			}
			out := reflect.MakeMapWithSize(t, int(n))
			for i := uint64(0); i < n; i++ {
				kv := reflect.New(kt).Elem()
				if err := key(d, kv); err != nil {
					return fmt.Errorf("map key: %w", err)
				}
				vv := reflect.New(vt).Elem()
				if err := val(d, vv); err != nil {
					return fmt.Errorf("map value: %w", err)
				}
				out.SetMapIndex(kv, vv)
			}
			rv.Set(out)
			return nil
		}
	case reflect.Struct:
		switch t {
		case timeType:
			return func(d *decoder, rv reflect.Value) error {
				tag, err := d.tag()
				if err != nil {
					return err
				}
				if tag == kNil {
					rv.SetZero()
					return nil
				}
				if tag != kTime {
					return d.corrupt("expected time")
				}
				b, err := d.take(12)
				if err != nil {
					return err
				}
				sec := int64(binary.BigEndian.Uint64(b[:8]))
				nsec := int64(binary.BigEndian.Uint32(b[8:]))
				rv.Set(reflect.ValueOf(time.Unix(sec, nsec).UTC()))
				return nil
			}
		case refType:
			return func(d *decoder, rv reflect.Value) error {
				tag, err := d.tag()
				if err != nil {
					return err
				}
				if tag == kNil {
					rv.SetZero()
					return nil
				}
				if tag != kRef {
					return d.corrupt("expected ref")
				}
				var r Ref
				if r.Endpoint, err = d.string(); err != nil {
					return err
				}
				if r.ObjID, err = d.uvarint(); err != nil {
					return err
				}
				if r.Iface, err = d.string(); err != nil {
					return err
				}
				rv.Set(reflect.ValueOf(r))
				return nil
			}
		}
		return func(d *decoder, rv reflect.Value) error {
			tag, err := d.tag()
			if err != nil {
				return err
			}
			return d.structInto(rv, tag)
		}
	default:
		return func(d *decoder, rv reflect.Value) error {
			return fmt.Errorf("%w: decode into %s", ErrUnsupported, t)
		}
	}
}
