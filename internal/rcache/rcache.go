// Package rcache is the client-side result cache and request-coalescing
// layer behind readonly batched calls (DESIGN.md "Caching & coalescing").
//
// A Cache stores flush results of methods declared //brmi:readonly, keyed by
// (object ref, method, compiled-codec-encoded args). Every entry is a lease:
// it carries a TTL deadline and the ring epoch observed when the underlying
// call was recorded, and it is served only while both still hold. Three
// events invalidate:
//
//   - a write-batch touching the object bumps the object's generation and
//     drops its entries (per-object invalidation, at record time);
//   - a ring-epoch bump (membership change / migration) makes every older
//     lease unservable — checked lazily on Get, so an epoch bump costs O(1);
//   - the TTL deadline passes.
//
// Fills are generation-guarded: Put captures nothing itself — the caller
// passes the generation and epoch it observed when the miss was recorded,
// and the fill is dropped if either moved meanwhile. That closes the classic
// read/write race where an in-flight read's stale result lands after a
// write already invalidated the entry.
//
// The package also provides the singleflight primitives: Flight (asymmetric
// leader/follower coalescing for batch executors, where the leader's result
// arrives via its own future) and Group (symmetric Do-style coalescing for
// control-plane calls like Directory.Refresh).
package rcache

import (
	"container/list"
	"context"
	"strconv"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/wire"
)

// DefaultTTL is the lease lifetime when WithTTL is not given. It bounds
// staleness against writers this client cannot observe (other clients
// mutate through their own caches; only epoch bumps are globally visible).
const DefaultTTL = 5 * time.Second

// DefaultMaxEntries caps the cache when WithMaxEntries is not given.
const DefaultMaxEntries = 4096

// Cache is a lease-backed result cache. It is safe for concurrent use by
// any number of batches sharing it — sharing is the point: fills from one
// flush serve hits (and coalesce in-flight duplicates) for every other.
type Cache struct {
	ttl   time.Duration
	max   int
	epoch func() uint64    // ring epoch source; nil pins epoch 0
	now   func() time.Time // clock; registry clock when instrumented

	mu      sync.Mutex
	entries map[string]*entry
	byObj   map[string]map[string]*entry
	gens    map[string]uint64
	order   *list.List // *entry, front = oldest (FIFO eviction)
	flights map[string]*Flight

	hits          *stats.Counter // cache.hits
	misses        *stats.Counter // cache.misses
	evictions     *stats.Counter // cache.evictions
	invalidations *stats.Counter // cache.invalidations
	coalesced     *stats.Counter // cache.coalesced
}

type entry struct {
	key     string
	obj     string
	val     any
	epoch   uint64
	expires time.Time
	elem    *list.Element
}

// Option configures a Cache.
type Option func(*Cache)

// WithTTL sets the lease lifetime (default DefaultTTL).
func WithTTL(d time.Duration) Option {
	return func(c *Cache) { c.ttl = d }
}

// WithMaxEntries caps the entry count (default DefaultMaxEntries); the
// oldest fill is evicted first.
func WithMaxEntries(n int) Option {
	return func(c *Cache) { c.max = n }
}

// WithEpoch wires the ring-epoch source every lease is stamped with and
// checked against (e.g. Directory.Epoch). Without it, leases never see an
// epoch bump and expire by TTL and invalidation alone.
func WithEpoch(fn func() uint64) Option {
	return func(c *Cache) { c.epoch = fn }
}

// WithClock overrides the TTL clock (tests, virtual time).
func WithClock(fn func() time.Time) Option {
	return func(c *Cache) { c.now = fn }
}

// New creates a cache. reg may be nil (uninstrumented: the counters are
// nil-safe no-ops); when given, its clock also drives the TTL so simulated
// time works end to end.
func New(reg *stats.Registry, opts ...Option) *Cache {
	c := &Cache{
		ttl:     DefaultTTL,
		max:     DefaultMaxEntries,
		entries: make(map[string]*entry),
		byObj:   make(map[string]map[string]*entry),
		gens:    make(map[string]uint64),
		order:   list.New(),
		flights: make(map[string]*Flight),
	}
	if reg != nil {
		c.now = reg.Now
		c.hits = reg.Counter("cache.hits")
		c.misses = reg.Counter("cache.misses")
		c.evictions = reg.Counter("cache.evictions")
		c.invalidations = reg.Counter("cache.invalidations")
		c.coalesced = reg.Counter("cache.coalesced")
	}
	for _, o := range opts {
		o(c)
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Epoch returns the current ring epoch as the cache sees it.
func (c *Cache) Epoch() uint64 {
	if c.epoch == nil {
		return 0
	}
	return c.epoch()
}

// Gen returns the object's current write generation. A caller recording a
// readonly miss captures it (with Epoch) and passes both back to Put, which
// drops the fill if either moved — the stale-fill guard.
func (c *Cache) Gen(obj string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gens[obj]
}

// Get returns the cached value for key if its lease still holds: not
// expired, and stamped with the current ring epoch. An unservable entry is
// dropped on the way out.
func (c *Cache) Get(key string) (any, bool) {
	ep := c.Epoch()
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	if e.epoch != ep || now.After(e.expires) {
		c.removeLocked(e)
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	return e.val, true
}

// Put stores val for key on obj, provided the object's generation and the
// ring epoch still match what the caller captured when the miss was
// recorded. A fill that lost that race is silently dropped — the entry
// would carry a value older than its lease.
func (c *Cache) Put(key, obj string, val any, gen, epoch uint64) {
	if epoch != c.Epoch() {
		return
	}
	expires := c.now().Add(c.ttl)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gens[obj] != gen {
		return
	}
	if old, ok := c.entries[key]; ok {
		c.removeLocked(old)
	}
	e := &entry{key: key, obj: obj, val: val, epoch: epoch, expires: expires}
	e.elem = c.order.PushBack(e)
	c.entries[key] = e
	set := c.byObj[obj]
	if set == nil {
		set = make(map[string]*entry)
		c.byObj[obj] = set
	}
	set[key] = e
	for c.max > 0 && len(c.entries) > c.max {
		oldest := c.order.Front().Value.(*entry)
		c.removeLocked(oldest)
		c.evictions.Inc()
	}
}

// InvalidateObject drops every entry of obj and bumps its generation, so
// in-flight reads that predate the write cannot re-fill stale values. The
// batch layers call it at record time for every non-readonly call, keyed by
// the call's root object.
func (c *Cache) InvalidateObject(obj string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[obj]++
	for _, e := range c.byObj[obj] {
		c.removeLocked(e)
	}
	c.invalidations.Inc()
}

// Len returns the live entry count (expired-but-unswept entries included).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// removeLocked unlinks e from all three indexes. Caller holds c.mu.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.order.Remove(e.elem)
	if set, ok := c.byObj[e.obj]; ok {
		delete(set, e.key)
		if len(set) == 0 {
			delete(c.byObj, e.obj)
		}
	}
}

// --- keys --------------------------------------------------------------------

// ObjKey is the per-object invalidation key of a remote object reference.
func ObjKey(ref wire.Ref) string {
	return ref.Endpoint + "\x00" + strconv.FormatUint(ref.ObjID, 16)
}

// Key builds the cache key of a readonly call: object, method, and the
// compiled-codec encoding of the arguments. ok is false when the call is
// not cacheable — an argument the wire codec cannot encode (proxies,
// futures, unregistered types) has no stable identity to key by, and the
// caller must fall back to an ordinary recorded call.
func Key(ref wire.Ref, method string, args []any) (key string, ok bool) {
	buf := make([]byte, 0, 64)
	buf = append(buf, ObjKey(ref)...)
	buf = append(buf, 0)
	buf = append(buf, method...)
	buf = append(buf, 0)
	buf, err := wire.MarshalValuesAppend(buf, args)
	if err != nil {
		return "", false
	}
	return string(buf), true
}

// --- singleflight ------------------------------------------------------------

// Flight is one in-flight readonly wire call that duplicates coalesce onto.
// The leader (the caller Begin said was first) executes the call and MUST
// call Cache.Finish exactly once on every outcome path; followers Wait.
type Flight struct {
	done chan struct{}
	val  any
	err  error
}

// Wait blocks until the leader finished (or ctx expired) and returns the
// leader's outcome.
func (f *Flight) Wait(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Begin joins or opens the flight for key. leader is true for the caller
// that must execute the call and Finish the flight; every other caller is a
// follower and settles from Wait instead of recording a wire call.
func (c *Cache) Begin(key string) (f *Flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		c.coalesced.Inc()
		return f, false
	}
	f = &Flight{done: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// Finish publishes the leader's outcome to f's followers and retires the
// flight. Publishing before any follower can miss it: followers hold the
// *Flight from Begin, not the key.
func (c *Cache) Finish(key string, f *Flight, val any, err error) {
	c.mu.Lock()
	if c.flights[key] == f {
		delete(c.flights, key)
	}
	c.mu.Unlock()
	f.val, f.err = val, err
	close(f.done)
}

// Group coalesces symmetric duplicate calls: every caller of Do with the
// same key while one is in flight shares the first caller's outcome. It is
// the control-plane shape (Directory.Refresh); batch executors use the
// asymmetric Begin/Finish/Wait instead because the leader's result arrives
// through its own future.
type Group struct {
	mu    sync.Mutex
	calls map[string]*groupCall
}

type groupCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do runs fn for key, unless a call for key is already in flight, in which
// case it waits for that call and returns its outcome with shared=true.
// The first caller's fn runs with the first caller's arguments/context;
// followers inherit its outcome, so fn should be idempotent.
func (g *Group) Do(key string, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*groupCall)
	}
	if call, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-call.done
		return call.val, call.err, true
	}
	call := &groupCall{done: make(chan struct{})}
	g.calls[key] = call
	g.mu.Unlock()

	call.val, call.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(call.done)
	return call.val, call.err, false
}
